package topk

import (
	"math"
	"testing"

	"topk/internal/wrand"
)

// Churn-oracle stress suite: every updatable index is driven through long
// random Insert/Delete/Query interleavings against a mutable brute-force
// oracle. Serial queries are checked after every mutation step; periodic
// QueryBatch checks additionally assert the PR-1 invariants (oracle match
// at parallelism 1 and 8, identical per-query stats, I/O conservation)
// through checkBatchInvariants. Reductions are deliberately mixed across
// problems so the overlay is exercised over WorstCase, BinarySearch and
// static-Expected substructures, alongside Theorem 2's native dynamic
// path on the range index.

const churnOps = 10000

func churnSize(t *testing.T) int {
	if testing.Short() {
		return 1500
	}
	return churnOps
}

// churnProblem adapts one index type to the generic churn driver. insert
// draws random geometry internally and must record it for the oracle.
type churnProblem struct {
	insert func(w float64) error
	del    func(w float64) (bool, error)
	query  func(k int) (got, want []float64)
	batch  func(k int)
	length func() int
}

func runChurn(t *testing.T, seed uint64, ops int, p churnProblem) {
	t.Helper()
	g := wrand.New(seed)
	var live []float64
	w := 0.0
	n := 0
	for i := 0; i < ops; i++ {
		switch r := g.Float64(); {
		case r < 0.5: // insert
			w += 1 + g.Float64()
			if err := p.insert(w); err != nil {
				t.Fatalf("op %d: insert weight %v: %v", i, w, err)
			}
			live = append(live, w)
			n++
		case r < 0.75 && len(live) > 0: // delete a random live item
			j := g.IntN(len(live))
			dw := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			ok, err := p.del(dw)
			if err != nil {
				t.Fatalf("op %d: delete weight %v: %v", i, dw, err)
			}
			if !ok {
				t.Fatalf("op %d: delete weight %v: not found", i, dw)
			}
			n--
		default: // serial query vs oracle
			k := 1 + g.IntN(8)
			got, want := p.query(k)
			if !sameFloats(got, want) {
				t.Fatalf("op %d: k=%d: got %v, oracle %v", i, k, got, want)
			}
		}
		if p.length() != n {
			t.Fatalf("op %d: Len() = %d, oracle has %d", i, p.length(), n)
		}
		if (i+1)%2500 == 0 {
			p.batch(1 + g.IntN(8))
		}
	}
	p.batch(10)
}

func TestChurnInterval(t *testing.T) {
	g := wrand.New(201)
	ix, err := NewIntervalIndex([]IntervalItem[int]{}, WithReduction(WorstCase), WithUpdates(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	geo := map[float64][2]float64{}
	oracleFor := func(x float64, k int) []float64 {
		var in []float64
		for w, s := range geo {
			if s[0] <= x && x <= s[1] {
				in = append(in, w)
			}
		}
		return topWeights(in, k)
	}
	runChurn(t, 1201, churnSize(t), churnProblem{
		insert: func(w float64) error {
			lo := g.Float64() * 100
			hi := lo + g.ExpFloat64()*10
			if err := ix.Insert(IntervalItem[int]{Lo: lo, Hi: hi, Weight: w}); err != nil {
				return err
			}
			geo[w] = [2]float64{lo, hi}
			return nil
		},
		del: func(w float64) (bool, error) {
			delete(geo, w)
			return ix.Delete(w)
		},
		query: func(k int) ([]float64, []float64) {
			x := g.Float64() * 120
			got := weightsOf(ix.TopK(x, k), func(it IntervalItem[int]) float64 { return it.Weight })
			return got, oracleFor(x, k)
		},
		batch: func(k int) {
			const nq = 12
			xs := make([]float64, nq)
			oracle := make([][]float64, nq)
			for i := range xs {
				xs[i] = g.Float64() * 120
				oracle[i] = oracleFor(xs[i], k)
			}
			checkBatchInvariants(t, "churn-interval", ix.Stats,
				func(p int) []BatchResult[IntervalItem[int]] { return ix.QueryBatch(xs, k, p) },
				func(it IntervalItem[int]) float64 { return it.Weight }, oracle)
		},
		length: ix.Len,
	})
}

func TestChurnRange(t *testing.T) {
	// Default reduction (Expected) → Theorem 2's native dynamic path.
	g := wrand.New(202)
	ix, err := NewRangeIndex([]PointItem1[int]{}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	pos := map[float64]float64{}
	oracleFor := func(s Span, k int) []float64 {
		var in []float64
		for w, p := range pos {
			if s.Lo <= p && p <= s.Hi {
				in = append(in, w)
			}
		}
		return topWeights(in, k)
	}
	newSpan := func() Span {
		lo := g.Float64() * 100
		return Span{Lo: lo, Hi: lo + g.Float64()*30}
	}
	runChurn(t, 1202, churnSize(t), churnProblem{
		insert: func(w float64) error {
			p := g.Float64() * 100
			if err := ix.Insert(PointItem1[int]{Pos: p, Weight: w}); err != nil {
				return err
			}
			pos[w] = p
			return nil
		},
		del: func(w float64) (bool, error) {
			delete(pos, w)
			return ix.Delete(w)
		},
		query: func(k int) ([]float64, []float64) {
			s := newSpan()
			got := weightsOf(ix.TopK(s.Lo, s.Hi, k), func(it PointItem1[int]) float64 { return it.Weight })
			return got, oracleFor(s, k)
		},
		batch: func(k int) {
			const nq = 12
			spans := make([]Span, nq)
			oracle := make([][]float64, nq)
			for i := range spans {
				spans[i] = newSpan()
				oracle[i] = oracleFor(spans[i], k)
			}
			checkBatchInvariants(t, "churn-range", ix.Stats,
				func(p int) []BatchResult[PointItem1[int]] { return ix.QueryBatch(spans, k, p) },
				func(it PointItem1[int]) float64 { return it.Weight }, oracle)
		},
		length: ix.Len,
	})
}

func TestChurnDominance(t *testing.T) {
	// Overlay over the statically built Expected reduction.
	g := wrand.New(203)
	ix, err := NewDominanceIndex([]DominanceItem[int]{}, WithReduction(Expected), WithUpdates(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	pts := map[float64][3]float64{}
	oracleFor := func(q CornerQuery, k int) []float64 {
		var in []float64
		for w, p := range pts {
			if p[0] <= q.X && p[1] <= q.Y && p[2] <= q.Z {
				in = append(in, w)
			}
		}
		return topWeights(in, k)
	}
	newQ := func() CornerQuery {
		return CornerQuery{X: g.Float64() * 110, Y: g.Float64() * 110, Z: g.Float64() * 110}
	}
	runChurn(t, 1203, churnSize(t), churnProblem{
		insert: func(w float64) error {
			p := [3]float64{g.Float64() * 100, g.Float64() * 100, g.Float64() * 100}
			if err := ix.Insert(DominanceItem[int]{X: p[0], Y: p[1], Z: p[2], Weight: w}); err != nil {
				return err
			}
			pts[w] = p
			return nil
		},
		del: func(w float64) (bool, error) {
			delete(pts, w)
			return ix.Delete(w)
		},
		query: func(k int) ([]float64, []float64) {
			q := newQ()
			got := weightsOf(ix.TopK(q.X, q.Y, q.Z, k), func(it DominanceItem[int]) float64 { return it.Weight })
			return got, oracleFor(q, k)
		},
		batch: func(k int) {
			const nq = 10
			qs := make([]CornerQuery, nq)
			oracle := make([][]float64, nq)
			for i := range qs {
				qs[i] = newQ()
				oracle[i] = oracleFor(qs[i], k)
			}
			checkBatchInvariants(t, "churn-dominance", ix.Stats,
				func(p int) []BatchResult[DominanceItem[int]] { return ix.QueryBatch(qs, k, p) },
				func(it DominanceItem[int]) float64 { return it.Weight }, oracle)
		},
		length: ix.Len,
	})
}

func TestChurnEnclosure(t *testing.T) {
	g := wrand.New(204)
	ix, err := NewEnclosureIndex([]RectItem[int]{}, WithReduction(BinarySearch), WithUpdates(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	rects := map[float64][4]float64{}
	oracleFor := func(q PointQuery, k int) []float64 {
		var in []float64
		for w, r := range rects {
			if r[0] <= q.X && q.X <= r[1] && r[2] <= q.Y && q.Y <= r[3] {
				in = append(in, w)
			}
		}
		return topWeights(in, k)
	}
	newQ := func() PointQuery { return PointQuery{X: g.Float64() * 120, Y: g.Float64() * 120} }
	runChurn(t, 1204, churnSize(t), churnProblem{
		insert: func(w float64) error {
			x1, y1 := g.Float64()*100, g.Float64()*100
			r := [4]float64{x1, x1 + g.ExpFloat64()*12, y1, y1 + g.ExpFloat64()*12}
			if err := ix.Insert(RectItem[int]{X1: r[0], X2: r[1], Y1: r[2], Y2: r[3], Weight: w}); err != nil {
				return err
			}
			rects[w] = r
			return nil
		},
		del: func(w float64) (bool, error) {
			delete(rects, w)
			return ix.Delete(w)
		},
		query: func(k int) ([]float64, []float64) {
			q := newQ()
			got := weightsOf(ix.TopK(q.X, q.Y, k), func(it RectItem[int]) float64 { return it.Weight })
			return got, oracleFor(q, k)
		},
		batch: func(k int) {
			const nq = 10
			qs := make([]PointQuery, nq)
			oracle := make([][]float64, nq)
			for i := range qs {
				qs[i] = newQ()
				oracle[i] = oracleFor(qs[i], k)
			}
			checkBatchInvariants(t, "churn-enclosure", ix.Stats,
				func(p int) []BatchResult[RectItem[int]] { return ix.QueryBatch(qs, k, p) },
				func(it RectItem[int]) float64 { return it.Weight }, oracle)
		},
		length: ix.Len,
	})
}

func TestChurnHalfplane(t *testing.T) {
	g := wrand.New(205)
	ix, err := NewHalfplaneIndex([]PointItem2[int]{}, WithReduction(WorstCase), WithUpdates(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	pts := map[float64][2]float64{}
	oracleFor := func(q HalfplaneQuery, k int) []float64 {
		var in []float64
		for w, p := range pts {
			if q.A*p[0]+q.B*p[1] >= q.C {
				in = append(in, w)
			}
		}
		return topWeights(in, k)
	}
	newQ := func() HalfplaneQuery {
		theta := g.Float64() * 2 * math.Pi
		return HalfplaneQuery{A: math.Cos(theta), B: math.Sin(theta), C: g.NormFloat64() * 8}
	}
	runChurn(t, 1205, churnSize(t), churnProblem{
		insert: func(w float64) error {
			p := [2]float64{g.NormFloat64() * 10, g.NormFloat64() * 10}
			if err := ix.Insert(PointItem2[int]{X: p[0], Y: p[1], Weight: w}); err != nil {
				return err
			}
			pts[w] = p
			return nil
		},
		del: func(w float64) (bool, error) {
			delete(pts, w)
			return ix.Delete(w)
		},
		query: func(k int) ([]float64, []float64) {
			q := newQ()
			got := weightsOf(ix.TopK(q.A, q.B, q.C, k), func(it PointItem2[int]) float64 { return it.Weight })
			return got, oracleFor(q, k)
		},
		batch: func(k int) {
			const nq = 10
			qs := make([]HalfplaneQuery, nq)
			oracle := make([][]float64, nq)
			for i := range qs {
				qs[i] = newQ()
				oracle[i] = oracleFor(qs[i], k)
			}
			checkBatchInvariants(t, "churn-halfplane", ix.Stats,
				func(p int) []BatchResult[PointItem2[int]] { return ix.QueryBatch(qs, k, p) },
				func(it PointItem2[int]) float64 { return it.Weight }, oracle)
		},
		length: ix.Len,
	})
}

func TestChurnHalfspace(t *testing.T) {
	g := wrand.New(206)
	const d = 4
	ix, err := NewHalfspaceIndex([]PointItemN[int]{}, d, WithReduction(Expected), WithUpdates(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	pts := map[float64][]float64{}
	dot := func(a, p []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * p[i]
		}
		return s
	}
	oracleFor := func(q HalfspaceQuery, k int) []float64 {
		var in []float64
		for w, p := range pts {
			if dot(q.A, p) >= q.C {
				in = append(in, w)
			}
		}
		return topWeights(in, k)
	}
	newQ := func() HalfspaceQuery {
		a := make([]float64, d)
		for i := range a {
			a[i] = g.NormFloat64()
		}
		return HalfspaceQuery{A: a, C: g.NormFloat64() * 8}
	}
	runChurn(t, 1206, churnSize(t), churnProblem{
		insert: func(w float64) error {
			p := make([]float64, d)
			for i := range p {
				p[i] = g.NormFloat64() * 10
			}
			if err := ix.Insert(PointItemN[int]{Coords: p, Weight: w}); err != nil {
				return err
			}
			pts[w] = p
			return nil
		},
		del: func(w float64) (bool, error) {
			delete(pts, w)
			return ix.Delete(w)
		},
		query: func(k int) ([]float64, []float64) {
			q := newQ()
			got := weightsOf(ix.TopK(q.A, q.C, k), func(it PointItemN[int]) float64 { return it.Weight })
			return got, oracleFor(q, k)
		},
		batch: func(k int) {
			const nq = 8
			qs := make([]HalfspaceQuery, nq)
			oracle := make([][]float64, nq)
			for i := range qs {
				qs[i] = newQ()
				oracle[i] = oracleFor(qs[i], k)
			}
			checkBatchInvariants(t, "churn-halfspace", ix.Stats,
				func(p int) []BatchResult[PointItemN[int]] { return ix.QueryBatch(qs, k, p) },
				func(it PointItemN[int]) float64 { return it.Weight }, oracle)
		},
		length: ix.Len,
	})
}

func TestChurnCircular(t *testing.T) {
	g := wrand.New(207)
	const d = 2
	ix, err := NewCircularIndex([]PointItemN[int]{}, d, WithReduction(WorstCase), WithUpdates(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	pts := map[float64][2]float64{}
	oracleFor := func(q BallQuery, k int) []float64 {
		var in []float64
		for w, p := range pts {
			dx, dy := p[0]-q.Center[0], p[1]-q.Center[1]
			if dx*dx+dy*dy <= q.Radius*q.Radius {
				in = append(in, w)
			}
		}
		return topWeights(in, k)
	}
	newQ := func() BallQuery {
		return BallQuery{
			Center: []float64{g.NormFloat64() * 10, g.NormFloat64() * 10},
			Radius: 3 + g.Float64()*12,
		}
	}
	runChurn(t, 1207, churnSize(t), churnProblem{
		insert: func(w float64) error {
			p := [2]float64{g.NormFloat64() * 10, g.NormFloat64() * 10}
			if err := ix.Insert(PointItemN[int]{Coords: p[:], Weight: w}); err != nil {
				return err
			}
			pts[w] = p
			return nil
		},
		del: func(w float64) (bool, error) {
			delete(pts, w)
			return ix.Delete(w)
		},
		query: func(k int) ([]float64, []float64) {
			q := newQ()
			got := weightsOf(ix.TopK(q.Center, q.Radius, k), func(it PointItemN[int]) float64 { return it.Weight })
			return got, oracleFor(q, k)
		},
		batch: func(k int) {
			const nq = 8
			qs := make([]BallQuery, nq)
			oracle := make([][]float64, nq)
			for i := range qs {
				qs[i] = newQ()
				oracle[i] = oracleFor(qs[i], k)
			}
			checkBatchInvariants(t, "churn-circular", ix.Stats,
				func(p int) []BatchResult[PointItemN[int]] { return ix.QueryBatch(qs, k, p) },
				func(it PointItemN[int]) float64 { return it.Weight }, oracle)
		},
		length: ix.Len,
	})
}

func TestChurnOrtho(t *testing.T) {
	g := wrand.New(208)
	const d = 2
	ix, err := NewOrthoIndex([]PointItemN[int]{}, d, WithReduction(BinarySearch), WithUpdates(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	pts := map[float64][2]float64{}
	oracleFor := func(q BoxQuery, k int) []float64 {
		var in []float64
		for w, p := range pts {
			if q.Lo[0] <= p[0] && p[0] <= q.Hi[0] && q.Lo[1] <= p[1] && p[1] <= q.Hi[1] {
				in = append(in, w)
			}
		}
		return topWeights(in, k)
	}
	newQ := func() BoxQuery {
		lo := []float64{g.Float64() * 70, g.Float64() * 70}
		return BoxQuery{Lo: lo, Hi: []float64{lo[0] + 10 + g.Float64()*30, lo[1] + 10 + g.Float64()*30}}
	}
	runChurn(t, 1208, churnSize(t), churnProblem{
		insert: func(w float64) error {
			p := [2]float64{g.Float64() * 100, g.Float64() * 100}
			if err := ix.Insert(PointItemN[int]{Coords: p[:], Weight: w}); err != nil {
				return err
			}
			pts[w] = p
			return nil
		},
		del: func(w float64) (bool, error) {
			delete(pts, w)
			return ix.Delete(w)
		},
		query: func(k int) ([]float64, []float64) {
			q := newQ()
			res, err := ix.TopK(q.Lo, q.Hi, k)
			if err != nil {
				t.Fatalf("ortho TopK: %v", err)
			}
			got := weightsOf(res, func(it PointItemN[int]) float64 { return it.Weight })
			return got, oracleFor(q, k)
		},
		batch: func(k int) {
			const nq = 8
			qs := make([]BoxQuery, nq)
			oracle := make([][]float64, nq)
			for i := range qs {
				qs[i] = newQ()
				oracle[i] = oracleFor(qs[i], k)
			}
			checkBatchInvariants(t, "churn-ortho", ix.Stats,
				func(p int) []BatchResult[PointItemN[int]] {
					res, err := ix.QueryBatch(qs, k, p)
					if err != nil {
						t.Fatal(err)
					}
					return res
				},
				func(it PointItemN[int]) float64 { return it.Weight }, oracle)
		},
		length: ix.Len,
	})
}

// The static Insert/Delete error contract and the Insert validation
// checks are covered for every registered problem by the registry-driven
// suite in conformance_test.go.
