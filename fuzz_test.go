package topk

import (
	"bytes"
	"testing"
)

// Fuzz targets: an op-sequence decoder turns arbitrary bytes into a
// bounded Insert/Delete/Query program, executed simultaneously against a
// dynamic index and a brute-force oracle; any divergence is a bug. The
// first byte picks the reduction, so the corpus explores the overlay over
// WorstCase/BinarySearch/Expected as well as the native dynamic paths.
// `make fuzz-smoke` runs both targets briefly in CI.

const fuzzOpCap = 200

// fuzzReduction maps a byte to a reduction, never FullScan (the oracle
// itself) to keep the diff meaningful.
func fuzzReduction(b byte) Reduction {
	switch b % 3 {
	case 0:
		return Expected
	case 1:
		return WorstCase
	}
	return BinarySearch
}

// fuzzByte streams data cyclically; ok goes false once every byte has
// been consumed at least once, capping the program length.
type fuzzProg struct {
	data []byte
	pos  int
}

func (p *fuzzProg) next() (byte, bool) {
	if len(p.data) == 0 || p.pos >= len(p.data) || p.pos >= fuzzOpCap {
		return 0, false
	}
	b := p.data[p.pos]
	p.pos++
	return b, true
}

// coord turns one byte into a small float coordinate.
func coord(b byte) float64 { return float64(b) / 4 }

func FuzzDynamicInterval(f *testing.F) {
	f.Add([]byte{0, 10, 20, 30, 7, 3, 255, 1, 2, 3, 4, 90})
	f.Add([]byte{1, 200, 100, 50, 25, 12, 6, 3})
	f.Add([]byte{2, 0, 0, 0, 3, 3, 3, 7, 7, 7, 11, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		ix, err := NewIntervalIndex([]IntervalItem[int]{},
			WithReduction(fuzzReduction(data[0])), WithUpdates(), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		prog := &fuzzProg{data: data[1:]}
		geo := map[float64][2]float64{}
		var order []float64
		w := 0.0
		for {
			op, ok := prog.next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0, 1: // insert
				a, _ := prog.next()
				b, _ := prog.next()
				lo, span := coord(a), coord(b)
				w++
				if err := ix.Insert(IntervalItem[int]{Lo: lo, Hi: lo + span, Weight: w}); err != nil {
					t.Fatalf("insert %v: %v", w, err)
				}
				geo[w] = [2]float64{lo, lo + span}
				order = append(order, w)
			case 2: // delete
				if len(order) == 0 {
					continue
				}
				b, _ := prog.next()
				i := int(b) % len(order)
				dw := order[i]
				order[i] = order[len(order)-1]
				order = order[:len(order)-1]
				if ok, err := ix.Delete(dw); err != nil || !ok {
					t.Fatalf("delete %v: (%v, %v)", dw, ok, err)
				}
				delete(geo, dw)
			default: // query
				a, _ := prog.next()
				b, _ := prog.next()
				x := coord(a)
				k := 1 + int(b)%6
				got := intervalWeights(ix.TopK(x, k))
				var in []float64
				for iw, s := range geo {
					if s[0] <= x && x <= s[1] {
						in = append(in, iw)
					}
				}
				want := topWeights(in, k)
				if !sameFloats(got, want) {
					t.Fatalf("x=%v k=%d: got %v, oracle %v", x, k, got, want)
				}
			}
			if ix.Len() != len(geo) {
				t.Fatalf("Len() = %d, oracle %d", ix.Len(), len(geo))
			}
		}
	})
}

// FuzzShardedInterval diffs a sharded interval index against an
// unsharded one over random op sequences: the single engine is the
// oracle, so any fan-out/merge or update-routing divergence — wrong
// order, wrong owner, lost item — fails immediately. The second byte
// picks the shard count and placement policy.
func FuzzShardedInterval(f *testing.F) {
	f.Add([]byte{0, 3, 10, 20, 30, 7, 3, 255, 1, 2, 3, 4, 90})
	f.Add([]byte{1, 8, 200, 100, 50, 25, 12, 6, 3})
	f.Add([]byte{2, 0, 0, 0, 0, 3, 3, 3, 7, 7, 7, 11, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		r := fuzzReduction(data[0])
		shards := 1 + int(data[1])%8
		policy := ShardByWeight
		if data[1]&0x80 != 0 {
			policy = ShardRoundRobin
		}
		sharded, err := NewShardedIntervalIndex([]IntervalItem[int]{}, shards,
			WithReduction(r), WithUpdates(), WithSeed(1), WithShardPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		single, err := NewIntervalIndex([]IntervalItem[int]{},
			WithReduction(r), WithUpdates(), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		prog := &fuzzProg{data: data[2:]}
		var order []float64
		w := 0.0
		for {
			op, ok := prog.next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0, 1: // insert
				a, _ := prog.next()
				b, _ := prog.next()
				lo, span := coord(a), coord(b)
				w++
				it := IntervalItem[int]{Lo: lo, Hi: lo + span, Weight: w}
				if err := sharded.Insert(it); err != nil {
					t.Fatalf("sharded insert %v: %v", w, err)
				}
				if err := single.Insert(it); err != nil {
					t.Fatalf("single insert %v: %v", w, err)
				}
				order = append(order, w)
			case 2: // delete
				if len(order) == 0 {
					continue
				}
				b, _ := prog.next()
				i := int(b) % len(order)
				dw := order[i]
				order[i] = order[len(order)-1]
				order = order[:len(order)-1]
				okA, errA := sharded.Delete(dw)
				okB, errB := single.Delete(dw)
				if okA != okB || errA != nil || errB != nil {
					t.Fatalf("delete %v: sharded (%v, %v), single (%v, %v)", dw, okA, errA, okB, errB)
				}
			default: // query
				a, _ := prog.next()
				b, _ := prog.next()
				x := coord(a)
				k := 1 + int(b)%6
				got := intervalWeights(sharded.TopK(x, k))
				want := intervalWeights(single.TopK(x, k))
				if !sameFloats(got, want) {
					t.Fatalf("x=%v k=%d shards=%d %v: sharded %v, single %v", x, k, shards, policy, got, want)
				}
			}
			if sharded.Len() != single.Len() {
				t.Fatalf("Len: sharded %d, single %d", sharded.Len(), single.Len())
			}
		}
	})
}

func FuzzDynamicDominance(f *testing.F) {
	f.Add([]byte{0, 5, 6, 7, 3, 50, 60, 70, 255, 40, 40, 40, 2})
	f.Add([]byte{1, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{2, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		ix, err := NewDominanceIndex([]DominanceItem[int]{},
			WithReduction(fuzzReduction(data[0])), WithUpdates(), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		prog := &fuzzProg{data: data[1:]}
		pts := map[float64][3]float64{}
		var order []float64
		w := 0.0
		for {
			op, ok := prog.next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0, 1: // insert
				a, _ := prog.next()
				b, _ := prog.next()
				c, _ := prog.next()
				p := [3]float64{coord(a), coord(b), coord(c)}
				w++
				if err := ix.Insert(DominanceItem[int]{X: p[0], Y: p[1], Z: p[2], Weight: w}); err != nil {
					t.Fatalf("insert %v: %v", w, err)
				}
				pts[w] = p
				order = append(order, w)
			case 2: // delete
				if len(order) == 0 {
					continue
				}
				b, _ := prog.next()
				i := int(b) % len(order)
				dw := order[i]
				order[i] = order[len(order)-1]
				order = order[:len(order)-1]
				if ok, err := ix.Delete(dw); err != nil || !ok {
					t.Fatalf("delete %v: (%v, %v)", dw, ok, err)
				}
				delete(pts, dw)
			default: // query
				a, _ := prog.next()
				b, _ := prog.next()
				c, _ := prog.next()
				d, _ := prog.next()
				q := [3]float64{coord(a), coord(b), coord(c)}
				k := 1 + int(d)%6
				got := weightsOf(ix.TopK(q[0], q[1], q[2], k),
					func(it DominanceItem[int]) float64 { return it.Weight })
				var in []float64
				for iw, p := range pts {
					if p[0] <= q[0] && p[1] <= q[1] && p[2] <= q[2] {
						in = append(in, iw)
					}
				}
				want := topWeights(in, k)
				if !sameFloats(got, want) {
					t.Fatalf("q=%v k=%d: got %v, oracle %v", q, k, got, want)
				}
			}
			if ix.Len() != len(pts) {
				t.Fatalf("Len() = %d, oracle %d", ix.Len(), len(pts))
			}
		}
	})
}

// FuzzSnapshotRestore feeds arbitrary bytes to the snapshot decoder: a
// restore must either fail with an error or produce a working index —
// it must never panic, hang, or over-allocate. The seed corpus holds
// valid snapshots (static and overlay) so mutation explores the format's
// interior, not just its magic-number gate.
func FuzzSnapshotRestore(f *testing.F) {
	seedItems := []IntervalItem[int]{
		{Lo: 0, Hi: 10, Weight: 1, Data: 1},
		{Lo: 5, Hi: 15, Weight: 2, Data: 2},
		{Lo: 8, Hi: 20, Weight: 3, Data: 3},
	}
	for _, opts := range [][]Option{
		nil,
		{WithUpdates()},
		{WithReduction(Expected)},
	} {
		ix, err := NewIntervalIndex(seedItems, opts...)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ix.Snapshot(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("TKSN"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := RestoreIntervalIndex[int](bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// A restore that succeeds must hand back a usable index.
		ix.TopK(7, 3)
		ix.Max(7)
		_ = ix.Stats()
	})
}
