package topk

import (
	"math"
	"sort"
	"testing"

	"topk/internal/wrand"
)

var allReductions = []Reduction{Expected, WorstCase, BinarySearch, FullScan}

func TestReductionString(t *testing.T) {
	names := map[Reduction]string{
		Expected: "Expected", WorstCase: "WorstCase",
		BinarySearch: "BinarySearch", FullScan: "FullScan",
	}
	for r, want := range names {
		if got := r.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if got := Reduction(99).String(); got != "Reduction(99)" {
		t.Errorf("unknown reduction String() = %q", got)
	}
}

func genIntervalItems(g *wrand.RNG, n int) []IntervalItem[int] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]IntervalItem[int], n)
	for i := range items {
		lo := g.Float64() * 100
		items[i] = IntervalItem[int]{Lo: lo, Hi: lo + g.ExpFloat64()*10, Weight: ws[i], Data: i}
	}
	return items
}

func intervalOracle(items []IntervalItem[int], x float64, k int) []float64 {
	var ws []float64
	for _, it := range items {
		if it.Lo <= x && x <= it.Hi {
			ws = append(ws, it.Weight)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	if k < len(ws) {
		ws = ws[:k]
	}
	return ws
}

func TestIntervalIndexAllReductions(t *testing.T) {
	g := wrand.New(1)
	items := genIntervalItems(g, 3000)
	for _, r := range allReductions {
		ix, err := NewIntervalIndex(items, WithReduction(r), WithSeed(7))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if ix.Len() != len(items) {
			t.Fatalf("%v: Len = %d", r, ix.Len())
		}
		for trial := 0; trial < 40; trial++ {
			x := g.Float64() * 120
			for _, k := range []int{1, 5, 100, 2000, 5000} {
				got := ix.TopK(x, k)
				want := intervalOracle(items, x, k)
				if len(got) != len(want) {
					t.Fatalf("%v x=%v k=%d: %d results, want %d", r, x, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Weight != want[i] {
						t.Fatalf("%v x=%v k=%d: result %d weight %v, want %v", r, x, k, i, got[i].Weight, want[i])
					}
					// Payload must travel with the item.
					if items[got[i].Data].Weight != got[i].Weight {
						t.Fatalf("%v: payload mismatch", r)
					}
				}
			}
		}
	}
}

func TestIntervalIndexDirectQueries(t *testing.T) {
	g := wrand.New(2)
	items := genIntervalItems(g, 800)
	ix, err := NewIntervalIndex(items)
	if err != nil {
		t.Fatal(err)
	}
	x := 50.0
	want := intervalOracle(items, x, len(items))

	if m, ok := ix.Max(x); len(want) > 0 {
		if !ok || m.Weight != want[0] {
			t.Fatalf("Max = (%v,%v), want %v", m.Weight, ok, want[0])
		}
	} else if ok {
		t.Fatal("Max found item in empty result")
	}

	count := 0
	ix.ReportAbove(x, math.Inf(-1), func(it IntervalItem[int]) bool {
		count++
		return true
	})
	if count != len(want) {
		t.Fatalf("ReportAbove visited %d, want %d", count, len(want))
	}
}

func TestIntervalIndexDynamic(t *testing.T) {
	g := wrand.New(3)
	items := genIntervalItems(g, 1000)
	ix, err := NewIntervalIndex(items, WithReduction(Expected), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	live := append([]IntervalItem[int](nil), items...)

	for round := 0; round < 4; round++ {
		for i := 0; i < 100; i++ {
			lo := g.Float64() * 120
			it := IntervalItem[int]{Lo: lo, Hi: lo + g.Float64()*8, Weight: 2e6 + g.Float64()*1e6, Data: -1}
			if err := ix.Insert(it); err != nil {
				continue // duplicate weight collision
			}
			live = append(live, it)
		}
		for i := 0; i < 80; i++ {
			v := g.IntN(len(live))
			ok, err := ix.Delete(live[v].Weight)
			if err != nil || !ok {
				t.Fatalf("Delete: ok=%v err=%v", ok, err)
			}
			live[v] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for trial := 0; trial < 10; trial++ {
			x := g.Float64() * 120
			got := ix.TopK(x, 20)
			want := intervalOracle(live, x, 20)
			if len(got) != len(want) {
				t.Fatalf("round %d: %d results, want %d", round, len(got), len(want))
			}
			for i := range got {
				if got[i].Weight != want[i] {
					t.Fatalf("round %d: result %d = %v, want %v", round, i, got[i].Weight, want[i])
				}
			}
		}
	}
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(live))
	}
}

func TestIntervalIndexStaticRejectsUpdates(t *testing.T) {
	g := wrand.New(4)
	ix, err := NewIntervalIndex(genIntervalItems(g, 50), WithReduction(WorstCase))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(IntervalItem[int]{Lo: 0, Hi: 1, Weight: 1e9}); err == nil {
		t.Fatal("static index accepted Insert")
	}
	if _, err := ix.Delete(1); err == nil {
		t.Fatal("static index accepted Delete")
	}
}

func TestIntervalIndexValidation(t *testing.T) {
	dup := []IntervalItem[int]{{Lo: 0, Hi: 1, Weight: 5}, {Lo: 2, Hi: 3, Weight: 5}}
	if _, err := NewIntervalIndex(dup); err == nil {
		t.Fatal("duplicate weights accepted")
	}
	g := wrand.New(5)
	ix, _ := NewIntervalIndex(genIntervalItems(g, 10))
	if err := ix.Insert(IntervalItem[int]{Lo: 5, Hi: 2, Weight: 99}); err == nil {
		t.Fatal("malformed interval accepted")
	}
}

func TestIntervalIndexStats(t *testing.T) {
	g := wrand.New(6)
	ix, err := NewIntervalIndex(genIntervalItems(g, 2000), WithBlockSize(128), WithMemBlocks(4))
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Blocks <= 0 {
		t.Errorf("Blocks = %d, want > 0", st.Blocks)
	}
	if st.Reduction != Expected {
		t.Errorf("Reduction = %v", st.Reduction)
	}
	ix.ResetStats()
	before := ix.Stats().IOs()
	ix.TopK(50, 10)
	if after := ix.Stats().IOs(); after <= before {
		t.Errorf("query charged no I/Os (%d -> %d)", before, after)
	}
}

func genDomItems(g *wrand.RNG, n int) []DominanceItem[string] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]DominanceItem[string], n)
	for i := range items {
		items[i] = DominanceItem[string]{
			X: g.Float64() * 100, Y: g.Float64() * 100, Z: g.Float64() * 100,
			Weight: ws[i], Data: "hotel",
		}
	}
	return items
}

func TestDominanceIndexAllReductions(t *testing.T) {
	g := wrand.New(7)
	items := genDomItems(g, 1200)
	oracle := func(x, y, z float64, k int) []float64 {
		var ws []float64
		for _, it := range items {
			if it.X <= x && it.Y <= y && it.Z <= z {
				ws = append(ws, it.Weight)
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
		if k < len(ws) {
			ws = ws[:k]
		}
		return ws
	}
	for _, r := range allReductions {
		ix, err := NewDominanceIndex(items, WithReduction(r), WithSeed(11))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		for trial := 0; trial < 25; trial++ {
			x, y, z := g.Float64()*110, g.Float64()*110, g.Float64()*110
			for _, k := range []int{1, 10, 400} {
				got := ix.TopK(x, y, z, k)
				want := oracle(x, y, z, k)
				if len(got) != len(want) {
					t.Fatalf("%v: %d results, want %d", r, len(got), len(want))
				}
				for i := range got {
					if got[i].Weight != want[i] {
						t.Fatalf("%v: result %d = %v, want %v", r, i, got[i].Weight, want[i])
					}
				}
			}
		}
		if m, ok := ix.Max(110, 110, 110); !ok || m.Data != "hotel" {
			t.Fatalf("%v: Max = %+v,%v", r, m, ok)
		}
	}
}

func TestEnclosureIndexAllReductions(t *testing.T) {
	g := wrand.New(8)
	n := 1000
	ws := g.UniqueFloats(n, 1e6)
	items := make([]RectItem[int], n)
	for i := range items {
		x1, y1 := g.Float64()*100, g.Float64()*100
		items[i] = RectItem[int]{
			X1: x1, X2: x1 + g.ExpFloat64()*12,
			Y1: y1, Y2: y1 + g.ExpFloat64()*12,
			Weight: ws[i], Data: i,
		}
	}
	oracle := func(x, y float64, k int) []float64 {
		var out []float64
		for _, it := range items {
			if it.X1 <= x && x <= it.X2 && it.Y1 <= y && y <= it.Y2 {
				out = append(out, it.Weight)
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(out)))
		if k < len(out) {
			out = out[:k]
		}
		return out
	}
	for _, r := range allReductions {
		ix, err := NewEnclosureIndex(items, WithReduction(r), WithSeed(13))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		for trial := 0; trial < 25; trial++ {
			x, y := g.Float64()*120, g.Float64()*120
			for _, k := range []int{1, 10, 300} {
				got := ix.TopK(x, y, k)
				want := oracle(x, y, k)
				if len(got) != len(want) {
					t.Fatalf("%v (%v,%v) k=%d: %d results, want %d", r, x, y, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Weight != want[i] {
						t.Fatalf("%v: result %d = %v, want %v", r, i, got[i].Weight, want[i])
					}
				}
			}
		}
	}
}

func TestHalfplaneIndexAllReductions(t *testing.T) {
	g := wrand.New(9)
	n := 800
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItem2[int], n)
	for i := range items {
		items[i] = PointItem2[int]{X: g.NormFloat64() * 10, Y: g.NormFloat64() * 10, Weight: ws[i], Data: i}
	}
	oracle := func(a, b, c float64, k int) []float64 {
		var out []float64
		for _, it := range items {
			if a*it.X+b*it.Y >= c {
				out = append(out, it.Weight)
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(out)))
		if k < len(out) {
			out = out[:k]
		}
		return out
	}
	for _, r := range allReductions {
		ix, err := NewHalfplaneIndex(items, WithReduction(r), WithSeed(17))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		for trial := 0; trial < 25; trial++ {
			theta := g.Float64() * 2 * math.Pi
			a, b := math.Cos(theta), math.Sin(theta)
			c := g.NormFloat64() * 8
			for _, k := range []int{1, 10, 300} {
				got := ix.TopK(a, b, c, k)
				want := oracle(a, b, c, k)
				if len(got) != len(want) {
					t.Fatalf("%v: %d results, want %d", r, len(got), len(want))
				}
				for i := range got {
					if got[i].Weight != want[i] {
						t.Fatalf("%v: result %d = %v, want %v", r, i, got[i].Weight, want[i])
					}
				}
			}
		}
	}
}

func TestHalfspaceIndexD4(t *testing.T) {
	g := wrand.New(10)
	const n, d = 600, 4
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = g.NormFloat64() * 10
		}
		items[i] = PointItemN[int]{Coords: c, Weight: ws[i], Data: i}
	}
	for _, r := range allReductions {
		ix, err := NewHalfspaceIndex(items, d, WithReduction(r), WithSeed(19))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if ix.Dim() != d {
			t.Fatalf("Dim = %d", ix.Dim())
		}
		for trial := 0; trial < 15; trial++ {
			a := make([]float64, d)
			for j := range a {
				a[j] = g.NormFloat64()
			}
			c := g.NormFloat64() * 10
			var want []float64
			for _, it := range items {
				dot := 0.0
				for j := range a {
					dot += a[j] * it.Coords[j]
				}
				if dot >= c {
					want = append(want, it.Weight)
				}
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(want)))
			k := 25
			if k > len(want) {
				k = len(want)
			}
			got := ix.TopK(a, c, 25)
			if len(got) != k {
				t.Fatalf("%v: %d results, want %d", r, len(got), k)
			}
			for i := range got {
				if got[i].Weight != want[i] {
					t.Fatalf("%v: result %d = %v, want %v", r, i, got[i].Weight, want[i])
				}
			}
		}
	}
}

func TestCircularIndexAllReductions(t *testing.T) {
	g := wrand.New(11)
	const n, d = 600, 2
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{
			Coords: []float64{g.NormFloat64() * 10, g.NormFloat64() * 10},
			Weight: ws[i], Data: i,
		}
	}
	for _, r := range allReductions {
		ix, err := NewCircularIndex(items, d, WithReduction(r), WithSeed(23))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		for trial := 0; trial < 20; trial++ {
			center := []float64{g.NormFloat64() * 10, g.NormFloat64() * 10}
			radius := 3 + g.Float64()*12
			var want []float64
			for _, it := range items {
				dx, dy := it.Coords[0]-center[0], it.Coords[1]-center[1]
				if dx*dx+dy*dy <= radius*radius {
					want = append(want, it.Weight)
				}
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(want)))
			k := 15
			if k > len(want) {
				k = len(want)
			}
			got := ix.TopK(center, radius, 15)
			if len(got) != k {
				t.Fatalf("%v: %d results, want %d", r, len(got), k)
			}
			for i := range got {
				if got[i].Weight != want[i] {
					t.Fatalf("%v: result %d = %v, want %v", r, i, got[i].Weight, want[i])
				}
			}
			// Unlifted coordinates must round-trip.
			for _, it := range got {
				if len(it.Coords) != d {
					t.Fatalf("%v: result has %d coords", r, len(it.Coords))
				}
			}
		}
	}
}

func TestIndexValidationErrors(t *testing.T) {
	if _, err := NewHalfspaceIndex[int](nil, 0); err == nil {
		t.Error("dimension 0 accepted")
	}
	if _, err := NewCircularIndex[int](nil, 0); err == nil {
		t.Error("dimension 0 accepted")
	}
	bad := []PointItemN[int]{{Coords: []float64{1}, Weight: 1}}
	if _, err := NewHalfspaceIndex(bad, 3); err == nil {
		t.Error("coordinate mismatch accepted")
	}
	if _, err := NewCircularIndex(bad, 3); err == nil {
		t.Error("coordinate mismatch accepted")
	}
	dupD := []DominanceItem[int]{{X: 1, Weight: 5}, {X: 2, Weight: 5}}
	if _, err := NewDominanceIndex(dupD); err == nil {
		t.Error("duplicate weights accepted")
	}
	dupP := []PointItem2[int]{{X: 1, Weight: 5}, {X: 2, Weight: 5}}
	if _, err := NewHalfplaneIndex(dupP); err == nil {
		t.Error("duplicate weights accepted")
	}
	dupR := []RectItem[int]{{X2: 1, Y2: 1, Weight: 5}, {X2: 2, Y2: 2, Weight: 5}}
	if _, err := NewEnclosureIndex(dupR); err == nil {
		t.Error("duplicate weights accepted")
	}
}

func TestEmptyIndexes(t *testing.T) {
	ii, err := NewIntervalIndex[int](nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ii.TopK(5, 3); len(got) != 0 {
		t.Errorf("empty interval index returned %v", got)
	}
	di, err := NewDominanceIndex[int](nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := di.TopK(1, 1, 1, 3); len(got) != 0 {
		t.Errorf("empty dominance index returned %v", got)
	}
	if _, ok := di.Max(1, 1, 1); ok {
		t.Error("empty dominance index found a max")
	}
}

func TestIntervalItemsSnapshot(t *testing.T) {
	g := wrand.New(35)
	items := genIntervalItems(g, 200)
	ix, err := NewIntervalIndex(items)
	if err != nil {
		t.Fatal(err)
	}
	_ = ix.Insert(IntervalItem[int]{Lo: 10, Hi: 20, Weight: 9e9, Data: 42})
	_, _ = ix.Delete(items[0].Weight)
	snap := ix.Items()
	if len(snap) != ix.Len() {
		t.Fatalf("snapshot %d items, index %d", len(snap), ix.Len())
	}
	found := false
	for _, it := range snap {
		if it.Weight == 9e9 && it.Data == 42 {
			found = true
		}
		if it.Weight == items[0].Weight {
			t.Fatal("deleted item still in snapshot")
		}
	}
	if !found {
		t.Fatal("inserted item missing from snapshot")
	}
}

func TestNonFiniteWeightsRejected(t *testing.T) {
	nan := math.NaN()
	if _, err := NewIntervalIndex([]IntervalItem[int]{{Lo: 0, Hi: 1, Weight: nan}}); err == nil {
		t.Error("NaN weight accepted at build")
	}
	if _, err := NewRangeIndex([]PointItem1[int]{{Pos: 0, Weight: math.Inf(1)}}); err == nil {
		t.Error("+Inf weight accepted at build")
	}
	if _, err := NewDominanceIndex([]DominanceItem[int]{{Weight: nan}}); err == nil {
		t.Error("NaN weight accepted by dominance build")
	}
	ix, err := NewIntervalIndex([]IntervalItem[int]{{Lo: 0, Hi: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(IntervalItem[int]{Lo: 0, Hi: 1, Weight: nan}); err == nil {
		t.Error("NaN weight accepted by Insert")
	}
	rx, err := NewRangeIndex([]PointItem1[int]{{Pos: 0, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rx.Insert(PointItem1[int]{Pos: 0, Weight: math.Inf(-1)}); err == nil {
		t.Error("-Inf weight accepted by Insert")
	}
}

func TestPrioritizedAccessorAllReductions(t *testing.T) {
	// The facade's ReportAbove path reuses the reduction's internal
	// prioritized structure; verify it exists and answers correctly for
	// every reduction.
	g := wrand.New(36)
	items := genIntervalItems(g, 500)
	for _, r := range allReductions {
		ix, err := NewIntervalIndex(items, WithReduction(r))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if ix.eng.pri == nil {
			t.Fatalf("%v: no prioritized accessor", r)
		}
		x := 50.0
		want := intervalOracle(items, x, len(items))
		count := 0
		ix.ReportAbove(x, math.Inf(-1), func(IntervalItem[int]) bool { count++; return true })
		if count != len(want) {
			t.Fatalf("%v: ReportAbove saw %d, want %d", r, count, len(want))
		}
		// Max must agree with TopK(·, 1).
		m, ok := ix.Max(x)
		if len(want) == 0 {
			if ok {
				t.Fatalf("%v: Max found item in empty result", r)
			}
		} else if !ok || m.Weight != want[0] {
			t.Fatalf("%v: Max = (%v,%v), want %v", r, m.Weight, ok, want[0])
		}
	}
}

func TestItemsAllReductions(t *testing.T) {
	g := wrand.New(37)
	items := genIntervalItems(g, 120)
	for _, r := range allReductions {
		ix, err := NewIntervalIndex(items, WithReduction(r))
		if err != nil {
			t.Fatal(err)
		}
		snap := ix.Items()
		if len(snap) != len(items) {
			t.Fatalf("%v: Items returned %d of %d", r, len(snap), len(items))
		}
		seen := map[float64]bool{}
		for _, it := range snap {
			seen[it.Weight] = true
		}
		for _, it := range items {
			if !seen[it.Weight] {
				t.Fatalf("%v: snapshot missing weight %v", r, it.Weight)
			}
		}
	}
}
