package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/enclosure"
)

// RectItem is one weighted axis-parallel rectangle with a payload — the
// paper's dating example: a member's preferred age range × height range,
// weighted by salary.
type RectItem[T any] struct {
	X1, X2, Y1, Y2 float64
	Weight         float64
	Data           T
}

// EnclosureIndex answers top-k 2D point-enclosure queries (the paper's
// Theorem 5): given a point (x, y), return the k heaviest rectangles
// containing it.
type EnclosureIndex[T any] struct {
	opts    Options
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[enclosure.Pt2, enclosure.Rect]
	dyn     updatableTopK[enclosure.Pt2, enclosure.Rect] // non-nil when built with WithUpdates
	pri     core.Prioritized[enclosure.Pt2, enclosure.Rect]
	data    map[float64]T
	n       int
}

// NewEnclosureIndex builds an index over items (weights distinct,
// rectangles well-formed). With WithUpdates the index additionally
// supports Insert and Delete through the logarithmic-method overlay.
func NewEnclosureIndex[T any](items []RectItem[T], opts ...Option) (*EnclosureIndex[T], error) {
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[enclosure.Rect], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		cores[i] = core.Item[enclosure.Rect]{
			Value:  enclosure.Rect{X1: it.X1, X2: it.X2, Y1: it.Y1, Y2: it.Y2},
			Weight: it.Weight,
		}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	ix := &EnclosureIndex[T]{opts: o, tracker: tracker, data: data, n: len(items)}
	if o.updates {
		dyn, err := newOverlay(cores, enclosure.Match,
			enclosure.NewPrioritizedFactory(tracker),
			enclosure.NewMaxFactory(tracker),
			enclosure.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	} else {
		t, err := buildTopK(cores, enclosure.Match,
			enclosure.NewPrioritizedFactory(tracker),
			enclosure.NewMaxFactory(tracker),
			enclosure.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk = t
	}
	ix.pri = prioritizedOf(ix.topk)
	ix.ob = newIndexObs("enclosure", o, tracker)
	ix.ob.observeShape(ix.n, ix.dyn)
	return ix, nil
}

// Len returns the number of indexed rectangles.
func (ix *EnclosureIndex[T]) Len() int { return ix.n }

func (ix *EnclosureIndex[T]) wrap(it core.Item[enclosure.Rect]) RectItem[T] {
	return RectItem[T]{
		X1: it.Value.X1, X2: it.Value.X2, Y1: it.Value.Y1, Y2: it.Value.Y2,
		Weight: it.Weight, Data: ix.data[it.Weight],
	}
}

// TopK returns the k heaviest rectangles containing (x, y), heaviest
// first.
func (ix *EnclosureIndex[T]) TopK(x, y float64, k int) []RectItem[T] {
	t0, before := ix.ob.start()
	res := ix.topk.TopK(enclosure.Pt2{X: x, Y: y}, k)
	ix.ob.done(t0, before, func() string { return fmt.Sprintf("enclose (%v,%v) k=%d", x, y, k) })
	out := make([]RectItem[T], len(res))
	for i, it := range res {
		out[i] = ix.wrap(it)
	}
	return out
}

// ReportAbove streams every rectangle containing (x, y) with weight ≥
// tau; return false from visit to stop early.
func (ix *EnclosureIndex[T]) ReportAbove(x, y, tau float64, visit func(RectItem[T]) bool) {
	ix.pri.ReportAbove(enclosure.Pt2{X: x, Y: y}, tau, func(it core.Item[enclosure.Rect]) bool {
		return visit(ix.wrap(it))
	})
}

// Max returns the heaviest rectangle containing (x, y) (a top-1 query).
func (ix *EnclosureIndex[T]) Max(x, y float64) (RectItem[T], bool) {
	it, ok := maxOfTopK(ix.topk, enclosure.Pt2{X: x, Y: y})
	if !ok {
		return RectItem[T]{}, false
	}
	return ix.wrap(it), true
}

// Insert adds a rectangle. Only indexes built with WithUpdates support
// updates; others return an error.
func (ix *EnclosureIndex[T]) Insert(item RectItem[T]) error {
	if ix.dyn == nil {
		return errStatic(ix.opts.reduction)
	}
	if item.X1 > item.X2 || item.Y1 > item.Y2 ||
		math.IsNaN(item.X1) || math.IsNaN(item.X2) || math.IsNaN(item.Y1) || math.IsNaN(item.Y2) {
		return fmt.Errorf("topk: malformed rectangle [%v, %v] × [%v, %v]", item.X1, item.X2, item.Y1, item.Y2)
	}
	if math.IsNaN(item.Weight) || math.IsInf(item.Weight, 0) {
		return fmt.Errorf("topk: non-finite weight %v", item.Weight)
	}
	if _, dup := ix.data[item.Weight]; dup {
		return fmt.Errorf("topk: duplicate weight %v", item.Weight)
	}
	ci := core.Item[enclosure.Rect]{
		Value:  enclosure.Rect{X1: item.X1, X2: item.X2, Y1: item.Y1, Y2: item.Y2},
		Weight: item.Weight,
	}
	if err := ix.dyn.Insert(ci); err != nil {
		return err
	}
	ix.data[item.Weight] = item.Data
	ix.n++
	ix.ob.observeShape(ix.n, ix.dyn)
	return nil
}

// Delete removes the rectangle with the given weight, reporting whether
// it was present. Only indexes built with WithUpdates support updates.
func (ix *EnclosureIndex[T]) Delete(weight float64) (bool, error) {
	if ix.dyn == nil {
		return false, errStatic(ix.opts.reduction)
	}
	if !ix.dyn.DeleteWeight(weight) {
		return false, nil
	}
	delete(ix.data, weight)
	ix.n--
	ix.ob.observeShape(ix.n, ix.dyn)
	return true, nil
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *EnclosureIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters.
func (ix *EnclosureIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// QueryBatch answers one top-k enclosure query per PointQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *EnclosureIndex[T]) QueryBatch(qs []PointQuery, k int, parallelism int) []BatchResult[RectItem[T]] {
	return runBatch(ix.tracker, ix.ob, qs, parallelism, func(q PointQuery) []RectItem[T] {
		return ix.TopK(q.X, q.Y, k)
	})
}

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (ix *EnclosureIndex[T]) WriteMetrics(w io.Writer) error { return ix.ob.writeMetrics(w) }
