package topk

import (
	"fmt"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/enclosure"
)

// RectItem is one weighted axis-parallel rectangle with a payload — the
// paper's dating example: a member's preferred age range × height range,
// weighted by salary.
type RectItem[T any] struct {
	X1, X2, Y1, Y2 float64
	Weight         float64
	Data           T
}

// EnclosureIndex answers top-k 2D point-enclosure queries (the paper's
// Theorem 5): given a point (x, y), return the k heaviest rectangles
// containing it.
type EnclosureIndex[T any] struct {
	opts    Options
	tracker *em.Tracker
	topk    core.TopK[enclosure.Pt2, enclosure.Rect]
	pri     core.Prioritized[enclosure.Pt2, enclosure.Rect]
	data    map[float64]T
	n       int
}

// NewEnclosureIndex builds a static index over items (weights distinct,
// rectangles well-formed).
func NewEnclosureIndex[T any](items []RectItem[T], opts ...Option) (*EnclosureIndex[T], error) {
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[enclosure.Rect], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		cores[i] = core.Item[enclosure.Rect]{
			Value:  enclosure.Rect{X1: it.X1, X2: it.X2, Y1: it.Y1, Y2: it.Y2},
			Weight: it.Weight,
		}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	t, err := buildTopK(cores, enclosure.Match,
		enclosure.NewPrioritizedFactory(tracker),
		enclosure.NewMaxFactory(tracker),
		enclosure.Lambda, o, tracker)
	if err != nil {
		return nil, err
	}
	return &EnclosureIndex[T]{
		opts: o, tracker: tracker, topk: t, pri: prioritizedOf(t), data: data, n: len(items),
	}, nil
}

// Len returns the number of indexed rectangles.
func (ix *EnclosureIndex[T]) Len() int { return ix.n }

func (ix *EnclosureIndex[T]) wrap(it core.Item[enclosure.Rect]) RectItem[T] {
	return RectItem[T]{
		X1: it.Value.X1, X2: it.Value.X2, Y1: it.Value.Y1, Y2: it.Value.Y2,
		Weight: it.Weight, Data: ix.data[it.Weight],
	}
}

// TopK returns the k heaviest rectangles containing (x, y), heaviest
// first.
func (ix *EnclosureIndex[T]) TopK(x, y float64, k int) []RectItem[T] {
	res := ix.topk.TopK(enclosure.Pt2{X: x, Y: y}, k)
	out := make([]RectItem[T], len(res))
	for i, it := range res {
		out[i] = ix.wrap(it)
	}
	return out
}

// ReportAbove streams every rectangle containing (x, y) with weight ≥
// tau; return false from visit to stop early.
func (ix *EnclosureIndex[T]) ReportAbove(x, y, tau float64, visit func(RectItem[T]) bool) {
	ix.pri.ReportAbove(enclosure.Pt2{X: x, Y: y}, tau, func(it core.Item[enclosure.Rect]) bool {
		return visit(ix.wrap(it))
	})
}

// Max returns the heaviest rectangle containing (x, y) (a top-1 query).
func (ix *EnclosureIndex[T]) Max(x, y float64) (RectItem[T], bool) {
	it, ok := maxOfTopK(ix.topk, enclosure.Pt2{X: x, Y: y})
	if !ok {
		return RectItem[T]{}, false
	}
	return ix.wrap(it), true
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *EnclosureIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters.
func (ix *EnclosureIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// QueryBatch answers one top-k enclosure query per PointQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *EnclosureIndex[T]) QueryBatch(qs []PointQuery, k int, parallelism int) []BatchResult[RectItem[T]] {
	return runBatch(ix.tracker, qs, parallelism, func(q PointQuery) []RectItem[T] {
		return ix.TopK(q.X, q.Y, k)
	})
}
