package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/enclosure"
	"topk/internal/snap"
)

// RectItem is one weighted axis-parallel rectangle with a payload — the
// paper's dating example: a member's preferred age range × height range,
// weighted by salary.
type RectItem[T any] struct {
	X1, X2, Y1, Y2 float64
	Weight         float64
	Data           T
}

// enclosureProblem is the engine descriptor for top-k 2D point enclosure.
func enclosureProblem[T any]() problem[enclosure.Pt2, enclosure.Rect, RectItem[T]] {
	return problem[enclosure.Pt2, enclosure.Rect, RectItem[T]]{
		name:   "enclosure",
		match:  enclosure.Match,
		lambda: enclosure.Lambda,
		pri: func(tr *em.Tracker) core.PrioritizedFactory[enclosure.Pt2, enclosure.Rect] {
			return enclosure.NewPrioritizedFactory(tr)
		},
		max: func(tr *em.Tracker) core.MaxFactory[enclosure.Pt2, enclosure.Rect] {
			return enclosure.NewMaxFactory(tr)
		},
		validate: func(it RectItem[T]) error {
			if it.X1 > it.X2 || it.Y1 > it.Y2 ||
				math.IsNaN(it.X1) || math.IsNaN(it.X2) || math.IsNaN(it.Y1) || math.IsNaN(it.Y2) {
				return fmt.Errorf("topk: malformed rectangle [%v, %v] × [%v, %v]", it.X1, it.X2, it.Y1, it.Y2)
			}
			return nil
		},
		weight: func(it RectItem[T]) float64 { return it.Weight },
		toCore: func(it RectItem[T]) core.Item[enclosure.Rect] {
			return core.Item[enclosure.Rect]{
				Value:  enclosure.Rect{X1: it.X1, X2: it.X2, Y1: it.Y1, Y2: it.Y2},
				Weight: it.Weight,
			}
		},
		fromCore: func(ci core.Item[enclosure.Rect], st RectItem[T]) RectItem[T] {
			st.X1, st.X2, st.Y1, st.Y2 = ci.Value.X1, ci.Value.X2, ci.Value.Y1, ci.Value.Y2
			st.Weight = ci.Weight
			return st
		},
		describe: func(q enclosure.Pt2, k int) string {
			return fmt.Sprintf("enclose (%v,%v) k=%d", q.X, q.Y, k)
		},
	}
}

// EnclosureIndex answers top-k 2D point-enclosure queries (the paper's
// Theorem 5): given a point (x, y), return the k heaviest rectangles
// containing it.
type EnclosureIndex[T any] struct {
	facade[enclosure.Pt2, enclosure.Rect, RectItem[T]]
}

// NewEnclosureIndex builds an index over items (weights distinct,
// rectangles well-formed). With WithUpdates the index additionally
// supports Insert and Delete through the logarithmic-method overlay.
func NewEnclosureIndex[T any](items []RectItem[T], opts ...Option) (*EnclosureIndex[T], error) {
	eng, err := newEngine(enclosureProblem[T](), items, opts)
	if err != nil {
		return nil, err
	}
	return &EnclosureIndex[T]{newFacade(eng)}, nil
}

// TopK returns the k heaviest rectangles containing (x, y), heaviest
// first.
func (ix *EnclosureIndex[T]) TopK(x, y float64, k int) []RectItem[T] {
	return ix.eng.TopK(enclosure.Pt2{X: x, Y: y}, k)
}

// ReportAbove streams every rectangle containing (x, y) with weight ≥
// tau; return false from visit to stop early.
func (ix *EnclosureIndex[T]) ReportAbove(x, y, tau float64, visit func(RectItem[T]) bool) {
	ix.eng.ReportAbove(enclosure.Pt2{X: x, Y: y}, tau, visit)
}

// Max returns the heaviest rectangle containing (x, y) (a top-1 query).
func (ix *EnclosureIndex[T]) Max(x, y float64) (RectItem[T], bool) {
	return ix.eng.Max(enclosure.Pt2{X: x, Y: y})
}

// QueryBatch answers one top-k enclosure query per PointQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *EnclosureIndex[T]) QueryBatch(qs []PointQuery, k int, parallelism int) []BatchResult[RectItem[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract (see
// IntervalIndex.QueryBatchCtx); a zero ctx is exactly QueryBatch.
func (ix *EnclosureIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []PointQuery, k int, parallelism int) []BatchResult[RectItem[T]] {
	pts := make([]enclosure.Pt2, len(qs))
	for i, q := range qs {
		pts[i] = enclosure.Pt2{X: q.X, Y: q.Y}
	}
	return ix.eng.QueryBatchCtx(ctx, pts, k, parallelism)
}

// RestoreEnclosureIndex reconstructs a rectangle-enclosure index from a
// snapshot stream written by Snapshot; see RestoreIntervalIndex for the
// warm-start contract shared by all Restore constructors.
func RestoreEnclosureIndex[T any](r io.Reader, opts ...Option) (*EnclosureIndex[T], error) {
	eng, err := restoreEngine(func(snap.Header) (problem[enclosure.Pt2, enclosure.Rect, RectItem[T]], error) {
		return enclosureProblem[T](), nil
	}, r, opts)
	if err != nil {
		return nil, err
	}
	return &EnclosureIndex[T]{newFacade(eng)}, nil
}
