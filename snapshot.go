package topk

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"topk/internal/core"
	"topk/internal/dynamic"
	"topk/internal/obs"
	"topk/internal/snap"
)

// This file is the persistence layer above the internal/snap codec: it
// serializes an engine's logical state — not its in-memory structures —
// and restores by re-running the deterministic build over that state
// while the EM tracker charges only a sequential read of the snapshot
// (em.Tracker.RestoreAccounting). That is exactly the warm-start claim
// the paper's cost model supports: a built index comes back in
// O(size/B) I/Os instead of O(build). DESIGN.md §12 documents the
// format, the compatibility policy, and the cost model.
//
// Three engine kinds are persisted (snap.KindStatic/Overlay/Native):
//
//   - static: the source item set in construction order; rebuilding it
//     with the same options and seed yields a bit-identical structure.
//   - overlay: the logarithmic-method overlay's logical state — each
//     level's exact build batch, its tombstoned weights, the mutable
//     tail, and the update counters. Levels are serialized rather than
//     replayed because the overlay's shape depends on the entire update
//     history: replaying n updates costs O(n · log n · Build(n)/n) I/Os
//     and is precisely the rebuild the snapshot exists to avoid.
//   - native: the Theorem 2 dynamic structure's live set in internal
//     order; the reduction is exact, so a rebuild over that set answers
//     every query identically even though the sample ladder is drawn
//     fresh from the recorded seed.
//
// Sharded indexes persist as a directory: one snapshot file per shard
// plus a JSON manifest — which makes a shard the unit of shipping (copy
// one file, restore it anywhere) and resharding a pure snapshot-to-
// snapshot transform (ProblemSpec.Reshard, cmd/topk-snap convert).

// reductionFromName parses a Reduction's String() name, the form stored
// in snapshot headers and manifests.
func reductionFromName(name string) (Reduction, error) {
	for _, r := range AllReductions() {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("topk: unknown reduction %q in snapshot", name)
}

// shardPolicyFromName parses a ShardPolicy's String() name.
func shardPolicyFromName(name string) (ShardPolicy, error) {
	for _, p := range []ShardPolicy{ShardByWeight, ShardRoundRobin} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("topk: unknown shard policy %q in snapshot manifest", name)
}

// gobItems encodes an item batch as one self-contained gob blob:
// geometry, weight, and the user payload all survive together.
func gobItems[It any](items []It) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(items); err != nil {
		return nil, fmt.Errorf("topk: encoding %d items: %w", len(items), err)
	}
	return buf.Bytes(), nil
}

// ungobItems decodes an item batch written by gobItems.
func ungobItems[It any](p []byte) ([]It, error) {
	var items []It
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&items); err != nil {
		return nil, fmt.Errorf("topk: decoding item batch: %w", err)
	}
	return items, nil
}

// kind classifies the engine for the snapshot header, returning the
// overlay when that is what the engine sits on.
func (e *engine[Q, V, It]) kind() (uint8, *dynamic.Overlay[Q, V]) {
	switch d := e.dyn.(type) {
	case nil:
		return snap.KindStatic, nil
	case *dynamic.Overlay[Q, V]:
		return snap.KindOverlay, d
	default:
		return snap.KindNative, nil
	}
}

// Snapshot writes the engine's versioned snapshot stream to w and
// charges the tracker the O(size/B) sequential write cost. Safe
// concurrently with queries, not with Insert or Delete.
func (e *engine[Q, V, It]) Snapshot(w io.Writer) error {
	kind, ov := e.kind()
	sw := snap.NewWriter(w)
	if err := sw.WriteHeader(snap.Header{
		Problem:   e.p.name,
		Reduction: e.opts.reduction.String(),
		Kind:      kind,
		Items:     uint64(e.n),
		Dim:       uint16(e.p.dim),
	}); err != nil {
		return err
	}

	cfg := sw.Begin(snap.SecConfig)
	cfg.U64(uint64(e.opts.blockSize))
	cfg.U64(uint64(e.opts.memBlocks))
	cfg.U64(e.opts.seed)
	if e.opts.updates {
		cfg.U8(1)
	} else {
		cfg.U8(0)
	}
	if err := sw.End(cfg); err != nil {
		return err
	}

	emitItems := func(typ uint16, items []It, wrap func(*snap.Section)) error {
		blob, err := gobItems(items)
		if err != nil {
			return err
		}
		s := sw.Begin(typ)
		if wrap != nil {
			wrap(s)
		}
		s.Bytes(blob)
		return sw.End(s)
	}

	switch kind {
	case snap.KindStatic:
		if err := emitItems(snap.SecItems, e.src, nil); err != nil {
			return err
		}
	case snap.KindNative:
		if err := emitItems(snap.SecItems, e.Items(), nil); err != nil {
			return err
		}
	case snap.KindOverlay:
		st := ov.ExportState()
		cs := sw.Begin(snap.SecOverlayCounters)
		cs.U64(uint64(st.TailCap))
		cs.F64(st.DeadFrac)
		cs.I64(st.Counters.Inserts)
		cs.I64(st.Counters.Deletes)
		cs.I64(st.Counters.Flushes)
		cs.I64(st.Counters.Rebuilds)
		cs.I64(st.Counters.BuiltItems)
		if err := sw.End(cs); err != nil {
			return err
		}
		// The policy section is emitted only for non-default policies, so
		// a logarithmic overlay's snapshot stays byte-identical to the
		// version-1 stream; readers treat its absence as "logarithmic".
		if st.PolicyID != "" && st.PolicyID != dynamic.PolicyLogarithmic.ID() {
			ps := sw.Begin(snap.SecOverlayPolicy)
			ps.Str(st.PolicyID)
			ps.I64(st.Counters.PartialRebuilds)
			ps.U64(uint64(len(st.Tiers)))
			for _, t := range st.Tiers {
				ps.U64(uint64(t.Slot))
				ps.U64(uint64(t.Tier))
			}
			if err := sw.End(ps); err != nil {
				return err
			}
		}
		for _, lvl := range st.Levels {
			items := make([]It, len(lvl.Items))
			for i, ci := range lvl.Items {
				items[i] = e.wrap(ci)
			}
			err := emitItems(snap.SecOverlayLevel, items, func(s *snap.Section) {
				s.U64(uint64(lvl.Slot))
				s.F64s(lvl.Dead)
			})
			if err != nil {
				return err
			}
		}
		tail := make([]It, len(st.Tail))
		for i, ci := range st.Tail {
			tail[i] = e.wrap(ci)
		}
		if err := emitItems(snap.SecOverlayTail, tail, nil); err != nil {
			return err
		}
	}

	if err := sw.Close(); err != nil {
		return err
	}
	e.tracker.SnapshotCost(sw.Bytes())
	return nil
}

// countingReader counts bytes consumed from the snapshot stream, the
// size the restore accounting charges a sequential read for.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// overlayLevelBlob is one decoded SecOverlayLevel section.
type overlayLevelBlob[It any] struct {
	slot  int
	dead  []float64
	items []It
}

// restoreEngine decodes one engine snapshot stream and reconstructs the
// engine. mk builds the problem descriptor from the decoded header (so
// dimension-parameterized problems can size themselves from Header.Dim);
// opts may layer runtime options (observability, shard labels) on top,
// but the structural options — reduction, block size, memory, seed,
// updates — always come from the snapshot. The reconstruction runs under
// em.Tracker.RestoreAccounting, so the restored engine's Stats() show
// the warm-start cost: ceil(snapshotBytes/8/B) sequential reads.
func restoreEngine[Q, V, It any](
	mk func(snap.Header) (problem[Q, V, It], error),
	rd io.Reader,
	opts []Option,
) (*engine[Q, V, It], error) {
	cr := &countingReader{r: rd}
	sr, err := snap.NewReader(cr)
	if err != nil {
		return nil, err
	}
	h, err := sr.ReadHeader()
	if err != nil {
		return nil, err
	}
	p, err := mk(h)
	if err != nil {
		return nil, err
	}
	if h.Problem != p.name {
		return nil, fmt.Errorf("topk: snapshot holds problem %q, want %q", h.Problem, p.name)
	}
	red, err := reductionFromName(h.Reduction)
	if err != nil {
		return nil, err
	}

	// Decode every section into plain values before reconstructing, so
	// the reconstruction under RestoreAccounting touches no input bytes.
	var (
		haveConfig, haveItems, haveCounters, haveTail, havePolicy bool

		cfgBlock, cfgMem int
		cfgSeed          uint64
		cfgUpdates       bool

		srcItems []It

		tailCap  int
		deadFrac float64
		counters dynamic.Counters
		levels   []overlayLevelBlob[It]
		tail     []It
		policyID string
		tiers    []dynamic.TierRef
	)
	for {
		typ, sec, err := sr.Next()
		if err != nil {
			return nil, err
		}
		if typ == snap.SecEnd {
			break
		}
		switch typ {
		case snap.SecConfig:
			if haveConfig {
				return nil, fmt.Errorf("topk: snapshot repeats its config section")
			}
			cfgBlock = int(sec.RU64())
			cfgMem = int(sec.RU64())
			cfgSeed = sec.RU64()
			cfgUpdates = sec.RU8() == 1
			haveConfig = true
		case snap.SecItems:
			if haveItems {
				return nil, fmt.Errorf("topk: snapshot repeats its item section")
			}
			if srcItems, err = ungobItems[It](sec.RBytes()); err != nil {
				return nil, err
			}
			haveItems = true
		case snap.SecOverlayCounters:
			if haveCounters {
				return nil, fmt.Errorf("topk: snapshot repeats its overlay counter section")
			}
			tailCap = int(sec.RU64())
			deadFrac = sec.RF64()
			counters.Inserts = sec.RI64()
			counters.Deletes = sec.RI64()
			counters.Flushes = sec.RI64()
			counters.Rebuilds = sec.RI64()
			counters.BuiltItems = sec.RI64()
			haveCounters = true
		case snap.SecOverlayLevel:
			lvl := overlayLevelBlob[It]{slot: int(sec.RU64()), dead: sec.RF64s()}
			if lvl.items, err = ungobItems[It](sec.RBytes()); err != nil {
				return nil, err
			}
			levels = append(levels, lvl)
		case snap.SecOverlayTail:
			if haveTail {
				return nil, fmt.Errorf("topk: snapshot repeats its overlay tail section")
			}
			if tail, err = ungobItems[It](sec.RBytes()); err != nil {
				return nil, err
			}
			haveTail = true
		case snap.SecOverlayPolicy:
			if havePolicy {
				return nil, fmt.Errorf("topk: snapshot repeats its overlay policy section")
			}
			policyID = sec.RStr()
			counters.PartialRebuilds = sec.RI64()
			n := sec.RCount(16)
			tiers = make([]dynamic.TierRef, n)
			for i := range tiers {
				tiers[i].Slot = int(sec.RU64())
				tiers[i].Tier = int(sec.RU64())
			}
			havePolicy = true
		default:
			return nil, fmt.Errorf("topk: snapshot contains unknown section type %d", typ)
		}
		if err := sec.Err(); err != nil {
			return nil, fmt.Errorf("topk: snapshot section %d: %w", typ, err)
		}
	}
	if !haveConfig {
		return nil, fmt.Errorf("topk: snapshot is missing its config section")
	}
	if cfgBlock < 1 || cfgMem < 2 {
		return nil, fmt.Errorf("topk: snapshot config B=%d, M/B=%d violates the EM model (need B ≥ 1, M/B ≥ 2)", cfgBlock, cfgMem)
	}

	o := applyOptions(opts)
	o.reduction = red
	o.blockSize, o.memBlocks, o.seed, o.updates = cfgBlock, cfgMem, cfgSeed, cfgUpdates
	// The maintenance policy is structural state: it comes from the
	// snapshot (absence of a policy section means the default), never
	// from the caller's options.
	mp, err := maintenancePolicyByID(policyID)
	if err != nil {
		return nil, err
	}
	o.maintPol = mp
	if havePolicy && h.Kind != snap.KindOverlay {
		return nil, fmt.Errorf("topk: snapshot carries an overlay policy section but is not an overlay snapshot")
	}

	// The header's kind must agree with what this configuration builds.
	wantKind := snap.KindStatic
	switch {
	case red == Expected && p.dynPri != nil:
		wantKind = snap.KindNative
	case cfgUpdates:
		wantKind = snap.KindOverlay
	}
	if h.Kind != wantKind {
		return nil, fmt.Errorf("topk: snapshot kind %d inconsistent with reduction %s and its config (want kind %d)", h.Kind, red, wantKind)
	}

	tracker, err := o.newTracker()
	if err != nil {
		return nil, err
	}
	e := &engine[Q, V, It]{p: p, opts: o, tracker: tracker}
	reconstruct := func() error {
		if h.Kind != snap.KindOverlay {
			if !haveItems {
				return fmt.Errorf("topk: snapshot is missing its item section")
			}
			return e.init(srcItems)
		}
		if !haveCounters || !haveTail {
			return fmt.Errorf("topk: overlay snapshot is missing its counter or tail section")
		}
		return e.initOverlay(levels, tail, tailCap, deadFrac, counters, policyID, tiers)
	}
	if err := e.tracker.RestoreAccounting(cr.n, reconstruct); err != nil {
		tracker.Close()
		return nil, err
	}
	if e.n != int(h.Items) {
		tracker.Close()
		return nil, fmt.Errorf("topk: snapshot header declares %d items, reconstruction holds %d", h.Items, e.n)
	}
	return e, nil
}

// initOverlay reconstructs an overlay engine from decoded overlay
// sections: validates every item through the construction gate, rebuilds
// the payload map from the live ones, and hands the level batches to
// dynamic.Restore, which re-runs the deterministic substructure builds.
func (e *engine[Q, V, It]) initOverlay(
	levels []overlayLevelBlob[It],
	tail []It,
	tailCap int,
	deadFrac float64,
	counters dynamic.Counters,
	policyID string,
	tiers []dynamic.TierRef,
) error {
	p, o, tracker := e.p, e.opts, e.tracker
	e.data = make(map[float64]It)

	state := dynamic.State[V]{
		TailCap: tailCap, DeadFrac: deadFrac, Counters: counters,
		PolicyID: policyID, Tiers: tiers,
	}
	addLive := func(it It, where string) error {
		if err := e.validateItem(it); err != nil {
			return fmt.Errorf("topk: snapshot %s: %w", where, err)
		}
		w := p.weight(it)
		if _, dup := e.data[w]; dup {
			return fmt.Errorf("topk: snapshot %s: duplicate weight %v", where, w)
		}
		e.data[w] = it
		return nil
	}
	for _, lvl := range levels {
		dead := make(map[float64]struct{}, len(lvl.dead))
		for _, w := range lvl.dead {
			dead[w] = struct{}{}
		}
		ls := dynamic.LevelState[V]{Slot: lvl.slot, Dead: lvl.dead, Items: make([]core.Item[V], len(lvl.items))}
		for i, it := range lvl.items {
			if err := e.validateItem(it); err != nil {
				return fmt.Errorf("topk: snapshot level %d item %d: %w", lvl.slot, i, err)
			}
			if _, gone := dead[p.weight(it)]; !gone {
				if err := addLive(it, fmt.Sprintf("level %d", lvl.slot)); err != nil {
					return err
				}
			}
			ls.Items[i] = p.toCore(it)
		}
		state.Levels = append(state.Levels, ls)
	}
	state.Tail = make([]core.Item[V], len(tail))
	for i, it := range tail {
		if err := addLive(it, "tail"); err != nil {
			return err
		}
		state.Tail[i] = p.toCore(it)
	}
	e.n = len(e.data)

	ov, err := dynamic.Restore(state, p.match, func(sub []core.Item[V]) (core.TopK[Q, V], error) {
		return buildTopK(sub, p.match, p.pri(tracker), p.max(tracker), p.lambda, o, tracker)
	}, dynamic.Options{Tracker: tracker})
	if err != nil {
		return err
	}
	e.topk, e.dyn = ov, ov
	e.pri = core.PrioritizedOf(e.topk)
	e.ob = newIndexObs(p.name, o, tracker)
	e.ob.observeShape(e.n, e.dyn)
	return nil
}

// ---- directory layout: manifest + per-shard files ---------------------

// ManifestName is the JSON manifest file naming a snapshot directory's
// shard files.
const ManifestName = "MANIFEST.json"

// Manifest describes one snapshot directory: the problem and build it
// captures, its partitioning, and the per-shard snapshot files with
// their sizes and checksums. It is the unit cmd/topk-snap inspects and
// the shard-shipping contract: moving a shard between directories is
// copying its file and updating two manifests.
type Manifest struct {
	FormatVersion uint16 `json:"format_version"`
	Problem       string `json:"problem"`
	Reduction     string `json:"reduction"`
	Dim           int    `json:"dim,omitempty"`
	// Partitioned distinguishes a Sharded index (even with one shard)
	// from a plain engine, so a restore rebuilds the same wrapper.
	Partitioned bool   `json:"partitioned"`
	Shards      int    `json:"shards"`
	Policy      string `json:"policy,omitempty"`
	RR          int    `json:"rr_cursor,omitempty"`
	// Maintenance names the overlay's structural-maintenance policy when
	// it is not the default; empty means logarithmic (and is what every
	// version-1 manifest reads as).
	Maintenance string         `json:"maintenance,omitempty"`
	Items       int            `json:"items"`
	Files       []ManifestFile `json:"files"`
}

// ManifestFile is one shard's snapshot file.
type ManifestFile struct {
	Name  string `json:"name"`
	Shard int    `json:"shard"`
	Items int    `json:"items"`
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

// ReadManifest loads and sanity-checks a snapshot directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("topk: reading snapshot manifest: %w", err)
	}
	var mf Manifest
	if err := json.Unmarshal(raw, &mf); err != nil {
		return Manifest{}, fmt.Errorf("topk: parsing snapshot manifest: %w", err)
	}
	if mf.FormatVersion < 1 || mf.FormatVersion > snap.Version {
		return Manifest{}, fmt.Errorf("topk: manifest format version %d, this build reads versions 1 through %d", mf.FormatVersion, snap.Version)
	}
	if mf.Shards < 1 || len(mf.Files) != mf.Shards {
		return Manifest{}, fmt.Errorf("topk: manifest lists %d files for %d shards", len(mf.Files), mf.Shards)
	}
	return mf, nil
}

// writeSnapFile streams one shard snapshot into dir, returning the
// manifest entry (size and CRC-32 computed over the written bytes).
func writeSnapFile(dir, name string, shard, items int, emit func(io.Writer) error) (ManifestFile, error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return ManifestFile{}, err
	}
	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(f, crc)}
	if err := emit(cw); err != nil {
		f.Close()
		return ManifestFile{}, err
	}
	if err := f.Close(); err != nil {
		return ManifestFile{}, err
	}
	return ManifestFile{Name: name, Shard: shard, Items: items, Bytes: cw.n, CRC32: crc.Sum32()}, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%03d.snap", i) }

func writeManifest(dir string, mf Manifest) error {
	raw, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(raw, '\n'), 0o644)
}

// maintenanceID names the engine's non-default maintenance policy for
// the manifest; empty for logarithmic overlays and for static or native
// builds, so pre-policy manifests stay unchanged.
func (e *engine[Q, V, It]) maintenanceID() string {
	if _, ov := e.kind(); ov != nil {
		if id := ov.Policy().ID(); id != dynamic.PolicyLogarithmic.ID() {
			return id
		}
	}
	return ""
}

// snapDir persists a single engine as a one-file snapshot directory.
func (e *engine[Q, V, It]) snapDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	mf := Manifest{
		FormatVersion: snap.Version,
		Problem:       e.p.name,
		Reduction:     e.opts.reduction.String(),
		Dim:           e.p.dim,
		Shards:        1,
		Maintenance:   e.maintenanceID(),
		Items:         e.n,
	}
	entry, err := writeSnapFile(dir, shardFileName(0), 0, e.n, e.Snapshot)
	if err != nil {
		return err
	}
	mf.Files = []ManifestFile{entry}
	return writeManifest(dir, mf)
}

// SnapshotShard writes shard i's snapshot stream to w — the shipping
// primitive: one shard's file restores on any machine.
func (s *Sharded[Q, V, It]) SnapshotShard(i int, w io.Writer) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("topk: shard %d out of range [0, %d)", i, len(s.shards))
	}
	return s.shards[i].Snapshot(w)
}

// Snapshot persists the partitioned index as a directory: one snapshot
// file per shard plus a manifest. Safe concurrently with queries, not
// with Insert or Delete.
func (s *Sharded[Q, V, It]) Snapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	mf := Manifest{
		FormatVersion: snap.Version,
		Problem:       s.p.name,
		Reduction:     s.opts.reduction.String(),
		Dim:           s.p.dim,
		Partitioned:   true,
		Shards:        len(s.shards),
		Policy:        s.opts.policy.String(),
		RR:            s.rr,
		Maintenance:   s.shards[0].maintenanceID(),
		Items:         s.Len(),
	}
	for i, e := range s.shards {
		entry, err := writeSnapFile(dir, shardFileName(i), i, e.Len(), func(w io.Writer) error {
			return s.SnapshotShard(i, w)
		})
		if err != nil {
			return err
		}
		mf.Files = append(mf.Files, entry)
	}
	return writeManifest(dir, mf)
}

func (s *Sharded[Q, V, It]) snapDir(dir string) error { return s.Snapshot(dir) }

// restoreEngineFile restores one engine from a shard file, verifying the
// manifest's size and checksum before decoding.
func restoreEngineFile[Q, V, It any](
	mk func(snap.Header) (problem[Q, V, It], error),
	dir string,
	entry ManifestFile,
	opts []Option,
) (*engine[Q, V, It], error) {
	raw, err := os.ReadFile(filepath.Join(dir, entry.Name))
	if err != nil {
		return nil, fmt.Errorf("topk: reading shard file: %w", err)
	}
	if int64(len(raw)) != entry.Bytes {
		return nil, fmt.Errorf("topk: shard file %s is %d bytes, manifest says %d", entry.Name, len(raw), entry.Bytes)
	}
	if got := crc32.ChecksumIEEE(raw); got != entry.CRC32 {
		return nil, fmt.Errorf("topk: shard file %s checksum %08x, manifest says %08x: snapshot is corrupt", entry.Name, got, entry.CRC32)
	}
	e, err := restoreEngine(mk, bytes.NewReader(raw), opts)
	if err != nil {
		return nil, fmt.Errorf("topk: shard file %s: %w", entry.Name, err)
	}
	if e.n != entry.Items {
		return nil, fmt.Errorf("topk: shard file %s restored %d items, manifest says %d", entry.Name, e.n, entry.Items)
	}
	return e, nil
}

// restoreSharded reassembles a Sharded index from a partitioned
// snapshot directory: each shard file restores into its own engine, the
// owner map is rebuilt from the restored weights, and the policy and
// round-robin cursor come back from the manifest.
func restoreSharded[Q, V, It any](
	mk func(snap.Header) (problem[Q, V, It], error),
	dir string,
	mf Manifest,
	opts []Option,
) (*Sharded[Q, V, It], error) {
	pol, err := shardPolicyFromName(mf.Policy)
	if err != nil {
		return nil, err
	}
	if mf.RR < 0 || mf.RR >= mf.Shards {
		return nil, fmt.Errorf("topk: manifest round-robin cursor %d out of range [0, %d)", mf.RR, mf.Shards)
	}
	base := applyOptions(opts)
	s := &Sharded[Q, V, It]{owner: make(map[float64]int), rr: mf.RR}
	if base.metrics {
		s.reg = obs.NewRegistry()
	}
	s.shards = make([]*engine[Q, V, It], mf.Shards)
	for _, entry := range mf.Files {
		if entry.Shard < 0 || entry.Shard >= mf.Shards {
			return nil, fmt.Errorf("topk: manifest file %s names shard %d of %d", entry.Name, entry.Shard, mf.Shards)
		}
		if s.shards[entry.Shard] != nil {
			return nil, fmt.Errorf("topk: manifest lists shard %d twice", entry.Shard)
		}
		shOpts := make([]Option, len(opts), len(opts)+2)
		copy(shOpts, opts)
		shOpts = append(shOpts, WithShardPolicy(pol), withShardObs(s.reg, strconv.Itoa(entry.Shard)))
		e, err := restoreEngineFile(mk, dir, entry, shOpts)
		if err != nil {
			return nil, err
		}
		if e.opts.reduction.String() != mf.Reduction {
			return nil, fmt.Errorf("topk: shard %d snapshot uses reduction %s, manifest says %s", entry.Shard, e.opts.reduction, mf.Reduction)
		}
		if got := e.maintenanceID(); got != mf.Maintenance {
			return nil, fmt.Errorf("topk: shard %d snapshot uses maintenance policy %q, manifest says %q", entry.Shard, e.opts.maintPol, mf.Maintenance)
		}
		for w := range e.data {
			if prev, dup := s.owner[w]; dup {
				return nil, fmt.Errorf("topk: weight %v is live in shards %d and %d", w, prev, entry.Shard)
			}
			s.owner[w] = entry.Shard
		}
		s.shards[entry.Shard] = e
	}
	s.p = s.shards[0].p
	s.opts = s.shards[0].opts
	s.opts.policy = pol
	if s.reg != nil {
		s.reg.NewGauge("topk_shards", "Shards in the partitioned index.",
			obs.Label{Key: "index", Value: s.p.name}).Set(int64(mf.Shards))
	}
	return s, nil
}

// restoreServedEngine restores a snapshot directory into whichever
// wrapper it was saved from — a plain engine or a Sharded partition —
// behind the servedEngine surface the registry adapters consume.
func restoreServedEngine[Q, V, It any](
	mk func(snap.Header) (problem[Q, V, It], error),
	dir string,
	opts []Option,
) (servedEngine[Q, It], int, error) {
	mf, err := ReadManifest(dir)
	if err != nil {
		return nil, 0, err
	}
	if !mf.Partitioned {
		e, err := restoreEngineFile(mk, dir, mf.Files[0], opts)
		if err != nil {
			return nil, 0, err
		}
		return e, 1, nil
	}
	s, err := restoreSharded(mk, dir, mf, opts)
	if err != nil {
		return nil, 0, err
	}
	return s, mf.Shards, nil
}

// restoreShardEngine restores exactly one shard of a snapshot directory
// as a standalone engine — the replica-bootstrap primitive. Only the
// manifest and that shard's file need to be present: a node that owns
// two of sixteen shards ships two files, not the whole snapshot.
func restoreShardEngine[Q, V, It any](
	mk func(snap.Header) (problem[Q, V, It], error),
	dir string,
	shard int,
	opts []Option,
) (servedEngine[Q, It], error) {
	mf, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, entry := range mf.Files {
		if entry.Shard == shard {
			return restoreEngineFile(mk, dir, entry, opts)
		}
	}
	return nil, fmt.Errorf("topk: snapshot %s has no shard %d (manifest lists %d shards)", dir, shard, mf.Shards)
}

// optionsOf reconstructs the Option list matching a restored build's
// structural configuration, for rebuilding the index at a different
// shard count.
func optionsOf(o Options) []Option {
	opts := []Option{
		WithReduction(o.reduction),
		WithBlockSize(o.blockSize),
		WithMemBlocks(o.memBlocks),
		WithSeed(o.seed),
		WithShardPolicy(o.policy),
		WithMaintenancePolicy(o.maintPol),
	}
	if o.updates {
		opts = append(opts, WithUpdates())
	}
	return opts
}

// reshardSnapshot rewrites a snapshot directory at a different shard
// count: restore, repartition the live items under the original build
// options, snapshot to dstDir. The answers are untouched — only the
// partitioning changes.
func reshardSnapshot[Q, V, It any](
	mk func(snap.Header) (problem[Q, V, It], error),
	srcDir, dstDir string,
	shards int,
) error {
	eng, _, err := restoreServedEngine(mk, srcDir, nil)
	if err != nil {
		return err
	}
	var (
		p problem[Q, V, It]
		o Options
	)
	switch t := eng.(type) {
	case *engine[Q, V, It]:
		p, o = t.p, t.opts
	case *Sharded[Q, V, It]:
		p, o = t.p, t.opts
	default:
		return fmt.Errorf("topk: unexpected restored engine %T", eng)
	}
	s, err := newSharded(p, eng.Items(), shards, optionsOf(o))
	if err != nil {
		return err
	}
	return s.Snapshot(dstDir)
}

// LoadSnapshot restores any snapshot directory: the manifest names the
// problem, the registry supplies its spec, and the spec's Restore hook
// rebuilds the index behind the type-erased Served surface. opts may add
// runtime options (WithMetrics, WithTracing, WithSlowQueryLog); the
// structural configuration always comes from the snapshot.
func LoadSnapshot(dir string, opts ...Option) (Served, error) {
	mf, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	spec, ok := ProblemByName(mf.Problem)
	if !ok {
		return nil, fmt.Errorf("topk: snapshot holds unknown problem %q (known: %v)", mf.Problem, ProblemNames())
	}
	return spec.Restore(dir, opts...)
}

// LoadShard restores a single shard of a snapshot directory as a
// standalone one-shard index behind the Served surface. This is how a
// cluster node bootstraps: it fetches the manifest plus only the shard
// files it owns and serves each as an independent index, while the
// coordinator's Lemma 2 merge reassembles exact global answers. The
// shard file's size and checksum are verified against the manifest
// before decoding, same as a full restore.
func LoadShard(dir string, shard int, opts ...Option) (Served, error) {
	mf, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	spec, ok := ProblemByName(mf.Problem)
	if !ok {
		return nil, fmt.Errorf("topk: snapshot holds unknown problem %q (known: %v)", mf.Problem, ProblemNames())
	}
	return spec.RestoreShard(dir, shard, opts...)
}
