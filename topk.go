// Package topk is a library of top-k indexing structures built from the
// general reductions of Rahul and Tao, "Efficient Top-k Indexing via
// General Reductions" (PODS 2016).
//
// Given a set of weighted elements and a family of predicates, a top-k
// query asks for the k heaviest elements satisfying a predicate. The
// paper shows that a structure for *prioritized reporting* (all elements
// satisfying q with weight ≥ τ) — optionally together with one for *max
// reporting* (the single heaviest) — can be converted, black-box, into a
// top-k structure:
//
//   - Reduction WorstCase (Theorem 1): prioritized only; static; at most
//     an O(log_B n) slowdown over the prioritized query cost.
//   - Reduction Expected (Theorem 2): prioritized + max; no asymptotic
//     slowdown in expectation; supports updates.
//   - Reduction BinarySearch: the earlier Rahul–Janardan reduction the
//     paper improves on (binary search over the weight threshold), kept
//     as a baseline.
//   - Reduction FullScan: no index at all; the ground-truth oracle.
//
// The package ships ready-made indexes for eight problems — the paper's
// instantiations plus the survey's §2 extensions: interval stabbing
// (NewIntervalIndex), 1D range reporting (NewRangeIndex), orthogonal
// range reporting (NewOrthoIndex), circular range reporting
// (NewCircularIndex), 3D dominance (NewDominanceIndex), 2D point
// enclosure (NewEnclosureIndex), and 2D halfplane / d-dimensional
// halfspace reporting (NewHalfplaneIndex, NewHalfspaceIndex). Each has a
// sharded variant (NewSharded*Index) partitioning the items across
// independent engines with parallel fan-out and answer-identical
// merging. The registry (RegisteredProblems, ProblemByName) exposes all
// of them through the type-erased Served interface, which is what the
// serving binary (cmd/topk-serve), the snapshot tool (cmd/topk-snap),
// and the conformance suite drive.
//
// All index reads run against a simulated external-memory machine and
// report I/O counts through Stats, so the paper's I/O bounds can be
// observed directly; wall-clock performance is measured by the package's
// benchmarks. PAPER_MAP.md maps each reduction, lemma by lemma, to the
// code implementing it: its §3 section covers Theorem 1 (WorstCase) and
// its §4 section covers Theorem 2 (Expected).
//
// # Persistence
//
// Every index serializes with Snapshot and reconstructs with its typed
// Restore constructor (RestoreIntervalIndex and friends), ProblemSpec's
// Restore, or LoadSnapshot; a restored index answers every query
// byte-identically to the original at the cost of one sequential read
// pass, O(size/B) I/Os, instead of a rebuild. See DESIGN.md §12 for the
// format and the version/compatibility policy.
//
// # Concurrency
//
// An index is an immutable structure plus per-query state. After
// construction, any number of goroutines may call the read-only methods
// (TopK, Max, ReportAbove, Count, Stats) concurrently; each QueryBatch
// query additionally runs inside its own external-memory tracker view — a
// private cold cache and private counters — so the per-query Stats in a
// BatchResult are deterministic and independent of the parallelism, and
// are merged atomically into the index-wide Stats when the query ends.
// Insert and Delete require exclusive access: they must not run
// concurrently with each other or with any read.
package topk

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"topk/internal/dynamic"
	"topk/internal/em"
	"topk/internal/em/diskstore"
	"topk/internal/obs"
)

// Reduction selects how an index answers top-k queries.
type Reduction int

const (
	// Expected is the paper's Theorem 2 reduction (prioritized + max
	// structures, no expected slowdown). The default.
	Expected Reduction = iota
	// WorstCase is the paper's Theorem 1 reduction (prioritized structure
	// only, O(log_B n) worst-case slowdown, static).
	WorstCase
	// BinarySearch is the prior-work Rahul–Janardan reduction: binary
	// search on the weight threshold, costing an extra log n factor on
	// both terms. Kept as the comparison baseline.
	BinarySearch
	// FullScan answers queries by scanning all elements; the oracle.
	FullScan
)

// String returns the reduction's name.
func (r Reduction) String() string {
	switch r {
	case Expected:
		return "Expected"
	case WorstCase:
		return "WorstCase"
	case BinarySearch:
		return "BinarySearch"
	case FullScan:
		return "FullScan"
	}
	return fmt.Sprintf("Reduction(%d)", int(r))
}

// MaintenancePolicy selects how an overlay-dynamized index maintains
// its substructure ladder between updates (internal/dynamic's policy
// seam; DESIGN.md §15). It has no effect on natively dynamic builds or
// on static indexes.
type MaintenancePolicy int

const (
	// PolicyLogarithmic is the classic Bentley–Saxe logarithmic method:
	// a full tail flush carries through the geometric levels, and
	// tombstone debt is repaid by a global rebuild. Amortized insert
	// cost O(log(n/B) · Build(n)/n) I/Os. The default.
	PolicyLogarithmic MaintenancePolicy = iota
	// PolicyBuffered batches updates into per-tier runs (up to four
	// runs per tier) and repays tombstone debt with weight-balanced
	// partial rebuilds of single runs, so no update ever triggers a
	// global rebuild. Amortized insert cost ≈ (1 + ½·log(n/B)) ·
	// Build(n)/n I/Os — strictly below the logarithmic policy's on the
	// EM cost model (experiment E32) — at the price of a constant-factor
	// wider ladder for queries to merge across.
	PolicyBuffered
)

// String returns the policy's name, matching internal/dynamic's policy
// identifiers (and the id recorded in snapshots).
func (p MaintenancePolicy) String() string {
	switch p {
	case PolicyLogarithmic:
		return "logarithmic"
	case PolicyBuffered:
		return "buffered"
	}
	return fmt.Sprintf("MaintenancePolicy(%d)", int(p))
}

// CachePolicy selects the EM frame cache's replacement/admission
// policy.
type CachePolicy int

const (
	// CacheLRU evicts the least-recently-used frame — the EM model's
	// standard assumption, and the policy every I/O bound in the paper
	// is stated against. The default.
	CacheLRU CachePolicy = iota
	// CacheTinyLFU keeps the LRU order but adds a frequency-sketch
	// admission filter (doorkeeper bloom + count-min sketch, TinyLFU
	// style) in front of it: a missed block enters a full cache only if
	// its recent access frequency beats the would-be victim's, so
	// one-touch scan blocks cannot flush a resident hot set.
	CacheTinyLFU
)

// String returns the policy's name.
func (p CachePolicy) String() string {
	switch p {
	case CacheLRU:
		return "lru"
	case CacheTinyLFU:
		return "tinylfu"
	}
	return fmt.Sprintf("CachePolicy(%d)", int(p))
}

func (p MaintenancePolicy) dynPolicy() dynamic.MaintenancePolicy {
	if p == PolicyBuffered {
		return dynamic.PolicyBuffered
	}
	return dynamic.PolicyLogarithmic
}

// maintenancePolicyByID parses a policy's String()/snapshot identifier.
func maintenancePolicyByID(id string) (MaintenancePolicy, error) {
	switch id {
	case "", PolicyLogarithmic.String():
		return PolicyLogarithmic, nil
	case PolicyBuffered.String():
		return PolicyBuffered, nil
	}
	return 0, fmt.Errorf("topk: unknown maintenance policy %q in snapshot", id)
}

func (p CachePolicy) emPolicy() em.CachePolicy {
	if p == CacheTinyLFU {
		return em.PolicyTinyLFU
	}
	return em.PolicyLRU
}

// Options configures an index. Use the With… helpers.
type Options struct {
	reduction Reduction
	blockSize int
	memBlocks int
	seed      uint64
	updates   bool
	tracing   bool
	metrics   bool
	slowW     io.Writer
	slowMin   int64
	slowKeep  int
	queryLogW io.Writer
	policy    ShardPolicy
	maintPol  MaintenancePolicy
	cachePol  CachePolicy
	diskDir   string
	diskDirIO bool
	// obsReg and shardLabel are set internally when an engine is built as
	// one shard of a Sharded index: all shards register their metric
	// series in the shared registry, distinguished by a shard="i" label.
	obsReg     *obs.Registry
	shardLabel string
}

// Option mutates Options.
type Option func(*Options)

// WithReduction selects the reduction (default Expected).
func WithReduction(r Reduction) Option { return func(o *Options) { o.reduction = r } }

// WithBlockSize sets the simulated EM block size B in words (default 64,
// the paper's minimum).
func WithBlockSize(b int) Option { return func(o *Options) { o.blockSize = b } }

// WithMemBlocks sets the simulated memory size in block frames (default 8;
// the model requires at least 2).
func WithMemBlocks(m int) Option { return func(o *Options) { o.memBlocks = m } }

// WithSeed seeds the randomized parts of the structures (sampling in both
// reductions). Identical seeds and inputs produce identical structures.
func WithSeed(s uint64) Option { return func(o *Options) { o.seed = s } }

// WithUpdates makes the index dynamic under any reduction: the
// reduction's static structure is wrapped in a dynamization overlay
// (internal/dynamic) of geometrically sized substructures, while
// queries pay only a tombstone-filtered candidate merge across them.
// How the overlay maintains those substructures — when the insert
// buffer flushes, which levels merge, and how tombstone debt is repaid
// — is a pluggable maintenance policy selected by
// WithMaintenancePolicy: the default PolicyLogarithmic is the
// Bentley–Saxe logarithmic method (amortized O(log(n/B) · Build(n)/n)
// insert I/Os with occasional global rebuilds), PolicyBuffered trades
// a wider ladder for strictly cheaper amortized inserts and no global
// rebuilds. The interval and range indexes under the Expected
// reduction are already dynamic through Theorem 2's native update path
// and ignore this option.
func WithUpdates() Option { return func(o *Options) { o.updates = true } }

// WithMaintenancePolicy selects the dynamization overlay's structural
// maintenance policy (default PolicyLogarithmic). It only matters
// together with WithUpdates on a non-natively-dynamic build; see
// MaintenancePolicy for the trade-off and DESIGN.md §15 for the
// design. The policy is structural state: snapshots record it, and a
// restore resumes the overlay under the policy it was running.
func WithMaintenancePolicy(p MaintenancePolicy) Option {
	return func(o *Options) { o.maintPol = p }
}

// WithTracing enables per-query phase traces: every QueryBatch result
// carries the query's span events (Trace on BatchResult), each naming a
// reduction phase with its exact EM I/O deltas. Tracing only reads the
// I/O counters, so enabling it never changes a query's measured cost;
// with tracing off the hooks compile down to a single atomic load.
func WithTracing() Option { return func(o *Options) { o.tracing = true } }

// WithMetrics enables the index's metrics registry: atomic counters and
// histograms (queries, latency, I/Os per query, Theorem 2 rounds per
// query, cache hits, overlay shape, flush/rebuild totals), exported in
// Prometheus text format through the index's WriteMetrics method.
func WithMetrics() Option { return func(o *Options) { o.metrics = true } }

// WithShardPolicy selects how a Sharded index assigns items to shards
// (default ShardByWeight). It has no effect on unsharded indexes.
func WithShardPolicy(p ShardPolicy) Option { return func(o *Options) { o.policy = p } }

// WithSlowQueryLog logs every query that costs at least minIOs simulated
// I/Os: a summary line plus the query's full phase trace, written to w
// (nil keeps entries only in an in-memory ring readable via the serving
// surface). Implies per-query tracing on the batch path.
func WithSlowQueryLog(w io.Writer, minIOs int64) Option {
	return func(o *Options) { o.slowW = w; o.slowMin = minIOs }
}

// WithSlowLogKeep sets how many slow-query entries the in-memory ring
// retains for live inspection (default 64). It only matters together
// with WithSlowQueryLog.
func WithSlowLogKeep(keep int) Option {
	return func(o *Options) { o.slowKeep = keep }
}

// WithQueryLog emits one structured JSON "wide event" per query to w:
// problem, query, k, latency, I/Os split by phase, cache hit rate, and —
// when the query ran under a QueryCtx — its budget, deadline slack, and
// outcome, all in a single newline-delimited row. Under a Sharded index
// each shard emits its own row, distinguished by the shard field. The
// writer is shared by concurrent query workers through a mutex; rows
// never interleave.
func WithQueryLog(w io.Writer) Option {
	return func(o *Options) { o.queryLogW = w }
}

// WithCachePolicy selects the EM frame cache's replacement/admission
// policy (default CacheLRU). The policy applies to the shared cache and
// to every query view's private cache; CacheStats reports its decision
// counters. Note that the paper's bounds assume LRU — CacheTinyLFU is
// an engineering comparison point, not a modeled guarantee.
func WithCachePolicy(p CachePolicy) Option { return func(o *Options) { o.cachePol = p } }

// WithDiskStore backs the index's EM machine with a real file-backed
// block store in dir (created if missing): every allocated block's
// payload is persisted to a single data file and every cache miss
// performs a positioned read syscall against it, so the simulated I/O
// counts gain a physical counterpart (StoreStats) while queries keep
// answering byte-identically — the in-memory structures remain
// authoritative, and store failures surface through StoreErr, never as
// wrong answers. A Sharded index opens one store file per shard in the
// same directory. The file is recreated on every build or restore (it
// is a paging arena, not the system of record) and released by Close.
func WithDiskStore(dir string) Option { return func(o *Options) { o.diskDir = dir } }

// WithDiskDirectIO asks the disk store for O_DIRECT block transfers,
// bypassing the OS page cache so the simulated M/B-frame cache is the
// only cache between the index and the medium. Platforms or
// filesystems without O_DIRECT support fall back to buffered I/O
// transparently. Only meaningful together with WithDiskStore.
func WithDiskDirectIO() Option { return func(o *Options) { o.diskDirIO = true } }

func applyOptions(opts []Option) Options {
	o := Options{reduction: Expected, blockSize: 64, memBlocks: 8, seed: 1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func (o Options) newTracker() (*em.Tracker, error) {
	cfg := em.Config{B: o.blockSize, MemBlocks: o.memBlocks, Policy: o.cachePol.emPolicy()}
	if o.diskDir == "" {
		return em.NewTracker(cfg), nil
	}
	if err := os.MkdirAll(o.diskDir, 0o755); err != nil {
		return nil, fmt.Errorf("topk: creating disk-store directory: %w", err)
	}
	name := "blocks.tkbs"
	if o.shardLabel != "" {
		name = "blocks-" + o.shardLabel + ".tkbs"
	}
	sOpts := []diskstore.Option{diskstore.WithTruncate()}
	if o.diskDirIO {
		sOpts = append(sOpts, diskstore.WithDirectIO())
	}
	store, err := diskstore.Open(filepath.Join(o.diskDir, name), em.PayloadBytesFor(cfg.B), sOpts...)
	if err != nil {
		return nil, fmt.Errorf("topk: opening disk store: %w", err)
	}
	tr, err := em.NewTrackerWithStore(cfg, store)
	if err != nil {
		store.Close()
		return nil, err
	}
	return tr, nil
}

// StoreStats counts the physical operations performed by an index's
// disk store (all zero unless built WithDiskStore): Reads and Writes
// are positioned read/write syscalls at block granularity — the
// measured side of experiment E30's simulated-vs-real comparison.
type StoreStats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	Syncs        int64
	Frees        int64
}

// CacheStats reports the EM frame cache's policy decisions: evictions
// (any policy), plus admission rejections and frequency-sketch aging
// resets (CacheTinyLFU only). Counters aggregate the shared cache and
// every query view's private cache.
type CacheStats struct {
	Evictions        int64
	AdmissionRejects int64
	SketchResets     int64
}

func publicStoreStats(s em.StoreStats) StoreStats {
	return StoreStats{
		Reads:        s.Reads,
		Writes:       s.Writes,
		BytesRead:    s.BytesRead,
		BytesWritten: s.BytesWritten,
		Syncs:        s.Syncs,
		Frees:        s.Frees,
	}
}

func publicCacheStats(s em.CacheStats) CacheStats {
	return CacheStats{
		Evictions:        s.Evictions,
		AdmissionRejects: s.AdmissionRejects,
		SketchResets:     s.SketchResets,
	}
}

func (s StoreStats) add(t StoreStats) StoreStats {
	return StoreStats{
		Reads:        s.Reads + t.Reads,
		Writes:       s.Writes + t.Writes,
		BytesRead:    s.BytesRead + t.BytesRead,
		BytesWritten: s.BytesWritten + t.BytesWritten,
		Syncs:        s.Syncs + t.Syncs,
		Frees:        s.Frees + t.Frees,
	}
}

func (s CacheStats) add(t CacheStats) CacheStats {
	return CacheStats{
		Evictions:        s.Evictions + t.Evictions,
		AdmissionRejects: s.AdmissionRejects + t.AdmissionRejects,
		SketchResets:     s.SketchResets + t.SketchResets,
	}
}

// Stats is a point-in-time snapshot of an index's simulated I/O activity
// and space usage.
type Stats struct {
	// Reads and Writes are block I/Os since construction or the last
	// ResetStats; Hits are cache hits (free in the EM model).
	Reads, Writes, Hits int64
	// Blocks is the current space usage in disk blocks.
	Blocks int64
	// Reduction is the reduction answering this index's queries.
	Reduction Reduction
}

// IOs returns Reads + Writes, the EM model's cost metric.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

func statsOf(t *em.Tracker, r Reduction) Stats {
	s := t.Stats()
	return Stats{Reads: s.Reads, Writes: s.Writes, Hits: s.Hits, Blocks: s.Blocks, Reduction: r}
}
