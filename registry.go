package topk

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"topk/internal/circular"
	"topk/internal/dominance"
	"topk/internal/enclosure"
	"topk/internal/halfspace"
	"topk/internal/interval"
	"topk/internal/orthorange"
	"topk/internal/rangerep"
	"topk/internal/snap"
	"topk/internal/wrand"
)

// This file is the problem registry: every shipped problem is described
// once as a ProblemSpec, and generic consumers — the serving binary
// (cmd/topk-serve), the snapshot tool (cmd/topk-snap), the benchmark
// harness (internal/bench), and the conformance suite
// (conformance_test.go, snapshot_test.go) — iterate RegisteredProblems
// instead of hand-maintaining per-problem switches. Adding a ninth
// problem to the library is a descriptor (engine.go), a thin typed
// facade, and one ProblemSpec here; the serving surface, persistence,
// the registry benchmark, and the conformance tests pick it up with no
// further edits.

// ServedItem is one query answer in type-erased form: the item's weight
// (its unique identity across the index) plus a short human rendering of
// its geometry.
type ServedItem struct {
	Weight float64
	Label  string
}

// Served is a type-erased view of one built index, sufficient to drive
// it without knowing its query or item types. Queries are opaque values
// produced by GenQueries or DecodeQuery; passing a query of the wrong
// problem's type panics, like any interface misuse.
type Served interface {
	// Problem returns the registry name of the problem being served.
	Problem() string
	// Shards returns the number of partitions serving the index: 1 for a
	// plain index (Build), the requested count for BuildSharded.
	Shards() int
	// ShardSizes returns the live item count of each partition — one
	// entry per shard, a single entry for a plain index.
	ShardSizes() []int
	// Len returns the number of live items.
	Len() int
	// GenQueries returns m deterministic queries derived from seed.
	GenQueries(m int, seed uint64) []any
	// DecodeQuery parses one JSON-shaped query (the /query wire format;
	// see ProblemSpec.QueryShape for the expected shape).
	DecodeQuery(raw json.RawMessage) (any, error)
	// DecodeItem parses one JSON-shaped item (the /ingest wire format;
	// see ProblemSpec.ItemShape for the expected shape). The decoded
	// value feeds InsertBatch; geometry and weight validation happen
	// there, through the same gate as every other insert path.
	DecodeItem(raw json.RawMessage) (any, error)
	// TopK returns the k heaviest items satisfying q, heaviest first.
	TopK(q any, k int) []ServedItem
	// Max returns the heaviest item satisfying q (a top-1 query).
	Max(q any) (ServedItem, bool)
	// ReportAbove returns every item satisfying q with weight ≥ tau, in
	// unspecified order.
	ReportAbove(q any, tau float64) []ServedItem
	// Oracle returns every live item satisfying q in descending weight
	// order, computed by an in-memory scan outside the EM model — the
	// ground truth the reductions are checked against.
	Oracle(q any) []ServedItem
	// QueryBatch answers one top-k query per element of qs on the
	// concurrent batch path (see batch.go for the contract).
	QueryBatch(qs []any, k, parallelism int) []BatchResult[ServedItem]
	// QueryBatchCtx is QueryBatch under a request-lifecycle contract
	// (I/O budget, deadline, degradation; see QueryCtx). Per-query
	// Outcome and Err report how each query ended.
	QueryBatchCtx(ctx QueryCtx, qs []any, k, parallelism int) []BatchResult[ServedItem]
	// InsertFresh inserts a deterministically generated valid item whose
	// weight collides with no live item, returning the weight used.
	InsertFresh(seed uint64) (float64, error)
	// InsertInvalid attempts to insert the problem's canonical malformed
	// item; a nil error is a validation bug.
	InsertInvalid() error
	// Delete removes the item with the given weight, reporting whether it
	// was present.
	Delete(weight float64) (bool, error)
	// InsertBatch bulk-inserts a batch of DecodeItem-decoded items in
	// one ingest round: the whole batch is validated before anything is
	// inserted, and on an overlay-dynamized build the accepted batch
	// bulk-loads with one sorted-merge flush (per shard, when sharded).
	InsertBatch(items []any) error
	// DeleteBatch removes the items with the given weights, returning
	// how many were present; absent weights are skipped.
	DeleteBatch(weights []float64) (int, error)
	// Stats returns the index-wide simulated I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// WriteMetrics renders the index's metrics registry in Prometheus
	// text format. It errors unless the index was built WithMetrics.
	WriteMetrics(w io.Writer) error
	// Snapshot persists the index into dir: one snapshot file per shard
	// plus a manifest (see DESIGN.md §12). The spec's Restore — or
	// LoadSnapshot, which dispatches on the manifest — rebuilds an index
	// answering every query identically at O(size/B) restore I/Os.
	Snapshot(dir string) error
	// StoreStats returns the physical operation counters of the index's
	// disk store (summed over shards; all zero without WithDiskStore).
	StoreStats() StoreStats
	// CacheStats returns the EM frame cache's policy decision counters
	// (summed over shards).
	CacheStats() CacheStats
	// StoreErr returns the first disk-store failure observed on any
	// shard, nil if none.
	StoreErr() error
	// Close releases the index's disk store, if any; a no-op without
	// WithDiskStore, idempotent either way.
	Close() error
}

// ProblemSpec is one registry entry: a problem name plus type-erased
// constructors that let generic consumers build and drive the problem's
// index.
type ProblemSpec struct {
	// Name is the problem's registry key, matching the index's metrics
	// label ("interval", "range", "ortho", …).
	Name string
	// Dim is the ambient dimension the registry serves the problem in
	// (0 when the problem has a fixed natural dimension).
	Dim int
	// QueryShape documents the JSON wire shape DecodeQuery accepts.
	QueryShape string
	// ItemShape documents the JSON wire shape DecodeItem accepts — one
	// object per item on the /ingest NDJSON stream.
	ItemShape string
	// WireQueries returns m deterministic JSON-encoded queries derived
	// from seed, in the problem's /query wire shape (DecodeQuery accepts
	// every one of them). This is the workload source for
	// cmd/topk-loadgen, which drives a server over HTTP and never builds
	// an index of its own; the distribution matches Served.GenQueries at
	// equal seed.
	WireQueries func(m int, seed uint64) []json.RawMessage
	// NativeDynamic reports that the Expected reduction updates through
	// Theorem 2's native path, so the index is updatable even without
	// WithUpdates.
	NativeDynamic bool
	// Build constructs the index over a deterministic n-item workload
	// derived from seed.
	Build func(n int, seed uint64, opts ...Option) (Served, error)
	// BuildSharded constructs the index over the same workload as Build,
	// partitioned across the given number of shards (fan-out/merge
	// serving; see Sharded). BuildSharded(n, 1, seed) serves the same
	// items as Build(n, seed) behind a one-shard partition.
	BuildSharded func(n, shards int, seed uint64, opts ...Option) (Served, error)
	// BuildInvalid attempts construction over a small workload containing
	// one malformed item, returning the constructor's error. A nil error
	// is a constructor/Insert validation asymmetry.
	BuildInvalid func(opts ...Option) error
	// Restore rebuilds the index from a snapshot directory written by
	// Served.Snapshot. The structural configuration (reduction, block
	// size, seed, shard policy) comes from the snapshot; opts may add
	// runtime options such as WithMetrics or WithTracing.
	Restore func(dir string, opts ...Option) (Served, error)
	// RestoreShard rebuilds exactly one shard of a partitioned snapshot
	// as a standalone one-shard index — the replica-bootstrap hook behind
	// LoadShard. Only the manifest and that shard's file need to exist in
	// dir, so a node ships just the shards it owns.
	RestoreShard func(dir string, shard int, opts ...Option) (Served, error)
	// Reshard rewrites a snapshot directory at a different shard count
	// without touching the indexed items — the bulk shard-shipping
	// transform behind cmd/topk-snap convert.
	Reshard func(srcDir, dstDir string, shards int) error
}

// Updatable describes the spec's update support for human listings.
func (s ProblemSpec) Updatable() string {
	if s.NativeDynamic {
		return "native (Expected reduction); overlay via WithUpdates otherwise"
	}
	return "overlay via WithUpdates"
}

// AllReductions lists every reduction, in the order they appear in the
// paper. Registry consumers iterate it to sweep problem × reduction.
func AllReductions() []Reduction {
	return []Reduction{Expected, WorstCase, BinarySearch, FullScan}
}

// RegisteredProblems returns the specs of every shipped problem, in a
// stable order.
func RegisteredProblems() []ProblemSpec {
	return append([]ProblemSpec(nil), problemRegistry...)
}

// ProblemByName returns the spec registered under name.
func ProblemByName(name string) (ProblemSpec, bool) {
	for _, s := range problemRegistry {
		if s.Name == name {
			return s, true
		}
	}
	return ProblemSpec{}, false
}

// ProblemNames returns the registered problem names, in registry order.
func ProblemNames() []string {
	names := make([]string, len(problemRegistry))
	for i, s := range problemRegistry {
		names[i] = s.Name
	}
	return names
}

// servedEngine is the uniform index surface the served adapter drives —
// satisfied by both a single engine and a Sharded partition of engines,
// which is what lets every registry consumer (serving, benchmarks,
// conformance) run shard-aware with no per-problem code.
type servedEngine[Q, It any] interface {
	Len() int
	TopK(q Q, k int) []It
	Max(q Q) (It, bool)
	ReportAbove(q Q, tau float64, visit func(It) bool)
	Items() []It
	QueryBatch(qs []Q, k int, parallelism int) []BatchResult[It]
	QueryBatchCtx(ctx QueryCtx, qs []Q, k int, parallelism int) []BatchResult[It]
	Insert(it It) error
	InsertBatch(items []It) error
	Delete(weight float64) (bool, error)
	DeleteBatch(weights []float64) (int, error)
	Stats() Stats
	ResetStats()
	WriteMetrics(w io.Writer) error
	StoreStats() StoreStats
	CacheStats() CacheStats
	StoreErr() error
	Close() error
	hasWeight(w float64) bool
	snapDir(dir string) error
}

func (e *engine[Q, V, It]) hasWeight(w float64) bool { _, ok := e.data[w]; return ok }

func (s *Sharded[Q, V, It]) hasWeight(w float64) bool { _, ok := s.owner[w]; return ok }

// served adapts one engine — or one Sharded group of engines — to the
// type-erased Served interface. The problem-specific residue is the
// problem descriptor, four closures, and a canonical invalid item.
type served[Q, V, It any] struct {
	p       problem[Q, V, It]
	eng     servedEngine[Q, It]
	nshards int
	// gen draws one query from the problem's deterministic distribution.
	gen func(g *wrand.RNG) Q
	// decode parses the problem's JSON query shape.
	decode func(raw json.RawMessage) (Q, error)
	// decItem parses the problem's JSON item shape (the ingest wire
	// format); semantic validation is InsertBatch's job.
	decItem func(raw json.RawMessage) (It, error)
	// label renders an item's geometry for ServedItem.
	label func(It) string
	// fresh builds a valid item with the given (pre-checked) weight.
	fresh func(g *wrand.RNG, w float64) It
	// invalid is an item every validation path must reject.
	invalid It
}

func (s *served[Q, V, It]) Problem() string { return s.p.name }
func (s *served[Q, V, It]) Shards() int     { return s.nshards }
func (s *served[Q, V, It]) Len() int        { return s.eng.Len() }

func (s *served[Q, V, It]) ShardSizes() []int {
	if sh, ok := s.eng.(interface{ ShardLens() []int }); ok {
		return sh.ShardLens()
	}
	return []int{s.eng.Len()}
}

func (s *served[Q, V, It]) GenQueries(m int, seed uint64) []any {
	g := wrand.New(seed)
	qs := make([]any, m)
	for i := range qs {
		qs[i] = s.gen(g)
	}
	return qs
}

func (s *served[Q, V, It]) DecodeQuery(raw json.RawMessage) (any, error) {
	q, err := s.decode(raw)
	if err != nil {
		return nil, err
	}
	return q, nil
}

func (s *served[Q, V, It]) DecodeItem(raw json.RawMessage) (any, error) {
	it, err := s.decItem(raw)
	if err != nil {
		return nil, err
	}
	return it, nil
}

func (s *served[Q, V, It]) InsertBatch(items []any) error {
	typed := make([]It, len(items))
	for i, it := range items {
		typed[i] = it.(It)
	}
	return s.eng.InsertBatch(typed)
}

func (s *served[Q, V, It]) DeleteBatch(weights []float64) (int, error) {
	return s.eng.DeleteBatch(weights)
}

func (s *served[Q, V, It]) item(it It) ServedItem {
	return ServedItem{Weight: s.p.weight(it), Label: s.label(it)}
}

func (s *served[Q, V, It]) TopK(q any, k int) []ServedItem {
	res := s.eng.TopK(q.(Q), k)
	out := make([]ServedItem, len(res))
	for i, it := range res {
		out[i] = s.item(it)
	}
	return out
}

func (s *served[Q, V, It]) Max(q any) (ServedItem, bool) {
	it, ok := s.eng.Max(q.(Q))
	if !ok {
		return ServedItem{}, false
	}
	return s.item(it), true
}

func (s *served[Q, V, It]) ReportAbove(q any, tau float64) []ServedItem {
	var out []ServedItem
	s.eng.ReportAbove(q.(Q), tau, func(it It) bool {
		out = append(out, s.item(it))
		return true
	})
	return out
}

func (s *served[Q, V, It]) Oracle(q any) []ServedItem {
	qq := q.(Q)
	var out []ServedItem
	for _, it := range s.eng.Items() {
		if s.p.match(qq, s.p.toCore(it).Value) {
			out = append(out, s.item(it))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out
}

func (s *served[Q, V, It]) QueryBatch(qs []any, k, parallelism int) []BatchResult[ServedItem] {
	return s.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

func (s *served[Q, V, It]) QueryBatchCtx(ctx QueryCtx, qs []any, k, parallelism int) []BatchResult[ServedItem] {
	typed := make([]Q, len(qs))
	for i, q := range qs {
		typed[i] = q.(Q)
	}
	res := s.eng.QueryBatchCtx(ctx, typed, k, parallelism)
	out := make([]BatchResult[ServedItem], len(res))
	for i, r := range res {
		items := make([]ServedItem, len(r.Items))
		for j, it := range r.Items {
			items[j] = s.item(it)
		}
		out[i] = BatchResult[ServedItem]{Items: items, Stats: r.Stats, Trace: r.Trace, Outcome: r.Outcome, Err: r.Err}
	}
	return out
}

func (s *served[Q, V, It]) InsertFresh(seed uint64) (float64, error) {
	g := wrand.New(seed)
	var w float64
	for {
		w = g.Float64() * 1e9
		if !s.eng.hasWeight(w) {
			break
		}
	}
	return w, s.eng.Insert(s.fresh(g, w))
}

func (s *served[Q, V, It]) InsertInvalid() error { return s.eng.Insert(s.invalid) }

func (s *served[Q, V, It]) Delete(weight float64) (bool, error) { return s.eng.Delete(weight) }

func (s *served[Q, V, It]) Stats() Stats                   { return s.eng.Stats() }
func (s *served[Q, V, It]) ResetStats()                    { s.eng.ResetStats() }
func (s *served[Q, V, It]) WriteMetrics(w io.Writer) error { return s.eng.WriteMetrics(w) }
func (s *served[Q, V, It]) Snapshot(dir string) error      { return s.eng.snapDir(dir) }
func (s *served[Q, V, It]) StoreStats() StoreStats         { return s.eng.StoreStats() }
func (s *served[Q, V, It]) CacheStats() CacheStats         { return s.eng.CacheStats() }
func (s *served[Q, V, It]) StoreErr() error                { return s.eng.StoreErr() }
func (s *served[Q, V, It]) Close() error                   { return s.eng.Close() }

// ---- registry entries -------------------------------------------------
//
// Workloads live on [0, 100] per axis with weights drawn distinct from
// [0, 1e6); query distributions are chosen so a typical query matches a
// non-trivial fraction of the items. Everything is a pure function of
// (n, seed), so twin builds are bit-identical.

const coordScale = 100

func fmtCoords(cs []float64) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%.3f", c)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func decodeFloats(raw json.RawMessage, want int, shape string) ([]float64, error) {
	var xs []float64
	if err := json.Unmarshal(raw, &xs); err != nil {
		return nil, fmt.Errorf("want %s: %w", shape, err)
	}
	if len(xs) != want {
		return nil, fmt.Errorf("want %s, got %d numbers", shape, len(xs))
	}
	return xs, nil
}

// unmarshalItem decodes one ingest-stream object, wrapping JSON errors
// with the problem's documented item shape.
func unmarshalItem(raw json.RawMessage, shape string, into any) error {
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("want %s: %w", shape, err)
	}
	return nil
}

// itemWeight unwraps an item's required "weight" field. Weight is the
// item's identity, so an omitted field is a shape error rather than a
// silent zero.
func itemWeight(w *float64, shape string) (float64, error) {
	if w == nil {
		return 0, fmt.Errorf(`want %s: missing "weight"`, shape)
	}
	return *w, nil
}

// wireQueries derives a ProblemSpec.WireQueries from the spec's query
// generator and a JSON-shaping encoder. gen must be the same generator
// the served adapter uses, so wire workloads and in-process workloads
// agree at equal seed.
func wireQueries[Q any](gen func(*wrand.RNG) Q, enc func(Q) any) func(m int, seed uint64) []json.RawMessage {
	return func(m int, seed uint64) []json.RawMessage {
		g := wrand.New(seed)
		out := make([]json.RawMessage, m)
		for i := range out {
			b, err := json.Marshal(enc(gen(g)))
			if err != nil {
				panic(fmt.Sprintf("topk: encoding wire query: %v", err))
			}
			out[i] = b
		}
		return out
	}
}

func genCoords(g *wrand.RNG, d int) []float64 {
	cs := make([]float64, d)
	for i := range cs {
		cs[i] = g.Float64() * coordScale
	}
	return cs
}

// pointNItemShape is the shared PointItemN ingest shape for the ortho,
// circular, and halfspace entries; the coordinate count is checked by
// the problem's dimension validation on insert.
const pointNItemShape = `{"coords": [x1, ...], "weight": w}`

func decodePointN(raw json.RawMessage) (PointItemN[int], error) {
	var body struct {
		Coords []float64 `json:"coords"`
		Weight *float64  `json:"weight"`
	}
	if err := unmarshalItem(raw, pointNItemShape, &body); err != nil {
		return PointItemN[int]{}, err
	}
	w, err := itemWeight(body.Weight, pointNItemShape)
	if err != nil {
		return PointItemN[int]{}, err
	}
	return PointItemN[int]{Coords: body.Coords, Weight: w}, nil
}

// genPointsN is the shared PointItemN workload for the ortho, circular,
// and halfspace entries.
func genPointsN(n, d int, seed uint64) []PointItemN[int] {
	g := wrand.New(seed)
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{Coords: genCoords(g, d), Weight: ws[i], Data: i}
	}
	return items
}

var problemRegistry = []ProblemSpec{
	intervalSpec(),
	rangeSpec(),
	orthoSpec(),
	circularSpec(),
	dominanceSpec(),
	enclosureSpec(),
	halfplaneSpec(),
	halfspaceSpec(),
}

func intervalSpec() ProblemSpec {
	mk := func(n int, seed uint64) []IntervalItem[int] {
		g := wrand.New(seed)
		ws := g.UniqueFloats(n, 1e6)
		items := make([]IntervalItem[int], n)
		for i := range items {
			lo := g.Float64() * coordScale
			items[i] = IntervalItem[int]{Lo: lo, Hi: lo + g.ExpFloat64()*5, Weight: ws[i], Data: i}
		}
		return items
	}
	genQ := func(g *wrand.RNG) float64 { return g.Float64() * coordScale }
	const itemShape = `{"lo": x1, "hi": x2, "weight": w}`
	adapt := func(eng servedEngine[float64, IntervalItem[int]], nshards int) Served {
		return &served[float64, interval.Interval, IntervalItem[int]]{
			p: intervalProblem[int](), eng: eng, nshards: nshards,
			gen: genQ,
			decode: func(raw json.RawMessage) (float64, error) {
				var x float64
				if err := json.Unmarshal(raw, &x); err != nil {
					return 0, fmt.Errorf("want a stabbing point (number): %w", err)
				}
				return x, nil
			},
			decItem: func(raw json.RawMessage) (IntervalItem[int], error) {
				var body struct {
					Lo     float64  `json:"lo"`
					Hi     float64  `json:"hi"`
					Weight *float64 `json:"weight"`
				}
				if err := unmarshalItem(raw, itemShape, &body); err != nil {
					return IntervalItem[int]{}, err
				}
				w, err := itemWeight(body.Weight, itemShape)
				if err != nil {
					return IntervalItem[int]{}, err
				}
				return IntervalItem[int]{Lo: body.Lo, Hi: body.Hi, Weight: w}, nil
			},
			label: func(it IntervalItem[int]) string { return fmt.Sprintf("[%.3f, %.3f]", it.Lo, it.Hi) },
			fresh: func(g *wrand.RNG, w float64) IntervalItem[int] {
				lo := g.Float64() * coordScale
				return IntervalItem[int]{Lo: lo, Hi: lo + 1, Weight: w}
			},
			invalid: IntervalItem[int]{Lo: 2, Hi: 1, Weight: 0.5},
		}
	}
	mkProblem := func(snap.Header) (problem[float64, interval.Interval, IntervalItem[int]], error) {
		return intervalProblem[int](), nil
	}
	return ProblemSpec{
		Name:          "interval",
		QueryShape:    "number (stabbing point x)",
		ItemShape:     itemShape,
		WireQueries:   wireQueries(genQ, func(x float64) any { return x }),
		NativeDynamic: true,
		Build: func(n int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewIntervalIndex(mk(n, seed), opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.eng, 1), nil
		},
		BuildSharded: func(n, shards int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewShardedIntervalIndex(mk(n, seed), shards, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.Sharded, shards), nil
		},
		Restore: func(dir string, opts ...Option) (Served, error) {
			eng, nsh, err := restoreServedEngine(mkProblem, dir, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, nsh), nil
		},
		RestoreShard: func(dir string, shard int, opts ...Option) (Served, error) {
			eng, err := restoreShardEngine(mkProblem, dir, shard, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, 1), nil
		},
		Reshard: func(srcDir, dstDir string, shards int) error {
			return reshardSnapshot(mkProblem, srcDir, dstDir, shards)
		},
		BuildInvalid: func(opts ...Option) error {
			items := mk(4, 1)
			items = append(items, IntervalItem[int]{Lo: 2, Hi: 1, Weight: 0.5})
			_, err := NewIntervalIndex(items, opts...)
			return err
		},
	}
}

func rangeSpec() ProblemSpec {
	mk := func(n int, seed uint64) []PointItem1[int] {
		g := wrand.New(seed)
		ws := g.UniqueFloats(n, 1e6)
		items := make([]PointItem1[int], n)
		for i := range items {
			items[i] = PointItem1[int]{Pos: g.Float64() * coordScale, Weight: ws[i], Data: i}
		}
		return items
	}
	genQ := func(g *wrand.RNG) rangerep.Span {
		a, b := g.Float64()*coordScale, g.Float64()*coordScale
		if a > b {
			a, b = b, a
		}
		return rangerep.Span{Lo: a, Hi: b}
	}
	const itemShape = `{"pos": x, "weight": w}`
	adapt := func(eng servedEngine[rangerep.Span, PointItem1[int]], nshards int) Served {
		return &served[rangerep.Span, float64, PointItem1[int]]{
			p: rangeProblem[int](), eng: eng, nshards: nshards,
			gen: genQ,
			decode: func(raw json.RawMessage) (rangerep.Span, error) {
				xs, err := decodeFloats(raw, 2, "[lo, hi]")
				if err != nil {
					return rangerep.Span{}, err
				}
				return rangerep.Span{Lo: xs[0], Hi: xs[1]}, nil
			},
			decItem: func(raw json.RawMessage) (PointItem1[int], error) {
				var body struct {
					Pos    float64  `json:"pos"`
					Weight *float64 `json:"weight"`
				}
				if err := unmarshalItem(raw, itemShape, &body); err != nil {
					return PointItem1[int]{}, err
				}
				w, err := itemWeight(body.Weight, itemShape)
				if err != nil {
					return PointItem1[int]{}, err
				}
				return PointItem1[int]{Pos: body.Pos, Weight: w}, nil
			},
			label: func(it PointItem1[int]) string { return fmt.Sprintf("%.3f", it.Pos) },
			fresh: func(g *wrand.RNG, w float64) PointItem1[int] {
				return PointItem1[int]{Pos: g.Float64() * coordScale, Weight: w}
			},
			invalid: PointItem1[int]{Pos: math.NaN(), Weight: 0.5},
		}
	}
	mkProblem := func(snap.Header) (problem[rangerep.Span, float64, PointItem1[int]], error) {
		return rangeProblem[int](), nil
	}
	return ProblemSpec{
		Name:          "range",
		QueryShape:    "[lo, hi]",
		ItemShape:     itemShape,
		WireQueries:   wireQueries(genQ, func(q rangerep.Span) any { return [2]float64{q.Lo, q.Hi} }),
		NativeDynamic: true,
		Build: func(n int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewRangeIndex(mk(n, seed), opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.eng, 1), nil
		},
		BuildSharded: func(n, shards int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewShardedRangeIndex(mk(n, seed), shards, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.Sharded, shards), nil
		},
		Restore: func(dir string, opts ...Option) (Served, error) {
			eng, nsh, err := restoreServedEngine(mkProblem, dir, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, nsh), nil
		},
		RestoreShard: func(dir string, shard int, opts ...Option) (Served, error) {
			eng, err := restoreShardEngine(mkProblem, dir, shard, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, 1), nil
		},
		Reshard: func(srcDir, dstDir string, shards int) error {
			return reshardSnapshot(mkProblem, srcDir, dstDir, shards)
		},
		BuildInvalid: func(opts ...Option) error {
			items := mk(4, 1)
			items = append(items, PointItem1[int]{Pos: math.NaN(), Weight: 0.5})
			_, err := NewRangeIndex(items, opts...)
			return err
		},
	}
}

func orthoSpec() ProblemSpec {
	const d = 2
	genQ := func(g *wrand.RNG) orthorange.Box {
		lo, hi := make([]float64, d), make([]float64, d)
		for i := 0; i < d; i++ {
			a, b := g.Float64()*coordScale, g.Float64()*coordScale
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		q, _ := orthorange.NewBox(lo, hi)
		return q
	}
	adapt := func(eng servedEngine[orthorange.Box, PointItemN[int]], nshards int) Served {
		return &served[orthorange.Box, halfspace.PtN, PointItemN[int]]{
			p: orthoProblem[int](d), eng: eng, nshards: nshards,
			gen:     genQ,
			decItem: decodePointN,
			decode: func(raw json.RawMessage) (orthorange.Box, error) {
				var body struct {
					Lo []float64 `json:"lo"`
					Hi []float64 `json:"hi"`
				}
				if err := json.Unmarshal(raw, &body); err != nil {
					return orthorange.Box{}, fmt.Errorf(`want {"lo": [...], "hi": [...]}: %w`, err)
				}
				if len(body.Lo) != d || len(body.Hi) != d {
					return orthorange.Box{}, fmt.Errorf("want %d-dimensional lo and hi", d)
				}
				return orthorange.NewBox(body.Lo, body.Hi)
			},
			label: func(it PointItemN[int]) string { return fmtCoords(it.Coords) },
			fresh: func(g *wrand.RNG, w float64) PointItemN[int] {
				return PointItemN[int]{Coords: genCoords(g, d), Weight: w}
			},
			invalid: PointItemN[int]{Coords: []float64{1, math.NaN()}, Weight: 0.5},
		}
	}
	mkProblem := func(h snap.Header) (problem[orthorange.Box, halfspace.PtN, PointItemN[int]], error) {
		if int(h.Dim) != d {
			return problem[orthorange.Box, halfspace.PtN, PointItemN[int]]{}, fmt.Errorf("topk: snapshot is %d-dimensional, the registry serves ortho in dimension %d", h.Dim, d)
		}
		return orthoProblem[int](d), nil
	}
	return ProblemSpec{
		Name:       "ortho",
		Dim:        d,
		QueryShape: `{"lo": [x1, x2], "hi": [x1, x2]}`,
		ItemShape:  pointNItemShape,
		WireQueries: wireQueries(genQ, func(q orthorange.Box) any {
			return map[string]any{"lo": q.Lo, "hi": q.Hi}
		}),
		Build: func(n int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewOrthoIndex(genPointsN(n, d, seed), d, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.eng, 1), nil
		},
		BuildSharded: func(n, shards int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewShardedOrthoIndex(genPointsN(n, d, seed), d, shards, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.Sharded, shards), nil
		},
		Restore: func(dir string, opts ...Option) (Served, error) {
			eng, nsh, err := restoreServedEngine(mkProblem, dir, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, nsh), nil
		},
		RestoreShard: func(dir string, shard int, opts ...Option) (Served, error) {
			eng, err := restoreShardEngine(mkProblem, dir, shard, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, 1), nil
		},
		Reshard: func(srcDir, dstDir string, shards int) error {
			return reshardSnapshot(mkProblem, srcDir, dstDir, shards)
		},
		BuildInvalid: func(opts ...Option) error {
			items := genPointsN(4, d, 1)
			items = append(items, PointItemN[int]{Coords: []float64{1, math.NaN()}, Weight: 0.5})
			_, err := NewOrthoIndex(items, d, opts...)
			return err
		},
	}
}

func circularSpec() ProblemSpec {
	const d = 2
	genQ := func(g *wrand.RNG) circular.Ball {
		return circular.Ball{Center: genCoords(g, d), R: 5 + g.ExpFloat64()*10}
	}
	adapt := func(eng servedEngine[circular.Ball, PointItemN[int]], nshards int) Served {
		return &served[circular.Ball, halfspace.PtN, PointItemN[int]]{
			p: circularProblem[int](d), eng: eng, nshards: nshards,
			gen:     genQ,
			decItem: decodePointN,
			decode: func(raw json.RawMessage) (circular.Ball, error) {
				var body struct {
					Center []float64 `json:"center"`
					Radius float64   `json:"radius"`
				}
				if err := json.Unmarshal(raw, &body); err != nil {
					return circular.Ball{}, fmt.Errorf(`want {"center": [...], "radius": r}: %w`, err)
				}
				if len(body.Center) != d {
					return circular.Ball{}, fmt.Errorf("want a %d-dimensional center", d)
				}
				return circular.Ball{Center: body.Center, R: body.Radius}, nil
			},
			label: func(it PointItemN[int]) string { return fmtCoords(it.Coords) },
			fresh: func(g *wrand.RNG, w float64) PointItemN[int] {
				return PointItemN[int]{Coords: genCoords(g, d), Weight: w}
			},
			invalid: PointItemN[int]{Coords: []float64{math.NaN(), 1}, Weight: 0.5},
		}
	}
	mkProblem := func(h snap.Header) (problem[circular.Ball, halfspace.PtN, PointItemN[int]], error) {
		if int(h.Dim) != d {
			return problem[circular.Ball, halfspace.PtN, PointItemN[int]]{}, fmt.Errorf("topk: snapshot is %d-dimensional, the registry serves circular in dimension %d", h.Dim, d)
		}
		return circularProblem[int](d), nil
	}
	return ProblemSpec{
		Name:       "circular",
		Dim:        d,
		QueryShape: `{"center": [x, y], "radius": r}`,
		ItemShape:  pointNItemShape,
		WireQueries: wireQueries(genQ, func(q circular.Ball) any {
			return map[string]any{"center": q.Center, "radius": q.R}
		}),
		Build: func(n int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewCircularIndex(genPointsN(n, d, seed), d, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.eng, 1), nil
		},
		BuildSharded: func(n, shards int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewShardedCircularIndex(genPointsN(n, d, seed), d, shards, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.Sharded, shards), nil
		},
		Restore: func(dir string, opts ...Option) (Served, error) {
			eng, nsh, err := restoreServedEngine(mkProblem, dir, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, nsh), nil
		},
		RestoreShard: func(dir string, shard int, opts ...Option) (Served, error) {
			eng, err := restoreShardEngine(mkProblem, dir, shard, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, 1), nil
		},
		Reshard: func(srcDir, dstDir string, shards int) error {
			return reshardSnapshot(mkProblem, srcDir, dstDir, shards)
		},
		BuildInvalid: func(opts ...Option) error {
			items := genPointsN(4, d, 1)
			items = append(items, PointItemN[int]{Coords: []float64{math.NaN(), 1}, Weight: 0.5})
			_, err := NewCircularIndex(items, d, opts...)
			return err
		},
	}
}

func dominanceSpec() ProblemSpec {
	mk := func(n int, seed uint64) []DominanceItem[int] {
		g := wrand.New(seed)
		ws := g.UniqueFloats(n, 1e6)
		items := make([]DominanceItem[int], n)
		for i := range items {
			items[i] = DominanceItem[int]{
				X: g.Float64() * coordScale, Y: g.Float64() * coordScale, Z: g.Float64() * coordScale,
				Weight: ws[i], Data: i,
			}
		}
		return items
	}
	genQ := func(g *wrand.RNG) dominance.Pt3 {
		return dominance.Pt3{X: g.Float64() * coordScale, Y: g.Float64() * coordScale, Z: g.Float64() * coordScale}
	}
	const itemShape = `{"x": x, "y": y, "z": z, "weight": w}`
	adapt := func(eng servedEngine[dominance.Pt3, DominanceItem[int]], nshards int) Served {
		return &served[dominance.Pt3, dominance.Pt3, DominanceItem[int]]{
			p: dominanceProblem[int](), eng: eng, nshards: nshards,
			gen: genQ,
			decode: func(raw json.RawMessage) (dominance.Pt3, error) {
				xs, err := decodeFloats(raw, 3, "[x, y, z]")
				if err != nil {
					return dominance.Pt3{}, err
				}
				return dominance.Pt3{X: xs[0], Y: xs[1], Z: xs[2]}, nil
			},
			decItem: func(raw json.RawMessage) (DominanceItem[int], error) {
				var body struct {
					X      float64  `json:"x"`
					Y      float64  `json:"y"`
					Z      float64  `json:"z"`
					Weight *float64 `json:"weight"`
				}
				if err := unmarshalItem(raw, itemShape, &body); err != nil {
					return DominanceItem[int]{}, err
				}
				w, err := itemWeight(body.Weight, itemShape)
				if err != nil {
					return DominanceItem[int]{}, err
				}
				return DominanceItem[int]{X: body.X, Y: body.Y, Z: body.Z, Weight: w}, nil
			},
			label: func(it DominanceItem[int]) string {
				return fmt.Sprintf("(%.3f, %.3f, %.3f)", it.X, it.Y, it.Z)
			},
			fresh: func(g *wrand.RNG, w float64) DominanceItem[int] {
				return DominanceItem[int]{X: g.Float64() * coordScale, Y: g.Float64() * coordScale, Z: g.Float64() * coordScale, Weight: w}
			},
			invalid: DominanceItem[int]{X: math.NaN(), Weight: 0.5},
		}
	}
	mkProblem := func(snap.Header) (problem[dominance.Pt3, dominance.Pt3, DominanceItem[int]], error) {
		return dominanceProblem[int](), nil
	}
	return ProblemSpec{
		Name:        "dominance",
		QueryShape:  "[x, y, z] (dominance corner)",
		ItemShape:   itemShape,
		WireQueries: wireQueries(genQ, func(q dominance.Pt3) any { return [3]float64{q.X, q.Y, q.Z} }),
		Build: func(n int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewDominanceIndex(mk(n, seed), opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.eng, 1), nil
		},
		BuildSharded: func(n, shards int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewShardedDominanceIndex(mk(n, seed), shards, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.Sharded, shards), nil
		},
		Restore: func(dir string, opts ...Option) (Served, error) {
			eng, nsh, err := restoreServedEngine(mkProblem, dir, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, nsh), nil
		},
		RestoreShard: func(dir string, shard int, opts ...Option) (Served, error) {
			eng, err := restoreShardEngine(mkProblem, dir, shard, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, 1), nil
		},
		Reshard: func(srcDir, dstDir string, shards int) error {
			return reshardSnapshot(mkProblem, srcDir, dstDir, shards)
		},
		BuildInvalid: func(opts ...Option) error {
			items := mk(4, 1)
			items = append(items, DominanceItem[int]{X: math.NaN(), Weight: 0.5})
			_, err := NewDominanceIndex(items, opts...)
			return err
		},
	}
}

func enclosureSpec() ProblemSpec {
	mk := func(n int, seed uint64) []RectItem[int] {
		g := wrand.New(seed)
		ws := g.UniqueFloats(n, 1e6)
		items := make([]RectItem[int], n)
		for i := range items {
			x, y := g.Float64()*coordScale, g.Float64()*coordScale
			items[i] = RectItem[int]{
				X1: x, X2: x + g.ExpFloat64()*10, Y1: y, Y2: y + g.ExpFloat64()*10,
				Weight: ws[i], Data: i,
			}
		}
		return items
	}
	genQ := func(g *wrand.RNG) enclosure.Pt2 {
		return enclosure.Pt2{X: g.Float64() * coordScale, Y: g.Float64() * coordScale}
	}
	const itemShape = `{"x1": x1, "x2": x2, "y1": y1, "y2": y2, "weight": w}`
	adapt := func(eng servedEngine[enclosure.Pt2, RectItem[int]], nshards int) Served {
		return &served[enclosure.Pt2, enclosure.Rect, RectItem[int]]{
			p: enclosureProblem[int](), eng: eng, nshards: nshards,
			gen: genQ,
			decode: func(raw json.RawMessage) (enclosure.Pt2, error) {
				xs, err := decodeFloats(raw, 2, "[x, y]")
				if err != nil {
					return enclosure.Pt2{}, err
				}
				return enclosure.Pt2{X: xs[0], Y: xs[1]}, nil
			},
			decItem: func(raw json.RawMessage) (RectItem[int], error) {
				var body struct {
					X1     float64  `json:"x1"`
					X2     float64  `json:"x2"`
					Y1     float64  `json:"y1"`
					Y2     float64  `json:"y2"`
					Weight *float64 `json:"weight"`
				}
				if err := unmarshalItem(raw, itemShape, &body); err != nil {
					return RectItem[int]{}, err
				}
				w, err := itemWeight(body.Weight, itemShape)
				if err != nil {
					return RectItem[int]{}, err
				}
				return RectItem[int]{X1: body.X1, X2: body.X2, Y1: body.Y1, Y2: body.Y2, Weight: w}, nil
			},
			label: func(it RectItem[int]) string {
				return fmt.Sprintf("[%.3f, %.3f]×[%.3f, %.3f]", it.X1, it.X2, it.Y1, it.Y2)
			},
			fresh: func(g *wrand.RNG, w float64) RectItem[int] {
				x, y := g.Float64()*coordScale, g.Float64()*coordScale
				return RectItem[int]{X1: x, X2: x + 1, Y1: y, Y2: y + 1, Weight: w}
			},
			invalid: RectItem[int]{X1: 2, X2: 1, Y1: 0, Y2: 1, Weight: 0.5},
		}
	}
	mkProblem := func(snap.Header) (problem[enclosure.Pt2, enclosure.Rect, RectItem[int]], error) {
		return enclosureProblem[int](), nil
	}
	return ProblemSpec{
		Name:        "enclosure",
		QueryShape:  "[x, y] (query point)",
		ItemShape:   itemShape,
		WireQueries: wireQueries(genQ, func(q enclosure.Pt2) any { return [2]float64{q.X, q.Y} }),
		Build: func(n int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewEnclosureIndex(mk(n, seed), opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.eng, 1), nil
		},
		BuildSharded: func(n, shards int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewShardedEnclosureIndex(mk(n, seed), shards, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.Sharded, shards), nil
		},
		Restore: func(dir string, opts ...Option) (Served, error) {
			eng, nsh, err := restoreServedEngine(mkProblem, dir, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, nsh), nil
		},
		RestoreShard: func(dir string, shard int, opts ...Option) (Served, error) {
			eng, err := restoreShardEngine(mkProblem, dir, shard, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, 1), nil
		},
		Reshard: func(srcDir, dstDir string, shards int) error {
			return reshardSnapshot(mkProblem, srcDir, dstDir, shards)
		},
		BuildInvalid: func(opts ...Option) error {
			items := mk(4, 1)
			items = append(items, RectItem[int]{X1: 2, X2: 1, Y1: 0, Y2: 1, Weight: 0.5})
			_, err := NewEnclosureIndex(items, opts...)
			return err
		},
	}
}

func halfplaneSpec() ProblemSpec {
	mk := func(n int, seed uint64) []PointItem2[int] {
		g := wrand.New(seed)
		ws := g.UniqueFloats(n, 1e6)
		items := make([]PointItem2[int], n)
		for i := range items {
			items[i] = PointItem2[int]{X: g.Float64() * coordScale, Y: g.Float64() * coordScale, Weight: ws[i], Data: i}
		}
		return items
	}
	// A boundary through a uniform point with a normal direction:
	// roughly half the items match.
	genQ := func(g *wrand.RNG) halfspace.Halfplane {
		a, b := g.NormFloat64(), g.NormFloat64()
		px, py := g.Float64()*coordScale, g.Float64()*coordScale
		return halfspace.Halfplane{A: a, B: b, C: a*px + b*py}
	}
	const itemShape = `{"x": x, "y": y, "weight": w}`
	adapt := func(eng servedEngine[halfspace.Halfplane, PointItem2[int]], nshards int) Served {
		return &served[halfspace.Halfplane, halfspace.Pt2, PointItem2[int]]{
			p: halfplaneProblem[int](), eng: eng, nshards: nshards,
			gen: genQ,
			decode: func(raw json.RawMessage) (halfspace.Halfplane, error) {
				xs, err := decodeFloats(raw, 3, "[a, b, c] (halfplane a·x + b·y ≥ c)")
				if err != nil {
					return halfspace.Halfplane{}, err
				}
				return halfspace.Halfplane{A: xs[0], B: xs[1], C: xs[2]}, nil
			},
			decItem: func(raw json.RawMessage) (PointItem2[int], error) {
				var body struct {
					X      float64  `json:"x"`
					Y      float64  `json:"y"`
					Weight *float64 `json:"weight"`
				}
				if err := unmarshalItem(raw, itemShape, &body); err != nil {
					return PointItem2[int]{}, err
				}
				w, err := itemWeight(body.Weight, itemShape)
				if err != nil {
					return PointItem2[int]{}, err
				}
				return PointItem2[int]{X: body.X, Y: body.Y, Weight: w}, nil
			},
			label: func(it PointItem2[int]) string { return fmt.Sprintf("(%.3f, %.3f)", it.X, it.Y) },
			fresh: func(g *wrand.RNG, w float64) PointItem2[int] {
				return PointItem2[int]{X: g.Float64() * coordScale, Y: g.Float64() * coordScale, Weight: w}
			},
			invalid: PointItem2[int]{X: math.NaN(), Weight: 0.5},
		}
	}
	mkProblem := func(snap.Header) (problem[halfspace.Halfplane, halfspace.Pt2, PointItem2[int]], error) {
		return halfplaneProblem[int](), nil
	}
	return ProblemSpec{
		Name:        "halfplane",
		QueryShape:  "[a, b, c] (halfplane a·x + b·y ≥ c)",
		ItemShape:   itemShape,
		WireQueries: wireQueries(genQ, func(q halfspace.Halfplane) any { return [3]float64{q.A, q.B, q.C} }),
		Build: func(n int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewHalfplaneIndex(mk(n, seed), opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.eng, 1), nil
		},
		BuildSharded: func(n, shards int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewShardedHalfplaneIndex(mk(n, seed), shards, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.Sharded, shards), nil
		},
		Restore: func(dir string, opts ...Option) (Served, error) {
			eng, nsh, err := restoreServedEngine(mkProblem, dir, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, nsh), nil
		},
		RestoreShard: func(dir string, shard int, opts ...Option) (Served, error) {
			eng, err := restoreShardEngine(mkProblem, dir, shard, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, 1), nil
		},
		Reshard: func(srcDir, dstDir string, shards int) error {
			return reshardSnapshot(mkProblem, srcDir, dstDir, shards)
		},
		BuildInvalid: func(opts ...Option) error {
			items := mk(4, 1)
			items = append(items, PointItem2[int]{X: math.NaN(), Weight: 0.5})
			_, err := NewHalfplaneIndex(items, opts...)
			return err
		},
	}
}

func halfspaceSpec() ProblemSpec {
	const d = 3
	genQ := func(g *wrand.RNG) halfspace.Halfspace {
		a := make([]float64, d)
		c := 0.0
		for i := range a {
			a[i] = g.NormFloat64()
			c += a[i] * g.Float64() * coordScale
		}
		return halfspace.Halfspace{A: a, C: c}
	}
	adapt := func(eng servedEngine[halfspace.Halfspace, PointItemN[int]], nshards int) Served {
		return &served[halfspace.Halfspace, halfspace.PtN, PointItemN[int]]{
			p: halfspaceProblem[int](d), eng: eng, nshards: nshards,
			gen:     genQ,
			decItem: decodePointN,
			decode: func(raw json.RawMessage) (halfspace.Halfspace, error) {
				var body struct {
					A []float64 `json:"a"`
					C float64   `json:"c"`
				}
				if err := json.Unmarshal(raw, &body); err != nil {
					return halfspace.Halfspace{}, fmt.Errorf(`want {"a": [...], "c": c}: %w`, err)
				}
				if len(body.A) != d {
					return halfspace.Halfspace{}, fmt.Errorf("want a %d-dimensional normal a", d)
				}
				return halfspace.Halfspace{A: body.A, C: body.C}, nil
			},
			label: func(it PointItemN[int]) string { return fmtCoords(it.Coords) },
			fresh: func(g *wrand.RNG, w float64) PointItemN[int] {
				return PointItemN[int]{Coords: genCoords(g, d), Weight: w}
			},
			invalid: PointItemN[int]{Coords: []float64{1, 2}, Weight: 0.5}, // wrong dimension
		}
	}
	mkProblem := func(h snap.Header) (problem[halfspace.Halfspace, halfspace.PtN, PointItemN[int]], error) {
		if int(h.Dim) != d {
			return problem[halfspace.Halfspace, halfspace.PtN, PointItemN[int]]{}, fmt.Errorf("topk: snapshot is %d-dimensional, the registry serves halfspace in dimension %d", h.Dim, d)
		}
		return halfspaceProblem[int](d), nil
	}
	return ProblemSpec{
		Name:       "halfspace",
		Dim:        d,
		QueryShape: `{"a": [a1, a2, a3], "c": c} (halfspace a·x ≥ c)`,
		ItemShape:  pointNItemShape,
		WireQueries: wireQueries(genQ, func(q halfspace.Halfspace) any {
			return map[string]any{"a": q.A, "c": q.C}
		}),
		Build: func(n int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewHalfspaceIndex(genPointsN(n, d, seed), d, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.eng, 1), nil
		},
		BuildSharded: func(n, shards int, seed uint64, opts ...Option) (Served, error) {
			ix, err := NewShardedHalfspaceIndex(genPointsN(n, d, seed), d, shards, opts...)
			if err != nil {
				return nil, err
			}
			return adapt(ix.Sharded, shards), nil
		},
		Restore: func(dir string, opts ...Option) (Served, error) {
			eng, nsh, err := restoreServedEngine(mkProblem, dir, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, nsh), nil
		},
		RestoreShard: func(dir string, shard int, opts ...Option) (Served, error) {
			eng, err := restoreShardEngine(mkProblem, dir, shard, opts)
			if err != nil {
				return nil, err
			}
			return adapt(eng, 1), nil
		},
		Reshard: func(srcDir, dstDir string, shards int) error {
			return reshardSnapshot(mkProblem, srcDir, dstDir, shards)
		},
		BuildInvalid: func(opts ...Option) error {
			items := genPointsN(4, d, 1)
			items = append(items, PointItemN[int]{Coords: []float64{1, 2}, Weight: 0.5})
			_, err := NewHalfspaceIndex(items, d, opts...)
			return err
		},
	}
}
