package topk

import (
	"encoding/json"
	"io"
)

// This file exports query phase traces in the Chrome trace-event JSON
// format, so span trees captured by WithTracing can be opened in
// chrome://tracing or Perfetto. The exported timeline is *virtual*: the
// EM model has no wall clock inside a query, so one simulated I/O is
// rendered as one microsecond. Span widths therefore compare I/O cost,
// not elapsed time — which is exactly the quantity the paper's bounds
// are stated in.

// NamedTrace is one query's span tree with a display name; the Events
// slice is a BatchResult.Trace (ordered post-order, as recorded).
type NamedTrace struct {
	Name   string
	Events []TraceEvent
}

// chromeEvent is one row of the trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts,omitempty"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// traceNode is one reconstructed span with its children.
type traceNode struct {
	ev   TraceEvent
	kids []*traceNode
	dur  int64
}

// buildForest rebuilds the span tree from the post-order event stream:
// an event at depth d closes after its children, so the nodes currently
// accumulated at depth d+1 are exactly its subtree roots.
func buildForest(events []TraceEvent) []*traceNode {
	var stacks [][]*traceNode
	at := func(d int) []*traceNode {
		if d >= len(stacks) {
			return nil
		}
		return stacks[d]
	}
	for _, ev := range events {
		for len(stacks) <= ev.Depth+1 {
			stacks = append(stacks, nil)
		}
		n := &traceNode{ev: ev, kids: at(ev.Depth + 1)}
		stacks[ev.Depth+1] = nil
		stacks[ev.Depth] = append(stacks[ev.Depth], n)
	}
	return at(0)
}

// size assigns each span its rendered duration: its own I/O cost, or the
// sum of its children when deeper spans account for more (children are
// included in the parent's deltas, so this only happens via the 1µs
// minimum that keeps zero-cost spans visible).
func (n *traceNode) size() int64 {
	var kids int64
	for _, k := range n.kids {
		kids += k.size()
	}
	n.dur = n.ev.IOs()
	if kids > n.dur {
		n.dur = kids
	}
	if n.dur < 1 {
		n.dur = 1
	}
	return n.dur
}

// emit renders the span and its subtree as complete ("X") events,
// children laid out sequentially from the parent's start.
func (n *traceNode) emit(out *[]chromeEvent, ts int64, tid int) {
	args := map[string]any{
		"reads": n.ev.Reads, "writes": n.ev.Writes, "hits": n.ev.Hits,
	}
	if n.ev.Level >= 0 {
		args["level"] = n.ev.Level
	}
	if n.ev.Arg != 0 {
		args["arg"] = n.ev.Arg
	}
	*out = append(*out, chromeEvent{
		Name: n.ev.Phase, Ph: "X", TS: ts, Dur: n.dur, PID: 1, TID: tid, Args: args,
	})
	for _, k := range n.kids {
		k.emit(out, ts, tid)
		ts += k.dur
	}
}

// WriteChromeTrace renders the given traces as one Chrome trace-event
// JSON document. Each trace becomes its own thread lane (named after
// NamedTrace.Name) starting at virtual time zero, so queries are
// compared side by side; within a lane, nested spans render as nested
// slices whose width is their simulated I/O cost at 1 I/O = 1µs.
func WriteChromeTrace(w io.Writer, traces []NamedTrace) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i, tr := range traces {
		tid := i + 1
		name := tr.Name
		if name == "" {
			name = "query"
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
		var ts int64
		for _, root := range buildForest(tr.Events) {
			root.size()
			root.emit(&file.TraceEvents, ts, tid)
			ts += root.dur
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
