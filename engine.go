package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/dynamic"
	"topk/internal/em"
)

// This file is the problem-descriptor engine behind every index facade.
// The paper's reductions are black-box generic in the underlying problem
// (Theorems 1–2): everything an index needs beyond the reduction itself is
// a small bundle of problem-specific ingredients. A problem value captures
// that bundle once, and the generic engine implements construction,
// queries, updates, batching, stats, and metrics exactly once on top of
// it. The eight exported index types are thin typed wrappers around an
// engine; adding a ninth problem is a descriptor plus such a wrapper (see
// registry.go, whose consumers pick new problems up automatically).

// problem describes one top-k problem to the engine: Q is the predicate
// (query) type, V the value type the internal black boxes index, and It
// the exported item type carried through the facade (geometry + weight +
// user payload).
type problem[Q, V, It any] struct {
	// name labels the problem in metrics, slow-log entries, and the
	// registry ("interval", "range", …).
	name string
	// match decides whether a value satisfies a predicate — the paper's
	// q(D) membership test, used by the reductions' brute-force fallbacks.
	match core.MatchFunc[Q, V]
	// lambda is the problem's shallowness constant λ for Theorem 1's
	// core-set sizing (Lemma 2).
	lambda float64
	// pri and max build the prioritized-reporting and max-reporting black
	// boxes the reductions consume (the paper's P and M structures).
	pri func(tr *em.Tracker) core.PrioritizedFactory[Q, V]
	max func(tr *em.Tracker) core.MaxFactory[Q, V]
	// dynPri/dynMax, when non-nil, provide updatable black boxes: the
	// Expected reduction is then built in its native dynamic form
	// (Theorem 2's update path) so the index is updatable even without
	// WithUpdates. Set for interval stabbing and 1D range reporting.
	dynPri func(tr *em.Tracker) core.DynamicPrioritizedFactory[Q, V]
	dynMax func(tr *em.Tracker) core.DynamicMaxFactory[Q, V]
	// validate checks one item's geometry (NaN coordinates, malformed
	// extents, dimension mismatches). The engine routes construction and
	// Insert through it, so both paths accept exactly the same items;
	// weight checks (finite, distinct) are the engine's own.
	validate func(It) error
	// weight extracts the item's weight, the unique key of the
	// weight→item map backing payload lookups and Delete.
	weight func(It) float64
	// toCore converts an item to the core representation handed to the
	// black boxes (copying or lifting geometry as needed).
	toCore func(It) core.Item[V]
	// fromCore rebuilds an exported item from a core item returned by a
	// query: geometry and weight come from the core item, the payload
	// from stored (the engine's weight-keyed copy of the original).
	fromCore func(ci core.Item[V], stored It) It
	// describe renders a query for the slow-query log. Only invoked when
	// an entry actually fires.
	describe func(q Q, k int) string
	// dim is the ambient dimension of dimension-parameterized problems
	// (ortho, circular, halfspace), recorded in snapshot headers so a
	// restore can rebuild the descriptor; 0 for fixed-dimension problems.
	dim int
}

// engine is the problem-independent index: one instance per facade value.
// It owns the EM tracker, the reduction-built top-k structure, the
// prioritized accessor, observability state, and the weight→item map.
type engine[Q, V, It any] struct {
	p       problem[Q, V, It]
	opts    Options
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[Q, V]
	dyn     updatableTopK[Q, V] // non-nil when updatable
	pri     core.Prioritized[Q, V]
	src     []It // retained for Items() on static reductions
	data    map[float64]It
	n       int
}

// updatableTopK is the common surface of the two dynamic engines an index
// can sit on: Theorem 2's native dynamic reduction (*core.Expected) and
// the dynamization overlay (*dynamic.Overlay).
type updatableTopK[Q, V any] interface {
	core.TopK[Q, V]
	Insert(core.Item[V]) error
	DeleteWeight(w float64) bool
	Items() []core.Item[V]
}

// batchTopK is the optional bulk-update surface of a dynamic engine.
// The overlay implements it — one sorted-merge flush per batch instead
// of one tail pass per item, and one maintenance sweep per delete
// batch. The native Theorem 2 structure does not; its per-item path is
// already its native cost, so the engine falls back to a loop there.
type batchTopK[V any] interface {
	InsertBatch([]core.Item[V]) error
	DeleteBatch([]float64) int
}

// validateItem runs the problem's geometry checks plus the engine's
// weight-finiteness check — the single validation gate shared by
// construction and Insert (duplicate weights are checked against the live
// map by each caller).
func (e *engine[Q, V, It]) validateItem(it It) error {
	if err := e.p.validate(it); err != nil {
		return err
	}
	if w := e.p.weight(it); math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("topk: non-finite weight %v", w)
	}
	return nil
}

// newEngine validates items, builds the reduction selected by opts, and
// wires observability. Construction is deterministic given the same
// items, options, and seed.
func newEngine[Q, V, It any](p problem[Q, V, It], items []It, opts []Option) (*engine[Q, V, It], error) {
	o := applyOptions(opts)
	tracker, err := o.newTracker()
	if err != nil {
		return nil, err
	}
	e := &engine[Q, V, It]{p: p, opts: o, tracker: tracker}
	if err := e.init(items); err != nil {
		tracker.Close()
		return nil, err
	}
	return e, nil
}

// init validates items and builds the reduction on the engine's tracker —
// the construction body shared by newEngine and the snapshot restore path
// (which wraps it in em.Tracker.RestoreAccounting).
func (e *engine[Q, V, It]) init(items []It) error {
	p, o, tracker := e.p, e.opts, e.tracker
	e.n = len(items)

	cores := make([]core.Item[V], len(items))
	e.data = make(map[float64]It, len(items))
	for i, it := range items {
		if err := e.validateItem(it); err != nil {
			return fmt.Errorf("item %d: %w", i, err)
		}
		w := p.weight(it)
		if _, dup := e.data[w]; dup {
			return fmt.Errorf("topk: duplicate weight %v", w)
		}
		e.data[w] = it
		cores[i] = p.toCore(it)
	}

	// The Expected reduction is built in its dynamic form when the problem
	// ships dynamic black boxes (Theorem 2's native update path); any
	// other build becomes updatable through the logarithmic-method overlay
	// when WithUpdates is set, and is static otherwise.
	switch {
	case o.reduction == Expected && p.dynPri != nil:
		dyn, err := core.NewDynamicExpected(cores, p.match, p.dynPri(tracker), p.dynMax(tracker),
			core.ExpectedOptions{B: o.blockSize, Seed: o.seed, Tracker: tracker})
		if err != nil {
			return err
		}
		e.topk, e.dyn = dyn, dyn
	case o.updates:
		dyn, err := newOverlay(cores, p.match, p.pri(tracker), p.max(tracker), p.lambda, o, tracker)
		if err != nil {
			return err
		}
		e.topk, e.dyn = dyn, dyn
	default:
		t, err := buildTopK(cores, p.match, p.pri(tracker), p.max(tracker), p.lambda, o, tracker)
		if err != nil {
			return err
		}
		e.topk = t
		e.src = append([]It(nil), items...)
	}

	// Direct prioritized access shares the reduction's own black box on D
	// rather than building a duplicate.
	e.pri = core.PrioritizedOf(e.topk)

	// Observability hooks attach after construction so build-time I/Os
	// don't pollute query metrics.
	e.ob = newIndexObs(p.name, o, tracker)
	e.ob.observeShape(e.n, e.dyn)
	return nil
}

// Len returns the number of live items.
func (e *engine[Q, V, It]) Len() int { return e.n }

// wrap rebuilds the exported item for a core query result.
func (e *engine[Q, V, It]) wrap(ci core.Item[V]) It {
	return e.p.fromCore(ci, e.data[ci.Weight])
}

// TopK returns the k heaviest items satisfying q, heaviest first.
func (e *engine[Q, V, It]) TopK(q Q, k int) []It {
	t0, before := e.ob.start()
	res := e.topk.TopK(q, k)
	e.ob.done(t0, before, func() string { return e.p.describe(q, k) })
	out := make([]It, len(res))
	for i, ci := range res {
		out[i] = e.wrap(ci)
	}
	return out
}

// ReportAbove streams every item satisfying q with weight ≥ tau (in
// unspecified order); return false from visit to stop early. This is the
// underlying prioritized query.
func (e *engine[Q, V, It]) ReportAbove(q Q, tau float64, visit func(It) bool) {
	e.pri.ReportAbove(q, tau, func(ci core.Item[V]) bool {
		return visit(e.wrap(ci))
	})
}

// Max returns the heaviest item satisfying q (a top-1 query).
func (e *engine[Q, V, It]) Max(q Q) (It, bool) {
	res := e.topk.TopK(q, 1)
	if len(res) == 0 {
		var zero It
		return zero, false
	}
	return e.wrap(res[0]), true
}

// Insert adds an item to an updatable engine, after running it through
// the same validation gate as construction.
func (e *engine[Q, V, It]) Insert(it It) error {
	if e.dyn == nil {
		return errStatic(e.opts.reduction)
	}
	if err := e.validateItem(it); err != nil {
		return err
	}
	w := e.p.weight(it)
	if _, dup := e.data[w]; dup {
		return fmt.Errorf("topk: duplicate weight %v", w)
	}
	before := e.tracker.Stats()
	if err := e.dyn.Insert(e.p.toCore(it)); err != nil {
		return err
	}
	e.ob.observeUpdate(e.tracker.Stats().Sub(before))
	e.data[w] = it
	e.n++
	e.ob.observeShape(e.n, e.dyn)
	return nil
}

// InsertBatch adds a batch of items to an updatable engine in one
// maintenance round. The whole batch is validated first — geometry,
// weight finiteness, uniqueness against the live set and within the
// batch — and a rejected batch inserts nothing. On the overlay, the
// accepted batch is bulk-loaded with one sorted-merge flush instead of
// len(items) individual tail passes.
func (e *engine[Q, V, It]) InsertBatch(items []It) error {
	if e.dyn == nil {
		return errStatic(e.opts.reduction)
	}
	cores := make([]core.Item[V], len(items))
	seen := make(map[float64]struct{}, len(items))
	for i, it := range items {
		if err := e.validateItem(it); err != nil {
			return err
		}
		w := e.p.weight(it)
		if _, dup := e.data[w]; dup {
			return fmt.Errorf("topk: duplicate weight %v", w)
		}
		if _, dup := seen[w]; dup {
			return fmt.Errorf("topk: duplicate weight %v", w)
		}
		seen[w] = struct{}{}
		cores[i] = e.p.toCore(it)
	}
	if len(items) == 0 {
		return nil
	}
	before := e.tracker.Stats()
	if b, ok := e.dyn.(batchTopK[V]); ok {
		if err := b.InsertBatch(cores); err != nil {
			return err
		}
	} else {
		for _, ci := range cores {
			if err := e.dyn.Insert(ci); err != nil {
				return err
			}
		}
	}
	e.ob.observeUpdate(e.tracker.Stats().Sub(before))
	for _, it := range items {
		e.data[e.p.weight(it)] = it
	}
	e.n += len(items)
	e.ob.observeShape(e.n, e.dyn)
	return nil
}

// Delete removes the item with the given weight, reporting whether it was
// present.
func (e *engine[Q, V, It]) Delete(weight float64) (bool, error) {
	if e.dyn == nil {
		return false, errStatic(e.opts.reduction)
	}
	before := e.tracker.Stats()
	if !e.dyn.DeleteWeight(weight) {
		return false, nil
	}
	e.ob.observeUpdate(e.tracker.Stats().Sub(before))
	delete(e.data, weight)
	e.n--
	e.ob.observeShape(e.n, e.dyn)
	return true, nil
}

// DeleteBatch removes the items with the given weights, returning how
// many were present. Weights absent from the index (or repeated in the
// batch) count nothing and delete nothing. On the overlay, structural
// maintenance — dead-level compaction — runs once after the whole
// batch instead of after every delete.
func (e *engine[Q, V, It]) DeleteBatch(weights []float64) (int, error) {
	if e.dyn == nil {
		return 0, errStatic(e.opts.reduction)
	}
	before := e.tracker.Stats()
	found := 0
	if b, ok := e.dyn.(batchTopK[V]); ok {
		found = b.DeleteBatch(weights)
	} else {
		for _, w := range weights {
			if e.dyn.DeleteWeight(w) {
				found++
			}
		}
	}
	if found == 0 {
		return 0, nil
	}
	e.ob.observeUpdate(e.tracker.Stats().Sub(before))
	for _, w := range weights {
		if _, ok := e.data[w]; ok {
			delete(e.data, w)
			e.n--
		}
	}
	e.ob.observeShape(e.n, e.dyn)
	return found, nil
}

// Items returns a snapshot of the live items in unspecified order — the
// full state needed to persist and rebuild the index.
func (e *engine[Q, V, It]) Items() []It {
	if e.dyn == nil {
		return append([]It(nil), e.src...)
	}
	live := e.dyn.Items()
	out := make([]It, 0, len(live))
	for _, ci := range live {
		out = append(out, e.wrap(ci))
	}
	return out
}

// Stats returns the engine's simulated I/O counters and space usage.
func (e *engine[Q, V, It]) Stats() Stats { return statsOf(e.tracker, e.opts.reduction) }

// ResetStats zeroes the I/O counters (space is preserved).
func (e *engine[Q, V, It]) ResetStats() { e.tracker.ResetCounters() }

// StoreStats returns the physical operation counters of the engine's
// disk store (all zero without WithDiskStore).
func (e *engine[Q, V, It]) StoreStats() StoreStats { return publicStoreStats(e.tracker.StoreStats()) }

// CacheStats returns the EM frame cache's policy decision counters.
func (e *engine[Q, V, It]) CacheStats() CacheStats { return publicCacheStats(e.tracker.CacheStats()) }

// StoreErr returns the first disk-store failure observed, nil if none.
func (e *engine[Q, V, It]) StoreErr() error { return e.tracker.StoreErr() }

// Close releases the engine's disk store, if any; idempotent.
func (e *engine[Q, V, It]) Close() error { return e.tracker.Close() }

// QueryBatch answers one top-k query per element of qs on a bounded pool
// of `parallelism` worker goroutines, each query inside its own tracker
// view (see batch.go for the full contract).
func (e *engine[Q, V, It]) QueryBatch(qs []Q, k int, parallelism int) []BatchResult[It] {
	return e.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract: each
// query runs with ctx's I/O budget and deadline armed on its view, and a
// query that exceeds either carries a typed Outcome/Err (plus the Max
// fallback when ctx.DegradeToMax is set) instead of panicking or
// over-serving. A zero ctx makes it exactly QueryBatch.
func (e *engine[Q, V, It]) QueryBatchCtx(ctx QueryCtx, qs []Q, k int, parallelism int) []BatchResult[It] {
	return runBatch(e.tracker, e.ob, qs, parallelism, batchSpec[Q, It]{
		ctx: ctx,
		k:   k,
		one: func(q Q) []It { return e.TopK(q, k) },
		max: func(q Q) []It {
			// Raw top-1 on the shared tracker path: bypasses e.Max's
			// single-query observation hooks so the fallback doesn't
			// count as an extra query in the metrics.
			res := e.topk.TopK(q, 1)
			if len(res) == 0 {
				return nil
			}
			return []It{e.wrap(res[0])}
		},
	})
}

// WriteMetrics renders the engine's metrics registry in Prometheus text
// exposition format. It errors unless built WithMetrics.
func (e *engine[Q, V, It]) WriteMetrics(w io.Writer) error { return e.ob.writeMetrics(w) }

// buildTopK wires factories into the selected reduction.
func buildTopK[Q, V any](
	items []core.Item[V],
	match core.MatchFunc[Q, V],
	pf core.PrioritizedFactory[Q, V],
	mf core.MaxFactory[Q, V],
	lambda float64,
	o Options,
	tracker *em.Tracker,
) (core.TopK[Q, V], error) {
	switch o.reduction {
	case WorstCase:
		return core.NewWorstCase(items, match, pf, core.WorstCaseOptions{
			B: o.blockSize, Lambda: lambda, Seed: o.seed, Tracker: tracker,
		})
	case Expected:
		return core.NewExpected(items, match, pf, mf, core.ExpectedOptions{
			B: o.blockSize, Seed: o.seed, Tracker: tracker,
		})
	case BinarySearch:
		return core.NewBaseline(items, pf, tracker)
	case FullScan:
		return core.NewScan(items, match, tracker), nil
	}
	return nil, fmt.Errorf("topk: unknown reduction %v", o.reduction)
}

// newOverlay dynamizes a static reduction with the internal/dynamic
// overlay under the options' maintenance policy: every substructure is
// built by the ordinary reduction constructor for the selected
// reduction, sharing the index tracker so flush, merge, and rebuild
// I/Os show up in Stats.
func newOverlay[Q, V any](
	items []core.Item[V],
	match core.MatchFunc[Q, V],
	pf core.PrioritizedFactory[Q, V],
	mf core.MaxFactory[Q, V],
	lambda float64,
	o Options,
	tracker *em.Tracker,
) (*dynamic.Overlay[Q, V], error) {
	return dynamic.New(items, match, func(sub []core.Item[V]) (core.TopK[Q, V], error) {
		return buildTopK(sub, match, pf, mf, lambda, o, tracker)
	}, dynamic.Options{Tracker: tracker, TailCap: o.blockSize, Policy: o.maintPol.dynPolicy()})
}

// errStatic is the shared "index is static" error for Insert/Delete on an
// index built without an update path.
func errStatic(r Reduction) error {
	return fmt.Errorf("topk: %v index is static; build with WithUpdates() for updates", r)
}

// facade embeds the engine behind every public index type and provides
// the exported methods whose signatures never mention the query type; the
// typed wrappers add the query-shaped surface (TopK, Max, ReportAbove,
// QueryBatch) on top of it. Method promotion keeps each index's exported
// method set exactly what it was when the methods lived on the index.
type facade[Q, V, It any] struct {
	eng *engine[Q, V, It]
}

func newFacade[Q, V, It any](e *engine[Q, V, It]) facade[Q, V, It] {
	return facade[Q, V, It]{eng: e}
}

// Len returns the number of live indexed items.
func (f *facade[Q, V, It]) Len() int { return f.eng.Len() }

// Insert adds an item, applying exactly the validation the constructor
// applies. Natively dynamic builds (interval and range under the Expected
// reduction) always accept updates; every other build is updatable only
// through the logarithmic overlay (WithUpdates) and returns an error
// otherwise.
func (f *facade[Q, V, It]) Insert(item It) error { return f.eng.Insert(item) }

// InsertBatch adds a batch of items in one maintenance round,
// validating the whole batch — geometry, finite weights, uniqueness
// against the live set and within the batch — before inserting
// anything: a rejected batch leaves the index unchanged. On an
// overlay-dynamized build the batch is bulk-loaded with one
// sorted-merge flush, so inserting m items costs strictly less than m
// single Inserts. See Insert for which builds are updatable.
func (f *facade[Q, V, It]) InsertBatch(items []It) error { return f.eng.InsertBatch(items) }

// Delete removes the item with the given weight, reporting whether it was
// present. See Insert for which builds are updatable.
func (f *facade[Q, V, It]) Delete(weight float64) (bool, error) { return f.eng.Delete(weight) }

// DeleteBatch removes the items with the given weights, returning how
// many were present; absent or batch-repeated weights are skipped. On
// an overlay-dynamized build structural maintenance runs once after
// the whole batch. See Insert for which builds are updatable.
func (f *facade[Q, V, It]) DeleteBatch(weights []float64) (int, error) {
	return f.eng.DeleteBatch(weights)
}

// Stats returns the index's simulated I/O counters and space usage.
func (f *facade[Q, V, It]) Stats() Stats { return f.eng.Stats() }

// ResetStats zeroes the I/O counters (space is preserved).
func (f *facade[Q, V, It]) ResetStats() { f.eng.ResetStats() }

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (f *facade[Q, V, It]) WriteMetrics(w io.Writer) error { return f.eng.WriteMetrics(w) }

// StoreStats returns the physical operation counters of the index's
// disk store. All zero unless the index was built WithDiskStore.
func (f *facade[Q, V, It]) StoreStats() StoreStats { return f.eng.StoreStats() }

// CacheStats returns the EM frame cache's policy decision counters
// (evictions, TinyLFU admission rejections, sketch aging resets).
func (f *facade[Q, V, It]) CacheStats() CacheStats { return f.eng.CacheStats() }

// StoreErr returns the first disk-store failure observed by this index,
// nil if none (and always nil without WithDiskStore). Store failures
// never affect answers — the in-memory structures are authoritative —
// so this is the health signal to poll when running on a disk store.
func (f *facade[Q, V, It]) StoreErr() error { return f.eng.StoreErr() }

// Close releases the index's disk store, if any. Indexes built without
// WithDiskStore need no Close (it is a no-op); with one, Close flushes
// and closes the backing file. Queries keep answering correctly after
// Close, but further physical traffic is reported through StoreErr.
// Close is idempotent.
func (f *facade[Q, V, It]) Close() error { return f.eng.Close() }

// Snapshot writes the index's versioned snapshot stream to w (see
// DESIGN.md §12 for the format). The stream captures the index's full
// logical state — source items, dynamization-overlay levels, tombstones,
// tail, and configuration — and the matching per-problem Restore
// function (RestoreIntervalIndex, …) rebuilds an index that answers
// every query identically, at a restore cost of O(size/B) sequential
// I/Os instead of a rebuild. Snapshot charges that same O(size/B) write
// cost to the index's tracker. It may run concurrently with queries but
// not with Insert or Delete.
func (f *facade[Q, V, It]) Snapshot(w io.Writer) error { return f.eng.Snapshot(w) }
