package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
	"topk/internal/snap"
)

// PointItem2 is one weighted point in the plane with a payload.
type PointItem2[T any] struct {
	X, Y   float64
	Weight float64
	Data   T
}

// halfplaneProblem is the engine descriptor for top-k 2D halfspace
// reporting.
func halfplaneProblem[T any]() problem[halfspace.Halfplane, halfspace.Pt2, PointItem2[T]] {
	return problem[halfspace.Halfplane, halfspace.Pt2, PointItem2[T]]{
		name:   "halfplane",
		match:  halfspace.Match,
		lambda: halfspace.Lambda,
		pri: func(tr *em.Tracker) core.PrioritizedFactory[halfspace.Halfplane, halfspace.Pt2] {
			return halfspace.NewPrioritizedFactory(tr)
		},
		max: func(tr *em.Tracker) core.MaxFactory[halfspace.Halfplane, halfspace.Pt2] {
			return halfspace.NewMaxFactory(tr)
		},
		validate: func(it PointItem2[T]) error {
			if math.IsNaN(it.X) || math.IsNaN(it.Y) {
				return fmt.Errorf("topk: NaN coordinate in (%v, %v)", it.X, it.Y)
			}
			return nil
		},
		weight: func(it PointItem2[T]) float64 { return it.Weight },
		toCore: func(it PointItem2[T]) core.Item[halfspace.Pt2] {
			return core.Item[halfspace.Pt2]{Value: halfspace.Pt2{X: it.X, Y: it.Y}, Weight: it.Weight}
		},
		fromCore: func(ci core.Item[halfspace.Pt2], st PointItem2[T]) PointItem2[T] {
			st.X, st.Y, st.Weight = ci.Value.X, ci.Value.Y, ci.Weight
			return st
		},
		describe: func(q halfspace.Halfplane, k int) string {
			return fmt.Sprintf("halfplane %v·x+%v·y≥%v k=%d", q.A, q.B, q.C, k)
		},
	}
}

// HalfplaneIndex answers top-k 2D halfspace queries (the paper's
// Theorem 3, d = 2): given a halfplane {a·x + b·y ≥ c}, return the k
// heaviest points inside it.
type HalfplaneIndex[T any] struct {
	facade[halfspace.Halfplane, halfspace.Pt2, PointItem2[T]]
}

// NewHalfplaneIndex builds an index over items (weights distinct). With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewHalfplaneIndex[T any](items []PointItem2[T], opts ...Option) (*HalfplaneIndex[T], error) {
	eng, err := newEngine(halfplaneProblem[T](), items, opts)
	if err != nil {
		return nil, err
	}
	return &HalfplaneIndex[T]{newFacade(eng)}, nil
}

// TopK returns the k heaviest points with a·x + b·y ≥ c, heaviest first.
func (ix *HalfplaneIndex[T]) TopK(a, b, c float64, k int) []PointItem2[T] {
	return ix.eng.TopK(halfspace.Halfplane{A: a, B: b, C: c}, k)
}

// ReportAbove streams every point in the halfplane with weight ≥ tau.
func (ix *HalfplaneIndex[T]) ReportAbove(a, b, c, tau float64, visit func(PointItem2[T]) bool) {
	ix.eng.ReportAbove(halfspace.Halfplane{A: a, B: b, C: c}, tau, visit)
}

// Max returns the heaviest point in the halfplane (a top-1 query).
func (ix *HalfplaneIndex[T]) Max(a, b, c float64) (PointItem2[T], bool) {
	return ix.eng.Max(halfspace.Halfplane{A: a, B: b, C: c})
}

// QueryBatch answers one top-k halfplane query per HalfplaneQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *HalfplaneIndex[T]) QueryBatch(qs []HalfplaneQuery, k int, parallelism int) []BatchResult[PointItem2[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract (see
// IntervalIndex.QueryBatchCtx); a zero ctx is exactly QueryBatch.
func (ix *HalfplaneIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []HalfplaneQuery, k int, parallelism int) []BatchResult[PointItem2[T]] {
	hps := make([]halfspace.Halfplane, len(qs))
	for i, q := range qs {
		hps[i] = halfspace.Halfplane{A: q.A, B: q.B, C: q.C}
	}
	return ix.eng.QueryBatchCtx(ctx, hps, k, parallelism)
}

// PointItemN is one weighted point in ℝ^d with a payload.
type PointItemN[T any] struct {
	Coords []float64
	Weight float64
	Data   T
}

// halfspaceProblem is the engine descriptor for top-k halfspace reporting
// in dimension d.
func halfspaceProblem[T any](d int) problem[halfspace.Halfspace, halfspace.PtN, PointItemN[T]] {
	return problem[halfspace.Halfspace, halfspace.PtN, PointItemN[T]]{
		name:   "halfspace",
		dim:    d,
		match:  halfspace.MatchN,
		lambda: halfspace.LambdaN(d),
		pri: func(tr *em.Tracker) core.PrioritizedFactory[halfspace.Halfspace, halfspace.PtN] {
			return halfspace.NewKDPrioritizedFactory(d, tr)
		},
		max: func(tr *em.Tracker) core.MaxFactory[halfspace.Halfspace, halfspace.PtN] {
			return halfspace.NewKDMaxFactory(d, tr)
		},
		validate: func(it PointItemN[T]) error {
			if len(it.Coords) != d {
				return fmt.Errorf("topk: item has %d coordinates in dimension %d", len(it.Coords), d)
			}
			for _, c := range it.Coords {
				if math.IsNaN(c) {
					return fmt.Errorf("topk: NaN coordinate")
				}
			}
			return nil
		},
		weight: func(it PointItemN[T]) float64 { return it.Weight },
		toCore: func(it PointItemN[T]) core.Item[halfspace.PtN] {
			coords := append([]float64(nil), it.Coords...)
			return core.Item[halfspace.PtN]{Value: halfspace.PtN{C: coords}, Weight: it.Weight}
		},
		fromCore: func(ci core.Item[halfspace.PtN], st PointItemN[T]) PointItemN[T] {
			st.Coords, st.Weight = ci.Value.C, ci.Weight
			return st
		},
		describe: func(q halfspace.Halfspace, k int) string {
			return fmt.Sprintf("halfspace a=%v c=%v k=%d", q.A, q.C, k)
		},
	}
}

// HalfspaceIndex answers top-k halfspace queries in fixed dimension d ≥ 3
// (the paper's Theorem 3, d ≥ 4): given {x : a·x ≥ c}, return the k
// heaviest points inside.
type HalfspaceIndex[T any] struct {
	d int
	facade[halfspace.Halfspace, halfspace.PtN, PointItemN[T]]
}

// NewHalfspaceIndex builds an index over d-dimensional items. With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewHalfspaceIndex[T any](items []PointItemN[T], d int, opts ...Option) (*HalfspaceIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	eng, err := newEngine(halfspaceProblem[T](d), items, opts)
	if err != nil {
		return nil, err
	}
	return &HalfspaceIndex[T]{d: d, facade: newFacade(eng)}, nil
}

// Dim returns the index dimension.
func (ix *HalfspaceIndex[T]) Dim() int { return ix.d }

// TopK returns the k heaviest points with a·x ≥ c, heaviest first.
func (ix *HalfspaceIndex[T]) TopK(a []float64, c float64, k int) []PointItemN[T] {
	return ix.eng.TopK(halfspace.Halfspace{A: a, C: c}, k)
}

// ReportAbove streams every point in the halfspace with weight ≥ tau.
func (ix *HalfspaceIndex[T]) ReportAbove(a []float64, c, tau float64, visit func(PointItemN[T]) bool) {
	ix.eng.ReportAbove(halfspace.Halfspace{A: a, C: c}, tau, visit)
}

// Max returns the heaviest point in the halfspace (a top-1 query).
func (ix *HalfspaceIndex[T]) Max(a []float64, c float64) (PointItemN[T], bool) {
	return ix.eng.Max(halfspace.Halfspace{A: a, C: c})
}

// QueryBatch answers one top-k halfspace query per HalfspaceQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *HalfspaceIndex[T]) QueryBatch(qs []HalfspaceQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract (see
// IntervalIndex.QueryBatchCtx); a zero ctx is exactly QueryBatch.
func (ix *HalfspaceIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []HalfspaceQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	hss := make([]halfspace.Halfspace, len(qs))
	for i, q := range qs {
		hss[i] = halfspace.Halfspace{A: q.A, C: q.C}
	}
	return ix.eng.QueryBatchCtx(ctx, hss, k, parallelism)
}

// RestoreHalfplaneIndex reconstructs a halfplane index from a snapshot
// stream written by Snapshot; see RestoreIntervalIndex for the
// warm-start contract shared by all Restore constructors.
func RestoreHalfplaneIndex[T any](r io.Reader, opts ...Option) (*HalfplaneIndex[T], error) {
	eng, err := restoreEngine(func(snap.Header) (problem[halfspace.Halfplane, halfspace.Pt2, PointItem2[T]], error) {
		return halfplaneProblem[T](), nil
	}, r, opts)
	if err != nil {
		return nil, err
	}
	return &HalfplaneIndex[T]{newFacade(eng)}, nil
}

// RestoreHalfspaceIndex reconstructs a halfspace index from a snapshot
// stream written by Snapshot. The ambient dimension is read from the
// snapshot header; see RestoreIntervalIndex for the warm-start contract.
func RestoreHalfspaceIndex[T any](r io.Reader, opts ...Option) (*HalfspaceIndex[T], error) {
	var d int
	eng, err := restoreEngine(func(h snap.Header) (problem[halfspace.Halfspace, halfspace.PtN, PointItemN[T]], error) {
		if h.Dim < 1 {
			return problem[halfspace.Halfspace, halfspace.PtN, PointItemN[T]]{}, fmt.Errorf("topk: halfspace snapshot has invalid dimension %d", h.Dim)
		}
		d = int(h.Dim)
		return halfspaceProblem[T](d), nil
	}, r, opts)
	if err != nil {
		return nil, err
	}
	return &HalfspaceIndex[T]{d: d, facade: newFacade(eng)}, nil
}
