package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
)

// PointItem2 is one weighted point in the plane with a payload.
type PointItem2[T any] struct {
	X, Y   float64
	Weight float64
	Data   T
}

// HalfplaneIndex answers top-k 2D halfspace queries (the paper's
// Theorem 3, d = 2): given a halfplane {a·x + b·y ≥ c}, return the k
// heaviest points inside it.
type HalfplaneIndex[T any] struct {
	opts    Options
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[halfspace.Halfplane, halfspace.Pt2]
	dyn     updatableTopK[halfspace.Halfplane, halfspace.Pt2] // non-nil when built with WithUpdates
	pri     core.Prioritized[halfspace.Halfplane, halfspace.Pt2]
	data    map[float64]T
	n       int
}

// NewHalfplaneIndex builds an index over items (weights distinct). With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewHalfplaneIndex[T any](items []PointItem2[T], opts ...Option) (*HalfplaneIndex[T], error) {
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[halfspace.Pt2], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		cores[i] = core.Item[halfspace.Pt2]{Value: halfspace.Pt2{X: it.X, Y: it.Y}, Weight: it.Weight}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	ix := &HalfplaneIndex[T]{opts: o, tracker: tracker, data: data, n: len(items)}
	if o.updates {
		dyn, err := newOverlay(cores, halfspace.Match,
			halfspace.NewPrioritizedFactory(tracker),
			halfspace.NewMaxFactory(tracker),
			halfspace.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	} else {
		t, err := buildTopK(cores, halfspace.Match,
			halfspace.NewPrioritizedFactory(tracker),
			halfspace.NewMaxFactory(tracker),
			halfspace.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk = t
	}
	ix.pri = prioritizedOf(ix.topk)
	ix.ob = newIndexObs("halfplane", o, tracker)
	ix.ob.observeShape(ix.n, ix.dyn)
	return ix, nil
}

// Len returns the number of indexed points.
func (ix *HalfplaneIndex[T]) Len() int { return ix.n }

func (ix *HalfplaneIndex[T]) wrap(it core.Item[halfspace.Pt2]) PointItem2[T] {
	return PointItem2[T]{X: it.Value.X, Y: it.Value.Y, Weight: it.Weight, Data: ix.data[it.Weight]}
}

// TopK returns the k heaviest points with a·x + b·y ≥ c, heaviest first.
func (ix *HalfplaneIndex[T]) TopK(a, b, c float64, k int) []PointItem2[T] {
	t0, before := ix.ob.start()
	res := ix.topk.TopK(halfspace.Halfplane{A: a, B: b, C: c}, k)
	ix.ob.done(t0, before, func() string { return fmt.Sprintf("halfplane %v·x+%v·y≥%v k=%d", a, b, c, k) })
	out := make([]PointItem2[T], len(res))
	for i, it := range res {
		out[i] = ix.wrap(it)
	}
	return out
}

// ReportAbove streams every point in the halfplane with weight ≥ tau.
func (ix *HalfplaneIndex[T]) ReportAbove(a, b, c, tau float64, visit func(PointItem2[T]) bool) {
	ix.pri.ReportAbove(halfspace.Halfplane{A: a, B: b, C: c}, tau, func(it core.Item[halfspace.Pt2]) bool {
		return visit(ix.wrap(it))
	})
}

// Max returns the heaviest point in the halfplane (a top-1 query).
func (ix *HalfplaneIndex[T]) Max(a, b, c float64) (PointItem2[T], bool) {
	it, ok := maxOfTopK(ix.topk, halfspace.Halfplane{A: a, B: b, C: c})
	if !ok {
		return PointItem2[T]{}, false
	}
	return ix.wrap(it), true
}

// Insert adds a point. Only indexes built with WithUpdates support
// updates; others return an error.
func (ix *HalfplaneIndex[T]) Insert(item PointItem2[T]) error {
	if ix.dyn == nil {
		return errStatic(ix.opts.reduction)
	}
	if math.IsNaN(item.X) || math.IsNaN(item.Y) {
		return fmt.Errorf("topk: NaN coordinate in (%v, %v)", item.X, item.Y)
	}
	if math.IsNaN(item.Weight) || math.IsInf(item.Weight, 0) {
		return fmt.Errorf("topk: non-finite weight %v", item.Weight)
	}
	if _, dup := ix.data[item.Weight]; dup {
		return fmt.Errorf("topk: duplicate weight %v", item.Weight)
	}
	ci := core.Item[halfspace.Pt2]{Value: halfspace.Pt2{X: item.X, Y: item.Y}, Weight: item.Weight}
	if err := ix.dyn.Insert(ci); err != nil {
		return err
	}
	ix.data[item.Weight] = item.Data
	ix.n++
	ix.ob.observeShape(ix.n, ix.dyn)
	return nil
}

// Delete removes the point with the given weight, reporting whether it
// was present. Only indexes built with WithUpdates support updates.
func (ix *HalfplaneIndex[T]) Delete(weight float64) (bool, error) {
	if ix.dyn == nil {
		return false, errStatic(ix.opts.reduction)
	}
	if !ix.dyn.DeleteWeight(weight) {
		return false, nil
	}
	delete(ix.data, weight)
	ix.n--
	ix.ob.observeShape(ix.n, ix.dyn)
	return true, nil
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *HalfplaneIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters.
func (ix *HalfplaneIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// PointItemN is one weighted point in ℝ^d with a payload.
type PointItemN[T any] struct {
	Coords []float64
	Weight float64
	Data   T
}

// HalfspaceIndex answers top-k halfspace queries in fixed dimension d ≥ 3
// (the paper's Theorem 3, d ≥ 4): given {x : a·x ≥ c}, return the k
// heaviest points inside.
type HalfspaceIndex[T any] struct {
	opts    Options
	d       int
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[halfspace.Halfspace, halfspace.PtN]
	dyn     updatableTopK[halfspace.Halfspace, halfspace.PtN] // non-nil when built with WithUpdates
	pri     core.Prioritized[halfspace.Halfspace, halfspace.PtN]
	data    map[float64]T
	n       int
}

// NewHalfspaceIndex builds an index over d-dimensional items. With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewHalfspaceIndex[T any](items []PointItemN[T], d int, opts ...Option) (*HalfspaceIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[halfspace.PtN], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		if len(it.Coords) != d {
			return nil, fmt.Errorf("topk: item %d has %d coordinates in dimension %d", i, len(it.Coords), d)
		}
		cores[i] = core.Item[halfspace.PtN]{Value: halfspace.PtN{C: it.Coords}, Weight: it.Weight}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	ix := &HalfspaceIndex[T]{opts: o, d: d, tracker: tracker, data: data, n: len(items)}
	if o.updates {
		dyn, err := newOverlay(cores, halfspace.MatchN,
			halfspace.NewKDPrioritizedFactory(d, tracker),
			halfspace.NewKDMaxFactory(d, tracker),
			halfspace.LambdaN(d), o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	} else {
		t, err := buildTopK(cores, halfspace.MatchN,
			halfspace.NewKDPrioritizedFactory(d, tracker),
			halfspace.NewKDMaxFactory(d, tracker),
			halfspace.LambdaN(d), o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk = t
	}
	ix.pri = prioritizedOf(ix.topk)
	ix.ob = newIndexObs("halfspace", o, tracker)
	ix.ob.observeShape(ix.n, ix.dyn)
	return ix, nil
}

// Len returns the number of indexed points.
func (ix *HalfspaceIndex[T]) Len() int { return ix.n }

// Dim returns the index dimension.
func (ix *HalfspaceIndex[T]) Dim() int { return ix.d }

func (ix *HalfspaceIndex[T]) wrap(it core.Item[halfspace.PtN]) PointItemN[T] {
	return PointItemN[T]{Coords: it.Value.C, Weight: it.Weight, Data: ix.data[it.Weight]}
}

// TopK returns the k heaviest points with a·x ≥ c, heaviest first.
func (ix *HalfspaceIndex[T]) TopK(a []float64, c float64, k int) []PointItemN[T] {
	t0, before := ix.ob.start()
	res := ix.topk.TopK(halfspace.Halfspace{A: a, C: c}, k)
	ix.ob.done(t0, before, func() string { return fmt.Sprintf("halfspace a=%v c=%v k=%d", a, c, k) })
	out := make([]PointItemN[T], len(res))
	for i, it := range res {
		out[i] = ix.wrap(it)
	}
	return out
}

// ReportAbove streams every point in the halfspace with weight ≥ tau.
func (ix *HalfspaceIndex[T]) ReportAbove(a []float64, c, tau float64, visit func(PointItemN[T]) bool) {
	ix.pri.ReportAbove(halfspace.Halfspace{A: a, C: c}, tau, func(it core.Item[halfspace.PtN]) bool {
		return visit(ix.wrap(it))
	})
}

// Max returns the heaviest point in the halfspace (a top-1 query).
func (ix *HalfspaceIndex[T]) Max(a []float64, c float64) (PointItemN[T], bool) {
	it, ok := maxOfTopK(ix.topk, halfspace.Halfspace{A: a, C: c})
	if !ok {
		return PointItemN[T]{}, false
	}
	return ix.wrap(it), true
}

// Insert adds a point. Only indexes built with WithUpdates support
// updates; others return an error.
func (ix *HalfspaceIndex[T]) Insert(item PointItemN[T]) error {
	if ix.dyn == nil {
		return errStatic(ix.opts.reduction)
	}
	if len(item.Coords) != ix.d {
		return fmt.Errorf("topk: item has %d coordinates in dimension %d", len(item.Coords), ix.d)
	}
	for _, c := range item.Coords {
		if math.IsNaN(c) {
			return fmt.Errorf("topk: NaN coordinate")
		}
	}
	if math.IsNaN(item.Weight) || math.IsInf(item.Weight, 0) {
		return fmt.Errorf("topk: non-finite weight %v", item.Weight)
	}
	if _, dup := ix.data[item.Weight]; dup {
		return fmt.Errorf("topk: duplicate weight %v", item.Weight)
	}
	coords := append([]float64(nil), item.Coords...)
	ci := core.Item[halfspace.PtN]{Value: halfspace.PtN{C: coords}, Weight: item.Weight}
	if err := ix.dyn.Insert(ci); err != nil {
		return err
	}
	ix.data[item.Weight] = item.Data
	ix.n++
	ix.ob.observeShape(ix.n, ix.dyn)
	return nil
}

// Delete removes the point with the given weight, reporting whether it
// was present. Only indexes built with WithUpdates support updates.
func (ix *HalfspaceIndex[T]) Delete(weight float64) (bool, error) {
	if ix.dyn == nil {
		return false, errStatic(ix.opts.reduction)
	}
	if !ix.dyn.DeleteWeight(weight) {
		return false, nil
	}
	delete(ix.data, weight)
	ix.n--
	ix.ob.observeShape(ix.n, ix.dyn)
	return true, nil
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *HalfspaceIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters.
func (ix *HalfspaceIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// QueryBatch answers one top-k halfplane query per HalfplaneQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *HalfplaneIndex[T]) QueryBatch(qs []HalfplaneQuery, k int, parallelism int) []BatchResult[PointItem2[T]] {
	return runBatch(ix.tracker, ix.ob, qs, parallelism, func(q HalfplaneQuery) []PointItem2[T] {
		return ix.TopK(q.A, q.B, q.C, k)
	})
}

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (ix *HalfplaneIndex[T]) WriteMetrics(w io.Writer) error { return ix.ob.writeMetrics(w) }

// QueryBatch answers one top-k halfspace query per HalfspaceQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *HalfspaceIndex[T]) QueryBatch(qs []HalfspaceQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	return runBatch(ix.tracker, ix.ob, qs, parallelism, func(q HalfspaceQuery) []PointItemN[T] {
		return ix.TopK(q.A, q.C, k)
	})
}

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (ix *HalfspaceIndex[T]) WriteMetrics(w io.Writer) error { return ix.ob.writeMetrics(w) }
