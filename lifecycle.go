package topk

import (
	"errors"
	"time"
)

// This file defines the request-lifecycle contract: a QueryCtx carries a
// per-query I/O budget and wall-clock deadline from the serving layer
// through the engine and shard fan-out down to the em.QueryView charge
// paths, where exceeding either aborts the query mid-walk. The paper's
// cost model is what makes the budget meaningful: every query has a
// predictable I/O price (Theorems 1–2), so a budget derived from the
// observed per-phase costs separates well-behaved queries from runaway
// ones, and an abort is an SLO signal rather than an accident.
//
// Degradation ladder: a query that exceeds its limits either
//
//  1. fails typed — empty Items, Err wrapping ErrBudgetExceeded or
//     ErrDeadlineExceeded, Outcome naming the reason — or,
//  2. with DegradeToMax set, falls back to the top-1 answer (Max), which
//     by the total order on weights is exactly the first element of the
//     true top-k: a correct prefix, never a wrong full answer. The
//     result is marked OutcomeDegraded and Err still reports why.
//
// The fallback runs without limits on the shared tracker path (Max is
// O(log_B n + 1) I/Os for every problem, the cheapest query the paper
// defines), so its cost lands in index-wide Stats rather than the
// aborted query's own counters.

// Sentinel errors for results whose QueryCtx limits fired. Compare with
// errors.Is: BatchResult.Err wraps these with the per-query detail.
var (
	// ErrBudgetExceeded: the query charged more I/Os than its budget.
	ErrBudgetExceeded = errors.New("topk: I/O budget exceeded")
	// ErrDeadlineExceeded: the wall clock passed the query's deadline.
	ErrDeadlineExceeded = errors.New("topk: deadline exceeded")
	// ErrReplicaUnavailable: under cluster serving (internal/cluster), no
	// replica of some shard produced an answer — every owner failed at
	// the transport layer before the lifecycle limits could even apply.
	ErrReplicaUnavailable = errors.New("topk: replica unavailable")
)

// Outcome classifies how a query under a QueryCtx ended.
type Outcome uint8

const (
	// OutcomeOK: the query completed inside its limits (or ran without
	// any); Items is the exact top-k answer.
	OutcomeOK Outcome = iota
	// OutcomeDegraded: a limit fired and the Max fallback served the
	// top-1 — a correct prefix of the true top-k. Err reports which
	// limit fired.
	OutcomeDegraded
	// OutcomeBudgetExceeded: the I/O budget fired and no fallback was
	// requested; Items is empty and Err wraps ErrBudgetExceeded.
	OutcomeBudgetExceeded
	// OutcomeDeadlineExceeded: the deadline fired and no fallback was
	// requested; Items is empty and Err wraps ErrDeadlineExceeded.
	OutcomeDeadlineExceeded
	// OutcomeUnavailable: under cluster serving, some shard's whole
	// replica group failed before answering, so not even a degraded
	// prefix could be assembled; Items is empty and Err wraps
	// ErrReplicaUnavailable. Single-process paths never produce it.
	OutcomeUnavailable
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeBudgetExceeded:
		return "budget_exceeded"
	case OutcomeDeadlineExceeded:
		return "deadline_exceeded"
	case OutcomeUnavailable:
		return "unavailable"
	default:
		return "unknown"
	}
}

// ParseOutcome maps an Outcome's String() form back to the value. The
// cluster tier ships outcomes between processes as their wire strings,
// and the coordinator needs the typed value back to apply the same
// per-query merge rules as a single-process Sharded index.
func ParseOutcome(s string) (Outcome, bool) {
	for o := OutcomeOK; o <= OutcomeUnavailable; o++ {
		if o.String() == s {
			return o, true
		}
	}
	return OutcomeOK, false
}

// aborted reports whether the outcome means the full top-k answer was
// not served.
func (o Outcome) aborted() bool { return o != OutcomeOK }

// QueryCtx is the per-query request-lifecycle contract. The zero value
// imposes no limits and adds no overhead: QueryBatchCtx with a zero
// QueryCtx is QueryBatch.
//
// Under a Sharded index the deadline is global (one wall clock) while
// the I/O budget applies per shard: shards execute independently against
// disjoint data, and per-shard enforcement is what admission control can
// derive from the per-shard cost series the metrics registry already
// exports.
type QueryCtx struct {
	// Deadline is the wall-clock instant after which the query aborts.
	// Zero means no deadline.
	Deadline time.Time
	// IOBudget caps the EM I/Os (reads+writes, cold private cache) the
	// query may charge. Zero or negative means unbudgeted.
	IOBudget int64
	// DegradeToMax turns an abort into the documented top-1 fallback
	// instead of an empty result.
	DegradeToMax bool
}

// limited reports whether any limit is armed.
func (c QueryCtx) limited() bool { return c.IOBudget > 0 || !c.Deadline.IsZero() }

// WithDeadlineIn returns a copy of c whose deadline is d from now — a
// convenience for per-request timeouts.
func (c QueryCtx) WithDeadlineIn(d time.Duration) QueryCtx {
	c.Deadline = time.Now().Add(d)
	return c
}
