package topk

import (
	"fmt"
	"testing"
)

// This file is the disk-backed conformance suite: every registered
// problem × reduction is rebuilt with WithDiskStore and must be
// indistinguishable from the in-memory simulator — byte-identical
// answers, identical logical I/O accounting, and a physical read/write
// trace that matches the logical one exactly (each counted miss is one
// pread, each counted write is one pwrite). The suite is the acceptance
// gate for the claim in DESIGN.md §13 that attaching a store never
// changes what the paper's model measures.

// diskShardCounts keeps the disk matrix at the degenerate single shard
// plus the smallest real partition; wider partitions exercise no new
// store code (one file per shard either way).
var diskShardCounts = []int{1, 2}

// buildConfPair builds the same index twice — in-memory simulator and
// disk-backed — from identical options.
func buildConfPair(t *testing.T, spec ProblemSpec, shards int, opts ...Option) (sim, disk Served) {
	t.Helper()
	diskOpts := append(append([]Option{}, opts...), WithDiskStore(t.TempDir()))
	var err error
	if shards > 1 {
		sim, err = spec.BuildSharded(confN, shards, confSeed, opts...)
	} else {
		sim, err = spec.Build(confN, confSeed, opts...)
	}
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 {
		disk, err = spec.BuildSharded(confN, shards, confSeed, diskOpts...)
	} else {
		disk, err = spec.Build(confN, confSeed, diskOpts...)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sim, disk
}

// diffAnswers fails the test unless two batch results are identical in
// items (weight and label) and in per-query logical I/O stats.
func diffAnswers(t *testing.T, want, got []BatchResult[ServedItem]) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("batch sizes differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Stats != b.Stats {
			t.Fatalf("q%d: logical stats diverge: %+v (sim) != %+v (disk)", i, a.Stats, b.Stats)
		}
		if len(a.Items) != len(b.Items) {
			t.Fatalf("q%d: %d items (sim) != %d items (disk)", i, len(a.Items), len(b.Items))
		}
		for j := range a.Items {
			if a.Items[j].Weight != b.Items[j].Weight || a.Items[j].Label != b.Items[j].Label {
				t.Fatalf("q%d item %d: %v/%q (sim) != %v/%q (disk)",
					i, j, a.Items[j].Weight, a.Items[j].Label, b.Items[j].Weight, b.Items[j].Label)
			}
		}
	}
}

// checkPhysicalMatchesLogical asserts the store's syscall counters
// mirror the logical accounting exactly: with no restore in the
// index's history, physical reads = counted misses and physical
// writes = counted writes.
func checkPhysicalMatchesLogical(t *testing.T, ix Served) {
	t.Helper()
	if err := ix.StoreErr(); err != nil {
		t.Fatalf("StoreErr() = %v on a healthy store", err)
	}
	ss, st := ix.StoreStats(), ix.Stats()
	if ss.Reads != st.Reads {
		t.Fatalf("physical reads %d != logical reads %d", ss.Reads, st.Reads)
	}
	if ss.Writes != st.Writes {
		t.Fatalf("physical writes %d != logical writes %d", ss.Writes, st.Writes)
	}
	if ss.Reads+ss.Writes == 0 {
		t.Fatal("disk-backed index performed no physical I/O at all")
	}
}

// TestConformanceDiskStore checks, for every problem × reduction ×
// shard count, that a disk-backed index answers byte-identically to the
// in-memory simulator with identical logical I/O counts, and that its
// physical traffic matches the logical trace one-for-one.
func TestConformanceDiskStore(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for _, r := range AllReductions() {
			for _, shards := range diskShardCounts {
				t.Run(fmt.Sprintf("%s/%v/shards=%d", spec.Name, r, shards), func(t *testing.T) {
					sim, disk := buildConfPair(t, spec, shards, WithReduction(r))
					if got := sim.StoreStats(); got != (StoreStats{}) {
						t.Fatalf("simulator reports store traffic: %+v", got)
					}
					if sim.Stats() != disk.Stats() {
						t.Fatalf("build accounting diverges: %+v (sim) != %+v (disk)",
							sim.Stats(), disk.Stats())
					}
					qs := disk.GenQueries(6, confQSeed)
					diffAnswers(t, sim.QueryBatch(qs, 5, 1), disk.QueryBatch(qs, 5, 1))

					// The remaining query surface, called symmetrically on
					// both indexes so the accounting comparison below stays
					// meaningful: full-width TopK, Max, and ReportAbove at
					// the median answer weight.
					q := qs[0]
					got := servedWeights(disk.TopK(q, confN))
					want := servedWeights(sim.TopK(q, confN))
					if len(got) != len(want) {
						t.Fatalf("TopK(n): %d items, want %d", len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("TopK(n) item %d: %v, want %v", i, got[i], want[i])
						}
					}
					dm, dok := disk.Max(q)
					sm, sok := sim.Max(q)
					if dok != sok || (dok && dm.Weight != sm.Weight) {
						t.Fatalf("Max = (%v, %v) (disk) != (%v, %v) (sim)", dm.Weight, dok, sm.Weight, sok)
					}
					if len(want) > 0 {
						tau := want[(len(want)-1)/2]
						if got, want := weightSet(disk.ReportAbove(q, tau)), weightSet(sim.ReportAbove(q, tau)); len(got) != len(want) {
							t.Fatalf("ReportAbove: %d items, want %d", len(got), len(want))
						}
					}

					if sim.Stats() != disk.Stats() {
						t.Fatalf("post-query accounting diverges: %+v (sim) != %+v (disk)",
							sim.Stats(), disk.Stats())
					}
					checkPhysicalMatchesLogical(t, disk)
					if err := disk.Close(); err != nil {
						t.Fatalf("Close: %v", err)
					}
					if err := sim.Close(); err != nil {
						t.Fatalf("simulator Close: %v", err)
					}
				})
			}
		}
	}
}

// TestConformanceDiskParallelQueries checks the determinism contract on
// the disk path: per-query answers and stats are identical at batch
// parallelism 1 and 4 even though concurrent views now issue real
// preads against one shared file.
func TestConformanceDiskParallelQueries(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		t.Run(spec.Name, func(t *testing.T) {
			disk, err := spec.Build(confN, confSeed, WithDiskStore(t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			defer disk.Close()
			qs := disk.GenQueries(12, confQSeed)
			diffAnswers(t, disk.QueryBatch(qs, 5, 1), disk.QueryBatch(qs, 5, 4))
			checkPhysicalMatchesLogical(t, disk)
		})
	}
}

// TestConformanceDiskSnapshotRestore checks the snapshot round trip
// through the disk store in both directions: a disk-backed index can be
// snapshotted, and a snapshot (from either kind of index) can be
// restored *onto* a disk store — after which queries answer identically
// to the source index and every cache miss is again a real pread.
func TestConformanceDiskSnapshotRestore(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for _, shards := range diskShardCounts {
			t.Run(fmt.Sprintf("%s/shards=%d", spec.Name, shards), func(t *testing.T) {
				var src Served
				var err error
				if shards > 1 {
					src, err = spec.BuildSharded(confN, shards, confSeed, WithDiskStore(t.TempDir()))
				} else {
					src, err = spec.Build(confN, confSeed, WithDiskStore(t.TempDir()))
				}
				if err != nil {
					t.Fatal(err)
				}
				defer src.Close()

				snap := t.TempDir()
				if err := src.Snapshot(snap); err != nil {
					t.Fatalf("snapshotting a disk-backed index: %v", err)
				}
				rst, err := spec.Restore(snap, WithDiskStore(t.TempDir()))
				if err != nil {
					t.Fatalf("restoring onto a disk store: %v", err)
				}
				defer rst.Close()
				if rst.Len() != src.Len() || rst.Shards() != src.Shards() {
					t.Fatalf("restored shape %d/%d, want %d/%d",
						rst.Len(), rst.Shards(), src.Len(), src.Shards())
				}

				// Restore accounting is synthetic (sequential-read cost, no
				// physical reads), so the physical-matches-logical check
				// runs on query deltas only.
				ss0, st0 := rst.StoreStats(), rst.Stats()
				qs := rst.GenQueries(8, confQSeed)
				diffAnswers(t, src.QueryBatch(qs, 5, 1), rst.QueryBatch(qs, 5, 1))
				ss1, st1 := rst.StoreStats(), rst.Stats()
				if ss1.Reads-ss0.Reads != st1.Reads-st0.Reads {
					t.Fatalf("restored store: %d physical reads for %d logical misses",
						ss1.Reads-ss0.Reads, st1.Reads-st0.Reads)
				}
				if st1.Reads-st0.Reads > 0 && ss1.Reads == ss0.Reads {
					t.Fatal("restored store served misses without touching the disk")
				}
				if err := rst.StoreErr(); err != nil {
					t.Fatalf("StoreErr() after restore round trip: %v", err)
				}
			})
		}
	}
}

// TestConformanceDiskTinyLFU checks that the TinyLFU admission policy
// composes with the disk store for every problem: answers still match
// the simulator running the same policy, logical accounting still
// matches (policy equality is what the conformance claim quantifies
// over), and physical reads still equal counted misses.
func TestConformanceDiskTinyLFU(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		t.Run(spec.Name, func(t *testing.T) {
			sim, disk := buildConfPair(t, spec, 1, WithCachePolicy(CacheTinyLFU))
			defer sim.Close()
			defer disk.Close()
			qs := disk.GenQueries(8, confQSeed)
			diffAnswers(t, sim.QueryBatch(qs, 5, 1), disk.QueryBatch(qs, 5, 1))
			if sim.Stats() != disk.Stats() {
				t.Fatalf("TinyLFU accounting diverges: %+v (sim) != %+v (disk)",
					sim.Stats(), disk.Stats())
			}
			if sim.CacheStats() != disk.CacheStats() {
				t.Fatalf("TinyLFU policy decisions diverge: %+v (sim) != %+v (disk)",
					sim.CacheStats(), disk.CacheStats())
			}
			checkPhysicalMatchesLogical(t, disk)
		})
	}
}
