module topk

go 1.22
