package topk

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// Registry-driven conformance for the request-lifecycle contract: every
// registered problem, plain and sharded, must honor the QueryCtx
// degradation ladder — typed aborts with empty Items, the documented
// top-1 fallback under DegradeToMax, and exact answers whenever the
// limits don't fire. A ninth problem is covered the moment its
// ProblemSpec lands.

// lifecycleTargets builds the plain and 2-way sharded serving view of
// one problem for the lifecycle sweep.
func lifecycleTargets(t *testing.T, spec ProblemSpec) map[string]Served {
	t.Helper()
	plain, err := spec.Build(confN, confSeed)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := spec.BuildSharded(confN, 2, confSeed)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Served{"plain": plain, "sharded": sharded}
}

// TestConformanceLifecycleBudgetAbort: under a 1-I/O budget every query
// either still completes exactly (it happened to need ≤1 I/O) or fails
// typed — OutcomeBudgetExceeded, empty Items, Err wrapping
// ErrBudgetExceeded. Nothing in between, and never a wrong full answer.
func TestConformanceLifecycleBudgetAbort(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for mode, sv := range lifecycleTargets(t, spec) {
			t.Run(spec.Name+"/"+mode, func(t *testing.T) {
				qs := sv.GenQueries(8, confQSeed)
				res := sv.QueryBatchCtx(QueryCtx{IOBudget: 1}, qs, 5, 2)
				aborted := 0
				for i, r := range res {
					switch r.Outcome {
					case OutcomeOK:
						assertOraclePrefix(t, sv, qs[i], r.Items, 5)
						if r.Err != nil {
							t.Fatalf("q%d: OutcomeOK with err %v", i, r.Err)
						}
					case OutcomeBudgetExceeded:
						aborted++
						if len(r.Items) != 0 {
							t.Fatalf("q%d: budget abort returned %d items, want none", i, len(r.Items))
						}
						if !errors.Is(r.Err, ErrBudgetExceeded) {
							t.Fatalf("q%d: err = %v, want ErrBudgetExceeded", i, r.Err)
						}
					default:
						t.Fatalf("q%d: outcome %v under a budget-only ctx", i, r.Outcome)
					}
				}
				if aborted == 0 {
					t.Fatal("no query aborted under a 1-I/O budget — the sweep is vacuous")
				}
			})
		}
	}
}

// TestConformanceLifecycleDegradeToMax: same starved budget, but with
// the fallback armed every aborted query must serve exactly the top-1
// prefix of the true answer (OutcomeDegraded, Err still reporting why).
func TestConformanceLifecycleDegradeToMax(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for mode, sv := range lifecycleTargets(t, spec) {
			t.Run(spec.Name+"/"+mode, func(t *testing.T) {
				qs := sv.GenQueries(8, confQSeed)
				res := sv.QueryBatchCtx(QueryCtx{IOBudget: 1, DegradeToMax: true}, qs, 5, 2)
				degraded := 0
				for i, r := range res {
					switch r.Outcome {
					case OutcomeOK:
						assertOraclePrefix(t, sv, qs[i], r.Items, 5)
					case OutcomeDegraded:
						degraded++
						if !errors.Is(r.Err, ErrBudgetExceeded) {
							t.Fatalf("q%d: degraded err = %v, want ErrBudgetExceeded", i, r.Err)
						}
						assertOraclePrefix(t, sv, qs[i], r.Items, 1)
					default:
						t.Fatalf("q%d: outcome %v with DegradeToMax armed", i, r.Outcome)
					}
				}
				if degraded == 0 {
					t.Fatal("no query degraded under a 1-I/O budget — the sweep is vacuous")
				}
			})
		}
	}
}

// TestConformanceLifecycleExpiredDeadline: a deadline already in the
// past must abort every query that touches the tracker on its first
// charge — OutcomeDeadlineExceeded, empty Items, typed Err.
func TestConformanceLifecycleExpiredDeadline(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for mode, sv := range lifecycleTargets(t, spec) {
			t.Run(spec.Name+"/"+mode, func(t *testing.T) {
				qs := sv.GenQueries(6, confQSeed)
				ctx := QueryCtx{Deadline: time.Now().Add(-time.Hour)}
				aborted := 0
				for i, r := range sv.QueryBatchCtx(ctx, qs, 5, 2) {
					switch r.Outcome {
					case OutcomeOK:
						// Legal only for a query that charged no I/Os at all.
						if r.Stats.IOs() != 0 {
							t.Fatalf("q%d: completed %d I/Os past an expired deadline", i, r.Stats.IOs())
						}
					case OutcomeDeadlineExceeded:
						aborted++
						if len(r.Items) != 0 {
							t.Fatalf("q%d: deadline abort returned %d items", i, len(r.Items))
						}
						if !errors.Is(r.Err, ErrDeadlineExceeded) {
							t.Fatalf("q%d: err = %v, want ErrDeadlineExceeded", i, r.Err)
						}
					default:
						t.Fatalf("q%d: outcome %v under an expired deadline", i, r.Outcome)
					}
				}
				if aborted == 0 {
					t.Fatal("no query aborted under an expired deadline")
				}
			})
		}
	}
}

// TestConformanceLifecycleGenerousLimits: a ctx whose limits can't fire
// must be indistinguishable from plain QueryBatch — identical answers,
// identical per-query cold-cache stats, OutcomeOK, nil Err.
func TestConformanceLifecycleGenerousLimits(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for mode, sv := range lifecycleTargets(t, spec) {
			t.Run(spec.Name+"/"+mode, func(t *testing.T) {
				qs := sv.GenQueries(8, confQSeed)
				plain := sv.QueryBatch(qs, 5, 2)
				ctx := QueryCtx{IOBudget: 1 << 40, Deadline: time.Now().Add(time.Hour)}
				limited := sv.QueryBatchCtx(ctx, qs, 5, 2)
				for i := range qs {
					a, b := plain[i], limited[i]
					if b.Outcome != OutcomeOK || b.Err != nil {
						t.Fatalf("q%d: generous ctx ended (%v, %v)", i, b.Outcome, b.Err)
					}
					if a.Stats != b.Stats {
						t.Fatalf("q%d: stats %+v (plain) != %+v (ctx)", i, a.Stats, b.Stats)
					}
					if len(a.Items) != len(b.Items) {
						t.Fatalf("q%d: %d items (plain) != %d (ctx)", i, len(a.Items), len(b.Items))
					}
					for j := range a.Items {
						if a.Items[j].Weight != b.Items[j].Weight {
							t.Fatalf("q%d item %d: %v (plain) != %v (ctx)", i, j, a.Items[j].Weight, b.Items[j].Weight)
						}
					}
				}
			})
		}
	}
}

// assertOraclePrefix fails unless items is exactly the first
// min(k, len(oracle)) weights of the ground-truth answer for q.
func assertOraclePrefix(t *testing.T, sv Served, q any, items []ServedItem, k int) {
	t.Helper()
	want := servedWeights(sv.Oracle(q))
	if k < len(want) {
		want = want[:k]
	}
	got := servedWeights(items)
	if len(got) != len(want) {
		t.Fatalf("got %d items, want the %d-prefix of the oracle (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal(fmt.Sprintf("item %d: weight %v, want %v", i, got[i], want[i]))
		}
	}
}
