package topk

import (
	"fmt"
	"math"

	"topk/internal/circular"
	"topk/internal/core"
	"topk/internal/dominance"
	"topk/internal/enclosure"
	"topk/internal/halfspace"
	"topk/internal/interval"
	"topk/internal/orthorange"
	"topk/internal/rangerep"
)

// This file fixes the generic Sharded core to each of the eight
// problems, exactly as the *_index.go facades fix the engine: every
// wrapper embeds *Sharded (promoting Insert, Delete, Len, Items, Stats,
// ShardLens, WriteMetrics, …) and shadows the query methods with the
// problem's natural signatures. The semantic contract is the facades':
// a sharded index answers what the corresponding single index over the
// same items would, at any shard count.

// ShardedIntervalIndex is an IntervalIndex partitioned across shards;
// see Sharded for the fan-out/merge and update-routing contract.
type ShardedIntervalIndex[T any] struct {
	*Sharded[float64, interval.Interval, IntervalItem[T]]
}

// NewShardedIntervalIndex builds an interval index over items split
// into the given number of shards. Weights must be distinct across the
// whole index.
func NewShardedIntervalIndex[T any](items []IntervalItem[T], shards int, opts ...Option) (*ShardedIntervalIndex[T], error) {
	s, err := newSharded(intervalProblem[T](), items, shards, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedIntervalIndex[T]{s}, nil
}

// TopK returns the k heaviest intervals containing x, heaviest first.
func (ix *ShardedIntervalIndex[T]) TopK(x float64, k int) []IntervalItem[T] {
	return ix.Sharded.TopK(x, k)
}

// ReportAbove streams every interval containing x with weight ≥ tau.
func (ix *ShardedIntervalIndex[T]) ReportAbove(x, tau float64, visit func(IntervalItem[T]) bool) {
	ix.Sharded.ReportAbove(x, tau, visit)
}

// Max returns the heaviest interval containing x (a top-1 query).
func (ix *ShardedIntervalIndex[T]) Max(x float64) (IntervalItem[T], bool) {
	return ix.Sharded.Max(x)
}

// QueryBatch answers one stabbing query per element of xs; see
// Sharded.QueryBatch for the stats-summing contract.
func (ix *ShardedIntervalIndex[T]) QueryBatch(xs []float64, k int, parallelism int) []BatchResult[IntervalItem[T]] {
	return ix.Sharded.QueryBatch(xs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract; see
// Sharded.QueryBatchCtx for the per-shard budget and merge rules.
func (ix *ShardedIntervalIndex[T]) QueryBatchCtx(ctx QueryCtx, xs []float64, k int, parallelism int) []BatchResult[IntervalItem[T]] {
	return ix.Sharded.QueryBatchCtx(ctx, xs, k, parallelism)
}

// ShardedRangeIndex is a RangeIndex partitioned across shards.
type ShardedRangeIndex[T any] struct {
	*Sharded[rangerep.Span, float64, PointItem1[T]]
}

// NewShardedRangeIndex builds a 1D range index over items split into
// the given number of shards.
func NewShardedRangeIndex[T any](items []PointItem1[T], shards int, opts ...Option) (*ShardedRangeIndex[T], error) {
	s, err := newSharded(rangeProblem[T](), items, shards, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedRangeIndex[T]{s}, nil
}

// TopK returns the k heaviest points in [lo, hi], heaviest first.
func (ix *ShardedRangeIndex[T]) TopK(lo, hi float64, k int) []PointItem1[T] {
	return ix.Sharded.TopK(rangerep.Span{Lo: lo, Hi: hi}, k)
}

// ReportAbove streams every point in [lo, hi] with weight ≥ tau.
func (ix *ShardedRangeIndex[T]) ReportAbove(lo, hi, tau float64, visit func(PointItem1[T]) bool) {
	ix.Sharded.ReportAbove(rangerep.Span{Lo: lo, Hi: hi}, tau, visit)
}

// Max returns the heaviest point in [lo, hi] (a top-1 query).
func (ix *ShardedRangeIndex[T]) Max(lo, hi float64) (PointItem1[T], bool) {
	return ix.Sharded.Max(rangerep.Span{Lo: lo, Hi: hi})
}

// Count returns the number of points in [lo, hi], summed over shards.
func (ix *ShardedRangeIndex[T]) Count(lo, hi float64) int {
	q := rangerep.Span{Lo: lo, Hi: hi}
	n := 0
	for _, e := range ix.shards {
		if p, ok := e.pri.(*rangerep.Points); ok {
			n += p.Count(q)
			continue
		}
		e.pri.ReportAbove(q, math.Inf(-1), func(core.Item[float64]) bool {
			n++
			return true
		})
	}
	return n
}

// QueryBatch answers one range query per Span; see Sharded.QueryBatch.
func (ix *ShardedRangeIndex[T]) QueryBatch(spans []Span, k int, parallelism int) []BatchResult[PointItem1[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, spans, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract; see
// Sharded.QueryBatchCtx for the per-shard budget and merge rules.
func (ix *ShardedRangeIndex[T]) QueryBatchCtx(ctx QueryCtx, spans []Span, k int, parallelism int) []BatchResult[PointItem1[T]] {
	qs := make([]rangerep.Span, len(spans))
	for i, s := range spans {
		qs[i] = rangerep.Span{Lo: s.Lo, Hi: s.Hi}
	}
	return ix.Sharded.QueryBatchCtx(ctx, qs, k, parallelism)
}

// ShardedOrthoIndex is an OrthoIndex partitioned across shards.
type ShardedOrthoIndex[T any] struct {
	d int
	*Sharded[orthorange.Box, halfspace.PtN, PointItemN[T]]
}

// NewShardedOrthoIndex builds a d-dimensional orthogonal range index
// over items split into the given number of shards.
func NewShardedOrthoIndex[T any](items []PointItemN[T], d, shards int, opts ...Option) (*ShardedOrthoIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	s, err := newSharded(orthoProblem[T](d), items, shards, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedOrthoIndex[T]{d: d, Sharded: s}, nil
}

// Dim returns the index dimension.
func (ix *ShardedOrthoIndex[T]) Dim() int { return ix.d }

func (ix *ShardedOrthoIndex[T]) box(lo, hi []float64) (orthorange.Box, error) {
	q, err := orthorange.NewBox(lo, hi)
	if err != nil {
		return orthorange.Box{}, err
	}
	if len(lo) != ix.d {
		return orthorange.Box{}, fmt.Errorf("topk: box has %d coordinates in dimension %d", len(lo), ix.d)
	}
	return q, nil
}

// TopK returns the k heaviest points inside the box [lo, hi], heaviest
// first. Malformed boxes return an error.
func (ix *ShardedOrthoIndex[T]) TopK(lo, hi []float64, k int) ([]PointItemN[T], error) {
	q, err := ix.box(lo, hi)
	if err != nil {
		return nil, err
	}
	return ix.Sharded.TopK(q, k), nil
}

// ReportAbove streams every point inside the box with weight ≥ tau.
func (ix *ShardedOrthoIndex[T]) ReportAbove(lo, hi []float64, tau float64, visit func(PointItemN[T]) bool) error {
	q, err := ix.box(lo, hi)
	if err != nil {
		return err
	}
	ix.Sharded.ReportAbove(q, tau, visit)
	return nil
}

// Max returns the heaviest point inside the box.
func (ix *ShardedOrthoIndex[T]) Max(lo, hi []float64) (PointItemN[T], bool, error) {
	q, err := ix.box(lo, hi)
	if err != nil {
		return PointItemN[T]{}, false, err
	}
	it, ok := ix.Sharded.Max(q)
	return it, ok, nil
}

// QueryBatch answers one box query per BoxQuery, validating all boxes
// up front; see Sharded.QueryBatch.
func (ix *ShardedOrthoIndex[T]) QueryBatch(qs []BoxQuery, k int, parallelism int) ([]BatchResult[PointItemN[T]], error) {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract; see
// Sharded.QueryBatchCtx for the per-shard budget and merge rules.
func (ix *ShardedOrthoIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []BoxQuery, k int, parallelism int) ([]BatchResult[PointItemN[T]], error) {
	boxes := make([]orthorange.Box, len(qs))
	for i, q := range qs {
		b, err := ix.box(q.Lo, q.Hi)
		if err != nil {
			return nil, fmt.Errorf("topk: batch query %d: %w", i, err)
		}
		boxes[i] = b
	}
	return ix.Sharded.QueryBatchCtx(ctx, boxes, k, parallelism), nil
}

// ShardedCircularIndex is a CircularIndex partitioned across shards.
type ShardedCircularIndex[T any] struct {
	d int
	*Sharded[circular.Ball, halfspace.PtN, PointItemN[T]]
}

// NewShardedCircularIndex builds a d-dimensional circular range index
// over items split into the given number of shards.
func NewShardedCircularIndex[T any](items []PointItemN[T], d, shards int, opts ...Option) (*ShardedCircularIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	s, err := newSharded(circularProblem[T](d), items, shards, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedCircularIndex[T]{d: d, Sharded: s}, nil
}

// Dim returns the index dimension (of the original, unlifted points).
func (ix *ShardedCircularIndex[T]) Dim() int { return ix.d }

// TopK returns the k heaviest points within distance r of center,
// heaviest first.
func (ix *ShardedCircularIndex[T]) TopK(center []float64, r float64, k int) []PointItemN[T] {
	return ix.Sharded.TopK(circular.Ball{Center: center, R: r}, k)
}

// ReportAbove streams every point within the ball with weight ≥ tau.
func (ix *ShardedCircularIndex[T]) ReportAbove(center []float64, r, tau float64, visit func(PointItemN[T]) bool) {
	ix.Sharded.ReportAbove(circular.Ball{Center: center, R: r}, tau, visit)
}

// Max returns the heaviest point within the ball (a top-1 query).
func (ix *ShardedCircularIndex[T]) Max(center []float64, r float64) (PointItemN[T], bool) {
	return ix.Sharded.Max(circular.Ball{Center: center, R: r})
}

// QueryBatch answers one ball query per BallQuery; see
// Sharded.QueryBatch.
func (ix *ShardedCircularIndex[T]) QueryBatch(qs []BallQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract; see
// Sharded.QueryBatchCtx for the per-shard budget and merge rules.
func (ix *ShardedCircularIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []BallQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	balls := make([]circular.Ball, len(qs))
	for i, q := range qs {
		balls[i] = circular.Ball{Center: q.Center, R: q.Radius}
	}
	return ix.Sharded.QueryBatchCtx(ctx, balls, k, parallelism)
}

// ShardedDominanceIndex is a DominanceIndex partitioned across shards.
type ShardedDominanceIndex[T any] struct {
	*Sharded[dominance.Pt3, dominance.Pt3, DominanceItem[T]]
}

// NewShardedDominanceIndex builds a 3D dominance index over items split
// into the given number of shards.
func NewShardedDominanceIndex[T any](items []DominanceItem[T], shards int, opts ...Option) (*ShardedDominanceIndex[T], error) {
	s, err := newSharded(dominanceProblem[T](), items, shards, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedDominanceIndex[T]{s}, nil
}

// TopK returns the k heaviest points dominated by (x, y, z), heaviest
// first.
func (ix *ShardedDominanceIndex[T]) TopK(x, y, z float64, k int) []DominanceItem[T] {
	return ix.Sharded.TopK(dominance.Pt3{X: x, Y: y, Z: z}, k)
}

// ReportAbove streams every point dominated by (x, y, z) with weight ≥
// tau.
func (ix *ShardedDominanceIndex[T]) ReportAbove(x, y, z, tau float64, visit func(DominanceItem[T]) bool) {
	ix.Sharded.ReportAbove(dominance.Pt3{X: x, Y: y, Z: z}, tau, visit)
}

// Max returns the heaviest point dominated by (x, y, z).
func (ix *ShardedDominanceIndex[T]) Max(x, y, z float64) (DominanceItem[T], bool) {
	return ix.Sharded.Max(dominance.Pt3{X: x, Y: y, Z: z})
}

// QueryBatch answers one dominance query per CornerQuery; see
// Sharded.QueryBatch.
func (ix *ShardedDominanceIndex[T]) QueryBatch(qs []CornerQuery, k int, parallelism int) []BatchResult[DominanceItem[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract; see
// Sharded.QueryBatchCtx for the per-shard budget and merge rules.
func (ix *ShardedDominanceIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []CornerQuery, k int, parallelism int) []BatchResult[DominanceItem[T]] {
	corners := make([]dominance.Pt3, len(qs))
	for i, q := range qs {
		corners[i] = dominance.Pt3{X: q.X, Y: q.Y, Z: q.Z}
	}
	return ix.Sharded.QueryBatchCtx(ctx, corners, k, parallelism)
}

// ShardedEnclosureIndex is an EnclosureIndex partitioned across shards.
type ShardedEnclosureIndex[T any] struct {
	*Sharded[enclosure.Pt2, enclosure.Rect, RectItem[T]]
}

// NewShardedEnclosureIndex builds a 2D point-enclosure index over items
// split into the given number of shards.
func NewShardedEnclosureIndex[T any](items []RectItem[T], shards int, opts ...Option) (*ShardedEnclosureIndex[T], error) {
	s, err := newSharded(enclosureProblem[T](), items, shards, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedEnclosureIndex[T]{s}, nil
}

// TopK returns the k heaviest rectangles containing (x, y), heaviest
// first.
func (ix *ShardedEnclosureIndex[T]) TopK(x, y float64, k int) []RectItem[T] {
	return ix.Sharded.TopK(enclosure.Pt2{X: x, Y: y}, k)
}

// ReportAbove streams every rectangle containing (x, y) with weight ≥
// tau.
func (ix *ShardedEnclosureIndex[T]) ReportAbove(x, y, tau float64, visit func(RectItem[T]) bool) {
	ix.Sharded.ReportAbove(enclosure.Pt2{X: x, Y: y}, tau, visit)
}

// Max returns the heaviest rectangle containing (x, y).
func (ix *ShardedEnclosureIndex[T]) Max(x, y float64) (RectItem[T], bool) {
	return ix.Sharded.Max(enclosure.Pt2{X: x, Y: y})
}

// QueryBatch answers one enclosure query per PointQuery; see
// Sharded.QueryBatch.
func (ix *ShardedEnclosureIndex[T]) QueryBatch(qs []PointQuery, k int, parallelism int) []BatchResult[RectItem[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract; see
// Sharded.QueryBatchCtx for the per-shard budget and merge rules.
func (ix *ShardedEnclosureIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []PointQuery, k int, parallelism int) []BatchResult[RectItem[T]] {
	pts := make([]enclosure.Pt2, len(qs))
	for i, q := range qs {
		pts[i] = enclosure.Pt2{X: q.X, Y: q.Y}
	}
	return ix.Sharded.QueryBatchCtx(ctx, pts, k, parallelism)
}

// ShardedHalfplaneIndex is a HalfplaneIndex partitioned across shards.
type ShardedHalfplaneIndex[T any] struct {
	*Sharded[halfspace.Halfplane, halfspace.Pt2, PointItem2[T]]
}

// NewShardedHalfplaneIndex builds a 2D halfspace index over items split
// into the given number of shards.
func NewShardedHalfplaneIndex[T any](items []PointItem2[T], shards int, opts ...Option) (*ShardedHalfplaneIndex[T], error) {
	s, err := newSharded(halfplaneProblem[T](), items, shards, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedHalfplaneIndex[T]{s}, nil
}

// TopK returns the k heaviest points with a·x + b·y ≥ c, heaviest
// first.
func (ix *ShardedHalfplaneIndex[T]) TopK(a, b, c float64, k int) []PointItem2[T] {
	return ix.Sharded.TopK(halfspace.Halfplane{A: a, B: b, C: c}, k)
}

// ReportAbove streams every point in the halfplane with weight ≥ tau.
func (ix *ShardedHalfplaneIndex[T]) ReportAbove(a, b, c, tau float64, visit func(PointItem2[T]) bool) {
	ix.Sharded.ReportAbove(halfspace.Halfplane{A: a, B: b, C: c}, tau, visit)
}

// Max returns the heaviest point in the halfplane.
func (ix *ShardedHalfplaneIndex[T]) Max(a, b, c float64) (PointItem2[T], bool) {
	return ix.Sharded.Max(halfspace.Halfplane{A: a, B: b, C: c})
}

// QueryBatch answers one halfplane query per HalfplaneQuery; see
// Sharded.QueryBatch.
func (ix *ShardedHalfplaneIndex[T]) QueryBatch(qs []HalfplaneQuery, k int, parallelism int) []BatchResult[PointItem2[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract; see
// Sharded.QueryBatchCtx for the per-shard budget and merge rules.
func (ix *ShardedHalfplaneIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []HalfplaneQuery, k int, parallelism int) []BatchResult[PointItem2[T]] {
	hps := make([]halfspace.Halfplane, len(qs))
	for i, q := range qs {
		hps[i] = halfspace.Halfplane{A: q.A, B: q.B, C: q.C}
	}
	return ix.Sharded.QueryBatchCtx(ctx, hps, k, parallelism)
}

// ShardedHalfspaceIndex is a HalfspaceIndex partitioned across shards.
type ShardedHalfspaceIndex[T any] struct {
	d int
	*Sharded[halfspace.Halfspace, halfspace.PtN, PointItemN[T]]
}

// NewShardedHalfspaceIndex builds a d-dimensional halfspace index over
// items split into the given number of shards.
func NewShardedHalfspaceIndex[T any](items []PointItemN[T], d, shards int, opts ...Option) (*ShardedHalfspaceIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	s, err := newSharded(halfspaceProblem[T](d), items, shards, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedHalfspaceIndex[T]{d: d, Sharded: s}, nil
}

// Dim returns the index dimension.
func (ix *ShardedHalfspaceIndex[T]) Dim() int { return ix.d }

// TopK returns the k heaviest points with a·x ≥ c, heaviest first.
func (ix *ShardedHalfspaceIndex[T]) TopK(a []float64, c float64, k int) []PointItemN[T] {
	return ix.Sharded.TopK(halfspace.Halfspace{A: a, C: c}, k)
}

// ReportAbove streams every point in the halfspace with weight ≥ tau.
func (ix *ShardedHalfspaceIndex[T]) ReportAbove(a []float64, c, tau float64, visit func(PointItemN[T]) bool) {
	ix.Sharded.ReportAbove(halfspace.Halfspace{A: a, C: c}, tau, visit)
}

// Max returns the heaviest point in the halfspace.
func (ix *ShardedHalfspaceIndex[T]) Max(a []float64, c float64) (PointItemN[T], bool) {
	return ix.Sharded.Max(halfspace.Halfspace{A: a, C: c})
}

// QueryBatch answers one halfspace query per HalfspaceQuery; see
// Sharded.QueryBatch.
func (ix *ShardedHalfspaceIndex[T]) QueryBatch(qs []HalfspaceQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract; see
// Sharded.QueryBatchCtx for the per-shard budget and merge rules.
func (ix *ShardedHalfspaceIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []HalfspaceQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	hss := make([]halfspace.Halfspace, len(qs))
	for i, q := range qs {
		hss[i] = halfspace.Halfspace{A: q.A, C: q.C}
	}
	return ix.Sharded.QueryBatchCtx(ctx, hss, k, parallelism)
}
