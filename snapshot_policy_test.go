package topk

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"topk/internal/snap"
)

// This file covers the format-version-2 policy section (DESIGN.md §12,
// §15): a buffered overlay's snapshot carries its maintenance policy and
// tier placement, a logarithmic overlay's stream is the version-1 layout
// with only the version number changed, and version-1 streams restore
// onto the logarithmic policy unchanged.

// churnedIntervalIndex builds an overlay-backed interval index (the
// WorstCase reduction has no native update path) and drives it
// through enough inserts and deletes to leave levels, tombstones, and a
// partial tail behind.
func churnedIntervalIndex(t *testing.T, opts ...Option) *IntervalIndex[int] {
	t.Helper()
	base := make([]IntervalItem[int], 64)
	for i := range base {
		base[i] = IntervalItem[int]{Lo: float64(i), Hi: float64(i + 10), Weight: float64(i) + 0.5, Data: i}
	}
	all := append([]Option{WithUpdates(), WithReduction(WorstCase), WithBlockSize(4)}, opts...)
	ix, err := NewIntervalIndex(base, all...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		it := IntervalItem[int]{Lo: float64(i) * 0.5, Hi: float64(i)*0.5 + 7, Weight: 1000 + float64(i), Data: 1000 + i}
		if err := ix.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i += 3 {
		if ok, err := ix.Delete(float64(i) + 0.5); err != nil || !ok {
			t.Fatalf("delete %v: ok=%v err=%v", float64(i)+0.5, ok, err)
		}
	}
	return ix
}

// intervalAnswers collects a deterministic answer transcript.
func intervalAnswers(ix *IntervalIndex[int]) []IntervalItem[int] {
	var out []IntervalItem[int]
	for _, x := range []float64{0, 5, 12.5, 30, 55.5, 80} {
		for _, k := range []int{1, 5, 50} {
			out = append(out, ix.TopK(x, k)...)
		}
	}
	return out
}

// sectionTypes lists the section types of a snapshot stream in order.
func sectionTypes(t *testing.T, raw []byte) []uint16 {
	t.Helper()
	r, err := snap.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var types []uint16
	for {
		typ, _, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, typ)
		if typ == snap.SecEnd {
			return types
		}
	}
}

// TestSnapshotBufferedPolicyRoundTrip snapshots a buffered overlay
// mid-life and checks the restore resumes the same policy with the same
// logical state: answers match, and re-snapshotting the restored index
// reproduces the original stream byte for byte (policy id, tier
// placement, and counters included).
func TestSnapshotBufferedPolicyRoundTrip(t *testing.T) {
	ix := churnedIntervalIndex(t, WithMaintenancePolicy(PolicyBuffered))
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	var havePolicy bool
	for _, typ := range sectionTypes(t, buf.Bytes()) {
		if typ == snap.SecOverlayPolicy {
			havePolicy = true
		}
	}
	if !havePolicy {
		t.Fatal("buffered overlay snapshot carries no policy section")
	}

	restored, err := RestoreIntervalIndex[int](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := intervalAnswers(restored), intervalAnswers(ix); !reflect.DeepEqual(got, want) {
		t.Fatal("restored buffered index answers diverge from original")
	}

	var again bytes.Buffer
	if err := restored.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-snapshot of the restored buffered index is not byte-identical")
	}

	// The restored index keeps updating under the buffered policy, in
	// lockstep with the original.
	for i := 0; i < 30; i++ {
		it := IntervalItem[int]{Lo: float64(i), Hi: float64(i) + 3, Weight: 5000 + float64(i), Data: 5000 + i}
		if err := ix.Insert(it); err != nil {
			t.Fatal(err)
		}
		if err := restored.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := intervalAnswers(restored), intervalAnswers(ix); !reflect.DeepEqual(got, want) {
		t.Fatal("restored buffered index diverges after post-restore updates")
	}
}

// TestSnapshotLogarithmicStreamIsV1Layout checks the compatibility
// contract: a logarithmic overlay's version-2 stream differs from the
// version-1 layout only in the declared version number — no policy
// section — so patching the version field back to 1 yields a valid
// version-1 snapshot that restores identically.
func TestSnapshotLogarithmicStreamIsV1Layout(t *testing.T) {
	ix := churnedIntervalIndex(t)
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, typ := range sectionTypes(t, buf.Bytes()) {
		if typ == snap.SecOverlayPolicy {
			t.Fatal("logarithmic overlay snapshot carries a policy section")
		}
	}

	v1 := append([]byte(nil), buf.Bytes()...)
	if got := binary.LittleEndian.Uint16(v1[4:6]); got != snap.Version {
		t.Fatalf("stream declares version %d, want %d", got, snap.Version)
	}
	binary.LittleEndian.PutUint16(v1[4:6], 1)
	restored, err := RestoreIntervalIndex[int](bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("restoring the version-1 stream: %v", err)
	}
	if got, want := intervalAnswers(restored), intervalAnswers(ix); !reflect.DeepEqual(got, want) {
		t.Fatal("version-1 restore answers diverge from original")
	}

	// A version this build has never heard of still errors.
	binary.LittleEndian.PutUint16(v1[4:6], 99)
	if _, err := RestoreIntervalIndex[int](bytes.NewReader(v1)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version error", err)
	}
}

// TestManifestMaintenanceField checks the directory layer: buffered
// snapshots record their policy in the manifest, logarithmic ones leave
// the field absent (the version-1 manifest shape), and a directory
// patched down to format version 1 still restores.
func TestManifestMaintenanceField(t *testing.T) {
	spec, ok := ProblemByName("interval")
	if !ok {
		t.Fatal("interval problem not registered")
	}
	churn := func(sv Served) {
		t.Helper()
		for i := 0; i < 40; i++ {
			if _, err := sv.InsertFresh(uint64(1000 + i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("buffered", func(t *testing.T) {
		sv, err := spec.Build(confN, confSeed, WithUpdates(), WithReduction(WorstCase), WithMaintenancePolicy(PolicyBuffered))
		if err != nil {
			t.Fatal(err)
		}
		churn(sv)
		dir := t.TempDir()
		if err := sv.Snapshot(dir); err != nil {
			t.Fatal(err)
		}
		mf, err := ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if mf.Maintenance != PolicyBuffered.String() {
			t.Fatalf("manifest maintenance = %q, want %q", mf.Maintenance, PolicyBuffered)
		}
		restored, err := spec.Restore(dir)
		if err != nil {
			t.Fatal(err)
		}
		qs := sv.GenQueries(8, confQSeed)
		if got, want := answersOf(restored, qs), answersOf(sv, qs); !reflect.DeepEqual(got, want) {
			t.Fatal("restored buffered index answers diverge from original")
		}
		// The policy survives a snapshot of the restored index too.
		dir2 := t.TempDir()
		if err := restored.Snapshot(dir2); err != nil {
			t.Fatal(err)
		}
		mf2, err := ReadManifest(dir2)
		if err != nil {
			t.Fatal(err)
		}
		if mf2.Maintenance != PolicyBuffered.String() {
			t.Fatalf("re-snapshot manifest maintenance = %q, want %q", mf2.Maintenance, PolicyBuffered)
		}
	})

	t.Run("logarithmic stays v1-shaped", func(t *testing.T) {
		sv, err := spec.Build(confN, confSeed, WithUpdates(), WithReduction(WorstCase))
		if err != nil {
			t.Fatal(err)
		}
		churn(sv)
		dir := t.TempDir()
		if err := sv.Snapshot(dir); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, []byte("maintenance")) {
			t.Fatal("logarithmic manifest mentions a maintenance policy")
		}

		// Patch the directory down to format version 1: the shard stream's
		// version field plus the manifest's version and checksum. The
		// result is exactly what a version-1 build would have written, and
		// must restore onto the logarithmic policy.
		snapPath := filepath.Join(dir, "shard-000.snap")
		blob, err := os.ReadFile(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint16(blob[4:6], 1)
		if err := os.WriteFile(snapPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		var mf Manifest
		if err := json.Unmarshal(raw, &mf); err != nil {
			t.Fatal(err)
		}
		mf.FormatVersion = 1
		mf.Files[0].CRC32 = crc32.ChecksumIEEE(blob)
		if out, err := json.MarshalIndent(mf, "", "  "); err != nil {
			t.Fatal(err)
		} else if err := os.WriteFile(filepath.Join(dir, ManifestName), append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}

		restored, err := LoadSnapshot(dir)
		if err != nil {
			t.Fatalf("restoring the version-1 directory: %v", err)
		}
		qs := sv.GenQueries(8, confQSeed)
		if got, want := answersOf(restored, qs), answersOf(sv, qs); !reflect.DeepEqual(got, want) {
			t.Fatal("version-1 restore answers diverge from original")
		}
	})
}
