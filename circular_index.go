package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/circular"
	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
	"topk/internal/snap"
)

// circularProblem is the engine descriptor for top-k circular range
// reporting in dimension d. Items are lifted to ℝ^(d+1) on the way into
// the core structures and unlifted on the way out.
func circularProblem[T any](d int) problem[circular.Ball, halfspace.PtN, PointItemN[T]] {
	return problem[circular.Ball, halfspace.PtN, PointItemN[T]]{
		name:   "circular",
		dim:    d,
		match:  circular.Match,
		lambda: circular.Lambda(d),
		pri: func(tr *em.Tracker) core.PrioritizedFactory[circular.Ball, halfspace.PtN] {
			return circular.NewPrioritizedFactory(d, tr)
		},
		max: func(tr *em.Tracker) core.MaxFactory[circular.Ball, halfspace.PtN] {
			return circular.NewMaxFactory(d, tr)
		},
		validate: func(it PointItemN[T]) error {
			if len(it.Coords) != d {
				return fmt.Errorf("topk: item has %d coordinates in dimension %d", len(it.Coords), d)
			}
			for _, c := range it.Coords {
				if math.IsNaN(c) {
					return fmt.Errorf("topk: NaN coordinate")
				}
			}
			return nil
		},
		weight: func(it PointItemN[T]) float64 { return it.Weight },
		toCore: func(it PointItemN[T]) core.Item[halfspace.PtN] {
			return core.Item[halfspace.PtN]{Value: circular.Lift(it.Coords), Weight: it.Weight}
		},
		fromCore: func(ci core.Item[halfspace.PtN], st PointItemN[T]) PointItemN[T] {
			st.Coords, st.Weight = circular.Unlift(ci.Value), ci.Weight
			return st
		},
		describe: func(q circular.Ball, k int) string {
			return fmt.Sprintf("ball c=%v r=%v k=%d", q.Center, q.R, k)
		},
	}
}

// CircularIndex answers top-k circular range queries (the paper's
// Corollary 1): given a center and radius, return the k heaviest points
// within the ball. Internally the points are lifted to ℝ^(d+1) and served
// by a halfspace structure (the standard lifting trick).
type CircularIndex[T any] struct {
	d int
	facade[circular.Ball, halfspace.PtN, PointItemN[T]]
}

// NewCircularIndex builds an index over d-dimensional items. With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewCircularIndex[T any](items []PointItemN[T], d int, opts ...Option) (*CircularIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	eng, err := newEngine(circularProblem[T](d), items, opts)
	if err != nil {
		return nil, err
	}
	return &CircularIndex[T]{d: d, facade: newFacade(eng)}, nil
}

// Dim returns the index dimension (of the original, unlifted points).
func (ix *CircularIndex[T]) Dim() int { return ix.d }

// TopK returns the k heaviest points within distance r of center,
// heaviest first.
func (ix *CircularIndex[T]) TopK(center []float64, r float64, k int) []PointItemN[T] {
	return ix.eng.TopK(circular.Ball{Center: center, R: r}, k)
}

// ReportAbove streams every point within the ball with weight ≥ tau.
func (ix *CircularIndex[T]) ReportAbove(center []float64, r, tau float64, visit func(PointItemN[T]) bool) {
	ix.eng.ReportAbove(circular.Ball{Center: center, R: r}, tau, visit)
}

// Max returns the heaviest point within the ball (a top-1 query).
func (ix *CircularIndex[T]) Max(center []float64, r float64) (PointItemN[T], bool) {
	return ix.eng.Max(circular.Ball{Center: center, R: r})
}

// QueryBatch answers one top-k ball query per BallQuery on a bounded pool
// of `parallelism` worker goroutines (GOMAXPROCS when <= 0). Each query
// runs in its own cold tracker view, so per-query Stats are independent
// of parallelism; see IntervalIndex.QueryBatch for the full contract.
func (ix *CircularIndex[T]) QueryBatch(qs []BallQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract (see
// IntervalIndex.QueryBatchCtx); a zero ctx is exactly QueryBatch.
func (ix *CircularIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []BallQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	balls := make([]circular.Ball, len(qs))
	for i, q := range qs {
		balls[i] = circular.Ball{Center: q.Center, R: q.Radius}
	}
	return ix.eng.QueryBatchCtx(ctx, balls, k, parallelism)
}

// RestoreCircularIndex reconstructs a circular range index from a
// snapshot stream written by Snapshot. The ambient dimension is read
// from the snapshot header; see RestoreIntervalIndex for the warm-start
// contract.
func RestoreCircularIndex[T any](r io.Reader, opts ...Option) (*CircularIndex[T], error) {
	var d int
	eng, err := restoreEngine(func(h snap.Header) (problem[circular.Ball, halfspace.PtN, PointItemN[T]], error) {
		if h.Dim < 1 {
			return problem[circular.Ball, halfspace.PtN, PointItemN[T]]{}, fmt.Errorf("topk: circular snapshot has invalid dimension %d", h.Dim)
		}
		d = int(h.Dim)
		return circularProblem[T](d), nil
	}, r, opts)
	if err != nil {
		return nil, err
	}
	return &CircularIndex[T]{d: d, facade: newFacade(eng)}, nil
}
