package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/circular"
	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
)

// CircularIndex answers top-k circular range queries (the paper's
// Corollary 1): given a center and radius, return the k heaviest points
// within the ball. Internally the points are lifted to ℝ^(d+1) and served
// by a halfspace structure (the standard lifting trick).
type CircularIndex[T any] struct {
	opts    Options
	d       int
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[circular.Ball, halfspace.PtN]
	dyn     updatableTopK[circular.Ball, halfspace.PtN] // non-nil when built with WithUpdates
	pri     core.Prioritized[circular.Ball, halfspace.PtN]
	data    map[float64]T
	n       int
}

// NewCircularIndex builds an index over d-dimensional items. With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewCircularIndex[T any](items []PointItemN[T], d int, opts ...Option) (*CircularIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[halfspace.PtN], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		if len(it.Coords) != d {
			return nil, fmt.Errorf("topk: item %d has %d coordinates in dimension %d", i, len(it.Coords), d)
		}
		cores[i] = core.Item[halfspace.PtN]{Value: circular.Lift(it.Coords), Weight: it.Weight}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	ix := &CircularIndex[T]{opts: o, d: d, tracker: tracker, data: data, n: len(items)}
	if o.updates {
		dyn, err := newOverlay(cores, circular.Match,
			circular.NewPrioritizedFactory(d, tracker),
			circular.NewMaxFactory(d, tracker),
			circular.Lambda(d), o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	} else {
		t, err := buildTopK(cores, circular.Match,
			circular.NewPrioritizedFactory(d, tracker),
			circular.NewMaxFactory(d, tracker),
			circular.Lambda(d), o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk = t
	}
	ix.pri = prioritizedOf(ix.topk)
	ix.ob = newIndexObs("circular", o, tracker)
	ix.ob.observeShape(ix.n, ix.dyn)
	return ix, nil
}

// Len returns the number of indexed points.
func (ix *CircularIndex[T]) Len() int { return ix.n }

// Dim returns the index dimension (of the original, unlifted points).
func (ix *CircularIndex[T]) Dim() int { return ix.d }

func (ix *CircularIndex[T]) wrap(it core.Item[halfspace.PtN]) PointItemN[T] {
	return PointItemN[T]{Coords: circular.Unlift(it.Value), Weight: it.Weight, Data: ix.data[it.Weight]}
}

// TopK returns the k heaviest points within distance r of center,
// heaviest first.
func (ix *CircularIndex[T]) TopK(center []float64, r float64, k int) []PointItemN[T] {
	t0, before := ix.ob.start()
	res := ix.topk.TopK(circular.Ball{Center: center, R: r}, k)
	ix.ob.done(t0, before, func() string { return fmt.Sprintf("ball c=%v r=%v k=%d", center, r, k) })
	out := make([]PointItemN[T], len(res))
	for i, it := range res {
		out[i] = ix.wrap(it)
	}
	return out
}

// ReportAbove streams every point within the ball with weight ≥ tau.
func (ix *CircularIndex[T]) ReportAbove(center []float64, r, tau float64, visit func(PointItemN[T]) bool) {
	ix.pri.ReportAbove(circular.Ball{Center: center, R: r}, tau, func(it core.Item[halfspace.PtN]) bool {
		return visit(ix.wrap(it))
	})
}

// Max returns the heaviest point within the ball (a top-1 query).
func (ix *CircularIndex[T]) Max(center []float64, r float64) (PointItemN[T], bool) {
	it, ok := maxOfTopK(ix.topk, circular.Ball{Center: center, R: r})
	if !ok {
		return PointItemN[T]{}, false
	}
	return ix.wrap(it), true
}

// Insert adds a point. Only indexes built with WithUpdates support
// updates; others return an error.
func (ix *CircularIndex[T]) Insert(item PointItemN[T]) error {
	if ix.dyn == nil {
		return errStatic(ix.opts.reduction)
	}
	if len(item.Coords) != ix.d {
		return fmt.Errorf("topk: item has %d coordinates in dimension %d", len(item.Coords), ix.d)
	}
	for _, c := range item.Coords {
		if math.IsNaN(c) {
			return fmt.Errorf("topk: NaN coordinate")
		}
	}
	if math.IsNaN(item.Weight) || math.IsInf(item.Weight, 0) {
		return fmt.Errorf("topk: non-finite weight %v", item.Weight)
	}
	if _, dup := ix.data[item.Weight]; dup {
		return fmt.Errorf("topk: duplicate weight %v", item.Weight)
	}
	ci := core.Item[halfspace.PtN]{Value: circular.Lift(item.Coords), Weight: item.Weight}
	if err := ix.dyn.Insert(ci); err != nil {
		return err
	}
	ix.data[item.Weight] = item.Data
	ix.n++
	ix.ob.observeShape(ix.n, ix.dyn)
	return nil
}

// Delete removes the point with the given weight, reporting whether it
// was present. Only indexes built with WithUpdates support updates.
func (ix *CircularIndex[T]) Delete(weight float64) (bool, error) {
	if ix.dyn == nil {
		return false, errStatic(ix.opts.reduction)
	}
	if !ix.dyn.DeleteWeight(weight) {
		return false, nil
	}
	delete(ix.data, weight)
	ix.n--
	ix.ob.observeShape(ix.n, ix.dyn)
	return true, nil
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *CircularIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters.
func (ix *CircularIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// QueryBatch answers one top-k ball query per BallQuery on a bounded pool
// of `parallelism` worker goroutines (GOMAXPROCS when <= 0). Each query
// runs in its own cold tracker view, so per-query Stats are independent
// of parallelism; see IntervalIndex.QueryBatch for the full contract.
func (ix *CircularIndex[T]) QueryBatch(qs []BallQuery, k int, parallelism int) []BatchResult[PointItemN[T]] {
	return runBatch(ix.tracker, ix.ob, qs, parallelism, func(q BallQuery) []PointItemN[T] {
		return ix.TopK(q.Center, q.Radius, k)
	})
}

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (ix *CircularIndex[T]) WriteMetrics(w io.Writer) error { return ix.ob.writeMetrics(w) }
