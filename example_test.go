package topk_test

import (
	"fmt"

	"topk"
)

// The basic flow: build an index over weighted intervals, ask a top-k
// stabbing query, and update it.
func ExampleNewIntervalIndex() {
	sessions := []topk.IntervalItem[string]{
		{Lo: 0, Hi: 45, Weight: 912, Data: "alice"},
		{Lo: 10, Hi: 25, Weight: 340, Data: "bob"},
		{Lo: 15, Hi: 80, Weight: 2048, Data: "carol"},
	}
	ix, err := topk.NewIntervalIndex(sessions)
	if err != nil {
		panic(err)
	}
	for _, s := range ix.TopK(20, 2) {
		fmt.Printf("%s %.0f\n", s.Data, s.Weight)
	}
	_ = ix.Insert(topk.IntervalItem[string]{Lo: 18, Hi: 30, Weight: 5000, Data: "dave"})
	best, _ := ix.Max(20)
	fmt.Println("now best:", best.Data)
	// Output:
	// carol 2048
	// alice 912
	// now best: dave
}

// The paper's dating-website query (Section 1.4): the richest members
// whose preference rectangles contain the querying member.
func ExampleNewEnclosureIndex() {
	members := []topk.RectItem[string]{
		{X1: 25, X2: 35, Y1: 160, Y2: 180, Weight: 90000, Data: "m1"},
		{X1: 20, X2: 30, Y1: 165, Y2: 175, Weight: 120000, Data: "m2"},
		{X1: 30, X2: 40, Y1: 150, Y2: 170, Weight: 75000, Data: "m3"},
	}
	ix, err := topk.NewEnclosureIndex(members)
	if err != nil {
		panic(err)
	}
	// Age 28, height 170: which members' preferences contain me?
	for _, m := range ix.TopK(28, 170, 10) {
		fmt.Printf("%s $%.0f\n", m.Data, m.Weight)
	}
	// Output:
	// m2 $120000
	// m1 $90000
}

// The paper's hotel query (Section 1.4): best-rated hotels within price,
// distance, and security budgets — 3D dominance with the rating as weight.
func ExampleNewDominanceIndex() {
	hotels := []topk.DominanceItem[string]{
		{X: 120, Y: 2.0, Z: 3, Weight: 4.7, Data: "Grand"},
		{X: 80, Y: 0.5, Z: 5, Weight: 4.2, Data: "Plaza"},
		{X: 200, Y: 1.0, Z: 2, Weight: 4.9, Data: "Ritz"},
	}
	ix, err := topk.NewDominanceIndex(hotels)
	if err != nil {
		panic(err)
	}
	// Price ≤ 150, distance ≤ 3km, security rating ≥ 10−5 = 5.
	for _, h := range ix.TopK(150, 3, 5, 2) {
		fmt.Println(h.Data, h.Weight)
	}
	// Output:
	// Grand 4.7
	// Plaza 4.2
}

// Choosing a reduction: the worst-case (Theorem 1) structure is static
// but deterministic in its query bound; the binary-search baseline is the
// prior work the paper improves on.
func ExampleWithReduction() {
	pts := []topk.PointItem1[string]{
		{Pos: 1, Weight: 10, Data: "a"},
		{Pos: 5, Weight: 30, Data: "b"},
		{Pos: 9, Weight: 20, Data: "c"},
	}
	for _, r := range []topk.Reduction{topk.Expected, topk.WorstCase, topk.BinarySearch, topk.FullScan} {
		ix, err := topk.NewRangeIndex(pts, topk.WithReduction(r))
		if err != nil {
			panic(err)
		}
		top := ix.TopK(0, 6, 1)
		fmt.Printf("%v: %s\n", r, top[0].Data)
	}
	// Output:
	// Expected: b
	// WorstCase: b
	// BinarySearch: b
	// FullScan: b
}

// Every index reports its simulated external-memory activity.
func ExampleStats() {
	ix, err := topk.NewRangeIndex([]topk.PointItem1[int]{
		{Pos: 1, Weight: 1}, {Pos: 2, Weight: 2}, {Pos: 3, Weight: 3},
	})
	if err != nil {
		panic(err)
	}
	ix.ResetStats()
	ix.TopK(0, 10, 2)
	st := ix.Stats()
	fmt.Println(st.IOs() > 0, st.Reduction)
	// Output:
	// true Expected
}

// Orthogonal range top-k: the k heaviest points inside an axis box.
func ExampleNewOrthoIndex() {
	pts := []topk.PointItemN[string]{
		{Coords: []float64{1, 1}, Weight: 5, Data: "a"},
		{Coords: []float64{2, 3}, Weight: 9, Data: "b"},
		{Coords: []float64{8, 2}, Weight: 7, Data: "c"},
	}
	ix, err := topk.NewOrthoIndex(pts, 2)
	if err != nil {
		panic(err)
	}
	res, err := ix.TopK([]float64{0, 0}, []float64{5, 5}, 2)
	if err != nil {
		panic(err)
	}
	for _, p := range res {
		fmt.Println(p.Data, p.Weight)
	}
	// Output:
	// b 9
	// a 5
}

// Circular range top-k via the paper's lifting trick.
func ExampleNewCircularIndex() {
	pts := []topk.PointItemN[string]{
		{Coords: []float64{0, 0}, Weight: 1, Data: "origin"},
		{Coords: []float64{3, 4}, Weight: 2, Data: "edge"}, // distance exactly 5
		{Coords: []float64{10, 0}, Weight: 3, Data: "far"},
	}
	ix, err := topk.NewCircularIndex(pts, 2)
	if err != nil {
		panic(err)
	}
	for _, p := range ix.TopK([]float64{0, 0}, 5, 10) {
		fmt.Println(p.Data)
	}
	// Output:
	// edge
	// origin
}

// Halfspace top-k in d dimensions: linear-constraint search.
func ExampleNewHalfspaceIndex() {
	pts := []topk.PointItemN[string]{
		{Coords: []float64{1, 0, 0, 0}, Weight: 10, Data: "x"},
		{Coords: []float64{0, 1, 0, 0}, Weight: 20, Data: "y"},
		{Coords: []float64{-1, 0, 0, 0}, Weight: 30, Data: "-x"},
	}
	ix, err := topk.NewHalfspaceIndex(pts, 4)
	if err != nil {
		panic(err)
	}
	// x₀ ≥ 0 selects "x" and "y" (x₀ = 0 is on the closed boundary).
	for _, p := range ix.TopK([]float64{1, 0, 0, 0}, 0, 10) {
		fmt.Println(p.Data)
	}
	// Output:
	// y
	// x
}

// A batch of queries answered in parallel: each query gets its own
// external-memory tracker view, so results and per-query I/O stats are
// identical to a serial run regardless of the worker count.
func Example_parallelQueries() {
	sessions := []topk.IntervalItem[string]{
		{Lo: 0, Hi: 45, Weight: 912, Data: "alice"},
		{Lo: 15, Hi: 80, Weight: 2048, Data: "carol"},
		{Lo: 30, Hi: 60, Weight: 1501, Data: "bob"},
	}
	ix, err := topk.NewIntervalIndex(sessions)
	if err != nil {
		panic(err)
	}
	// One stabbing query per element; 4 worker goroutines.
	serial := ix.QueryBatch([]float64{10, 40, 70}, 2, 1)
	parallel := ix.QueryBatch([]float64{10, 40, 70}, 2, 4)
	for i, r := range parallel {
		fmt.Printf("t=%v:", []float64{10, 40, 70}[i])
		for _, it := range r.Items {
			fmt.Printf(" %s", it.Data)
		}
		// Per-query I/O cost is measured from a cold private cache, so it
		// does not depend on the parallelism.
		fmt.Println(" sameIOs:", r.Stats == serial[i].Stats)
	}
	// Output:
	// t=10: alice sameIOs: true
	// t=40: carol bob sameIOs: true
	// t=70: carol sameIOs: true
}
