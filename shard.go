package topk

import (
	"fmt"
	"io"
	"strconv"

	"topk/internal/obs"
	"topk/internal/shard"
)

// This file is the sharding layer: a Sharded index partitions one
// workload across S independent engines (each with its own EM tracker
// and reduction-built structure), fans every query out to all shards in
// parallel, and k-way-merges the per-shard answers by weight. The merge
// is the paper's Lemma 2 core-set combine (internal/shard documents the
// one-line argument), so a sharded index answers exactly what a single
// engine over the union would — the conformance suite asserts this for
// every problem × reduction at several shard counts. Updates route to
// the owning shard, so dynamization (WithUpdates, or the native Theorem
// 2 path) composes per shard, and each shard's build, insert, and query
// I/Os stay attributed to that shard's tracker.
//
// Like the single-engine facades, a typed wrapper per problem
// (NewShardedIntervalIndex, …) supplies the query-shaped surface; the
// generic core below is shared by all of them and by the registry's
// shard-aware Served construction.

// ShardPolicy selects how a Sharded index assigns items to shards.
type ShardPolicy int

const (
	// ShardByWeight routes an item to shard hash(weight) mod S. Weights
	// are the global item identity, so build, Insert, and Delete all
	// agree on the owner with no routing table. The default.
	ShardByWeight ShardPolicy = iota
	// ShardRoundRobin deals items to shards in rotation, which keeps
	// shard sizes within one item of each other even for adversarial
	// weight distributions. Deletes are routed through the index's
	// weight→shard table.
	ShardRoundRobin
)

// String returns the policy's name.
func (p ShardPolicy) String() string {
	switch p {
	case ShardByWeight:
		return "ShardByWeight"
	case ShardRoundRobin:
		return "ShardRoundRobin"
	}
	return fmt.Sprintf("ShardPolicy(%d)", int(p))
}

// Sharded is a horizontally partitioned top-k index: S independent
// engines over disjoint subsets of the items, queried in parallel and
// combined by the Lemma 2 merge. It exposes the same surface as a
// single engine; per-query BatchResult stats are the sum of the query's
// per-shard cold-cache costs and remain deterministic and
// parallelism-invariant. The concurrency contract is unchanged: any
// number of goroutines may query, but Insert and Delete require
// exclusive access.
//
// The type parameters mirror the engine's: Q is the query, V the core
// value, It the exported item. Use the per-problem constructors
// (NewShardedIntervalIndex, …), which fix the parameters and add the
// problem-shaped query methods.
type Sharded[Q, V, It any] struct {
	p      problem[Q, V, It]
	opts   Options
	shards []*engine[Q, V, It]
	// owner maps each live weight to its shard, the routing table for
	// Delete (and the global duplicate-weight gate) under any policy.
	owner map[float64]int
	// rr is the round-robin insert cursor (ShardRoundRobin only).
	rr  int
	reg *obs.Registry // shared metrics registry, nil unless WithMetrics
}

// newSharded partitions items by the options' shard policy and builds
// one engine per shard. All shards share one metrics registry (series
// are distinguished by a shard label) but nothing else: trackers,
// structures, and caches are fully independent.
func newSharded[Q, V, It any](p problem[Q, V, It], items []It, shards int, opts []Option) (*Sharded[Q, V, It], error) {
	if shards < 1 {
		return nil, fmt.Errorf("topk: need at least 1 shard, got %d", shards)
	}
	o := applyOptions(opts)
	s := &Sharded[Q, V, It]{p: p, opts: o, owner: make(map[float64]int, len(items))}

	ws := make([]float64, len(items))
	for i, it := range items {
		ws[i] = p.weight(it)
	}
	parts := shard.Assign(ws, shards, o.policy == ShardByWeight)
	for sh, idxs := range parts {
		for _, i := range idxs {
			if prev, dup := s.owner[ws[i]]; dup && prev >= 0 {
				return nil, fmt.Errorf("topk: duplicate weight %v", ws[i])
			}
			s.owner[ws[i]] = sh
		}
	}
	s.rr = len(items) % shards

	if o.metrics {
		s.reg = obs.NewRegistry()
		s.reg.NewGauge("topk_shards", "Shards in the partitioned index.",
			obs.Label{Key: "index", Value: p.name}).Set(int64(shards))
	}
	s.shards = make([]*engine[Q, V, It], shards)
	for sh, idxs := range parts {
		sub := make([]It, len(idxs))
		for j, i := range idxs {
			sub[j] = items[i]
		}
		shOpts := make([]Option, len(opts), len(opts)+2)
		copy(shOpts, opts)
		shOpts = append(shOpts, withShardObs(s.reg, strconv.Itoa(sh)))
		eng, err := newEngine(p, sub, shOpts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
		s.shards[sh] = eng
	}
	return s, nil
}

// withShardObs marks an engine as one shard: metric series go to the
// shared registry under a shard label.
func withShardObs(reg *obs.Registry, label string) Option {
	return func(o *Options) { o.obsReg = reg; o.shardLabel = label }
}

// Shards returns the shard count.
func (s *Sharded[Q, V, It]) Shards() int { return len(s.shards) }

// Policy returns the item-placement policy.
func (s *Sharded[Q, V, It]) Policy() ShardPolicy { return s.opts.policy }

// Len returns the number of live items across all shards.
func (s *Sharded[Q, V, It]) Len() int {
	n := 0
	for _, e := range s.shards {
		n += e.Len()
	}
	return n
}

// ShardLens returns the live item count of each shard — the partition's
// balance, and the observable the routing tests pin down.
func (s *Sharded[Q, V, It]) ShardLens() []int {
	out := make([]int, len(s.shards))
	for i, e := range s.shards {
		out[i] = e.Len()
	}
	return out
}

// TopK returns the k heaviest items satisfying q across all shards,
// heaviest first: every shard answers TopK(q, k) in parallel (one
// worker per shard on a bounded pool), and the per-shard top-k
// core-sets merge by weight (Lemma 2).
func (s *Sharded[Q, V, It]) TopK(q Q, k int) []It {
	per := make([][]It, len(s.shards))
	shard.FanOut(len(s.shards), 0, func(i int) { per[i] = s.shards[i].TopK(q, k) })
	return shard.MergeDesc(per, k, s.p.weight)
}

// Max returns the heaviest item satisfying q (a top-1 query over every
// shard).
func (s *Sharded[Q, V, It]) Max(q Q) (It, bool) {
	type best struct {
		it It
		ok bool
	}
	per := make([]best, len(s.shards))
	shard.FanOut(len(s.shards), 0, func(i int) {
		per[i].it, per[i].ok = s.shards[i].Max(q)
	})
	var out It
	found := false
	for _, b := range per {
		if b.ok && (!found || s.p.weight(b.it) > s.p.weight(out)) {
			out, found = b.it, true
		}
	}
	return out, found
}

// ReportAbove streams every item satisfying q with weight ≥ tau, shard
// by shard (order is unspecified, as on a single engine); return false
// from visit to stop early.
func (s *Sharded[Q, V, It]) ReportAbove(q Q, tau float64, visit func(It) bool) {
	stopped := false
	for _, e := range s.shards {
		if stopped {
			return
		}
		e.ReportAbove(q, tau, func(it It) bool {
			if !visit(it) {
				stopped = true
			}
			return !stopped
		})
	}
}

// QueryBatch answers one top-k query per element of qs: each shard runs
// the whole batch on its own bounded pool of `parallelism` workers
// (GOMAXPROCS when <= 0), the shards running concurrently, and each
// query's per-shard answers merge positionally. A result's Stats are
// the sum of that query's cold-cache costs on every shard — still a
// deterministic function of the query alone, invariant in parallelism —
// and its Trace concatenates the per-shard traces in shard order.
// Batches must not run concurrently with Insert or Delete.
func (s *Sharded[Q, V, It]) QueryBatch(qs []Q, k int, parallelism int) []BatchResult[It] {
	return s.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract (see
// engine.QueryBatchCtx). The deadline is global — one wall clock across
// the fan-out — while the I/O budget is enforced per shard, since shards
// query disjoint data on independent trackers. Per-query merge rules:
//
//   - every shard OK: the usual Lemma-2 merge, OutcomeOK;
//   - any shard aborted with ctx.DegradeToMax: every aborted shard
//     already fell back to its local top-1, so the merged list's head is
//     the exact global maximum — the result is truncated to that correct
//     top-1 prefix and marked OutcomeDegraded;
//   - any shard aborted without the fallback: the merged answer could
//     silently miss that shard's items, so Items is emptied and the
//     worst per-shard Outcome/Err is reported instead — a typed refusal,
//     never a wrong full answer.
func (s *Sharded[Q, V, It]) QueryBatchCtx(ctx QueryCtx, qs []Q, k int, parallelism int) []BatchResult[It] {
	if len(qs) == 0 {
		return nil
	}
	per := make([][]BatchResult[It], len(s.shards))
	shard.FanOut(len(s.shards), 0, func(i int) {
		per[i] = s.shards[i].QueryBatchCtx(ctx, qs, k, parallelism)
	})
	out := make([]BatchResult[It], len(qs))
	lists := make([][]It, len(s.shards))
	for qi := range qs {
		r := &out[qi]
		for si := range s.shards {
			pr := per[si][qi]
			lists[si] = pr.Items
			r.Stats.Reads += pr.Stats.Reads
			r.Stats.Writes += pr.Stats.Writes
			r.Stats.Hits += pr.Stats.Hits
			r.Trace = append(r.Trace, pr.Trace...)
			if pr.Outcome.aborted() && pr.Outcome > r.Outcome {
				r.Outcome = pr.Outcome
			}
			if r.Err == nil {
				r.Err = pr.Err
			}
		}
		r.Items = shard.MergeDesc(lists, k, s.p.weight)
		switch {
		case r.Outcome == OutcomeDegraded:
			if len(r.Items) > 1 {
				r.Items = r.Items[:1]
			}
		case r.Outcome.aborted():
			r.Items = nil
		}
	}
	return out
}

// admitInsert is the sharded validation gate shared by Insert and
// InsertBatch: the same geometry and weight-finiteness checks as a
// single engine, plus global (cross-shard) weight uniqueness against
// the owner map. Both paths report identical error strings — the
// conformance suite pins this — so a caller cannot tell from an error
// which ingest path rejected the item.
func (s *Sharded[Q, V, It]) admitInsert(it It) (float64, error) {
	if err := s.shards[0].validateItem(it); err != nil {
		return 0, err
	}
	w := s.p.weight(it)
	if _, dup := s.owner[w]; dup {
		return 0, fmt.Errorf("topk: duplicate weight %v", w)
	}
	return w, nil
}

// routeInsert picks the owning shard for an admitted weight, given the
// round-robin cursor position rr (ignored under ShardByWeight).
func (s *Sharded[Q, V, It]) routeInsert(w float64, rr int) int {
	if s.opts.policy == ShardRoundRobin {
		return rr
	}
	return shard.Hash(w, len(s.shards))
}

// Insert adds an item to the shard the policy selects, after the same
// validation gate as a single engine: geometry, weight finiteness, and
// global (cross-shard) weight uniqueness.
func (s *Sharded[Q, V, It]) Insert(it It) error {
	if s.shards[0].dyn == nil {
		return errStatic(s.opts.reduction)
	}
	w, err := s.admitInsert(it)
	if err != nil {
		return err
	}
	sh := s.routeInsert(w, s.rr)
	if err := s.shards[sh].Insert(it); err != nil {
		return err
	}
	if s.opts.policy == ShardRoundRobin {
		s.rr = (s.rr + 1) % len(s.shards)
	}
	s.owner[w] = sh
	return nil
}

// InsertBatch adds a batch of items in one cross-shard ingest round:
// one admission pass over the whole batch (the Insert gate item by
// item, plus one duplicate sweep within the batch), then the policy
// routes each item to its owning shard and every shard bulk-loads its
// sub-batch with a single engine InsertBatch. A batch that fails
// admission inserts nothing anywhere.
func (s *Sharded[Q, V, It]) InsertBatch(items []It) error {
	if s.shards[0].dyn == nil {
		return errStatic(s.opts.reduction)
	}
	seen := make(map[float64]struct{}, len(items))
	sub := make([][]It, len(s.shards))
	subW := make([][]float64, len(s.shards))
	rr := s.rr
	for _, it := range items {
		w, err := s.admitInsert(it)
		if err != nil {
			return err
		}
		if _, dup := seen[w]; dup {
			return fmt.Errorf("topk: duplicate weight %v", w)
		}
		seen[w] = struct{}{}
		sh := s.routeInsert(w, rr)
		if s.opts.policy == ShardRoundRobin {
			rr = (rr + 1) % len(s.shards)
		}
		sub[sh] = append(sub[sh], it)
		subW[sh] = append(subW[sh], w)
	}
	for sh, batch := range sub {
		if len(batch) == 0 {
			continue
		}
		if err := s.shards[sh].InsertBatch(batch); err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
		for _, w := range subW[sh] {
			s.owner[w] = sh
		}
	}
	s.rr = rr
	return nil
}

// Delete removes the item with the given weight from its owning shard,
// reporting whether it was present anywhere.
func (s *Sharded[Q, V, It]) Delete(weight float64) (bool, error) {
	if s.shards[0].dyn == nil {
		return false, errStatic(s.opts.reduction)
	}
	sh, ok := s.owner[weight]
	if !ok {
		return false, nil
	}
	deleted, err := s.shards[sh].Delete(weight)
	if err != nil || !deleted {
		return deleted, err
	}
	delete(s.owner, weight)
	return true, nil
}

// DeleteBatch removes the items with the given weights from their
// owning shards, returning how many were present anywhere. The owner
// map routes each weight, so every shard sees one DeleteBatch over
// exactly the weights it holds and runs its structural maintenance
// once for the whole batch.
func (s *Sharded[Q, V, It]) DeleteBatch(weights []float64) (int, error) {
	if s.shards[0].dyn == nil {
		return 0, errStatic(s.opts.reduction)
	}
	sub := make([][]float64, len(s.shards))
	for _, w := range weights {
		sh, ok := s.owner[w]
		if !ok {
			continue
		}
		sub[sh] = append(sub[sh], w)
		delete(s.owner, w)
	}
	found := 0
	for sh, ws := range sub {
		if len(ws) == 0 {
			continue
		}
		n, err := s.shards[sh].DeleteBatch(ws)
		found += n
		if err != nil {
			return found, err
		}
	}
	return found, nil
}

// Items returns a snapshot of the live items across all shards, in
// unspecified order.
func (s *Sharded[Q, V, It]) Items() []It {
	var out []It
	for _, e := range s.shards {
		out = append(out, e.Items()...)
	}
	return out
}

// Stats returns the element-wise sum of every shard's simulated I/O
// counters and space usage.
func (s *Sharded[Q, V, It]) Stats() Stats {
	out := Stats{Reduction: s.opts.reduction}
	for _, e := range s.shards {
		st := e.Stats()
		out.Reads += st.Reads
		out.Writes += st.Writes
		out.Hits += st.Hits
		out.Blocks += st.Blocks
	}
	return out
}

// ShardStats returns each shard's own counters, positionally aligned
// with ShardLens.
func (s *Sharded[Q, V, It]) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, e := range s.shards {
		out[i] = e.Stats()
	}
	return out
}

// ResetStats zeroes every shard's I/O counters (space is preserved).
func (s *Sharded[Q, V, It]) ResetStats() {
	for _, e := range s.shards {
		e.ResetStats()
	}
}

// WriteMetrics renders the shared metrics registry — every shard's
// series under its shard label, plus the topk_shards gauge — in
// Prometheus text exposition format. It errors unless the index was
// built WithMetrics.
func (s *Sharded[Q, V, It]) WriteMetrics(w io.Writer) error {
	if s.reg == nil {
		return fmt.Errorf("topk: metrics not enabled; build the index with WithMetrics()")
	}
	return s.reg.WritePrometheus(w)
}

// StoreStats returns the element-wise sum of every shard's physical
// store counters. All zero unless built WithDiskStore (each shard then
// pages against its own store file).
func (s *Sharded[Q, V, It]) StoreStats() StoreStats {
	var out StoreStats
	for _, e := range s.shards {
		out = out.add(e.StoreStats())
	}
	return out
}

// CacheStats returns the element-wise sum of every shard's cache policy
// decision counters.
func (s *Sharded[Q, V, It]) CacheStats() CacheStats {
	var out CacheStats
	for _, e := range s.shards {
		out = out.add(e.CacheStats())
	}
	return out
}

// StoreErr returns the first disk-store failure observed on any shard,
// nil if none.
func (s *Sharded[Q, V, It]) StoreErr() error {
	for _, e := range s.shards {
		if err := e.StoreErr(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every shard's disk store, returning the first error
// after attempting all shards; idempotent, and a no-op without
// WithDiskStore.
func (s *Sharded[Q, V, It]) Close() error {
	var first error
	for _, e := range s.shards {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
