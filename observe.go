package topk

import (
	"fmt"
	"io"
	"time"

	"topk/internal/dynamic"
	"topk/internal/em"
	"topk/internal/obs"
)

// This file wires the internal/obs observability layer into the index
// facades. Enabling it never changes what is measured: spans and the
// metrics collector only *read* the EM counters, so an instrumented
// query charges exactly the I/Os an uninstrumented one would (the
// observer-effect guarantee tested by BenchmarkTraceOverhead).

// TraceEvent is one span from a query's phase trace: a named phase of a
// reduction's execution together with the EM cost it consumed. It
// mirrors the internal event type so batch results can carry traces
// without exposing internal packages.
type TraceEvent struct {
	// Phase names the span: "t1.*" (Theorem 1), "t2.*" (Theorem 2),
	// "dyn.*" (overlay), or "em.unattributed" for cost outside any span.
	Phase string
	// Level is the structure level the span ran at, -1 if not leveled.
	Level int
	// Arg is a phase-specific size (items probed, candidates merged, …).
	Arg int64
	// Depth is the span's nesting depth; depth-0 spans partition the
	// query's total cost.
	Depth int
	// Reads, Writes, Hits are the EM counter deltas inside the span.
	Reads, Writes, Hits int64
}

// IOs returns the span's read+write total, the EM cost metric.
func (e TraceEvent) IOs() int64 { return e.Reads + e.Writes }

func toPublicTrace(events []em.TraceEvent) []TraceEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		out[i] = TraceEvent{
			Phase: ev.Phase, Level: ev.Level, Arg: ev.Arg, Depth: ev.Depth,
			Reads: ev.Reads, Writes: ev.Writes, Hits: ev.Hits,
		}
	}
	return out
}

// nopSink keeps span recording alive when tracing is requested without
// metrics: installing any sink makes query views buffer their traces.
type nopSink struct{}

func (nopSink) Event(em.TraceEvent)                  {}
func (nopSink) QueryTrace([]em.TraceEvent, em.Stats) {}

// indexObs is one facade's observability state; a nil *indexObs is the
// fully-disabled fast path (every method nil-checks).
type indexObs struct {
	name    string
	shard   string
	tracker *em.Tracker
	reg     *obs.Registry
	qm      *obs.QueryMetrics
	sm      *obs.StoreMetrics
	slow    *obs.SlowQueryLog
	qlog    *obs.QueryLogger
	tracing bool
}

// batchLifecycle carries one batch query's request-lifecycle context
// into the observation layer: the limits it ran under, how it ended,
// and (when it aborted) the raised sentinel.
type batchLifecycle struct {
	ctx     QueryCtx
	k       int
	outcome Outcome
	abort   *em.AbortError
}

// newIndexObs builds the observability state for one index and installs
// the trace sink on its tracker. Returns nil when nothing was enabled.
func newIndexObs(name string, o Options, tracker *em.Tracker) *indexObs {
	if !o.tracing && !o.metrics && o.slowMin <= 0 && o.queryLogW == nil {
		return nil
	}
	ob := &indexObs{name: name, shard: o.shardLabel, tracker: tracker, tracing: o.tracing}
	var sink em.TraceSink = nopSink{}
	if o.metrics {
		// A shard engine registers its series in the Sharded index's
		// shared registry under a shard label; a standalone engine owns
		// its registry outright.
		ob.reg = o.obsReg
		if ob.reg == nil {
			ob.reg = obs.NewRegistry()
		}
		var extra []obs.Label
		if o.shardLabel != "" {
			extra = append(extra, obs.Label{Key: "shard", Value: o.shardLabel})
		}
		ob.qm = obs.NewQueryMetrics(ob.reg, name, extra...)
		ob.sm = obs.NewStoreMetrics(ob.reg, name, o.cachePol.String(), extra...)
		sink = &obs.Collector{M: ob.qm, Phases: obs.NewPhaseIOs(ob.reg, name, extra...)}
	}
	if o.slowMin > 0 {
		keep := o.slowKeep
		if keep <= 0 {
			keep = 64
		}
		ob.slow = obs.NewSlowQueryLog(o.slowW, o.slowMin, keep)
	}
	if o.queryLogW != nil {
		ob.qlog = obs.NewQueryLogger(o.queryLogW)
	}
	tracker.SetTraceSink(sink)
	return ob
}

// start snapshots the clock and shared counters ahead of a single
// (non-batch) query. Inside a query view it returns a zero time so done
// no-ops: the view's end already reports that query exactly, and the
// batch path adds its own latency/slow-log accounting.
func (ob *indexObs) start() (time.Time, em.Stats) {
	if ob == nil || ob.tracker.InView() {
		return time.Time{}, em.Stats{}
	}
	return time.Now(), ob.tracker.Stats()
}

// done accounts a single shared-path query: counter deltas against the
// shared tracker (approximate if shared-path queries overlap; QueryBatch
// gives exact per-query numbers). desc is only invoked when a slow-query
// entry actually fires.
func (ob *indexObs) done(t0 time.Time, before em.Stats, desc func() string) {
	if ob == nil || t0.IsZero() {
		return
	}
	d := time.Since(t0)
	delta := ob.tracker.Stats().Sub(before)
	if ob.qm != nil {
		ob.qm.Queries.Inc()
		ob.qm.Latency.Observe(d.Seconds())
		ob.qm.LatencyQ.Observe(d.Nanoseconds())
		ob.qm.IOs.Observe(float64(delta.IOs()))
		ob.qm.IOsQ.Observe(delta.IOs())
		ob.qm.Hits.Add(delta.Hits)
		ob.qm.Misses.Add(delta.Reads)
	}
	ob.refreshStore()
	ob.observeSlow(d, delta, nil, batchLifecycle{}, desc)
	ob.observeWide(d, delta, nil, batchLifecycle{}, desc)
}

// observeBatch accounts one finished batch query. Its I/O, hit, and
// round metrics were already recorded exactly by the collector when the
// query view ended, so latency, the lifecycle counters, the slow log,
// and the wide-event log remain.
func (ob *indexObs) observeBatch(d time.Duration, st em.Stats, trace []em.TraceEvent, lc batchLifecycle, desc func() string) {
	if ob == nil {
		return
	}
	if ob.qm != nil {
		ob.qm.Latency.Observe(d.Seconds())
		ob.qm.LatencyQ.Observe(d.Nanoseconds())
		if lc.abort != nil {
			switch lc.abort.Reason {
			case em.AbortBudget:
				ob.qm.BudgetAborts.Inc()
			case em.AbortDeadline:
				ob.qm.DeadlineExceeded.Inc()
			}
		}
		if lc.outcome == OutcomeDegraded {
			ob.qm.Degraded.Inc()
		}
	}
	ob.refreshStore()
	ob.observeSlow(d, st, trace, lc, desc)
	ob.observeWide(d, st, trace, lc, desc)
}

func (ob *indexObs) observeSlow(d time.Duration, st em.Stats, trace []em.TraceEvent, lc batchLifecycle, desc func() string) {
	if ob == nil || ob.slow == nil || st.IOs() < ob.slow.MinIOs() {
		return
	}
	if ob.qm != nil {
		ob.qm.SlowQueries.Inc()
	}
	meta := obs.SlowMeta{Outcome: lc.outcome.String(), Budget: lc.ctx.IOBudget}
	if !lc.ctx.Deadline.IsZero() {
		meta.HasDeadline = true
		meta.Slack = time.Until(lc.ctx.Deadline)
	}
	ob.slow.Record(ob.name, desc(), d, st, trace, meta)
}

// observeWide emits the one-line JSON wide event for a finished query
// when the index was built WithQueryLog: identity, cost, per-phase I/O
// split, lifecycle limits, and outcome in a single row.
func (ob *indexObs) observeWide(d time.Duration, st em.Stats, trace []em.TraceEvent, lc batchLifecycle, desc func() string) {
	if ob == nil || ob.qlog == nil {
		return
	}
	ev := obs.WideEvent{
		Problem:   ob.name,
		Shard:     ob.shard,
		Query:     desc(),
		K:         lc.k,
		LatencyUS: d.Microseconds(),
		Reads:     st.Reads,
		Writes:    st.Writes,
		Hits:      st.Hits,
		IOs:       st.IOs(),
		HitRate:   QueryStats{Reads: st.Reads, Writes: st.Writes, Hits: st.Hits}.HitRate(),
		BudgetIOs: lc.ctx.IOBudget,
		Outcome:   lc.outcome.String(),
	}
	if lc.ctx.IOBudget < 0 {
		ev.BudgetIOs = 0
	}
	for _, t := range trace {
		if t.Depth != 0 {
			continue
		}
		if ev.PhaseIOs == nil {
			ev.PhaseIOs = make(map[string]int64, 8)
		}
		ev.PhaseIOs[t.Phase] += t.Reads + t.Writes
	}
	if !lc.ctx.Deadline.IsZero() {
		slack := time.Until(lc.ctx.Deadline).Microseconds()
		ev.DeadlineSlackUS = &slack
	}
	ob.qlog.Log(ev)
}

// observeUpdate records the exact I/O delta of one Insert or Delete into
// the per-operation update-cost series. Flush and rebuild spikes inside
// the same operation additionally land in their own series via the
// collector's Event path, so the amortized median and the spike tail
// stay separable.
func (ob *indexObs) observeUpdate(delta em.Stats) {
	if ob == nil || ob.qm == nil {
		return
	}
	ob.qm.UpdateIOs.Observe(delta.IOs())
}

// observeShape refreshes the structural gauges after construction,
// Insert, or Delete. dyn is the facade's updatable engine (may be nil or
// a non-overlay engine; only the overlay reports levels, and only the
// buffered policy keeps pending runs, so the extra gauges read zero
// everywhere else).
func (ob *indexObs) observeShape(n int, dyn any) {
	if ob == nil || ob.qm == nil {
		return
	}
	ob.qm.Items.Set(int64(n))
	if o, ok := dyn.(interface{ Stats() dynamic.Stats }); ok {
		st := o.Stats()
		ob.qm.Levels.Set(int64(st.Levels))
		ob.qm.BufferedRuns.Set(int64(st.BufferedRuns))
		ob.qm.BufferedItems.Set(int64(st.BufferedItems))
	}
	ob.refreshStore()
}

// refreshStore re-publishes the cache-policy and physical-store counter
// snapshots as gauge values. Snapshots are cheap (a handful of atomic
// loads), so the refresh rides every metrics touch point.
func (ob *indexObs) refreshStore() {
	if ob == nil || ob.sm == nil {
		return
	}
	cs := ob.tracker.CacheStats()
	ob.sm.Evictions.Set(cs.Evictions)
	ob.sm.AdmissionRejects.Set(cs.AdmissionRejects)
	ob.sm.SketchResets.Set(cs.SketchResets)
	ss := ob.tracker.StoreStats()
	ob.sm.StoreReads.Set(ss.Reads)
	ob.sm.StoreWrites.Set(ss.Writes)
	ob.sm.StoreReadBytes.Set(ss.BytesRead)
	ob.sm.StoreWriteBytes.Set(ss.BytesWritten)
	ob.sm.StoreFaults.Set(ob.tracker.FaultCount())
}

// wantTrace reports whether batch results should carry public traces.
func (ob *indexObs) wantTrace() bool { return ob != nil && ob.tracing }

// writeMetrics renders the index's metrics in Prometheus text format.
func (ob *indexObs) writeMetrics(w io.Writer) error {
	if ob == nil || ob.reg == nil {
		return fmt.Errorf("topk: metrics not enabled; build the index with WithMetrics()")
	}
	return ob.reg.WritePrometheus(w)
}

// slowLog exposes the slow-query ring buffer (nil when not enabled).
func (ob *indexObs) slowLog() *obs.SlowQueryLog {
	if ob == nil {
		return nil
	}
	return ob.slow
}
