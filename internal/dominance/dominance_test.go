package dominance

import (
	"math"
	"sort"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/wrand"
)

func genPoints(g *wrand.RNG, n int) []core.Item[Pt3] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]core.Item[Pt3], n)
	for i := range items {
		items[i] = core.Item[Pt3]{
			Value:  Pt3{X: g.Float64() * 100, Y: g.Float64() * 100, Z: g.Float64() * 100},
			Weight: ws[i],
		}
	}
	return items
}

func oracleAbove(items []core.Item[Pt3], q Pt3, tau float64) []core.Item[Pt3] {
	var out []core.Item[Pt3]
	for _, it := range items {
		if it.Weight >= tau && Match(q, it.Value) {
			out = append(out, it)
		}
	}
	core.SortByWeightDesc(out)
	return out
}

func oracleMax(items []core.Item[Pt3], q Pt3) (core.Item[Pt3], bool) {
	best, ok := core.Item[Pt3]{Weight: math.Inf(-1)}, false
	for _, it := range items {
		if Match(q, it.Value) && it.Weight > best.Weight {
			best, ok = it, true
		}
	}
	return best, ok
}

func oracleMinZ(items []core.Item[Pt3], q Pt3) (core.Item[Pt3], bool) {
	best, ok := core.Item[Pt3]{Value: Pt3{Z: math.Inf(1)}}, false
	for _, it := range items {
		if Match(q, it.Value) && it.Value.Z < best.Value.Z {
			best, ok = it, true
		}
	}
	return best, ok
}

func TestMatch(t *testing.T) {
	q := Pt3{5, 5, 5}
	if !Match(q, Pt3{5, 5, 5}) {
		t.Error("boundary point should match (closed dominance)")
	}
	if !Match(q, Pt3{1, 2, 3}) {
		t.Error("dominated point should match")
	}
	if Match(q, Pt3{6, 1, 1}) || Match(q, Pt3{1, 6, 1}) || Match(q, Pt3{1, 1, 6}) {
		t.Error("point exceeding any coordinate should not match")
	}
}

func TestMinZAgainstOracle(t *testing.T) {
	g := wrand.New(1)
	items := genPoints(g, 1500)
	m := NewMinZ(items, nil)
	if m.N() != 1500 {
		t.Fatalf("N = %d", m.N())
	}
	for trial := 0; trial < 400; trial++ {
		q := Pt3{g.Float64() * 110, g.Float64() * 110, g.Float64() * 110}
		got, gok := m.MinItem(q)
		want, wok := oracleMinZ(items, q)
		if gok != wok {
			t.Fatalf("q=%+v: ok=%v, want %v", q, gok, wok)
		}
		if gok && got.Value.Z != want.Value.Z {
			t.Fatalf("q=%+v: minZ=%v, want %v", q, got.Value.Z, want.Value.Z)
		}
		if gok != m.NonEmpty(q) {
			t.Fatalf("NonEmpty disagrees with MinItem at %+v", q)
		}
	}
}

func TestMinZBoundaryQueries(t *testing.T) {
	// Probe exactly at point coordinates: closed dominance must include
	// the boundary.
	g := wrand.New(2)
	items := genPoints(g, 200)
	m := NewMinZ(items, nil)
	for _, it := range items {
		q := it.Value
		got, ok := m.MinItem(q)
		want, _ := oracleMinZ(items, q)
		if !ok {
			t.Fatalf("query at point %+v found nothing (the point dominates itself)", q)
		}
		if got.Value.Z != want.Value.Z {
			t.Fatalf("q=%+v: minZ=%v, want %v", q, got.Value.Z, want.Value.Z)
		}
	}
}

func TestMinZDegenerateInputs(t *testing.T) {
	m := NewMinZ(nil, nil)
	if m.NonEmpty(Pt3{1, 1, 1}) {
		t.Fatal("empty structure non-empty")
	}
	one := []core.Item[Pt3]{{Value: Pt3{5, 5, 5}, Weight: 1}}
	m = NewMinZ(one, nil)
	if !m.NonEmpty(Pt3{5, 5, 5}) {
		t.Fatal("singleton not found at its own corner")
	}
	if m.NonEmpty(Pt3{4.999, 5, 5}) {
		t.Fatal("found point outside the x constraint")
	}

	// All points on a shared x (duplicate sweep coordinates).
	g := wrand.New(3)
	ws := g.UniqueFloats(50, 100)
	var same []core.Item[Pt3]
	for i := 0; i < 50; i++ {
		same = append(same, core.Item[Pt3]{Value: Pt3{42, g.Float64() * 10, g.Float64() * 10}, Weight: ws[i]})
	}
	m = NewMinZ(same, nil)
	for trial := 0; trial < 50; trial++ {
		q := Pt3{42, g.Float64() * 12, g.Float64() * 12}
		_, gok := m.MinItem(q)
		_, wok := oracleMinZ(same, q)
		if gok != wok {
			t.Fatalf("shared-x: q=%+v ok=%v want %v", q, gok, wok)
		}
	}
}

func TestMaxAgainstOracle(t *testing.T) {
	g := wrand.New(4)
	items := genPoints(g, 800)
	m, err := NewMax(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		q := Pt3{g.Float64() * 110, g.Float64() * 110, g.Float64() * 110}
		got, gok := m.MaxItem(q)
		want, wok := oracleMax(items, q)
		if gok != wok {
			t.Fatalf("q=%+v: ok=%v, want %v", q, gok, wok)
		}
		if gok && got.Weight != want.Weight {
			t.Fatalf("q=%+v: max=%v, want %v", q, got.Weight, want.Weight)
		}
	}
}

func TestMaxRejectsDuplicates(t *testing.T) {
	items := []core.Item[Pt3]{
		{Value: Pt3{1, 1, 1}, Weight: 5},
		{Value: Pt3{2, 2, 2}, Weight: 5},
	}
	if _, err := NewMax(items, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
	if _, err := NewPrioritized(items, nil); err == nil {
		t.Fatal("duplicate weights accepted by Prioritized")
	}
}

func TestPrioritizedAgainstOracle(t *testing.T) {
	g := wrand.New(5)
	items := genPoints(g, 1200)
	p, err := NewPrioritized(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 1200 {
		t.Fatalf("N = %d", p.N())
	}
	for trial := 0; trial < 200; trial++ {
		q := Pt3{g.Float64() * 110, g.Float64() * 110, g.Float64() * 110}
		tau := g.Float64() * 1.2e6
		var got []core.Item[Pt3]
		p.ReportAbove(q, tau, func(it core.Item[Pt3]) bool {
			got = append(got, it)
			return true
		})
		core.SortByWeightDesc(got)
		want := oracleAbove(items, q, tau)
		if len(got) != len(want) {
			t.Fatalf("q=%+v tau=%v: got %d, want %d", q, tau, len(got), len(want))
		}
		for i := range got {
			if got[i].Weight != want[i].Weight {
				t.Fatalf("q=%+v: item %d weight %v, want %v", q, i, got[i].Weight, want[i].Weight)
			}
		}
	}
}

func TestPrioritizedTauEdges(t *testing.T) {
	g := wrand.New(6)
	items := genPoints(g, 300)
	p, _ := NewPrioritized(items, nil)
	q := Pt3{110, 110, 110} // everything matches spatially

	count := 0
	p.ReportAbove(q, math.Inf(-1), func(core.Item[Pt3]) bool { count++; return true })
	if count != len(items) {
		t.Fatalf("tau=-inf reported %d, want all %d", count, len(items))
	}
	count = 0
	p.ReportAbove(q, math.Inf(1), func(core.Item[Pt3]) bool { count++; return true })
	if count != 0 {
		t.Fatalf("tau=+inf reported %d, want 0", count)
	}
	// tau exactly at an existing weight: that item must be included.
	sorted := append([]core.Item[Pt3](nil), items...)
	core.SortByWeightDesc(sorted)
	tau := sorted[10].Weight
	count = 0
	p.ReportAbove(q, tau, func(core.Item[Pt3]) bool { count++; return true })
	if count != 11 {
		t.Fatalf("tau at rank-11 weight reported %d, want 11", count)
	}
}

func TestPrioritizedEarlyStop(t *testing.T) {
	g := wrand.New(7)
	items := genPoints(g, 500)
	p, _ := NewPrioritized(items, nil)
	count := 0
	p.ReportAbove(Pt3{110, 110, 110}, math.Inf(-1), func(core.Item[Pt3]) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d, want 7", count)
	}
}

func TestPrioritizedIOCharging(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 4})
	g := wrand.New(8)
	items := genPoints(g, 1<<12)
	p, err := NewPrioritized(items, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.DropCache()
	tr.ResetCounters()
	count := 0
	p.ReportAbove(Pt3{50, 50, 50}, math.Inf(-1), func(core.Item[Pt3]) bool { count++; return true })
	ios := tr.Stats().IOs()
	if count > 0 && ios == 0 {
		t.Fatal("query charged no I/Os")
	}
	if ios > int64(count)+200 {
		t.Errorf("query charged %d I/Os for %d results; too far from polylog + t/B", ios, count)
	}
}

func TestMinZVersionCountMatchesSweep(t *testing.T) {
	g := wrand.New(9)
	items := genPoints(g, 256)
	m := NewMinZ(items, nil)
	if len(m.versions) != len(items)+1 {
		t.Fatalf("%d versions, want n+1 = %d", len(m.versions), len(items)+1)
	}
	// Version sizes are monotone ≤ and the staircase is strictly
	// y-increasing / z-decreasing in every version.
	for i, v := range m.versions {
		var prevY, prevZ float64
		first := true
		okStair := true
		v.Ascend(math.Inf(-1), func(k float64, val stepVal) bool {
			if !first && (k <= prevY || val.z >= prevZ) {
				okStair = false
				return false
			}
			prevY, prevZ, first = k, val.z, false
			return true
		})
		if !okStair {
			t.Fatalf("version %d staircase violated monotonicity", i)
		}
	}
	_ = sort.Float64sAreSorted(m.xs)
}
