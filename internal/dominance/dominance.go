// Package dominance implements the building blocks of the paper's
// Theorem 6 (top-k 3D dominance): given weighted points in ℝ³ and a query
// corner q = (x, y, z), an element e satisfies q when e_x ≤ x, e_y ≤ y and
// e_z ≤ z ("the hotels at most this expensive, this far, this insecure").
//
// Three structures are provided:
//
//   - MinZ: a 3D dominance emptiness/min structure — "is any point
//     dominated by q, and which dominated point has minimal z?" — built by
//     sweeping x and recording one persistent version of the (y → min z)
//     staircase per point (the Sarnak–Tarjan idea the paper's point-
//     location subroutine rests on). O(n log n) space, O(log n) query.
//   - Max (via core.MaxFromEmptiness over MinZ): the max-reporting
//     structure playing the role of the paper's winner-region point
//     location [27], with O(log² n) query instead of O(log^1.5 n) — see
//     DESIGN.md's substitution table.
//   - Prioritized: 4-constraint dominance reporting (x, y, z, weight ≥ τ),
//     the role of Afshani–Arge–Larsen 4D dominance [2], as a three-level
//     canonical decomposition (weight prefix → x prefix → y-sorted arrays
//     with an implicit min-z segment tree). O(n log² n) space,
//     O(log³ n + t) query.
package dominance

import (
	"sort"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/pstree"
)

// Pt3 is a point in ℝ³. It doubles as the query type: interpreted as a
// query, it is the dominance corner (x, y, z).
type Pt3 struct {
	X, Y, Z float64
}

// Match reports whether e is dominated by the query corner q.
func Match(q Pt3, e Pt3) bool { return e.X <= q.X && e.Y <= q.Y && e.Z <= q.Z }

// Lambda is the polynomial-boundedness exponent: distinct outcomes q(D)
// are determined by the coordinate ranks of (x, y, z), so there are at
// most (n+1)³ of them.
const Lambda = 3

// stepVal is one staircase step: the minimal z among swept points with
// e_y ≤ y for y at/after the step's key, plus the point realizing it.
type stepVal struct {
	z  float64
	it core.Item[Pt3]
}

// MinZ answers 3D dominance min-z (and hence emptiness) queries on a
// static point set.
type MinZ struct {
	xs       []float64 // x-coordinates, ascending (with duplicates)
	versions []pstree.Version[stepVal]
	tracker  *em.Tracker
}

// NewMinZ builds the sweep structure. tracker may be nil.
func NewMinZ(items []core.Item[Pt3], tracker *em.Tracker) *MinZ {
	pts := make([]core.Item[Pt3], len(items))
	copy(pts, items)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Value.X < pts[j].Value.X })

	m := &MinZ{
		xs:       make([]float64, len(pts)),
		versions: make([]pstree.Version[stepVal], 1, len(pts)+1),
		tracker:  tracker,
	}
	if tracker != nil && len(pts) > 0 {
		// Path copying stores O(log n) persistent nodes (~6 words each)
		// per sweep event.
		tracker.AllocRun(int(em.BlocksFor(len(pts), 6*(log2ceil(len(pts))+1), tracker.B())))
	}
	var cur pstree.Version[stepVal]
	for i, it := range pts {
		m.xs[i] = it.Value.X
		p := it.Value
		// Skip if the staircase is already at or below z at p.Y.
		if _, fv, ok := cur.Floor(p.Y); !ok || fv.z > p.Z {
			// Splice out the superseded steps: keys ≥ p.Y with z ≥ p.Z
			// form a contiguous run (z strictly decreases along steps).
			last, has := p.Y, false
			cur.Ascend(p.Y, func(k float64, v stepVal) bool {
				if v.z >= p.Z {
					last, has = k, true
					return true
				}
				return false
			})
			if has {
				cur, _ = cur.DeleteRange(p.Y, last)
			}
			cur = cur.Insert(p.Y, stepVal{z: p.Z, it: it})
		}
		m.versions = append(m.versions, cur)
	}
	return m
}

// N returns the number of indexed points.
func (m *MinZ) N() int { return len(m.xs) }

// MinItem returns a point dominated by q with the minimal z-coordinate.
func (m *MinZ) MinItem(q Pt3) (core.Item[Pt3], bool) {
	if m.tracker != nil {
		m.tracker.PathCost(2*log2ceil(len(m.xs)) + 2)
	}
	v := sort.Search(len(m.xs), func(i int) bool { return m.xs[i] > q.X })
	_, fv, ok := m.versions[v].Floor(q.Y)
	if !ok || fv.z > q.Z {
		return core.Item[Pt3]{}, false
	}
	return fv.it, true
}

// NonEmpty implements core.Emptiness[Pt3].
func (m *MinZ) NonEmpty(q Pt3) bool {
	_, ok := m.MinItem(q)
	return ok
}

// NewEmptinessFactory adapts MinZ to the core emptiness-factory signature.
func NewEmptinessFactory(tracker *em.Tracker) core.EmptinessFactory[Pt3, Pt3] {
	return func(items []core.Item[Pt3]) core.Emptiness[Pt3] {
		return NewMinZ(items, tracker)
	}
}

// NewMax builds the max-reporting structure for 3D dominance: the
// emptiness-hierarchy combinator over MinZ structures.
func NewMax(items []core.Item[Pt3], tracker *em.Tracker) (*core.MaxFromEmptiness[Pt3, Pt3], error) {
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	return core.NewMaxFromEmptiness(items, NewEmptinessFactory(tracker), tracker), nil
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}
