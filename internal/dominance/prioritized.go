package dominance

import (
	"sort"

	"topk/internal/core"
	"topk/internal/em"
)

// Prioritized answers prioritized 3D dominance queries: report every point
// e with e ≤ q coordinate-wise and weight ≥ τ. This is 4D dominance
// reporting (the paper plugs in Afshani–Arge–Larsen here); our
// construction is a three-level canonical decomposition:
//
//	level 1: weight — items sorted weight-descending; {w ≥ τ} is a prefix,
//	         covered by O(log n) canonical nodes of a binary prefix tree;
//	level 2: x — within each weight node, points sorted by x; {x ≤ q_x} is
//	         again a prefix with its own canonical tree;
//	level 3: (y, z) — within each x node, points sorted by y with an
//	         implicit min-z segment tree, reporting {y ≤ q_y, z ≤ q_z}
//	         output-sensitively by pruning subtrees with min-z > q_z.
//
// Query O(log³ n + t·log n) worst-case, space O(n log² n) words.
type Prioritized struct {
	tracker *em.Tracker
	byW     []core.Item[Pt3] // weight-descending
	root    *wnode
}

const leafCut = 16 // below this, scan linearly instead of subdividing

type wnode struct {
	items       []core.Item[Pt3] // weight-descending slice of byW
	rep         *rep3            // nil for leaves
	left, right *wnode           // heavier / lighter halves
}

// rep3 reports 3D dominance (x, y, z ≤ q) over a fixed set.
type rep3 struct {
	byX  []core.Item[Pt3] // x-ascending
	root *xnode
}

type xnode struct {
	items       []core.Item[Pt3] // x-ascending slice
	yz          *yzIndex         // nil for leaves
	left, right *xnode
}

// yzIndex holds points sorted by y with an implicit min-z segment tree.
type yzIndex struct {
	ys    []float64
	zs    []float64
	items []core.Item[Pt3]
	seg   []float64 // seg[1] is the root; min z per range
}

// NewPrioritized builds the structure. tracker may be nil.
func NewPrioritized(items []core.Item[Pt3], tracker *em.Tracker) (*Prioritized, error) {
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	byW := make([]core.Item[Pt3], len(items))
	copy(byW, items)
	core.SortByWeightDesc(byW)
	p := &Prioritized{tracker: tracker, byW: byW}
	p.root = p.buildW(byW)
	if tracker != nil && len(byW) > 0 {
		// Every point occupies one 4-word slot in the y-sorted arrays of
		// each (weight node × x node) pair it belongs to: O(log² n)
		// copies.
		l := log2ceil(len(byW)/leafCut + 1)
		tracker.AllocRun(int(em.BlocksFor(len(byW), 4*(l*l+1), tracker.B())))
	}
	return p, nil
}

func (p *Prioritized) buildW(items []core.Item[Pt3]) *wnode {
	if len(items) == 0 {
		return nil
	}
	nd := &wnode{items: items}
	if len(items) <= leafCut {
		return nd
	}
	nd.rep = newRep3(items)
	mid := len(items) / 2
	nd.left = p.buildW(items[:mid])
	nd.right = p.buildW(items[mid:])
	return nd
}

func newRep3(items []core.Item[Pt3]) *rep3 {
	byX := make([]core.Item[Pt3], len(items))
	copy(byX, items)
	sort.Slice(byX, func(i, j int) bool { return byX[i].Value.X < byX[j].Value.X })
	r := &rep3{byX: byX}
	r.root = buildX(byX)
	return r
}

func buildX(items []core.Item[Pt3]) *xnode {
	if len(items) == 0 {
		return nil
	}
	nd := &xnode{items: items}
	if len(items) <= leafCut {
		return nd
	}
	nd.yz = newYZIndex(items)
	mid := len(items) / 2
	nd.left = buildX(items[:mid])
	nd.right = buildX(items[mid:])
	return nd
}

func newYZIndex(items []core.Item[Pt3]) *yzIndex {
	byY := make([]core.Item[Pt3], len(items))
	copy(byY, items)
	sort.Slice(byY, func(i, j int) bool { return byY[i].Value.Y < byY[j].Value.Y })
	idx := &yzIndex{
		ys:    make([]float64, len(byY)),
		zs:    make([]float64, len(byY)),
		items: byY,
		seg:   make([]float64, 4*len(byY)),
	}
	for i, it := range byY {
		idx.ys[i] = it.Value.Y
		idx.zs[i] = it.Value.Z
	}
	idx.buildSeg(1, 0, len(byY))
	return idx
}

func (idx *yzIndex) buildSeg(node, a, b int) float64 {
	if b-a == 1 {
		idx.seg[node] = idx.zs[a]
		return idx.zs[a]
	}
	mid := (a + b) / 2
	l := idx.buildSeg(2*node, a, mid)
	r := idx.buildSeg(2*node+1, mid, b)
	if r < l {
		l = r
	}
	idx.seg[node] = l
	return l
}

// report emits every entry with y ≤ yMax and z ≤ zMax; returns false if
// emit stopped early. visited counts touched segment nodes.
func (idx *yzIndex) report(yMax, zMax float64, emit func(core.Item[Pt3]) bool, visited *int64) bool {
	cnt := sort.SearchFloat64s(idx.ys, yMax)
	for cnt < len(idx.ys) && idx.ys[cnt] == yMax {
		cnt++
	}
	*visited += int64(log2ceil(len(idx.ys)) + 1)
	if cnt == 0 {
		return true
	}
	return idx.reportSeg(1, 0, len(idx.ys), cnt, zMax, emit, visited)
}

func (idx *yzIndex) reportSeg(node, a, b, cnt int, zMax float64, emit func(core.Item[Pt3]) bool, visited *int64) bool {
	if a >= cnt {
		return true
	}
	*visited++
	if idx.seg[node] > zMax {
		return true
	}
	if b-a == 1 {
		return emit(idx.items[a])
	}
	mid := (a + b) / 2
	if !idx.reportSeg(2*node, a, mid, cnt, zMax, emit, visited) {
		return false
	}
	return idx.reportSeg(2*node+1, mid, b, cnt, zMax, emit, visited)
}

// query reports points with Value ≤ (q.X, q.Y, q.Z) within the rep3 set.
func (r *rep3) query(q Pt3, emit func(core.Item[Pt3]) bool, visited *int64) bool {
	cnt := sort.Search(len(r.byX), func(i int) bool { return r.byX[i].Value.X > q.X })
	*visited += int64(log2ceil(len(r.byX)) + 1)
	return queryX(r.root, cnt, q, emit, visited)
}

// queryX covers the x-prefix of length cnt with canonical nodes.
func queryX(nd *xnode, cnt int, q Pt3, emit func(core.Item[Pt3]) bool, visited *int64) bool {
	if nd == nil || cnt <= 0 {
		return true
	}
	*visited++
	if nd.yz == nil { // leaf: partial linear scan of the x-prefix
		limit := min(cnt, len(nd.items))
		for _, it := range nd.items[:limit] {
			if it.Value.Y <= q.Y && it.Value.Z <= q.Z {
				if !emit(it) {
					return false
				}
			}
		}
		return true
	}
	if cnt >= len(nd.items) { // node fully inside the prefix
		return nd.yz.report(q.Y, q.Z, emit, visited)
	}
	lsize := len(nd.left.items)
	if cnt <= lsize {
		return queryX(nd.left, cnt, q, emit, visited)
	}
	if !queryX(nd.left, lsize, q, emit, visited) {
		return false
	}
	return queryX(nd.right, cnt-lsize, q, emit, visited)
}

// ReportAbove implements core.Prioritized[Pt3, Pt3].
func (p *Prioritized) ReportAbove(q Pt3, tau float64, emit func(core.Item[Pt3]) bool) {
	// visited is a per-query local (not a receiver field) so that any
	// number of ReportAbove calls can run concurrently on one structure.
	var visited int64
	emitted := 0
	defer func() {
		if p.tracker != nil {
			// Segment-tree visits attributable to emission (≈ 2 per
			// reported leaf) are paid by the packed output scan; only the
			// residual search nodes pay path cost.
			search := int(visited) - 2*emitted
			if search < 0 {
				search = 0
			}
			p.tracker.PathCost(search)
			p.tracker.ScanCost(emitted)
		}
	}()
	// {w ≥ τ} is the prefix of byW before the first weight < τ.
	cnt := sort.Search(len(p.byW), func(i int) bool { return p.byW[i].Weight < tau })
	visited += int64(log2ceil(len(p.byW)) + 1)
	wrapped := func(it core.Item[Pt3]) bool {
		emitted++
		return emit(it)
	}
	p.queryW(p.root, cnt, q, wrapped, &visited)
}

func (p *Prioritized) queryW(nd *wnode, cnt int, q Pt3, emit func(core.Item[Pt3]) bool, visited *int64) bool {
	if nd == nil || cnt <= 0 {
		return true
	}
	*visited++
	if nd.rep == nil { // leaf: partial scan of the weight-prefix
		limit := min(cnt, len(nd.items))
		for _, it := range nd.items[:limit] {
			if Match(q, it.Value) {
				if !emit(it) {
					return false
				}
			}
		}
		return true
	}
	if cnt >= len(nd.items) {
		return nd.rep.query(q, emit, visited)
	}
	lsize := len(nd.left.items)
	if cnt <= lsize {
		return p.queryW(nd.left, cnt, q, emit, visited)
	}
	if !p.queryW(nd.left, lsize, q, emit, visited) {
		return false
	}
	return p.queryW(nd.right, cnt-lsize, q, emit, visited)
}

// N returns the number of indexed points.
func (p *Prioritized) N() int { return len(p.byW) }

// NewPrioritizedFactory adapts the constructor to the reduction factory
// signature; build errors panic (the reductions only pass back subsets of
// an input that was already validated).
func NewPrioritizedFactory(tracker *em.Tracker) core.PrioritizedFactory[Pt3, Pt3] {
	return func(items []core.Item[Pt3]) core.Prioritized[Pt3, Pt3] {
		s, err := NewPrioritized(items, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}

// NewMaxFactory adapts NewMax to the reduction factory signature.
func NewMaxFactory(tracker *em.Tracker) core.MaxFactory[Pt3, Pt3] {
	return func(items []core.Item[Pt3]) core.Max[Pt3, Pt3] {
		s, err := NewMax(items, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}
