package core

import (
	"math"
	"sync/atomic"

	"topk/internal/em"
)

// This file implements the OTHER prior-work reduction the paper surveys
// (Section 2): Rahul–Janardan's conversion of top-k reporting to
// (approximate) counting plus conventional reporting,
//
//	S_top(n) = O((S_rep(n) + S_cnt(n)) · log n)
//	Q_top(n) = O((Q_rep(n) + Q_cnt(n)) · log n) + O(k/B).
//
// Construction: a balanced binary tree over the weight-descending order;
// every node holds a counting structure and a reporting structure over its
// contiguous weight range. A top-k query descends from the root: if the
// heavier child contains ≥ k satisfying elements, recurse into it;
// otherwise report the heavier child entirely and continue into the
// lighter child for the remainder.
//
// The counting structure may over-approximate by a constant factor (the
// paper's improvement over exact counting): the query algorithm recovers
// from an optimistic descent by filling the shortfall from the lighter
// sibling, preserving correctness for any over-approximation.

// Counting answers (approximate) counting queries: Count must return a
// value in [|q(S)|, c·|q(S)|] for a constant c ≥ 1.
type Counting[Q any] interface {
	Count(q Q) int
}

// CountingFactory builds a counting structure over a subset of items.
type CountingFactory[Q, V any] func(items []Item[V]) Counting[Q]

// CountingBaseline is the counting+reporting top-k structure of [28] as
// surveyed in the paper's Section 2. It implements TopK[Q, V].
type CountingBaseline[Q, V any] struct {
	tracker *em.Tracker
	root    *cbNode[Q, V]
	n       int
	// countQueries instruments the number of counting probes
	// (~log₂ n per top-k query); atomic because queries may run
	// concurrently.
	countQueries atomic.Int64
}

type cbNode[Q, V any] struct {
	cnt          Counting[Q]
	rep          Prioritized[Q, V]
	size         int
	heavy, light *cbNode[Q, V]
}

// NewCountingBaseline builds the structure over items. newCnt and newRep
// are invoked once per tree node on its weight-contiguous subset.
func NewCountingBaseline[Q, V any](
	items []Item[V],
	newCnt CountingFactory[Q, V],
	newRep PrioritizedFactory[Q, V],
	tracker *em.Tracker,
) (*CountingBaseline[Q, V], error) {
	if err := ValidateWeights(items); err != nil {
		return nil, err
	}
	sorted := make([]Item[V], len(items))
	copy(sorted, items)
	SortByWeightDesc(sorted)
	c := &CountingBaseline[Q, V]{tracker: tracker, n: len(items)}
	c.root = c.build(sorted, newCnt, newRep)
	return c, nil
}

func (c *CountingBaseline[Q, V]) build(
	sorted []Item[V],
	newCnt CountingFactory[Q, V],
	newRep PrioritizedFactory[Q, V],
) *cbNode[Q, V] {
	if len(sorted) == 0 {
		return nil
	}
	nd := &cbNode[Q, V]{
		cnt:  newCnt(sorted),
		rep:  newRep(sorted),
		size: len(sorted),
	}
	if len(sorted) > 1 {
		mid := len(sorted) / 2
		nd.heavy = c.build(sorted[:mid], newCnt, newRep)
		nd.light = c.build(sorted[mid:], newCnt, newRep)
	}
	return nd
}

// N returns the number of indexed items.
func (c *CountingBaseline[Q, V]) N() int { return c.n }

// CountQueries returns the number of counting probes issued so far.
func (c *CountingBaseline[Q, V]) CountQueries() int64 { return c.countQueries.Load() }

// TopK answers a top-k query, weight-descending.
func (c *CountingBaseline[Q, V]) TopK(q Q, k int) []Item[V] {
	if k <= 0 || c.root == nil {
		return nil
	}
	var out []Item[V]
	c.collect(c.root, q, k, &out)
	if c.tracker != nil {
		c.tracker.ScanCost(len(out))
	}
	return TopKOf(out, k)
}

// collect gathers at least min(k, |q(subtree)|) of the heaviest satisfying
// items of the subtree into out, returning how many it added.
func (c *CountingBaseline[Q, V]) collect(nd *cbNode[Q, V], q Q, k int, out *[]Item[V]) int {
	if nd == nil || k <= 0 {
		return 0
	}
	if nd.heavy == nil { // single-item node: report it if it satisfies q
		added := 0
		nd.rep.ReportAbove(q, math.Inf(-1), func(it Item[V]) bool {
			*out = append(*out, it)
			added++
			return true
		})
		return added
	}
	c.countQueries.Add(2) // this probe plus the heavy child's
	got := 0
	if nd.heavy.cnt.Count(q) >= k {
		// The (possibly over-approximate) count promises enough heavy
		// items; on a shortfall, fall through to the lighter child.
		got = c.collect(nd.heavy, q, k, out)
	} else {
		// Cheaper to drain the heavy child entirely.
		nd.heavy.rep.ReportAbove(q, math.Inf(-1), func(it Item[V]) bool {
			*out = append(*out, it)
			got++
			return true
		})
	}
	if got < k {
		got += c.collect(nd.light, q, k-got, out)
	}
	return got
}
