// Package core implements the paper's contribution: general black-box
// reductions from top-k reporting to prioritized reporting and max
// reporting (Rahul & Tao, "Efficient Top-k Indexing via General
// Reductions", PODS 2016).
//
// The framework follows Section 1 of the paper. An input is a set D of n
// elements, each carrying a distinct real weight. Q is the set of
// predicates allowed on elements. Three query types are defined over (D, Q):
//
//   - Prioritized reporting: given (q, τ), report every e ∈ q(D) with
//     w(e) ≥ τ.
//   - Max reporting: given q, report the single heaviest element of q(D).
//   - Top-k reporting: given (q, k), report the k heaviest elements of
//     q(D) (all of q(D) if it has fewer than k elements).
//
// The two reductions are:
//
//   - WorstCase (Theorem 1): prioritized ⇒ static top-k with an
//     O(log_B n) query slowdown, via nested top-k core-sets (Lemma 2).
//   - Expected (Theorem 2): prioritized + max ⇒ top-k with no asymptotic
//     degradation in expectation, via a geometric ladder of (1/K)-samples
//     (Lemma 3), supporting updates.
//
// Baselines from prior work (the Rahul–Janardan binary-search reduction
// that Theorem 1 improves, and a linear-scan oracle) are implemented for
// the comparison experiments.
package core

import (
	"fmt"
	"math"
	"sort"

	"topk/internal/xsort"
)

// Item is one weighted element of the input set D. Weights are assumed
// distinct across a structure's items, the paper's standing tie-breaking
// assumption (Section 1.1); constructors in this repository verify it.
type Item[V any] struct {
	Value  V
	Weight float64
}

// LessItems orders items weight-descending ("best first").
func LessItems[V any](a, b Item[V]) bool { return a.Weight > b.Weight }

// SortByWeightDesc sorts items heaviest-first in place.
func SortByWeightDesc[V any](items []Item[V]) {
	sort.Slice(items, func(i, j int) bool { return items[i].Weight > items[j].Weight })
}

// Prioritized is a structure answering prioritized-reporting queries.
//
// ReportAbove must call emit once for each item e satisfying q with
// w(e) ≥ tau, in unspecified order, and stop as soon as emit returns
// false. Implementations charge their own I/Os to their em.Tracker; the
// paper's contract is a cost of Q_pri(n) + O(t/B) where t is the number of
// emitted items.
type Prioritized[Q, V any] interface {
	ReportAbove(q Q, tau float64, emit func(Item[V]) bool)
}

// Max is a structure answering max-reporting (top-1) queries in Q_max(n).
type Max[Q, V any] interface {
	// MaxItem returns the heaviest item satisfying q; ok is false when
	// q(D) is empty.
	MaxItem(q Q) (item Item[V], ok bool)
}

// TopK is a structure answering top-k queries. The result is
// weight-descending and has min(k, |q(D)|) items.
type TopK[Q, V any] interface {
	TopK(q Q, k int) []Item[V]
}

// Updatable is the dynamic interface required from building blocks plugged
// into the Theorem 2 reduction's update path. Deletion is keyed by weight,
// which identifies an item uniquely under the distinct-weights assumption.
type Updatable[V any] interface {
	Insert(Item[V])
	// DeleteWeight removes the item with the given weight and reports
	// whether it was present.
	DeleteWeight(w float64) bool
}

// DynamicPrioritized is a prioritized structure that supports updates.
type DynamicPrioritized[Q, V any] interface {
	Prioritized[Q, V]
	Updatable[V]
}

// DynamicMax is a max structure that supports updates.
type DynamicMax[Q, V any] interface {
	Max[Q, V]
	Updatable[V]
}

// MatchFunc decides whether a value satisfies a predicate. The reductions
// need it only for their brute-force fallbacks (scanning a small base set),
// mirroring the paper's "scan the entire D" steps.
type MatchFunc[Q, V any] func(q Q, v V) bool

// PrioritizedFactory builds a prioritized structure over an arbitrary
// subset of the input. The reductions invoke it on D itself and on every
// core-set / sample; the factory owns the items slice passed to it.
type PrioritizedFactory[Q, V any] func(items []Item[V]) Prioritized[Q, V]

// MaxFactory builds a max structure over an arbitrary subset of the input.
type MaxFactory[Q, V any] func(items []Item[V]) Max[Q, V]

// DynamicPrioritizedFactory builds an updatable prioritized structure.
type DynamicPrioritizedFactory[Q, V any] func(items []Item[V]) DynamicPrioritized[Q, V]

// DynamicMaxFactory builds an updatable max structure.
type DynamicMaxFactory[Q, V any] func(items []Item[V]) DynamicMax[Q, V]

// CollectAtMost runs a prioritized query in the paper's "cost monitoring"
// manner (Section 3.2): the query is terminated manually as soon as
// limit+1 elements have been reported. It returns the collected items
// (at most limit+1) and whether the query terminated by itself, i.e.
// complete == true means the returned items are all of {e ∈ q(D) :
// w(e) ≥ tau}.
func CollectAtMost[Q, V any](p Prioritized[Q, V], q Q, tau float64, limit int) (items []Item[V], complete bool) {
	complete = true
	p.ReportAbove(q, tau, func(it Item[V]) bool {
		items = append(items, it)
		if len(items) > limit {
			complete = false
			return false
		}
		return true
	})
	return items, complete
}

// CollectAll drains a prioritized query with no cap.
func CollectAll[Q, V any](p Prioritized[Q, V], q Q, tau float64) []Item[V] {
	var items []Item[V]
	p.ReportAbove(q, tau, func(it Item[V]) bool {
		items = append(items, it)
		return true
	})
	return items
}

// PrioritizedOf extracts the prioritized structure living inside a
// reduction-built top-k structure, so callers can answer prioritized
// queries without constructing duplicate black boxes. It returns nil when
// the structure exposes none.
func PrioritizedOf[Q, V any](t TopK[Q, V]) Prioritized[Q, V] {
	switch s := t.(type) {
	case interface{ Prioritized() Prioritized[Q, V] }:
		return s.Prioritized()
	case Prioritized[Q, V]: // the FullScan oracle is its own
		return s
	}
	return nil
}

// TopKOf performs k-selection on a batch of candidate items and returns the
// k heaviest, weight-descending. It is the paper's "k-selection" primitive,
// costing O(|items|/B) I/Os in EM (charged by callers via ScanCost).
func TopKOf[V any](items []Item[V], k int) []Item[V] {
	top := xsort.SelectTopK(items, k, LessItems[V])
	xsort.SortPrefix(top, len(top), LessItems[V])
	return top
}

// LogB returns log_B(n), clamped below at 1 — the paper's convention that
// Q_pri(n) ≥ log_B n makes 1 the natural floor for tiny inputs.
func LogB(n int, b int) float64 {
	if n < 2 || b < 2 {
		return 1
	}
	v := math.Log(float64(n)) / math.Log(float64(b))
	if v < 1 {
		return 1
	}
	return v
}

// CheckDistinctWeights reports the first duplicated weight, if any.
// Reductions rely on distinct weights for tie-free ranking and for
// weight-keyed deletion.
func CheckDistinctWeights[V any](items []Item[V]) (dup float64, ok bool) {
	seen := make(map[float64]struct{}, len(items))
	for _, it := range items {
		if _, exists := seen[it.Weight]; exists {
			return it.Weight, false
		}
		seen[it.Weight] = struct{}{}
	}
	return 0, true
}

// ValidateWeights checks the full weight contract at once: every weight
// finite (NaN would corrupt every ordering and map silently; ±Inf
// collides with the sentinel thresholds) and all weights distinct.
// Constructors should call this instead of CheckDistinctWeights alone.
func ValidateWeights[V any](items []Item[V]) error {
	seen := make(map[float64]struct{}, len(items))
	for i, it := range items {
		if math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
			return fmt.Errorf("core: item %d has non-finite weight %v", i, it.Weight)
		}
		if _, exists := seen[it.Weight]; exists {
			return fmt.Errorf("core: duplicate weight %v; the top-k model requires distinct weights", it.Weight)
		}
		seen[it.Weight] = struct{}{}
	}
	return nil
}
