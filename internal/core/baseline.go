package core

import (
	"math"
	"sort"
	"sync/atomic"

	"topk/internal/em"
	"topk/internal/xsort"
)

// This file implements the comparators the paper measures itself against:
//
//   - Baseline: the Rahul–Janardan reduction (binary search on the weight
//     threshold τ), the previous state of the art which Theorem 1
//     improves. Its cost is Eqs. (1)–(2):
//     S_top = O(S_pri),  Q_top = O(Q_pri·log n) + O((k/B)·log n).
//     The multiplicative log n on k/B is exactly what experiments E6
//     visualize.
//   - Scan: the trivial O(n/B) oracle, used as ground truth in tests and
//     as the "no index" baseline in benchmarks.
//   - PrioritizedFromTopK: the known opposite-direction reduction
//     (Section 1.2): prioritized reporting is no harder than top-k.

// Baseline is the Rahul–Janardan binary-search top-k structure.
type Baseline[Q, V any] struct {
	pri     Prioritized[Q, V]
	weights []float64 // all weights, descending: weights[r-1] has rank r
	tracker *em.Tracker
	probes  atomic.Int64 // atomic: queries may run concurrently
}

// NewBaseline builds the binary-search reduction over the given
// prioritized structure. items must be the same set the structure indexes.
func NewBaseline[Q, V any](
	items []Item[V],
	newPri PrioritizedFactory[Q, V],
	tracker *em.Tracker,
) (*Baseline[Q, V], error) {
	if err := ValidateWeights(items); err != nil {
		return nil, err
	}
	d := make([]Item[V], len(items))
	copy(d, items)
	ws := make([]float64, len(d))
	for i, it := range d {
		ws[i] = it.Weight
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	return &Baseline[Q, V]{pri: newPri(d), weights: ws, tracker: tracker}, nil
}

// Probes returns the number of cost-monitored prioritized probes issued so
// far (≈ log₂ n per query), an experiment instrumentation hook.
func (b *Baseline[Q, V]) Probes() int64 { return b.probes.Load() }

// Prioritized exposes the underlying prioritized structure on D.
func (b *Baseline[Q, V]) Prioritized() Prioritized[Q, V] { return b.pri }

// TopK answers a top-k query by binary searching, over the global weight
// ranks, for the smallest rank r such that q(D) contains at least k
// elements of weight ≥ weights[r-1]; each probe is a prioritized query
// cost-monitored at k elements.
func (b *Baseline[Q, V]) TopK(q Q, k int) []Item[V] {
	n := len(b.weights)
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// atLeastK(r) is monotone nondecreasing in r (lower τ ⇒ more results).
	atLeastK := func(r int) bool {
		b.probes.Add(1)
		if b.tracker != nil {
			b.tracker.ScanCost(1) // the rank→weight array probe
		}
		_, complete := CollectAtMost(b.pri, q, b.weights[r-1], k-1)
		return !complete
	}
	lo, hi := 1, n
	for lo < hi {
		mid := lo + (hi-lo)/2
		if atLeastK(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	var cand []Item[V]
	if atLeastK(lo) {
		// Minimality of lo gives |{e ∈ q(D) : w(e) ≥ weights[lo-1]}| = k
		// exactly (lowering the threshold by one global rank adds at most
		// one element).
		cand, _ = CollectAtMost(b.pri, q, b.weights[lo-1], k)
	} else {
		// |q(D)| < k: report everything.
		cand = CollectAll(b.pri, q, math.Inf(-1))
	}
	if b.tracker != nil {
		b.tracker.ScanCost(len(cand))
	}
	return TopKOf(cand, k)
}

// Scan is the trivial structure: no index, answer every query by scanning
// D. It implements TopK, Prioritized, and Max, and serves as the oracle in
// correctness tests.
type Scan[Q, V any] struct {
	items   []Item[V]
	match   MatchFunc[Q, V]
	tracker *em.Tracker
}

// NewScan builds the scanning oracle.
func NewScan[Q, V any](items []Item[V], match MatchFunc[Q, V], tracker *em.Tracker) *Scan[Q, V] {
	d := make([]Item[V], len(items))
	copy(d, items)
	return &Scan[Q, V]{items: d, match: match, tracker: tracker}
}

// TopK scans D and k-selects.
func (s *Scan[Q, V]) TopK(q Q, k int) []Item[V] {
	if s.tracker != nil {
		s.tracker.ScanCost(len(s.items))
	}
	col := xsort.NewCollector(k, LessItems[V])
	for _, it := range s.items {
		if s.match(q, it.Value) {
			col.Offer(it)
		}
	}
	return col.Items()
}

// ReportAbove scans D and filters.
func (s *Scan[Q, V]) ReportAbove(q Q, tau float64, emit func(Item[V]) bool) {
	if s.tracker != nil {
		s.tracker.ScanCost(len(s.items))
	}
	for _, it := range s.items {
		if it.Weight >= tau && s.match(q, it.Value) {
			if !emit(it) {
				return
			}
		}
	}
}

// MaxItem scans D for the heaviest match.
func (s *Scan[Q, V]) MaxItem(q Q) (Item[V], bool) {
	if s.tracker != nil {
		s.tracker.ScanCost(len(s.items))
	}
	best, ok := Item[V]{Weight: math.Inf(-1)}, false
	for _, it := range s.items {
		if s.match(q, it.Value) && it.Weight > best.Weight {
			best, ok = it, true
		}
	}
	return best, ok
}

// PrioritizedFromTopK adapts a top-k structure to answer prioritized
// queries — the known reduction of Section 1.2 showing prioritized
// reporting is no harder than top-k. This implementation uses geometric
// doubling on k: query top-k for k = k0, 2k0, 4k0, … until the k-th result
// falls below τ or q(D) is exhausted. Each round's results extend the
// previous round's prefix (weights are distinct), so items are emitted
// exactly once.
type PrioritizedFromTopK[Q, V any] struct {
	top TopK[Q, V]
	k0  int
}

// NewPrioritizedFromTopK wraps top; k0 is the starting batch size
// (defaults to 16 if ≤ 0 — in EM one would pick B).
func NewPrioritizedFromTopK[Q, V any](top TopK[Q, V], k0 int) *PrioritizedFromTopK[Q, V] {
	if k0 <= 0 {
		k0 = 16
	}
	return &PrioritizedFromTopK[Q, V]{top: top, k0: k0}
}

// ReportAbove emits every item satisfying q with weight ≥ tau, heaviest
// first.
func (p *PrioritizedFromTopK[Q, V]) ReportAbove(q Q, tau float64, emit func(Item[V]) bool) {
	k := p.k0
	emitted := 0
	for {
		res := p.top.TopK(q, k)
		for _, it := range res[emitted:] {
			if it.Weight < tau {
				return
			}
			if !emit(it) {
				return
			}
			emitted++
		}
		if len(res) < k {
			return // q(D) exhausted
		}
		k *= 2
	}
}
