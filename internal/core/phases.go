package core

// Trace phase names emitted by the two reductions (see em.TraceEvent and
// DESIGN.md §9 for the full taxonomy). Phases with outcome variants share
// a prefix so sinks can aggregate by prefix match: every "t2.round.*"
// event is one Theorem 2 round, whatever its outcome.
const (
	// Theorem 1 (WorstCase) phases.

	// PhaseT1Scan is the k ≥ n/2 full scan of D. Level -1, Arg = |D|.
	PhaseT1Scan = "t1.scan"
	// PhaseT1Level wraps one top-f chain level's query (§3.2). Level =
	// chain depth (0 = the core-set on D itself), Arg = |R_level|. The
	// level's probe/harvest/fallback spans nest one depth below it.
	PhaseT1Level = "t1.level"
	// PhaseT1ProbeOK / PhaseT1ProbeAbort are the cost-monitored
	// prioritized query of §3.2 step 1: OK means it terminated by itself
	// (|q(R)| within budget), Abort means the cost monitor cut it off
	// after limit+1 items. Arg = items collected.
	PhaseT1ProbeOK    = "t1.probe.ok"
	PhaseT1ProbeAbort = "t1.probe.abort"
	// PhaseT1Harvest is the above-pivot harvest plus its k-selection.
	// Arg = items streamed.
	PhaseT1Harvest = "t1.harvest"
	// PhaseT1Fallback is the exhaustive repair run after a self-check
	// caught a bad sample. Arg = items streamed.
	PhaseT1Fallback = "t1.fallback"

	// Theorem 2 (Expected) phases.

	// PhaseT2Scan is the naive full scan of D (k beyond the ladder, or
	// ladder exhausted). Level -1, Arg = |D|.
	PhaseT2Scan = "t2.scan"
	// PhaseT2Round* wrap one ladder round (§4): Level = ladder rung j,
	// Arg = the round ordinal within the query (1-based). Outcomes:
	// Direct — step 1's capped probe completed, no sample needed;
	// Empty — q(R_j) had no sampled element, round skipped;
	// Fail — the τ-harvest aborted or came back too small (Lemma 3
	// failure); OK — the round succeeded and answered the query. The
	// round's probe/max/harvest spans nest one depth below it.
	PhaseT2RoundDirect = "t2.round.direct"
	PhaseT2RoundEmpty  = "t2.round.empty"
	PhaseT2RoundFail   = "t2.round.fail"
	PhaseT2RoundOK     = "t2.round.ok"
	// PhaseT2ProbeOK / PhaseT2ProbeAbort are step 1's cost-monitored
	// |q(D)| ≤ 4K_j test; Abort is the cost-monitor cutoff. Arg = items.
	PhaseT2ProbeOK    = "t2.probe.ok"
	PhaseT2ProbeAbort = "t2.probe.abort"
	// PhaseT2Max is step 2's max-structure probe on the sample R_j.
	PhaseT2Max = "t2.max"
	// PhaseT2HarvestOK / PhaseT2HarvestAbort are step 3's cost-monitored
	// harvest above τ. Arg = items collected.
	PhaseT2HarvestOK    = "t2.harvest.ok"
	PhaseT2HarvestAbort = "t2.harvest.abort"
	// PhaseT2Rebuild is the dynamic path's full rebuild (shared-path
	// span; updates are exclusive). Arg = |D| at rebuild.
	PhaseT2Rebuild = "t2.rebuild"
)
