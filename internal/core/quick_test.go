package core

import (
	"testing"
	"testing/quick"

	"topk/internal/wrand"
)

// Property test for the dynamic Theorem 2 pipeline: arbitrary interleaved
// insert/delete/query sequences must always agree with a brute-force
// oracle. This complements the targeted churn tests with
// adversarially-shaped op sequences from testing/quick.
func TestQuickDynamicExpectedAgainstOracle(t *testing.T) {
	type op struct {
		Kind uint8 // 0 insert, 1 delete, 2 query
		A, B uint8
	}
	f := func(ops []op, seed uint16) bool {
		if len(ops) > 120 {
			ops = ops[:120]
		}
		g := wrand.New(uint64(seed) + 1)
		start := genItems(g, 60)
		exp, err := NewDynamicExpected(start, spanMatch,
			func(items []Item[float64]) DynamicPrioritized[span, float64] { return newNaive(items) },
			func(items []Item[float64]) DynamicMax[span, float64] { return newNaive(items) },
			ExpectedOptions{B: 2, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		live := append([]Item[float64](nil), start...)
		nextW := 1e7
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				it := Item[float64]{Value: float64(o.A) / 2.56, Weight: nextW}
				nextW++
				if err := exp.Insert(it); err != nil {
					return false
				}
				live = append(live, it)
			case 1:
				if len(live) == 0 {
					continue
				}
				idx := int(o.A) % len(live)
				if !exp.DeleteWeight(live[idx].Weight) {
					return false
				}
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			case 2:
				lo := float64(o.A) / 2.56
				q := span{lo, lo + float64(o.B)/4}
				k := 1 + int(o.B)%20
				got := exp.TopK(q, k)
				want := oracleTopK(append([]Item[float64](nil), live...), q, k)
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i].Weight != want[i].Weight {
						return false
					}
				}
			}
		}
		return exp.N() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for any k and τ derived from the true results, the Theorem 1
// structure's top-k is the prefix of the prioritized answer — the
// equivalence the paper's reductions formalize.
func TestQuickWorstCasePrefixProperty(t *testing.T) {
	g := wrand.New(7777)
	items := genItems(g, 4000)
	wc, err := NewWorstCase(items, spanMatch, naiveFactory, WorstCaseOptions{B: 2, Lambda: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(loRaw, widthRaw uint8, kRaw uint16) bool {
		lo := float64(loRaw) / 2.56
		q := span{lo, lo + float64(widthRaw)/8}
		k := 1 + int(kRaw)%300
		top := wc.TopK(q, k)
		// Every reported item must satisfy the predicate and the list
		// must be strictly descending.
		for i, it := range top {
			if !spanMatch(q, it.Value) {
				return false
			}
			if i > 0 && top[i-1].Weight <= it.Weight {
				return false
			}
		}
		// The k-th weight is a valid prioritized threshold: querying at
		// τ = weight of the last item returns exactly the same set.
		if len(top) == 0 {
			return len(oracleTopK(items, q, k)) == 0
		}
		tau := top[len(top)-1].Weight
		want := oracleAboveSpan(items, q, tau)
		return len(want) == len(top)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func oracleAboveSpan(items []Item[float64], q span, tau float64) []Item[float64] {
	var out []Item[float64]
	for _, it := range items {
		if it.Weight >= tau && spanMatch(q, it.Value) {
			out = append(out, it)
		}
	}
	return out
}
