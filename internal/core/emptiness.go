package core

import (
	"sync/atomic"

	"topk/internal/em"
)

// This file implements a reusable combinator the paper's Section 5 applies
// twice (Sections 5.3 and 5.4): turning an *emptiness* structure — "does
// any element of the set satisfy q?" — into a *max-reporting* structure.
//
// The paper materializes the "winner regions" ρ_i induced by the
// weight-descending prefixes and locates the query point among them. The
// combinator here realizes the same prefix-search idea structurally: a
// binary tree over the weight-sorted elements where every node carries an
// emptiness structure over its contiguous weight range. A max query
// descends from the root, at each step asking whether the heavier child
// contains a satisfying element. This finds the heaviest satisfying
// element in O(log n) emptiness queries, with
// Σ_node S_emp(m_node) = O(log n · S_emp-per-element) space.
//
// (This mirrors the Aronov–Har-Peled connection the paper cites: emptiness
// powers approximate rank; here a hierarchy of emptiness structures powers
// exact max.)

// Emptiness answers "is there any element satisfying q?" over a fixed set.
type Emptiness[Q any] interface {
	NonEmpty(q Q) bool
}

// EmptinessFactory builds an emptiness structure over a subset of items.
type EmptinessFactory[Q, V any] func(items []Item[V]) Emptiness[Q]

// MaxFromEmptiness is a max-reporting structure built from emptiness
// structures. It implements Max[Q, V].
type MaxFromEmptiness[Q, V any] struct {
	tracker *em.Tracker
	root    *meNode[Q, V]
	n       int
	// emptinessQueries counts NonEmpty probes, ~2 log₂ n per MaxItem;
	// atomic because queries may run concurrently.
	emptinessQueries atomic.Int64
}

type meNode[Q, V any] struct {
	empt Emptiness[Q]
	// Leaves hold the single item; internal nodes hold children with
	// heavy = the heavier half of the node's weight range.
	item         Item[V]
	heavy, light *meNode[Q, V]
}

// NewMaxFromEmptiness builds the combinator over items (any order; they
// are sorted internally). newEmpt is invoked once per tree node, on the
// node's weight-contiguous subset.
func NewMaxFromEmptiness[Q, V any](
	items []Item[V],
	newEmpt EmptinessFactory[Q, V],
	tracker *em.Tracker,
) *MaxFromEmptiness[Q, V] {
	sorted := make([]Item[V], len(items))
	copy(sorted, items)
	SortByWeightDesc(sorted)
	m := &MaxFromEmptiness[Q, V]{tracker: tracker, n: len(sorted)}
	m.root = m.build(sorted, newEmpt)
	return m
}

func (m *MaxFromEmptiness[Q, V]) build(sorted []Item[V], newEmpt EmptinessFactory[Q, V]) *meNode[Q, V] {
	if len(sorted) == 0 {
		return nil
	}
	nd := &meNode[Q, V]{empt: newEmpt(sorted)}
	if len(sorted) == 1 {
		nd.item = sorted[0]
		return nd
	}
	mid := len(sorted) / 2
	nd.heavy = m.build(sorted[:mid], newEmpt)
	nd.light = m.build(sorted[mid:], newEmpt)
	return nd
}

// MaxItem returns the heaviest item satisfying q.
func (m *MaxFromEmptiness[Q, V]) MaxItem(q Q) (Item[V], bool) {
	nd := m.root
	if nd == nil || !m.probe(nd, q) {
		return Item[V]{}, false
	}
	for nd.heavy != nil {
		if m.probe(nd.heavy, q) {
			nd = nd.heavy
		} else {
			nd = nd.light
		}
	}
	return nd.item, true
}

func (m *MaxFromEmptiness[Q, V]) probe(nd *meNode[Q, V], q Q) bool {
	m.emptinessQueries.Add(1)
	return nd.empt.NonEmpty(q)
}

// EmptinessQueries returns the number of NonEmpty probes issued so far.
func (m *MaxFromEmptiness[Q, V]) EmptinessQueries() int64 {
	return m.emptinessQueries.Load()
}

// N returns the number of indexed items.
func (m *MaxFromEmptiness[Q, V]) N() int { return m.n }
