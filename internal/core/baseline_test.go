package core

import (
	"math"
	"testing"

	"topk/internal/wrand"
)

func TestBaselineMatchesOracle(t *testing.T) {
	g := wrand.New(61)
	items := genItems(g, 4000)
	b, err := NewBaseline(items, naiveFactory, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := g.Float64() * 100
		q := span{lo, lo + g.Float64()*60}
		for _, k := range []int{1, 3, 17, 256, 2000, 4000, 8000} {
			sameItems(t, b.TopK(q, k), oracleTopK(items, q, k), "baseline topk")
		}
	}
}

func TestBaselineProbeCountIsLogarithmic(t *testing.T) {
	g := wrand.New(62)
	items := genItems(g, 1<<14)
	b, err := NewBaseline(items, naiveFactory, nil)
	if err != nil {
		t.Fatal(err)
	}
	const queries = 20
	for i := 0; i < queries; i++ {
		lo := g.Float64() * 80
		b.TopK(span{lo, lo + 20}, 10)
	}
	perQuery := float64(b.Probes()) / queries
	// Binary search over n ranks: ~log2(n)+1 probes plus the final one.
	bound := math.Log2(float64(1<<14)) + 3
	if perQuery > bound {
		t.Errorf("probes per query %.1f > %.1f (binary search broken?)", perQuery, bound)
	}
}

func TestBaselineEdgeCases(t *testing.T) {
	g := wrand.New(63)
	items := genItems(g, 50)
	b, err := NewBaseline(items, naiveFactory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.TopK(span{0, 100}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := b.TopK(span{900, 999}, 5); len(got) != 0 {
		t.Fatalf("empty result returned %v", got)
	}
	got := b.TopK(span{0, 100}, 1000)
	if len(got) != len(items) {
		t.Fatalf("k≫n returned %d items, want %d", len(got), len(items))
	}
	empty, err := NewBaseline[span, float64](nil, naiveFactory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.TopK(span{0, 1}, 3); len(got) != 0 {
		t.Fatalf("empty structure returned %v", got)
	}
	if _, err := NewBaseline([]Item[float64]{{1, 5}, {2, 5}}, naiveFactory, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
}

func TestScanOracle(t *testing.T) {
	g := wrand.New(64)
	items := genItems(g, 300)
	s := NewScan(items, spanMatch, nil)
	q := span{10, 60}

	sameItems(t, s.TopK(q, 7), oracleTopK(items, q, 7), "scan topk")

	// Prioritized semantics.
	var got []Item[float64]
	s.ReportAbove(q, 500, func(it Item[float64]) bool {
		got = append(got, it)
		return true
	})
	for _, it := range got {
		if it.Weight < 500 || !spanMatch(q, it.Value) {
			t.Fatalf("ReportAbove emitted non-matching item %+v", it)
		}
	}
	want := 0
	for _, it := range items {
		if it.Weight >= 500 && spanMatch(q, it.Value) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("ReportAbove emitted %d items, want %d", len(got), want)
	}

	// Max semantics.
	mx, ok := s.MaxItem(q)
	wantTop := oracleTopK(items, q, 1)
	if len(wantTop) == 0 {
		if ok {
			t.Fatal("MaxItem found an item in an empty range")
		}
	} else if !ok || mx.Weight != wantTop[0].Weight {
		t.Fatalf("MaxItem = %+v,%v want %+v", mx, ok, wantTop[0])
	}

	// Early termination.
	count := 0
	s.ReportAbove(q, math.Inf(-1), func(Item[float64]) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early-terminated enumeration visited %d items, want 3", count)
	}
}

func TestPrioritizedFromTopK(t *testing.T) {
	g := wrand.New(65)
	items := genItems(g, 1000)
	oracle := NewScan(items, spanMatch, nil)
	p := NewPrioritizedFromTopK[span, float64](oracle, 4)

	for trial := 0; trial < 30; trial++ {
		lo := g.Float64() * 90
		q := span{lo, lo + g.Float64()*40}
		tau := g.Float64() * 1000
		var got []Item[float64]
		p.ReportAbove(q, tau, func(it Item[float64]) bool {
			got = append(got, it)
			return true
		})
		// Results must be exactly the oracle's prioritized answer,
		// heaviest first.
		var want []Item[float64]
		oracle.ReportAbove(q, tau, func(it Item[float64]) bool {
			want = append(want, it)
			return true
		})
		SortByWeightDesc(want)
		sameItems(t, got, want, "prioritized-from-topk")
	}

	// Early stop must not over-enumerate.
	count := 0
	p.ReportAbove(span{0, 100}, math.Inf(-1), func(Item[float64]) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}
