package core

import (
	"testing"

	"topk/internal/wrand"
)

type naiveEmpt struct {
	items []Item[float64]
}

func (n *naiveEmpt) NonEmpty(q span) bool {
	for _, it := range n.items {
		if spanMatch(q, it.Value) {
			return true
		}
	}
	return false
}

func TestMaxFromEmptinessMatchesOracle(t *testing.T) {
	g := wrand.New(71)
	items := genItems(g, 1000)
	m := NewMaxFromEmptiness(items, func(sub []Item[float64]) Emptiness[span] {
		return &naiveEmpt{items: sub}
	}, nil)
	if m.N() != 1000 {
		t.Fatalf("N = %d", m.N())
	}
	for trial := 0; trial < 200; trial++ {
		lo := g.Float64() * 110
		q := span{lo, lo + g.Float64()*20}
		want := oracleTopK(items, q, 1)
		got, ok := m.MaxItem(q)
		if len(want) == 0 {
			if ok {
				t.Fatalf("q=%+v: found %+v in empty result", q, got)
			}
			continue
		}
		if !ok || got.Weight != want[0].Weight {
			t.Fatalf("q=%+v: max (%v,%v), want %v", q, got.Weight, ok, want[0].Weight)
		}
	}
}

func TestMaxFromEmptinessProbeCount(t *testing.T) {
	g := wrand.New(72)
	items := genItems(g, 1<<12)
	m := NewMaxFromEmptiness(items, func(sub []Item[float64]) Emptiness[span] {
		return &naiveEmpt{items: sub}
	}, nil)
	const queries = 50
	for i := 0; i < queries; i++ {
		lo := g.Float64() * 90
		m.MaxItem(span{lo, lo + 10})
	}
	perQuery := float64(m.EmptinessQueries()) / queries
	if perQuery > 2*12+3 {
		t.Errorf("%.1f emptiness probes per query; want ≤ ~2 log n", perQuery)
	}
}

func TestMaxFromEmptinessEmptyAndSingleton(t *testing.T) {
	m := NewMaxFromEmptiness(nil, func(sub []Item[float64]) Emptiness[span] {
		return &naiveEmpt{items: sub}
	}, nil)
	if _, ok := m.MaxItem(span{0, 1}); ok {
		t.Fatal("empty structure found a max")
	}
	one := []Item[float64]{{Value: 5, Weight: 9}}
	m = NewMaxFromEmptiness(one, func(sub []Item[float64]) Emptiness[span] {
		return &naiveEmpt{items: sub}
	}, nil)
	if it, ok := m.MaxItem(span{4, 6}); !ok || it.Weight != 9 {
		t.Fatalf("singleton MaxItem = %+v,%v", it, ok)
	}
	if _, ok := m.MaxItem(span{6, 7}); ok {
		t.Fatal("singleton matched a non-containing query")
	}
}
