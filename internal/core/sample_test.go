package core

import (
	"math"
	"testing"

	"topk/internal/wrand"
)

func TestLemma1EmpiricalFailureRate(t *testing.T) {
	// Lemma 1: under kp ≥ 3 ln(3/δ) and n ≥ 4k, both bullets hold w.p.
	// ≥ 1-δ. Check the empirical failure rate against δ on a grid.
	g := wrand.New(101)
	cells := []Lemma1Params{
		{N: 20000, K: 500, P: 0.05, Delta: 0.1},
		{N: 50000, K: 1000, P: 0.02, Delta: 0.3},
		{N: 10000, K: 2500, P: 0.01, Delta: 0.3},
	}
	const trials = 2000
	for _, lp := range cells {
		if !lp.Applicable() {
			t.Fatalf("cell %+v violates the lemma's working conditions", lp)
		}
		fail := 0
		for i := 0; i < trials; i++ {
			if !Lemma1Trial(g, lp) {
				fail++
			}
		}
		rate := float64(fail) / trials
		// Allow a small sampling slack over δ itself.
		if rate > lp.Delta+0.02 {
			t.Errorf("cell %+v: empirical failure rate %.4f > δ=%.2f", lp, rate, lp.Delta)
		}
	}
}

func TestLemma1Inapplicable(t *testing.T) {
	lp := Lemma1Params{N: 100, K: 30, P: 0.05, Delta: 0.01}
	if lp.Applicable() {
		t.Fatalf("cell %+v should violate n ≥ 4k or kp ≥ 3ln(3/δ)", lp)
	}
}

func TestLemma3EmpiricalSuccessRate(t *testing.T) {
	// Lemma 3 guarantees success probability ≥ 0.09 for K ≥ 2, n ≥ 4K.
	g := wrand.New(202)
	const trials = 20000
	for _, k := range []float64{2, 10, 100, 1000} {
		n := int(8 * k)
		succ := 0
		for i := 0; i < trials; i++ {
			if Lemma3Trial(g, n, k) {
				succ++
			}
		}
		rate := float64(succ) / trials
		if rate < 0.09 {
			t.Errorf("K=%v n=%d: empirical success rate %.4f < 0.09", k, n, rate)
		}
	}
}

func TestCoreSetSizeBound(t *testing.T) {
	g := wrand.New(303)
	items := genItems(g, 50000)
	cp := CoreSetParams{N: len(items), K: 1000, Lambda: 2}
	r := CoreSet(g, items, cp)
	if float64(len(r)) > cp.MaxSize() {
		t.Fatalf("core-set size %d exceeds Lemma 2 bound %.0f", len(r), cp.MaxSize())
	}
	if len(r) == 0 {
		t.Fatal("core-set empty for a 50k input")
	}
	// Core-set items must be actual input items.
	weights := map[float64]struct{}{}
	for _, it := range items {
		weights[it.Weight] = struct{}{}
	}
	for _, it := range r {
		if _, ok := weights[it.Weight]; !ok {
			t.Fatalf("core-set contains foreign item %+v", it)
		}
	}
}

func TestCoreSetFullCopyWhenPIs1(t *testing.T) {
	g := wrand.New(404)
	items := genItems(g, 100)
	cp := CoreSetParams{N: len(items), K: 1, Lambda: 2} // p ≥ 1
	r := CoreSet(g, items, cp)
	if len(r) != len(items) {
		t.Fatalf("p=1 core-set has %d items, want all %d", len(r), len(items))
	}
	// Must be a copy, not an alias.
	r[0].Weight = -1
	if items[0].Weight == -1 {
		t.Fatal("core-set aliases the input slice")
	}
}

func TestCoreSetRankGuaranteeEmpirical(t *testing.T) {
	// E3 in miniature: for queries with |q(D)| ≥ 4K, the pivot element of
	// q(R) should have rank in [K, 4K] in q(D) for the vast majority of
	// queries (per-query failure probability is polynomially small).
	g := wrand.New(505)
	n := 40000
	items := genItems(g, n)
	cp := CoreSetParams{N: n, K: 400, Lambda: 1}
	r := CoreSet(g, items, cp)
	pr := cp.PivotRank()

	bad, tested := 0, 0
	for trial := 0; trial < 50; trial++ {
		lo := g.Float64() * 50
		q := span{lo, lo + 20 + g.Float64()*30}
		qd := oracleTopK(items, q, n) // all matches, sorted desc
		if float64(len(qd)) < 4*cp.K {
			continue
		}
		qr := oracleTopK(r, q, len(r))
		if len(qr) < pr {
			bad++
			tested++
			continue
		}
		pivot := qr[pr-1].Weight
		rank, ok := RankOfWeight(qd, pivot)
		if !ok {
			t.Fatalf("pivot weight %v not in q(D)", pivot)
		}
		tested++
		if float64(rank) < cp.K || float64(rank) > 4*cp.K {
			bad++
		}
	}
	if tested < 10 {
		t.Fatalf("only %d queries were large enough; workload bug", tested)
	}
	if bad > tested/5 {
		t.Errorf("core-set rank guarantee failed on %d/%d large queries", bad, tested)
	}
}

func TestPivotRankAndParams(t *testing.T) {
	if r := pivotRank(1, 2); r != 1 {
		t.Errorf("pivotRank(1) = %d, want 1", r)
	}
	cp := CoreSetParams{N: 1, K: 10, Lambda: 2}
	if p := cp.P(); p != 1 {
		t.Errorf("P() for N=1 is %v, want 1", p)
	}
	cp = CoreSetParams{N: 1000, K: 100, Lambda: 1}
	want := 4 * math.Log(1000) / 100
	if p := cp.P(); math.Abs(p-want) > 1e-12 {
		t.Errorf("P() = %v, want %v", p, want)
	}
}

func TestRankOfWeight(t *testing.T) {
	items := []Item[float64]{{1, 10}, {2, 30}, {3, 20}}
	if r, ok := RankOfWeight(items, 30); !ok || r != 1 {
		t.Errorf("rank of 30 = %d,%v, want 1,true", r, ok)
	}
	if r, ok := RankOfWeight(items, 20); !ok || r != 2 {
		t.Errorf("rank of 20 = %d,%v, want 2,true", r, ok)
	}
	if r, ok := RankOfWeight(items, 10); !ok || r != 3 {
		t.Errorf("rank of 10 = %d,%v, want 3,true", r, ok)
	}
	if _, ok := RankOfWeight(items, 99); ok {
		t.Error("rank of absent weight reported ok")
	}
}
