package core

import (
	"testing"

	"topk/internal/wrand"
)

// naiveCount is an exact counting structure over the span test problem.
type naiveCount struct {
	items []Item[float64]
}

func (n *naiveCount) Count(q span) int {
	c := 0
	for _, it := range n.items {
		if spanMatch(q, it.Value) {
			c++
		}
	}
	return c
}

// overCount over-approximates by a factor of 2 (the paper's c-approximate
// counting setting).
type overCount struct {
	naiveCount
}

func (o *overCount) Count(q span) int { return 2 * o.naiveCount.Count(q) }

func buildCounting(t *testing.T, items []Item[float64], approx bool) *CountingBaseline[span, float64] {
	t.Helper()
	cntF := func(sub []Item[float64]) Counting[span] {
		if approx {
			return &overCount{naiveCount{items: sub}}
		}
		return &naiveCount{items: sub}
	}
	cb, err := NewCountingBaseline(items, cntF, naiveFactory, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cb
}

func TestCountingBaselineMatchesOracle(t *testing.T) {
	g := wrand.New(81)
	items := genItems(g, 3000)
	for _, approx := range []bool{false, true} {
		cb := buildCounting(t, items, approx)
		if cb.N() != 3000 {
			t.Fatalf("N = %d", cb.N())
		}
		for trial := 0; trial < 40; trial++ {
			lo := g.Float64() * 100
			q := span{lo, lo + g.Float64()*50}
			for _, k := range []int{1, 7, 100, 1500, 5000} {
				got := cb.TopK(q, k)
				want := oracleTopK(items, q, k)
				sameItems(t, got, want, "counting baseline")
			}
		}
	}
}

func TestCountingBaselineProbesLogarithmic(t *testing.T) {
	g := wrand.New(82)
	items := genItems(g, 1<<13)
	cb := buildCounting(t, items, false)
	const queries = 30
	for i := 0; i < queries; i++ {
		lo := g.Float64() * 90
		cb.TopK(span{lo, lo + 10}, 10)
	}
	perQuery := float64(cb.CountQueries()) / queries
	// The descent issues ~2 counting probes per level over ~13 levels
	// plus shortfall detours; anything near n would mean a broken walk.
	if perQuery > 80 {
		t.Errorf("%.1f counting probes per query; want O(log n)", perQuery)
	}
}

func TestCountingBaselineEdgeCases(t *testing.T) {
	g := wrand.New(83)
	items := genItems(g, 60)
	cb := buildCounting(t, items, false)
	if got := cb.TopK(span{0, 100}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := cb.TopK(span{500, 600}, 5); len(got) != 0 {
		t.Fatalf("empty result returned %v", got)
	}
	got := cb.TopK(span{0, 100}, 999)
	if len(got) != len(items) {
		t.Fatalf("k≫n returned %d items", len(got))
	}
	empty, err := NewCountingBaseline[span, float64](nil,
		func(sub []Item[float64]) Counting[span] { return &naiveCount{items: sub} },
		naiveFactory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.TopK(span{0, 1}, 3); got != nil {
		t.Fatalf("empty structure returned %v", got)
	}
	if _, err := NewCountingBaseline([]Item[float64]{{1, 5}, {2, 5}},
		func(sub []Item[float64]) Counting[span] { return &naiveCount{items: sub} },
		naiveFactory, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
}
