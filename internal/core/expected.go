package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"topk/internal/em"
	"topk/internal/wrand"
	"topk/internal/xsort"
)

// This file implements the Theorem 2 reduction (Section 4): combining a
// prioritized structure and a max structure into a top-k structure with no
// asymptotic performance degradation in expectation:
//
//	S_top(n) = O(S_pri(n) + S_max(6n / (B·Q_pri(n))))
//	Q_top(n) = O(Q_pri(n) + Q_max(n))  + O(k/B) reporting
//	U_top(n) = O(U_pri(n) + U_max(n))  expected (amortized if inputs are)
//
// Construction: fix σ = 1/20 and K_i = B·Q_max(n)·(1+σ)^(i-1) for
// i = 1..h where h is the largest i with K_i ≤ n/4. Keep a prioritized
// structure on D and, for each i, a max structure on an independent
// (1/K_i)-sample R_i of D.
//
// A top-k query walks the ladder upward in rounds (Lemma 3 makes each
// round succeed with probability ≥ 0.09): probe the max structure on R_j
// for the heaviest sampled element e in q(R_j), then run a cost-monitored
// prioritized query with τ = w(e). If the harvest S is complete and
// |S| > K_j, the answer is the k-selection of S; otherwise the round
// failed and the next round runs with K_{j+1} = (1+σ)K_j. Since
// (1+σ)·0.91 < 1, the expected cost telescopes to
// O(Q_pri + Q_max + k/B).

// DefaultSigma is the ladder growth rate σ = 1/20 fixed in Section 4.
const DefaultSigma = 1.0 / 20

// ExpectedOptions configures the Theorem 2 reduction.
type ExpectedOptions struct {
	// B is the block size in the K_i formula. Default 64.
	B int
	// QMax estimates Q_max(n) in I/Os for the plugged-in max structure.
	// Default: log_B n.
	QMax func(n int) float64
	// Sigma is the ladder growth rate; the analysis requires
	// (1+σ)·0.91 < 1, i.e. σ < 0.0989. Default 1/20.
	Sigma float64
	// Seed drives sampling; same seed ⇒ same structure.
	Seed uint64
	// Tracker, when non-nil, is charged the reduction's own scan and
	// k-selection costs.
	Tracker *em.Tracker
	// RebuildFactor triggers a full rebuild when the live size drifts by
	// this factor from the size at (re)build time, keeping the ladder
	// parameters calibrated. Default 2 (halve/double).
	RebuildFactor float64
}

func (o *ExpectedOptions) fill() {
	if o.B <= 1 {
		o.B = 64
	}
	if o.QMax == nil {
		b := o.B
		o.QMax = func(n int) float64 { return LogB(n, b) }
	}
	if o.Sigma <= 0 {
		o.Sigma = DefaultSigma
	}
	if o.RebuildFactor <= 1 {
		o.RebuildFactor = 2
	}
}

// ExpectedStats exposes instrumentation of the Theorem 2 structure.
type ExpectedStats struct {
	LadderLevels int   // h
	SampledItems int   // total items across all R_i (space overhead)
	Queries      int64 // top-k queries answered
	Rounds       int64 // total rounds executed across queries
	NaiveScans   int64 // full-D scans (k > K_h or ladder exhausted)
	Inserts      int64
	Deletes      int64
	Rebuilds     int64
	// RoundHist[r] counts queries that finished after exactly r+1 rounds
	// (capped at the last bucket); experiment E16 reads this.
	RoundHist [16]int64
}

// Expected is the Theorem 2 top-k structure. Built with
// NewExpected it is static; built with NewDynamicExpected it additionally
// supports Insert and DeleteWeight.
type Expected[Q, V any] struct {
	opts  ExpectedOptions
	match MatchFunc[Q, V]

	// factories retained for rebuilds (dynamic mode only).
	newPri DynamicPrioritizedFactory[Q, V]
	newMax DynamicMaxFactory[Q, V]

	pri    Prioritized[Q, V]
	priDyn DynamicPrioritized[Q, V] // nil in static mode

	levels []expLevel[Q, V]

	items    []Item[V]       // live copy of D (naive-scan path, rebuilds)
	posByW   map[float64]int // weight -> index in items
	nAtBuild int

	rng *wrand.RNG

	// stats holds the build/update-time fields of ExpectedStats; they are
	// only touched under the caller's exclusive-update contract. The
	// query-path counters live in qstats as atomics so that concurrent
	// read-only queries stay data-race-free.
	stats  ExpectedStats
	qstats expQueryCounters
}

// expQueryCounters are the query-path instrumentation counters, atomic
// because any number of TopK calls may run concurrently.
type expQueryCounters struct {
	queries    atomic.Int64
	rounds     atomic.Int64
	naiveScans atomic.Int64
	roundHist  [16]atomic.Int64
}

type expLevel[Q, V any] struct {
	k      float64 // K_i
	max    Max[Q, V]
	maxDyn DynamicMax[Q, V] // nil in static mode
	// members tracks sampled weights for delete bookkeeping (the paper's
	// O(1)-expected-words hashing record, §4 "Update").
	members map[float64]struct{}
}

// NewExpected builds the static Theorem 2 structure.
func NewExpected[Q, V any](
	items []Item[V],
	match MatchFunc[Q, V],
	newPri PrioritizedFactory[Q, V],
	newMax MaxFactory[Q, V],
	opts ExpectedOptions,
) (*Expected[Q, V], error) {
	opts.fill()
	e := &Expected[Q, V]{opts: opts, match: match, rng: wrand.New(opts.Seed ^ 0x7468_6d32)}
	if err := e.init(items); err != nil {
		return nil, err
	}
	e.build(func(d []Item[V]) Prioritized[Q, V] { return newPri(d) },
		func(s []Item[V]) (Max[Q, V], DynamicMax[Q, V]) { return newMax(s), nil })
	return e, nil
}

// NewDynamicExpected builds the updatable Theorem 2 structure from dynamic
// building blocks.
func NewDynamicExpected[Q, V any](
	items []Item[V],
	match MatchFunc[Q, V],
	newPri DynamicPrioritizedFactory[Q, V],
	newMax DynamicMaxFactory[Q, V],
	opts ExpectedOptions,
) (*Expected[Q, V], error) {
	opts.fill()
	e := &Expected[Q, V]{
		opts: opts, match: match,
		newPri: newPri, newMax: newMax,
		rng: wrand.New(opts.Seed ^ 0x7468_6d32),
	}
	if err := e.init(items); err != nil {
		return nil, err
	}
	e.rebuild()
	return e, nil
}

func (e *Expected[Q, V]) init(items []Item[V]) error {
	if err := ValidateWeights(items); err != nil {
		return err
	}
	e.items = make([]Item[V], len(items))
	copy(e.items, items)
	e.posByW = make(map[float64]int, len(items))
	for i, it := range e.items {
		e.posByW[it.Weight] = i
	}
	return nil
}

// build (re)constructs the prioritized structure and the sample ladder
// from e.items using the supplied constructors.
func (e *Expected[Q, V]) build(
	mkPri func([]Item[V]) Prioritized[Q, V],
	mkMax func([]Item[V]) (Max[Q, V], DynamicMax[Q, V]),
) {
	n := len(e.items)
	e.nAtBuild = n
	base := make([]Item[V], n)
	copy(base, e.items)
	e.pri = mkPri(base)

	e.levels = nil
	e.stats.SampledItems = 0
	kMin := e.kMin(n)
	for k := kMin; k <= float64(n)/4; k *= 1 + e.opts.Sigma {
		idx := e.rng.SampleIndices(n, 1/k)
		sample := make([]Item[V], len(idx))
		members := make(map[float64]struct{}, len(idx))
		for i, j := range idx {
			sample[i] = e.items[j]
			members[sample[i].Weight] = struct{}{}
		}
		mx, mxDyn := mkMax(sample)
		e.levels = append(e.levels, expLevel[Q, V]{k: k, max: mx, maxDyn: mxDyn, members: members})
		e.stats.SampledItems += len(sample)
	}
	e.stats.LadderLevels = len(e.levels)
}

func (e *Expected[Q, V]) rebuild() {
	e.stats.Rebuilds++
	sp := e.opts.Tracker.BeginSpan()
	defer e.opts.Tracker.EndSpan(sp, PhaseT2Rebuild, -1, int64(len(e.items)))
	e.build(
		func(d []Item[V]) Prioritized[Q, V] {
			dp := e.newPri(d)
			e.priDyn = dp
			return dp
		},
		func(s []Item[V]) (Max[Q, V], DynamicMax[Q, V]) {
			dm := e.newMax(s)
			return dm, dm
		},
	)
}

// kMin is B·Q_max(n), the smallest ladder rung K_1 (§4).
func (e *Expected[Q, V]) kMin(n int) float64 {
	v := float64(e.opts.B) * math.Max(e.opts.QMax(n), 1)
	if v < 1 {
		v = 1
	}
	return v
}

// N returns the number of live items.
func (e *Expected[Q, V]) N() int { return len(e.items) }

// Stats returns a snapshot of the instrumentation counters.
func (e *Expected[Q, V]) Stats() ExpectedStats {
	st := e.stats
	st.Queries = e.qstats.queries.Load()
	st.Rounds = e.qstats.rounds.Load()
	st.NaiveScans = e.qstats.naiveScans.Load()
	for i := range st.RoundHist {
		st.RoundHist[i] = e.qstats.roundHist[i].Load()
	}
	return st
}

// Prioritized exposes the reduction's internal prioritized structure on D
// (kept up to date by the dynamic path), so callers can answer prioritized
// queries without building a second copy of the black box.
func (e *Expected[Q, V]) Prioritized() Prioritized[Q, V] { return e.pri }

// Items returns a snapshot of the live item set in unspecified order.
func (e *Expected[Q, V]) Items() []Item[V] {
	out := make([]Item[V], len(e.items))
	copy(out, e.items)
	return out
}

// TopK answers a top-k query by the round algorithm of Section 4. The
// result is weight-descending with min(k, |q(D)|) items. When the tracker
// has a trace sink, each round, probe, max lookup and harvest is emitted
// as a span carrying its I/O delta (phases.go).
func (e *Expected[Q, V]) TopK(q Q, k int) []Item[V] {
	e.qstats.queries.Add(1)
	n := len(e.items)
	if k <= 0 || n == 0 {
		return nil
	}
	tr := e.opts.Tracker

	// Queries with k < B·Q_max(n) are treated as top-(B·Q_max(n)) and
	// finished with k-selection.
	kq := k
	if min := int(math.Ceil(e.kMin(n))); kq < min {
		kq = min
	}

	// k beyond the ladder top (or no ladder at all): scan D naively in
	// O(n/B) = O(k/B).
	if len(e.levels) == 0 || float64(kq) > e.levels[len(e.levels)-1].k {
		e.qstats.naiveScans.Add(1)
		sp := tr.BeginSpan()
		res := e.scanTopK(q, k)
		tr.EndSpan(sp, PhaseT2Scan, -1, int64(n))
		return res
	}

	// Smallest rung i with K_i ≥ kq.
	lo := 0
	for lo < len(e.levels) && e.levels[lo].k < float64(kq) {
		lo++
	}

	rounds := 0
	for j := lo; j < len(e.levels); j++ {
		rounds++
		lvl := &e.levels[j]
		cap4K := int(4 * lvl.k)
		rsp := tr.BeginSpan()

		// Step 1: if |q(D)| ≤ 4K_j the cost-monitored query solves it.
		sp := tr.BeginSpan()
		cand, complete := CollectAtMost(e.pri, q, math.Inf(-1), cap4K)
		tr.EndSpan(sp, probePhase(complete), j, int64(len(cand)))
		if complete {
			e.chargeScan(len(cand))
			tr.EndSpan(rsp, PhaseT2RoundDirect, j, int64(rounds))
			e.finishRounds(rounds)
			return TopKOf(cand, k)
		}

		// Step 2: heaviest sampled element in q(R_j).
		tau := math.Inf(-1)
		sp = tr.BeginSpan()
		if it, ok := lvl.max.MaxItem(q); ok {
			tau = it.Weight
		}
		tr.EndSpan(sp, PhaseT2Max, j, 0)
		if math.IsInf(tau, -1) {
			// Empty q(R_j): the τ = −∞ probe would repeat step 1's
			// capped query and fail; skip straight to the next round.
			tr.EndSpan(rsp, PhaseT2RoundEmpty, j, int64(rounds))
			continue
		}

		// Step 3: cost-monitored harvest above τ.
		sp = tr.BeginSpan()
		s, complete := CollectAtMost(e.pri, q, tau, cap4K)
		tr.EndSpan(sp, harvestPhase(complete), j, int64(len(s)))

		// Step 4: failure tests.
		if !complete || len(s) <= int(lvl.k) {
			tr.EndSpan(rsp, PhaseT2RoundFail, j, int64(rounds))
			continue
		}

		// Step 5: success — k-selection over S.
		e.chargeScan(len(s))
		tr.EndSpan(rsp, PhaseT2RoundOK, j, int64(rounds))
		e.finishRounds(rounds)
		return TopKOf(s, k)
	}

	// Step 6(b): ladder exhausted; read the whole D.
	e.qstats.naiveScans.Add(1)
	e.finishRounds(rounds)
	sp := tr.BeginSpan()
	res := e.scanTopK(q, k)
	tr.EndSpan(sp, PhaseT2Scan, -1, int64(n))
	return res
}

// probePhase / harvestPhase pick the outcome variant of a cost-monitored
// subquery's phase: complete means the prioritized query terminated by
// itself; incomplete means the cost monitor aborted it.
func probePhase(complete bool) string {
	if complete {
		return PhaseT2ProbeOK
	}
	return PhaseT2ProbeAbort
}

func harvestPhase(complete bool) string {
	if complete {
		return PhaseT2HarvestOK
	}
	return PhaseT2HarvestAbort
}

func (e *Expected[Q, V]) finishRounds(r int) {
	e.qstats.rounds.Add(int64(r))
	idx := r - 1
	if idx >= len(e.qstats.roundHist) {
		idx = len(e.qstats.roundHist) - 1
	}
	e.qstats.roundHist[idx].Add(1)
}

func (e *Expected[Q, V]) scanTopK(q Q, k int) []Item[V] {
	e.chargeScan(len(e.items))
	col := xsort.NewCollector(k, LessItems[V])
	for _, it := range e.items {
		if e.match(q, it.Value) {
			col.Offer(it)
		}
	}
	return col.Items()
}

func (e *Expected[Q, V]) chargeScan(nItems int) {
	if e.opts.Tracker != nil {
		e.opts.Tracker.ScanCost(nItems)
	}
}

// Insert adds an item (dynamic mode only): one insertion into the
// prioritized structure and, in expectation, O(1) insertions into max
// structures — each rung samples the new element with probability 1/K_i,
// and Σ 1/K_i = O(1/(B·Q_max)) (§4, "Update").
func (e *Expected[Q, V]) Insert(it Item[V]) error {
	if e.priDyn == nil {
		panic("core: Insert on a static Expected structure; build with NewDynamicExpected")
	}
	if _, dup := e.posByW[it.Weight]; dup {
		return fmt.Errorf("core: duplicate weight %v", it.Weight)
	}
	e.stats.Inserts++
	e.posByW[it.Weight] = len(e.items)
	e.items = append(e.items, it)
	e.priDyn.Insert(it)
	for i := range e.levels {
		lvl := &e.levels[i]
		if e.rng.Bernoulli(1 / lvl.k) {
			lvl.maxDyn.Insert(it)
			lvl.members[it.Weight] = struct{}{}
		}
	}
	e.maybeRebuild()
	return nil
}

// DeleteWeight removes the item with the given weight (dynamic mode only)
// and reports whether it was present.
func (e *Expected[Q, V]) DeleteWeight(w float64) bool {
	if e.priDyn == nil {
		panic("core: DeleteWeight on a static Expected structure; build with NewDynamicExpected")
	}
	pos, ok := e.posByW[w]
	if !ok {
		return false
	}
	e.stats.Deletes++
	last := len(e.items) - 1
	moved := e.items[last]
	e.items[pos] = moved
	e.items = e.items[:last]
	e.posByW[moved.Weight] = pos
	delete(e.posByW, w)

	e.priDyn.DeleteWeight(w)
	for i := range e.levels {
		lvl := &e.levels[i]
		if _, in := lvl.members[w]; in {
			lvl.maxDyn.DeleteWeight(w)
			delete(lvl.members, w)
		}
	}
	e.maybeRebuild()
	return true
}

func (e *Expected[Q, V]) maybeRebuild() {
	n, n0 := float64(len(e.items)), float64(e.nAtBuild)
	if n0 < 16 {
		n0 = 16 // avoid rebuild thrash on tiny structures
	}
	if n > n0*e.opts.RebuildFactor || n < n0/e.opts.RebuildFactor {
		e.rebuild()
	}
}
