package core

import (
	"math"

	"topk/internal/wrand"
)

// This file implements the sampling machinery of Sections 3.1 and 4:
//
//   - Lemma 1 (rank sampling): in a p-sample R of S, the element with rank
//     ⌈2kp⌉ in R has rank in [k, 4k] in S, w.p. ≥ 1-δ when kp ≥ 3 ln(3/δ)
//     and n ≥ 4k.
//   - Lemma 2 (top-k core-set): a p-sample with p = 4(λ/K) ln n acts as a
//     core-set: for every predicate with |q(D)| ≥ 4K, the rank-⌈8λ ln n⌉
//     element of q(R) has rank in [K, 4K] in q(D).
//   - Lemma 3: in a (1/K)-sample, the maximum has rank in (K, 4K] w.p.
//     ≥ 0.09.

// CoreSetParams carries the parameters of one Lemma 2 application.
type CoreSetParams struct {
	N      int     // |D| at the top of the recursion (ln n factors use this)
	K      float64 // target rank scale (the lemma's K)
	Lambda float64 // polynomial-boundedness exponent λ
}

// P returns the sampling probability p = min(1, 4(λ/K) ln n) from the
// proof of Lemma 2.
func (cp CoreSetParams) P() float64 {
	if cp.N < 2 || cp.K <= 0 {
		return 1
	}
	p := 4 * cp.Lambda * math.Log(float64(cp.N)) / cp.K
	if p >= 1 {
		return 1
	}
	return p
}

// PivotRank returns ⌈8λ ln n⌉, the in-sample weight rank whose element the
// query algorithms of Section 3.2 retrieve from the core-set.
func (cp CoreSetParams) PivotRank() int {
	r := int(math.Ceil(8 * cp.Lambda * math.Log(float64(cp.N))))
	if r < 1 {
		return 1
	}
	return r
}

// MaxSize returns the Lemma 2 size bound 12λ(n/K) ln n, against which the
// construction resamples.
func (cp CoreSetParams) MaxSize() float64 {
	if cp.N < 2 {
		return float64(cp.N)
	}
	return 12 * cp.Lambda * (float64(cp.N) / cp.K) * math.Log(float64(cp.N))
}

// CoreSet draws a p-sample of items per Lemma 2, resampling until the
// |R| ≤ 12λ(n/K) ln n size bound holds (the proof shows each draw succeeds
// with probability ≥ 2/3, so the loop terminates after O(1) expected
// draws). The rank guarantees hold per-query with the lemma's probability;
// they are existential in the lemma and validated empirically by
// experiment E3.
func CoreSet[V any](g *wrand.RNG, items []Item[V], cp CoreSetParams) []Item[V] {
	p := cp.P()
	if p >= 1 {
		out := make([]Item[V], len(items))
		copy(out, items)
		return out
	}
	bound := cp.MaxSize()
	for {
		idx := g.SampleIndices(len(items), p)
		if float64(len(idx)) <= bound {
			out := make([]Item[V], len(idx))
			for i, j := range idx {
				out[i] = items[j]
			}
			return out
		}
	}
}

// Lemma1Params is one parameter cell of Lemma 1.
type Lemma1Params struct {
	N     int     // |S|
	K     int     // target rank k
	P     float64 // sampling probability
	Delta float64 // failure probability bound δ
}

// Applicable reports whether the lemma's working conditions hold:
// kp ≥ 3 ln(3/δ) and n ≥ 4k.
func (lp Lemma1Params) Applicable() bool {
	return float64(lp.K)*lp.P >= 3*math.Log(3/lp.Delta) && lp.N >= 4*lp.K
}

// SampleRank returns ⌈2kp⌉, the in-sample rank Lemma 1 speaks about.
func (lp Lemma1Params) SampleRank() int {
	return int(math.Ceil(2 * float64(lp.K) * lp.P))
}

// Lemma1Trial draws one p-sample of {1..n} (interpreting i as the element
// of rank i, largest first) and reports whether both bullets of Lemma 1
// hold: |R| > 2kp, and the rank-⌈2kp⌉ sample has true rank in [k, 4k].
// Experiments run many trials to compare the empirical failure rate
// against δ.
func Lemma1Trial(g *wrand.RNG, lp Lemma1Params) bool {
	idx := g.SampleIndices(lp.N, lp.P) // ascending; idx[j] has true rank idx[j]+1
	if float64(len(idx)) <= 2*float64(lp.K)*lp.P {
		return false
	}
	r := lp.SampleRank()
	if r > len(idx) {
		return false
	}
	trueRank := idx[r-1] + 1
	return trueRank >= lp.K && trueRank <= 4*lp.K
}

// Lemma3Trial draws one (1/K)-sample of {1..n} and reports whether both
// bullets of Lemma 3 hold: the sample is non-empty, and its largest element
// (the one with the smallest true rank) has true rank in (K, 4K].
// The lemma guarantees success probability ≥ 0.09 when K ≥ 2, n ≥ 4K.
func Lemma3Trial(g *wrand.RNG, n int, k float64) bool {
	idx := g.SampleIndices(n, 1/k)
	if len(idx) == 0 {
		return false
	}
	trueRank := float64(idx[0] + 1)
	return trueRank > k && trueRank <= 4*k
}

// RankOfWeight returns the 1-based weight rank of w within items (1 =
// heaviest); ok is false when w is absent. O(n); used by tests and the
// lemma validators, not by query paths.
func RankOfWeight[V any](items []Item[V], w float64) (rank int, ok bool) {
	rank = 1
	for _, it := range items {
		if it.Weight == w {
			ok = true
		} else if it.Weight > w {
			rank++
		}
	}
	if !ok {
		return 0, false
	}
	return rank, true
}
