package core

import (
	"math"
	"testing"

	"topk/internal/wrand"
)

// Test problem: elements are points on the real line, predicates are
// closed ranges [Lo, Hi]. This is 1D range reporting — simple enough for a
// transparent oracle, rich enough to exercise every reduction path.

type span struct{ Lo, Hi float64 }

func spanMatch(q span, x float64) bool { return x >= q.Lo && x <= q.Hi }

// genItems returns n points uniform in [0, 100) with distinct weights.
func genItems(g *wrand.RNG, n int) []Item[float64] {
	ws := g.UniqueFloats(n, 1000)
	items := make([]Item[float64], n)
	for i := range items {
		items[i] = Item[float64]{Value: g.Float64() * 100, Weight: ws[i]}
	}
	return items
}

// naive is a correct, updatable prioritized+max structure used as the
// plugged-in black box in reduction tests.
type naive struct {
	items []Item[float64]
	pos   map[float64]int
}

func newNaive(items []Item[float64]) *naive {
	n := &naive{items: append([]Item[float64](nil), items...), pos: map[float64]int{}}
	for i, it := range n.items {
		n.pos[it.Weight] = i
	}
	return n
}

func (n *naive) ReportAbove(q span, tau float64, emit func(Item[float64]) bool) {
	for _, it := range n.items {
		if it.Weight >= tau && spanMatch(q, it.Value) {
			if !emit(it) {
				return
			}
		}
	}
}

func (n *naive) MaxItem(q span) (Item[float64], bool) {
	best, ok := Item[float64]{Weight: math.Inf(-1)}, false
	for _, it := range n.items {
		if spanMatch(q, it.Value) && it.Weight > best.Weight {
			best, ok = it, true
		}
	}
	return best, ok
}

func (n *naive) Insert(it Item[float64]) {
	n.pos[it.Weight] = len(n.items)
	n.items = append(n.items, it)
}

func (n *naive) DeleteWeight(w float64) bool {
	i, ok := n.pos[w]
	if !ok {
		return false
	}
	last := len(n.items) - 1
	n.items[i] = n.items[last]
	n.pos[n.items[i].Weight] = i
	n.items = n.items[:last]
	delete(n.pos, w)
	return true
}

// oracleTopK computes ground truth by full scan.
func oracleTopK(items []Item[float64], q span, k int) []Item[float64] {
	var hit []Item[float64]
	for _, it := range items {
		if spanMatch(q, it.Value) {
			hit = append(hit, it)
		}
	}
	return TopKOf(hit, k)
}

func sameItems(t *testing.T, got, want []Item[float64], ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d items, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].Weight != want[i].Weight || got[i].Value != want[i].Value {
			t.Fatalf("%s: item %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

func TestCollectAtMost(t *testing.T) {
	items := []Item[float64]{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	p := newNaive(items)
	q := span{0, 100}

	got, complete := CollectAtMost[span, float64](p, q, math.Inf(-1), 10)
	if !complete || len(got) != 4 {
		t.Fatalf("uncapped: complete=%v len=%d, want true,4", complete, len(got))
	}
	got, complete = CollectAtMost[span, float64](p, q, math.Inf(-1), 3)
	if complete || len(got) != 4 {
		t.Fatalf("capped at 3: complete=%v len=%d, want false,4 (limit+1 collected)", complete, len(got))
	}
	got, complete = CollectAtMost[span, float64](p, q, 25, 10)
	if !complete || len(got) != 2 {
		t.Fatalf("tau=25: complete=%v len=%d, want true,2", complete, len(got))
	}
	got, complete = CollectAtMost[span, float64](p, q, math.Inf(-1), 4)
	if !complete || len(got) != 4 {
		t.Fatalf("limit=n: complete=%v len=%d, want true,4", complete, len(got))
	}
}

func TestTopKOf(t *testing.T) {
	items := []Item[float64]{{1, 10}, {2, 40}, {3, 20}, {4, 30}}
	got := TopKOf(append([]Item[float64](nil), items...), 2)
	if len(got) != 2 || got[0].Weight != 40 || got[1].Weight != 30 {
		t.Fatalf("TopKOf k=2 = %+v", got)
	}
	got = TopKOf(append([]Item[float64](nil), items...), 99)
	if len(got) != 4 || got[0].Weight != 40 || got[3].Weight != 10 {
		t.Fatalf("TopKOf k=99 = %+v", got)
	}
	if got := TopKOf(append([]Item[float64](nil), items...), 0); len(got) != 0 {
		t.Fatalf("TopKOf k=0 = %+v", got)
	}
}

func TestLogB(t *testing.T) {
	if got := LogB(64, 64); got != 1 {
		t.Errorf("LogB(64,64) = %v, want 1", got)
	}
	if got := LogB(64*64, 64); math.Abs(got-2) > 1e-12 {
		t.Errorf("LogB(64^2,64) = %v, want 2", got)
	}
	if got := LogB(2, 64); got != 1 {
		t.Errorf("LogB(2,64) = %v, want clamp to 1", got)
	}
	if got := LogB(0, 64); got != 1 {
		t.Errorf("LogB(0,64) = %v, want 1", got)
	}
}

func TestCheckDistinctWeights(t *testing.T) {
	if _, ok := CheckDistinctWeights([]Item[int]{{1, 1}, {2, 2}}); !ok {
		t.Error("distinct weights flagged as duplicate")
	}
	if dup, ok := CheckDistinctWeights([]Item[int]{{1, 5}, {2, 5}}); ok || dup != 5 {
		t.Errorf("duplicate weight not detected: dup=%v ok=%v", dup, ok)
	}
	if _, ok := CheckDistinctWeights([]Item[int]{}); !ok {
		t.Error("empty set flagged as duplicate")
	}
}

func TestSortByWeightDesc(t *testing.T) {
	items := []Item[float64]{{1, 10}, {2, 40}, {3, 20}}
	SortByWeightDesc(items)
	if items[0].Weight != 40 || items[1].Weight != 20 || items[2].Weight != 10 {
		t.Fatalf("sorted = %+v", items)
	}
}
