package core

import (
	"math"
	"sync/atomic"

	"topk/internal/em"
	"topk/internal/wrand"
	"topk/internal/xsort"
)

// This file implements the Theorem 1 reduction (Section 3.2): from any
// prioritized-reporting structure on a λ-polynomially-bounded problem to a
// static top-k structure with
//
//	S_top(n) = O(S_pri(n))
//	Q_top(n) = O(Q_pri(n) · log n / (log B + log(Q_pri(n)/log_B n)))
//
// The construction defines (Eqs. 8–9)
//
//	g = Q_pri(n) / log_B n        (≥ 1 by assumption)
//	f = 12 λ B Q_pri(n)
//
// and has two components:
//
//   - a "top-f chain": nested core-sets R_0 = D ⊇ R_1 ⊇ R_2 ⊇ … (each a
//     Lemma 2 core-set of the previous with K = f), each carrying a
//     prioritized structure, answering all queries with k ≤ f;
//   - a "large-k ladder": core-sets R[i] of D with K = 2^(i-1) f for
//     i = 1..h, each carrying its own top-f chain, answering k > f.
//
// Lemma 2 is existential (each sample is good with constant probability),
// so the query algorithms here are made *self-checking*: whenever a sample
// fails to deliver the rank guarantee the algorithm detects it (too few
// elements above the pivot weight) and falls back to an exhaustive
// prioritized enumeration, preserving correctness unconditionally and the
// cost bound with the lemma's probability. Fallbacks are counted in Stats.

// WorstCaseOptions configures the Theorem 1 reduction.
type WorstCaseOptions struct {
	// B is the block size used in the f and g formulas. The paper assumes
	// B ≥ 64 in EM; in RAM it is a constant. Default 64.
	B int
	// Lambda is the polynomial-boundedness exponent λ of the underlying
	// problem (|{q(D)}| ≤ n^λ). Default 2, which covers every problem in
	// the paper's Section 5 (intervals and enclosure have λ ≤ 2,
	// halfplanes have λ = 2, 3D dominance λ = 3 — pass it explicitly).
	Lambda float64
	// QPri estimates Q_pri(n), the query-overhead term of the plugged-in
	// prioritized structure, in I/Os. Theorem 1 requires
	// Q_pri(n) ≥ log_B n; the value is clamped up to that.
	// Default: log_B n.
	QPri func(n int) float64
	// FScale multiplies the top-f threshold f = 12λB·Q_pri(n). The
	// paper's constant is chosen for the asymptotic analysis and makes f
	// comparable to n at laptop scales; smaller values let experiments
	// observe the asymptotic regime at feasible n. Correctness is
	// unaffected — the query algorithms self-check every sample and
	// repair failures — only the failure probability grows. Default 1.
	FScale float64
	// Seed drives the core-set sampling. Same seed ⇒ same structure.
	Seed uint64
	// Tracker, when non-nil, is charged for the reduction's own scan and
	// k-selection I/Os (the plugged-in structures charge theirs
	// separately, typically to the same tracker).
	Tracker *em.Tracker
}

func (o *WorstCaseOptions) fill() {
	if o.B <= 1 {
		o.B = 64
	}
	if o.Lambda <= 0 {
		o.Lambda = 2
	}
	if o.QPri == nil {
		b := o.B
		o.QPri = func(n int) float64 { return LogB(n, b) }
	}
	if o.FScale <= 0 {
		o.FScale = 1
	}
}

// WorstCaseStats exposes instrumentation of the Theorem 1 structure.
type WorstCaseStats struct {
	F            int   // the top-f threshold 12λB·Q_pri(n)
	ChainLevels  int   // number of nested core-sets on D (h in §3.2)
	LadderLevels int   // number of large-k core-sets R[i]
	CoreSetItems int   // total items across all core-sets (space overhead)
	Queries      int64 // top-k queries answered
	Fallbacks    int64 // self-check fallbacks taken (bad samples)
	ChainScans   int64 // bottom-level scans performed
}

// WorstCase is the Theorem 1 top-k structure. It is static: build once,
// query many times.
type WorstCase[Q, V any] struct {
	opts  WorstCaseOptions
	match MatchFunc[Q, V]
	f     int
	items []Item[V] // D, weight-descending
	chain *topfChain[Q, V]
	// ladder[i] is the top-f chain on the core-set R[i+1] with
	// K = 2^i · f (paper's i = index+1).
	ladder []*topfChain[Q, V]

	// stats holds the build-time fields of WorstCaseStats; the query-path
	// counters live in qstats as atomics so that concurrent read-only
	// queries stay data-race-free.
	stats  WorstCaseStats
	qstats wcQueryCounters
}

// wcQueryCounters are the query-path instrumentation counters, atomic
// because any number of TopK calls may run concurrently.
type wcQueryCounters struct {
	queries    atomic.Int64
	fallbacks  atomic.Int64
	chainScans atomic.Int64
}

// topfChain is the nested-core-set structure answering top-f queries
// (§3.2, "queries with k ≤ f").
type topfChain[Q, V any] struct {
	f      int
	lambda float64
	levels []chainLevel[Q, V]
	owner  *WorstCase[Q, V]
}

type chainLevel[Q, V any] struct {
	items []Item[V]
	pri   Prioritized[Q, V]
}

// NewWorstCase builds the Theorem 1 structure over items. newPri is
// invoked on D and on every core-set. match is used only for bottom-level
// scans. It returns an error if the items carry duplicate weights.
func NewWorstCase[Q, V any](
	items []Item[V],
	match MatchFunc[Q, V],
	newPri PrioritizedFactory[Q, V],
	opts WorstCaseOptions,
) (*WorstCase[Q, V], error) {
	opts.fill()
	if err := ValidateWeights(items); err != nil {
		return nil, err
	}
	n := len(items)
	d := make([]Item[V], n)
	copy(d, items)
	SortByWeightDesc(d)

	qpri := math.Max(opts.QPri(n), LogB(n, opts.B))
	f := int(math.Ceil(opts.FScale * 12 * opts.Lambda * float64(opts.B) * qpri))
	if f < 1 {
		f = 1
	}

	w := &WorstCase[Q, V]{opts: opts, match: match, f: f, items: d}
	g := wrand.New(opts.Seed ^ 0x7461_6f31) // independent stream per structure

	w.chain = buildChain(w, d, newPri, g.Split())
	w.stats.ChainLevels = len(w.chain.levels)

	// Large-k ladder: R[i] with K = 2^(i-1) f while 2^(i-1) f ≤ n.
	for k := float64(f); k <= float64(n); k *= 2 {
		r := CoreSet(g, d, CoreSetParams{N: n, K: k, Lambda: opts.Lambda})
		w.ladder = append(w.ladder, buildChain(w, r, newPri, g.Split()))
		w.stats.CoreSetItems += len(r)
	}
	w.stats.LadderLevels = len(w.ladder)
	w.stats.F = f
	for _, lvl := range w.chain.levels[1:] {
		w.stats.CoreSetItems += len(lvl.items)
	}
	return w, nil
}

// buildChain constructs the nested top-f chain over base: R_0 = base and
// R_{i+1} = CoreSet(R_i, K = f) until |R_i| ≤ 4f. The guard against
// non-shrinking samples keeps construction total even when the lemma's
// preconditions are violated by tiny inputs.
func buildChain[Q, V any](
	owner *WorstCase[Q, V],
	base []Item[V],
	newPri PrioritizedFactory[Q, V],
	g *wrand.RNG,
) *topfChain[Q, V] {
	c := &topfChain[Q, V]{f: owner.f, lambda: owner.opts.Lambda, owner: owner}
	cur := base
	for {
		c.levels = append(c.levels, chainLevel[Q, V]{items: cur, pri: newPri(cur)})
		if len(cur) <= 4*c.f {
			break
		}
		next := CoreSet(g, cur, CoreSetParams{N: len(cur), K: float64(c.f), Lambda: c.lambda})
		if len(next) >= len(cur) || len(next) == 0 {
			break // degenerate sample; the current level becomes the base case
		}
		cur = next
	}
	return c
}

// N returns the number of indexed items.
func (w *WorstCase[Q, V]) N() int { return len(w.items) }

// F returns the small/large-k threshold f = 12λB·Q_pri(n).
func (w *WorstCase[Q, V]) F() int { return w.f }

// Stats returns a snapshot of the instrumentation counters.
func (w *WorstCase[Q, V]) Stats() WorstCaseStats {
	st := w.stats
	st.Queries = w.qstats.queries.Load()
	st.Fallbacks = w.qstats.fallbacks.Load()
	st.ChainScans = w.qstats.chainScans.Load()
	return st
}

// Prioritized exposes the structure's prioritized black box on D (the
// chain's level 0), so callers can answer prioritized queries without
// building a second copy.
func (w *WorstCase[Q, V]) Prioritized() Prioritized[Q, V] { return w.chain.levels[0].pri }

// TopK answers a top-k query (§3.2). The result is weight-descending with
// min(k, |q(D)|) items. When the tracker has a trace sink, each chain
// level, probe, harvest and fallback is emitted as a span carrying its
// I/O delta (phases.go).
func (w *WorstCase[Q, V]) TopK(q Q, k int) []Item[V] {
	w.qstats.queries.Add(1)
	if k <= 0 || len(w.items) == 0 {
		return nil
	}
	n := len(w.items)

	// k ≥ n/2: scan the entire D in O(n/B) = O(k/B) I/Os.
	if k >= n/2 {
		return w.tracedScanTopK(q, k)
	}
	// k ≤ f: answer as a top-f query followed by k-selection.
	if k <= w.f {
		top := w.chain.topF(q)
		if k < len(top) {
			top = top[:k]
		}
		return top
	}
	return w.largeK(q, k)
}

// largeK answers queries with f < k < n/2 via the ladder (§3.2, "queries
// with k > f").
func (w *WorstCase[Q, V]) largeK(q Q, k int) []Item[V] {
	n := len(w.items)
	priD := w.chain.levels[0].pri

	// Smallest i ≥ 1 with 2^(i-1) f ≥ k; then K = 2^(i-1) f ∈ [k, 2k).
	i := 0
	bigK := w.f
	for bigK < k && i+1 < len(w.ladder) {
		bigK *= 2
		i++
	}
	if bigK < k {
		// Ladder exhausted (can happen only for k close to n/2 with a
		// degenerate ladder); scanning is within the O(k/B) budget.
		return w.tracedScanTopK(q, k)
	}
	tr := w.opts.Tracker

	// If |q(D)| ≤ 4K, a cost-monitored prioritized query solves it.
	sp := tr.BeginSpan()
	cand, complete := CollectAtMost(priD, q, math.Inf(-1), 4*bigK)
	tr.EndSpan(sp, t1ProbePhase(complete), -1, int64(len(cand)))
	if complete {
		w.chargeScan(len(cand))
		return TopKOf(cand, k)
	}

	// |q(D)| > 4K: fetch the pivot from the core-set R[i] via its top-f
	// structure, then harvest from D above the pivot's weight.
	chain := w.ladder[i]
	r := pivotRank(n, w.opts.Lambda)
	top := chain.topF(q)
	if len(top) < r {
		w.qstats.fallbacks.Add(1)
		return w.tracedExhaustive(priD, q, k)
	}
	pivot := top[r-1].Weight
	sp = tr.BeginSpan()
	got, cnt := w.harvest(priD, q, pivot, k)
	tr.EndSpan(sp, PhaseT1Harvest, -1, int64(cnt))
	if cnt < k {
		// The pivot landed above rank k in q(D) (sample failure): the
		// harvested set may miss part of the answer.
		w.qstats.fallbacks.Add(1)
		return w.tracedExhaustive(priD, q, k)
	}
	return got
}

// tracedScanTopK / tracedExhaustive wrap the two repair/fallback paths in
// their trace spans (no-ops when tracing is off).
func (w *WorstCase[Q, V]) tracedScanTopK(q Q, k int) []Item[V] {
	sp := w.opts.Tracker.BeginSpan()
	res := w.scanTopK(q, k)
	w.opts.Tracker.EndSpan(sp, PhaseT1Scan, -1, int64(len(w.items)))
	return res
}

func (w *WorstCase[Q, V]) tracedExhaustive(p Prioritized[Q, V], q Q, k int) []Item[V] {
	sp := w.opts.Tracker.BeginSpan()
	res := w.exhaustive(p, q, k)
	w.opts.Tracker.EndSpan(sp, PhaseT1Fallback, -1, int64(k))
	return res
}

func t1ProbePhase(complete bool) string {
	if complete {
		return PhaseT1ProbeOK
	}
	return PhaseT1ProbeAbort
}

// topF answers a top-f query on the chain (the inductive algorithm of
// §3.2), returning min(f, |q(R_0)|) items weight-descending.
func (c *topfChain[Q, V]) topF(q Q) []Item[V] {
	return c.query(q, 0)
}

// query wraps one level's work in its PhaseT1Level trace span; the
// level's probe/harvest/fallback spans (and the recursive deeper levels)
// nest inside it, so a query's depth-0 spans partition its total cost.
func (c *topfChain[Q, V]) query(q Q, j int) []Item[V] {
	w := c.owner
	sp := w.opts.Tracker.BeginSpan()
	res := c.queryLevel(q, j)
	w.opts.Tracker.EndSpan(sp, PhaseT1Level, j, int64(len(c.levels[j].items)))
	return res
}

func (c *topfChain[Q, V]) queryLevel(q Q, j int) []Item[V] {
	w := c.owner
	tr := w.opts.Tracker
	lvl := c.levels[j]
	// Base case: scan the bottom core-set.
	if j == len(c.levels)-1 {
		w.qstats.chainScans.Add(1)
		w.chargeScan(len(lvl.items))
		var hit []Item[V]
		for _, it := range lvl.items {
			if w.match(q, it.Value) {
				hit = append(hit, it)
			}
		}
		return TopKOf(hit, c.f)
	}

	// |q(R_j)| ≤ 4f ⇒ the cost-monitored query solves it directly.
	sp := tr.BeginSpan()
	cand, complete := CollectAtMost(lvl.pri, q, math.Inf(-1), 4*c.f)
	tr.EndSpan(sp, t1ProbePhase(complete), j, int64(len(cand)))
	if complete {
		w.chargeScan(len(cand))
		return TopKOf(cand, c.f)
	}

	// |q(R_j)| > 4f: recurse for the pivot, then harvest above it.
	r := pivotRank(len(lvl.items), c.lambda)
	if r > c.f {
		r = c.f // Eq. (11) guarantees r ≤ f; clamp for degenerate params
	}
	sub := c.query(q, j+1)
	if len(sub) < r {
		w.qstats.fallbacks.Add(1)
		return w.tracedExhaustive(lvl.pri, q, c.f)
	}
	pivot := sub[r-1].Weight
	sp = tr.BeginSpan()
	got, cnt := w.harvest(lvl.pri, q, pivot, c.f)
	tr.EndSpan(sp, PhaseT1Harvest, j, int64(cnt))
	if cnt < c.f {
		w.qstats.fallbacks.Add(1)
		return w.tracedExhaustive(lvl.pri, q, c.f)
	}
	return got
}

// pivotRank is ⌈8λ ln n⌉, the in-sample rank Lemma 2 certifies for an
// application of the lemma to a set of size n. (The paper's §3.2 prose
// writes ⌈8λ ln |q(R_j)|⌉ at the recursion step; the lemma's guarantee is
// stated for ln of the *input* size, which is what we use — any
// discrepancy is caught by the self-check and repaired.)
func pivotRank(n int, lambda float64) int {
	if n < 2 {
		return 1
	}
	r := int(math.Ceil(8 * lambda * math.Log(float64(n))))
	if r < 1 {
		r = 1
	}
	return r
}

// harvest streams every element of q(·) with weight ≥ pivot through a
// k-bounded collector. It returns the top-k of that set (weight-descending)
// and the total number streamed; cnt < k signals that the pivot was too
// high (a sample failure the caller must repair).
func (w *WorstCase[Q, V]) harvest(p Prioritized[Q, V], q Q, pivot float64, k int) (top []Item[V], cnt int) {
	col := xsort.NewCollector(k, LessItems[V])
	p.ReportAbove(q, pivot, func(it Item[V]) bool {
		col.Offer(it)
		cnt++
		return true
	})
	w.chargeScan(cnt) // k-selection over the harvested batch
	return col.Items(), cnt
}

// exhaustive answers top-k by draining the prioritized structure with
// τ = −∞. Correct unconditionally; used only on sample failures.
func (w *WorstCase[Q, V]) exhaustive(p Prioritized[Q, V], q Q, k int) []Item[V] {
	col := xsort.NewCollector(k, LessItems[V])
	n := 0
	p.ReportAbove(q, math.Inf(-1), func(it Item[V]) bool {
		col.Offer(it)
		n++
		return true
	})
	w.chargeScan(n)
	return col.Items()
}

// scanTopK answers by scanning all of D (the k ≥ n/2 path).
func (w *WorstCase[Q, V]) scanTopK(q Q, k int) []Item[V] {
	w.chargeScan(len(w.items))
	col := xsort.NewCollector(k, LessItems[V])
	for _, it := range w.items {
		if w.match(q, it.Value) {
			col.Offer(it)
		}
	}
	return col.Items()
}

func (w *WorstCase[Q, V]) chargeScan(nItems int) {
	if w.opts.Tracker != nil {
		w.opts.Tracker.ScanCost(nItems)
	}
}
