package core

import (
	"testing"

	"topk/internal/wrand"
)

func naiveMaxFactory(items []Item[float64]) Max[span, float64] {
	return newNaive(items)
}

func naiveDynPriFactory(items []Item[float64]) DynamicPrioritized[span, float64] {
	return newNaive(items)
}

func naiveDynMaxFactory(items []Item[float64]) DynamicMax[span, float64] {
	return newNaive(items)
}

func buildExp(t *testing.T, g *wrand.RNG, n int, opts ExpectedOptions) (*Expected[span, float64], []Item[float64]) {
	t.Helper()
	items := genItems(g, n)
	e, err := NewExpected(items, spanMatch, naiveFactory, naiveMaxFactory, opts)
	if err != nil {
		t.Fatalf("NewExpected: %v", err)
	}
	return e, items
}

func TestExpectedMatchesOracle(t *testing.T) {
	g := wrand.New(21)
	e, items := buildExp(t, g, 6000, ExpectedOptions{B: 2, Seed: 17})
	for trial := 0; trial < 60; trial++ {
		lo := g.Float64() * 100
		q := span{lo, lo + g.Float64()*60}
		for _, k := range []int{1, 2, 7, 64, 500, 3000, 6000, 9000} {
			got := e.TopK(q, k)
			want := oracleTopK(items, q, k)
			sameItems(t, got, want, "expected topk")
		}
	}
}

func TestExpectedLadderShape(t *testing.T) {
	g := wrand.New(22)
	e, _ := buildExp(t, g, 50000, ExpectedOptions{B: 8, Seed: 3})
	st := e.Stats()
	if st.LadderLevels < 2 {
		t.Fatalf("ladder has %d levels; want a geometric ladder", st.LadderLevels)
	}
	// K_i grows by (1+σ): sample sizes shrink geometrically, so the total
	// sampled items should be a modest multiple of n/K_1 = n/(B·Q_max).
	kmin := e.kMin(50000)
	budget := int(1.0/DefaultSigma+1) * int(float64(50000)/kmin+1) * 3
	if st.SampledItems > budget {
		t.Errorf("sample ladder holds %d items, budget %d", st.SampledItems, budget)
	}
}

func TestExpectedEmptyAndEdge(t *testing.T) {
	g := wrand.New(23)
	e, items := buildExp(t, g, 800, ExpectedOptions{B: 2, Seed: 5})
	if got := e.TopK(span{500, 600}, 5); len(got) != 0 {
		t.Fatalf("empty-range query returned %d items", len(got))
	}
	if got := e.TopK(span{0, 100}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	got := e.TopK(span{0, 100}, len(items)*2)
	if len(got) != len(items) {
		t.Fatalf("k≫n returned %d, want %d", len(got), len(items))
	}
}

func TestExpectedRejectsDuplicateWeights(t *testing.T) {
	items := []Item[float64]{{1, 5}, {2, 5}}
	if _, err := NewExpected(items, spanMatch, naiveFactory, naiveMaxFactory, ExpectedOptions{}); err == nil {
		t.Fatal("duplicate weights accepted")
	}
}

func TestExpectedStaticPanicsOnUpdate(t *testing.T) {
	g := wrand.New(24)
	e, _ := buildExp(t, g, 100, ExpectedOptions{B: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Insert on static structure did not panic")
		}
	}()
	_ = e.Insert(Item[float64]{Value: 1, Weight: 123456})
}

func TestDynamicExpectedInsertDelete(t *testing.T) {
	g := wrand.New(25)
	items := genItems(g, 2000)
	e, err := NewDynamicExpected(items, spanMatch, naiveDynPriFactory, naiveDynMaxFactory,
		ExpectedOptions{B: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	live := append([]Item[float64](nil), items...)

	check := func(ctx string) {
		t.Helper()
		for trial := 0; trial < 10; trial++ {
			lo := g.Float64() * 100
			q := span{lo, lo + g.Float64()*50}
			for _, k := range []int{1, 10, 300} {
				sameItems(t, e.TopK(q, k), oracleTopK(live, q, k), ctx)
			}
		}
	}

	check("initial")

	// Interleave inserts and deletes.
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			it := Item[float64]{Value: g.Float64() * 100, Weight: 1000 + g.Float64()*1000}
			if err := e.Insert(it); err != nil {
				continue // rare duplicate weight collision; skip
			}
			live = append(live, it)
		}
		for i := 0; i < 150; i++ {
			victim := g.IntN(len(live))
			w := live[victim].Weight
			if !e.DeleteWeight(w) {
				t.Fatalf("DeleteWeight(%v) = false for a live item", w)
			}
			live[victim] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		check("after churn round")
	}
	if e.N() != len(live) {
		t.Fatalf("structure size %d, want %d", e.N(), len(live))
	}
}

func TestDynamicExpectedDeleteAbsent(t *testing.T) {
	g := wrand.New(26)
	items := genItems(g, 100)
	e, err := NewDynamicExpected(items, spanMatch, naiveDynPriFactory, naiveDynMaxFactory,
		ExpectedOptions{B: 2, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if e.DeleteWeight(-42) {
		t.Fatal("deleted an absent weight")
	}
	if err := e.Insert(Item[float64]{Value: 1, Weight: items[0].Weight}); err == nil {
		t.Fatal("inserted a duplicate weight without error")
	}
}

func TestDynamicExpectedRebuilds(t *testing.T) {
	g := wrand.New(27)
	items := genItems(g, 200)
	e, err := NewDynamicExpected(items, spanMatch, naiveDynPriFactory, naiveDynMaxFactory,
		ExpectedOptions{B: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		w := 10000 + float64(i)
		if err := e.Insert(Item[float64]{Value: g.Float64() * 100, Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Rebuilds == 0 {
		t.Error("5x growth triggered no rebuild; ladder parameters now stale")
	}
	// Rebuild must preserve correctness.
	q := span{0, 100}
	got := e.TopK(q, 5)
	if len(got) != 5 || got[0].Weight != 10999 {
		t.Fatalf("post-rebuild top-5 = %+v", got)
	}
}

func TestExpectedRoundHistogram(t *testing.T) {
	g := wrand.New(28)
	e, _ := buildExp(t, g, 30000, ExpectedOptions{B: 2, Seed: 43})
	queries := 0
	for trial := 0; trial < 100; trial++ {
		lo := g.Float64() * 80
		e.TopK(span{lo, lo + 20}, 1+g.IntN(100))
		queries++
	}
	st := e.Stats()
	var hist int64
	for _, c := range st.RoundHist {
		hist += c
	}
	// Every non-scan query must land in exactly one histogram bucket.
	if hist+st.NaiveScans < int64(queries) {
		t.Errorf("round histogram total %d + scans %d < queries %d", hist, st.NaiveScans, queries)
	}
	// Section 4: expected rounds is O(1) (geometric with ratio ≤ 0.91·…).
	if queries > 0 && st.Rounds > 8*int64(queries) {
		t.Errorf("mean rounds per query %.1f; expected a small constant", float64(st.Rounds)/float64(queries))
	}
}
