package core

import (
	"testing"

	"topk/internal/wrand"
)

func naiveFactory(items []Item[float64]) Prioritized[span, float64] {
	return newNaive(items)
}

func buildWC(t *testing.T, g *wrand.RNG, n int, opts WorstCaseOptions) (*WorstCase[span, float64], []Item[float64]) {
	t.Helper()
	items := genItems(g, n)
	wc, err := NewWorstCase(items, spanMatch, naiveFactory, opts)
	if err != nil {
		t.Fatalf("NewWorstCase: %v", err)
	}
	return wc, items
}

func TestWorstCaseMatchesOracle(t *testing.T) {
	g := wrand.New(1)
	// Small B keeps f small so that all three query paths (chain, ladder,
	// full scan) are exercised at feasible n.
	wc, items := buildWC(t, g, 6000, WorstCaseOptions{B: 2, Lambda: 1, Seed: 7})
	ks := []int{1, 2, 5, wc.F() - 1, wc.F(), wc.F() + 1, 2 * wc.F(), 4000, 6000, 9999}
	for trial := 0; trial < 60; trial++ {
		lo := g.Float64() * 100
		q := span{lo, lo + g.Float64()*60}
		for _, k := range ks {
			got := wc.TopK(q, k)
			want := oracleTopK(items, q, k)
			sameItems(t, got, want, "worst-case topk")
		}
	}
}

func TestWorstCaseEmptyAndEdgeQueries(t *testing.T) {
	g := wrand.New(2)
	wc, items := buildWC(t, g, 500, WorstCaseOptions{B: 2, Lambda: 1, Seed: 3})

	if got := wc.TopK(span{200, 300}, 5); len(got) != 0 {
		t.Fatalf("empty-range query returned %d items", len(got))
	}
	if got := wc.TopK(span{0, 100}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := wc.TopK(span{0, 100}, -3); got != nil {
		t.Fatalf("k<0 returned %v", got)
	}
	got := wc.TopK(span{0, 100}, 10*len(items))
	if len(got) != len(items) {
		t.Fatalf("k≫n returned %d items, want all %d", len(got), len(items))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Weight >= got[i-1].Weight {
			t.Fatal("result not strictly weight-descending")
		}
	}
}

func TestWorstCaseSingletonAndTiny(t *testing.T) {
	items := []Item[float64]{{Value: 5, Weight: 1}}
	wc, err := NewWorstCase(items, spanMatch, naiveFactory, WorstCaseOptions{B: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := wc.TopK(span{0, 10}, 3); len(got) != 1 || got[0].Value != 5 {
		t.Fatalf("singleton query = %+v", got)
	}
	empty, err := NewWorstCase(nil, spanMatch, naiveFactory, WorstCaseOptions{B: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.TopK(span{0, 10}, 3); len(got) != 0 {
		t.Fatalf("empty structure returned %v", got)
	}
}

func TestWorstCaseRejectsDuplicateWeights(t *testing.T) {
	items := []Item[float64]{{1, 5}, {2, 5}}
	if _, err := NewWorstCase(items, spanMatch, naiveFactory, WorstCaseOptions{}); err == nil {
		t.Fatal("duplicate weights accepted")
	}
}

func TestWorstCaseSpaceIsLinear(t *testing.T) {
	// Theorem 1: S_top = O(S_pri). With S_pri linear in items, the total
	// number of core-set items must be O(n) — check the constant is small.
	g := wrand.New(3)
	for _, n := range []int{2000, 8000, 32000} {
		wc, _ := buildWC(t, g, n, WorstCaseOptions{B: 2, Lambda: 1, Seed: 11})
		st := wc.Stats()
		if st.CoreSetItems > 3*n {
			t.Errorf("n=%d: %d core-set items (> 3n); space not linear", n, st.CoreSetItems)
		}
		if st.ChainLevels < 1 || st.LadderLevels < 1 {
			t.Errorf("n=%d: degenerate structure: %+v", n, st)
		}
	}
}

func TestWorstCaseDeterministicForSeed(t *testing.T) {
	g1, g2 := wrand.New(5), wrand.New(5)
	items1 := genItems(g1, 3000)
	items2 := genItems(g2, 3000)
	wc1, err := NewWorstCase(items1, spanMatch, naiveFactory, WorstCaseOptions{B: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wc2, err := NewWorstCase(items2, spanMatch, naiveFactory, WorstCaseOptions{B: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := wc1.Stats(), wc2.Stats()
	if s1.CoreSetItems != s2.CoreSetItems || s1.ChainLevels != s2.ChainLevels {
		t.Errorf("same seed produced different structures: %+v vs %+v", s1, s2)
	}
}

// TestWorstCaseFallbackRepairsBadSamples is failure injection for the
// self-checking query path: FScale far below 1 shrinks f until Lemma 2's
// preconditions (f ≥ 4λ ln n, pivot rank ≤ f) no longer hold, so core-set
// samples go "bad" and the harvest comes back short. The structure must
// detect this (Fallbacks > 0) and still answer every query exactly.
func TestWorstCaseFallbackRepairsBadSamples(t *testing.T) {
	g := wrand.New(99)
	items := genItems(g, 20000)
	wc, err := NewWorstCase(items, spanMatch, naiveFactory,
		WorstCaseOptions{B: 2, Lambda: 0.02, FScale: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if wc.F() >= 40 {
		t.Skipf("f = %d; injection needs a tiny f", wc.F())
	}
	for trial := 0; trial < 120; trial++ {
		lo := g.Float64() * 90
		q := span{lo, lo + 10 + g.Float64()*50}
		k := 1 + g.IntN(3*wc.F())
		sameItems(t, wc.TopK(q, k), oracleTopK(items, q, k), "fallback repair")
	}
	if wc.Stats().Fallbacks == 0 {
		t.Log("no fallbacks triggered; injection may need a smaller f (not a failure: answers were exact)")
	}
}

func TestWorstCaseFallbacksAreRare(t *testing.T) {
	g := wrand.New(6)
	wc, _ := buildWC(t, g, 20000, WorstCaseOptions{B: 2, Lambda: 1, Seed: 13})
	for trial := 0; trial < 200; trial++ {
		lo := g.Float64() * 90
		wc.TopK(span{lo, lo + 10 + g.Float64()*40}, 1+g.IntN(200))
	}
	st := wc.Stats()
	if st.Fallbacks > st.Queries/4 {
		t.Errorf("fallback rate too high: %d fallbacks over %d queries", st.Fallbacks, st.Queries)
	}
}
