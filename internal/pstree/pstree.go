// Package pstree implements a partially persistent sorted map as a
// path-copying treap. Every update returns a new immutable version; old
// versions remain queryable forever.
//
// This is the Sarnak–Tarjan technique the paper leans on in Sections 5.3
// and 5.4 (point location among winner regions): sweeping a line through a
// subdivision while keeping every intermediate status structure alive
// turns a dynamic 1D problem into a static 2D one. The dominance and
// halfspace packages use it to store one "step function" version per sweep
// event in O(log n) extra space per event.
//
// Keys are float64; values are generic. Node priorities are deterministic
// hashes of the keys, so identical key sets produce identical shapes and
// tests are reproducible.
package pstree

import "math"

// Version is an immutable snapshot of the map. The zero value is the empty
// map. Versions are cheap values (a single pointer) and may be copied
// freely.
type Version[V any] struct {
	root *pnode[V]
}

type pnode[V any] struct {
	key         float64
	val         V
	prio        uint64
	size        int
	left, right *pnode[V]
}

func hashPrio(k float64) uint64 {
	x := math.Float64bits(k) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func size[V any](n *pnode[V]) int {
	if n == nil {
		return 0
	}
	return n.size
}

// clone copies a node for path copying.
func clone[V any](n *pnode[V]) *pnode[V] {
	c := *n
	return &c
}

func pull[V any](n *pnode[V]) *pnode[V] {
	n.size = 1 + size(n.left) + size(n.right)
	return n
}

// Len returns the number of entries in this version.
func (v Version[V]) Len() int { return size(v.root) }

// splitLess returns persistent (keys < k, keys ≥ k); input is unmodified.
func splitLess[V any](n *pnode[V], k float64) (l, r *pnode[V]) {
	if n == nil {
		return nil, nil
	}
	c := clone(n)
	if c.key < k {
		var rr *pnode[V]
		c.right, rr = splitLess(c.right, k)
		return pull(c), rr
	}
	var ll *pnode[V]
	ll, c.left = splitLess(c.left, k)
	return ll, pull(c)
}

// splitLeq returns persistent (keys ≤ k, keys > k).
func splitLeq[V any](n *pnode[V], k float64) (l, r *pnode[V]) {
	if n == nil {
		return nil, nil
	}
	c := clone(n)
	if c.key <= k {
		var rr *pnode[V]
		c.right, rr = splitLeq(c.right, k)
		return pull(c), rr
	}
	var ll *pnode[V]
	ll, c.left = splitLeq(c.left, k)
	return ll, pull(c)
}

func merge[V any](a, b *pnode[V]) *pnode[V] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio >= b.prio {
		c := clone(a)
		c.right = merge(c.right, b)
		return pull(c)
	}
	c := clone(b)
	c.left = merge(a, c.left)
	return pull(c)
}

// Insert returns a new version with (k, val) set, replacing any existing
// entry at k. The receiver version is unchanged.
func (v Version[V]) Insert(k float64, val V) Version[V] {
	l, rest := splitLess(v.root, k)
	_, r := splitLeq(rest, k) // drop any existing entry at k
	n := &pnode[V]{key: k, val: val, prio: hashPrio(k), size: 1}
	return Version[V]{root: merge(merge(l, n), r)}
}

// Delete returns a new version without key k, and whether it was present.
func (v Version[V]) Delete(k float64) (Version[V], bool) {
	l, rest := splitLess(v.root, k)
	mid, r := splitLeq(rest, k)
	return Version[V]{root: merge(l, r)}, mid != nil
}

// Get returns the value at key k.
func (v Version[V]) Get(k float64) (val V, ok bool) {
	n := v.root
	for n != nil {
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	return val, false
}

// Floor returns the entry with the greatest key ≤ x.
func (v Version[V]) Floor(x float64) (key float64, val V, ok bool) {
	n := v.root
	for n != nil {
		if n.key <= x {
			key, val, ok = n.key, n.val, true
			n = n.right
		} else {
			n = n.left
		}
	}
	return key, val, ok
}

// Ceiling returns the entry with the smallest key ≥ x.
func (v Version[V]) Ceiling(x float64) (key float64, val V, ok bool) {
	n := v.root
	for n != nil {
		if n.key >= x {
			key, val, ok = n.key, n.val, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return key, val, ok
}

// Min returns the smallest entry.
func (v Version[V]) Min() (key float64, val V, ok bool) {
	n := v.root
	for n != nil {
		key, val, ok = n.key, n.val, true
		n = n.left
	}
	return key, val, ok
}

// Max returns the largest entry.
func (v Version[V]) Max() (key float64, val V, ok bool) {
	n := v.root
	for n != nil {
		key, val, ok = n.key, n.val, true
		n = n.right
	}
	return key, val, ok
}

// Ascend visits entries with key ≥ from in ascending key order until visit
// returns false.
func (v Version[V]) Ascend(from float64, visit func(key float64, val V) bool) {
	ascend(v.root, from, visit)
}

func ascend[V any](n *pnode[V], from float64, visit func(float64, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= from {
		if !ascend(n.left, from, visit) {
			return false
		}
		if !visit(n.key, n.val) {
			return false
		}
	}
	return ascend(n.right, from, visit)
}

// DeleteRange returns a version with every key in [lo, hi] removed, along
// with the removed entries in ascending order. This is the "splice" the
// sweep structures use: superseded steps leave in one O(log n + r) op.
func (v Version[V]) DeleteRange(lo, hi float64) (Version[V], []Entry[V]) {
	l, rest := splitLess(v.root, lo)
	mid, r := splitLeq(rest, hi)
	var out []Entry[V]
	collect(mid, &out)
	return Version[V]{root: merge(l, r)}, out
}

// Entry is a key/value pair returned by DeleteRange.
type Entry[V any] struct {
	Key float64
	Val V
}

func collect[V any](n *pnode[V], out *[]Entry[V]) {
	if n == nil {
		return
	}
	collect(n.left, out)
	*out = append(*out, Entry[V]{Key: n.key, Val: n.val})
	collect(n.right, out)
}
