package pstree

import "fmt"

// CheckInvariants verifies the version's structural invariants — key
// order, heap order, size augmentation — returning the first violation.
// Because versions share structure, checking one version exercises the
// shared spine too. O(n) per version.
func (v Version[V]) CheckInvariants() error {
	_, err := pcheck(v.root)
	return err
}

func pcheck[V any](n *pnode[V]) (int, error) {
	if n == nil {
		return 0, nil
	}
	ls, err := pcheck(n.left)
	if err != nil {
		return 0, err
	}
	rs, err := pcheck(n.right)
	if err != nil {
		return 0, err
	}
	if n.left != nil {
		if n.left.key >= n.key {
			return 0, fmt.Errorf("pstree: key order violated: %v >= %v", n.left.key, n.key)
		}
		if n.left.prio > n.prio {
			return 0, fmt.Errorf("pstree: heap order violated at %v", n.key)
		}
	}
	if n.right != nil {
		if n.right.key <= n.key {
			return 0, fmt.Errorf("pstree: key order violated: %v <= %v", n.right.key, n.key)
		}
		if n.right.prio > n.prio {
			return 0, fmt.Errorf("pstree: heap order violated at %v", n.key)
		}
	}
	size := 1 + ls + rs
	if n.size != size {
		return 0, fmt.Errorf("pstree: size augment at %v is %d, want %d", n.key, n.size, size)
	}
	return size, nil
}
