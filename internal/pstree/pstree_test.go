package pstree

import (
	"sort"
	"testing"
	"testing/quick"

	"topk/internal/wrand"
)

func TestEmptyVersion(t *testing.T) {
	var v Version[int]
	if v.Len() != 0 {
		t.Fatalf("empty Len = %d", v.Len())
	}
	if _, ok := v.Get(1); ok {
		t.Fatal("empty Get found a key")
	}
	if _, _, ok := v.Floor(5); ok {
		t.Fatal("empty Floor found a key")
	}
	if _, _, ok := v.Min(); ok {
		t.Fatal("empty Min found a key")
	}
}

func TestInsertPersistence(t *testing.T) {
	var v0 Version[string]
	v1 := v0.Insert(1, "a")
	v2 := v1.Insert(2, "b")
	v3 := v2.Insert(1, "A") // replace in v3 only

	if v0.Len() != 0 || v1.Len() != 1 || v2.Len() != 2 || v3.Len() != 2 {
		t.Fatalf("lens = %d,%d,%d,%d", v0.Len(), v1.Len(), v2.Len(), v3.Len())
	}
	if got, _ := v2.Get(1); got != "a" {
		t.Fatalf("v2.Get(1) = %q, want a (old version mutated!)", got)
	}
	if got, _ := v3.Get(1); got != "A" {
		t.Fatalf("v3.Get(1) = %q, want A", got)
	}
	if _, ok := v1.Get(2); ok {
		t.Fatal("v1 sees key inserted in v2")
	}
}

func TestDeletePersistence(t *testing.T) {
	var v Version[int]
	v1 := v.Insert(1, 10).Insert(2, 20).Insert(3, 30)
	v2, ok := v1.Delete(2)
	if !ok {
		t.Fatal("Delete(2) reported absent")
	}
	if _, ok := v2.Get(2); ok {
		t.Fatal("v2 still has deleted key")
	}
	if got, ok := v1.Get(2); !ok || got != 20 {
		t.Fatal("v1 lost key deleted in v2")
	}
	if _, ok := v2.Delete(99); ok {
		t.Fatal("Delete(99) reported present")
	}
}

func TestFloorCeiling(t *testing.T) {
	var v Version[int]
	for _, k := range []float64{10, 20, 30} {
		v = v.Insert(k, int(k))
	}
	cases := []struct {
		x         float64
		floorKey  float64
		floorOK   bool
		ceilKey   float64
		ceilingOK bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{30, 30, true, 30, true},
		{35, 30, true, 0, false},
	}
	for _, c := range cases {
		k, _, ok := v.Floor(c.x)
		if ok != c.floorOK || (ok && k != c.floorKey) {
			t.Errorf("Floor(%v) = %v,%v want %v,%v", c.x, k, ok, c.floorKey, c.floorOK)
		}
		k, _, ok = v.Ceiling(c.x)
		if ok != c.ceilingOK || (ok && k != c.ceilKey) {
			t.Errorf("Ceiling(%v) = %v,%v want %v,%v", c.x, k, ok, c.ceilKey, c.ceilingOK)
		}
	}
}

func TestDeleteRange(t *testing.T) {
	var v Version[int]
	for i := 0; i < 10; i++ {
		v = v.Insert(float64(i), i)
	}
	v2, removed := v.DeleteRange(3, 6)
	if len(removed) != 4 {
		t.Fatalf("removed %d entries, want 4", len(removed))
	}
	for i, e := range removed {
		if e.Key != float64(3+i) {
			t.Fatalf("removed[%d].Key = %v, want %v (ascending)", i, e.Key, 3+i)
		}
	}
	if v2.Len() != 6 {
		t.Fatalf("v2.Len = %d, want 6", v2.Len())
	}
	if v.Len() != 10 {
		t.Fatal("DeleteRange mutated the old version")
	}
	for _, k := range []float64{3, 4, 5, 6} {
		if _, ok := v2.Get(k); ok {
			t.Fatalf("v2 still contains %v", k)
		}
	}
	// Empty range.
	v3, removed := v2.DeleteRange(100, 200)
	if len(removed) != 0 || v3.Len() != v2.Len() {
		t.Fatal("empty DeleteRange removed entries")
	}
}

func TestManyVersionsStayIntact(t *testing.T) {
	// Simulate a sweep: n insertions, one version per step; then verify
	// every historical version against a rebuilt oracle.
	g := wrand.New(1)
	keys := g.UniqueFloats(500, 1e6)
	versions := make([]Version[int], 0, len(keys)+1)
	var v Version[int]
	versions = append(versions, v)
	for i, k := range keys {
		v = v.Insert(k, i)
		versions = append(versions, v)
	}
	for step := 0; step <= len(keys); step += 50 {
		ver := versions[step]
		if ver.Len() != step {
			t.Fatalf("version %d has Len %d", step, ver.Len())
		}
		prefix := append([]float64(nil), keys[:step]...)
		sort.Float64s(prefix)
		// Floor probes across the key space.
		for trial := 0; trial < 20; trial++ {
			x := g.Float64() * 1.1e6
			i := sort.SearchFloat64s(prefix, x)
			if i < len(prefix) && prefix[i] == x {
				// exact hit is its own floor
			} else {
				i--
			}
			k, _, ok := ver.Floor(x)
			if i < 0 {
				if ok {
					t.Fatalf("version %d: Floor(%v) = %v, want none", step, x, k)
				}
			} else if !ok || k != prefix[i] {
				t.Fatalf("version %d: Floor(%v) = %v,%v want %v", step, x, k, ok, prefix[i])
			}
		}
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	var v Version[int]
	for _, k := range []float64{5, 1, 9, 3, 7} {
		v = v.Insert(k, int(k))
	}
	var got []float64
	v.Ascend(3, func(k float64, _ int) bool {
		got = append(got, k)
		return true
	})
	want := []float64{3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Ascend = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend = %v, want %v", got, want)
		}
	}
	got = got[:0]
	v.Ascend(0, func(k float64, _ int) bool {
		got = append(got, k)
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Fatalf("early stop visited %d", len(got))
	}
}

func TestMinMax(t *testing.T) {
	var v Version[int]
	v = v.Insert(5, 0).Insert(2, 0).Insert(8, 0)
	if k, _, _ := v.Min(); k != 2 {
		t.Fatalf("Min = %v", k)
	}
	if k, _, _ := v.Max(); k != 8 {
		t.Fatalf("Max = %v", k)
	}
}

// Property: a chain of random ops, checked at the final version against a
// map oracle, and at a mid checkpoint against a snapshot oracle.
func TestQuickPersistence(t *testing.T) {
	f := func(ops []struct {
		K   uint8
		Del bool
	}) bool {
		var v Version[int]
		oracle := map[float64]int{}
		var checkpoint Version[int]
		checkOracle := map[float64]int{}
		half := len(ops) / 2
		for i, op := range ops {
			k := float64(op.K % 32)
			if op.Del {
				v, _ = v.Delete(k)
				delete(oracle, k)
			} else {
				v = v.Insert(k, i)
				oracle[k] = i
			}
			if i == half {
				checkpoint = v
				for kk, vv := range oracle {
					checkOracle[kk] = vv
				}
			}
		}
		verify := func(ver Version[int], or map[float64]int) bool {
			if ver.Len() != len(or) {
				return false
			}
			for k, want := range or {
				got, ok := ver.Get(k)
				if !ok || got != want {
					return false
				}
			}
			return true
		}
		if !verify(v, oracle) {
			return false
		}
		if len(ops) > 0 && !verify(checkpoint, checkOracle) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
