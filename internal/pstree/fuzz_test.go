package pstree

import "testing"

// FuzzPersistence drives random op sequences, checkpointing every few ops
// and re-verifying every checkpoint (contents + invariants) at the end —
// persistence means history must never change.
func FuzzPersistence(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 0, 3, 2, 2})
	f.Add([]byte{0, 9, 0, 9, 1, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Version[int]
		type checkpoint struct {
			ver    Version[int]
			oracle map[float64]int
		}
		var cps []checkpoint
		oracle := map[float64]int{}
		snapshot := func() {
			cp := checkpoint{ver: v, oracle: make(map[float64]int, len(oracle))}
			for k, val := range oracle {
				cp.oracle[k] = val
			}
			cps = append(cps, cp)
		}
		snapshot()
		for i := 0; i+1 < len(data); i += 2 {
			op, kb := data[i]%3, data[i+1]%64
			k := float64(kb)
			switch op {
			case 0:
				v = v.Insert(k, i)
				oracle[k] = i
			case 1:
				var removed bool
				v, removed = v.Delete(k)
				_, want := oracle[k]
				if removed != want {
					t.Fatalf("Delete(%v) = %v, oracle %v", k, removed, want)
				}
				delete(oracle, k)
			case 2:
				var rm []Entry[int]
				hi := k + float64(data[i]%8)
				v, rm = v.DeleteRange(k, hi)
				for _, e := range rm {
					if _, present := oracle[e.Key]; !present {
						t.Fatalf("DeleteRange removed absent key %v", e.Key)
					}
					delete(oracle, e.Key)
				}
			}
			if i%6 == 0 {
				snapshot()
			}
		}
		snapshot()
		for ci, cp := range cps {
			if err := cp.ver.CheckInvariants(); err != nil {
				t.Fatalf("checkpoint %d: %v", ci, err)
			}
			if cp.ver.Len() != len(cp.oracle) {
				t.Fatalf("checkpoint %d: Len=%d oracle=%d", ci, cp.ver.Len(), len(cp.oracle))
			}
			for k, want := range cp.oracle {
				got, ok := cp.ver.Get(k)
				if !ok || got != want {
					t.Fatalf("checkpoint %d: Get(%v) = (%v,%v), want %v", ci, k, got, ok, want)
				}
			}
		}
	})
}
