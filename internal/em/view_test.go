package em

import (
	"sync"
	"testing"
)

func TestQueryViewIsolationAndMerge(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	id := tr.Alloc()
	tr.ResetCounters()
	tr.DropCache()

	v := tr.BeginQuery()
	tr.Read(id)
	tr.Read(id) // second touch hits the view's private cache
	tr.ScanCost(tr.B())
	if got := tr.Stats(); got.Reads != 0 || got.Hits != 0 {
		t.Fatalf("in-flight view leaked into tracker stats: %+v", got)
	}
	st := v.End()
	if st.Reads != 2 || st.Hits != 1 || st.Writes != 0 {
		t.Fatalf("view stats = %+v, want Reads=2 Hits=1 Writes=0", st)
	}
	if got := tr.Stats(); got.Reads != 2 || got.Hits != 1 {
		t.Fatalf("merged tracker stats = %+v, want Reads=2 Hits=1", got)
	}
	if again := v.End(); again != st {
		t.Fatalf("second End returned %+v, want %+v", again, st)
	}
}

func TestQueryViewStartsCold(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	id := tr.Alloc()
	tr.ResetCounters()

	// The shared cache is warm (Alloc touched id), but a view must not be.
	v := tr.BeginQuery()
	tr.Read(id)
	if st := v.End(); st.Reads != 1 || st.Hits != 0 {
		t.Fatalf("view stats = %+v, want one cold read", st)
	}
	// The shared path still sees its warm cache.
	tr.ResetCounters()
	tr.Read(id)
	if got := tr.Stats(); got.Hits != 1 || got.Reads != 0 {
		t.Fatalf("shared stats = %+v, want one hit", got)
	}
}

func TestQueryViewRoutesByGoroutine(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	id := tr.Alloc()
	tr.ResetCounters()
	tr.DropCache()

	// A view on another goroutine must not capture this goroutine's charges.
	started := make(chan *QueryView)
	release := make(chan struct{})
	done := make(chan Stats)
	go func() {
		v := tr.BeginQuery()
		started <- v
		<-release
		done <- v.End()
	}()
	<-started
	tr.Read(id) // charged to the shared path, not the other goroutine's view
	close(release)
	st := <-done
	if st.Reads != 0 || st.Hits != 0 {
		t.Fatalf("idle view accumulated %+v", st)
	}
	if got := tr.Stats(); got.Reads != 1 {
		t.Fatalf("shared stats = %+v, want Reads=1", got)
	}
}

func TestQueryViewDeterministicUnderConcurrency(t *testing.T) {
	tr := NewTracker(Config{B: 8, MemBlocks: 2})
	base := tr.AllocRun(16)
	tr.ResetCounters()

	query := func() Stats {
		v := tr.BeginQuery()
		for i := 0; i < 16; i++ {
			tr.Read(base + BlockID(i%4))
		}
		tr.PathCost(9)
		tr.ScanCost(20)
		return v.End()
	}

	want := query()
	const workers = 8
	got := make([]Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = query()
		}(w)
	}
	wg.Wait()
	sum := Stats{}
	for w, st := range got {
		if st.Reads != want.Reads || st.Writes != want.Writes || st.Hits != want.Hits {
			t.Fatalf("worker %d stats %+v differ from serial %+v", w, st, want)
		}
		sum.Reads += st.Reads
		sum.Writes += st.Writes
		sum.Hits += st.Hits
	}
	total := tr.Stats()
	if total.Reads != sum.Reads+want.Reads || total.Hits != sum.Hits+want.Hits {
		t.Fatalf("merged totals %+v != sum of per-query deltas %+v (+ serial %+v)", total, sum, want)
	}
}

func TestBeginQueryDoesNotNest(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	v := tr.BeginQuery()
	defer v.End()
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginQuery did not panic")
		}
	}()
	tr.BeginQuery()
}

func TestAllocPanicsInsideView(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	v := tr.BeginQuery()
	defer v.End()
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc inside a query view did not panic")
		}
	}()
	tr.Alloc()
}

func TestGoidStableAndDistinct(t *testing.T) {
	a, b := goid(), goid()
	if a != b {
		t.Fatalf("goid not stable on one goroutine: %d vs %d", a, b)
	}
	ch := make(chan uint64)
	go func() { ch <- goid() }()
	if other := <-ch; other == a {
		t.Fatalf("distinct goroutines returned the same id %d", a)
	}
}
