package em

import (
	"fmt"
	"sync"
)

// FaultOp names a BlockStore operation a fault can target.
type FaultOp int

const (
	OpRead FaultOp = iota
	OpWrite
	OpFree
	OpSync
)

// String returns the operation's name.
func (o FaultOp) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFree:
		return "free"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("FaultOp(%d)", int(o))
}

// FaultKind selects what goes wrong when a fault fires.
type FaultKind int

const (
	// FaultTransient fails the operation with an EINTR/EAGAIN-style
	// retriable error without touching the medium.
	FaultTransient FaultKind = iota
	// FaultShortRead delivers only the first half of the block before
	// erroring — the bytes are real but incomplete (reads only).
	FaultShortRead
	// FaultTornWrite persists only the first half of the block and then
	// errors — a power-cut mid-write (writes only). The medium is left
	// holding a torn block, which a verifying reader must detect.
	FaultTornWrite
)

// String returns the kind's name.
func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultShortRead:
		return "short-read"
	case FaultTornWrite:
		return "torn-write"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled injection: the Nth invocation (1-based) of Op
// fails with Kind.
type Fault struct {
	Op   FaultOp
	N    int64
	Kind FaultKind
}

// FaultStore wraps any BlockStore and injects faults on a table-driven
// schedule — the adversarial medium the disk-store test layer runs the
// tracker against. It is itself a conforming BlockStore: every injected
// failure is a descriptive error, never a panic, and operations without
// a scheduled fault pass through untouched.
type FaultStore struct {
	inner BlockStore

	mu     sync.Mutex
	counts map[FaultOp]int64
	faults map[FaultOp]map[int64]FaultKind
	fired  int64
}

// NewFaultStore wraps inner with the given fault schedule.
func NewFaultStore(inner BlockStore, schedule ...Fault) *FaultStore {
	fs := &FaultStore{
		inner:  inner,
		counts: make(map[FaultOp]int64),
		faults: make(map[FaultOp]map[int64]FaultKind),
	}
	for _, f := range schedule {
		if fs.faults[f.Op] == nil {
			fs.faults[f.Op] = make(map[int64]FaultKind)
		}
		fs.faults[f.Op][f.N] = f.Kind
	}
	return fs
}

// next advances op's invocation counter and returns the fault scheduled
// for this invocation, if any.
func (fs *FaultStore) next(op FaultOp) (FaultKind, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.counts[op]++
	k, ok := fs.faults[op][fs.counts[op]]
	if ok {
		fs.fired++
	}
	return k, ok
}

// Fired returns how many scheduled faults have fired so far.
func (fs *FaultStore) Fired() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.fired
}

// PayloadBytes returns the wrapped store's payload size.
func (fs *FaultStore) PayloadBytes() int { return fs.inner.PayloadBytes() }

// ReadBlock reads through to the wrapped store unless a fault is
// scheduled for this invocation.
func (fs *FaultStore) ReadBlock(id BlockID, buf []byte) error {
	if k, ok := fs.next(OpRead); ok {
		switch k {
		case FaultShortRead:
			// Deliver a genuine prefix of the block, then fail: the
			// caller must not trust the partially filled buffer.
			full := make([]byte, len(buf))
			if err := fs.inner.ReadBlock(id, full); err != nil {
				return err
			}
			n := copy(buf[:len(buf)/2], full)
			return fmt.Errorf("em/faultstore: short read of block %d: %d of %d bytes", id, n, len(buf))
		default:
			return fmt.Errorf("em/faultstore: injected transient error reading block %d (EINTR-style, retriable)", id)
		}
	}
	return fs.inner.ReadBlock(id, buf)
}

// WriteBlock writes through to the wrapped store unless a fault is
// scheduled for this invocation.
func (fs *FaultStore) WriteBlock(id BlockID, data []byte) error {
	if k, ok := fs.next(OpWrite); ok {
		switch k {
		case FaultTornWrite:
			// Persist a torn image: first half the new bytes, second
			// half zeros. The inner store will checksum the torn image
			// as written, exactly as a disk that acknowledged half a
			// block would — it is the *verifying reader* (payload
			// check) that must catch it.
			torn := make([]byte, len(data))
			copy(torn, data[:len(data)/2])
			if err := fs.inner.WriteBlock(id, torn); err != nil {
				return err
			}
			return fmt.Errorf("em/faultstore: torn write of block %d: only %d of %d bytes reached the store", id, len(data)/2, len(data))
		default:
			return fmt.Errorf("em/faultstore: injected transient error writing block %d (EAGAIN-style, retriable)", id)
		}
	}
	return fs.inner.WriteBlock(id, data)
}

// ChargeReads performs the stand-in reads one at a time so each counts
// as an OpRead invocation against the schedule; a scheduled fault stops
// the run with a retriable error (stand-in reads carry no payload to
// tear or truncate).
func (fs *FaultStore) ChargeReads(n int64) error {
	for i := int64(0); i < n; i++ {
		if _, ok := fs.next(OpRead); ok {
			return fmt.Errorf("em/faultstore: injected transient error on a charge read (EINTR-style, retriable)")
		}
		if err := fs.inner.ChargeReads(1); err != nil {
			return err
		}
	}
	return nil
}

// Free passes through unless a fault is scheduled.
func (fs *FaultStore) Free(id BlockID) error {
	if _, ok := fs.next(OpFree); ok {
		return fmt.Errorf("em/faultstore: injected transient error freeing block %d", id)
	}
	return fs.inner.Free(id)
}

// Sync passes through unless a fault is scheduled.
func (fs *FaultStore) Sync() error {
	if _, ok := fs.next(OpSync); ok {
		return fmt.Errorf("em/faultstore: injected sync failure (EIO-style)")
	}
	return fs.inner.Sync()
}

// Close closes the wrapped store.
func (fs *FaultStore) Close() error { return fs.inner.Close() }

// StoreStats returns the wrapped store's counters.
func (fs *FaultStore) StoreStats() StoreStats { return fs.inner.StoreStats() }
