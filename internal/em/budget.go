package em

import (
	"fmt"
	"time"
)

// AbortReason says which request-lifecycle limit a query blew.
type AbortReason int

const (
	// AbortBudget: the view's charged I/Os exceeded its I/O budget.
	AbortBudget AbortReason = iota
	// AbortDeadline: the wall clock passed the view's deadline.
	AbortDeadline
)

func (r AbortReason) String() string {
	switch r {
	case AbortBudget:
		return "budget"
	case AbortDeadline:
		return "deadline"
	default:
		return "unknown"
	}
}

// AbortError is the panic value raised from a charge path when a limited
// QueryView exceeds its I/O budget or wall-clock deadline. Queries are
// read-only, so unwinding mid-walk leaves every structure intact; the
// batch runner recovers the sentinel at the query boundary, ends the view
// (its partial counters remain exact), and maps the reason onto a typed
// result outcome. It deliberately travels as a panic rather than an error
// return so the un-limited hot path stays branch-minimal: no charge site
// needs an error result.
type AbortError struct {
	Reason AbortReason
	IOs    int64 // I/Os charged to the view when it aborted
	Budget int64 // the I/O budget, when Reason is AbortBudget
}

func (e *AbortError) Error() string {
	if e.Reason == AbortBudget {
		return fmt.Sprintf("em: query aborted: %d I/Os exceeded budget %d", e.IOs, e.Budget)
	}
	return fmt.Sprintf("em: query aborted: deadline exceeded after %d I/Os", e.IOs)
}

// deadlineCheckEvery is how many charge events pass between time.Now calls
// on a deadline-limited view: the clock read is amortized over a batch of
// block touches so the per-charge cost stays one predictable branch.
const deadlineCheckEvery = 32

// SetLimits arms the view's request-lifecycle guards: budget > 0 caps the
// total I/Os (reads+writes) the query may charge, and a non-zero deadline
// caps its wall-clock time. A zero/zero call leaves the view unlimited —
// the default — in which case the charge paths pay only a single bool
// test. Exceeding a limit panics with *AbortError from the charge site.
//
// The deadline is tested on the first charge and every deadlineCheckEvery
// charges after that, so an already-expired deadline aborts on the first
// block touch rather than after a full check interval.
func (v *QueryView) SetLimits(budget int64, deadline time.Time) {
	v.budget = budget
	v.deadline = deadline
	v.limited = budget > 0 || !deadline.IsZero()
	// Schedule the first deadline check on the first charge.
	v.untilCheck = 1
}

// checkLimits enforces SetLimits on every charge path (read, write,
// readRun, and the cost-level PathCost/ScanCost routing). Cache hits count
// as charge events for deadline polling but not against the I/O budget:
// the budget is an I/O bound, the deadline a time bound.
func (v *QueryView) checkLimits() {
	if !v.limited {
		return
	}
	ios := v.reads + v.writes
	if v.budget > 0 && ios > v.budget {
		panic(&AbortError{Reason: AbortBudget, IOs: ios, Budget: v.budget})
	}
	if !v.deadline.IsZero() {
		v.untilCheck--
		if v.untilCheck <= 0 {
			v.untilCheck = deadlineCheckEvery
			if time.Now().After(v.deadline) {
				panic(&AbortError{Reason: AbortDeadline, IOs: ios})
			}
		}
	}
}

// addReads routes a cost-level read charge (PathCost, ScanCost) through
// the view: counter, physical stand-in, then limit check.
func (v *QueryView) addReads(n int64) {
	v.reads += n
	v.chargeReads(n)
	v.checkLimits()
}
