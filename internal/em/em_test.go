package em

import (
	"fmt"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker accepted MemBlocks = 1, want panic (model requires M >= 2B)")
		}
	}()
	NewTracker(Config{B: 64, MemBlocks: 1})
}

func TestAllocChargesWriteAndSpace(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 4})
	id := tr.Alloc()
	if id == 0 {
		t.Fatal("Alloc returned invalid block 0")
	}
	st := tr.Stats()
	if st.Writes != 1 || st.Blocks != 1 {
		t.Fatalf("after Alloc: writes=%d blocks=%d, want 1,1", st.Writes, st.Blocks)
	}
	tr.Free(id)
	if got := tr.Stats().Blocks; got != 0 {
		t.Fatalf("after Free: blocks=%d, want 0", got)
	}
}

func TestReadHitsAndMisses(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 2})
	a, b, c := tr.Alloc(), tr.Alloc(), tr.Alloc()
	tr.DropCache()
	tr.ResetCounters()

	tr.Read(a) // miss
	tr.Read(a) // hit
	tr.Read(b) // miss
	tr.Read(c) // miss, evicts a (LRU)
	tr.Read(a) // miss again
	st := tr.Stats()
	if st.Reads != 4 {
		t.Errorf("reads = %d, want 4", st.Reads)
	}
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Hits)
	}
}

func TestLRUOrdering(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 2})
	a, b, c := tr.Alloc(), tr.Alloc(), tr.Alloc()
	tr.DropCache()
	tr.ResetCounters()

	tr.Read(a)
	tr.Read(b)
	tr.Read(a) // refresh a so that b is LRU
	tr.Read(c) // should evict b, not a
	tr.ResetCounters()
	tr.Read(a)
	if got := tr.Stats().Hits; got != 1 {
		t.Errorf("read(a) after refresh: hits=%d, want 1 (a should be resident)", got)
	}
	tr.Read(b)
	if got := tr.Stats().Reads; got != 1 {
		t.Errorf("read(b): reads=%d, want 1 (b should have been evicted)", got)
	}
}

func TestScanCost(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 4})
	tr.ScanCost(0)
	if got := tr.Stats().Reads; got != 0 {
		t.Errorf("ScanCost(0) charged %d reads, want 0", got)
	}
	tr.ScanCost(1)
	if got := tr.Stats().Reads; got != 1 {
		t.Errorf("ScanCost(1) charged %d reads, want 1", got)
	}
	tr.ResetCounters()
	tr.ScanCost(65) // 65 items at B=64 -> 2 blocks
	if got := tr.Stats().Reads; got != 2 {
		t.Errorf("ScanCost(65) charged %d reads, want 2", got)
	}
	tr.ResetCounters()
	tr.ScanCost(128)
	if got := tr.Stats().Reads; got != 2 {
		t.Errorf("ScanCost(128) charged %d reads, want 2", got)
	}
}

func TestReadRunBypassesCacheWhenLong(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 2})
	first := tr.AllocRun(10)
	tr.DropCache()
	tr.ResetCounters()
	tr.ReadRun(first, 10)
	st := tr.Stats()
	if st.Reads != 10 || st.Hits != 0 {
		t.Errorf("long ReadRun: reads=%d hits=%d, want 10,0", st.Reads, st.Hits)
	}
}

func TestStatsSub(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	a := tr.Alloc()
	tr.DropCache()
	before := tr.Stats()
	tr.Read(a)
	tr.Read(a)
	d := tr.Stats().Sub(before)
	if d.Reads != 1 || d.Hits != 1 {
		t.Errorf("delta reads=%d hits=%d, want 1,1", d.Reads, d.Hits)
	}
	if d.IOs() != 1 {
		t.Errorf("delta IOs=%d, want 1", d.IOs())
	}
}

func TestBlocksFor(t *testing.T) {
	cases := []struct {
		items, words, b int
		want            int64
	}{
		{0, 2, 64, 0},
		{1, 2, 64, 1},
		{32, 2, 64, 1},
		{33, 2, 64, 2},
		{64, 1, 64, 1},
		{65, 1, 64, 2},
	}
	for _, c := range cases {
		if got := BlocksFor(c.items, c.words, c.b); got != c.want {
			t.Errorf("BlocksFor(%d,%d,%d) = %d, want %d", c.items, c.words, c.b, got, c.want)
		}
	}
}

func TestFreeRunAndCacheEviction(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 4})
	first := tr.AllocRun(3)
	tr.Read(first)
	tr.FreeRun(first, 3)
	if got := tr.Stats().Blocks; got != 0 {
		t.Errorf("blocks after FreeRun = %d, want 0", got)
	}
	if tr.cache.len() != 0 {
		t.Errorf("cache still holds %d freed blocks", tr.cache.len())
	}
}

func TestPathCost(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 2})
	tr.PathCost(0)
	if got := tr.Stats().Reads; got != 0 {
		t.Errorf("PathCost(0) charged %d reads", got)
	}
	// B=64: per = 7 (1 + log2 64). 1..7 nodes -> 1 read; 8 -> 2.
	tr.PathCost(1)
	if got := tr.Stats().Reads; got != 1 {
		t.Errorf("PathCost(1) charged %d reads, want 1", got)
	}
	tr.ResetCounters()
	tr.PathCost(7)
	if got := tr.Stats().Reads; got != 1 {
		t.Errorf("PathCost(7) charged %d reads, want 1", got)
	}
	tr.ResetCounters()
	tr.PathCost(8)
	if got := tr.Stats().Reads; got != 2 {
		t.Errorf("PathCost(8) charged %d reads, want 2", got)
	}
	// Larger B packs more nodes per block.
	tr2 := NewTracker(Config{B: 1024, MemBlocks: 2})
	tr2.PathCost(11)
	if got := tr2.Stats().Reads; got != 1 {
		t.Errorf("B=1024 PathCost(11) charged %d reads, want 1", got)
	}
}

func TestSeqBlocks(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 8})
	cases := []struct {
		bytes, want int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {512, 1}, {513, 2}, {8 * 64, 1}, {8*64 + 1, 2}, {8 * 64 * 10, 10},
	}
	for _, c := range cases {
		if got := tr.SeqBlocks(c.bytes); got != c.want {
			t.Errorf("SeqBlocks(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestSnapshotCost(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 8})
	tr.SnapshotCost(8 * 64 * 3) // exactly 3 blocks of words
	if s := tr.Stats(); s.Writes != 3 || s.Reads != 0 {
		t.Fatalf("snapshot cost: %+v", s)
	}
}

func TestRestoreAccounting(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 8})
	// Pre-existing activity that must survive the restore untouched.
	id := tr.Alloc()
	tr.Read(id)
	tr.Read(id) // hit
	before := tr.Stats()

	err := tr.RestoreAccounting(8*64*5, func() error {
		// A reconstruction that charges heavily, as a real build would.
		run := tr.AllocRun(100)
		tr.ReadRun(run, 100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Reads != before.Reads+5 {
		t.Errorf("reads = %d, want %d (before) + 5 sequential", s.Reads, before.Reads)
	}
	if s.Writes != before.Writes || s.Hits != before.Hits {
		t.Errorf("writes/hits changed: %+v vs %+v", s, before)
	}
	if s.Blocks != before.Blocks+100 {
		t.Errorf("blocks = %d, want space kept from reconstruction", s.Blocks)
	}
	// Cache must be cold: re-reading the old block costs a miss.
	tr.Read(id)
	if got := tr.Stats().Reads; got != s.Reads+1 {
		t.Errorf("cache not dropped: reads %d, want %d", got, s.Reads+1)
	}
}

func TestRestoreAccountingError(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 8})
	wantErr := fmt.Errorf("decode failed")
	if err := tr.RestoreAccounting(100, func() error { return wantErr }); err != wantErr {
		t.Fatalf("err = %v", err)
	}
}
