// Package em simulates the external-memory (EM) model of Aggarwal and
// Vitter, the cost model in which the paper states all of its bounds.
//
// A machine has M words of internal memory and a disk formatted into blocks
// of B words each (the paper assumes B >= 64 and M >= 2B). An I/O reads one
// block into memory or writes one block back. The cost of an algorithm is
// the number of I/Os it performs; the space of a structure is the number of
// blocks it occupies.
//
// Data structures in this repository do not serialize their nodes to a real
// disk. Instead they organize their nodes into logical blocks and charge
// every block touch through a Tracker, which maintains a cache of M/B
// frames (touches that hit the cache are free, exactly as in the model) and
// counts the misses. This measures precisely the quantity the paper's
// theorems bound, while keeping the structures themselves ordinary Go
// values that tests can inspect.
//
// # Physical stores
//
// A Tracker may additionally be attached to a BlockStore (NewTrackerWithStore),
// which persists a deterministic, verifiable payload for every allocated
// block and serves it back on every cache miss. The logical accounting is
// unchanged — the same workload charges the same Reads/Writes/Hits with or
// without a store — but each miss now also performs a physical block
// transfer (a pread/pwrite when the store is internal/em/diskstore), so
// the simulated I/O counts can be correlated against real storage
// behavior. Store failures never panic and never corrupt answers (the
// structures remain authoritative); the first failure is retained and
// reported by StoreErr.
//
// # Cache policies
//
// The frame set's replacement policy is pluggable (Config.Policy):
// PolicyLRU is the model's default, PolicyTinyLFU adds a
// frequency-sketch admission filter in front of the LRU order so
// one-touch scan blocks cannot evict a resident hot set. CacheStats
// reports per-policy eviction/admission counters.
//
// # Concurrency
//
// A Tracker separates the immutable machine description (Config, the block
// allocation ledger) from the mutable I/O accounting. Builds and updates
// must be serialized by the caller, but read-only queries may run
// concurrently: each query goroutine calls BeginQuery to obtain a private
// QueryView — its own cold LRU cache and counters — and charges issued by
// that goroutine are routed to the view until End merges them into the
// tracker-wide totals with atomic adds. Charges made with no active view
// go to the shared cache (mutex-guarded) and shared counters (atomic), so
// single-goroutine use keeps its exact previous semantics.
package em

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// BlockID identifies one logical disk block. The zero value is invalid.
type BlockID uint64

// Config fixes the machine parameters of the simulated EM machine.
type Config struct {
	// B is the number of words per block. The paper assumes B >= 64.
	B int
	// MemBlocks is the number of block frames that fit in memory (M/B).
	// The paper requires M >= 2B, i.e. MemBlocks >= 2.
	MemBlocks int
	// Policy selects the frame replacement/admission policy (default
	// PolicyLRU, the model's standard assumption).
	Policy CachePolicy
}

// DefaultConfig mirrors the paper's running assumptions: B = 64 words and a
// small memory of 8 frames, so that cache effects stay secondary to the
// asymptotic I/O counts being measured.
func DefaultConfig() Config { return Config{B: 64, MemBlocks: 8} }

func (c Config) validate() error {
	if c.B < 1 {
		return fmt.Errorf("em: block size B = %d, need >= 1", c.B)
	}
	if c.MemBlocks < 2 {
		return fmt.Errorf("em: memory holds %d blocks, model requires M >= 2B", c.MemBlocks)
	}
	return nil
}

// Stats is a snapshot of I/O and space counters.
type Stats struct {
	Reads  int64 // block reads that missed the cache
	Writes int64 // block writes
	Hits   int64 // block touches served from the memory cache
	Blocks int64 // blocks currently allocated (space in the model)
}

// IOs returns the total I/O count (reads + writes), the paper's cost metric.
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// Sub returns the counter deltas s - t. Blocks is copied from s, since
// space is a level, not a flow.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:  s.Reads - t.Reads,
		Writes: s.Writes - t.Writes,
		Hits:   s.Hits - t.Hits,
		Blocks: s.Blocks,
	}
}

// Tracker charges I/Os for block touches on one simulated EM machine.
//
// Structure builds and updates must not run concurrently with anything else
// on the same tracker, but read-only queries may: wrap each query in
// BeginQuery/End to give it a private QueryView, or rely on the shared
// path, which is itself safe (mutex-guarded cache, atomic counters) at the
// price of queries sharing one cache. See the package comment.
type Tracker struct {
	cfg Config

	next   atomic.Uint64 // next BlockID to hand out
	blocks atomic.Int64
	reads  atomic.Int64
	writes atomic.Int64
	hits   atomic.Int64

	mu    sync.Mutex // guards cache and sharedBuf
	cache blockCache

	// store is the physical medium behind the tracker, nil for the pure
	// counting simulator. sharedBuf is the shared-path payload scratch
	// (guarded by mu); query views carry their own. cacheCtr aggregates
	// policy decisions across the shared cache and every view's cache.
	store     BlockStore
	sharedBuf []byte
	cacheCtr  cacheCounters
	storeErrv atomic.Pointer[storeErrBox]
	faults    atomic.Int64
	closed    atomic.Bool

	views  sync.Map     // goroutine id (uint64) -> *QueryView
	nviews atomic.Int32 // active-view count; zero means the fast path

	// sink is the installed trace sink, nil when tracing is off; see
	// trace.go. spanDepth tracks shared-path span nesting.
	sink      atomic.Pointer[sinkBox]
	spanDepth atomic.Int32
}

// NewTracker builds a tracker for the given machine configuration.
// It panics if the configuration violates the model's constraints, since a
// misconfigured cost model would silently invalidate every measurement.
func NewTracker(cfg Config) *Tracker {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	t := &Tracker{cfg: cfg}
	t.cache = newBlockCache(cfg.Policy, cfg.MemBlocks, &t.cacheCtr)
	t.next.Store(1)
	return t
}

// NewTrackerWithStore builds a tracker whose block traffic is backed by
// a physical store: every allocation and write persists the block's
// canonical payload, every cache miss reads it back and verifies it.
// The store's payload size must match the machine's block size (8 bytes
// per word). Unlike NewTracker, configuration problems are returned as
// errors, since a store-backed build has a caller prepared to handle
// I/O failure.
func NewTrackerWithStore(cfg Config, store BlockStore) (*Tracker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("em: NewTrackerWithStore with a nil store")
	}
	if got, want := store.PayloadBytes(), PayloadBytesFor(cfg.B); got != want {
		return nil, fmt.Errorf("em: store holds %d-byte blocks, machine B=%d words needs %d", got, cfg.B, want)
	}
	t := &Tracker{cfg: cfg, store: store}
	t.cache = newBlockCache(cfg.Policy, cfg.MemBlocks, &t.cacheCtr)
	t.sharedBuf = make([]byte, store.PayloadBytes())
	t.next.Store(1)
	return t, nil
}

// storeErrBox wraps the first store error for atomic publication.
type storeErrBox struct{ err error }

// noteStoreErr records a physical-store failure: the fault counter
// always advances, the first error is retained for StoreErr. Store
// faults are diagnostics, not panics — answers come from the in-memory
// structures and stay correct.
func (t *Tracker) noteStoreErr(err error) {
	if err == nil {
		return
	}
	t.faults.Add(1)
	t.storeErrv.CompareAndSwap(nil, &storeErrBox{err: err})
}

// StoreErr returns the first physical-store failure observed by this
// tracker (nil if none, and always nil without a store). FaultCount
// reports how many failures occurred in total.
func (t *Tracker) StoreErr() error {
	if box := t.storeErrv.Load(); box != nil {
		return box.err
	}
	return nil
}

// FaultCount returns the number of physical-store failures observed.
func (t *Tracker) FaultCount() int64 { return t.faults.Load() }

// Store returns the attached physical store, nil for the pure
// counting simulator.
func (t *Tracker) Store() BlockStore { return t.store }

// StoreStats returns the attached store's physical operation counters
// (zero without a store) — the measured side of experiment E30's
// simulated-vs-real comparison.
func (t *Tracker) StoreStats() StoreStats {
	if t.store == nil {
		return StoreStats{}
	}
	return t.store.StoreStats()
}

// CacheStats returns the cache policy's decision counters, aggregated
// over the shared cache and every query view's private cache.
func (t *Tracker) CacheStats() CacheStats { return t.cacheCtr.snapshot() }

// Close releases the attached store, if any. Further physical traffic
// errors (and is reported by StoreErr) but logical accounting keeps
// working; Close is idempotent.
func (t *Tracker) Close() error {
	if t.store == nil || !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	return t.store.Close()
}

// storeWriteLocked persists block id's canonical payload through the
// shared scratch buffer; t.mu must be held. No-op without a store.
func (t *Tracker) storeWriteLocked(id BlockID) error {
	if t.store == nil {
		return nil
	}
	FillPayload(id, t.sharedBuf)
	return t.store.WriteBlock(id, t.sharedBuf)
}

// storeReadLocked fetches and verifies block id's payload — one
// physical read per logical miss; t.mu must be held.
func (t *Tracker) storeReadLocked(id BlockID) error {
	if t.store == nil {
		return nil
	}
	if err := t.store.ReadBlock(id, t.sharedBuf); err != nil {
		return err
	}
	return VerifyPayload(id, t.sharedBuf)
}

// B returns the block size in words.
func (t *Tracker) B() int { return t.cfg.B }

// Config returns the machine configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Stats returns a snapshot of the tracker-wide counters. Charges held by
// in-flight QueryViews are not included until their End merges them.
func (t *Tracker) Stats() Stats {
	return Stats{
		Reads:  t.reads.Load(),
		Writes: t.writes.Load(),
		Hits:   t.hits.Load(),
		Blocks: t.blocks.Load(),
	}
}

// ResetCounters zeroes the tracker-wide I/O counters (reads, writes, hits)
// but keeps the allocation count and cache contents, so that build cost and
// query cost can be measured separately. It must not race with in-flight
// queries.
func (t *Tracker) ResetCounters() {
	t.reads.Store(0)
	t.writes.Store(0)
	t.hits.Store(0)
}

// DropCache evicts every block from the shared cache, forcing subsequent
// shared-path touches to pay full I/O cost. Queries measured from a cold
// cache reflect the paper's worst-case accounting. (QueryViews always start
// cold and are unaffected.)
func (t *Tracker) DropCache() {
	t.mu.Lock()
	t.cache.clear()
	t.mu.Unlock()
}

// Alloc reserves one new block and returns its ID. Allocation itself
// charges one write I/O (the block must reach disk at least once).
// Allocation mutates the structure, so it panics inside a read-only
// query view.
func (t *Tracker) Alloc() BlockID {
	t.checkMutable("Alloc")
	id := BlockID(t.next.Add(1) - 1)
	t.blocks.Add(1)
	t.writes.Add(1)
	t.mu.Lock()
	t.cache.touch(id)
	err := t.storeWriteLocked(id)
	t.mu.Unlock()
	t.noteStoreErr(err)
	return id
}

// AllocRun reserves n consecutive blocks (e.g. the leaf level of a static
// structure) and returns the first ID. It charges n write I/Os.
func (t *Tracker) AllocRun(n int) BlockID {
	if n <= 0 {
		panic("em: AllocRun with n <= 0")
	}
	t.checkMutable("AllocRun")
	id := BlockID(t.next.Add(uint64(n)) - uint64(n))
	t.blocks.Add(int64(n))
	t.writes.Add(int64(n))
	if t.store != nil {
		var err error
		t.mu.Lock()
		for i := 0; i < n && err == nil; i++ {
			err = t.storeWriteLocked(id + BlockID(i))
		}
		t.mu.Unlock()
		t.noteStoreErr(err)
	}
	return id
}

// Free releases a block. Space accounting only; no I/O is charged.
func (t *Tracker) Free(id BlockID) {
	if id == 0 {
		return
	}
	t.checkMutable("Free")
	t.blocks.Add(-1)
	t.mu.Lock()
	t.cache.evict(id)
	t.mu.Unlock()
	if t.store != nil {
		t.noteStoreErr(t.store.Free(id))
	}
}

// FreeRun releases n consecutive blocks starting at id.
func (t *Tracker) FreeRun(id BlockID, n int) {
	for i := 0; i < n; i++ {
		t.Free(id + BlockID(i))
	}
}

// ReleaseBlocks returns n blocks to the model's free space without naming
// their IDs — the bulk-discard path used when an entire substructure is
// thrown away (e.g. a merge of the dynamization overlay). Space accounting
// only; no I/O is charged, and any stale cache entries for the discarded
// blocks simply age out of the LRU (block IDs are never reused).
func (t *Tracker) ReleaseBlocks(n int64) {
	if n <= 0 {
		return
	}
	t.checkMutable("ReleaseBlocks")
	t.blocks.Add(-n)
}

// checkMutable panics if the calling goroutine is inside a read-only query
// view: queries must not change the allocation ledger, and the panic turns
// a silent accounting corruption into an immediate test failure.
func (t *Tracker) checkMutable(op string) {
	if t.currentView() != nil {
		panic("em: " + op + " inside a read-only query view")
	}
}

// Read charges for reading one block: a cache hit is free, a miss costs one
// I/O and makes the block resident.
func (t *Tracker) Read(id BlockID) {
	if id == 0 {
		panic("em: read of invalid block 0")
	}
	if v := t.currentView(); v != nil {
		v.read(id)
		return
	}
	t.mu.Lock()
	hit := t.cache.touch(id)
	var err error
	if !hit {
		err = t.storeReadLocked(id)
	}
	t.mu.Unlock()
	t.noteStoreErr(err)
	if hit {
		t.hits.Add(1)
	} else {
		t.reads.Add(1)
	}
}

// Write charges one write I/O for block id and makes it resident.
func (t *Tracker) Write(id BlockID) {
	if id == 0 {
		panic("em: write of invalid block 0")
	}
	if v := t.currentView(); v != nil {
		v.write(id)
		return
	}
	t.mu.Lock()
	t.cache.touch(id)
	err := t.storeWriteLocked(id)
	t.mu.Unlock()
	t.noteStoreErr(err)
	t.writes.Add(1)
}

// ReadRun charges for a sequential scan of n consecutive blocks starting at
// id. Sequential scans of runs longer than the cache bypass it (as a real
// scan would flush itself), so each block costs one read.
func (t *Tracker) ReadRun(id BlockID, n int) {
	if n <= 0 {
		return
	}
	if v := t.currentView(); v != nil {
		v.readRun(id, n)
		return
	}
	if n <= t.cfg.MemBlocks {
		for i := 0; i < n; i++ {
			t.Read(id + BlockID(i))
		}
		return
	}
	t.reads.Add(int64(n))
	if t.store != nil {
		// A cache-bypassing sequential scan still moves every block
		// physically.
		var err error
		t.mu.Lock()
		for i := 0; i < n && err == nil; i++ {
			err = t.storeReadLocked(id + BlockID(i))
		}
		t.mu.Unlock()
		t.noteStoreErr(err)
	}
}

// PathCost charges the I/Os of walking `nodes` nodes of a bounded-degree
// search tree stored in a blocked (van Emde Boas style) layout, in which
// any top-down walk of d nodes touches O(d / log₂B) blocks — the standard
// way EM structures store binary search trees. One read is charged per
// ⌊log₂B⌋ nodes walked.
func (t *Tracker) PathCost(nodes int) {
	if nodes <= 0 {
		return
	}
	n := pathReads(nodes, t.cfg.B)
	if v := t.currentView(); v != nil {
		v.addReads(n)
		return
	}
	t.reads.Add(n)
	t.chargeReads(n)
}

// pathReads is the blocked-layout cost formula shared by the tracker and
// its query views.
func pathReads(nodes, b int) int64 {
	per := 1
	for ; b > 1; b >>= 1 {
		per++
	}
	return int64((nodes + per - 1) / per)
}

// ScanCost charges the I/Os of scanning nItems items packed B-per-block:
// ceil(nItems/B) reads. It is the standard O(t/B) output term. The scan is
// charged directly (no cache interaction) because reporting output is
// written to the query answer, not revisited.
func (t *Tracker) ScanCost(nItems int) {
	if nItems <= 0 {
		return
	}
	n := int64((nItems + t.cfg.B - 1) / t.cfg.B)
	if v := t.currentView(); v != nil {
		v.addReads(n)
		return
	}
	t.reads.Add(n)
	t.chargeReads(n)
}

// SortCost charges one external-memory merge sort of nItems items packed
// B-per-block: ceil(n/B) blocks read and written per pass, with
// max(1, ⌈log_{M/B}(n/B)⌉) passes — the textbook EM sorting bound
// (Aggarwal & Vitter). It is the bulk-ingest charge path: merging a
// validated batch into a dynamized structure pays one streaming sort of
// the batch, not per-item costs. Update-path only (never inside a query
// view).
func (t *Tracker) SortCost(nItems int) {
	t.checkMutable("SortCost")
	if nItems <= 0 {
		return
	}
	blocks := int64((nItems + t.cfg.B - 1) / t.cfg.B)
	fan := int64(t.cfg.MemBlocks)
	if fan < 2 {
		fan = 2
	}
	passes := int64(1)
	for capacity := fan; capacity < blocks; capacity *= fan {
		passes++
	}
	t.reads.Add(blocks * passes)
	t.writes.Add(blocks * passes)
	t.chargeReads(blocks * passes)
}

// chargeReads materializes cost-level read charges (PathCost, ScanCost)
// as physical stand-in reads when a store is attached. These charges
// model block traffic without naming block IDs, so the store reads a
// fixed always-valid region once per charged read — keeping the
// physical read total equal to the logical one. Stand-in reads need no
// shared scratch, so no lock is taken (ChargeReads is concurrency-safe
// by the BlockStore contract).
func (t *Tracker) chargeReads(n int64) {
	if t.store == nil {
		return
	}
	t.noteStoreErr(t.store.ChargeReads(n))
}

// SeqBlocks returns how many B-word blocks a byte stream of the given
// length spans at 8 bytes per word — the block count of one sequential
// pass over it.
func (t *Tracker) SeqBlocks(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	words := (bytes + 7) / 8
	return (words + int64(t.cfg.B) - 1) / int64(t.cfg.B)
}

// SnapshotCost charges the sequential writes of emitting a snapshot of
// the given byte length: ceil(bytes/8/B) write I/Os, the O(size/B)
// streaming cost. Snapshotting reads resident state and appends to a
// fresh stream, so no reads and no cache interaction are charged.
func (t *Tracker) SnapshotCost(bytes int64) {
	t.checkMutable("SnapshotCost")
	t.writes.Add(t.SeqBlocks(bytes))
}

// RestoreAccounting runs fn — a restore that reconstructs structures in
// memory from a decoded snapshot — and then replaces whatever I/Os the
// reconstruction charged with the model cost of a warm start: one
// sequential read pass over the snapshot stream, ceil(bytes/8/B) reads.
//
// In a real deployment a restore deserializes blocks directly from disk
// and never re-runs the build algorithm; this simulator rebuilds the Go
// values (which routes through Alloc/Write as if building) and then
// rewrites the flow counters to what the paper's model would charge.
// Space (Blocks) is kept from the actual reconstruction, since the
// restored structure genuinely occupies that many blocks, and the cache
// is dropped so the restored machine starts cold. It must not run
// concurrently with queries on the same tracker.
func (t *Tracker) RestoreAccounting(bytes int64, fn func() error) error {
	before := t.Stats()
	if err := fn(); err != nil {
		return err
	}
	t.reads.Store(before.Reads + t.SeqBlocks(bytes))
	t.writes.Store(before.Writes)
	t.hits.Store(before.Hits)
	t.DropCache()
	return nil
}

// currentView returns the calling goroutine's active view, or nil. The
// common no-views case costs one atomic load.
func (t *Tracker) currentView() *QueryView {
	if t.nviews.Load() == 0 {
		return nil
	}
	if v, ok := t.views.Load(goid()); ok {
		return v.(*QueryView)
	}
	return nil
}

// InView reports whether the calling goroutine is currently inside a
// query view (between BeginQuery and End). Observability layers use it
// to avoid double-accounting a query that the view will already report.
func (t *Tracker) InView() bool { return t.currentView() != nil }

// BlocksFor returns how many blocks are needed to store nItems items of
// wordsPerItem words each, packed contiguously.
func BlocksFor(nItems, wordsPerItem, b int) int64 {
	if nItems <= 0 {
		return 0
	}
	words := int64(nItems) * int64(wordsPerItem)
	return (words + int64(b) - 1) / int64(b)
}
