package diskstore_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"topk/internal/em"
	"topk/internal/em/diskstore"
)

// faultFile injects faults below the store's checksums — at the file
// layer — on a table-driven schedule: the Nth invocation (1-based) of
// an operation fails with the scheduled kind. It complements
// em.FaultStore, which injects at the BlockStore layer (above the
// checksums): here a torn write persists a genuinely half-written slot
// that only the CRC can catch.
type faultFile struct {
	inner diskstore.File

	mu     sync.Mutex
	counts map[string]int64
	sched  map[string]map[int64]string // op -> invocation -> kind
	fired  int
}

func newFaultFile(sched map[string]map[int64]string) func(diskstore.File) diskstore.File {
	return func(inner diskstore.File) diskstore.File {
		return &faultFile{inner: inner, counts: make(map[string]int64), sched: sched}
	}
}

func (f *faultFile) next(op string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	k, ok := f.sched[op][f.counts[op]]
	if ok {
		f.fired++
	}
	return k, ok
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if k, ok := f.next("read"); ok {
		switch k {
		case "short":
			n, err := f.inner.ReadAt(p[:len(p)/2], off)
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("faultfile: short read: %d of %d bytes", n, len(p))
		default:
			return 0, errors.New("faultfile: injected transient read error (EINTR-style)")
		}
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if k, ok := f.next("write"); ok {
		switch k {
		case "torn":
			// Persist only the first half of the transfer — a power cut
			// mid-write. The slot header (including the CRC over the
			// *full* payload) lands on disk, the payload tail does not.
			n, err := f.inner.WriteAt(p[:len(p)/2], off)
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("faultfile: torn write: %d of %d bytes reached the disk", n, len(p))
		default:
			return 0, errors.New("faultfile: injected transient write error (EAGAIN-style)")
		}
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Sync() error {
	if _, ok := f.next("sync"); ok {
		return errors.New("faultfile: injected fsync failure (EIO-style)")
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

// Invocation numbering note: a fresh store's superblock write is file
// write #1 and a reopened store's superblock read is file read #1, so
// the first block operation is invocation #2 of its kind.

func TestFileFaultTransient(t *testing.T) {
	ff := newFaultFile(map[string]map[int64]string{
		"write": {3: "transient"}, // superblock=1, block 1=2, block 2=3
		"read":  {2: "transient"}, // first block read after the faulted write
	})
	path := filepath.Join(t.TempDir(), "blocks.tkbs")
	s, err := diskstore.Open(path, payload, diskstore.WithFileWrapper(ff))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.WriteBlock(1, canonical(1)); err != nil {
		t.Fatalf("unfaulted write: %v", err)
	}
	err = s.WriteBlock(2, canonical(2))
	if err == nil || !strings.Contains(err.Error(), "transient") {
		t.Fatalf("faulted write: %v", err)
	}
	// The store stays usable: retry succeeds.
	if err := s.WriteBlock(2, canonical(2)); err != nil {
		t.Fatalf("retry after transient write fault: %v", err)
	}
	buf := make([]byte, payload)
	// Read #1 was the superblock? No — this store was opened fresh, so
	// the first file read is a block read and fault N=2 hits the second.
	if err := s.ReadBlock(1, buf); err == nil || !strings.Contains(err.Error(), "transient") {
		// Depending on open path the numbering can differ by one; accept
		// the fault on either of the first two block reads.
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if err := s.ReadBlock(2, buf); err == nil || !strings.Contains(err.Error(), "transient") {
			t.Fatalf("scheduled transient read fault never fired: %v", err)
		}
	}
	// Retry succeeds and the bytes verify.
	if err := s.ReadBlock(1, buf); err != nil {
		t.Fatalf("retry after transient read fault: %v", err)
	}
	if err := em.VerifyPayload(1, buf); err != nil {
		t.Fatal(err)
	}
}

func TestFileFaultShortRead(t *testing.T) {
	ff := newFaultFile(map[string]map[int64]string{"read": {1: "short"}})
	path := filepath.Join(t.TempDir(), "blocks.tkbs")
	s, err := diskstore.Open(path, payload, diskstore.WithFileWrapper(ff))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteBlock(1, canonical(1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, payload)
	if err := s.ReadBlock(1, buf); err == nil || !strings.Contains(err.Error(), "short read") {
		t.Fatalf("short-read fault: %v", err)
	}
	if err := s.ReadBlock(1, buf); err != nil {
		t.Fatalf("retry after short read: %v", err)
	}
	if err := em.VerifyPayload(1, buf); err != nil {
		t.Fatal(err)
	}
}

func TestFileFaultTornWrite(t *testing.T) {
	// Write #1 = superblock, #2 = block 1 (clean), #3 = block 2 (torn).
	ff := newFaultFile(map[string]map[int64]string{"write": {3: "torn"}})
	path := filepath.Join(t.TempDir(), "blocks.tkbs")
	s, err := diskstore.Open(path, payload, diskstore.WithFileWrapper(ff))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteBlock(1, canonical(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(2, canonical(2)); err == nil || !strings.Contains(err.Error(), "torn write") {
		t.Fatalf("torn write fault: %v", err)
	}
	// The torn slot is on disk below the checksum: reading it must
	// surface corruption, never the partial bytes.
	buf := make([]byte, payload)
	err = s.ReadBlock(2, buf)
	if err == nil {
		t.Fatal("read of torn slot succeeded")
	}
	if !errors.Is(err, diskstore.ErrChecksum) && !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("read of torn slot: %v", err)
	}
	// The neighbor is intact, and rewriting the torn block heals it.
	if err := s.ReadBlock(1, buf); err != nil {
		t.Fatalf("neighbor of torn slot: %v", err)
	}
	if err := s.WriteBlock(2, canonical(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock(2, buf); err != nil {
		t.Fatalf("read after healing rewrite: %v", err)
	}
	if err := em.VerifyPayload(2, buf); err != nil {
		t.Fatal(err)
	}
}

func TestFileFaultSync(t *testing.T) {
	ff := newFaultFile(map[string]map[int64]string{"sync": {1: "fail"}})
	path := filepath.Join(t.TempDir(), "blocks.tkbs")
	s, err := diskstore.Open(path, payload, diskstore.WithFileWrapper(ff))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Sync(); err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("sync fault: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("retry after sync fault: %v", err)
	}
}

// TestCrashPartialFiles simulates crash damage directly on the closed
// file — truncation mid-slot, payload bit rot, header damage, a zeroed
// slot — and asserts the reopened store either round-trips each block
// or refuses it with a descriptive checksum-class error. Undamaged
// neighbors must keep reading cleanly.
func TestCrashPartialFiles(t *testing.T) {
	const nBlocks = 6
	build := func(t *testing.T) (string, int64) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "blocks.tkbs")
		s, err := diskstore.Open(path, payload)
		if err != nil {
			t.Fatal(err)
		}
		for id := em.BlockID(1); id <= nBlocks; id++ {
			if err := s.WriteBlock(id, canonical(id)); err != nil {
				t.Fatal(err)
			}
		}
		slot := s.SlotBytes()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return path, slot
	}
	const super = 4096 // documented superblock reservation
	slotOff := func(slot int64, id em.BlockID) int64 { return super + int64(id-1)*slot }

	cases := []struct {
		name    string
		damage  func(t *testing.T, path string, slot int64)
		badID   em.BlockID
		wantSub string // substring of the read error
		wantCks bool   // errors.Is(err, ErrChecksum)
	}{
		{
			name: "truncated mid-slot",
			damage: func(t *testing.T, path string, slot int64) {
				// Cut the file in the middle of the last slot.
				if err := os.Truncate(path, slotOff(slot, nBlocks)+slot/2); err != nil {
					t.Fatal(err)
				}
			},
			badID:   nBlocks,
			wantSub: "truncated",
			wantCks: true,
		},
		{
			name: "payload bit rot",
			damage: func(t *testing.T, path string, slot int64) {
				corruptByte(t, path, slotOff(slot, 3)+16+int64(payload)/2)
			},
			badID:   3,
			wantSub: "checksum",
			wantCks: true,
		},
		{
			name: "header id damaged",
			damage: func(t *testing.T, path string, slot int64) {
				corruptByte(t, path, slotOff(slot, 4)) // first byte of the stored id
			},
			badID:   4,
			wantSub: "misdirected",
		},
		{
			name: "slot zeroed",
			damage: func(t *testing.T, path string, slot int64) {
				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt(make([]byte, slot), slotOff(slot, 2)); err != nil {
					t.Fatal(err)
				}
			},
			badID:   2,
			wantSub: "never written",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, slot := build(t)
			tc.damage(t, path, slot)

			s, err := diskstore.Open(path, payload)
			if err != nil {
				t.Fatalf("reopen after crash damage: %v", err)
			}
			defer s.Close()
			buf := make([]byte, payload)

			err = s.ReadBlock(tc.badID, buf)
			if err == nil {
				t.Fatalf("read of damaged block %d succeeded", tc.badID)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("damaged block %d error %q, want substring %q", tc.badID, err, tc.wantSub)
			}
			if tc.wantCks && !errors.Is(err, diskstore.ErrChecksum) {
				t.Fatalf("damaged block %d error %q does not wrap ErrChecksum", tc.badID, err)
			}
			for id := em.BlockID(1); id <= nBlocks; id++ {
				if id == tc.badID {
					continue
				}
				if err := s.ReadBlock(id, buf); err != nil {
					t.Fatalf("undamaged block %d after crash: %v", id, err)
				}
				if err := em.VerifyPayload(id, buf); err != nil {
					t.Fatalf("undamaged block %d corrupt: %v", id, err)
				}
			}
		})
	}
}

// TestTrackerSurvivesStoreFaults drives a disk-backed tracker through
// an em.FaultStore schedule: the tracker must never panic, logical
// accounting must keep working, and the first failure must be retained.
func TestTrackerSurvivesStoreFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.tkbs")
	disk, err := diskstore.Open(path, em.PayloadBytesFor(16))
	if err != nil {
		t.Fatal(err)
	}
	faulty := em.NewFaultStore(disk,
		em.Fault{Op: em.OpWrite, N: 2, Kind: em.FaultTornWrite},
		em.Fault{Op: em.OpRead, N: 1, Kind: em.FaultTransient},
	)
	tr, err := em.NewTrackerWithStore(em.Config{B: 16, MemBlocks: 2}, faulty)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ids := make([]em.BlockID, 8)
	for i := range ids {
		ids[i] = tr.Alloc() // write #2 is torn; must not panic
	}
	for _, id := range ids {
		tr.Read(id) // evictions force misses; read #1 is transient
	}
	if got := tr.Stats().Reads; got == 0 {
		t.Fatal("no logical reads recorded")
	}
	if tr.StoreErr() == nil {
		t.Fatal("faults fired but StoreErr is nil")
	}
	if tr.FaultCount() < 2 {
		// The torn write also leaves a corrupt slot behind, so later
		// misses on that block add verification faults.
		t.Fatalf("FaultCount = %d, want >= 2", tr.FaultCount())
	}
	if faulty.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", faulty.Fired())
	}
}
