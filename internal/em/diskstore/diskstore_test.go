package diskstore_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"topk/internal/em"
	"topk/internal/em/diskstore"
)

// The disk store must satisfy the em.BlockStore contract.
var _ em.BlockStore = (*diskstore.Store)(nil)

const payload = 128 // B=16 words

func openTemp(t *testing.T, opts ...diskstore.Option) (*diskstore.Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blocks.tkbs")
	s, err := diskstore.Open(path, payload, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func canonical(id em.BlockID) []byte {
	b := make([]byte, payload)
	em.FillPayload(id, b)
	return b
}

func TestRoundTrip(t *testing.T) {
	s, _ := openTemp(t)
	ids := []em.BlockID{1, 2, 3, 7, 100}
	for _, id := range ids {
		if err := s.WriteBlock(id, canonical(id)); err != nil {
			t.Fatalf("WriteBlock(%d): %v", id, err)
		}
	}
	buf := make([]byte, payload)
	for _, id := range ids {
		if err := s.ReadBlock(id, buf); err != nil {
			t.Fatalf("ReadBlock(%d): %v", id, err)
		}
		if err := em.VerifyPayload(id, buf); err != nil {
			t.Fatalf("block %d came back corrupt: %v", id, err)
		}
	}
	st := s.StoreStats()
	if st.Writes != int64(len(ids)) || st.Reads != int64(len(ids)) {
		t.Fatalf("StoreStats = %+v, want %d writes / %d reads", st, len(ids), len(ids))
	}
	if st.BytesWritten != int64(len(ids))*s.SlotBytes() {
		t.Fatalf("BytesWritten = %d, want %d", st.BytesWritten, int64(len(ids))*s.SlotBytes())
	}
}

func TestRewrite(t *testing.T) {
	s, _ := openTemp(t)
	data := canonical(1)
	if err := s.WriteBlock(1, data); err != nil {
		t.Fatal(err)
	}
	// Rewrite with different bytes; the last write wins.
	other := make([]byte, payload)
	em.FillPayload(42, other)
	if err := s.WriteBlock(1, other); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, payload)
	if err := s.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := em.VerifyPayload(42, buf); err != nil {
		t.Fatalf("rewrite did not take: %v", err)
	}
}

func TestArgumentErrors(t *testing.T) {
	s, _ := openTemp(t)
	buf := make([]byte, payload)
	if err := s.WriteBlock(0, buf); err == nil {
		t.Fatal("WriteBlock(0) succeeded")
	}
	if err := s.ReadBlock(0, buf); err == nil {
		t.Fatal("ReadBlock(0) succeeded")
	}
	if err := s.WriteBlock(1, buf[:10]); err == nil || !strings.Contains(err.Error(), "10 bytes") {
		t.Fatalf("short-buffer write: %v", err)
	}
	if err := s.ReadBlock(1, make([]byte, payload+1)); err == nil {
		t.Fatal("long-buffer read succeeded")
	}
}

func TestNeverWrittenAndFreed(t *testing.T) {
	s, _ := openTemp(t)
	buf := make([]byte, payload)
	// Nothing written at all: read is beyond EOF.
	if err := s.ReadBlock(3, buf); err == nil || !strings.Contains(err.Error(), "never written") {
		t.Fatalf("read of unwritten block: %v", err)
	}
	// Write block 5 only; block 3's slot is now a hole inside the file.
	if err := s.WriteBlock(5, canonical(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock(3, buf); err == nil || !strings.Contains(err.Error(), "never written") {
		t.Fatalf("read of hole slot: %v", err)
	}
	// Freed block: read errors, rewrite resurrects.
	if err := s.Free(5); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock(5, buf); err == nil || !strings.Contains(err.Error(), "freed") {
		t.Fatalf("read of freed block: %v", err)
	}
	if err := s.Free(999); err != nil {
		t.Fatalf("free of unknown block should be a no-op: %v", err)
	}
	if err := s.WriteBlock(5, canonical(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock(5, buf); err != nil {
		t.Fatalf("read after rewrite of freed block: %v", err)
	}
}

func TestClosedOps(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.WriteBlock(1, canonical(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	buf := make([]byte, payload)
	for name, err := range map[string]error{
		"read":  s.ReadBlock(1, buf),
		"write": s.WriteBlock(1, canonical(1)),
		"free":  s.Free(1),
		"sync":  s.Sync(),
		"close": s.Close(),
	} {
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Errorf("%s on closed store: %v", name, err)
		}
	}
}

func TestReopenRoundTrips(t *testing.T) {
	s, path := openTemp(t)
	for id := em.BlockID(1); id <= 20; id++ {
		if err := s.WriteBlock(id, canonical(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := diskstore.Open(path, payload)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	buf := make([]byte, payload)
	for id := em.BlockID(1); id <= 20; id++ {
		if err := r.ReadBlock(id, buf); err != nil {
			t.Fatalf("reopened ReadBlock(%d): %v", id, err)
		}
		if err := em.VerifyPayload(id, buf); err != nil {
			t.Fatalf("reopened block %d corrupt: %v", id, err)
		}
	}
}

func TestReopenRefusals(t *testing.T) {
	t.Run("wrong payload size", func(t *testing.T) {
		s, path := openTemp(t)
		s.WriteBlock(1, canonical(1))
		s.Close()
		if _, err := diskstore.Open(path, payload*2); err == nil ||
			!strings.Contains(err.Error(), fmt.Sprintf("%d-byte blocks", payload)) {
			t.Fatalf("payload mismatch reopen: %v", err)
		}
	})
	t.Run("not a block store", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "junk")
		if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := diskstore.Open(path, payload); err == nil ||
			!strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("junk-file open: %v", err)
		}
	})
	t.Run("corrupt superblock", func(t *testing.T) {
		s, path := openTemp(t)
		s.WriteBlock(1, canonical(1))
		s.Close()
		corruptByte(t, path, 9) // inside the checksummed header region
		if _, err := diskstore.Open(path, payload); err == nil ||
			!errors.Is(err, diskstore.ErrChecksum) {
			t.Fatalf("corrupt-superblock open: %v", err)
		}
	})
	t.Run("truncate discards", func(t *testing.T) {
		s, path := openTemp(t)
		s.WriteBlock(1, canonical(1))
		s.Close()
		r, err := diskstore.Open(path, payload, diskstore.WithTruncate())
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.ReadBlock(1, make([]byte, payload)); err == nil {
			t.Fatal("block survived WithTruncate")
		}
	})
}

func TestDirectIO(t *testing.T) {
	// O_DIRECT may or may not be available on the test filesystem; either
	// way the store must open and round-trip (falling back to buffered).
	s, path := openTemp(t, diskstore.WithDirectIO())
	t.Logf("direct I/O negotiated: %v (slot %d bytes)", s.DirectActive(), s.SlotBytes())
	if s.DirectActive() && s.SlotBytes()%4096 != 0 {
		t.Fatalf("direct mode with unaligned slot size %d", s.SlotBytes())
	}
	for id := em.BlockID(1); id <= 8; id++ {
		if err := s.WriteBlock(id, canonical(id)); err != nil {
			t.Fatalf("WriteBlock(%d): %v", id, err)
		}
	}
	buf := make([]byte, payload)
	for id := em.BlockID(1); id <= 8; id++ {
		if err := s.ReadBlock(id, buf); err != nil {
			t.Fatalf("ReadBlock(%d): %v", id, err)
		}
		if err := em.VerifyPayload(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A direct-mode file reopens in buffered mode (and vice versa): the
	// superblock's slot size is adopted.
	r, err := diskstore.Open(path, payload)
	if err != nil {
		t.Fatalf("buffered reopen of direct-mode file: %v", err)
	}
	defer r.Close()
	if err := r.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if err := em.VerifyPayload(3, buf); err != nil {
		t.Fatal(err)
	}
}

func TestSyncWrites(t *testing.T) {
	s, _ := openTemp(t, diskstore.WithSyncWrites())
	if err := s.WriteBlock(1, canonical(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.StoreStats().Syncs; got != 1 {
		// WriteBlock's implicit fsyncs are durability, not Sync calls.
		t.Fatalf("Syncs = %d, want 1", got)
	}
}

func TestConcurrentReads(t *testing.T) {
	s, _ := openTemp(t)
	const nBlocks = 64
	for id := em.BlockID(1); id <= nBlocks; id++ {
		if err := s.WriteBlock(id, canonical(id)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, payload)
			for i := 0; i < 200; i++ {
				id := em.BlockID(uint64(g*31+i)%nBlocks + 1)
				if err := s.ReadBlock(id, buf); err != nil {
					t.Errorf("concurrent ReadBlock(%d): %v", id, err)
					return
				}
				if err := em.VerifyPayload(id, buf); err != nil {
					t.Errorf("concurrent read of block %d corrupt: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// corruptByte flips one byte of the file at off.
func corruptByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
