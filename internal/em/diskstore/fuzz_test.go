package diskstore_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"topk/internal/em"
	"topk/internal/em/diskstore"
)

// FuzzBlockStore oracle-diffs the disk store against em.MemStore: two
// trackers — one over each store — execute the same random
// alloc/free/read/write/drop-cache schedule in lockstep, and after
// every operation the logical Stats must agree; at the end the physical
// StoreStats operation counts must agree, no store error may have been
// recorded on either side, and every live block's content must read
// back byte-identical (and canonical) from both media.
func FuzzBlockStore(f *testing.F) {
	f.Add(byte(0), []byte{0, 0, 1, 2, 2, 0, 3, 0, 5, 0, 2, 1})
	f.Add(byte(1), []byte{1, 3, 6, 0, 4, 0, 0, 0, 2, 5, 3, 2, 5, 0, 2, 9})
	f.Add(byte(0), []byte{1, 7, 6, 1, 4, 2, 1, 2, 6, 0, 2, 3, 2, 4, 2, 5, 0, 0, 3, 1})
	f.Add(byte(1), bytes.Repeat([]byte{0, 0, 2, 1, 4, 0}, 12))

	f.Fuzz(func(t *testing.T, policyByte byte, data []byte) {
		const b = 16
		cfg := em.Config{B: b, MemBlocks: 3, Policy: em.PolicyLRU}
		if policyByte&1 == 1 {
			cfg.Policy = em.PolicyTinyLFU
		}
		pb := em.PayloadBytesFor(b)

		memStore := em.NewMemStore(pb)
		memT, err := em.NewTrackerWithStore(cfg, memStore)
		if err != nil {
			t.Fatal(err)
		}
		diskStore, err := diskstore.Open(filepath.Join(t.TempDir(), "fuzz.tkbs"), pb)
		if err != nil {
			t.Fatal(err)
		}
		diskT, err := em.NewTrackerWithStore(cfg, diskStore)
		if err != nil {
			t.Fatal(err)
		}
		defer diskT.Close()

		type run struct {
			start em.BlockID
			n     int
			dead  bool
		}
		var live []em.BlockID
		var runs []run

		step := 0
		for i := 0; i+1 < len(data) && step < 256; i, step = i+2, step+1 {
			op, arg := data[i]%9, int(data[i+1])
			switch op {
			case 0: // Alloc
				a, b := memT.Alloc(), diskT.Alloc()
				if a != b {
					t.Fatalf("step %d: Alloc diverged: mem %d, disk %d", step, a, b)
				}
				live = append(live, a)
				runs = append(runs, run{start: a, n: 1})
			case 1: // AllocRun
				n := 1 + arg%4
				a, b := memT.AllocRun(n), diskT.AllocRun(n)
				if a != b {
					t.Fatalf("step %d: AllocRun diverged: mem %d, disk %d", step, a, b)
				}
				for j := 0; j < n; j++ {
					live = append(live, a+em.BlockID(j))
				}
				runs = append(runs, run{start: a, n: n})
			case 2: // Read
				if len(live) == 0 {
					continue
				}
				id := live[arg%len(live)]
				memT.Read(id)
				diskT.Read(id)
			case 3: // Write
				if len(live) == 0 {
					continue
				}
				id := live[arg%len(live)]
				memT.Write(id)
				diskT.Write(id)
			case 4: // Free
				if len(live) == 0 {
					continue
				}
				k := arg % len(live)
				id := live[k]
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				for j := range runs {
					if id >= runs[j].start && id < runs[j].start+em.BlockID(runs[j].n) {
						runs[j].dead = true
					}
				}
				memT.Free(id)
				diskT.Free(id)
			case 5: // DropCache
				memT.DropCache()
				diskT.DropCache()
			case 6: // ReadRun over a fully-live run
				alive := runs[:0:0]
				for _, r := range runs {
					if !r.dead {
						alive = append(alive, r)
					}
				}
				if len(alive) == 0 {
					continue
				}
				r := alive[arg%len(alive)]
				memT.ReadRun(r.start, r.n)
				diskT.ReadRun(r.start, r.n)
			case 7: // ScanCost: cost-level charge, physical stand-in reads
				memT.ScanCost(1 + arg)
				diskT.ScanCost(1 + arg)
			case 8: // PathCost: cost-level charge, physical stand-in reads
				memT.PathCost(1 + arg)
				diskT.PathCost(1 + arg)
			}
			if ms, ds := memT.Stats(), diskT.Stats(); ms != ds {
				t.Fatalf("step %d (op %d): logical stats diverged: mem %+v, disk %+v", step, op, ms, ds)
			}
		}

		if err := memT.StoreErr(); err != nil {
			t.Fatalf("mem tracker recorded store error: %v", err)
		}
		if err := diskT.StoreErr(); err != nil {
			t.Fatalf("disk tracker recorded store error: %v", err)
		}
		ms, ds := memT.StoreStats(), diskT.StoreStats()
		if ms.Reads != ds.Reads || ms.Writes != ds.Writes || ms.Frees != ds.Frees {
			t.Fatalf("physical op counts diverged: mem %+v, disk %+v", ms, ds)
		}

		// Content diff: every live block reads back identical from both
		// media, and both match the canonical payload.
		bm, bd := make([]byte, pb), make([]byte, pb)
		for _, id := range live {
			if err := memStore.ReadBlock(id, bm); err != nil {
				t.Fatalf("oracle read of block %d: %v", id, err)
			}
			if err := diskStore.ReadBlock(id, bd); err != nil {
				t.Fatalf("disk read of block %d: %v", id, err)
			}
			if !bytes.Equal(bm, bd) {
				t.Fatalf("block %d content diverged between mem and disk", id)
			}
			if err := em.VerifyPayload(id, bd); err != nil {
				t.Fatalf("block %d not canonical: %v", id, err)
			}
		}
	})
}
