//go:build !linux

package diskstore

import "os"

// openFile opens (or creates) the store file. O_DIRECT is not portable
// off Linux, so a direct-I/O request silently degrades to buffered I/O
// here; DirectActive reports the outcome.
func openFile(path string, truncate, _ bool) (*os.File, bool, error) {
	flags := os.O_RDWR | os.O_CREATE
	if truncate {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	return f, false, err
}
