//go:build linux

package diskstore

import (
	"os"
	"syscall"
)

// openFile opens (or creates) the store file, attempting O_DIRECT when
// requested. Some kernels/filesystems reject the flag at open time —
// that degrades to a buffered open here; others accept the flag and
// reject the first transfer, which Open handles by reopening buffered.
func openFile(path string, truncate, direct bool) (*os.File, bool, error) {
	flags := os.O_RDWR | os.O_CREATE
	if truncate {
		flags |= os.O_TRUNC
	}
	if direct {
		f, err := os.OpenFile(path, flags|syscall.O_DIRECT, 0o644)
		if err == nil {
			return f, true, nil
		}
	}
	f, err := os.OpenFile(path, flags, 0o644)
	return f, false, err
}
