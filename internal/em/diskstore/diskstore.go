// Package diskstore is the file-backed em.BlockStore: fixed-size block
// slots paged out of a single data file with pread/pwrite at block
// granularity (O_DIRECT where the platform and filesystem allow it,
// buffered I/O otherwise). It is what turns the repository's simulated
// Aggarwal–Vitter I/O counts into hardware-level measurements — every
// cache miss the em.Tracker charges becomes one positioned read
// syscall against this store, every allocation and write one
// positioned write.
//
// # On-disk format
//
//	offset 0:                superblock (one 4096-byte reserved region)
//	offset super+(id-1)*S:   slot for block id (S = slot size)
//
//	superblock: magic "TKBS" | version u16 | flags u16 |
//	            payloadBytes u32 | slotBytes u32 | crc32 u32
//	slot:       id u64 | length u32 | crc32(payload) u32 |
//	            payload | zero padding to S
//
// Each slot is self-describing: the embedded block ID catches
// misdirected reads (an offset bug reads *some* valid-looking slot —
// the wrong one), the length and CRC catch torn writes and truncated
// files, and a zero header reads as "never written" (a hole in the
// sparse file). Every failure mode surfaces as a descriptive error,
// never a panic and never silently wrong bytes; the fault-injection
// and fuzz suites in this package pin that contract down.
//
// # Durability contract
//
// WriteBlock is buffered unless the store was opened WithSyncWrites;
// Sync (and Close) flush to the medium. A crash between WriteBlock and
// Sync may leave a torn or missing slot — reopening the file is always
// safe (the superblock is validated) and reading a damaged slot
// returns a checksum/short-read error rather than stale bytes. The
// store is a paging arena, not the system of record: durable state
// lives in the snapshot layer (DESIGN.md §12), and a damaged arena is
// simply rebuilt or restored.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"

	"topk/internal/em"
)

const (
	magic      = "TKBS"
	version    = 1
	superBytes = 4096
	headerLen  = 16 // id u64 | length u32 | crc u32
	// bufferedAlign keeps slots cache-line aligned in buffered mode;
	// directAlign satisfies O_DIRECT's sector/page alignment requirement.
	bufferedAlign = 64
	directAlign   = 4096
)

// ErrChecksum tags corruption detected on read — a torn write, a
// truncated file, or bit rot. errors.Is(err, ErrChecksum) distinguishes
// "the medium lied" from transient I/O failure.
var ErrChecksum = errors.New("diskstore: block checksum mismatch")

// File is the slice of *os.File the store uses, injectable for fault
// testing (WithFileWrapper).
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
}

// Options configure Open.
type Options struct {
	truncate   bool
	direct     bool
	syncWrites bool
	wrap       func(File) File
}

// Option mutates Options.
type Option func(*Options)

// WithTruncate starts the store empty, discarding any existing file
// content.
func WithTruncate() Option { return func(o *Options) { o.truncate = true } }

// WithDirectIO requests O_DIRECT block transfers, bypassing the OS page
// cache so the M/B-frame cache in em.Tracker is the *only* cache
// between the structures and the medium. Platforms or filesystems
// without O_DIRECT support (including non-Linux builds and tmpfs) fall
// back to buffered I/O; DirectActive reports what was negotiated.
func WithDirectIO() Option { return func(o *Options) { o.direct = true } }

// WithSyncWrites fsyncs after every WriteBlock — the paranoid
// configuration for crash tests; ordinary use batches durability into
// Sync/Close.
func WithSyncWrites() Option { return func(o *Options) { o.syncWrites = true } }

// WithFileWrapper interposes on the store's file handle — the
// fault-injection seam used by this package's tests. A wrapped store
// never falls back from direct to buffered I/O (the wrapper would be
// lost in the reopen).
func WithFileWrapper(wrap func(File) File) Option { return func(o *Options) { o.wrap = wrap } }

// Store is a file-backed em.BlockStore. ReadBlock calls may run
// concurrently with each other and with WriteBlock calls to other
// blocks (all I/O is positioned); the em.Tracker contract serializes
// structure mutation above it.
type Store struct {
	file    File
	path    string
	payload int
	slot    int64
	align   int
	direct  bool

	pool      sync.Pool // *[]byte slot buffers, aligned, exactly slot-sized
	superPool sync.Pool // *[]byte superblock buffers, aligned

	reads, writes, syncs, frees atomic.Int64
	bytesRead, bytesWritten     atomic.Int64

	mu     sync.RWMutex
	freed  map[em.BlockID]bool
	closed bool

	syncWrites bool
}

// Open creates or opens the block store at path for payloadBytes-byte
// blocks. An existing file must carry a valid superblock with the same
// payload size; a fresh or truncated file is initialized. All
// validation failures are descriptive errors, never panics.
func Open(path string, payloadBytes int, opts ...Option) (*Store, error) {
	if payloadBytes < 8 {
		return nil, fmt.Errorf("diskstore: payload size %d bytes, need >= 8", payloadBytes)
	}
	var o Options
	for _, fn := range opts {
		fn(&o)
	}

	f, direct, err := openFile(path, o.truncate, o.direct)
	if err != nil {
		return nil, fmt.Errorf("diskstore: opening %s: %w", path, err)
	}
	align := bufferedAlign
	if direct {
		align = directAlign
	}
	var file File = f
	if o.wrap != nil {
		file = o.wrap(file)
	}

	s := &Store{
		file:       file,
		path:       path,
		payload:    payloadBytes,
		slot:       roundUp(int64(headerLen+payloadBytes), int64(align)),
		align:      align,
		direct:     direct,
		freed:      make(map[em.BlockID]bool),
		syncWrites: o.syncWrites,
	}
	s.pool.New = func() any {
		b := alignedBuf(int(s.slot), s.align)
		return &b
	}
	s.superPool.New = func() any {
		b := alignedBuf(superBytes, s.align)
		return &b
	}

	init, err := s.needsInit(o.truncate)
	if err == nil {
		if init {
			err = s.writeSuper()
		} else {
			err = s.checkSuper()
		}
	}
	if err != nil {
		file.Close()
		// O_DIRECT negotiated at open time can still fail at the first
		// transfer (tmpfs accepts the flag but rejects the I/O): retry
		// once in buffered mode. A genuine validation error simply
		// fails again and propagates.
		if direct && o.wrap == nil {
			return Open(path, payloadBytes, append(opts[:len(opts):len(opts)], withoutDirect())...)
		}
		return nil, err
	}
	return s, nil
}

// withoutDirect cancels the direct-I/O request on a fallback reopen.
func withoutDirect() Option { return func(o *Options) { o.direct = false } }

// needsInit reports whether the file needs a fresh superblock.
func (s *Store) needsInit(truncated bool) (bool, error) {
	if truncated {
		return true, nil
	}
	fi, err := os.Stat(s.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return true, nil
		}
		return false, fmt.Errorf("diskstore: stat %s: %w", s.path, err)
	}
	return fi.Size() == 0, nil
}

// writeSuper initializes the superblock.
func (s *Store) writeSuper() error {
	buf := alignedBuf(superBytes, s.align)
	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint16(buf[4:6], version)
	flags := uint16(0)
	if s.direct {
		flags |= 1
	}
	binary.LittleEndian.PutUint16(buf[6:8], flags)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(s.payload))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(s.slot))
	binary.LittleEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(buf[0:16]))
	if _, err := s.file.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("diskstore: writing superblock of %s: %w", s.path, err)
	}
	return nil
}

// checkSuper validates an existing file's superblock against this
// store's geometry and adopts the file's slot size, so a store written
// in direct mode (4096-byte slots) reopens correctly in buffered mode
// and vice versa.
func (s *Store) checkSuper() error {
	buf := alignedBuf(superBytes, s.align)
	n, err := s.file.ReadAt(buf, 0)
	if err != nil && !(errors.Is(err, io.EOF) && n >= 20) {
		return fmt.Errorf("diskstore: reading superblock of %s: %w", s.path, err)
	}
	if string(buf[0:4]) != magic {
		return fmt.Errorf("diskstore: %s is not a block store (bad magic %q)", s.path, buf[0:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != version {
		return fmt.Errorf("diskstore: %s uses format version %d, this build reads version %d", s.path, v, version)
	}
	if got := binary.LittleEndian.Uint32(buf[16:20]); got != crc32.ChecksumIEEE(buf[0:16]) {
		return fmt.Errorf("diskstore: %s superblock corrupt: %w", s.path, ErrChecksum)
	}
	if pb := binary.LittleEndian.Uint32(buf[8:12]); int(pb) != s.payload {
		return fmt.Errorf("diskstore: %s holds %d-byte blocks, store opened for %d", s.path, pb, s.payload)
	}
	slot := int64(binary.LittleEndian.Uint32(buf[12:16]))
	if slot < int64(headerLen+s.payload) {
		return fmt.Errorf("diskstore: %s declares slot size %d, smaller than header+payload %d: %w",
			s.path, slot, headerLen+s.payload, ErrChecksum)
	}
	if s.direct && slot%directAlign != 0 {
		// A buffered-era file whose slots are not sector-aligned cannot
		// be driven with O_DIRECT; the caller retries buffered.
		return fmt.Errorf("diskstore: %s has %d-byte slots, unusable with direct I/O", s.path, slot)
	}
	s.slot = slot
	return nil
}

// PayloadBytes returns the fixed payload size of every block.
func (s *Store) PayloadBytes() int { return s.payload }

// SlotBytes returns the on-disk slot size (header + payload + padding).
func (s *Store) SlotBytes() int64 { return s.slot }

// DirectActive reports whether O_DIRECT transfers were negotiated.
func (s *Store) DirectActive() bool { return s.direct }

// Path returns the backing file's path.
func (s *Store) Path() string { return s.path }

func (s *Store) offset(id em.BlockID) int64 {
	return superBytes + int64(id-1)*s.slot
}

// WriteBlock persists data as block id: header + payload + padding in
// one positioned write.
func (s *Store) WriteBlock(id em.BlockID, data []byte) error {
	if id == 0 {
		return fmt.Errorf("diskstore: write of invalid block 0")
	}
	if len(data) != s.payload {
		return fmt.Errorf("diskstore: write of %d bytes to block %d, store holds %d-byte blocks", len(data), id, s.payload)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("diskstore: write to block %d on a closed store", id)
	}
	delete(s.freed, id)
	s.mu.Unlock()

	bp := s.pool.Get().(*[]byte)
	defer s.pool.Put(bp)
	buf := *bp
	clear(buf[headerLen+s.payload:])
	binary.LittleEndian.PutUint64(buf[0:8], uint64(id))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(s.payload))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(data))
	copy(buf[headerLen:], data)
	n, err := s.file.WriteAt(buf, s.offset(id))
	if err != nil {
		return fmt.Errorf("diskstore: writing block %d: %w", id, err)
	}
	if int64(n) != s.slot {
		return fmt.Errorf("diskstore: short write of block %d: %d of %d bytes", id, n, s.slot)
	}
	s.writes.Add(1)
	s.bytesWritten.Add(s.slot)
	if s.syncWrites {
		if err := s.file.Sync(); err != nil {
			return fmt.Errorf("diskstore: syncing block %d: %w", id, err)
		}
	}
	return nil
}

// ReadBlock fills buf with block id's payload, verifying the slot's
// embedded ID, declared length, and checksum before returning any
// bytes.
func (s *Store) ReadBlock(id em.BlockID, buf []byte) error {
	if id == 0 {
		return fmt.Errorf("diskstore: read of invalid block 0")
	}
	if len(buf) != s.payload {
		return fmt.Errorf("diskstore: read of %d bytes from block %d, store holds %d-byte blocks", len(buf), id, s.payload)
	}
	s.mu.RLock()
	closed, freed := s.closed, s.freed[id]
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("diskstore: read of block %d on a closed store", id)
	}
	if freed {
		return fmt.Errorf("diskstore: read of block %d, which was never written or was freed", id)
	}

	bp := s.pool.Get().(*[]byte)
	defer s.pool.Put(bp)
	slot := *bp
	n, err := s.file.ReadAt(slot, s.offset(id))
	switch {
	case errors.Is(err, io.EOF) && n == 0:
		return fmt.Errorf("diskstore: read of block %d, which was never written or was freed", id)
	case errors.Is(err, io.EOF) && int64(n) < s.slot:
		return fmt.Errorf("diskstore: block %d truncated: %d of %d bytes on disk (crash-partial file?): %w",
			id, n, s.slot, ErrChecksum)
	case err != nil:
		return fmt.Errorf("diskstore: reading block %d: %w", id, err)
	}

	storedID := binary.LittleEndian.Uint64(slot[0:8])
	length := binary.LittleEndian.Uint32(slot[8:12])
	crc := binary.LittleEndian.Uint32(slot[12:16])
	if storedID == 0 && length == 0 && crc == 0 {
		// A hole in the sparse file: a later block's write extended the
		// file past this slot, but the slot itself was never written.
		return fmt.Errorf("diskstore: read of block %d, which was never written or was freed", id)
	}
	if storedID != uint64(id) {
		return fmt.Errorf("diskstore: misdirected read: slot for block %d holds block %d", id, storedID)
	}
	if int(length) != s.payload {
		return fmt.Errorf("diskstore: block %d declares %d payload bytes, store holds %d: %w",
			id, length, s.payload, ErrChecksum)
	}
	payload := slot[headerLen : headerLen+s.payload]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return fmt.Errorf("diskstore: block %d payload checksum %08x, slot declares %08x: %w",
			id, got, crc, ErrChecksum)
	}
	copy(buf, payload)
	s.reads.Add(1)
	s.bytesRead.Add(s.slot)
	return nil
}

// ChargeReads performs n physical stand-in reads for cost-level
// charges (em.Tracker.PathCost and ScanCost): those charges model
// block traffic without naming block IDs, so each one is satisfied by
// re-reading the superblock region — a real positioned read of a
// fixed, always-valid, alignment-compliant region, validated like any
// other read — keeping StoreStats.Reads equal to the logical read
// count even for cost-formula charges.
func (s *Store) ChargeReads(n int64) error {
	if n <= 0 {
		return nil
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("diskstore: charge read on a closed store")
	}
	bp := s.superPool.Get().(*[]byte)
	defer s.superPool.Put(bp)
	buf := *bp
	for i := int64(0); i < n; i++ {
		m, err := s.file.ReadAt(buf, 0)
		if err != nil && !(errors.Is(err, io.EOF) && m >= 20) {
			return fmt.Errorf("diskstore: charge read %d of %d: %w", i+1, n, err)
		}
		if string(buf[0:4]) != magic {
			return fmt.Errorf("diskstore: charge read: %s superblock has bad magic %q", s.path, buf[0:4])
		}
		if got := binary.LittleEndian.Uint32(buf[16:20]); got != crc32.ChecksumIEEE(buf[0:16]) {
			return fmt.Errorf("diskstore: charge read: %s superblock corrupt: %w", s.path, ErrChecksum)
		}
		s.reads.Add(1)
		s.bytesRead.Add(superBytes)
	}
	return nil
}

// Free releases block id: later reads error. Freeing an unknown block
// is not an error (mirrors em.MemStore). The slot stays in place —
// block IDs are never reused by em.Tracker, so the file is an
// append-mostly arena; compaction happens via snapshot+restore.
func (s *Store) Free(id em.BlockID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("diskstore: free of block %d on a closed store", id)
	}
	s.freed[id] = true
	s.frees.Add(1)
	return nil
}

// Sync flushes buffered writes to the medium.
func (s *Store) Sync() error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("diskstore: sync on a closed store")
	}
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("diskstore: sync: %w", err)
	}
	s.syncs.Add(1)
	return nil
}

// Close flushes and closes the backing file; every later operation
// errors.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("diskstore: already closed")
	}
	s.closed = true
	s.mu.Unlock()
	if err := s.file.Sync(); err != nil {
		s.file.Close()
		return fmt.Errorf("diskstore: sync on close: %w", err)
	}
	if err := s.file.Close(); err != nil {
		return fmt.Errorf("diskstore: close: %w", err)
	}
	return nil
}

// StoreStats returns the physical operation counters.
func (s *Store) StoreStats() em.StoreStats {
	return em.StoreStats{
		Reads:        s.reads.Load(),
		Writes:       s.writes.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Syncs:        s.syncs.Load(),
		Frees:        s.frees.Load(),
	}
}

// roundUp rounds n up to a multiple of align.
func roundUp(n, align int64) int64 { return (n + align - 1) / align * align }
