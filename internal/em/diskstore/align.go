package diskstore

import "unsafe"

// alignedBuf allocates a zeroed size-byte slice whose backing array
// starts on an align-byte boundary, as O_DIRECT transfers require. The
// capacity is clamped to size so appends cannot silently spill past the
// aligned window.
func alignedBuf(size, align int) []byte {
	raw := make([]byte, size+align)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(unsafe.SliceData(raw))) % uintptr(align)); rem != 0 {
		off = align - rem
	}
	return raw[off : off+size : off+size]
}
