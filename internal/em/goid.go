package em

import (
	"bytes"
	"runtime"
	"sync"
)

// goidBufs pools the small buffers used to read the stack-trace header.
var goidBufs = sync.Pool{
	New: func() any { b := make([]byte, 64); return &b },
}

// goid returns the runtime ID of the calling goroutine, parsed from the
// first stack-trace line ("goroutine 123 [running]:"). The runtime exposes
// no public accessor; this is the standard portable technique. Goroutine
// IDs are never reused, so a finished query can never alias a later one.
// The parse only runs on tracker paths while at least one QueryView is
// active — the idle fast path is a single atomic load.
func goid() uint64 {
	bp := goidBufs.Get().(*[]byte)
	n := runtime.Stack(*bp, false)
	id := parseGoid((*bp)[:n])
	goidBufs.Put(bp)
	return id
}

var goroutinePrefix = []byte("goroutine ")

func parseGoid(b []byte) uint64 {
	if !bytes.HasPrefix(b, goroutinePrefix) {
		panic("em: unexpected runtime.Stack header: " + string(b))
	}
	b = b[len(goroutinePrefix):]
	var id uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	if id == 0 {
		panic("em: could not parse goroutine id from stack header")
	}
	return id
}
