package em

import "container/list"

// lruCache models the M/B block frames of internal memory with
// least-recently-used replacement.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used; values are BlockID
	pos   map[BlockID]*list.Element
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		pos:   make(map[BlockID]*list.Element, capacity),
	}
}

// touch marks id as most recently used. It reports whether the block was
// already resident (a cache hit).
func (c *lruCache) touch(id BlockID) bool {
	if el, ok := c.pos[id]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.pos, oldest.Value.(BlockID))
	}
	c.pos[id] = c.order.PushFront(id)
	return false
}

func (c *lruCache) evict(id BlockID) {
	if el, ok := c.pos[id]; ok {
		c.order.Remove(el)
		delete(c.pos, id)
	}
}

func (c *lruCache) clear() {
	c.order.Init()
	clear(c.pos)
}

func (c *lruCache) len() int { return c.order.Len() }
