package em

import "time"

// A QueryView is a per-query window onto a Tracker: it shares the tracker's
// machine configuration and immutable block layout but owns a private,
// initially cold LRU cache and private I/O counters. Obtain one with
// Tracker.BeginQuery at the start of a read-only query and release it with
// End, which merges the counters into the tracker-wide totals atomically
// and returns the query's own Stats delta.
//
// While the view is active, every charge issued by the registering
// goroutine (Read, Write, ReadRun, PathCost, ScanCost) is routed to the
// view. Because the private cache starts cold and is never shared, a
// query's I/O count is a deterministic function of the query alone —
// identical whether queries run serially or in parallel — which is what
// lets concurrent measurements still validate the paper's cold-cache
// bounds.
//
// Charges are routed by goroutine identity, so the goroutine that calls
// BeginQuery must be the one executing the query, the query must not spawn
// internal goroutines, and End must be called from that same goroutine.
// Allocation (Alloc, AllocRun, Free, FreeRun) mutates the structure and
// panics while a view is active on the calling goroutine.
type QueryView struct {
	t     *Tracker
	gid   uint64
	cache blockCache
	// buf is the view's private payload scratch when the tracker has a
	// physical store: view misses perform their own physical reads, so
	// concurrent queries drive concurrent store traffic.
	buf []byte

	reads, writes, hits int64

	// Request-lifecycle limits, armed by SetLimits. limited gates the
	// whole check so an unlimited view pays one bool test per charge.
	limited    bool
	budget     int64
	deadline   time.Time
	untilCheck int32 // charges until the next time.Now deadline poll

	// trace buffers the query's completed spans when a TraceSink is
	// installed; spanDepth tracks span nesting and spanReads/Writes/Hits
	// accumulate the depth-0 deltas so End can attribute any residual.
	trace                           []TraceEvent
	spanDepth                       int32
	spanReads, spanWrites, spanHits int64

	ended bool
}

// BeginQuery registers a fresh, cold QueryView for the calling goroutine
// and returns it. Charges from this goroutine are routed to the view until
// End is called. It panics if this goroutine already holds an active view
// on this tracker: queries do not nest.
func (t *Tracker) BeginQuery() *QueryView {
	gid := goid()
	v := &QueryView{t: t, gid: gid, cache: newBlockCache(t.cfg.Policy, t.cfg.MemBlocks, &t.cacheCtr)}
	if t.store != nil {
		v.buf = make([]byte, t.store.PayloadBytes())
	}
	if _, loaded := t.views.LoadOrStore(gid, v); loaded {
		panic("em: BeginQuery: a query view is already active on this goroutine")
	}
	t.nviews.Add(1)
	return v
}

// Stats returns the view's counters so far. Blocks reports the tracker-wide
// allocation level: space is shared, and read-only queries never allocate.
func (v *QueryView) Stats() Stats {
	return Stats{
		Reads:  v.reads,
		Writes: v.writes,
		Hits:   v.hits,
		Blocks: v.t.blocks.Load(),
	}
}

// End deregisters the view, merges its counters into the tracker-wide
// totals with atomic adds, and returns the view's final Stats. Calling End
// again is a no-op that returns the same Stats, so it is safe to defer.
//
// When a TraceSink is installed, End first closes the query's trace: if
// the depth-0 spans do not account for the view's full counters, a
// synthetic PhaseUnattributed event covers the difference, so the depth-0
// deltas of the finished trace always sum exactly to the returned Stats.
// The trace is then delivered to the sink via QueryTrace and remains
// readable through Trace.
func (v *QueryView) End() Stats {
	st := v.Stats()
	if v.ended {
		return st
	}
	v.ended = true
	if box := v.t.sink.Load(); box != nil {
		r := v.reads - v.spanReads
		w := v.writes - v.spanWrites
		h := v.hits - v.spanHits
		if r != 0 || w != 0 || h != 0 {
			v.trace = append(v.trace, TraceEvent{
				Phase: PhaseUnattributed, Level: -1,
				Reads: r, Writes: w, Hits: h,
			})
		}
		box.s.QueryTrace(v.trace, st)
	}
	v.t.views.Delete(v.gid)
	v.t.nviews.Add(-1)
	v.t.reads.Add(v.reads)
	v.t.writes.Add(v.writes)
	v.t.hits.Add(v.hits)
	return st
}

// Trace returns the query's buffered span events — populated only while a
// TraceSink is installed on the tracker, and complete (including the
// residual PhaseUnattributed event, if any) once End has run. The slice
// is owned by the view; callers must copy it to retain it.
func (v *QueryView) Trace() []TraceEvent { return v.trace }

// read charges one block read against the private cache; a miss with a
// physical store attached additionally fetches and verifies the block.
func (v *QueryView) read(id BlockID) {
	if v.cache.touch(id) {
		v.hits++
		v.checkLimits()
		return
	}
	v.reads++
	v.storeRead(id)
	v.checkLimits()
}

// write charges one block write and makes the block resident privately.
func (v *QueryView) write(id BlockID) {
	v.cache.touch(id)
	v.writes++
	if v.buf != nil {
		FillPayload(id, v.buf)
		v.t.noteStoreErr(v.t.store.WriteBlock(id, v.buf))
	}
	v.checkLimits()
}

// readRun mirrors Tracker.ReadRun against the private cache.
func (v *QueryView) readRun(id BlockID, n int) {
	if n <= v.t.cfg.MemBlocks {
		for i := 0; i < n; i++ {
			v.read(id + BlockID(i))
		}
		return
	}
	v.reads += int64(n)
	for i := 0; v.buf != nil && i < n; i++ {
		v.storeRead(id + BlockID(i))
	}
	v.checkLimits()
}

// chargeReads mirrors Tracker.chargeReads for view-routed cost-level
// charges: n physical stand-in reads against the store's fixed region.
func (v *QueryView) chargeReads(n int64) {
	if v.buf == nil {
		return
	}
	v.t.noteStoreErr(v.t.store.ChargeReads(n))
}

// storeRead performs the physical fetch+verify of one missed block.
func (v *QueryView) storeRead(id BlockID) {
	if v.buf == nil {
		return
	}
	err := v.t.store.ReadBlock(id, v.buf)
	if err == nil {
		err = VerifyPayload(id, v.buf)
	}
	v.t.noteStoreErr(err)
}
