package em

// This file is the tracing half of the EM simulator: structured span
// events that attribute a query's I/O cost to the algorithmic phase that
// incurred it (a Theorem 2 round, a core-set chain level, an overlay tail
// scan, …).
//
// The design constraint is that tracing must be invisible when off: the
// hot query paths of every reduction call BeginSpan/EndSpan
// unconditionally, and with no sink installed both are a single atomic
// load with zero allocation (guarded by BenchmarkTraceOverhead and
// TestSpanOffPathZeroAlloc). Tracing must also never perturb the counters
// it observes — spans only *read* the I/O counters, so enabling a sink
// cannot change any measured I/O count (the "observer effect" discussed
// in DESIGN.md §9).
//
// Routing mirrors the charge routing of the tracker: a span begun while
// the calling goroutine holds a QueryView snapshots the view's private
// counters and is buffered on the view, giving exact per-query phase
// deltas; a span begun on the shared path (builds, updates, flush merges
// — all under the caller's exclusive-access contract) snapshots the
// shared atomic counters and is delivered to the sink immediately.
// Shared-path spans taken while other goroutines are charging I/Os
// concurrently are data-race-free but attribute the interleaved charges
// to the open span; exact per-query traces therefore come from the
// QueryView path, which QueryBatch uses for every query.

// TraceEvent is one completed span: an algorithmic phase together with
// the EM I/O deltas incurred while it was open.
type TraceEvent struct {
	// Phase names the algorithmic phase, namespaced by the emitting
	// layer: "t1.*" (Theorem 1), "t2.*" (Theorem 2), "dyn.*" (the
	// logarithmic-method overlay), "em.*" (this package). DESIGN.md §9
	// lists the full taxonomy.
	Phase string
	// Level is the structure level the phase ran on (core-set chain
	// depth, ladder rung, overlay level), or -1 when not applicable.
	Level int
	// Arg is a phase-specific magnitude: items scanned, round ordinal,
	// tombstone over-fetch, batch size. See the taxonomy for each phase.
	Arg int64
	// Depth is the span nesting depth within its query. Depth-0 spans
	// partition the query's total cost: summed per counter they equal
	// the query's Stats exactly (any gap is closed by a synthetic
	// PhaseUnattributed event at query end).
	Depth int
	// Reads, Writes and Hits are the I/O counter deltas between the
	// span's begin and end.
	Reads, Writes, Hits int64
}

// IOs returns the span's Reads + Writes, the EM model's cost metric.
func (ev TraceEvent) IOs() int64 { return ev.Reads + ev.Writes }

// PhaseUnattributed is the synthetic phase appended at query end when the
// depth-0 spans do not cover the query's full cost (e.g. a facade path
// that charges I/Os outside any instrumented phase). It keeps the
// invariant "depth-0 deltas sum to the query's Stats" true by
// construction while still exposing how much cost escaped attribution.
const PhaseUnattributed = "em.unattributed"

// A TraceSink receives completed spans. Implementations must be safe for
// concurrent use (query traces arrive from every worker goroutine of a
// batch) and must not issue charges against the tracker they observe.
type TraceSink interface {
	// Event receives one span completed outside any query view: build,
	// update, flush and rebuild phases, or queries run on the shared
	// path.
	Event(ev TraceEvent)
	// QueryTrace receives one completed query's ordered spans along with
	// the query's final counter totals. The events slice is owned by the
	// caller and must not be retained or mutated after the call returns.
	QueryTrace(events []TraceEvent, st Stats)
}

// sinkBox wraps the installed sink so the tracker can hold it in an
// atomic.Pointer (interfaces are not directly atomically storable).
type sinkBox struct{ s TraceSink }

// SetTraceSink installs (or, with nil, removes) the tracker's trace sink.
// Install the sink before issuing queries; swapping it while spans are
// open drops those spans. A nil sink disables tracing entirely and
// restores the zero-cost path.
func (t *Tracker) SetTraceSink(s TraceSink) {
	if s == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkBox{s: s})
}

// Tracing reports whether a trace sink is installed.
func (t *Tracker) Tracing() bool { return t != nil && t.sink.Load() != nil }

// SpanMark is the begin-marker of a span: a snapshot of the I/O counters
// the matching EndSpan will diff against. It is a plain value — no
// allocation — and its zero value is inactive, so the off path costs
// nothing beyond the BeginSpan call itself.
type SpanMark struct {
	reads, writes, hits int64
	depth               int32
	active              bool
	shared              bool
}

// Active reports whether the mark was taken with tracing enabled.
func (m SpanMark) Active() bool { return m.active }

// BeginSpan opens a span on the calling goroutine and returns its mark.
// With no sink installed (or a nil tracker) it returns an inactive mark
// at the cost of one atomic load. Spans must be properly nested per
// goroutine and closed by EndSpan before the enclosing query view ends.
func (t *Tracker) BeginSpan() SpanMark {
	if t == nil || t.sink.Load() == nil {
		return SpanMark{}
	}
	if v := t.currentView(); v != nil {
		m := SpanMark{reads: v.reads, writes: v.writes, hits: v.hits, depth: v.spanDepth, active: true}
		v.spanDepth++
		return m
	}
	return SpanMark{
		reads:  t.reads.Load(),
		writes: t.writes.Load(),
		hits:   t.hits.Load(),
		depth:  t.spanDepth.Add(1) - 1,
		active: true,
		shared: true,
	}
}

// EndSpan closes a span: it computes the counter deltas since the mark
// and either buffers the event on the goroutine's query view (delivered
// as a batch by QueryView.End) or, on the shared path, delivers it to the
// sink immediately. Inactive marks (tracing off, nil tracker) no-op.
func (t *Tracker) EndSpan(m SpanMark, phase string, level int, arg int64) {
	if t == nil || !m.active {
		return
	}
	if !m.shared {
		v := t.currentView()
		if v == nil {
			return // view ended with the span still open; drop it
		}
		v.spanDepth--
		ev := TraceEvent{
			Phase: phase, Level: level, Arg: arg, Depth: int(m.depth),
			Reads: v.reads - m.reads, Writes: v.writes - m.writes, Hits: v.hits - m.hits,
		}
		if ev.Depth == 0 {
			v.spanReads += ev.Reads
			v.spanWrites += ev.Writes
			v.spanHits += ev.Hits
		}
		v.trace = append(v.trace, ev)
		return
	}
	t.spanDepth.Add(-1)
	box := t.sink.Load()
	if box == nil {
		return // sink removed while the span was open
	}
	box.s.Event(TraceEvent{
		Phase: phase, Level: level, Arg: arg, Depth: int(m.depth),
		Reads:  t.reads.Load() - m.reads,
		Writes: t.writes.Load() - m.writes,
		Hits:   t.hits.Load() - m.hits,
	})
}
