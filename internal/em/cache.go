package em

import (
	"container/list"
	"sync/atomic"
)

// CachePolicy selects the replacement/admission policy of the M/B
// memory frames. The policy changes which touches hit (and, with a
// store attached, which misses reach the physical medium); it never
// changes query answers, which are computed from the in-memory
// structures.
type CachePolicy int

const (
	// PolicyLRU is plain least-recently-used replacement: every missed
	// block is admitted, evicting the coldest frame. The EM model's
	// default, and the policy all paper-facing measurements use.
	PolicyLRU CachePolicy = iota
	// PolicyTinyLFU keeps LRU's eviction order but gates admission with
	// a frequency sketch behind a doorkeeper bloom filter (TinyLFU): a
	// missed block is admitted only if its estimated access frequency
	// beats the would-be victim's, so one-touch blocks from long scans
	// cannot flush a resident hot set.
	PolicyTinyLFU
)

// String returns the policy's name.
func (p CachePolicy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyTinyLFU:
		return "tinylfu"
	}
	return "unknown"
}

// CacheStats counts cache-policy decisions across a tracker and all of
// its query views.
type CacheStats struct {
	// Evictions counts frames displaced to admit another block.
	Evictions int64
	// AdmissionRejects counts missed blocks the admission filter refused
	// to cache (TinyLFU only; always 0 under LRU).
	AdmissionRejects int64
	// SketchResets counts doorkeeper/sketch aging resets (TinyLFU only).
	SketchResets int64
}

// cacheCounters is the atomic sink cache instances report into: the
// tracker owns one, shared by the tracker-wide cache and every query
// view's private cache.
type cacheCounters struct {
	evictions, rejects, resets atomic.Int64
}

func (c *cacheCounters) snapshot() CacheStats {
	return CacheStats{
		Evictions:        c.evictions.Load(),
		AdmissionRejects: c.rejects.Load(),
		SketchResets:     c.resets.Load(),
	}
}

// blockCache is the frame-set abstraction behind the tracker and its
// views: touch reports residency (and decides admission on a miss),
// evict and clear invalidate, len is the resident frame count.
type blockCache interface {
	touch(id BlockID) bool
	evict(id BlockID)
	clear()
	len() int
}

// newBlockCache builds the frame set for one cache instance. ctr may be
// nil (a standalone cache that reports nothing).
func newBlockCache(policy CachePolicy, capacity int, ctr *cacheCounters) blockCache {
	if ctr == nil {
		ctr = &cacheCounters{}
	}
	switch policy {
	case PolicyTinyLFU:
		return newTinyLFUCache(capacity, ctr)
	default:
		return newLRUCache(capacity, ctr)
	}
}

// lruCache models the M/B block frames of internal memory with
// least-recently-used replacement.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used; values are BlockID
	pos   map[BlockID]*list.Element
	ctr   *cacheCounters
}

func newLRUCache(capacity int, ctr *cacheCounters) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		pos:   make(map[BlockID]*list.Element, capacity),
		ctr:   ctr,
	}
}

// touch marks id as most recently used. It reports whether the block was
// already resident (a cache hit).
func (c *lruCache) touch(id BlockID) bool {
	if el, ok := c.pos[id]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.pos, oldest.Value.(BlockID))
		c.ctr.evictions.Add(1)
	}
	c.pos[id] = c.order.PushFront(id)
	return false
}

func (c *lruCache) evict(id BlockID) {
	if el, ok := c.pos[id]; ok {
		c.order.Remove(el)
		delete(c.pos, id)
	}
}

func (c *lruCache) clear() {
	c.order.Init()
	clear(c.pos)
}

func (c *lruCache) len() int { return c.order.Len() }
