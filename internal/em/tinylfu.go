package em

import "container/list"

// tinyLFUCache is an LRU frame set with TinyLFU admission (Einziger,
// Friedman & Manes, "TinyLFU: A Highly Efficient Cache Admission
// Policy"): a count-min sketch of 4-bit counters estimates each block's
// access frequency, a doorkeeper bloom filter absorbs the long tail of
// one-touch blocks so they never pollute the sketch, and a missed block
// is admitted into a full cache only if its estimate strictly beats the
// LRU victim's. Every sample-period touches, the doorkeeper clears and
// the sketch halves (aging), so the frequency view tracks the recent
// workload rather than all history.
//
// The effect this buys in the EM model: a scan of fresh blocks (each
// touched once) flows past a resident hot set instead of flushing it,
// which is exactly the workload mix a top-k serving layer sees — point
// queries against a hot root/core-set region interleaved with long
// reporting scans.
type tinyLFUCache struct {
	cap   int
	order *list.List
	pos   map[BlockID]*list.Element
	ctr   *cacheCounters

	sketch     cmSketch
	door       []uint64 // doorkeeper bloom bitset
	doorBits   uint64
	ops        int // touches since the last reset
	samplePeri int
}

// doorkeeperBitsPerFrame sizes the bloom bitset; 16 bits/frame keeps
// the false-positive rate low at the scale of one sample period.
const doorkeeperBitsPerFrame = 16

func newTinyLFUCache(capacity int, ctr *cacheCounters) *tinyLFUCache {
	bits := uint64(capacity * doorkeeperBitsPerFrame)
	if bits < 256 {
		bits = 256
	}
	// Round the bitset up to whole words.
	words := (bits + 63) / 64
	c := &tinyLFUCache{
		cap:        capacity,
		order:      list.New(),
		pos:        make(map[BlockID]*list.Element, capacity),
		ctr:        ctr,
		door:       make([]uint64, words),
		doorBits:   words * 64,
		samplePeri: 10 * capacity,
	}
	c.sketch.init(capacity)
	return c
}

func (c *tinyLFUCache) touch(id BlockID) bool {
	c.record(id)
	if el, ok := c.pos[id]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if c.order.Len() < c.cap {
		c.pos[id] = c.order.PushFront(id)
		return false
	}
	victim := c.order.Back().Value.(BlockID)
	if c.estimate(id) <= c.estimate(victim) {
		// The candidate is no hotter than the coldest resident frame:
		// keep the frame, let the candidate pass through uncached.
		c.ctr.rejects.Add(1)
		return false
	}
	c.order.Remove(c.order.Back())
	delete(c.pos, victim)
	c.ctr.evictions.Add(1)
	c.pos[id] = c.order.PushFront(id)
	return false
}

// record notes one access: a block's first touch of the sample period
// only sets its doorkeeper bit; repeat touches feed the sketch. When the
// sample period elapses, the doorkeeper clears and the sketch halves.
func (c *tinyLFUCache) record(id BlockID) {
	if c.ops++; c.ops >= c.samplePeri {
		c.reset()
	}
	if !c.doorSet(id) {
		return
	}
	c.sketch.increment(uint64(id))
}

// estimate is the block's frequency estimate: the sketch count plus one
// if its doorkeeper bit is set.
func (c *tinyLFUCache) estimate(id BlockID) uint32 {
	est := c.sketch.estimate(uint64(id))
	if c.doorHas(id) {
		est++
	}
	return est
}

// doorSet sets id's doorkeeper bits, reporting whether they were all
// already set (i.e. this is a repeat touch within the sample period).
func (c *tinyLFUCache) doorSet(id BlockID) bool {
	h1, h2 := doorHashes(uint64(id))
	b1, b2 := h1%c.doorBits, h2%c.doorBits
	was := c.door[b1/64]&(1<<(b1%64)) != 0 && c.door[b2/64]&(1<<(b2%64)) != 0
	c.door[b1/64] |= 1 << (b1 % 64)
	c.door[b2/64] |= 1 << (b2 % 64)
	return was
}

func (c *tinyLFUCache) doorHas(id BlockID) bool {
	h1, h2 := doorHashes(uint64(id))
	b1, b2 := h1%c.doorBits, h2%c.doorBits
	return c.door[b1/64]&(1<<(b1%64)) != 0 && c.door[b2/64]&(1<<(b2%64)) != 0
}

// reset ages the frequency view: doorkeeper cleared, sketch halved.
func (c *tinyLFUCache) reset() {
	c.ops = 0
	clear(c.door)
	c.sketch.halve()
	c.ctr.resets.Add(1)
}

func (c *tinyLFUCache) evict(id BlockID) {
	if el, ok := c.pos[id]; ok {
		c.order.Remove(el)
		delete(c.pos, id)
	}
}

func (c *tinyLFUCache) clear() {
	c.order.Init()
	clear(c.pos)
	clear(c.door)
	c.ops = 0
	c.sketch.clear()
}

func (c *tinyLFUCache) len() int { return c.order.Len() }

func doorHashes(x uint64) (uint64, uint64) {
	h := mix64(x)
	return h, mix64(h ^ 0xD6E8FEB86659FD93)
}

// cmSketch is a count-min sketch of 4-bit counters: cmRows rows of
// `width` counters each, packed 16 to a uint64 word.
type cmSketch struct {
	rows  [cmRows][]uint64
	mask  uint64 // width - 1 (width is a power of two)
	width uint64
}

const cmRows = 4

// cmSeeds decorrelate the four row hashes.
var cmSeeds = [cmRows]uint64{
	0xA3B195354A39B70D, 0x1B03738712FAD5C9,
	0xC1F5F3E8F2A9A9AD, 0x9E6C63D0A1B2C3D5,
}

func (s *cmSketch) init(capacity int) {
	width := uint64(64)
	for width < uint64(capacity)*8 {
		width *= 2
	}
	s.width, s.mask = width, width-1
	for r := range s.rows {
		s.rows[r] = make([]uint64, width/16)
	}
}

// increment bumps id's counter in every row, saturating at 15.
func (s *cmSketch) increment(id uint64) {
	for r := 0; r < cmRows; r++ {
		i := mix64(id^cmSeeds[r]) & s.mask
		word, shift := i/16, (i%16)*4
		if (s.rows[r][word]>>shift)&0xF < 15 {
			s.rows[r][word] += 1 << shift
		}
	}
}

// estimate returns the minimum of id's row counters.
func (s *cmSketch) estimate(id uint64) uint32 {
	est := uint32(15)
	for r := 0; r < cmRows; r++ {
		i := mix64(id^cmSeeds[r]) & s.mask
		word, shift := i/16, (i%16)*4
		if v := uint32(s.rows[r][word]>>shift) & 0xF; v < est {
			est = v
		}
	}
	return est
}

// halve ages every counter by one bit (divides all estimates by two).
func (s *cmSketch) halve() {
	const nibbleMask = 0x7777777777777777
	for r := range s.rows {
		row := s.rows[r]
		for i := range row {
			row[i] = (row[i] >> 1) & nibbleMask
		}
	}
}

func (s *cmSketch) clear() {
	for r := range s.rows {
		clear(s.rows[r])
	}
}
