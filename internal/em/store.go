package em

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// A BlockStore is the physical medium behind a Tracker: it persists the
// payload of every allocated block and serves it back on cache misses.
// The Tracker remains the EM *model* — it decides what counts as an I/O
// and maintains the M/B cache — while the store performs the actual
// data movement, so the same logical access trace can run against pure
// simulation (no store), an in-memory byte store (MemStore, the
// reference implementation and fuzz oracle), or a real file
// (internal/em/diskstore), whose preads and pwrites turn the paper's
// I/O counts into hardware-level measurements.
//
// Contract:
//
//   - WriteBlock persists exactly PayloadBytes bytes under id; it may be
//     called again for the same id (a rewrite).
//   - ReadBlock fills buf (len == PayloadBytes) with the last payload
//     written under id, or returns a descriptive error: never-written or
//     freed blocks, short reads, and checksum mismatches must all
//     surface as errors, never as silently wrong bytes and never as
//     panics.
//   - Free releases id; later reads of id must error.
//   - ReadBlock may be called concurrently with other ReadBlocks and
//     with WriteBlocks to *other* ids (the Tracker serializes structure
//     mutation, but read-only queries run in parallel).
//   - Close flushes and releases the medium; every later operation
//     errors.
type BlockStore interface {
	// PayloadBytes is the fixed payload size of every block, in bytes.
	PayloadBytes() int
	// WriteBlock persists data (len == PayloadBytes) as block id.
	WriteBlock(id BlockID, data []byte) error
	// ReadBlock fills buf (len == PayloadBytes) with block id's payload.
	ReadBlock(id BlockID, buf []byte) error
	// Free releases block id. Freeing an unknown id is not an error.
	Free(id BlockID) error
	// ChargeReads performs n physical stand-in reads for cost-level
	// charges (PathCost, ScanCost) that model block traffic without
	// naming block IDs: the store must move real bytes from the medium
	// once per charged read — against a fixed, always-valid region — and
	// count them in StoreStats, so the physical read total tracks the
	// logical read total exactly. It stops at the first failure.
	ChargeReads(n int64) error
	// Sync flushes buffered state to the medium.
	Sync() error
	// Close flushes and releases the medium.
	Close() error
	// StoreStats returns the physical operation counters.
	StoreStats() StoreStats
}

// StoreStats counts physical operations performed by a BlockStore —
// the measured side of the simulated-vs-real comparison (experiment
// E30). For a disk store, Reads and Writes are pread/pwrite calls at
// block granularity.
type StoreStats struct {
	Reads        int64 // physical block reads
	Writes       int64 // physical block writes
	BytesRead    int64
	BytesWritten int64
	Syncs        int64
	Frees        int64
}

// Sub returns the counter deltas s - t.
func (s StoreStats) Sub(t StoreStats) StoreStats {
	return StoreStats{
		Reads:        s.Reads - t.Reads,
		Writes:       s.Writes - t.Writes,
		BytesRead:    s.BytesRead - t.BytesRead,
		BytesWritten: s.BytesWritten - t.BytesWritten,
		Syncs:        s.Syncs - t.Syncs,
		Frees:        s.Frees - t.Frees,
	}
}

// storeCounters is the atomic counter set embedded by store
// implementations.
type storeCounters struct {
	reads, writes, bytesRead, bytesWritten, syncs, frees atomic.Int64
}

func (c *storeCounters) countRead(n int)  { c.reads.Add(1); c.bytesRead.Add(int64(n)) }
func (c *storeCounters) countWrite(n int) { c.writes.Add(1); c.bytesWritten.Add(int64(n)) }

func (c *storeCounters) snapshot() StoreStats {
	return StoreStats{
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		Syncs:        c.syncs.Load(),
		Frees:        c.frees.Load(),
	}
}

// PayloadBytesFor returns the payload size of a block on a machine with
// B words per block: 8 bytes per word.
func PayloadBytesFor(b int) int { return 8 * b }

// FillPayload writes block id's canonical payload into buf: a
// deterministic pseudo-random word stream seeded by the block ID. The
// structures in this repository are ordinary Go values and do not
// serialize their nodes, so the store's payloads carry no structural
// meaning — what matters is that they are real bytes, unique per block,
// and reproducible, which lets every read be verified (VerifyPayload)
// and turns any torn write, misdirected read, or stale block into a
// detected corruption instead of a silent one.
func FillPayload(id BlockID, buf []byte) {
	state := uint64(id) * 0x9E3779B97F4A7C15
	for i := 0; i+8 <= len(buf); i += 8 {
		state += 0x9E3779B97F4A7C15
		w := mix64(state)
		buf[i] = byte(w)
		buf[i+1] = byte(w >> 8)
		buf[i+2] = byte(w >> 16)
		buf[i+3] = byte(w >> 24)
		buf[i+4] = byte(w >> 32)
		buf[i+5] = byte(w >> 40)
		buf[i+6] = byte(w >> 48)
		buf[i+7] = byte(w >> 56)
	}
}

// VerifyPayload checks that buf holds exactly block id's canonical
// payload, returning a descriptive error at the first mismatching word.
func VerifyPayload(id BlockID, buf []byte) error {
	state := uint64(id) * 0x9E3779B97F4A7C15
	for i := 0; i+8 <= len(buf); i += 8 {
		state += 0x9E3779B97F4A7C15
		w := mix64(state)
		got := uint64(buf[i]) | uint64(buf[i+1])<<8 | uint64(buf[i+2])<<16 | uint64(buf[i+3])<<24 |
			uint64(buf[i+4])<<32 | uint64(buf[i+5])<<40 | uint64(buf[i+6])<<48 | uint64(buf[i+7])<<56
		if got != w {
			return fmt.Errorf("em: block %d payload corrupt at byte %d: got %#016x, want %#016x", id, i, got, w)
		}
	}
	return nil
}

// mix64 is SplitMix64's output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// MemStore is the in-memory BlockStore: a mutex-guarded map of block
// payloads. It is the reference implementation the disk store is
// oracle-diffed against (FuzzBlockStore) and the cheapest way to give a
// tracker content-bearing blocks in tests.
type MemStore struct {
	storeCounters
	payload int
	mu      sync.RWMutex
	blocks  map[BlockID][]byte
	closed  bool
}

// NewMemStore builds an in-memory store holding payloadBytes-byte
// blocks.
func NewMemStore(payloadBytes int) *MemStore {
	return &MemStore{payload: payloadBytes, blocks: make(map[BlockID][]byte)}
}

// PayloadBytes returns the fixed payload size.
func (m *MemStore) PayloadBytes() int { return m.payload }

// WriteBlock stores a copy of data as block id.
func (m *MemStore) WriteBlock(id BlockID, data []byte) error {
	if len(data) != m.payload {
		return fmt.Errorf("em/memstore: write of %d bytes to block %d, store holds %d-byte blocks", len(data), id, m.payload)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("em/memstore: write to block %d on a closed store", id)
	}
	b, ok := m.blocks[id]
	if !ok {
		b = make([]byte, m.payload)
		m.blocks[id] = b
	}
	copy(b, data)
	m.countWrite(len(data))
	return nil
}

// ReadBlock copies block id's payload into buf.
func (m *MemStore) ReadBlock(id BlockID, buf []byte) error {
	if len(buf) != m.payload {
		return fmt.Errorf("em/memstore: read of %d bytes from block %d, store holds %d-byte blocks", len(buf), id, m.payload)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return fmt.Errorf("em/memstore: read of block %d on a closed store", id)
	}
	b, ok := m.blocks[id]
	if !ok {
		return fmt.Errorf("em/memstore: read of block %d, which was never written or was freed", id)
	}
	copy(buf, b)
	m.countRead(len(buf))
	return nil
}

// ChargeReads counts n stand-in reads. Memory has no fixed region to
// move bytes from, so the charge is pure accounting at payload
// granularity — which keeps the fuzz oracle's counters comparable with
// the disk store's.
func (m *MemStore) ChargeReads(n int64) error {
	if n <= 0 {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return fmt.Errorf("em/memstore: charge read on a closed store")
	}
	m.reads.Add(n)
	m.bytesRead.Add(n * int64(m.payload))
	return nil
}

// Free drops block id.
func (m *MemStore) Free(id BlockID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("em/memstore: free of block %d on a closed store", id)
	}
	delete(m.blocks, id)
	m.frees.Add(1)
	return nil
}

// Sync is a no-op for memory.
func (m *MemStore) Sync() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return fmt.Errorf("em/memstore: sync on a closed store")
	}
	m.syncs.Add(1)
	return nil
}

// Close releases the store; every later operation errors.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("em/memstore: already closed")
	}
	m.closed = true
	m.blocks = nil
	return nil
}

// StoreStats returns the physical operation counters.
func (m *MemStore) StoreStats() StoreStats { return m.storeCounters.snapshot() }

// Len returns the number of live blocks (test observability).
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blocks)
}
