package em

import "testing"

// The TinyLFU admission tests drive the cache implementations directly
// through the blockCache interface: policy behavior is deterministic
// given an access sequence, so the scenarios below pin down the three
// properties the policy is for — scan resistance, frequency-ordered
// admission, and bounded (aging) frequency history.

// runHotScanWorkload warms a hot set of `hot` blocks, then interleaves
// one never-repeated scan block between consecutive hot touches, and
// returns the hot-touch hit rate during the interleaved phase.
func runHotScanWorkload(c blockCache, hot, steps int) float64 {
	// Warm-up: several rounds so the hot blocks both become resident and
	// accumulate sketch counts above any one-touch block's estimate.
	for round := 0; round < 4; round++ {
		for i := 0; i < hot; i++ {
			c.touch(BlockID(i + 1))
		}
	}
	scanID := BlockID(1 << 20)
	hits := 0
	for i := 0; i < steps; i++ {
		scanID++
		c.touch(scanID) // one-touch block, never seen again
		if c.touch(BlockID(i%hot + 1)) {
			hits++
		}
	}
	return float64(hits) / float64(steps)
}

// TestTinyLFUScanResistance is the policy's reason to exist: under a
// scan flood interleaved with a resident-sized hot set, plain LRU
// evicts each hot block before its next touch (hit rate collapses),
// while TinyLFU's admission filter keeps the hot set resident with a
// high hit-rate floor.
func TestTinyLFUScanResistance(t *testing.T) {
	const hot, steps = 32, 4096
	var lruCtr, lfuCtr cacheCounters
	lruRate := runHotScanWorkload(newLRUCache(hot, &lruCtr), hot, steps)
	lfuRate := runHotScanWorkload(newTinyLFUCache(hot, &lfuCtr), hot, steps)

	if lruRate > 0.10 {
		t.Fatalf("LRU hot hit rate %.3f under scan flood; the workload is not adversarial enough to mean anything", lruRate)
	}
	if lfuRate < 0.80 {
		t.Fatalf("TinyLFU hot hit rate %.3f under scan flood, want >= 0.80 (LRU managed %.3f)", lfuRate, lruRate)
	}
	if lfuRate <= lruRate {
		t.Fatalf("TinyLFU hit rate %.3f not above LRU's %.3f", lfuRate, lruRate)
	}

	// The policy counters must reflect what happened: the flood was
	// mostly rejected at admission, the sample period elapsed at least
	// once (steps >> 10*cap), and LRU — which has no admission filter or
	// sketch — reports rejects and resets of exactly zero.
	lfu, lru := lfuCtr.snapshot(), lruCtr.snapshot()
	if lfu.AdmissionRejects == 0 {
		t.Fatal("TinyLFU rejected nothing during a scan flood")
	}
	if lfu.SketchResets == 0 {
		t.Fatalf("TinyLFU never aged its sketch over %d touches at capacity %d", 2*steps, hot)
	}
	if lru.AdmissionRejects != 0 || lru.SketchResets != 0 {
		t.Fatalf("LRU reports policy decisions it cannot make: %+v", lru)
	}
	if lru.Evictions == 0 {
		t.Fatal("LRU evicted nothing under a working set twice its capacity")
	}
}

// TestTinyLFUAdmissionAndEvictionOrder walks the admission state
// machine one touch at a time on a capacity-4 cache: a cold candidate
// is rejected while its estimate is below the LRU victim's, each
// rejection counts, and the admission that finally lands evicts exactly
// the least-recently-used resident.
func TestTinyLFUAdmissionAndEvictionOrder(t *testing.T) {
	var ctr cacheCounters
	c := newTinyLFUCache(4, &ctr)

	// Residents 1..4, each touched twice: doorkeeper bit + one sketch
	// count gives every resident estimate 2. LRU order back-to-front is
	// 1, 2, 3, 4.
	for id := BlockID(1); id <= 4; id++ {
		if c.touch(id) {
			t.Fatalf("first touch of %d reported a hit", id)
		}
		if !c.touch(id) {
			t.Fatalf("second touch of %d reported a miss", id)
		}
	}

	// Candidate 5, touch 1: estimate 1 (doorkeeper only) vs victim's 2 —
	// rejected, block 1 stays resident.
	if c.touch(5) {
		t.Fatal("touch of absent block 5 reported a hit")
	}
	if got := ctr.snapshot(); got.AdmissionRejects != 1 || got.Evictions != 0 {
		t.Fatalf("after first rejected touch: %+v", got)
	}
	// Touch 2: estimate 2 (doorkeeper + sketch 1) — still not *strictly*
	// greater than the victim's 2, rejected again.
	c.touch(5)
	if got := ctr.snapshot(); got.AdmissionRejects != 2 || got.Evictions != 0 {
		t.Fatalf("after second rejected touch: %+v", got)
	}
	// Touch 3: estimate 3 beats 2 — admitted, evicting block 1 (the LRU
	// victim), not any hotter resident.
	c.touch(5)
	if got := ctr.snapshot(); got.AdmissionRejects != 2 || got.Evictions != 1 {
		t.Fatalf("after admission: %+v", got)
	}
	if c.len() != 4 {
		t.Fatalf("len() = %d after admission, want 4", c.len())
	}
	for _, id := range []BlockID{2, 3, 4, 5} {
		if !c.touch(id) {
			t.Fatalf("block %d missing after block 5's admission", id)
		}
	}
	if c.touch(1) {
		t.Fatal("block 1 still resident; admission evicted the wrong frame")
	}
}

// TestTinyLFUDoorkeeperReset pins the aging mechanics: reset clears the
// doorkeeper, halves every sketch estimate, counts itself, and fires on
// its own once the sample period (10x capacity touches) elapses.
func TestTinyLFUDoorkeeperReset(t *testing.T) {
	var ctr cacheCounters
	c := newTinyLFUCache(4, &ctr)

	for i := 0; i < 10; i++ {
		c.touch(7)
	}
	if !c.doorHas(7) {
		t.Fatal("doorkeeper lost block 7 after 10 touches")
	}
	before := c.estimate(7)
	if before < 5 {
		t.Fatalf("estimate(7) = %d after 10 touches, want >= 5", before)
	}

	c.reset()
	if got := ctr.snapshot().SketchResets; got != 1 {
		t.Fatalf("SketchResets = %d after explicit reset, want 1", got)
	}
	if c.doorHas(7) {
		t.Fatal("doorkeeper still set after reset")
	}
	// Halving drops the sketch component; the doorkeeper bonus is gone
	// until the next touch re-sets it.
	if after := c.estimate(7); after > before/2 {
		t.Fatalf("estimate(7) = %d after reset, want <= %d", after, before/2)
	}

	// Natural trigger: the sample period for capacity 4 is 40 touches.
	var ctr2 cacheCounters
	c2 := newTinyLFUCache(4, &ctr2)
	for i := 0; i < 40; i++ {
		c2.touch(BlockID(i%8 + 1))
	}
	if got := ctr2.snapshot().SketchResets; got != 1 {
		t.Fatalf("SketchResets = %d after one sample period, want 1", got)
	}

	// clear() empties frames and frequency state but is not an aging
	// reset: the counter must not move.
	c2.clear()
	if got := ctr2.snapshot().SketchResets; got != 1 {
		t.Fatalf("SketchResets = %d after clear, want still 1", got)
	}
	if c2.len() != 0 {
		t.Fatalf("len() = %d after clear", c2.len())
	}
	if c2.doorHas(1) {
		t.Fatal("doorkeeper survived clear")
	}
}

// TestTinyLFUEvictInvalidatesFrame checks the explicit-eviction path
// (Tracker.Free routes here): an evicted frame is gone, re-touching it
// is a miss, and evicting an absent block is a no-op.
func TestTinyLFUEvictInvalidatesFrame(t *testing.T) {
	var ctr cacheCounters
	c := newTinyLFUCache(4, &ctr)
	c.touch(1)
	c.touch(2)
	c.evict(1)
	if c.len() != 1 {
		t.Fatalf("len() = %d after evict, want 1", c.len())
	}
	if c.touch(1) {
		t.Fatal("evicted block 1 reported resident")
	}
	c.evict(99) // absent: no panic, no change
	if c.len() != 2 {
		t.Fatalf("len() = %d after no-op evict, want 2", c.len())
	}
}

// TestCacheStatsAggregation checks that a tracker and its query views
// report policy decisions into one shared counter set, and that the
// TinyLFU policy threads through Config untouched.
func TestCacheStatsAggregation(t *testing.T) {
	tr := NewTracker(Config{B: 4, MemBlocks: 2, Policy: PolicyTinyLFU})
	ids := make([]BlockID, 8)
	for i := range ids {
		ids[i] = tr.Alloc()
	}
	// Shared path: walk all 8 blocks through a 2-frame cache.
	for _, id := range ids {
		tr.Read(id)
	}
	shared := tr.CacheStats()
	if shared.Evictions+shared.AdmissionRejects == 0 {
		t.Fatalf("no policy decisions after 8 reads through 2 frames: %+v", shared)
	}
	// View path: the same walk inside a query view must land in the same
	// counters.
	v := tr.BeginQuery()
	for _, id := range ids {
		tr.Read(id)
	}
	v.End()
	after := tr.CacheStats()
	if after == shared {
		t.Fatalf("view-path touches left CacheStats unchanged: %+v", after)
	}
}
