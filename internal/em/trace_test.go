package em

import (
	"sync"
	"testing"
)

// recordingSink buffers everything it receives, concurrency-safely.
type recordingSink struct {
	mu     sync.Mutex
	events []TraceEvent
	traces [][]TraceEvent
	stats  []Stats
}

func (s *recordingSink) Event(ev TraceEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
}

func (s *recordingSink) QueryTrace(evs []TraceEvent, st Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]TraceEvent, len(evs))
	copy(cp, evs)
	s.traces = append(s.traces, cp)
	s.stats = append(s.stats, st)
}

func sumDepth0(evs []TraceEvent) (r, w, h int64) {
	for _, ev := range evs {
		if ev.Depth == 0 {
			r += ev.Reads
			w += ev.Writes
			h += ev.Hits
		}
	}
	return
}

func TestSpanInsideViewAttributesExactDeltas(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 2})
	ids := make([]BlockID, 8)
	for i := range ids {
		ids[i] = tr.Alloc()
	}
	sink := &recordingSink{}
	tr.SetTraceSink(sink)

	v := tr.BeginQuery()
	m := tr.BeginSpan()
	tr.Read(ids[0])
	tr.Read(ids[1])
	inner := tr.BeginSpan()
	tr.Read(ids[0]) // private-cache hit? cache holds ids[0], ids[1]; MemBlocks=2 -> hit
	tr.EndSpan(inner, "test.inner", 3, 7)
	tr.EndSpan(m, "test.outer", 0, 1)
	tr.Read(ids[2]) // outside any span -> residual
	st := v.End()

	evs := v.Trace()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3 (inner, outer, residual): %+v", len(evs), evs)
	}
	if evs[0].Phase != "test.inner" || evs[0].Depth != 1 || evs[0].Level != 3 || evs[0].Arg != 7 {
		t.Fatalf("inner event wrong: %+v", evs[0])
	}
	if evs[0].Hits != 1 || evs[0].Reads != 0 {
		t.Fatalf("inner deltas wrong: %+v", evs[0])
	}
	if evs[1].Phase != "test.outer" || evs[1].Depth != 0 || evs[1].Reads != 2 || evs[1].Hits != 1 {
		t.Fatalf("outer deltas wrong: %+v", evs[1])
	}
	if evs[2].Phase != PhaseUnattributed || evs[2].Reads != 1 {
		t.Fatalf("residual wrong: %+v", evs[2])
	}
	r, w, h := sumDepth0(evs)
	if r != st.Reads || w != st.Writes || h != st.Hits {
		t.Fatalf("depth-0 sums (%d,%d,%d) != stats (%d,%d,%d)", r, w, h, st.Reads, st.Writes, st.Hits)
	}
	if len(sink.traces) != 1 || len(sink.stats) != 1 {
		t.Fatalf("sink got %d traces, want 1", len(sink.traces))
	}
	if sink.stats[0] != st {
		t.Fatalf("sink stats %+v != view stats %+v", sink.stats[0], st)
	}
}

func TestSpanSharedPathDeliversImmediately(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	id := tr.Alloc()
	sink := &recordingSink{}
	tr.SetTraceSink(sink)

	m := tr.BeginSpan()
	tr.Write(id)
	tr.EndSpan(m, "test.build", -1, 42)

	if len(sink.events) != 1 {
		t.Fatalf("got %d shared events, want 1", len(sink.events))
	}
	ev := sink.events[0]
	if ev.Phase != "test.build" || ev.Writes != 1 || ev.Arg != 42 || ev.Depth != 0 {
		t.Fatalf("shared event wrong: %+v", ev)
	}
}

func TestTraceDisabledByDefaultAndRemovable(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	if tr.Tracing() {
		t.Fatal("tracing on with no sink installed")
	}
	id := tr.Alloc()
	v := tr.BeginQuery()
	m := tr.BeginSpan()
	tr.Read(id)
	tr.EndSpan(m, "test.off", 0, 0)
	v.End()
	if len(v.Trace()) != 0 {
		t.Fatalf("events recorded with tracing off: %+v", v.Trace())
	}

	sink := &recordingSink{}
	tr.SetTraceSink(sink)
	if !tr.Tracing() {
		t.Fatal("tracing off after SetTraceSink")
	}
	tr.SetTraceSink(nil)
	if tr.Tracing() {
		t.Fatal("tracing on after removal")
	}
}

func TestNilTrackerSpansNoop(t *testing.T) {
	var tr *Tracker
	m := tr.BeginSpan()
	if m.Active() {
		t.Fatal("nil tracker produced an active mark")
	}
	tr.EndSpan(m, "x", 0, 0) // must not panic
	if tr.Tracing() {
		t.Fatal("nil tracker reports tracing")
	}
}

// TestSpanOffPathZeroAlloc is the allocation half of the trace-overhead
// guard (the latency half is BenchmarkTraceOverhead in the root package):
// with no sink installed, a BeginSpan/EndSpan pair on the query path must
// not allocate at all.
func TestSpanOffPathZeroAlloc(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	id := tr.Alloc()
	allocs := testing.AllocsPerRun(1000, func() {
		m := tr.BeginSpan()
		tr.Read(id)
		tr.EndSpan(m, "test.hot", 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil-sink span path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestConcurrentViewTracesStayIsolated(t *testing.T) {
	tr := NewTracker(Config{B: 64, MemBlocks: 4})
	ids := make([]BlockID, 64)
	for i := range ids {
		ids[i] = tr.Alloc()
	}
	sink := &recordingSink{}
	tr.SetTraceSink(sink)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := tr.BeginQuery()
			m := tr.BeginSpan()
			for i := 0; i < 16; i++ {
				tr.Read(ids[(w*16+i)%len(ids)])
			}
			tr.EndSpan(m, "test.q", w, int64(w))
			st := v.End()
			r, wr, h := sumDepth0(v.Trace())
			if r != st.Reads || wr != st.Writes || h != st.Hits {
				t.Errorf("worker %d: depth-0 sums (%d,%d,%d) != stats %+v", w, r, wr, h, st)
			}
		}(w)
	}
	wg.Wait()
	if len(sink.traces) != workers {
		t.Fatalf("sink got %d query traces, want %d", len(sink.traces), workers)
	}
}
