package em

import (
	"errors"
	"testing"
	"time"
)

// capture runs f and returns the *AbortError it panics with (nil if it
// returns normally). Any other panic value is re-raised.
func capture(f func()) (abort *AbortError) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if abort, ok = r.(*AbortError); !ok {
				panic(r)
			}
		}
	}()
	f()
	return nil
}

func TestBudgetAbortsMidQuery(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	ids := make([]BlockID, 10)
	for i := range ids {
		ids[i] = tr.Alloc()
	}
	tr.ResetCounters()

	v := tr.BeginQuery()
	v.SetLimits(3, time.Time{})
	abort := capture(func() {
		for _, id := range ids {
			tr.Read(id)
		}
	})
	if abort == nil {
		t.Fatal("10 cold reads under a 3-I/O budget did not abort")
	}
	if abort.Reason != AbortBudget {
		t.Fatalf("abort reason = %v, want AbortBudget", abort.Reason)
	}
	if abort.Budget != 3 {
		t.Fatalf("abort.Budget = %d, want 3", abort.Budget)
	}
	if abort.IOs < 3 || abort.IOs > 4 {
		t.Fatalf("abort.IOs = %d, want the budget boundary (3..4)", abort.IOs)
	}
	// The view still ends cleanly and merges what was actually charged.
	st := v.End()
	if st.Reads != abort.IOs {
		t.Fatalf("view merged %d reads, abort reported %d", st.Reads, abort.IOs)
	}
}

func TestBudgetCountsWritesAndBulkReads(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	id := tr.Alloc()
	tr.ResetCounters()

	v := tr.BeginQuery()
	v.SetLimits(2, time.Time{})
	if ab := capture(func() { tr.Write(id) }); ab != nil {
		t.Fatalf("first write aborted under budget 2: %+v", ab)
	}
	if ab := capture(func() { tr.ScanCost(10 * tr.B()) }); ab == nil {
		t.Fatal("bulk scan past the budget did not abort")
	} else if ab.Reason != AbortBudget {
		t.Fatalf("abort reason = %v, want AbortBudget", ab.Reason)
	}
	v.End()
}

func TestExpiredDeadlineAbortsOnFirstCharge(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	id := tr.Alloc()
	tr.ResetCounters()

	v := tr.BeginQuery()
	v.SetLimits(0, time.Now().Add(-time.Second))
	abort := capture(func() { tr.Read(id) })
	if abort == nil {
		t.Fatal("charge against an expired deadline did not abort")
	}
	if abort.Reason != AbortDeadline {
		t.Fatalf("abort reason = %v, want AbortDeadline", abort.Reason)
	}
	v.End()
}

func TestGenerousLimitsNeverAbort(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	ids := make([]BlockID, 50)
	for i := range ids {
		ids[i] = tr.Alloc()
	}
	tr.ResetCounters()

	v := tr.BeginQuery()
	v.SetLimits(1_000_000, time.Now().Add(time.Hour))
	if ab := capture(func() {
		for _, id := range ids {
			tr.Read(id)
			tr.Read(id) // hits must not charge against the budget
		}
	}); ab != nil {
		t.Fatalf("generous limits aborted: %+v", ab)
	}
	st := v.End()
	if st.Reads != 50 || st.Hits != 50 {
		t.Fatalf("stats = %+v, want Reads=50 Hits=50", st)
	}
}

func TestUnlimitedViewIgnoresLimitsMachinery(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	ids := make([]BlockID, 100)
	for i := range ids {
		ids[i] = tr.Alloc()
	}
	tr.ResetCounters()

	v := tr.BeginQuery()
	if ab := capture(func() {
		for _, id := range ids {
			tr.Read(id)
		}
	}); ab != nil {
		t.Fatalf("unlimited view aborted: %+v", ab)
	}
	v.End()
}

func TestAbortErrorMessage(t *testing.T) {
	e := &AbortError{Reason: AbortBudget, IOs: 12, Budget: 10}
	if e.Error() == "" {
		t.Fatal("empty Error()")
	}
	var target *AbortError
	if !errors.As(error(e), &target) {
		t.Fatal("errors.As failed on *AbortError")
	}
	if AbortBudget.String() == AbortDeadline.String() {
		t.Fatal("abort reasons render identically")
	}
}
