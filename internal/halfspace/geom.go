// Package halfspace implements the building blocks of the paper's
// Theorem 3 (top-k halfspace reporting) and, via the lifting trick,
// Corollary 1 (circular reporting):
//
//   - d = 2: convex-layer halfplane reporting (the Chazelle–Guibas–Lee
//     technique the paper cites), a weight-layered prioritized structure,
//     and a max structure built from hull-extreme emptiness tests through
//     core.MaxFromEmptiness — the role of §5.4's planar-subdivision point
//     location.
//   - d ≥ 3: a kd-tree with bounding-box and max-weight pruning, standing
//     in for partition trees (Afshani–Chan / Agarwal et al.): linear
//     space and O(n^(1-1/d) + t)-type query — sublinear with a positive
//     exponent gap, which is the regime Theorem 1's "no slowdown" remark
//     needs. See DESIGN.md's substitution table.
//
// A predicate is a halfplane/halfspace {x : A·x ≥ C}; an element satisfies
// it when it lies inside.
package halfspace

import (
	"math"
	"sort"
)

// Pt2 is a point in ℝ².
type Pt2 struct {
	X, Y float64
}

// Dot returns a·x + b·y.
func (p Pt2) Dot(a, b float64) float64 { return a*p.X + b*p.Y }

// Halfplane is the predicate {(x, y) : A·x + B·y ≥ C}.
type Halfplane struct {
	A, B, C float64
}

// Contains reports whether p lies in the halfplane.
func (h Halfplane) Contains(p Pt2) bool { return p.Dot(h.A, h.B) >= h.C }

// Match is the predicate evaluator for the reductions.
func Match(q Halfplane, p Pt2) bool { return q.Contains(p) }

// Lambda is the polynomial-boundedness exponent for 2D halfplanes: every
// outcome q(D) is cut off by a line through at most two input points, so
// there are O(n²) outcomes.
const Lambda = 2

func cross(o, a, b Pt2) float64 {
	return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
}

// Hull is a convex hull split into its x-monotone lower and upper chains.
// Both chains run left to right and share their first and last vertices
// (for hulls with ≥ 2 distinct extreme-x points).
type Hull struct {
	Lower, Upper []Pt2
}

// BuildHull computes the convex hull of pts (Andrew's monotone chain).
// Collinear boundary points are KEPT: the convex-layers construction must
// peel every point on the hull boundary, not only the corners. pts is not
// modified.
func BuildHull(pts []Pt2) Hull {
	if len(pts) == 0 {
		return Hull{}
	}
	s := make([]Pt2, len(pts))
	copy(s, pts)
	sort.Slice(s, func(i, j int) bool {
		if s[i].X != s[j].X {
			return s[i].X < s[j].X
		}
		return s[i].Y < s[j].Y
	})
	// Deduplicate identical points.
	uniq := s[:0]
	for i, p := range s {
		if i == 0 || p != s[i-1] {
			uniq = append(uniq, p)
		}
	}
	s = uniq
	if len(s) == 1 {
		return Hull{Lower: []Pt2{s[0]}, Upper: []Pt2{s[0]}}
	}
	build := func(pts []Pt2) []Pt2 {
		var ch []Pt2
		for _, p := range pts {
			for len(ch) >= 2 && cross(ch[len(ch)-2], ch[len(ch)-1], p) < 0 {
				ch = ch[:len(ch)-1]
			}
			ch = append(ch, p)
		}
		return ch
	}
	lower := build(s)
	rev := make([]Pt2, len(s))
	for i, p := range s {
		rev[len(s)-1-i] = p
	}
	upperRev := build(rev) // right-to-left; reverse to run left-to-right
	upper := make([]Pt2, len(upperRev))
	for i, p := range upperRev {
		upper[len(upperRev)-1-i] = p
	}
	return Hull{Lower: lower, Upper: upper}
}

// Empty reports whether the hull has no vertices.
func (h Hull) Empty() bool { return len(h.Lower) == 0 }

// Vertices returns the hull boundary points counter-clockwise, each
// exactly once (degenerate collinear hulls would otherwise repeat interior
// points across the two chains).
func (h Hull) Vertices() []Pt2 {
	if h.Empty() {
		return nil
	}
	seen := make(map[Pt2]struct{}, len(h.Lower)+len(h.Upper))
	out := make([]Pt2, 0, len(h.Lower)+len(h.Upper))
	add := func(p Pt2) {
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	for _, p := range h.Lower {
		add(p)
	}
	// Upper chain right-to-left to continue counter-clockwise.
	for i := len(h.Upper) - 2; i >= 1; i-- {
		add(h.Upper[i])
	}
	return out
}

// ExtremeDot returns the maximum of a·x + b·y over the hull vertices and a
// vertex attaining it, in O(log h) time.
func (h Hull) ExtremeDot(a, b float64) (best float64, arg Pt2) {
	if h.Empty() {
		return math.Inf(-1), Pt2{}
	}
	// Direction pointing up → extreme on the upper chain, down → lower;
	// horizontal → at a shared chain endpoint, present in both chains.
	chain := h.Lower
	if b > 0 {
		chain = h.Upper
	}
	i := chainExtreme(chain, a, b)
	return chain[i].Dot(a, b), chain[i]
}

// chainExtreme binary-searches an x-monotone convex chain for the vertex
// maximizing the dot product with (a, b). The dot-product sequence along
// such a chain is unimodal.
func chainExtreme(chain []Pt2, a, b float64) int {
	lo, hi := 0, len(chain)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if chain[mid+1].Dot(a, b) > chain[mid].Dot(a, b) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if chain[hi].Dot(a, b) > chain[lo].Dot(a, b) {
		return hi
	}
	return lo
}

// NonEmpty reports whether any hull vertex (equivalently, any point of the
// underlying set) lies in q.
func (h Hull) NonEmpty(q Halfplane) bool {
	best, _ := h.ExtremeDot(q.A, q.B)
	return best >= q.C
}
