package halfspace

import (
	"fmt"
	"math"
	"sort"

	"topk/internal/core"
	"topk/internal/em"
)

// PtN is a point in ℝ^d for arbitrary fixed d.
type PtN struct {
	C []float64
}

// Dot returns the inner product with a (len(a) must equal the dimension).
func (p PtN) Dot(a []float64) float64 {
	s := 0.0
	for i, c := range p.C {
		s += a[i] * c
	}
	return s
}

// Halfspace is the predicate {x : A·x ≥ C} in ℝ^d.
type Halfspace struct {
	A []float64
	C float64
}

// Contains reports whether p lies in the halfspace.
func (h Halfspace) Contains(p PtN) bool { return p.Dot(h.A) >= h.C }

// ContainsPoint implements BoxQuery.
func (h Halfspace) ContainsPoint(c []float64) bool { return PtN{C: c}.Dot(h.A) >= h.C }

// ClassifyBox implements BoxQuery: the extrema of A·x over an axis box are
// attained at corners chosen coordinate-wise by the sign of A.
func (h Halfspace) ClassifyBox(lo, hi []float64) (inside, outside bool) {
	min, max := 0.0, 0.0
	for i, a := range h.A {
		p, q := a*lo[i], a*hi[i]
		if p > q {
			p, q = q, p
		}
		min += p
		max += q
	}
	return min >= h.C, max < h.C
}

// BoxQuery is a predicate region that can classify axis-aligned boxes,
// letting one kd-tree engine serve halfspaces, orthogonal ranges, and
// balls alike.
type BoxQuery interface {
	// ClassifyBox reports whether the box [lo, hi] lies fully inside the
	// region, or fully outside it (both false means it straddles the
	// boundary).
	ClassifyBox(lo, hi []float64) (inside, outside bool)
	// ContainsPoint reports whether a single point lies in the region.
	ContainsPoint(c []float64) bool
}

// MatchN is the predicate evaluator for the reductions.
func MatchN(q Halfspace, p PtN) bool { return q.Contains(p) }

// LambdaN returns the polynomial-boundedness exponent in dimension d:
// outcomes are cut off by hyperplanes through ≤ d input points, so there
// are O(n^d) of them.
func LambdaN(d int) float64 { return float64(d) }

// KDTree answers prioritized halfspace queries in ℝ^d with a kd-tree
// carrying bounding boxes and max-weight subtree augmentation. It stands
// in for the partition trees of Afshani–Chan / Agarwal et al. (see
// DESIGN.md): linear space, and a query term that grows as ~n^(1-1/d)
// (kd-tree crossing bound) plus output.
//
// KDTree implements core.Prioritized[Halfspace, PtN] and
// core.Max[Halfspace, PtN].
type KDTree struct {
	d       int
	n       int
	root    *kdnode
	tracker *em.Tracker
}

type kdnode struct {
	item        core.Item[PtN]
	dim         int
	lo, hi      []float64 // subtree bounding box
	maxW        float64
	size        int
	left, right *kdnode
}

// NewKDTree builds a kd-tree over items in dimension d. tracker may be
// nil.
func NewKDTree(items []core.Item[PtN], d int, tracker *em.Tracker) (*KDTree, error) {
	if d < 1 {
		return nil, fmt.Errorf("halfspace: dimension %d", d)
	}
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	for _, it := range items {
		if len(it.Value.C) != d {
			return nil, fmt.Errorf("halfspace: point with %d coordinates in dimension %d", len(it.Value.C), d)
		}
	}
	t := &KDTree{d: d, n: len(items), tracker: tracker}
	buf := make([]core.Item[PtN], len(items))
	copy(buf, items)
	t.root = t.build(buf, 0)
	if tracker != nil && len(items) > 0 {
		// One node per point: coordinates, weight, and a 2d-word box.
		tracker.AllocRun(int(em.BlocksFor(len(items), 3*d+4, tracker.B())))
	}
	return t, nil
}

func (t *KDTree) build(items []core.Item[PtN], depth int) *kdnode {
	if len(items) == 0 {
		return nil
	}
	dim := depth % t.d
	mid := len(items) / 2
	// Median split along dim (nth-element style partial sort).
	sort.Slice(items, func(i, j int) bool { return items[i].Value.C[dim] < items[j].Value.C[dim] })
	nd := &kdnode{
		item: items[mid],
		dim:  dim,
		lo:   make([]float64, t.d),
		hi:   make([]float64, t.d),
		size: len(items),
		maxW: math.Inf(-1),
	}
	for i := range nd.lo {
		nd.lo[i] = math.Inf(1)
		nd.hi[i] = math.Inf(-1)
	}
	for _, it := range items {
		if it.Weight > nd.maxW {
			nd.maxW = it.Weight
		}
		for i, c := range it.Value.C {
			if c < nd.lo[i] {
				nd.lo[i] = c
			}
			if c > nd.hi[i] {
				nd.hi[i] = c
			}
		}
	}
	nd.left = t.build(items[:mid], depth+1)
	nd.right = t.build(items[mid+1:], depth+1)
	return nd
}

// N returns the number of indexed points.
func (t *KDTree) N() int { return t.n }

// ReportAbove implements core.Prioritized[Halfspace, PtN].
func (t *KDTree) ReportAbove(q Halfspace, tau float64, emit func(core.Item[PtN]) bool) {
	t.ReportAboveBox(q, tau, emit)
}

// ReportAboveBox answers a prioritized query for any box-classifiable
// predicate region (halfspaces, orthogonal boxes, balls, ...).
func (t *KDTree) ReportAboveBox(q BoxQuery, tau float64, emit func(core.Item[PtN]) bool) {
	// visited is a per-query local so concurrent queries never share state.
	var visited int64
	emitted := 0
	defer func() {
		if t.tracker != nil {
			// Visits attributable to emission (fully-inside subtrees) are
			// paid by the packed output scan; the residual frontier pays
			// the tree-walk cost.
			search := int(visited) - 2*emitted
			if search < 0 {
				search = 0
			}
			t.tracker.PathCost(search)
			t.tracker.ScanCost(emitted)
		}
	}()
	wrapped := func(it core.Item[PtN]) bool {
		emitted++
		return emit(it)
	}
	t.report(t.root, q, tau, wrapped, &visited)
}

func (t *KDTree) report(nd *kdnode, q BoxQuery, tau float64, emit func(core.Item[PtN]) bool, visited *int64) bool {
	if nd == nil || nd.maxW < tau {
		return true
	}
	*visited++
	inside, outside := q.ClassifyBox(nd.lo, nd.hi)
	if outside {
		return true // box entirely outside
	}
	if inside {
		return t.reportSubtree(nd, tau, emit, visited) // box entirely inside
	}
	if nd.item.Weight >= tau && q.ContainsPoint(nd.item.Value.C) {
		if !emit(nd.item) {
			return false
		}
	}
	if !t.report(nd.left, q, tau, emit, visited) {
		return false
	}
	return t.report(nd.right, q, tau, emit, visited)
}

// reportSubtree emits everything with weight ≥ tau, geometry-free.
func (t *KDTree) reportSubtree(nd *kdnode, tau float64, emit func(core.Item[PtN]) bool, visited *int64) bool {
	if nd == nil || nd.maxW < tau {
		return true
	}
	*visited++
	if nd.item.Weight >= tau {
		if !emit(nd.item) {
			return false
		}
	}
	if !t.reportSubtree(nd.left, tau, emit, visited) {
		return false
	}
	return t.reportSubtree(nd.right, tau, emit, visited)
}

// MaxItem implements core.Max[Halfspace, PtN] by branch-and-bound on the
// max-weight augmentation.
func (t *KDTree) MaxItem(q Halfspace) (core.Item[PtN], bool) {
	return t.MaxItemBox(q)
}

// MaxItemBox answers a max query for any box-classifiable predicate.
func (t *KDTree) MaxItemBox(q BoxQuery) (core.Item[PtN], bool) {
	var visited int64
	best := core.Item[PtN]{Weight: math.Inf(-1)}
	found := false
	t.maxSearch(t.root, q, &best, &found, &visited)
	if t.tracker != nil {
		t.tracker.PathCost(int(visited))
	}
	return best, found
}

func (t *KDTree) maxSearch(nd *kdnode, q BoxQuery, best *core.Item[PtN], found *bool, visited *int64) {
	if nd == nil || nd.maxW <= best.Weight {
		return
	}
	*visited++
	inside, outside := q.ClassifyBox(nd.lo, nd.hi)
	if outside {
		return
	}
	if inside {
		// Entire box inside: the subtree's max-weight item wins.
		it := t.findMaxW(nd, visited)
		if it.Weight > best.Weight {
			*best, *found = it, true
		}
		return
	}
	if q.ContainsPoint(nd.item.Value.C) && nd.item.Weight > best.Weight {
		*best, *found = nd.item, true
	}
	// Descend the heavier side first for stronger pruning.
	a, b := nd.left, nd.right
	if b != nil && (a == nil || b.maxW > a.maxW) {
		a, b = b, a
	}
	t.maxSearch(a, q, best, found, visited)
	t.maxSearch(b, q, best, found, visited)
}

func (t *KDTree) findMaxW(nd *kdnode, visited *int64) core.Item[PtN] {
	for {
		*visited++
		if nd.item.Weight == nd.maxW {
			return nd.item
		}
		if nd.left != nil && nd.left.maxW == nd.maxW {
			nd = nd.left
			continue
		}
		nd = nd.right
	}
}

// NewKDPrioritizedFactory adapts the constructor to the reduction factory
// signature for dimension d.
func NewKDPrioritizedFactory(d int, tracker *em.Tracker) core.PrioritizedFactory[Halfspace, PtN] {
	return func(items []core.Item[PtN]) core.Prioritized[Halfspace, PtN] {
		s, err := NewKDTree(items, d, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}

// NewKDMaxFactory adapts the kd max path to the reduction factory
// signature for dimension d.
func NewKDMaxFactory(d int, tracker *em.Tracker) core.MaxFactory[Halfspace, PtN] {
	return func(items []core.Item[PtN]) core.Max[Halfspace, PtN] {
		s, err := NewKDTree(items, d, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}
