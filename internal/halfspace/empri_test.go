package halfspace

import (
	"math"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/wrand"
)

func TestEMPrioritizedAgainstOracle(t *testing.T) {
	g := wrand.New(61)
	for _, d := range []int{2, 4} {
		items := genPointsN(g, 1200, d)
		e, err := NewEMPrioritized(items, d, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.N() != 1200 {
			t.Fatalf("N = %d", e.N())
		}
		for trial := 0; trial < 80; trial++ {
			q := randHalfspace(g, d)
			tau := g.Float64() * 1.2e6
			var got []core.Item[PtN]
			e.ReportAbove(q, tau, func(it core.Item[PtN]) bool {
				got = append(got, it)
				return true
			})
			core.SortByWeightDesc(got)
			want := oracleAboveN(items, q, tau)
			if len(got) != len(want) {
				t.Fatalf("d=%d q(τ=%v): got %d, want %d", d, tau, len(got), len(want))
			}
			for i := range got {
				if got[i].Weight != want[i].Weight {
					t.Fatalf("d=%d: item %d = %v, want %v", d, i, got[i].Weight, want[i].Weight)
				}
			}
		}
	}
}

func TestEMPrioritizedTauBoundaries(t *testing.T) {
	g := wrand.New(62)
	items := genPointsN(g, 300, 3)
	e, err := NewEMPrioritized(items, 3, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	all := Halfspace{A: []float64{1, 0, 0}, C: math.Inf(-1)}

	count := 0
	e.ReportAbove(all, math.Inf(-1), func(core.Item[PtN]) bool { count++; return true })
	if count != len(items) {
		t.Fatalf("τ=-inf reported %d, want all %d", count, len(items))
	}
	sorted := append([]core.Item[PtN](nil), items...)
	core.SortByWeightDesc(sorted)
	count = 0
	e.ReportAbove(all, sorted[7].Weight, func(core.Item[PtN]) bool { count++; return true })
	if count != 8 {
		t.Fatalf("τ at rank-8 weight reported %d, want 8", count)
	}
	count = 0
	e.ReportAbove(all, math.Inf(1), func(core.Item[PtN]) bool { count++; return true })
	if count != 0 {
		t.Fatalf("τ=+inf reported %d", count)
	}
}

func TestEMPrioritizedShape(t *testing.T) {
	// §5.5: fanout f = (n/B)^(ε/2) gives O(1) levels (≈ 2/ε + leaf).
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 8})
	g := wrand.New(63)
	items := genPointsN(g, 1<<14, 4)
	e, err := NewEMPrioritized(items, 4, 0.5, tr)
	if err != nil {
		t.Fatal(err)
	}
	if e.Fanout() < 2 {
		t.Fatalf("fanout = %d", e.Fanout())
	}
	if lv := e.Levels(); lv > 8 {
		t.Fatalf("tree has %d levels; §5.5 promises O(1) (≈ 2/ε + 1)", lv)
	}
	// Early termination still works through the canonical decomposition.
	count := 0
	e.ReportAbove(Halfspace{A: []float64{1, 0, 0, 0}, C: math.Inf(-1)}, math.Inf(-1),
		func(core.Item[PtN]) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestEMPrioritizedValidation(t *testing.T) {
	g := wrand.New(64)
	items := genPointsN(g, 50, 3)
	if _, err := NewEMPrioritized(items, 3, 0, nil); err == nil {
		t.Error("ε = 0 accepted")
	}
	if _, err := NewEMPrioritized(items, 3, 1.5, nil); err == nil {
		t.Error("ε > 1 accepted")
	}
	if _, err := NewEMPrioritized(items, 2, 0.5, nil); err == nil {
		t.Error("dimension mismatch accepted")
	}
	empty, err := NewEMPrioritized(nil, 3, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	empty.ReportAbove(Halfspace{A: []float64{1, 0, 0}, C: 0}, 0, func(core.Item[PtN]) bool {
		count++
		return true
	})
	if count != 0 {
		t.Error("empty structure reported items")
	}
}

func TestEMPrioritizedThroughTheorem1(t *testing.T) {
	// The §5.5 structure is exactly what Theorem 3's third bullet plugs
	// into Theorem 1; run the full pipeline.
	g := wrand.New(65)
	const d = 4
	items := genPointsN(g, 2000, d)
	wc, err := core.NewWorstCase(items, MatchN,
		NewEMPrioritizedFactory(d, 0.5, nil),
		core.WorstCaseOptions{B: 8, Lambda: LambdaN(d), Seed: 3, FScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		q := randHalfspace(g, d)
		want := oracleAboveN(items, q, math.Inf(-1))
		k := 12
		if k > len(want) {
			k = len(want)
		}
		got := wc.TopK(q, 12)
		if len(got) != k {
			t.Fatalf("%d results, want %d", len(got), k)
		}
		for i := range got {
			if got[i].Weight != want[i].Weight {
				t.Fatalf("result %d = %v, want %v", i, got[i].Weight, want[i].Weight)
			}
		}
	}
}
