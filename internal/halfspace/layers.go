package halfspace

import (
	"fmt"
	"math"

	"topk/internal/core"
	"topk/internal/em"
)

// Reporter answers (unweighted-style) halfplane reporting over a fixed 2D
// point set using convex layers, the Chazelle–Guibas–Lee technique the
// paper builds on in Section 5.4: peel the hull repeatedly; to answer a
// query, report the boundary arc inside the halfplane layer by layer, and
// stop at the first layer whose extreme vertex falls outside (every deeper
// layer is nested inside it, so nothing further qualifies).
//
// Query cost is O((1 + ℓ)·log n + t) where ℓ ≤ t+1 is the number of layers
// touched (the paper reaches O(log n + t) with fractional cascading across
// layers; see DESIGN.md's substitution table).
type Reporter struct {
	layers  []rlayer
	n       int
	tracker *em.Tracker
}

type rlayer struct {
	hull    Hull
	verts   []Pt2
	itemsAt [][]core.Item[Pt2] // aligned with verts; >1 entry on coordinate ties
	vertIdx map[Pt2]int
}

// NewReporter peels items into convex layers. tracker may be nil.
func NewReporter(items []core.Item[Pt2], tracker *em.Tracker) *Reporter {
	r := &Reporter{n: len(items), tracker: tracker}
	if tracker != nil && len(items) > 0 {
		tracker.AllocRun(int(em.BlocksFor(len(items), 3, tracker.B())))
	}
	remaining := append([]core.Item[Pt2](nil), items...)
	for len(remaining) > 0 {
		pts := make([]Pt2, len(remaining))
		for i, it := range remaining {
			pts[i] = it.Value
		}
		hull := BuildHull(pts)
		verts := hull.Vertices()
		idx := make(map[Pt2]int, len(verts))
		for i, v := range verts {
			idx[v] = i
		}
		l := rlayer{
			hull:    hull,
			verts:   verts,
			itemsAt: make([][]core.Item[Pt2], len(verts)),
			vertIdx: idx,
		}
		var rest []core.Item[Pt2]
		for _, it := range remaining {
			if i, on := idx[it.Value]; on {
				l.itemsAt[i] = append(l.itemsAt[i], it)
			} else {
				rest = append(rest, it)
			}
		}
		if len(rest) == len(remaining) {
			// Cannot happen for a correct hull; guard against looping.
			panic(fmt.Sprintf("halfspace: layer peeled no points (%d remaining)", len(remaining)))
		}
		r.layers = append(r.layers, l)
		remaining = rest
	}
	return r
}

// N returns the number of indexed points.
func (r *Reporter) N() int { return r.n }

// Layers returns the number of convex layers.
func (r *Reporter) Layers() int { return len(r.layers) }

// NonEmpty reports whether any point lies in q (an O(log n) hull-extreme
// test on the outermost layer).
func (r *Reporter) NonEmpty(q Halfplane) bool {
	if len(r.layers) == 0 {
		return false
	}
	if r.tracker != nil {
		r.tracker.PathCost(log2ceil(len(r.layers[0].verts)) + 1)
	}
	return r.layers[0].hull.NonEmpty(q)
}

// Report emits every item inside q, stopping early if emit returns false.
func (r *Reporter) Report(q Halfplane, emit func(core.Item[Pt2]) bool) {
	touched, emitted := 0, 0
	defer func() {
		if r.tracker != nil {
			r.tracker.PathCost((touched + 1) * (log2ceil(r.n+1) + 1))
			r.tracker.ScanCost(emitted)
		}
	}()
	for li := range r.layers {
		l := &r.layers[li]
		touched++
		best, arg := l.hull.ExtremeDot(q.A, q.B)
		if best < q.C {
			return // deeper layers are nested inside this hull
		}
		idx := l.vertIdx[arg]
		m := len(l.verts)
		emitVert := func(i int) bool {
			for _, it := range l.itemsAt[i] {
				emitted++
				if !emit(it) {
					return false
				}
			}
			return true
		}
		// The in-halfplane vertices form one contiguous cyclic arc
		// containing the extreme; walk it in both directions.
		steps := 0
		for i := idx; steps < m && q.Contains(l.verts[i]); i = (i + 1) % m {
			if !emitVert(i) {
				return
			}
			steps++
		}
		if steps < m {
			for i := (idx - 1 + m) % m; steps < m && q.Contains(l.verts[i]); i = (i - 1 + m) % m {
				if !emitVert(i) {
					return
				}
				steps++
			}
		}
	}
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// hullEmptiness adapts a hull to core.Emptiness for MaxFromEmptiness.
type hullEmptiness struct {
	hull Hull
}

func (h hullEmptiness) NonEmpty(q Halfplane) bool { return h.hull.NonEmpty(q) }

// NewEmptinessFactory builds hull-based emptiness structures (O(m log m)
// build, O(log m) query, O(m) space).
func NewEmptinessFactory(tracker *em.Tracker) core.EmptinessFactory[Halfplane, Pt2] {
	return func(items []core.Item[Pt2]) core.Emptiness[Halfplane] {
		pts := make([]Pt2, len(items))
		for i, it := range items {
			pts[i] = it.Value
		}
		h := BuildHull(pts)
		if tracker != nil {
			if m := len(h.Lower) + len(h.Upper); m > 0 {
				tracker.AllocRun(int(em.BlocksFor(m, 2, tracker.B())))
			}
		}
		return hullEmptiness{hull: h}
	}
}

// NewMax builds the 2D halfplane max structure: the emptiness-hierarchy
// combinator over convex hulls — the role of §5.4's incremental planar
// subdivision plus point location, at O(log² n) query.
func NewMax(items []core.Item[Pt2], tracker *em.Tracker) (*core.MaxFromEmptiness[Halfplane, Pt2], error) {
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	return core.NewMaxFromEmptiness(items, NewEmptinessFactory(tracker), tracker), nil
}

// Prioritized answers prioritized 2D halfplane queries: a binary prefix
// tree over the weight-descending order (the role of §5.4's BBST over
// weights), with a convex-layer Reporter at every canonical node.
// O(n log n) space, O(log² n + … ) query.
type Prioritized struct {
	tracker *em.Tracker
	byW     []core.Item[Pt2]
	root    *pnode
}

type pnode struct {
	items       []core.Item[Pt2]
	rep         *Reporter // nil for leaves
	left, right *pnode
}

const leafCut = 16

// NewPrioritized builds the structure; tracker may be nil.
func NewPrioritized(items []core.Item[Pt2], tracker *em.Tracker) (*Prioritized, error) {
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	byW := make([]core.Item[Pt2], len(items))
	copy(byW, items)
	core.SortByWeightDesc(byW)
	p := &Prioritized{tracker: tracker, byW: byW}
	p.root = p.build(byW)
	return p, nil
}

func (p *Prioritized) build(items []core.Item[Pt2]) *pnode {
	if len(items) == 0 {
		return nil
	}
	nd := &pnode{items: items}
	if len(items) <= leafCut {
		return nd
	}
	nd.rep = NewReporter(items, p.tracker)
	mid := len(items) / 2
	nd.left = p.build(items[:mid])
	nd.right = p.build(items[mid:])
	return nd
}

// N returns the number of indexed points.
func (p *Prioritized) N() int { return len(p.byW) }

// ReportAbove implements core.Prioritized[Halfplane, Pt2].
func (p *Prioritized) ReportAbove(q Halfplane, tau float64, emit func(core.Item[Pt2]) bool) {
	// {w ≥ τ} is a prefix of byW; cover it with canonical nodes.
	lo, hi := 0, len(p.byW)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.byW[mid].Weight < tau {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if p.tracker != nil {
		p.tracker.PathCost(log2ceil(len(p.byW)+1) + 1)
	}
	p.query(p.root, lo, q, emit)
}

func (p *Prioritized) query(nd *pnode, cnt int, q Halfplane, emit func(core.Item[Pt2]) bool) bool {
	if nd == nil || cnt <= 0 {
		return true
	}
	if nd.rep == nil { // leaf: partial scan
		if p.tracker != nil {
			p.tracker.ScanCost(min(cnt, len(nd.items)))
		}
		for _, it := range nd.items[:min(cnt, len(nd.items))] {
			if q.Contains(it.Value) {
				if !emit(it) {
					return false
				}
			}
		}
		return true
	}
	if cnt >= len(nd.items) {
		stopped := false
		nd.rep.Report(q, func(it core.Item[Pt2]) bool {
			if !emit(it) {
				stopped = true
				return false
			}
			return true
		})
		return !stopped
	}
	lsize := len(nd.left.items)
	if cnt <= lsize {
		return p.query(nd.left, cnt, q, emit)
	}
	if !p.query(nd.left, lsize, q, emit) {
		return false
	}
	return p.query(nd.right, cnt-lsize, q, emit)
}

// MaxItem also lets Prioritized serve as a (slower) max structure in
// tests: the heaviest point in q via a canonical descent.
func (p *Prioritized) MaxItem(q Halfplane) (core.Item[Pt2], bool) {
	best := core.Item[Pt2]{Weight: math.Inf(-1)}
	found := false
	p.query(p.root, len(p.byW), q, func(it core.Item[Pt2]) bool {
		if it.Weight > best.Weight {
			best, found = it, true
		}
		return true
	})
	return best, found
}

// NewPrioritizedFactory adapts the constructor to the reduction factory
// signature; build errors panic (subsets of validated inputs).
func NewPrioritizedFactory(tracker *em.Tracker) core.PrioritizedFactory[Halfplane, Pt2] {
	return func(items []core.Item[Pt2]) core.Prioritized[Halfplane, Pt2] {
		s, err := NewPrioritized(items, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}

// NewMaxFactory adapts NewMax to the reduction factory signature.
func NewMaxFactory(tracker *em.Tracker) core.MaxFactory[Halfplane, Pt2] {
	return func(items []core.Item[Pt2]) core.Max[Halfplane, Pt2] {
		s, err := NewMax(items, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}
