package halfspace

import (
	"fmt"
	"math"

	"topk/internal/core"
	"topk/internal/em"
)

// EMPrioritized is the paper's Section 5.5 external-memory construction
// for prioritized halfspace reporting in d ≥ 4, implemented verbatim:
//
//   - sort the points by weight (descending here, so {w ≥ τ} is a prefix);
//   - build a B-tree over the weights with leaf capacity B and internal
//     fanout f = (n/B)^(ε/2) — the tree then has O(1) levels;
//   - attach a halfspace reporting structure (our kd-tree standing in for
//     Agarwal et al. [6]) to every node's subtree.
//
// A query collects the canonical set U(τ): the O(f) maximal nodes per
// level (O(1) levels) whose subtrees lie entirely inside the weight
// prefix, queries each node's structure with the halfspace, and scans the
// straddling leaf. Total: O(f · (n/B)^(1-1/⌊d/2⌋+ε/2) + t/B) =
// O((n/B)^(1-1/⌊d/2⌋+ε) + t/B) I/Os, the bound of Theorem 3's third
// bullet's ingredient.
type EMPrioritized struct {
	d       int
	eps     float64
	fanout  int
	byW     []core.Item[PtN] // weight-descending
	root    *emNode
	tracker *em.Tracker
}

type emNode struct {
	lo, hi   int // subtree covers byW[lo:hi]
	str      *KDTree
	children []*emNode // nil for leaves
}

// NewEMPrioritized builds the §5.5 structure with parameter ε ∈ (0, 1].
func NewEMPrioritized(items []core.Item[PtN], d int, eps float64, tracker *em.Tracker) (*EMPrioritized, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("halfspace: ε = %v, need (0, 1]", eps)
	}
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	for _, it := range items {
		if len(it.Value.C) != d {
			return nil, fmt.Errorf("halfspace: point with %d coordinates in dimension %d", len(it.Value.C), d)
		}
	}
	b := 64
	if tracker != nil {
		b = tracker.B()
	}
	byW := make([]core.Item[PtN], len(items))
	copy(byW, items)
	core.SortByWeightDesc(byW)

	f := int(math.Ceil(math.Pow(float64(max(1, len(items)))/float64(b), eps/2)))
	if f < 2 {
		f = 2
	}
	e := &EMPrioritized{d: d, eps: eps, fanout: f, byW: byW, tracker: tracker}
	if len(byW) > 0 {
		root, err := e.build(0, len(byW), b)
		if err != nil {
			return nil, err
		}
		e.root = root
	}
	return e, nil
}

func (e *EMPrioritized) build(lo, hi, b int) (*emNode, error) {
	str, err := NewKDTree(e.byW[lo:hi], e.d, e.tracker)
	if err != nil {
		return nil, err
	}
	nd := &emNode{lo: lo, hi: hi, str: str}
	if hi-lo <= b {
		return nd, nil // leaf
	}
	// Split into `fanout` weight-contiguous children (at least leaf-sized).
	per := (hi - lo + e.fanout - 1) / e.fanout
	if per < b {
		per = b
	}
	for s := lo; s < hi; s += per {
		t := s + per
		if t > hi {
			t = hi
		}
		child, err := e.build(s, t, b)
		if err != nil {
			return nil, err
		}
		nd.children = append(nd.children, child)
	}
	return nd, nil
}

// N returns the number of indexed points.
func (e *EMPrioritized) N() int { return len(e.byW) }

// Fanout returns the tree fanout f = (n/B)^(ε/2).
func (e *EMPrioritized) Fanout() int { return e.fanout }

// Levels returns the tree depth (O(1) by construction).
func (e *EMPrioritized) Levels() int {
	l, nd := 0, e.root
	for nd != nil {
		l++
		if len(nd.children) == 0 {
			break
		}
		nd = nd.children[0]
	}
	return l
}

// ReportAbove implements core.Prioritized[Halfspace, PtN].
func (e *EMPrioritized) ReportAbove(q Halfspace, tau float64, emit func(core.Item[PtN]) bool) {
	if e.root == nil {
		return
	}
	// cnt = |{w ≥ τ}|: first index with weight < τ in the descending order.
	lo, hi := 0, len(e.byW)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.byW[mid].Weight < tau {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if e.tracker != nil {
		e.tracker.PathCost(log2c(len(e.byW) + 1))
	}
	e.query(e.root, lo, q, tau, emit)
}

// query covers byW[:cnt] with canonical nodes; fully covered nodes use
// their halfspace structure, the straddling path recurses, straddling
// leaves scan.
func (e *EMPrioritized) query(nd *emNode, cnt int, q Halfspace, tau float64, emit func(core.Item[PtN]) bool) bool {
	if nd == nil || cnt <= nd.lo {
		return true
	}
	if cnt >= nd.hi {
		// Entirely inside the prefix: report by geometry only.
		stopped := false
		nd.str.ReportAbove(q, math.Inf(-1), func(it core.Item[PtN]) bool {
			if !emit(it) {
				stopped = true
				return false
			}
			return true
		})
		return !stopped
	}
	if len(nd.children) == 0 {
		// Straddling leaf: scan its ≤ B points.
		if e.tracker != nil {
			e.tracker.ScanCost(cnt - nd.lo)
		}
		for _, it := range e.byW[nd.lo:cnt] {
			if q.Contains(it.Value) {
				if !emit(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range nd.children {
		if !e.query(c, cnt, q, tau, emit) {
			return false
		}
		if cnt < c.hi {
			break // later siblings are entirely past the prefix
		}
	}
	return true
}

// NewEMPrioritizedFactory adapts the constructor to the reduction factory
// signature for dimension d and parameter ε.
func NewEMPrioritizedFactory(d int, eps float64, tracker *em.Tracker) core.PrioritizedFactory[Halfspace, PtN] {
	return func(items []core.Item[PtN]) core.Prioritized[Halfspace, PtN] {
		s, err := NewEMPrioritized(items, d, eps, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}

func log2c(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}
