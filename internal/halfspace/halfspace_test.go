package halfspace

import (
	"math"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/wrand"
)

func genPoints2(g *wrand.RNG, n int) []core.Item[Pt2] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]core.Item[Pt2], n)
	for i := range items {
		items[i] = core.Item[Pt2]{
			Value:  Pt2{X: g.NormFloat64() * 10, Y: g.NormFloat64() * 10},
			Weight: ws[i],
		}
	}
	return items
}

func randHalfplane(g *wrand.RNG) Halfplane {
	theta := g.Float64() * 2 * math.Pi
	a, b := math.Cos(theta), math.Sin(theta)
	c := g.NormFloat64() * 8
	return Halfplane{A: a, B: b, C: c}
}

func oracleAbove2(items []core.Item[Pt2], q Halfplane, tau float64) []core.Item[Pt2] {
	var out []core.Item[Pt2]
	for _, it := range items {
		if it.Weight >= tau && q.Contains(it.Value) {
			out = append(out, it)
		}
	}
	core.SortByWeightDesc(out)
	return out
}

func TestHullExtremeAgainstScan(t *testing.T) {
	g := wrand.New(1)
	for trial := 0; trial < 50; trial++ {
		n := 3 + g.IntN(500)
		pts := make([]Pt2, n)
		for i := range pts {
			pts[i] = Pt2{g.NormFloat64() * 5, g.NormFloat64() * 5}
		}
		h := BuildHull(pts)
		for probe := 0; probe < 20; probe++ {
			theta := g.Float64() * 2 * math.Pi
			a, b := math.Cos(theta), math.Sin(theta)
			got, _ := h.ExtremeDot(a, b)
			want := math.Inf(-1)
			for _, p := range pts {
				if d := p.Dot(a, b); d > want {
					want = d
				}
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: ExtremeDot(%v,%v) = %v, want %v", trial, a, b, got, want)
			}
		}
	}
}

func TestHullDegenerate(t *testing.T) {
	if !BuildHull(nil).Empty() {
		t.Fatal("empty hull not empty")
	}
	h := BuildHull([]Pt2{{1, 2}})
	if got, _ := h.ExtremeDot(1, 0); got != 1 {
		t.Fatalf("singleton extreme = %v", got)
	}
	// Collinear points: all must be hull boundary vertices.
	col := []Pt2{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	h = BuildHull(col)
	if len(h.Vertices()) != 4 {
		t.Fatalf("collinear hull kept %d of 4 boundary points", len(h.Vertices()))
	}
	// Duplicates collapse.
	h = BuildHull([]Pt2{{1, 1}, {1, 1}, {2, 2}})
	if len(h.Vertices()) != 2 {
		t.Fatalf("duplicate points not collapsed: %d vertices", len(h.Vertices()))
	}
}

func TestReporterAgainstOracle(t *testing.T) {
	g := wrand.New(2)
	items := genPoints2(g, 1000)
	r := NewReporter(items, nil)
	if r.N() != 1000 || r.Layers() == 0 {
		t.Fatalf("N=%d layers=%d", r.N(), r.Layers())
	}
	for trial := 0; trial < 200; trial++ {
		q := randHalfplane(g)
		var got []core.Item[Pt2]
		r.Report(q, func(it core.Item[Pt2]) bool {
			got = append(got, it)
			return true
		})
		core.SortByWeightDesc(got)
		want := oracleAbove2(items, q, math.Inf(-1))
		if len(got) != len(want) {
			t.Fatalf("q=%+v: got %d, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Weight != want[i].Weight {
				t.Fatalf("q=%+v: item %d = %v, want %v", q, i, got[i].Weight, want[i].Weight)
			}
		}
		if r.NonEmpty(q) != (len(want) > 0) {
			t.Fatalf("q=%+v: NonEmpty=%v but %d results", q, r.NonEmpty(q), len(want))
		}
	}
}

func TestReporterEarlyStop(t *testing.T) {
	g := wrand.New(3)
	items := genPoints2(g, 300)
	r := NewReporter(items, nil)
	count := 0
	r.Report(Halfplane{A: 1, B: 0, C: math.Inf(-1)}, func(core.Item[Pt2]) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestReporterDuplicateCoordinates(t *testing.T) {
	// Two items at the same point must both be reported.
	items := []core.Item[Pt2]{
		{Value: Pt2{1, 1}, Weight: 10},
		{Value: Pt2{1, 1}, Weight: 20},
		{Value: Pt2{5, 5}, Weight: 30},
	}
	r := NewReporter(items, nil)
	count := 0
	r.Report(Halfplane{A: 1, B: 0, C: 0}, func(core.Item[Pt2]) bool {
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("reported %d of 3 items with duplicate coordinates", count)
	}
}

func TestMaxAgainstOracle2D(t *testing.T) {
	g := wrand.New(4)
	items := genPoints2(g, 600)
	m, err := NewMax(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		q := randHalfplane(g)
		got, gok := m.MaxItem(q)
		want := oracleAbove2(items, q, math.Inf(-1))
		if len(want) == 0 {
			if gok {
				t.Fatalf("q=%+v: found %v in empty halfplane", q, got.Weight)
			}
			continue
		}
		if !gok || got.Weight != want[0].Weight {
			t.Fatalf("q=%+v: max (%v,%v), want %v", q, got.Weight, gok, want[0].Weight)
		}
	}
}

func TestPrioritized2DAgainstOracle(t *testing.T) {
	g := wrand.New(5)
	items := genPoints2(g, 800)
	p, err := NewPrioritized(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 150; trial++ {
		q := randHalfplane(g)
		tau := g.Float64() * 1.2e6
		var got []core.Item[Pt2]
		p.ReportAbove(q, tau, func(it core.Item[Pt2]) bool {
			got = append(got, it)
			return true
		})
		core.SortByWeightDesc(got)
		want := oracleAbove2(items, q, tau)
		if len(got) != len(want) {
			t.Fatalf("q=%+v tau=%v: got %d, want %d", q, tau, len(got), len(want))
		}
		for i := range got {
			if got[i].Weight != want[i].Weight {
				t.Fatalf("item %d = %v, want %v", i, got[i].Weight, want[i].Weight)
			}
		}
	}
	// Weight exactly at τ is included (≥ semantics).
	sorted := append([]core.Item[Pt2](nil), items...)
	core.SortByWeightDesc(sorted)
	all := Halfplane{A: 1, B: 0, C: math.Inf(-1)}
	count := 0
	p.ReportAbove(all, sorted[5].Weight, func(core.Item[Pt2]) bool { count++; return true })
	if count != 6 {
		t.Fatalf("tau at rank-6 weight reported %d, want 6", count)
	}
}

func TestPrioritized2DRejectsDuplicates(t *testing.T) {
	items := []core.Item[Pt2]{{Value: Pt2{1, 1}, Weight: 5}, {Value: Pt2{2, 2}, Weight: 5}}
	if _, err := NewPrioritized(items, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
	if _, err := NewMax(items, nil); err == nil {
		t.Fatal("duplicate weights accepted by NewMax")
	}
}

func genPointsN(g *wrand.RNG, n, d int) []core.Item[PtN] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]core.Item[PtN], n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = g.NormFloat64() * 10
		}
		items[i] = core.Item[PtN]{Value: PtN{C: c}, Weight: ws[i]}
	}
	return items
}

func randHalfspace(g *wrand.RNG, d int) Halfspace {
	a := make([]float64, d)
	norm := 0.0
	for i := range a {
		a[i] = g.NormFloat64()
		norm += a[i] * a[i]
	}
	norm = math.Sqrt(norm)
	for i := range a {
		a[i] /= norm
	}
	return Halfspace{A: a, C: g.NormFloat64() * 10}
}

func oracleAboveN(items []core.Item[PtN], q Halfspace, tau float64) []core.Item[PtN] {
	var out []core.Item[PtN]
	for _, it := range items {
		if it.Weight >= tau && q.Contains(it.Value) {
			out = append(out, it)
		}
	}
	core.SortByWeightDesc(out)
	return out
}

func TestKDTreeAgainstOracle(t *testing.T) {
	g := wrand.New(6)
	for _, d := range []int{2, 4, 5} {
		items := genPointsN(g, 800, d)
		kd, err := NewKDTree(items, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if kd.N() != 800 {
			t.Fatalf("N = %d", kd.N())
		}
		for trial := 0; trial < 60; trial++ {
			q := randHalfspace(g, d)
			tau := g.Float64() * 1.2e6
			var got []core.Item[PtN]
			kd.ReportAbove(q, tau, func(it core.Item[PtN]) bool {
				got = append(got, it)
				return true
			})
			core.SortByWeightDesc(got)
			want := oracleAboveN(items, q, tau)
			if len(got) != len(want) {
				t.Fatalf("d=%d q=%+v tau=%v: got %d, want %d", d, q, tau, len(got), len(want))
			}
			for i := range got {
				if got[i].Weight != want[i].Weight {
					t.Fatalf("d=%d: item %d = %v, want %v", d, i, got[i].Weight, want[i].Weight)
				}
			}
			gm, gok := kd.MaxItem(q)
			wantAll := oracleAboveN(items, q, math.Inf(-1))
			if len(wantAll) == 0 {
				if gok {
					t.Fatalf("d=%d: max %v in empty halfspace", d, gm.Weight)
				}
			} else if !gok || gm.Weight != wantAll[0].Weight {
				t.Fatalf("d=%d: max (%v,%v), want %v", d, gm.Weight, gok, wantAll[0].Weight)
			}
		}
	}
}

func TestKDTreeValidation(t *testing.T) {
	bad := []core.Item[PtN]{{Value: PtN{C: []float64{1, 2}}, Weight: 1}}
	if _, err := NewKDTree(bad, 3, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	dup := []core.Item[PtN]{
		{Value: PtN{C: []float64{1, 2, 3}}, Weight: 5},
		{Value: PtN{C: []float64{4, 5, 6}}, Weight: 5},
	}
	if _, err := NewKDTree(dup, 3, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
	if _, err := NewKDTree(nil, 0, nil); err == nil {
		t.Fatal("dimension 0 accepted")
	}
	empty, err := NewKDTree(nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := empty.MaxItem(Halfspace{A: []float64{1, 0, 0}, C: 0}); ok {
		t.Fatal("empty kd-tree found a max")
	}
}

func TestKDTreeEarlyStop(t *testing.T) {
	g := wrand.New(7)
	items := genPointsN(g, 400, 4)
	kd, _ := NewKDTree(items, 4, nil)
	all := Halfspace{A: []float64{1, 0, 0, 0}, C: math.Inf(-1)}
	count := 0
	kd.ReportAbove(all, math.Inf(-1), func(core.Item[PtN]) bool {
		count++
		return count < 9
	})
	if count != 9 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestKDTreeSublinearVisits(t *testing.T) {
	// The kd-tree's query term should grow clearly sublinearly in n.
	g := wrand.New(8)
	visitsAt := func(n int) float64 {
		items := genPointsN(g, n, 4)
		// B=2 makes PathCost charge ~visited/2 reads, a faithful proxy for
		// the node-visit count (no longer a readable field since queries
		// keep their scratch state on the stack).
		tr := em.NewTracker(em.Config{B: 2, MemBlocks: 2})
		kd, _ := NewKDTree(items, 4, tr)
		tr.ResetCounters()
		var total int64
		const queries = 30
		for i := 0; i < queries; i++ {
			q := randHalfspace(g, 4)
			q.C = math.Abs(q.C) + 25 // far halfspace: few/no results, pure search cost
			before := tr.Stats().Reads
			kd.ReportAbove(q, math.Inf(1), func(core.Item[PtN]) bool { return true })
			total += tr.Stats().Reads - before
		}
		return float64(total) / queries
	}
	v1 := visitsAt(2000)
	v2 := visitsAt(16000)
	// 8x the input: linear behavior would be ~8x the visits; n^(3/4)
	// predicts ~4.8x. Require clearly sublinear.
	if v2 > 6.5*v1 {
		t.Errorf("visits grew %.0f -> %.0f (x%.1f) for 8x input; not sublinear", v1, v2, v2/v1)
	}
}

func TestPrioritized2DIOCharging(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 4})
	g := wrand.New(9)
	items := genPoints2(g, 1<<11)
	p, err := NewPrioritized(items, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.DropCache()
	tr.ResetCounters()
	count := 0
	p.ReportAbove(randHalfplane(g), math.Inf(-1), func(core.Item[Pt2]) bool { count++; return true })
	if ios := tr.Stats().IOs(); count > 0 && ios == 0 {
		t.Fatal("query charged no I/Os")
	}
}
