package halfspace

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"topk/internal/core"
	"topk/internal/wrand"
)

// TestPolynomialBoundedness2D samples halfplanes densely and counts the
// distinct outcomes q(D): the paper's §1.3 remark says there are O(n²)
// because every outcome boundary is a line through two input points. A
// sampled count can only under-estimate, so exceeding the bound disproves
// the claim while passing is consistent with it.
func TestPolynomialBoundedness2D(t *testing.T) {
	g := wrand.New(56)
	for _, n := range []int{4, 12, 30} {
		items := genPoints2(g, n)
		outcomes := map[string]struct{}{}
		// Dense directional + offset sampling, plus halfplanes through
		// point pairs (the actual outcome boundaries).
		for trial := 0; trial < 4000; trial++ {
			q := randHalfplane(g)
			outcomes[outcome2(items, q)] = struct{}{}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a := items[j].Value.Y - items[i].Value.Y
				b := items[i].Value.X - items[j].Value.X
				c := a*items[i].Value.X + b*items[i].Value.Y
				for _, eps := range []float64{-1e-9, 0, 1e-9} {
					outcomes[outcome2(items, Halfplane{A: a, B: b, C: c + eps})] = struct{}{}
					outcomes[outcome2(items, Halfplane{A: -a, B: -b, C: -c + eps})] = struct{}{}
				}
			}
		}
		bound := 3 * math.Pow(float64(n), Lambda)
		if float64(len(outcomes)) > bound {
			t.Fatalf("n=%d: %d distinct outcomes > 3·n^%d = %.0f — λ claim broken",
				n, len(outcomes), int(Lambda), bound)
		}
	}
}

func outcome2(items []core.Item[Pt2], q Halfplane) string {
	var ws []float64
	for _, it := range items {
		if q.Contains(it.Value) {
			ws = append(ws, it.Weight)
		}
	}
	sort.Float64s(ws)
	return fmt.Sprint(ws)
}
