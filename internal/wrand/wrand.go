// Package wrand supplies the seeded randomness used by the paper's
// reductions: Bernoulli p-sampling (Lemmas 1 and 2), (1/K)-sampling
// (Lemma 3), and reproducible workload generation for the experiments.
//
// Every source is explicitly seeded so that structures, tests, and
// benchmark tables are reproducible run to run.
package wrand

import (
	"math"
	"math/rand/v2"
)

// RNG is a seeded pseudo-random source (PCG under the hood).
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded deterministically from seed.
func New(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent child RNG; useful for giving each
// sub-structure its own stream without correlating their choices.
func (g *RNG) Split() *RNG {
	return New(g.r.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// SampleIndices returns the indices of an independent p-sample of [0, n):
// each index is kept with probability p, independently. This is exactly the
// "p-sample set" of Section 3.1.
//
// For small p it skips over non-sampled indices using geometric jumps, so
// the cost is proportional to the sample size rather than to n.
func (g *RNG) SampleIndices(n int, p float64) []int {
	if n <= 0 || p <= 0 {
		return nil
	}
	if p >= 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	expected := float64(n) * p
	out := make([]int, 0, int(expected+4*math.Sqrt(expected)+8))
	// Geometric skipping: the gap to the next sampled index is
	// floor(ln U / ln(1-p)).
	logq := math.Log1p(-p)
	i := 0
	for {
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		skip := int(math.Log(u) / logq)
		i += skip
		if i >= n {
			return out
		}
		out = append(out, i)
		i++
	}
}

// UniqueFloats returns n distinct float64 values drawn uniformly from
// (0, scale). Distinctness matches the paper's standing assumption that all
// weights are distinct (Section 1.1).
func (g *RNG) UniqueFloats(n int, scale float64) []float64 {
	seen := make(map[float64]struct{}, n)
	out := make([]float64, 0, n)
	for len(out) < n {
		v := g.r.Float64() * scale
		if v == 0 {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
