package wrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := New(8)
	same := 0
	a = New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := New(1)
	for i := 0; i < 32; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if g.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !g.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	g := New(42)
	const trials = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if g.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%g) empirical mean %g, want within 0.01", p, got)
		}
	}
}

func TestSampleIndicesDistribution(t *testing.T) {
	g := New(3)
	const n, p, trials = 1000, 0.05, 2000
	total := 0
	for trial := 0; trial < trials; trial++ {
		s := g.SampleIndices(n, p)
		total += len(s)
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("sample indices not strictly increasing: %d then %d", s[i-1], s[i])
			}
		}
		if len(s) > 0 && (s[0] < 0 || s[len(s)-1] >= n) {
			t.Fatalf("sample index out of range: %v", s)
		}
	}
	mean := float64(total) / trials
	want := float64(n) * p
	if math.Abs(mean-want) > 2 {
		t.Errorf("mean sample size %g, want ~%g", mean, want)
	}
}

func TestSampleIndicesPerPositionRate(t *testing.T) {
	// Each individual index must be included with probability p, not just
	// the aggregate count: geometric skipping must not bias positions.
	g := New(11)
	const n, p, trials = 50, 0.3, 60000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		for _, i := range g.SampleIndices(n, p) {
			counts[i]++
		}
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-p) > 0.015 {
			t.Errorf("index %d sampled at rate %g, want ~%g", i, got, p)
		}
	}
}

func TestSampleIndicesEdges(t *testing.T) {
	g := New(5)
	if s := g.SampleIndices(0, 0.5); len(s) != 0 {
		t.Errorf("SampleIndices(0, .5) = %v, want empty", s)
	}
	if s := g.SampleIndices(10, 0); len(s) != 0 {
		t.Errorf("SampleIndices(10, 0) = %v, want empty", s)
	}
	s := g.SampleIndices(10, 1)
	if len(s) != 10 {
		t.Fatalf("SampleIndices(10, 1) returned %d indices, want 10", len(s))
	}
	for i, v := range s {
		if v != i {
			t.Fatalf("SampleIndices(10, 1)[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestUniqueFloats(t *testing.T) {
	g := New(9)
	vs := g.UniqueFloats(5000, 100)
	if len(vs) != 5000 {
		t.Fatalf("got %d values, want 5000", len(vs))
	}
	seen := make(map[float64]struct{}, len(vs))
	for _, v := range vs {
		if v <= 0 || v >= 100 {
			t.Fatalf("value %g out of (0, 100)", v)
		}
		if _, dup := seen[v]; dup {
			t.Fatalf("duplicate weight %g", v)
		}
		seen[v] = struct{}{}
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(13)
	a := g.Split()
	b := g.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split RNGs produced %d/100 identical outputs", same)
	}
}
