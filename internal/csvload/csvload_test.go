package csvload

import (
	"strings"
	"testing"
)

func TestReadIntervals(t *testing.T) {
	in := `# sessions
lo,hi,weight,label
0,45,912,alice
10,25,340,bob

15,80,2048,carol
`
	ds, err := Read(strings.NewReader(in), KindIntervals)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ds.Len())
	}
	if ds.Intervals[1].Data != "bob" || ds.Intervals[1].Weight != 340 {
		t.Fatalf("row 2 = %+v", ds.Intervals[1])
	}

	res, err := ds.Query([]float64{21}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Label != "carol" || res[1].Label != "alice" {
		t.Fatalf("query = %+v", res)
	}
}

func TestReadPoints1DAndQuery(t *testing.T) {
	in := "1,10,a\n5,30,b\n9,20,c\n"
	ds, err := Read(strings.NewReader(in), KindPoints1D)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Query([]float64{0, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Label != "b" {
		t.Fatalf("query = %+v", res)
	}
	if _, err := ds.Query([]float64{0}, 1); err == nil {
		t.Fatal("wrong arg count accepted")
	}
}

func TestReadRectsAndPoints3D(t *testing.T) {
	rects := "0,10,0,10,5,r1\n5,15,5,15,7,r2\n"
	ds, err := Read(strings.NewReader(rects), KindRects)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Query([]float64{7, 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Label != "r2" {
		t.Fatalf("rect query = %+v", res)
	}

	p3 := "100,2,3,4.5,hotelA\n80,1,2,4.9,hotelB\n"
	ds, err = Read(strings.NewReader(p3), KindPoints3D)
	if err != nil {
		t.Fatal(err)
	}
	res, err = ds.Query([]float64{90, 5, 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Label != "hotelB" {
		t.Fatalf("3d query = %+v", res)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		in   string
	}{
		{"unknown kind", Kind("bogus"), "1,2,3\n"},
		{"too few fields", KindIntervals, "1,2\n"},
		{"bad number", KindIntervals, "1,2,x\n"},
		{"duplicate weight", KindIntervals, "1,2,5\n3,4,5\n"},
		{"reversed interval", KindIntervals, "9,2,5\n"},
		{"reversed rect", KindRects, "9,2,0,1,5\n"},
		{"header not first", KindPoints1D, "1,2\nfoo,bar\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in), c.kind); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestKindsListed(t *testing.T) {
	if len(Kinds()) != 4 {
		t.Fatalf("Kinds() = %v", Kinds())
	}
	for _, k := range Kinds() {
		if _, err := numericCols(k); err != nil {
			t.Errorf("kind %q unsupported by numericCols", k)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	ds, err := Read(strings.NewReader(""), KindPoints1D)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 0 {
		t.Fatalf("Len = %d", ds.Len())
	}
	res, err := ds.Query([]float64{0, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty dataset returned %+v", res)
	}
}
