// Package csvload parses the CSV dataset formats accepted by
// cmd/topk-csv, turning rows into the item types of the public API. It is
// separate from the command so the parsing and validation logic is unit
// tested.
//
// All formats share the conventions: one record per line, '#' comments
// and blank lines ignored, an optional header line (detected by a
// non-numeric first field), weight column required and distinct, and an
// optional trailing label column.
package csvload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"topk"
)

// Kind selects the dataset geometry.
type Kind string

// Supported dataset kinds.
const (
	KindIntervals Kind = "intervals" // lo,hi,weight[,label]
	KindPoints1D  Kind = "points"    // pos,weight[,label]
	KindRects     Kind = "rects"     // x1,x2,y1,y2,weight[,label]
	KindPoints3D  Kind = "points3d"  // x,y,z,weight[,label]
)

// Kinds lists the supported kinds for usage messages.
func Kinds() []Kind {
	return []Kind{KindIntervals, KindPoints1D, KindRects, KindPoints3D}
}

// numericCols returns the required numeric column count for a kind.
func numericCols(k Kind) (int, error) {
	switch k {
	case KindIntervals:
		return 3, nil
	case KindPoints1D:
		return 2, nil
	case KindRects:
		return 5, nil
	case KindPoints3D:
		return 4, nil
	}
	return 0, fmt.Errorf("csvload: unknown kind %q (supported: %v)", k, Kinds())
}

// Dataset is the parsed, validated content of one CSV file.
type Dataset struct {
	Kind      Kind
	Intervals []topk.IntervalItem[string]
	Points1D  []topk.PointItem1[string]
	Rects     []topk.RectItem[string]
	Points3D  []topk.DominanceItem[string]
}

// Len returns the number of parsed records.
func (d *Dataset) Len() int {
	switch d.Kind {
	case KindIntervals:
		return len(d.Intervals)
	case KindPoints1D:
		return len(d.Points1D)
	case KindRects:
		return len(d.Rects)
	case KindPoints3D:
		return len(d.Points3D)
	}
	return 0
}

// Read parses a CSV stream of the given kind.
func Read(r io.Reader, kind Kind) (*Dataset, error) {
	want, err := numericCols(kind)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true

	ds := &Dataset{Kind: kind}
	seen := map[float64]int{}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvload: %w", err)
		}
		line++
		if len(rec) == 0 || (len(rec) == 1 && strings.TrimSpace(rec[0]) == "") {
			continue
		}
		// Header detection: first record whose first field isn't numeric.
		if _, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64); err != nil {
			if line == 1 {
				continue
			}
			return nil, fmt.Errorf("csvload: record %d: non-numeric first field %q", line, rec[0])
		}
		if len(rec) < want {
			return nil, fmt.Errorf("csvload: record %d: %d fields, need ≥ %d for kind %q", line, len(rec), want, kind)
		}
		nums := make([]float64, want)
		for i := 0; i < want; i++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("csvload: record %d field %d: %v", line, i+1, err)
			}
			nums[i] = v
		}
		label := ""
		if len(rec) > want {
			label = strings.TrimSpace(rec[want])
		}
		weight := nums[want-1]
		if prev, dup := seen[weight]; dup {
			return nil, fmt.Errorf("csvload: record %d: weight %v duplicates record %d (weights must be distinct)", line, weight, prev)
		}
		seen[weight] = line

		switch kind {
		case KindIntervals:
			if nums[0] > nums[1] {
				return nil, fmt.Errorf("csvload: record %d: interval lo %v > hi %v", line, nums[0], nums[1])
			}
			ds.Intervals = append(ds.Intervals, topk.IntervalItem[string]{
				Lo: nums[0], Hi: nums[1], Weight: weight, Data: label,
			})
		case KindPoints1D:
			ds.Points1D = append(ds.Points1D, topk.PointItem1[string]{
				Pos: nums[0], Weight: weight, Data: label,
			})
		case KindRects:
			if nums[0] > nums[1] || nums[2] > nums[3] {
				return nil, fmt.Errorf("csvload: record %d: malformed rectangle", line)
			}
			ds.Rects = append(ds.Rects, topk.RectItem[string]{
				X1: nums[0], X2: nums[1], Y1: nums[2], Y2: nums[3], Weight: weight, Data: label,
			})
		case KindPoints3D:
			ds.Points3D = append(ds.Points3D, topk.DominanceItem[string]{
				X: nums[0], Y: nums[1], Z: nums[2], Weight: weight, Data: label,
			})
		}
	}
	return ds, nil
}

// Result is one answer row from Query.
type Result struct {
	Weight float64
	Label  string
	Desc   string // human-readable element description
}

// Query builds the index for the dataset's kind and answers one top-k
// query with the given numeric arguments (the predicate parameters for
// the kind: intervals/points take 1 or 2 args, rects 2, points3d 3).
func (d *Dataset) Query(args []float64, k int, opts ...topk.Option) ([]Result, error) {
	switch d.Kind {
	case KindIntervals:
		if len(args) != 1 {
			return nil, fmt.Errorf("csvload: kind %q takes 1 query arg (stab point), got %d", d.Kind, len(args))
		}
		ix, err := topk.NewIntervalIndex(d.Intervals, opts...)
		if err != nil {
			return nil, err
		}
		var out []Result
		for _, it := range ix.TopK(args[0], k) {
			out = append(out, Result{Weight: it.Weight, Label: it.Data,
				Desc: fmt.Sprintf("[%g, %g]", it.Lo, it.Hi)})
		}
		return out, nil
	case KindPoints1D:
		if len(args) != 2 {
			return nil, fmt.Errorf("csvload: kind %q takes 2 query args (lo hi), got %d", d.Kind, len(args))
		}
		ix, err := topk.NewRangeIndex(d.Points1D, opts...)
		if err != nil {
			return nil, err
		}
		var out []Result
		for _, it := range ix.TopK(args[0], args[1], k) {
			out = append(out, Result{Weight: it.Weight, Label: it.Data,
				Desc: fmt.Sprintf("pos=%g", it.Pos)})
		}
		return out, nil
	case KindRects:
		if len(args) != 2 {
			return nil, fmt.Errorf("csvload: kind %q takes 2 query args (x y), got %d", d.Kind, len(args))
		}
		ix, err := topk.NewEnclosureIndex(d.Rects, opts...)
		if err != nil {
			return nil, err
		}
		var out []Result
		for _, it := range ix.TopK(args[0], args[1], k) {
			out = append(out, Result{Weight: it.Weight, Label: it.Data,
				Desc: fmt.Sprintf("[%g,%g]x[%g,%g]", it.X1, it.X2, it.Y1, it.Y2)})
		}
		return out, nil
	case KindPoints3D:
		if len(args) != 3 {
			return nil, fmt.Errorf("csvload: kind %q takes 3 query args (x y z), got %d", d.Kind, len(args))
		}
		ix, err := topk.NewDominanceIndex(d.Points3D, opts...)
		if err != nil {
			return nil, err
		}
		var out []Result
		for _, it := range ix.TopK(args[0], args[1], args[2], k) {
			out = append(out, Result{Weight: it.Weight, Label: it.Data,
				Desc: fmt.Sprintf("(%g, %g, %g)", it.X, it.Y, it.Z)})
		}
		return out, nil
	}
	return nil, fmt.Errorf("csvload: unknown kind %q", d.Kind)
}
