package bench

import (
	"io"
	"time"

	"topk/internal/core"
	"topk/internal/dominance"
	"topk/internal/em"
	"topk/internal/enclosure"
	"topk/internal/halfspace"
	"topk/internal/interval"
	"topk/internal/rangerep"
)

// E17 — the EM model's memory: with M/B cache frames, repeated accesses to
// hot blocks are free (the model charges only misses). Larger memories
// must monotonically reduce the charged I/Os of a repeated query stream.
func runE17(w io.Writer, cfg Config) error {
	n := 1 << 15
	queries := 40
	if cfg.Quick {
		n = 1 << 12
		queries = 15
	}
	const k = 16
	items := Intervals(cfg.Seed+17, n, 15)
	qs := StabPoints(cfg.Seed+170, queries)

	t := newTable("mem frames (M/B)", "cold I/Os", "warm I/Os", "warm hit rate", "warm/cold")
	for _, frames := range []int{2, 8, 64, 512} {
		tr := em.NewTracker(em.Config{B: benchB, MemBlocks: frames})
		exp, err := core.NewExpected(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](tr),
			interval.NewMaxFactory[interval.Interval](tr),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: tr})
		if err != nil {
			return err
		}
		var cold, warm, hits int64
		for _, q := range qs {
			tr.DropCache()
			tr.ResetCounters()
			exp.TopK(q, k)
			cold += tr.Stats().IOs()
			// Same query again: whatever fits in memory is free now.
			tr.ResetCounters()
			exp.TopK(q, k)
			st := tr.Stats()
			warm += st.IOs()
			hits += st.Hits
		}
		qn := float64(queries)
		hitRate := float64(hits) / float64(hits+warm)
		t.row(frames, float64(cold)/qn, float64(warm)/qn, hitRate, float64(warm)/float64(cold))
	}
	t.write(w)
	note(w, "Aggarwal–Vitter semantics: only misses cost; the warm/cold ratio must fall monotonically as M grows (per-query block reuse becomes free). ScanCost output blocks are charged unconditionally, so the ratio floors above 0.")
	return nil
}

// E18 — RAM-model scaling (the paper's closing remark: every result holds
// in RAM by fixing B). Wall-clock time per query across all six problems,
// each at two sizes: polylog-flavored growth means far less than the 8x
// input growth.
func runE18(w io.Writer, cfg Config) error {
	small, big := 1<<12, 1<<15
	queries := 25
	if cfg.Quick {
		small, big = 1<<10, 1<<12
		queries = 8
	}
	const k = 10
	t := newTable("problem", "n", "µs/query", "growth vs small")

	type probe struct {
		name string
		run  func(n int) float64 // µs per query
	}
	probes := []probe{
		{"interval stabbing (Thm 4)", func(n int) float64 {
			items := Intervals(cfg.Seed+18, n, 15)
			exp, err := core.NewExpected(items, interval.Match[interval.Interval],
				interval.NewPrioritizedFactory[interval.Interval](nil),
				interval.NewMaxFactory[interval.Interval](nil),
				core.ExpectedOptions{B: benchB, Seed: cfg.Seed})
			if err != nil {
				panic(err)
			}
			qs := StabPoints(cfg.Seed+180, queries)
			start := time.Now()
			for _, q := range qs {
				exp.TopK(q, k)
			}
			return us(start, queries)
		}},
		{"1D range (survey §2)", func(n int) float64 {
			g := Intervals(cfg.Seed+19, n, 15) // reuse weights; positions from Lo
			items := make([]core.Item[float64], n)
			for i, it := range g {
				items[i] = core.Item[float64]{Value: it.Value.Lo, Weight: it.Weight}
			}
			exp, err := core.NewExpected(items, rangerep.Match,
				rangerep.NewPrioritizedFactory(nil), rangerep.NewMaxFactory(nil),
				core.ExpectedOptions{B: benchB, Seed: cfg.Seed})
			if err != nil {
				panic(err)
			}
			qs := StabPoints(cfg.Seed+181, queries)
			start := time.Now()
			for _, q := range qs {
				exp.TopK(rangerep.Span{Lo: q, Hi: q + 20}, k)
			}
			return us(start, queries)
		}},
		{"point enclosure (Thm 5)", func(n int) float64 {
			items := Rects(cfg.Seed+20, n)
			exp, err := core.NewExpected(items, enclosure.Match,
				enclosure.NewPrioritizedFactory(nil), enclosure.NewMaxFactory(nil),
				core.ExpectedOptions{B: benchB, Seed: cfg.Seed})
			if err != nil {
				panic(err)
			}
			qs := EnclosurePoints(cfg.Seed+182, queries)
			start := time.Now()
			for _, q := range qs {
				exp.TopK(q, k)
			}
			return us(start, queries)
		}},
		{"3D dominance (Thm 6)", func(n int) float64 {
			items := Hotels(cfg.Seed+21, n)
			exp, err := core.NewExpected(items, dominance.Match,
				dominance.NewPrioritizedFactory(nil), dominance.NewMaxFactory(nil),
				core.ExpectedOptions{B: benchB, Seed: cfg.Seed})
			if err != nil {
				panic(err)
			}
			qs := DominanceQueries(cfg.Seed+183, queries)
			start := time.Now()
			for _, q := range qs {
				exp.TopK(q, k)
			}
			return us(start, queries)
		}},
		{"halfplane d=2 (Thm 3)", func(n int) float64 {
			items := Gaussian2D(cfg.Seed+22, n)
			exp, err := core.NewExpected(items, halfspace.Match,
				halfspace.NewPrioritizedFactory(nil), halfspace.NewMaxFactory(nil),
				core.ExpectedOptions{B: benchB, Seed: cfg.Seed})
			if err != nil {
				panic(err)
			}
			qs := Halfplanes(cfg.Seed+184, queries)
			start := time.Now()
			for _, q := range qs {
				exp.TopK(q, k)
			}
			return us(start, queries)
		}},
		{"halfspace d=4 (Thm 3)", func(n int) float64 {
			items := GaussianND(cfg.Seed+23, n, 4)
			exp, err := core.NewExpected(items, halfspace.MatchN,
				func(sub []core.Item[halfspace.PtN]) core.Prioritized[halfspace.Halfspace, halfspace.PtN] {
					t, err := halfspace.NewKDTree(sub, 4, nil)
					if err != nil {
						panic(err)
					}
					return t
				},
				func(sub []core.Item[halfspace.PtN]) core.Max[halfspace.Halfspace, halfspace.PtN] {
					t, err := halfspace.NewKDTree(sub, 4, nil)
					if err != nil {
						panic(err)
					}
					return t
				},
				core.ExpectedOptions{B: benchB, Seed: cfg.Seed})
			if err != nil {
				panic(err)
			}
			qs := Halfspaces(cfg.Seed+185, queries, 4)
			start := time.Now()
			for _, q := range qs {
				exp.TopK(q, k)
			}
			return us(start, queries)
		}},
	}

	ratio := float64(big) / float64(small)
	for _, p := range probes {
		sm := p.run(small)
		bg := p.run(big)
		t.row(p.name, small, sm, "-")
		t.row(p.name, big, bg, trimFloat(bg/sm))
	}
	t.write(w)
	note(w, "RAM model (paper §1.1: set B, M to constants): per %.0fx input growth, polylog queries should grow far below %.0fx (k=%d, Theorem 2 reduction everywhere).", ratio, ratio, k)
	return nil
}

func us(start time.Time, queries int) float64 {
	return float64(time.Since(start).Microseconds()) / float64(queries)
}
