package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"topk"
)

// E30 — Real I/O: the disk-backed block store replays the simulator's
// cost trace against an actual file (DESIGN.md §13). For every problem
// × reduction the index is built WithDiskStore, a pinned batch is
// queried, and the table compares the EM model's simulated I/O counts
// against the store's syscall counters: each counted write is one
// pwrite during build, each counted read (cache miss or cost-level
// charge) is one pread during queries. The experiment quantifies the
// §13 claim two ways: the read identity must hold exactly per cell,
// and the correlation between simulated I/Os and measured wall-clock
// shows the simulated metric predicting real latency.

// runE30 measures simulated vs physical I/O across the registry.
func runE30(w io.Writer, cfg Config) error {
	n, nq := 20000, 64
	if cfg.Quick {
		n, nq = 2500, 16
	}
	const k = 16

	root, err := os.MkdirTemp("", "topk-e30-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	t := newTable("problem", "reduction", "build writes", "pwrites", "query I/Os", "preads", "read ident", "KiB read", "batch ms")
	var simIOs, preads, wallUS []float64
	for _, spec := range topk.RegisteredProblems() {
		for _, r := range topk.AllReductions() {
			dir, err := os.MkdirTemp(root, "cell-*")
			if err != nil {
				return err
			}
			ix, err := spec.Build(n, cfg.Seed+30, topk.WithReduction(r), topk.WithSeed(cfg.Seed), topk.WithDiskStore(dir))
			if err != nil {
				return fmt.Errorf("%s/%v: %w", spec.Name, r, err)
			}
			st0, ss0 := ix.Stats(), ix.StoreStats()

			qs := ix.GenQueries(nq, cfg.Seed+300)
			start := time.Now()
			res := ix.QueryBatch(qs, k, 0)
			wall := time.Since(start)

			st1, ss1 := ix.Stats(), ix.StoreStats()
			if err := ix.StoreErr(); err != nil {
				return fmt.Errorf("%s/%v: store error: %w", spec.Name, r, err)
			}
			var qIOs int64
			for _, b := range res {
				qIOs += b.Stats.IOs()
			}
			qReads := st1.Reads - st0.Reads
			qPreads := ss1.Reads - ss0.Reads
			ident := "ok"
			if qPreads != qReads {
				ident = fmt.Sprintf("MISMATCH %d!=%d", qPreads, qReads)
			}
			if ss0.Writes != st0.Writes {
				ident = fmt.Sprintf("BUILD MISMATCH %d!=%d", ss0.Writes, st0.Writes)
			}
			t.row(spec.Name, fmt.Sprint(r), st0.Writes, ss0.Writes, qIOs, qPreads, ident,
				float64(ss1.BytesRead-ss0.BytesRead)/1024, float64(wall.Microseconds())/1000)

			simIOs = append(simIOs, float64(qIOs))
			preads = append(preads, float64(qPreads))
			wallUS = append(wallUS, float64(wall.Microseconds()))
			if err := ix.Close(); err != nil {
				return fmt.Errorf("%s/%v: close: %w", spec.Name, r, err)
			}
		}
	}
	t.write(w)
	note(w, "n=%d, nq=%d, k=%d; one .tkbs file per cell, removed afterwards.", n, nq, k)
	note(w, "Pearson r(simulated query I/Os, preads) = %s; r(simulated query I/Os, batch wall-clock) = %s over %d cells.",
		trimFloat(pearson(simIOs, preads)), trimFloat(pearson(simIOs, wallUS)), len(simIOs))
	note(w, "The read identity is exact by construction: every cache miss fetches its block and every cost-level charge "+
		"(PathCost/ScanCost) issues a stand-in pread of the superblock region, so preads == simulated reads whenever the "+
		"index was built cold (no restore in its history). Wall-clock tracks the simulated count loosely — the page cache "+
		"and pread batching keep real latency from scaling one-for-one — which is exactly why the gate pins the "+
		"deterministic counters and treats time as report-only.")
	return nil
}

// pearson returns the Pearson correlation coefficient of two equal-
// length samples, or 0 when either side has no variance.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
