package bench

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/dynamic"
	"topk/internal/em"
	"topk/internal/interval"
	"topk/internal/wrand"
)

// E25 — the dynamization overlay (internal/dynamic): the logarithmic
// method's amortized insert bound, and its behavior under mixed
// update/query workloads.
//
// Claim 1 (amortized inserts): inserting through the overlay costs
// O(log(n/TailCap) · Build(n)/n) I/Os amortized, where Build(n) is the
// underlying reduction's one-shot construction cost — here Theorem 1
// (WorstCase) over interval stabbing. The ratio column (measured /
// model) must stay bounded by a small constant across the n sweep.
//
// Claim 2 (mix sweep): under sustained churn the overlay keeps O(log n)
// levels and a bounded tombstone fraction, so query cost degrades by at
// most the level multiplier while updates stay cheap.

// overlayBuilder constructs WorstCase interval substructures on tr, the
// same wiring the facade uses for WithUpdates indexes.
func overlayBuilder(tr *em.Tracker, seed uint64) dynamic.Builder[float64, interval.Interval] {
	return func(items []core.Item[interval.Interval]) (core.TopK[float64, interval.Interval], error) {
		return core.NewWorstCase(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](tr),
			core.WorstCaseOptions{B: benchB, Lambda: interval.Lambda, Seed: seed, Tracker: tr})
	}
}

func runE25(w io.Writer, cfg Config) error {
	ns := []int{1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17}
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 11, 1 << 12}
	}

	t := newTable("n", "build I/Os", "amortized insert I/Os", "model log2(n/B)·build/n", "ratio")
	for _, n := range ns {
		items := Intervals(cfg.Seed+25, n, 15)

		// One-shot static build cost over all n items, the model's Build(n).
		trS := newTrackerB()
		if _, err := overlayBuilder(trS, cfg.Seed)(items); err != nil {
			return err
		}
		buildIOs := trS.Stats().IOs()

		// Seed the overlay with half the items, then pay for inserting the
		// other half one by one; the total is the amortized cost.
		half := n / 2
		tr := newTrackerB()
		ov, err := dynamic.New(items[:half], interval.Match[interval.Interval],
			overlayBuilder(tr, cfg.Seed), dynamic.Options{Tracker: tr, TailCap: benchB})
		if err != nil {
			return err
		}
		tr.ResetCounters()
		for _, it := range items[half:] {
			if err := ov.Insert(it); err != nil {
				return err
			}
		}
		amort := float64(tr.Stats().IOs()) / float64(n-half)
		model := math.Log2(float64(n)/benchB) * float64(buildIOs) / float64(n)
		t.row(n, buildIOs, amort, model, amort/model)
	}
	t.write(w)
	note(w, "logarithmic method: amortized insert ≤ c·log2(n/B)·Build(n)/n I/Os; the ratio column must stay bounded (≈ flat) as n grows.")
	fmt.Fprintln(w)

	// Mix sweep: fixed n, varying update share. Updates alternate
	// insert/delete so the live size stays ≈ n and tombstones accumulate.
	n := 1 << 14
	ops := 4000
	if cfg.Quick {
		n = 1 << 12
		ops = 800
	}
	t2 := newTable("update share", "avg update I/Os", "avg query I/Os", "levels", "tombstones", "flushes", "rebuilds")
	for _, pct := range []int{10, 50, 90} {
		items := Intervals(cfg.Seed+251, n, 15)
		tr := newTrackerB()
		ov, err := dynamic.New(items, interval.Match[interval.Interval],
			overlayBuilder(tr, cfg.Seed), dynamic.Options{Tracker: tr, TailCap: benchB})
		if err != nil {
			return err
		}
		g := wrand.New(cfg.Seed + 252 + uint64(pct))
		live := make([]float64, len(items))
		for i, it := range items {
			live[i] = it.Weight
		}
		nextW := 3e9
		var upIOs, qIOs int64
		var ups, qs int
		for i := 0; i < ops; i++ {
			if g.IntN(100) < pct {
				if i%2 == 0 || len(live) == 0 {
					nextW++
					lo := g.Float64() * 100
					it := core.Item[interval.Interval]{
						Value:  interval.Interval{Lo: lo, Hi: lo + g.ExpFloat64()*15},
						Weight: nextW,
					}
					upIOs += coldIOs(tr, func() {
						if err := ov.Insert(it); err != nil {
							panic(err)
						}
					})
					live = append(live, nextW)
				} else {
					j := g.IntN(len(live))
					dw := live[j]
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					upIOs += coldIOs(tr, func() { ov.DeleteWeight(dw) })
				}
				ups++
			} else {
				x := g.Float64() * 100
				qIOs += coldIOs(tr, func() { ov.TopK(x, 10) })
				qs++
			}
		}
		st := ov.Stats()
		avgUp, avgQ := 0.0, 0.0
		if ups > 0 {
			avgUp = float64(upIOs) / float64(ups)
		}
		if qs > 0 {
			avgQ = float64(qIOs) / float64(qs)
		}
		t2.row(pctString(pct), avgUp, avgQ, st.Levels, st.Tombstones, st.Flushes, st.Rebuilds)
	}
	t2.write(w)
	note(w, "n=%d, %d mixed ops, TailCap=B=%d, DeadFrac=0.5: levels stay O(log(n/B)) and tombstones below half the baked-in items at every mix.", n, ops, benchB)
	return nil
}

func pctString(p int) string {
	return map[int]string{10: "10%", 50: "50%", 90: "90%"}[p]
}
