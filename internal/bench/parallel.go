package bench

import (
	"io"
	"runtime"
	"time"

	"topk"
)

// E24 — concurrent query serving. The indexes split into an immutable
// structure and per-query tracker views, so QueryBatch can answer a batch
// on any number of workers. Two properties are on display: wall-clock
// throughput may scale with the worker count (on a multi-core host), and
// the simulated per-query I/O cost must not move at all, because every
// query runs against its own cold private cache.
func runE24(w io.Writer, cfg Config) error {
	n := 1 << 15
	nq := 512
	if cfg.Quick {
		n = 1 << 12
		nq = 64
	}
	const k = 16

	src := Intervals(cfg.Seed+24, n, 15)
	items := make([]topk.IntervalItem[int], len(src))
	for i, it := range src {
		items[i] = topk.IntervalItem[int]{Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight, Data: i}
	}
	ix, err := topk.NewIntervalIndex(items, topk.WithReduction(topk.Expected), topk.WithSeed(cfg.Seed))
	if err != nil {
		return err
	}
	qs := StabPoints(cfg.Seed+240, nq)

	t := newTable("workers", "wall ms", "queries/sec", "speedup", "ios/query", "ios identical")
	var base time.Duration
	var baseIOs int64
	for _, workers := range []int{1, 2, 4, 8, 16} {
		start := time.Now()
		res := ix.QueryBatch(qs, k, workers)
		wall := time.Since(start)
		var ios int64
		for _, r := range res {
			ios += r.Stats.IOs()
		}
		if workers == 1 {
			base, baseIOs = wall, ios
		}
		t.row(workers,
			float64(wall.Milliseconds()),
			float64(nq)/wall.Seconds(),
			float64(base)/float64(wall),
			float64(ios)/float64(nq),
			boolCell(ios == baseIOs))
	}
	t.write(w)
	note(w, "GOMAXPROCS=%d. Per-query I/Os are charged against a cold private cache, so the ios/query column is invariant in the worker count by construction; wall-clock speedup is bounded by the host's core count.", runtime.GOMAXPROCS(0))
	return nil
}

func boolCell(v bool) string {
	if v {
		return "yes"
	}
	return "NO"
}
