package bench

import (
	"io"
	"math"
	"sort"
	"time"

	"topk/internal/circular"
	"topk/internal/core"
	"topk/internal/dominance"
	"topk/internal/em"
	"topk/internal/enclosure"
	"topk/internal/halfspace"
	"topk/internal/interval"
)

// E7 — Theorem 4 (top-k interval stabbing): expected query cost
// O(log_B n + k/B) I/Os and O(log_B n) amortized expected update cost.
func runE7(w io.Writer, cfg Config) error {
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	queries, updates := 40, 500
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 12}
		queries, updates = 15, 100
	}
	const k = 32
	t := newTable("n", "model log_B n + k/B", "query I/Os", "I/Os ÷ model", "update I/Os")
	for _, n := range ns {
		items := Intervals(cfg.Seed+7, n, 15)
		tr := newTrackerB()
		exp, err := core.NewDynamicExpected(items, interval.Match[interval.Interval],
			interval.NewDynamicPrioritizedFactory[interval.Interval](tr),
			interval.NewDynamicMaxFactory[interval.Interval](tr),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: tr})
		if err != nil {
			return err
		}
		var qIOs int64
		for _, q := range StabPoints(cfg.Seed+70, queries) {
			qIOs += coldIOs(tr, func() { exp.TopK(q, k) })
		}
		fresh := Intervals(cfg.Seed+71, updates, 15)
		var uIOs int64
		for i := range fresh {
			fresh[i].Weight += 2e9
			uIOs += coldIOs(tr, func() { _ = exp.Insert(fresh[i]) })
			if i%2 == 1 {
				uIOs += coldIOs(tr, func() { exp.DeleteWeight(fresh[i].Weight) })
			}
		}
		model := core.LogB(n, benchB) + float64(k)/benchB
		qAvg := float64(qIOs) / float64(queries)
		t.row(n, model, qAvg, qAvg/model, float64(uIOs)/float64(updates*3/2))
	}
	t.write(w)
	note(w, "paper (Thm 4, bullet 1): O(n/B) space, O(log_B n + k/B) expected query, O(log_B n) amortized expected update (k=%d).", k)
	return nil
}

// E8 — Theorem 5 (top-k point enclosure): polylog query. Measured I/Os
// normalized by log² n should stay bounded as n grows.
func runE8(w io.Writer, cfg Config) error {
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	queries := 30
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 12}
		queries = 10
	}
	const k = 10
	t := newTable("n", "query I/Os", "scan I/Os (n/B)", "speedup", "µs/query", "space blk")
	var prev float64
	growths := ""
	for _, n := range ns {
		items := Rects(cfg.Seed+8, n)
		tr := newTrackerB()
		exp, err := core.NewExpected(items, enclosure.Match,
			enclosure.NewPrioritizedFactory(tr),
			enclosure.NewMaxFactory(tr),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: tr})
		if err != nil {
			return err
		}
		blocks := tr.Stats().Blocks
		var ios int64
		start := time.Now()
		for _, q := range EnclosurePoints(cfg.Seed+80, queries) {
			ios += coldIOs(tr, func() { exp.TopK(q, k) })
		}
		el := time.Since(start)
		avg := float64(ios) / float64(queries)
		scan := float64(n) / benchB
		t.row(n, avg, scan, scan/avg, float64(el.Microseconds())/float64(queries), blocks)
		if prev > 0 {
			growths += " x" + trimFloat(avg/prev)
		}
		prev = avg
	}
	t.write(w)
	note(w, "paper (Thm 5, bullet 1): polylog expected query — per 4x n the scan grows 4x while the index grows polylog (measured%s); the speedup column must widen with n (k=%d).", growths, k)
	return nil
}

// E9 — Theorem 6 (top-k 3D dominance): polylog query on the hotel
// workload.
func runE9(w io.Writer, cfg Config) error {
	ns := []int{1 << 11, 1 << 12, 1 << 13}
	queries := 25
	if cfg.Quick {
		ns = []int{1 << 9, 1 << 11}
		queries = 10
	}
	const k = 10
	// The 3D dominance structures hold O(n log² n) words, capping
	// feasible n; with B = 64 a scan of such small inputs is nearly free.
	// Run this experiment at B = 16 so the block-resolution regimes of
	// index and scan are comparable.
	const b9 = 16
	t := newTable("n", "query I/Os", "scan I/Os (n/B)", "speedup", "µs/query")
	var prev float64
	growths := ""
	for _, n := range ns {
		items := Hotels(cfg.Seed+9, n)
		tr := em.NewTracker(em.Config{B: b9, MemBlocks: 8})
		exp, err := core.NewExpected(items, dominance.Match,
			dominance.NewPrioritizedFactory(tr),
			dominance.NewMaxFactory(tr),
			core.ExpectedOptions{B: b9, Seed: cfg.Seed, Tracker: tr})
		if err != nil {
			return err
		}
		var ios int64
		start := time.Now()
		for _, q := range DominanceQueries(cfg.Seed+90, queries) {
			ios += coldIOs(tr, func() { exp.TopK(q, k) })
		}
		el := time.Since(start)
		avg := float64(ios) / float64(queries)
		scan := float64(n) / b9
		t.row(n, avg, scan, scan/avg, float64(el.Microseconds())/float64(queries))
		if prev > 0 {
			growths += " x" + trimFloat(avg/prev)
		}
		prev = avg
	}
	t.write(w)
	note(w, "paper (Thm 6): O(log^1.5 n + k) expected query (our substituted reporting is O(log³ n + t)) — polylog either way, so per 2x n the index cost must grow far slower than the 2x scan (measured%s; B=%d here, see comment; k=%d).", growths, b9, k)
	return nil
}

// E10 — Theorem 3 d=2 (top-k halfplane): expected query near
// O(log n + k); the binary-search baseline pays an extra log factor.
func runE10(w io.Writer, cfg Config) error {
	ns := []int{1 << 11, 1 << 13, 1 << 15}
	queries := 20
	if cfg.Quick {
		ns = []int{1 << 9, 1 << 11}
		queries = 8
	}
	// Two k regimes: small k (search-term dominated) and large k, where
	// the baseline's multiplicative log n on the output term bites.
	const kSmall, kLarge = 10, 512
	t := newTable("n", "Thm2 k=10", "base k=10", "Thm2 k=512", "base k=512", "base/Thm2 @512", "µs/query (Thm2)")
	for _, n := range ns {
		items := Gaussian2D(cfg.Seed+10, n)
		tr := newTrackerB()
		exp, err := core.NewExpected(items, halfspace.Match,
			halfspace.NewPrioritizedFactory(tr),
			halfspace.NewMaxFactory(tr),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: tr})
		if err != nil {
			return err
		}
		trB := newTrackerB()
		base, err := core.NewBaseline(items, halfspace.NewPrioritizedFactory(trB), trB)
		if err != nil {
			return err
		}
		var eS, bS, eL, bL int64
		start := time.Now()
		for _, q := range Halfplanes(cfg.Seed+100, queries) {
			eS += coldIOs(tr, func() { exp.TopK(q, kSmall) })
			eL += coldIOs(tr, func() { exp.TopK(q, kLarge) })
		}
		el := time.Since(start)
		for _, q := range Halfplanes(cfg.Seed+100, queries) {
			bS += coldIOs(trB, func() { base.TopK(q, kSmall) })
			bL += coldIOs(trB, func() { base.TopK(q, kLarge) })
		}
		qn := float64(queries)
		t.row(n, float64(eS)/qn, float64(bS)/qn, float64(eL)/qn, float64(bL)/qn,
			float64(bL)/float64(eL), float64(el.Microseconds())/(2*qn))
	}
	t.write(w)
	note(w, "paper (Thm 3, bullet 1 + Eq. 2): the baseline's output term is (k/B)·log n vs Theorem 2's k/B — at k=512 the baseline must lose by a widening factor; at k=10 both are search-dominated and Theorem 2's B·Q_max floor shows as a constant.")
	return nil
}

// E11 — Theorem 3 d≥4: when Q_pri = Θ((n/B)^ε), Theorem 1 gives
// Q_top = O(Q_pri): the measured growth exponents should match and the
// ratio should flatten.
func runE11(w io.Writer, cfg Config) error {
	const d = 4
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	queries := 15
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 12}
		queries = 6
	}
	const k = 16
	t := newTable("n", "Q_pri I/Os", "Q_top I/Os", "ratio", "§5.5 EM-str I/Os", "§5.5 levels")
	for _, n := range ns {
		items := GaussianND(cfg.Seed+11, n, d)
		trPri := newTrackerB()
		kd, err := halfspace.NewKDTree(items, d, trPri)
		if err != nil {
			return err
		}
		trEM := newTrackerB()
		em55, err := halfspace.NewEMPrioritized(items, d, 0.5, trEM)
		if err != nil {
			return err
		}
		trTop := newTrackerB()
		qpri := func(m int) float64 {
			return core.LogB(m, benchB) + math.Pow(float64(m)/benchB, 1-1.0/d)
		}
		// Keep f in the asymptotic regime (see E15's note on the paper's
		// constant).
		const targetF = 512
		wc, err := core.NewWorstCase(items, halfspace.MatchN,
			halfspace.NewKDPrioritizedFactory(d, trTop),
			core.WorstCaseOptions{
				B: benchB, Lambda: halfspace.LambdaN(d), Seed: cfg.Seed, Tracker: trTop,
				QPri:   qpri,
				FScale: targetF / (12 * halfspace.LambdaN(d) * benchB * qpri(n)),
			})
		if err != nil {
			return err
		}
		// Calibrate each halfspace to select exactly 4k points, so the
		// prioritized cost is dominated by the geometric search frontier
		// (the (n/B)^(1-1/d) term) rather than by output volume.
		queriesQ := Halfspaces(cfg.Seed+110, queries, d)
		for qi := range queriesQ {
			dots := make([]float64, len(items))
			for i, it := range items {
				dots[i] = it.Value.Dot(queriesQ[qi].A)
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(dots)))
			queriesQ[qi].C = dots[4*k-1]
		}
		var priIOs, topIOs, emIOs int64
		for _, q := range queriesQ {
			priIOs += coldIOs(trPri, func() {
				kd.ReportAbove(q, math.Inf(-1), func(core.Item[halfspace.PtN]) bool { return true })
			})
			topIOs += coldIOs(trTop, func() { wc.TopK(q, k) })
			emIOs += coldIOs(trEM, func() {
				em55.ReportAbove(q, math.Inf(-1), func(core.Item[halfspace.PtN]) bool { return true })
			})
		}
		qPri := float64(priIOs) / float64(queries)
		qTop := float64(topIOs) / float64(queries)
		t.row(n, qPri, qTop, qTop/qPri, float64(emIOs)/float64(queries), em55.Levels())
	}
	t.write(w)
	note(w, "paper (Thm 3, bullets 2–3 via Thm 1's remark): with Q_pri = (n/B)^(1-1/⌊d/2⌋) the reduction loses no asymptotic factor — the ratio column should flatten rather than grow with n. The last two columns run the paper's own §5.5 EM construction (fanout-f weight B-tree over the halfspace black box, O(1) levels) on the same queries (d=%d, k=%d, ε=0.5).", d, k)
	return nil
}

// E12 — Corollary 1 (circular reporting via lifting): the lifted top-k
// structure should scale like the (d+1)-dimensional halfspace structure.
func runE12(w io.Writer, cfg Config) error {
	const d = 2
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	queries := 20
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 12}
		queries = 8
	}
	const k = 10
	t := newTable("n", "query I/Os", "µs/query", "growth vs prev")
	prev := 0.0
	for _, n := range ns {
		items := GaussianND(cfg.Seed+12, n, d)
		lifted := make([]core.Item[halfspace.PtN], len(items))
		for i, it := range items {
			lifted[i] = core.Item[halfspace.PtN]{Value: circular.Lift(it.Value.C), Weight: it.Weight}
		}
		tr := newTrackerB()
		exp, err := core.NewExpected(lifted, circular.Match,
			circular.NewPrioritizedFactory(d, tr),
			circular.NewMaxFactory(d, tr),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: tr})
		if err != nil {
			return err
		}
		var ios int64
		start := time.Now()
		for qi := 0; qi < queries; qi++ {
			center := []float64{float64(qi%7-3) * 4, float64(qi%5-2) * 4}
			ios += coldIOs(tr, func() { exp.TopK(circular.Ball{Center: center, R: 8}, k) })
		}
		el := time.Since(start)
		avg := float64(ios) / float64(queries)
		growth := "-"
		if prev > 0 {
			growth = trimFloat(avg / prev)
		}
		t.row(n, avg, float64(el.Microseconds())/float64(queries), growth)
		prev = avg
	}
	t.write(w)
	note(w, "paper (Cor. 1): the lifted structure inherits the halfspace bounds one dimension up — growth per 4x n should track the lifted kd-tree's sublinear exponent, not 4x (d=%d→%d, k=%d).", d, d+1, k)
	return nil
}
