package bench

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/dynamic"
	"topk/internal/em"
	"topk/internal/interval"
	"topk/internal/rangerep"
	"topk/internal/wrand"
)

// E32 — maintenance policies (internal/dynamic): PolicyBuffered's tiered
// merge schedule vs PolicyLogarithmic's Bentley–Saxe cascade, and the
// bulk-ingest path that both share.
//
// Claim 1 (amortized inserts): the buffered policy's per-insert cost
// must land strictly below the logarithmic model log2(n/B)·Build(n)/n
// at n ≥ 2^17 (ISSUE 9 acceptance), because each item is merged through
// O(log_f(n/B)) tier cascades of fanout f=4 instead of O(log2(n/B))
// binary carries.
//
// Claim 2 (no global-rebuild spikes): the buffered policy never runs a
// global rebuild — its worst single insert is a weight-balanced partial
// rebuild of one ladder neighborhood, so the "max single-op I/Os"
// column stays far below the logarithmic policy's top-level cascade and
// the "global rebuilds" column stays zero.
//
// Claim 3 (bulk ingest): InsertBatch of m items pays sorted-merge cost,
// not m separate tail cascades, so its total is below m× the amortized
// single-insert cost under either policy.

// RangePoints returns n distinct 1-D positions in [0, 100) with distinct
// weights, the range problem's item workload.
func RangePoints(seed uint64, n int) []core.Item[float64] {
	g := wrand.New(seed)
	ws := g.UniqueFloats(n, 1e9)
	items := make([]core.Item[float64], n)
	for i := range items {
		items[i] = core.Item[float64]{Value: g.Float64() * 100, Weight: ws[i]}
	}
	return items
}

// rangeOverlayBuilder constructs WorstCase 1-D range substructures on
// tr, mirroring overlayBuilder for the second acceptance problem.
func rangeOverlayBuilder(tr *em.Tracker, seed uint64) dynamic.Builder[rangerep.Span, float64] {
	return func(items []core.Item[float64]) (core.TopK[rangerep.Span, float64], error) {
		return core.NewWorstCase(items, rangerep.Match,
			rangerep.NewPrioritizedFactory(tr),
			core.WorstCaseOptions{B: benchB, Lambda: rangerep.Lambda, Seed: seed, Tracker: tr})
	}
}

// policyRow is one measured (problem, policy, n) cell of the sweep.
type policyRow struct {
	buildIOs  int64   // one-shot static Build(n)
	amort     float64 // per-insert I/Os over the second half
	maxOp     int64   // worst single insert (spike detector)
	batchIOs  int64   // one InsertBatch of the same second half
	singleIOs int64   // total for the single-insert run
	stats     dynamic.Stats
}

// runPolicySweep measures one (problem, policy, n) cell: static build
// cost, then two identical half-seeded overlays — one paying for the
// second half item by item, one through a single InsertBatch.
func runPolicySweep[Q, V any](
	items []core.Item[V],
	match core.MatchFunc[Q, V],
	build func(tr *em.Tracker) dynamic.Builder[Q, V],
	pol dynamic.MaintenancePolicy,
) (policyRow, error) {
	var row policyRow

	trS := newTrackerB()
	if _, err := build(trS)(items); err != nil {
		return row, err
	}
	row.buildIOs = trS.Stats().IOs()

	half := len(items) / 2
	tr := newTrackerB()
	ov, err := dynamic.New(items[:half], match, build(tr),
		dynamic.Options{Tracker: tr, TailCap: benchB, Policy: pol})
	if err != nil {
		return row, err
	}
	tr.ResetCounters()
	var prev int64
	for _, it := range items[half:] {
		if err := ov.Insert(it); err != nil {
			return row, err
		}
		cur := tr.Stats().IOs()
		if d := cur - prev; d > row.maxOp {
			row.maxOp = d
		}
		prev = cur
	}
	row.singleIOs = tr.Stats().IOs()
	row.amort = float64(row.singleIOs) / float64(len(items)-half)
	row.stats = ov.Stats()

	trB := newTrackerB()
	ovB, err := dynamic.New(items[:half], match, build(trB),
		dynamic.Options{Tracker: trB, TailCap: benchB, Policy: pol})
	if err != nil {
		return row, err
	}
	trB.ResetCounters()
	if err := ovB.InsertBatch(items[half:]); err != nil {
		return row, err
	}
	row.batchIOs = trB.Stats().IOs()
	return row, nil
}

func runE32(w io.Writer, cfg Config) error {
	ns := []int{1 << 12, 1 << 14, 1 << 16, 1 << 17}
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 11, 1 << 12}
	}
	policies := []dynamic.MaintenancePolicy{dynamic.PolicyLogarithmic, dynamic.PolicyBuffered}

	// measure dispatches one cell by problem name so the two generic
	// instantiations stay behind a single loop.
	measure := func(problem string, pol dynamic.MaintenancePolicy, n int) (policyRow, error) {
		switch problem {
		case "interval":
			return runPolicySweep(Intervals(cfg.Seed+32, n, 15),
				interval.Match[interval.Interval],
				func(tr *em.Tracker) dynamic.Builder[float64, interval.Interval] {
					return overlayBuilder(tr, cfg.Seed)
				}, pol)
		case "range":
			return runPolicySweep(RangePoints(cfg.Seed+320, n),
				rangerep.Match,
				func(tr *em.Tracker) dynamic.Builder[rangerep.Span, float64] {
					return rangeOverlayBuilder(tr, cfg.Seed)
				}, pol)
		}
		return policyRow{}, fmt.Errorf("E32: unknown problem %q", problem)
	}

	for _, problem := range []string{"interval", "range"} {
		fmt.Fprintf(w, "%s stabbing, amortized inserts by maintenance policy:\n", problem)
		t := newTable("n", "policy", "amortized insert I/Os", "model log2(n/B)·build/n", "ratio", "max single-op I/Os", "global rebuilds", "partial rebuilds")
		for _, n := range ns {
			for _, pol := range policies {
				row, err := measure(problem, pol, n)
				if err != nil {
					return err
				}
				model := math.Log2(float64(n)/benchB) * float64(row.buildIOs) / float64(n)
				t.row(n, pol.ID(), row.amort, model, row.amort/model,
					row.maxOp, row.stats.Rebuilds, row.stats.PartialRebuilds)
			}
		}
		t.write(w)
		fmt.Fprintln(w)
	}
	note(w, "acceptance: buffered ratio < 1 at n ≥ 2^17 for both problems, and buffered global rebuilds stay 0 — its worst op is a partial rebuild, so the max-op column has no full-cascade spike.")
	fmt.Fprintln(w)

	// Bulk ingest: one InsertBatch of the second half vs the same items
	// through single Inserts, per policy, at the largest sweep size.
	nB := ns[len(ns)-1]
	t2 := newTable("problem", "policy", "m", "batch I/Os", "m× single I/Os", "batch/singles")
	for _, problem := range []string{"interval", "range"} {
		for _, pol := range policies {
			row, err := measure(problem, pol, nB)
			if err != nil {
				return err
			}
			m := nB - nB/2
			t2.row(problem, pol.ID(), m, row.batchIOs, row.singleIOs,
				float64(row.batchIOs)/float64(row.singleIOs))
		}
	}
	t2.write(w)
	note(w, "InsertBatch sorts once and merges whole runs, so its total stays below m single Inserts (ratio < 1) under both policies.")
	return nil
}
