package bench

import (
	"io"
	"math"
	"sort"

	"topk/internal/core"
	"topk/internal/interval"
	"topk/internal/wrand"
)

// E1 — Lemma 1 (rank sampling). For every parameter cell satisfying the
// lemma's conditions, the measured probability that either bullet fails
// must be at most δ.
func runE1(w io.Writer, cfg Config) error {
	g := wrand.New(cfg.Seed + 1)
	trials := 20000
	if cfg.Quick {
		trials = 2000
	}
	cells := []core.Lemma1Params{
		{N: 100000, K: 500, P: 0.05, Delta: 0.10},
		{N: 100000, K: 1000, P: 0.03, Delta: 0.10},
		{N: 200000, K: 5000, P: 0.01, Delta: 0.05},
		{N: 50000, K: 2500, P: 0.01, Delta: 0.30},
		{N: 400000, K: 20000, P: 0.002, Delta: 0.30},
	}
	t := newTable("n", "k", "p", "δ (bound)", "measured failure", "within bound")
	for _, lp := range cells {
		if !lp.Applicable() {
			t.row(lp.N, lp.K, lp.P, lp.Delta, "-", "cell violates lemma conditions")
			continue
		}
		fail := 0
		for i := 0; i < trials; i++ {
			if !core.Lemma1Trial(g, lp) {
				fail++
			}
		}
		rate := float64(fail) / float64(trials)
		t.row(lp.N, lp.K, lp.P, lp.Delta, rate, yes(rate <= lp.Delta))
	}
	t.write(w)
	note(w, "paper: both bullets hold w.p. ≥ 1−δ when kp ≥ 3ln(3/δ) and n ≥ 4k (%d trials/cell).", trials)
	return nil
}

// E2 — Lemma 3. The largest element of a (1/K)-sample has rank in (K, 4K]
// with probability at least 0.09.
func runE2(w io.Writer, cfg Config) error {
	g := wrand.New(cfg.Seed + 2)
	trials := 50000
	if cfg.Quick {
		trials = 5000
	}
	t := newTable("K", "n", "measured success", "≥ 0.09")
	for _, k := range []float64{2, 8, 64, 512, 4096} {
		n := int(16 * k)
		succ := 0
		for i := 0; i < trials; i++ {
			if core.Lemma3Trial(g, n, k) {
				succ++
			}
		}
		rate := float64(succ) / float64(trials)
		t.row(k, n, rate, yes(rate >= 0.09))
	}
	t.write(w)
	note(w, "paper: success probability ≥ 0.09 for K ≥ 2, n ≥ 4K; the measured rate (~0.2–0.3) shows the bound is conservative.")
	return nil
}

// E3 — Lemma 2 (top-k core-set): size ≤ 12λ(n/K)ln n, and for queries
// with |q(D)| ≥ 4K the rank-⌈8λ ln n⌉ element of q(R) has rank within
// [K, 4K] in q(D).
func runE3(w io.Writer, cfg Config) error {
	ns := []int{1 << 14, 1 << 16, 1 << 18}
	queries := 200
	if cfg.Quick {
		ns = []int{1 << 12, 1 << 14}
		queries = 50
	}
	t := newTable("n", "K", "|R|", "bound 12λ(n/K)ln n", "large queries", "rank in [K,4K]")
	for _, n := range ns {
		g := wrand.New(cfg.Seed + 3)
		items := Intervals(cfg.Seed+3, n, 20)
		k := float64(n) / 64
		cp := core.CoreSetParams{N: n, K: k, Lambda: interval.Lambda}
		r := core.CoreSet(g, items, cp)
		pr := cp.PivotRank()

		tested, good := 0, 0
		for trial := 0; trial < queries; trial++ {
			q := g.Float64() * 100
			qd := matchingWeightsDesc(items, q)
			if float64(len(qd)) < 4*k {
				continue
			}
			tested++
			qr := matchingWeightsDesc(r, q)
			if len(qr) < pr {
				continue
			}
			pivot := qr[pr-1]
			rank := rankOf(qd, pivot)
			if float64(rank) >= k && float64(rank) <= 4*k {
				good++
			}
		}
		frac := "n/a"
		if tested > 0 {
			frac = trimFloat(float64(good) / float64(tested))
		}
		t.row(n, k, len(r), cp.MaxSize(), tested, frac)
	}
	t.write(w)
	note(w, "paper: a core-set with both properties exists w.p. > 0 per draw; per-query failure probability is ≤ 1/(2n^λ), so the rank column should be ~1.0.")
	return nil
}

func matchingWeightsDesc(items []core.Item[interval.Interval], q float64) []float64 {
	var ws []float64
	for _, it := range items {
		if it.Value.Contains(q) {
			ws = append(ws, it.Weight)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	return ws
}

func rankOf(desc []float64, w float64) int {
	for i, v := range desc {
		if v == w {
			return i + 1
		}
	}
	return math.MaxInt
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
