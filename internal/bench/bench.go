// Package bench implements the experiment harness: the paper has no
// experimental evaluation (it is a PODS theory paper), so every theorem
// and lemma becomes an experiment that measures the claimed complexity
// shape. DESIGN.md §5 is the authoritative index (E1–E28); each experiment
// here regenerates one row-set recorded in EXPERIMENTS.md.
//
// Experiments print self-describing tables to an io.Writer and are shared
// between cmd/topk-bench (full sweeps) and the package benchmarks /
// harness tests (Quick mode).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives every workload and structure; fixed seed ⇒ identical
	// tables.
	Seed uint64
	// Quick shrinks sweeps by ~8x for use in tests.
	Quick bool
	// Disk adds the disk-backed real-I/O rows (the E30 family) to the
	// regression snapshot; experiments ignore it.
	Disk bool
}

// Runner executes one experiment, writing its table to w.
type Runner func(w io.Writer, cfg Config) error

var experiments = map[string]struct {
	title string
	run   Runner
}{
	"E1":  {"Lemma 1: rank sampling failure rate vs δ", runE1},
	"E2":  {"Lemma 3: (1/K)-sample max rank, success ≥ 0.09", runE2},
	"E3":  {"Lemma 2: top-k core-set size and rank guarantee", runE3},
	"E4":  {"Theorem 1 on interval stabbing: O(log_B n) query gap, O(1) space gap", runE4},
	"E5":  {"Theorem 2 on interval stabbing: no degradation", runE5},
	"E6":  {"Reductions face-off: binary-search baseline vs Thm 1 vs Thm 2 vs scan", runE6},
	"E7":  {"Theorem 4: top-k interval stabbing query/update costs", runE7},
	"E8":  {"Theorem 5: top-k point enclosure query scaling", runE8},
	"E9":  {"Theorem 6: top-k 3D dominance query scaling", runE9},
	"E10": {"Theorem 3 (d=2): top-k halfplane query scaling", runE10},
	"E11": {"Theorem 3 (d≥4): no-slowdown regime for polynomial Q_pri", runE11},
	"E12": {"Corollary 1: circular reporting via lifting", runE12},
	"E13": {"Theorem 2 updates: O(1) expected copies, O(U_pri+U_max) cost", runE13},
	"E14": {"Theorem 2 bootstrapping: ladder space ≪ max-structure space", runE14},
	"E15": {"Theorem 1 remark: query ratio flattens as Q_pri hardens", runE15},
	"E16": {"Theorem 2 round geometry: expected O(1) rounds", runE16},
	"E17": {"EM memory semantics: warm-cache queries get cheaper as M grows", runE17},
	"E18": {"RAM-model wall-clock scaling across all six problems", runE18},
	"E19": {"Ablation: fractional cascading on the §5.2 stabbing-max path", runE19},
	"E20": {"Ablation: Theorem 2's ladder growth rate σ", runE20},
	"E21": {"Ablation: Theorem 1's top-f constant (FScale)", runE21},
	"E22": {"Ablation: Corollary 1's lifting trick vs a direct ball predicate", runE22},
	"E23": {"§1.2 reverse reduction: prioritized reporting from a top-k structure", runE23},
	"E24": {"Concurrent query serving: batch throughput vs workers, I/O invariance", runE24},
	"E25": {"Dynamization overlay: amortized insert bound, update/query mix sweep", runE25},
	"E26": {"Lemma 3 via tracing: T2 rounds-per-query tail vs the geometric 0.91^(r-1) bound", runE26},
	"E27": {"Registry sweep: every problem × reduction through the type-erased Served surface", runE27},
	"E28": {"Sharded serving: build time, batch throughput, and I/O cost vs shard count", runE28},
	"E29": {"Warm starts: snapshot restore I/Os vs rebuild I/Os across the registry", runE29},
	"E30": {"Real I/O: disk-backed store preads/pwrites vs simulated I/Os across the registry", runE30},
	"E32": {"Maintenance policies: buffered vs logarithmic amortized inserts, bulk ingest", runE32},
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return ids
}

// Title returns an experiment's one-line description.
func Title(id string) (string, bool) {
	e, ok := experiments[id]
	return e.title, ok
}

// Run executes experiment id.
func Run(id string, w io.Writer, cfg Config) error {
	e, ok := experiments[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(IDs(), " "))
	}
	fmt.Fprintf(w, "## %s — %s\n\n", id, e.title)
	return e.run(w, cfg)
}

// table accumulates aligned rows and renders a markdown table.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) row(cells ...any) {
	r := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			r[i] = v
		case float64:
			r[i] = trimFloat(v)
		case int:
			r[i] = fmt.Sprintf("%d", v)
		case int64:
			r[i] = fmt.Sprintf("%d", v)
		default:
			r[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, r)
}

func trimFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// note writes a commentary line under a table.
func note(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, "> "+format+"\n", args...)
}
