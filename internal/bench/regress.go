package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"topk"
)

// This file emits the benchmark-regression snapshot the CI gate diffs
// across PRs (cmd/topk-bench -io-json, compared by cmd/benchdiff
// against the newest checked-in BENCH_*.json). Two row families:
//
//   - io: total simulated I/Os for a pinned query workload, for every
//     problem × reduction and for sharded builds at several widths.
//     Per-query EM stats come from cold-cache tracker views, so these
//     are exact deterministic functions of (workload, seed) — any drift
//     is a real cost change, and the gate fails on unexplained
//     increases.
//   - io, "update/..." keys: the pinned update workload — the same
//     fresh batch paid for through single Inserts and through one
//     InsertBatch — on overlay builds under each maintenance policy, so
//     benchdiff gates the amortized update cost of both policies and of
//     the bulk-ingest path.
//   - io, "disk/..." keys (only with Config.Disk, i.e. topk-bench
//     -disk): the same pinned workload rebuilt WithDiskStore, with IOs
//     counting the store's *physical* operations (preads + pwrites over
//     build and queries). DESIGN.md §13 makes physical traffic mirror
//     the logical trace one-for-one, so these rows are just as
//     deterministic as the simulated ones and gate real-I/O drift.
//   - io, "cluster/r{R}/..." keys: the same pinned workload answered
//     through the internal/cluster coordinator (hedged fan-out over
//     snapshot-restored replica nodes, Lemma 2 merge) at replication 1
//     and 2, gating the cost of the cluster merge path.
//   - wall: ns/op for a few hot paths via testing.Benchmark. Wall time
//     is machine-dependent, so the gate only reports these deltas.
//
// The workload shape is pinned (not scaled by -quick): comparing
// snapshots only makes sense when both sides measured the same thing.

const (
	// RegressSchema versions the JSON layout; bump on incompatible change.
	RegressSchema = "topk-bench-io/v1"

	regressN  = 4096
	regressNQ = 48
	regressK  = 16
)

// regressShardWidths are the sharded-build widths measured alongside
// the single-engine rows.
var regressShardWidths = []int{2, 8}

// IORow is one deterministic I/O measurement: the workload's total
// simulated cost on one problem/reduction/shard-width cell.
type IORow struct {
	Key   string `json:"key"`   // "problem/Reduction" or "problem/Reduction/shards=S"
	IOs   int64  `json:"ios"`   // reads+writes over the whole query set
	Hits  int64  `json:"hits"`  // cache hits (free in the EM model)
	Items int64  `json:"items"` // total items returned, a result-shape checksum
}

// WallRow is one wall-clock measurement; ns/op varies by machine, so
// the gate treats these as report-only.
type WallRow struct {
	Key  string `json:"key"`
	NsOp int64  `json:"ns_op"`
}

// RegressReport is the machine-readable snapshot checked in as
// BENCH_*.json and compared by cmd/benchdiff.
type RegressReport struct {
	Schema string    `json:"schema"`
	Seed   uint64    `json:"seed"`
	N      int       `json:"n"`
	NQ     int       `json:"nq"`
	K      int       `json:"k"`
	IO     []IORow   `json:"io"`
	Wall   []WallRow `json:"wall"`
}

// Regress measures the pinned workload and returns the report.
func Regress(cfg Config) (*RegressReport, error) {
	rep := &RegressReport{
		Schema: RegressSchema, Seed: cfg.Seed,
		N: regressN, NQ: regressNQ, K: regressK,
	}

	measure := func(key string, ix topk.Served) {
		qs := ix.GenQueries(regressNQ, cfg.Seed+270)
		res := ix.QueryBatch(qs, regressK, 0)
		row := IORow{Key: key}
		for _, r := range res {
			row.IOs += r.Stats.IOs()
			row.Hits += r.Stats.Hits
			row.Items += int64(len(r.Items))
		}
		rep.IO = append(rep.IO, row)
	}

	for _, spec := range topk.RegisteredProblems() {
		for _, r := range topk.AllReductions() {
			ix, err := spec.Build(regressN, cfg.Seed+27, topk.WithReduction(r), topk.WithSeed(cfg.Seed))
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", spec.Name, r, err)
			}
			measure(fmt.Sprintf("%s/%v", spec.Name, r), ix)
		}
		for _, shards := range regressShardWidths {
			ix, err := spec.BuildSharded(regressN, shards, cfg.Seed+27, topk.WithSeed(cfg.Seed))
			if err != nil {
				return nil, fmt.Errorf("%s/shards=%d: %w", spec.Name, shards, err)
			}
			measure(fmt.Sprintf("%s/%v/shards=%d", spec.Name, topk.Expected, shards), ix)
		}
	}

	if err := regressUpdates(cfg, rep); err != nil {
		return nil, err
	}

	if err := regressCluster(cfg, rep); err != nil {
		return nil, err
	}

	if cfg.Disk {
		if err := regressDisk(cfg, rep); err != nil {
			return nil, err
		}
	}

	for _, w := range wallBenchmarks(cfg) {
		r := testing.Benchmark(w.fn)
		rep.Wall = append(rep.Wall, WallRow{Key: w.key, NsOp: r.NsPerOp()})
	}
	return rep, nil
}

// regressUpdateOps is the pinned update count behind the update rows.
const regressUpdateOps = 1024

// regressUpdates appends the update-path row family: the same pinned
// batch of fresh items paid for through single Inserts and through one
// InsertBatch, on overlay builds under each maintenance policy. The
// gate's standing expectation (asserted by the tier-1 suite as well) is
// that every ".../ingest" row stays below its ".../insert" sibling:
// bulk ingest costs one sorted merge, not per-item tail cascades.
func regressUpdates(cfg Config, rep *RegressReport) error {
	for _, name := range []string{"interval", "range"} {
		spec, ok := topk.ProblemByName(name)
		if !ok {
			return fmt.Errorf("update/%s: problem not registered", name)
		}
		for _, pol := range []topk.MaintenancePolicy{topk.PolicyLogarithmic, topk.PolicyBuffered} {
			// The small block size forces the update workload through many
			// tail flushes and ladder cascades; with the default block size
			// the whole batch would fit in the overlay tail and both paths
			// would measure nothing but dup checks.
			build := func() (topk.Served, error) {
				return spec.Build(regressN, cfg.Seed+27, topk.WithSeed(cfg.Seed),
					topk.WithUpdates(), topk.WithReduction(topk.WorstCase),
					topk.WithBlockSize(16), topk.WithMaintenancePolicy(pol))
			}

			single, err := build()
			if err != nil {
				return fmt.Errorf("update/%v/%s: %w", pol, name, err)
			}
			single.ResetStats()
			for i := 0; i < regressUpdateOps; i++ {
				if _, err := single.InsertFresh(cfg.Seed + 321 + uint64(i)); err != nil {
					return fmt.Errorf("update/%v/%s: insert %d: %w", pol, name, i, err)
				}
			}
			st := single.Stats()
			rep.IO = append(rep.IO, IORow{
				Key: fmt.Sprintf("update/%v/%s/insert", pol, name),
				IOs: st.IOs(), Hits: st.Hits, Items: regressUpdateOps,
			})

			batch, err := build()
			if err != nil {
				return fmt.Errorf("update/%v/%s: %w", pol, name, err)
			}
			items := make([]any, regressUpdateOps)
			for i := range items {
				w := 2e9 + float64(i)
				var raw string
				if name == "interval" {
					lo := float64(i%41) * 2.2
					raw = fmt.Sprintf(`{"lo": %g, "hi": %g, "weight": %g}`, lo, lo+9, w)
				} else {
					raw = fmt.Sprintf(`{"pos": %g, "weight": %g}`, float64(i%53)*1.8, w)
				}
				it, err := batch.DecodeItem(json.RawMessage(raw))
				if err != nil {
					return fmt.Errorf("update/%v/%s: decode %s: %w", pol, name, raw, err)
				}
				items[i] = it
			}
			batch.ResetStats()
			if err := batch.InsertBatch(items); err != nil {
				return fmt.Errorf("update/%v/%s: ingest: %w", pol, name, err)
			}
			st = batch.Stats()
			rep.IO = append(rep.IO, IORow{
				Key: fmt.Sprintf("update/%v/%s/ingest", pol, name),
				IOs: st.IOs(), Hits: st.Hits, Items: regressUpdateOps,
			})
		}
	}
	return nil
}

// regressDisk appends the real-I/O row family: every problem ×
// reduction rebuilt on the disk-backed store, with IOs counting
// physical syscalls (StoreStats) instead of simulated charges. Build
// writes and query reads both have exact physical counterparts, so the
// totals are deterministic functions of (workload, seed) and diff
// clean across machines.
func regressDisk(cfg Config, rep *RegressReport) error {
	root, err := os.MkdirTemp("", "topk-regress-disk-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	for _, spec := range topk.RegisteredProblems() {
		for _, r := range topk.AllReductions() {
			dir, err := os.MkdirTemp(root, "cell-*")
			if err != nil {
				return err
			}
			ix, err := spec.Build(regressN, cfg.Seed+27,
				topk.WithReduction(r), topk.WithSeed(cfg.Seed), topk.WithDiskStore(dir))
			if err != nil {
				return fmt.Errorf("disk/%s/%v: %w", spec.Name, r, err)
			}
			qs := ix.GenQueries(regressNQ, cfg.Seed+270)
			res := ix.QueryBatch(qs, regressK, 0)
			if err := ix.StoreErr(); err != nil {
				return fmt.Errorf("disk/%s/%v: store error: %w", spec.Name, r, err)
			}
			row := IORow{Key: fmt.Sprintf("disk/%s/%v", spec.Name, r)}
			ss := ix.StoreStats()
			row.IOs = ss.Reads + ss.Writes
			for _, b := range res {
				row.Hits += b.Stats.Hits
				row.Items += int64(len(b.Items))
			}
			rep.IO = append(rep.IO, row)
			if err := ix.Close(); err != nil {
				return fmt.Errorf("disk/%s/%v: close: %w", spec.Name, r, err)
			}
		}
	}
	return nil
}

// WriteRegressJSON runs Regress and writes the report as indented JSON,
// the format of the checked-in BENCH_*.json baselines.
func WriteRegressJSON(w io.Writer, cfg Config) error {
	rep, err := Regress(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

type wallBench struct {
	key string
	fn  func(b *testing.B)
}

// wallBenchmarks are the hot paths tracked for wall-clock drift: the
// two reduction query paths, the concurrent batch path, and the sharded
// fan-out/merge path.
func wallBenchmarks(cfg Config) []wallBench {
	spec, _ := topk.ProblemByName("interval")
	dspec, _ := topk.ProblemByName("dominance")
	topkLoop := func(ix topk.Served) func(b *testing.B) {
		return func(b *testing.B) {
			qs := ix.GenQueries(64, cfg.Seed+271)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.TopK(qs[i%len(qs)], regressK)
			}
		}
	}
	mk := func(build func() (topk.Served, error)) topk.Served {
		ix, err := build()
		if err != nil {
			panic(err)
		}
		return ix
	}
	return []wallBench{
		{"wall/interval/Expected/topk", topkLoop(mk(func() (topk.Served, error) {
			return spec.Build(regressN, cfg.Seed+27, topk.WithSeed(cfg.Seed))
		}))},
		{"wall/interval/WorstCase/topk", topkLoop(mk(func() (topk.Served, error) {
			return spec.Build(regressN, cfg.Seed+27, topk.WithReduction(topk.WorstCase), topk.WithSeed(cfg.Seed))
		}))},
		{"wall/dominance/Expected/topk", topkLoop(mk(func() (topk.Served, error) {
			return dspec.Build(regressN, cfg.Seed+27, topk.WithSeed(cfg.Seed))
		}))},
		{"wall/interval/Expected/shards=4/topk", topkLoop(mk(func() (topk.Served, error) {
			return spec.BuildSharded(regressN, 4, cfg.Seed+27, topk.WithSeed(cfg.Seed))
		}))},
		{"wall/interval/Expected/batch64", func(b *testing.B) {
			ix := mk(func() (topk.Served, error) {
				return spec.Build(regressN, cfg.Seed+27, topk.WithSeed(cfg.Seed))
			})
			qs := ix.GenQueries(64, cfg.Seed+271)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.QueryBatch(qs, regressK, 0)
			}
		}},
	}
}
