package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"topk"
	"topk/internal/cluster"
)

// regressClusterShards/Nodes pin the cluster geometry measured by the
// cluster row family: a 3-shard snapshot served by 3 in-process nodes.
const (
	regressClusterShards = 3
	regressClusterNodes  = 3
)

// regressCluster appends the cluster row family: for every problem, the
// pinned query workload answered through the coordinator's hedged
// fan-out/merge path at R=1 and R=2, over nodes restored from a
// partitioned snapshot (the same bootstrap path topk-node uses). The
// per-query shard costs are cold-cache EM stats, and replica
// interchangeability makes the winner of any hedged race report
// identical numbers — so these rows are as deterministic as the
// single-process ones, and the gate catches cost drift in the
// cluster merge path itself.
func regressCluster(cfg Config, rep *RegressReport) error {
	root, err := os.MkdirTemp("", "topk-regress-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	for _, spec := range topk.RegisteredProblems() {
		dir, err := os.MkdirTemp(root, "snap-*")
		if err != nil {
			return err
		}
		ix, err := spec.BuildSharded(regressN, regressClusterShards, cfg.Seed+27, topk.WithSeed(cfg.Seed))
		if err != nil {
			return fmt.Errorf("cluster/%s: %w", spec.Name, err)
		}
		if err := ix.Snapshot(dir); err != nil {
			return fmt.Errorf("cluster/%s: snapshot: %w", spec.Name, err)
		}
		queries := spec.WireQueries(regressNQ, cfg.Seed+270)

		for _, r := range []int{1, 2} {
			ids := make([]string, regressClusterNodes)
			for i := range ids {
				ids[i] = fmt.Sprintf("n%d", i+1)
			}
			rcfg := cluster.RemoteConfig{
				Problem: spec.Name, Shards: regressClusterShards,
				Replication: r, Nodes: ids,
			}
			reps := make([]cluster.Replica, len(ids))
			for i, id := range ids {
				shards, err := cluster.LoadShards(dir, rcfg.OwnedShards(id))
				if err != nil {
					return fmt.Errorf("cluster/r%d/%s: %w", r, spec.Name, err)
				}
				reps[i] = cluster.NewNode(id, spec.Name, shards)
			}
			co, err := cluster.New(cluster.Config{
				Problem: spec.Name, Shards: regressClusterShards,
				Replication: r, HedgeDelay: time.Second,
			}, reps)
			if err != nil {
				return fmt.Errorf("cluster/r%d/%s: %w", r, spec.Name, err)
			}
			res, err := co.Query(context.Background(), queries, regressK, cluster.QueryOptions{})
			if err != nil {
				return fmt.Errorf("cluster/r%d/%s: query: %w", r, spec.Name, err)
			}
			row := IORow{Key: fmt.Sprintf("cluster/r%d/%s", r, spec.Name)}
			for _, q := range res {
				if q.Outcome != "ok" {
					return fmt.Errorf("cluster/r%d/%s: outcome %s (%s)", r, spec.Name, q.Outcome, q.Error)
				}
				row.IOs += q.IOs
				row.Hits += q.Hits
				row.Items += int64(len(q.Items))
			}
			rep.IO = append(rep.IO, row)
		}
	}
	return nil
}
