package bench

import (
	"io"

	"topk"
)

// E27 — registry sweep. The problem registry (topk.RegisteredProblems)
// type-erases every shipped problem behind one Served interface; this
// experiment drives the whole catalogue through it — every problem ×
// every reduction from a single loop — and cross-checks each answer
// against the in-memory oracle. It is the benchmark-side proof of the
// engine refactor's claim: adding a ninth problem to the registry adds a
// row-set here with no bench changes.
func runE27(w io.Writer, cfg Config) error {
	n := 4096
	nq := 48
	if cfg.Quick {
		n = 512
		nq = 12
	}
	const k = 16

	t := newTable("problem", "reduction", "ios/query", "hits/query", "items/query", "oracle ok")
	for _, spec := range topk.RegisteredProblems() {
		for _, r := range topk.AllReductions() {
			ix, err := spec.Build(n, cfg.Seed+27, topk.WithReduction(r), topk.WithSeed(cfg.Seed))
			if err != nil {
				return err
			}
			qs := ix.GenQueries(nq, cfg.Seed+270)
			res := ix.QueryBatch(qs, k, 0)
			var ios, hits, items int64
			ok := true
			for i, q := range qs {
				ios += res[i].Stats.IOs()
				hits += res[i].Stats.Hits
				items += int64(len(res[i].Items))
				oracle := ix.Oracle(q)
				if len(oracle) > k {
					oracle = oracle[:k]
				}
				if len(res[i].Items) != len(oracle) {
					ok = false
					continue
				}
				for j := range oracle {
					if res[i].Items[j].Weight != oracle[j].Weight {
						ok = false
					}
				}
			}
			t.row(spec.Name, r.String(),
				float64(ios)/float64(nq),
				float64(hits)/float64(nq),
				float64(items)/float64(nq),
				boolCell(ok))
		}
	}
	t.write(w)
	note(w, "n=%d items per problem, %d queries, k=%d, registry workloads. Every row is produced by the same generic loop over topk.RegisteredProblems(); the oracle column re-answers each query by full scan outside the EM model. FullScan rows are the oracle answering itself and double as the baseline I/O ceiling.", n, nq, k)
	return nil
}
