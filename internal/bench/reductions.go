package bench

import (
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/interval"
)

const benchB = 64 // block size used across reduction experiments

func newTrackerB() *em.Tracker {
	return em.NewTracker(em.Config{B: benchB, MemBlocks: 8})
}

// coldIOs measures the I/O cost of fn from a cold cache.
func coldIOs(tr *em.Tracker, fn func()) int64 {
	tr.DropCache()
	tr.ResetCounters()
	fn()
	return tr.Stats().IOs()
}

// ivTopKOracle returns the k-th weight of the true top-k (or -Inf when
// fewer than k intervals match), used to issue "fair" prioritized queries
// that emit exactly the top-k set.
func ivTopKOracle(items []core.Item[interval.Interval], q float64, k int) float64 {
	col := make([]float64, 0, k+1)
	for _, it := range items {
		if it.Value.Contains(q) {
			col = append(col, it.Weight)
		}
	}
	if len(col) < k {
		return math.Inf(-1)
	}
	top := core.TopKOf(wrapWeights(col), k)
	return top[len(top)-1].Weight
}

func wrapWeights(ws []float64) []core.Item[struct{}] {
	out := make([]core.Item[struct{}], len(ws))
	for i, w := range ws {
		out[i].Weight = w
	}
	return out
}

// E4 — Theorem 1 on interval stabbing. Claim: S_top = O(S_pri) and
// Q_top ≤ O(Q_pri · log_B n); the ratio column divided by log_B n should
// stay bounded as n grows.
func runE4(w io.Writer, cfg Config) error {
	ns := []int{1 << 13, 1 << 15, 1 << 17}
	queries := 30
	if cfg.Quick {
		ns = []int{1 << 11, 1 << 13}
		queries = 10
	}
	const k = 16
	t := newTable("n", "log_B n", "levels h", "Q_pri I/Os", "Q_top I/Os", "ratio", "ratio/h", "S_pri blk", "S_top blk", "space ratio")
	for _, n := range ns {
		items := Intervals(cfg.Seed+4, n, 15)
		qs := StabPoints(cfg.Seed+40, queries)

		trPri := newTrackerB()
		tree, err := interval.NewTree(items, trPri)
		if err != nil {
			return err
		}
		sPri := trPri.Stats().Blocks

		trTop := newTrackerB()
		wc, err := core.NewWorstCase(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](trTop),
			core.WorstCaseOptions{B: benchB, Lambda: interval.Lambda, Seed: cfg.Seed, Tracker: trTop, FScale: 0.25})
		if err != nil {
			return err
		}
		sTop := trTop.Stats().Blocks

		var priIOs, topIOs int64
		for _, q := range qs {
			tau := ivTopKOracle(items, q, k)
			priIOs += coldIOs(trPri, func() { core.CollectAll[float64](tree, q, tau) })
			topIOs += coldIOs(trTop, func() { wc.TopK(q, k) })
		}
		qPri := float64(priIOs) / float64(queries)
		qTop := float64(topIOs) / float64(queries)
		lb := core.LogB(n, benchB)
		h := float64(wc.Stats().ChainLevels)
		// §3.2 predicts c·(h+1)·Q_pri per top-f query for a constant c
		// set by the cost-monitoring caps, so Q_top/(h·Q_pri) is the
		// per-level overhead and should be flat.
		t.row(n, lb, h, qPri, qTop, qTop/qPri, qTop/qPri/h, sPri, sTop, float64(sTop)/float64(sPri))
	}
	t.write(w)
	note(w, "paper: Q_top = O(Q_pri·log_{g√B} n) and S_top = O(S_pri). Since h = Θ(log_{g√B} n) grows in lockstep with log_B n, the paper's ratio bound is equivalent to a constant per-level overhead — the normalized column; it and the space ratio should be flat (k=%d).", k)
	return nil
}

// E5 — Theorem 2 on interval stabbing. Claim: no degradation —
// Q_top = O(Q_pri + Q_max) in expectation; the ratio should be a flat
// constant as n grows.
func runE5(w io.Writer, cfg Config) error {
	ns := []int{1 << 13, 1 << 15, 1 << 17}
	queries := 30
	if cfg.Quick {
		ns = []int{1 << 11, 1 << 13}
		queries = 10
	}
	const k = 16
	t := newTable("n", "Q_pri", "Q_max", "Q_top (Thm 2)", "ratio Q_top/(Q_pri+Q_max)", "S_pri blk", "S_top blk")
	for _, n := range ns {
		items := Intervals(cfg.Seed+5, n, 15)
		qs := StabPoints(cfg.Seed+50, queries)

		trPri := newTrackerB()
		tree, err := interval.NewTree(items, trPri)
		if err != nil {
			return err
		}
		sPri := trPri.Stats().Blocks
		trMax := newTrackerB()
		sm, err := interval.NewStabMax1D(items, trMax)
		if err != nil {
			return err
		}

		trTop := newTrackerB()
		exp, err := core.NewExpected(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](trTop),
			interval.NewMaxFactory[interval.Interval](trTop),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: trTop})
		if err != nil {
			return err
		}
		sTop := trTop.Stats().Blocks

		var priIOs, maxIOs, topIOs int64
		for _, q := range qs {
			tau := ivTopKOracle(items, q, k)
			priIOs += coldIOs(trPri, func() { core.CollectAll[float64](tree, q, tau) })
			maxIOs += coldIOs(trMax, func() { sm.MaxItem(q) })
			topIOs += coldIOs(trTop, func() { exp.TopK(q, k) })
		}
		qPri := float64(priIOs) / float64(queries)
		qMax := float64(maxIOs) / float64(queries)
		qTop := float64(topIOs) / float64(queries)
		t.row(n, qPri, qMax, qTop, qTop/(qPri+qMax), sPri, sTop)
	}
	t.write(w)
	note(w, "paper: expected Q_top = O(Q_pri + Q_max + k/B) with no log factor — the ratio column should stay flat as n grows 16x (k=%d).", k)
	return nil
}

// E6 — face-off across reductions at fixed n, sweeping k. Claim: the
// binary-search baseline pays (k/B)·log n in its output term, Theorem 1
// pays log_B n on the search term only, Theorem 2 pays neither.
func runE6(w io.Writer, cfg Config) error {
	n := 1 << 16
	ks := []int{1, 16, 128, 1024, 8192}
	queries := 20
	if cfg.Quick {
		n = 1 << 13
		ks = []int{1, 16, 256}
		queries = 8
	}
	items := Intervals(cfg.Seed+6, n, 20)
	qs := StabPoints(cfg.Seed+60, queries)

	trBase := newTrackerB()
	base, err := core.NewBaseline(items, interval.NewPrioritizedFactory[interval.Interval](trBase), trBase)
	if err != nil {
		return err
	}
	trWC := newTrackerB()
	wc, err := core.NewWorstCase(items, interval.Match[interval.Interval],
		interval.NewPrioritizedFactory[interval.Interval](trWC),
		core.WorstCaseOptions{B: benchB, Lambda: interval.Lambda, Seed: cfg.Seed, Tracker: trWC, FScale: 0.25})
	if err != nil {
		return err
	}
	trExp := newTrackerB()
	exp, err := core.NewExpected(items, interval.Match[interval.Interval],
		interval.NewPrioritizedFactory[interval.Interval](trExp),
		interval.NewMaxFactory[interval.Interval](trExp),
		core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: trExp})
	if err != nil {
		return err
	}
	trCnt := newTrackerB()
	cb, err := core.NewCountingBaseline(items,
		interval.NewCountingFactory[interval.Interval](trCnt),
		interval.NewPrioritizedFactory[interval.Interval](trCnt), trCnt)
	if err != nil {
		return err
	}
	trScan := newTrackerB()
	scan := core.NewScan(items, interval.Match[interval.Interval], trScan)

	t := newTable("k", "k/B", "bin-search (RJ14)", "count+report (RJ14)", "Thm 1 (worst-case)", "Thm 2 (expected)", "full scan")
	for _, k := range ks {
		var bIOs, cIOs, wIOs, eIOs, sIOs int64
		for _, q := range qs {
			bIOs += coldIOs(trBase, func() { base.TopK(q, k) })
			cIOs += coldIOs(trCnt, func() { cb.TopK(q, k) })
			wIOs += coldIOs(trWC, func() { wc.TopK(q, k) })
			eIOs += coldIOs(trExp, func() { exp.TopK(q, k) })
			sIOs += coldIOs(trScan, func() { scan.TopK(q, k) })
		}
		q := float64(queries)
		t.row(k, float64(k)/benchB, float64(bIOs)/q, float64(cIOs)/q, float64(wIOs)/q, float64(eIOs)/q, float64(sIOs)/q)
	}
	t.write(w)
	note(w, "n = %d, B = %d, log2 n = %.0f: the binary-search baseline's k-term carries the extra log n factor (Eq. 2) while Theorems 1/2 stay flat in k until the k ≥ n/2 scan regime.", n, benchB, math.Log2(float64(n)))
	note(w, "space (blocks): bin-search %d, count+report %d (the §2 reduction's ×log n space blowup: every element lives in ~2·log n node structures), Thm 1 %d, Thm 2 %d.",
		trBase.Stats().Blocks, trCnt.Stats().Blocks, trWC.Stats().Blocks, trExp.Stats().Blocks)
	return nil
}

// E13 — Theorem 2 update costs. Claim: each element has O(1) expected
// copies across the sample ladder, and an update costs
// O(U_pri + U_max) expected I/Os.
func runE13(w io.Writer, cfg Config) error {
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	updates := 2000
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 12}
		updates = 400
	}
	t := newTable("n", "ladder levels", "sampled items", "copies/element", "insert I/Os", "delete I/Os")
	for _, n := range ns {
		items := Intervals(cfg.Seed+13, n, 15)
		tr := newTrackerB()
		exp, err := core.NewDynamicExpected(items, interval.Match[interval.Interval],
			interval.NewDynamicPrioritizedFactory[interval.Interval](tr),
			interval.NewDynamicMaxFactory[interval.Interval](tr),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: tr})
		if err != nil {
			return err
		}
		st := exp.Stats()
		fresh := Intervals(cfg.Seed+131, updates, 15)
		for i := range fresh {
			fresh[i].Weight += 2e9 // disjoint from the build weights
		}
		var insIOs int64
		for _, it := range fresh {
			insIOs += coldIOs(tr, func() { _ = exp.Insert(it) })
		}
		var delIOs int64
		for _, it := range fresh {
			delIOs += coldIOs(tr, func() { exp.DeleteWeight(it.Weight) })
		}
		t.row(n, st.LadderLevels, st.SampledItems,
			float64(st.SampledItems)/float64(n),
			float64(insIOs)/float64(updates),
			float64(delIOs)/float64(updates))
	}
	t.write(w)
	note(w, "paper: Σ 1/K_i = O(1/(B·Q_max)) copies per element and O(U_pri+U_max) expected I/Os per update; both columns should be flat in n.")
	return nil
}

// E14 — Theorem 2 "bootstrapping" (§1.3 remark 2): even when the max
// structure is space-hungry — S_max(m) = Θ((m/B)·log_B m) here, padded
// deliberately — the top-k structure's space stays near S_pri, because
// max structures are only built on geometrically small samples.
func runE14(w io.Writer, cfg Config) error {
	ns := []int{1 << 13, 1 << 15, 1 << 17}
	if cfg.Quick {
		ns = []int{1 << 11, 1 << 13}
	}
	t := newTable("n", "S_pri blk", "padded S_max(n) blk", "S_top blk (Thm 2)", "S_top/S_max(n)")
	for _, n := range ns {
		items := Intervals(cfg.Seed+14, n, 15)

		// Hypothetical: the padded max structure built on ALL of D.
		trHyp := newTrackerB()
		if _, err := paddedMaxFactory(trHyp)(items); err != nil {
			return err
		}
		sMaxFull := trHyp.Stats().Blocks

		trPri := newTrackerB()
		if _, err := interval.NewTree(items, trPri); err != nil {
			return err
		}
		sPri := trPri.Stats().Blocks

		trTop := newTrackerB()
		_, err := core.NewExpected(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](trTop),
			func(sub []core.Item[interval.Interval]) core.Max[float64, interval.Interval] {
				m, err := paddedMaxFactory(trTop)(sub)
				if err != nil {
					panic(err)
				}
				return m
			},
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: trTop})
		if err != nil {
			return err
		}
		sTop := trTop.Stats().Blocks
		t.row(n, sPri, sMaxFull, sTop, float64(sTop)/float64(sMaxFull))
	}
	t.write(w)
	note(w, "paper: S_top = O(S_pri + S_max(6n/(B·Q_pri))) — the reduction never builds the padded max structure on anything near n elements, so S_top can undercut S_max(n).")
	return nil
}

// paddedMaxFactory builds the folklore stabbing-max structure and pads its
// space to Θ((m/B)·log_B m) blocks, modeling a deliberately wasteful max
// structure.
func paddedMaxFactory(tr *em.Tracker) func(items []core.Item[interval.Interval]) (core.Max[float64, interval.Interval], error) {
	return func(items []core.Item[interval.Interval]) (core.Max[float64, interval.Interval], error) {
		s, err := interval.NewStabMax1D(items, tr)
		if err != nil {
			return nil, err
		}
		m := len(items)
		pad := int(float64(m) / benchB * core.LogB(m, benchB))
		if pad > 0 {
			tr.AllocRun(pad)
		}
		return s, nil
	}
}

// E15 — Theorem 1's remark 2: when Q_pri(n) ≥ (n/B)^ε, the reduction's
// query ratio becomes O(1). A synthetic surcharge makes the prioritized
// structure exactly that hard.
func runE15(w io.Writer, cfg Config) error {
	n := 1 << 15
	queries := 15
	if cfg.Quick {
		n = 1 << 12
		queries = 6
	}
	const k = 16
	items := Intervals(cfg.Seed+15, n, 15)
	qs := StabPoints(cfg.Seed+150, queries)
	t := newTable("ε", "Q_pri(n) model", "Q_pri I/Os", "Q_top I/Os", "ratio", "log_B n")
	for _, eps := range []float64{0, 0.25, 0.5, 0.75} {
		hardness := math.Pow(float64(n)/benchB, eps)
		if eps == 0 {
			hardness = 0
		}
		extra := int64(hardness)
		trPri := newTrackerB()
		base, err := interval.NewTree(items, trPri)
		if err != nil {
			return err
		}
		hardTree := &surchargedPri{inner: base, tr: trPri, extraIOs: extra}

		trTop := newTrackerB()
		qpri := func(m int) float64 {
			return core.LogB(m, benchB) + math.Pow(float64(m)/benchB, eps)
		}
		if eps == 0 {
			qpri = func(m int) float64 { return core.LogB(m, benchB) }
		}
		// Pin f to a fixed target so the chain machinery stays in its
		// asymptotic regime for every ε (with the paper's constant,
		// f = 12λB·Q_pri would exceed n once Q_pri is polynomial).
		const targetF = 512
		fscale := targetF / (12 * interval.Lambda * benchB * qpri(n))
		wc, err := core.NewWorstCase(items, interval.Match[interval.Interval],
			func(sub []core.Item[interval.Interval]) core.Prioritized[float64, interval.Interval] {
				in, err := interval.NewTree(sub, trTop)
				if err != nil {
					panic(err)
				}
				ex := int64(0)
				if eps > 0 {
					ex = int64(math.Pow(float64(len(sub))/benchB, eps))
				}
				return &surchargedPri{inner: in, tr: trTop, extraIOs: ex}
			},
			core.WorstCaseOptions{B: benchB, Lambda: interval.Lambda, Seed: cfg.Seed, Tracker: trTop, QPri: qpri, FScale: fscale})
		if err != nil {
			return err
		}

		var priIOs, topIOs int64
		for _, q := range qs {
			tau := ivTopKOracle(items, q, k)
			priIOs += coldIOs(trPri, func() { core.CollectAll[float64](hardTree, q, tau) })
			topIOs += coldIOs(trTop, func() { wc.TopK(q, k) })
		}
		qPri := float64(priIOs) / float64(queries)
		qTop := float64(topIOs) / float64(queries)
		t.row(eps, qpri(n), qPri, qTop, qTop/qPri, core.LogB(n, benchB))
	}
	t.write(w)
	note(w, "paper: the ratio is ≤ O(log_B n) at ε=0 and collapses toward O(1) once Q_pri = (n/B)^ε dominates — top-k is then asymptotically as easy as prioritized reporting.")
	return nil
}

// surchargedPri wraps a prioritized structure and charges extraIOs per
// query, modeling a harder problem's Q_pri.
type surchargedPri struct {
	inner    core.Prioritized[float64, interval.Interval]
	tr       *em.Tracker
	extraIOs int64
}

func (s *surchargedPri) ReportAbove(q float64, tau float64, emit func(core.Item[interval.Interval]) bool) {
	if s.extraIOs > 0 {
		s.tr.ScanCost(int(s.extraIOs) * s.tr.B())
	}
	s.inner.ReportAbove(q, tau, emit)
}

// E16 — round geometry of the Theorem 2 query algorithm: per-round failure
// probability ≤ 0.91 implies O(1) expected rounds; the histogram should
// decay geometrically.
func runE16(w io.Writer, cfg Config) error {
	n := 1 << 16
	queries := 400
	if cfg.Quick {
		n = 1 << 13
		queries = 100
	}
	items := Intervals(cfg.Seed+16, n, 20)
	exp, err := core.NewExpected(items, interval.Match[interval.Interval],
		interval.NewPrioritizedFactory[interval.Interval](nil),
		interval.NewMaxFactory[interval.Interval](nil),
		core.ExpectedOptions{B: benchB, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	qs := StabPoints(cfg.Seed+160, queries)
	for _, q := range qs {
		exp.TopK(q, 200)
	}
	st := exp.Stats()
	t := newTable("rounds", "queries", "fraction")
	total := int64(0)
	for _, c := range st.RoundHist {
		total += c
	}
	for r, c := range st.RoundHist {
		if c == 0 {
			continue
		}
		t.row(r+1, c, float64(c)/float64(total))
	}
	t.write(w)
	mean := float64(st.Rounds) / float64(max64(1, total))
	note(w, "mean rounds/query = %.2f over %d ladder queries (+%d naive scans); paper: per-round failure ≤ 0.91 ⇒ expected rounds ≤ 1/(1-0.91) ≈ 11, typically far lower.", mean, total, st.NaiveScans)
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
