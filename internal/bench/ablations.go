package bench

import (
	"io"
	"math"
	"time"

	"topk/internal/circular"
	"topk/internal/core"
	"topk/internal/enclosure"
	"topk/internal/halfspace"
	"topk/internal/interval"
)

// E19 — ablation: fractional cascading (§5.2). The plain 2D stabbing-max
// structure performs one predecessor search per segment-tree node
// (O(log n · log_B n) I/Os); the cascaded variant performs one at the
// root and O(1) bridge work per node (O(log n)). Same answers, fewer
// I/Os, slightly more space.
func runE19(w io.Writer, cfg Config) error {
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	queries := 60
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 12}
		queries = 20
	}
	t := newTable("n", "plain I/Os", "cascaded I/Os", "I/O ratio", "plain blk", "cascaded blk", "space ratio", "µs plain", "µs cascaded")
	for _, n := range ns {
		items := Rects(cfg.Seed+19, n)
		qs := EnclosurePoints(cfg.Seed+190, queries)

		trP := newTrackerB()
		plain, err := enclosure.NewMax(items, trP)
		if err != nil {
			return err
		}
		sP := trP.Stats().Blocks

		trC := newTrackerB()
		casc, err := enclosure.NewMaxCascade(items, trC)
		if err != nil {
			return err
		}
		sC := trC.Stats().Blocks

		var pIOs, cIOs int64
		start := time.Now()
		for _, q := range qs {
			pIOs += coldIOs(trP, func() { plain.MaxItem(q) })
		}
		tP := time.Since(start)
		start = time.Now()
		for _, q := range qs {
			cIOs += coldIOs(trC, func() { casc.MaxItem(q) })
		}
		tC := time.Since(start)
		qn := float64(queries)
		t.row(n, float64(pIOs)/qn, float64(cIOs)/qn, float64(cIOs)/float64(pIOs),
			sP, sC, float64(sC)/float64(sP),
			float64(tP.Microseconds())/qn, float64(tC.Microseconds())/qn)
	}
	t.write(w)
	note(w, "paper §5.2: fractional cascading turns the per-node predecessor searches into O(1) bridge steps — the I/O ratio should fall as n grows while the space ratio stays a small constant.")
	return nil
}

// E20 — ablation: Theorem 2's ladder growth rate σ. The analysis requires
// (1+σ)·0.91 < 1, i.e. σ < ~0.099 (the paper fixes σ = 1/20). Larger σ
// means fewer ladder levels (less space) but coarser rung calibration;
// far beyond the bound the geometric-decay argument for the query cost
// degrades.
func runE20(w io.Writer, cfg Config) error {
	n := 1 << 15
	queries := 60
	if cfg.Quick {
		n = 1 << 12
		queries = 20
	}
	const k = 64
	items := Intervals(cfg.Seed+20, n, 15)
	qs := StabPoints(cfg.Seed+200, queries)
	t := newTable("σ", "(1+σ)·0.91", "ladder levels", "sampled items", "query I/Os", "mean rounds")
	for _, sigma := range []float64{0.02, 0.05, 0.099, 0.25, 0.5} {
		tr := newTrackerB()
		exp, err := core.NewExpected(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](tr),
			interval.NewMaxFactory[interval.Interval](tr),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Sigma: sigma, Tracker: tr})
		if err != nil {
			return err
		}
		var ios int64
		for _, q := range qs {
			ios += coldIOs(tr, func() { exp.TopK(q, k) })
		}
		st := exp.Stats()
		rounds := float64(st.Rounds) / float64(max64(1, st.Queries-st.NaiveScans))
		t.row(sigma, (1+sigma)*0.91, st.LadderLevels, st.SampledItems,
			float64(ios)/float64(queries), rounds)
	}
	t.write(w)
	note(w, "paper §4 fixes σ = 1/20 to keep (1+σ)·0.91 < 1. Space (levels, samples) falls with σ; the paper's cost proof needs the last column × per-round growth to converge — beyond σ ≈ 0.099 the guarantee is void even where measurements stay tame (k=%d, n=%d).", k, n)
	return nil
}

// E21 — ablation: Theorem 1's top-f constant (f = FScale·12λB·Q_pri).
// Small f ⇒ weak per-level shrink (more chain levels, more probes); huge
// f ⇒ the chain degenerates into a scan. The paper's constant sits far
// into the safe-but-wasteful right side at laptop n.
func runE21(w io.Writer, cfg Config) error {
	n := 1 << 15
	queries := 30
	if cfg.Quick {
		n = 1 << 12
		queries = 10
	}
	const k = 16
	items := Intervals(cfg.Seed+21, n, 15)
	qs := StabPoints(cfg.Seed+210, queries)
	t := newTable("FScale", "f", "chain levels", "core-set items", "query I/Os", "fallbacks")
	for _, fs := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		tr := newTrackerB()
		wc, err := core.NewWorstCase(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](tr),
			core.WorstCaseOptions{B: benchB, Lambda: interval.Lambda, Seed: cfg.Seed, Tracker: tr, FScale: fs})
		if err != nil {
			return err
		}
		var ios int64
		for _, q := range qs {
			ios += coldIOs(tr, func() { wc.TopK(q, k) })
		}
		st := wc.Stats()
		t.row(fs, st.F, st.ChainLevels, st.CoreSetItems, float64(ios)/float64(queries), st.Fallbacks)
	}
	t.write(w)
	note(w, "the sweet spot balances per-level probe cost (∝ f/B) against chain depth (∝ 1/log f); the self-checking fallback counter shows when f is pushed low enough to break Lemma 2's preconditions (k=%d, n=%d).", k, n)
	return nil
}

// E22 — ablation: Corollary 1's lifting trick vs querying the unlifted
// points with the ball as a direct box-classifiable predicate. The lift
// is what the theory needs (it turns balls into halfspaces so Theorem 3's
// machinery applies verbatim); operationally the direct kd-tree prunes
// with exact ball-box distances and should search a smaller frontier.
func runE22(w io.Writer, cfg Config) error {
	const d = 2
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	queries := 40
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 12}
		queries = 15
	}
	t := newTable("n", "lifted I/Os", "direct I/Os", "direct/lifted", "µs lifted", "µs direct")
	for _, n := range ns {
		items := GaussianND(cfg.Seed+22, n, d)
		pts := make([][]float64, n)
		wsv := make([]float64, n)
		for i, it := range items {
			pts[i], wsv[i] = it.Value.C, it.Weight
		}

		trL := newTrackerB()
		lifted, err := circular.NewIndex(pts, wsv, d, trL)
		if err != nil {
			return err
		}
		trD := newTrackerB()
		direct, err := circular.NewDirectIndex(pts, wsv, d, trD)
		if err != nil {
			return err
		}

		var lIOs, dIOs int64
		var lT, dT time.Duration
		for qi := 0; qi < queries; qi++ {
			// Small balls: few results, so the search frontier dominates.
			b := circular.Ball{
				Center: []float64{float64(qi%9-4) * 4, float64(qi%7-3) * 4},
				R:      1.5,
			}
			start := time.Now()
			lIOs += coldIOs(trL, func() {
				lifted.ReportAbove(b, math.Inf(-1), func(core.Item[halfspace.PtN]) bool { return true })
			})
			lT += time.Since(start)
			start = time.Now()
			dIOs += coldIOs(trD, func() {
				direct.ReportAbove(b, math.Inf(-1), func(core.Item[halfspace.PtN]) bool { return true })
			})
			dT += time.Since(start)
		}
		qn := float64(queries)
		t.row(n, float64(lIOs)/qn, float64(dIOs)/qn, float64(dIOs)/float64(lIOs),
			float64(lT.Microseconds())/qn, float64(dT.Microseconds())/qn)
	}
	t.write(w)
	note(w, "the lifted kd-tree works in d+1 dimensions with a paraboloid coordinate that inflates bounding boxes; the direct ball predicate prunes tighter. small balls with τ=-∞ make the search frontier dominate the output term.")
	return nil
}

// E23 — the paper's §1.2 opposite direction: prioritized reporting is no
// harder than top-k (the known reduction this paper complements). We wrap
// the Theorem 2 top-k structure with the doubling adapter and compare its
// prioritized answers and costs against the native prioritized structure.
func runE23(w io.Writer, cfg Config) error {
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	queries := 30
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 12}
		queries = 10
	}
	t := newTable("n", "t (reported)", "native pri I/Os", "via-top-k I/Os", "overhead")
	for _, n := range ns {
		items := Intervals(cfg.Seed+23, n, 15)
		trN := newTrackerB()
		native, err := interval.NewTree(items, trN)
		if err != nil {
			return err
		}
		trT := newTrackerB()
		exp, err := core.NewExpected(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](trT),
			interval.NewMaxFactory[interval.Interval](trT),
			core.ExpectedOptions{B: benchB, Seed: cfg.Seed, Tracker: trT})
		if err != nil {
			return err
		}
		adapted := core.NewPrioritizedFromTopK[float64, interval.Interval](exp, benchB)

		var nIOs, aIOs int64
		reported := 0
		for _, q := range StabPoints(cfg.Seed+230, queries) {
			tau := ivTopKOracle(items, q, 32)
			cnt := 0
			nIOs += coldIOs(trN, func() {
				native.ReportAbove(q, tau, func(core.Item[interval.Interval]) bool { cnt++; return true })
			})
			reported += cnt
			aIOs += coldIOs(trT, func() {
				adapted.ReportAbove(q, tau, func(core.Item[interval.Interval]) bool { return true })
			})
		}
		qn := float64(queries)
		t.row(n, float64(reported)/qn, float64(nIOs)/qn, float64(aIOs)/qn, float64(aIOs)/float64(max64(1, nIOs)))
	}
	t.write(w)
	note(w, "paper §1.2 / [26,28,29]: S_pri = O(S_top), Q_pri = O(Q_top) — the adapter answers every prioritized query correctly at a constant-factor I/O overhead set by the top-k structure's own constants (doubling k from B).")
	return nil
}
