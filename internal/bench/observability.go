package bench

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"

	"topk"
)

// E26 — the Theorem 2 round tail through the public tracing surface.
// Lemma 3 gives each sampling round success probability ≥ 0.09, so the
// number of rounds R a query needs is stochastically dominated by a
// geometric variable: P(R ≥ r) ≤ 0.91^(r-1). Unlike E16 (which reads the
// reduction's internal counters), this experiment extracts per-query
// round counts from BatchResult.Trace — the span stream a production
// observer would see — and cross-checks the total against the
// topk_t2_rounds histogram exported by WriteMetrics. The tail bound and
// the observability plumbing are validated in one pass.
func runE26(w io.Writer, cfg Config) error {
	n := 1 << 15
	nq := 10000
	if cfg.Quick {
		n = 1 << 12
		nq = 512
	}
	const k = 64

	src := Intervals(cfg.Seed+26, n, 15)
	items := make([]topk.IntervalItem[int], len(src))
	for i, it := range src {
		items[i] = topk.IntervalItem[int]{Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight, Data: i}
	}
	ix, err := topk.NewIntervalIndex(items,
		topk.WithReduction(topk.Expected), topk.WithSeed(cfg.Seed),
		topk.WithTracing(), topk.WithMetrics())
	if err != nil {
		return err
	}

	res := ix.QueryBatch(StabPoints(cfg.Seed+260, nq), k, 0)

	// Per-query rounds from the trace: every depth-0 "t2.round.*" span is
	// one ladder round, whatever its outcome. Queries answered by the
	// naive scan ("t2.scan") have no rounds and are tallied separately.
	hist := map[int]int{}
	ladder, scans, maxR := 0, 0, 0
	for _, r := range res {
		rounds := 0
		for _, ev := range r.Trace {
			if strings.HasPrefix(ev.Phase, "t2.round") {
				rounds++
			}
		}
		if rounds == 0 {
			scans++
			continue
		}
		ladder++
		hist[rounds]++
		if rounds > maxR {
			maxR = rounds
		}
	}
	if ladder == 0 {
		return fmt.Errorf("E26: no ladder queries (all %d fell to the naive scan)", scans)
	}

	t := newTable("rounds r", "queries", "P(R ≥ r)", "0.91^(r-1) bound", "within")
	tail := ladder
	for r := 1; r <= maxR; r++ {
		emp := float64(tail) / float64(ladder)
		bound := math.Pow(0.91, float64(r-1))
		ok := "yes"
		if emp > bound {
			ok = "NO"
		}
		t.row(r, hist[r], emp, bound, ok)
		tail -= hist[r]
	}
	t.write(w)

	// Cross-check the metrics surface: the collector observes one
	// topk_t2_rounds sample per ladder query, so the histogram _count
	// must equal the trace-derived ladder-query count.
	var buf bytes.Buffer
	if err := ix.WriteMetrics(&buf); err != nil {
		return err
	}
	count, err := scrapeValue(buf.String(), `topk_t2_rounds_count{index="interval"}`)
	if err != nil {
		return err
	}
	match := "matches"
	if int(count) != ladder {
		match = fmt.Sprintf("MISMATCH (want %d)", ladder)
	}
	note(w, "%d ladder queries, %d naive scans; /metrics reports topk_t2_rounds_count = %.0f — %s. paper (Lemma 3): per-round failure ≤ 0.91 ⇒ the tail decays at least geometrically.",
		ladder, scans, count, match)
	return nil
}

// scrapeValue pulls one sample's value out of a Prometheus text
// exposition by exact series-name match.
func scrapeValue(exposition, series string) (float64, error) {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				return 0, fmt.Errorf("bench: bad sample line %q: %w", line, err)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("bench: series %s not found in exposition", series)
}

// MetricsSnapshot builds a fully instrumented interval index, drives a
// reference workload through it (batch queries, inserts, deletes), and
// writes the resulting Prometheus exposition to w. It backs topk-bench's
// -metrics flag, giving dashboards and exposition-format parsers a
// deterministic fixture without standing up topk-serve.
func MetricsSnapshot(w io.Writer, cfg Config) error {
	n := 20000
	nq := 2048
	updates := 400
	if cfg.Quick {
		n = 2048
		nq = 256
		updates = 64
	}
	const k = 16

	src := Intervals(cfg.Seed, n, 10)
	items := make([]topk.IntervalItem[int], len(src))
	for i, it := range src {
		items[i] = topk.IntervalItem[int]{Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight, Data: i}
	}
	ix, err := topk.NewIntervalIndex(items,
		topk.WithReduction(topk.Expected), topk.WithSeed(cfg.Seed),
		topk.WithUpdates(), topk.WithTracing(), topk.WithMetrics())
	if err != nil {
		return err
	}

	ix.QueryBatch(StabPoints(cfg.Seed+1, nq), k, 0)

	// A burst of updates populates the flush/rebuild counters and moves
	// the item/level gauges.
	extra := Intervals(cfg.Seed+2, updates, 10)
	for i, it := range extra {
		item := topk.IntervalItem[int]{Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight + 1e9, Data: n + i}
		if err := ix.Insert(item); err != nil {
			return err
		}
		if i%2 == 0 {
			if _, err := ix.Delete(item.Weight); err != nil {
				return err
			}
		}
	}
	ix.QueryBatch(StabPoints(cfg.Seed+3, nq/4), k, 0)

	return ix.WriteMetrics(w)
}
