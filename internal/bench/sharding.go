package bench

import (
	"io"
	"time"

	"topk"
)

// E28 — sharded serving sweep. The sharding layer partitions one logical
// index across S independent engines and answers queries by parallel
// fan-out plus a k-way merge of per-shard core sets (Lemma 2's combine).
// This experiment sweeps S over the whole registry's default reduction
// and records what sharding buys and what it costs: build time (shards
// build independently), batch throughput (fan-out parallelism on top of
// batch parallelism), and total simulated I/Os (which rise with S —
// every shard pays its own per-query overhead before the merge).
func runE28(w io.Writer, cfg Config) error {
	n := 20000
	nq := 256
	if cfg.Quick {
		n = 2500
		nq = 32
	}
	const k = 16
	shardCounts := []int{1, 2, 4, 8}

	t := newTable("problem", "shards", "build ms", "batch q/s", "ios/query", "matches 1-shard")
	for _, spec := range topk.RegisteredProblems() {
		var baseline [][]float64
		for _, shards := range shardCounts {
			var (
				ix  topk.Served
				err error
			)
			start := time.Now()
			if shards == 1 {
				ix, err = spec.Build(n, cfg.Seed+28, topk.WithSeed(cfg.Seed))
			} else {
				ix, err = spec.BuildSharded(n, shards, cfg.Seed+28, topk.WithSeed(cfg.Seed))
			}
			buildMS := float64(time.Since(start).Microseconds()) / 1000
			if err != nil {
				return err
			}

			qs := ix.GenQueries(nq, cfg.Seed+280)
			start = time.Now()
			res := ix.QueryBatch(qs, k, 0)
			elapsed := time.Since(start)

			var ios int64
			weights := make([][]float64, len(res))
			for i, r := range res {
				ios += r.Stats.IOs()
				ws := make([]float64, len(r.Items))
				for j, it := range r.Items {
					ws[j] = it.Weight
				}
				weights[i] = ws
			}
			ok := true
			if shards == 1 {
				baseline = weights
			} else {
				for i := range weights {
					if len(weights[i]) != len(baseline[i]) {
						ok = false
						continue
					}
					for j := range weights[i] {
						if weights[i][j] != baseline[i][j] {
							ok = false
						}
					}
				}
			}
			t.row(spec.Name, shards, buildMS,
				float64(nq)/elapsed.Seconds(),
				float64(ios)/float64(nq),
				boolCell(ok))
		}
	}
	t.write(w)
	note(w, "n=%d items per problem, %d queries per batch, k=%d, Expected reduction, hash-by-weight placement, batch parallelism GOMAXPROCS. The matches column diffs each sharded answer list against the 1-shard run of the same workload: the fan-out/merge must be invisible in results. Total I/O trends toward S × per-shard cost because every shard answers every query before the merge — sharding buys wall-clock parallelism and independent build/update domains, not I/O savings. Once shards are small enough that k is comparable to the shard size, the reduction's degenerate-ladder base case scans the shard's blocks, so ios/query converges to the total block count and stops depending on the problem's geometry.", n, nq, k)
	return nil
}
