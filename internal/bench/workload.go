package bench

import (
	"math"

	"topk/internal/core"
	"topk/internal/dominance"
	"topk/internal/enclosure"
	"topk/internal/halfspace"
	"topk/internal/interval"
	"topk/internal/wrand"
)

// Workload generators. All weights are distinct (the paper's standing
// assumption) and all generators are deterministic in the seed.

// Intervals returns n intervals with uniform left endpoints in [0, 100)
// and exponential lengths (mean meanLen).
func Intervals(seed uint64, n int, meanLen float64) []core.Item[interval.Interval] {
	g := wrand.New(seed)
	ws := g.UniqueFloats(n, 1e9)
	items := make([]core.Item[interval.Interval], n)
	for i := range items {
		lo := g.Float64() * 100
		items[i] = core.Item[interval.Interval]{
			Value:  interval.Interval{Lo: lo, Hi: lo + g.ExpFloat64()*meanLen},
			Weight: ws[i],
		}
	}
	return items
}

// StabPoints returns count stabbing queries in [0, 100).
func StabPoints(seed uint64, count int) []float64 {
	g := wrand.New(seed)
	qs := make([]float64, count)
	for i := range qs {
		qs[i] = g.Float64() * 100
	}
	return qs
}

// Rects returns n "dating-profile" rectangles: preferred age × height
// windows with uniform corners and exponential extents.
func Rects(seed uint64, n int) []core.Item[enclosure.Rect] {
	g := wrand.New(seed)
	ws := g.UniqueFloats(n, 1e9)
	items := make([]core.Item[enclosure.Rect], n)
	for i := range items {
		x1, y1 := 18+g.Float64()*40, 140+g.Float64()*50
		items[i] = core.Item[enclosure.Rect]{
			Value: enclosure.Rect{
				X1: x1, X2: x1 + 2 + g.ExpFloat64()*10,
				Y1: y1, Y2: y1 + 2 + g.ExpFloat64()*20,
			},
			Weight: ws[i],
		}
	}
	return items
}

// EnclosurePoints returns count query points within the Rects domain.
func EnclosurePoints(seed uint64, count int) []enclosure.Pt2 {
	g := wrand.New(seed)
	qs := make([]enclosure.Pt2, count)
	for i := range qs {
		qs[i] = enclosure.Pt2{X: 18 + g.Float64()*45, Y: 140 + g.Float64()*60}
	}
	return qs
}

// Hotels returns n "hotel" points: price × distance × (10 − security),
// rated by weight.
func Hotels(seed uint64, n int) []core.Item[dominance.Pt3] {
	g := wrand.New(seed)
	ws := g.UniqueFloats(n, 1e9)
	items := make([]core.Item[dominance.Pt3], n)
	for i := range items {
		items[i] = core.Item[dominance.Pt3]{
			Value: dominance.Pt3{
				X: 40 + g.ExpFloat64()*120, // price
				Y: g.ExpFloat64() * 8,      // distance from center
				Z: g.Float64() * 10,        // 10 - security rating
			},
			Weight: ws[i],
		}
	}
	return items
}

// DominanceQueries returns corners that select a sizeable fraction of the
// hotels.
func DominanceQueries(seed uint64, count int) []dominance.Pt3 {
	g := wrand.New(seed)
	qs := make([]dominance.Pt3, count)
	for i := range qs {
		qs[i] = dominance.Pt3{
			X: 80 + g.Float64()*300,
			Y: 2 + g.Float64()*12,
			Z: 2 + g.Float64()*8,
		}
	}
	return qs
}

// Gaussian2D returns n points from a 2D normal cloud.
func Gaussian2D(seed uint64, n int) []core.Item[halfspace.Pt2] {
	g := wrand.New(seed)
	ws := g.UniqueFloats(n, 1e9)
	items := make([]core.Item[halfspace.Pt2], n)
	for i := range items {
		items[i] = core.Item[halfspace.Pt2]{
			Value:  halfspace.Pt2{X: g.NormFloat64() * 10, Y: g.NormFloat64() * 10},
			Weight: ws[i],
		}
	}
	return items
}

// Halfplanes returns count query halfplanes with unit normals and offsets
// covering empty through nearly-full selections.
func Halfplanes(seed uint64, count int) []halfspace.Halfplane {
	g := wrand.New(seed)
	qs := make([]halfspace.Halfplane, count)
	for i := range qs {
		theta := g.Float64() * 2 * math.Pi
		qs[i] = halfspace.Halfplane{
			A: math.Cos(theta), B: math.Sin(theta), C: g.NormFloat64() * 8,
		}
	}
	return qs
}

// GaussianND returns n points from a d-dimensional normal cloud.
func GaussianND(seed uint64, n, d int) []core.Item[halfspace.PtN] {
	g := wrand.New(seed)
	ws := g.UniqueFloats(n, 1e9)
	items := make([]core.Item[halfspace.PtN], n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = g.NormFloat64() * 10
		}
		items[i] = core.Item[halfspace.PtN]{Value: halfspace.PtN{C: c}, Weight: ws[i]}
	}
	return items
}

// Halfspaces returns count query halfspaces in dimension d.
func Halfspaces(seed uint64, count, d int) []halfspace.Halfspace {
	g := wrand.New(seed)
	qs := make([]halfspace.Halfspace, count)
	for i := range qs {
		a := make([]float64, d)
		norm := 0.0
		for j := range a {
			a[j] = g.NormFloat64()
			norm += a[j] * a[j]
		}
		norm = math.Sqrt(norm)
		for j := range a {
			a[j] /= norm
		}
		qs[i] = halfspace.Halfspace{A: a, C: g.NormFloat64() * 10}
	}
	return qs
}
