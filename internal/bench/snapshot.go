package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"topk"
)

// E29 — warm starts: restore I/Os vs rebuild I/Os. A snapshot stores an
// index's logical state; restoring reads it back in one sequential pass
// of ceil(size/8/B) block I/Os, while rebuilding repeats construction's
// full sort-and-build I/O schedule. This experiment builds every
// registered problem, snapshots it, restores it, and tables the three
// costs side by side — plus an n-sweep on the interval problem showing
// both costs scale linearly but with very different constants (the
// restore constant is 1/8 block per item of payload; construction pays
// the sorting and structure-building multiplier on top). The "identical"
// column re-checks the acceptance contract: a restored index must answer
// a query batch exactly like the index it was cloned from.
func runE29(w io.Writer, cfg Config) error {
	n := 20000
	nq := 64
	if cfg.Quick {
		n = 2500
		nq = 16
	}
	const k = 16

	measure := func(spec topk.ProblemSpec, n int) (row []any, err error) {
		start := time.Now()
		ix, err := spec.Build(n, cfg.Seed+29, topk.WithSeed(cfg.Seed))
		if err != nil {
			return nil, err
		}
		buildMS := float64(time.Since(start).Microseconds()) / 1000
		buildIOs := ix.Stats().IOs()

		dir, err := os.MkdirTemp("", "topk-e29-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if err := ix.Snapshot(dir); err != nil {
			return nil, err
		}
		snapIOs := ix.Stats().IOs() - buildIOs
		mf, err := topk.ReadManifest(dir)
		if err != nil {
			return nil, err
		}
		var bytes int64
		for _, f := range mf.Files {
			bytes += f.Bytes
		}

		start = time.Now()
		restored, err := spec.Restore(dir)
		if err != nil {
			return nil, err
		}
		restoreMS := float64(time.Since(start).Microseconds()) / 1000
		restoreIOs := restored.Stats().IOs()

		qs := ix.GenQueries(nq, cfg.Seed+290)
		a, b := ix.QueryBatch(qs, k, 0), restored.QueryBatch(qs, k, 0)
		ok := len(a) == len(b)
		for i := 0; ok && i < len(a); i++ {
			ok = len(a[i].Items) == len(b[i].Items)
			for j := 0; ok && j < len(a[i].Items); j++ {
				ok = a[i].Items[j] == b[i].Items[j]
			}
		}

		ratio := float64(buildIOs) / float64(max(restoreIOs, 1))
		return []any{spec.Name, n, buildIOs, bytes, snapIOs, restoreIOs,
			fmt.Sprintf("%.1fx", ratio), buildMS, restoreMS, boolCell(ok)}, nil
	}

	t := newTable("problem", "n", "build ios", "snap bytes", "snap w-ios",
		"restore r-ios", "rebuild/restore", "build ms", "restore ms", "identical")
	for _, spec := range topk.RegisteredProblems() {
		row, err := measure(spec, n)
		if err != nil {
			return err
		}
		t.row(row...)
	}
	spec, _ := topk.ProblemByName("interval")
	sizes := []int{5000, 20000, 80000}
	if cfg.Quick {
		sizes = []int{1000, 4000}
	}
	for _, sz := range sizes {
		row, err := measure(spec, sz)
		if err != nil {
			return err
		}
		t.row(row...)
	}
	t.write(w)
	note(w, "WorstCase reduction, B=%d-word blocks. Build ios is construction's full I/O schedule (external sort + structure build); snap w-ios charges the snapshot as one sequential write pass over its bytes, ceil(bytes/8/B); restore r-ios is the symmetric sequential read pass — the warm start's entire cost, since reconstruction happens in memory and the EM model charges only the scan (DESIGN.md §12). The rebuild/restore column is the warm-start saving: restore is a flat scan of the payload regardless of problem, so the saving tracks how expensive the problem's construction is — ~1x for interval/range whose builds are already near-linear scans, 40-50x for dominance/enclosure whose builds layer sorts and sweeps, asymptotically O((n/B)·log n) vs the restore's O(n/B). The identical column runs the same query batch against both indexes: answers must match item for item.", 64)
	return nil
}
