package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestIDsCoverAllExperiments(t *testing.T) {
	ids := IDs()
	if len(ids) != 31 {
		t.Fatalf("%d experiments registered, want 31: %v", len(ids), ids)
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E32" {
		t.Fatalf("IDs not in numeric order: %v", ids)
	}
	for _, id := range ids {
		if _, ok := Title(id); !ok {
			t.Errorf("no title for %s", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E99", &buf, Config{Seed: 1, Quick: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAllExperimentsRunQuick executes every experiment in Quick mode: the
// tables must render, contain at least one data row, and no bound check
// may report "NO".
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(id, &buf, Config{Seed: 42, Quick: true}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, "|") {
				t.Fatalf("%s produced no table:\n%s", id, out)
			}
			if strings.Contains(out, "| NO") || strings.Contains(out, " NO |") {
				t.Errorf("%s reported a violated bound:\n%s", id, out)
			}
			if !strings.Contains(out, ">") {
				t.Errorf("%s has no interpretation note", id)
			}
		})
	}
}

// TestRegressUpdateRowsGateBulkIngest is the gated bench-row assertion
// behind ISSUE 9: for every (policy, problem) cell of the update row
// family, one InsertBatch of m items must cost fewer I/Os than the m
// single Inserts measured alongside it.
func TestRegressUpdateRowsGateBulkIngest(t *testing.T) {
	rep := &RegressReport{}
	if err := regressUpdates(Config{Seed: 42}, rep); err != nil {
		t.Fatal(err)
	}
	ios := map[string]int64{}
	for _, row := range rep.IO {
		ios[row.Key] = row.IOs
	}
	for _, pol := range []string{"logarithmic", "buffered"} {
		for _, prob := range []string{"interval", "range"} {
			single, okS := ios["update/"+pol+"/"+prob+"/insert"]
			batch, okB := ios["update/"+pol+"/"+prob+"/ingest"]
			if !okS || !okB {
				t.Fatalf("update rows missing for %s/%s: %v", pol, prob, ios)
			}
			if batch >= single {
				t.Errorf("update/%s/%s: ingest cost %d ≥ %d for the same %d items singly",
					pol, prob, batch, single, regressUpdateOps)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("a", "long-header")
	tb.row(1, 2.5)
	tb.row("x", int64(7))
	var buf bytes.Buffer
	tb.write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table rendered %d lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "|") || !strings.HasSuffix(l, "|") {
			t.Fatalf("malformed table line %q", l)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{12345, "12345"},
		{42.25, "42.2"},
		{3.14159, "3.142"},
		{0.00001, "1.00e-05"},
	}
	for _, c := range cases {
		if got := trimFloat(c.in); got != c.want {
			t.Errorf("trimFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := Intervals(5, 100, 10)
	b := Intervals(5, 100, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Intervals not deterministic in the seed")
		}
	}
	c := Intervals(6, 100, 10)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 identical items", same)
	}
}

func TestWorkloadValidity(t *testing.T) {
	for _, it := range Intervals(7, 500, 10) {
		if !it.Value.Valid() {
			t.Fatalf("invalid interval %+v", it.Value)
		}
	}
	for _, it := range Rects(7, 500) {
		if !it.Value.Valid() {
			t.Fatalf("invalid rect %+v", it.Value)
		}
	}
	seen := map[float64]bool{}
	for _, it := range Hotels(7, 500) {
		if seen[it.Weight] {
			t.Fatalf("duplicate weight %v", it.Weight)
		}
		seen[it.Weight] = true
	}
	for _, it := range GaussianND(7, 100, 5) {
		if len(it.Value.C) != 5 {
			t.Fatalf("point with %d coords", len(it.Value.C))
		}
	}
	for _, q := range Halfspaces(7, 50, 4) {
		norm := 0.0
		for _, a := range q.A {
			norm += a * a
		}
		if norm < 0.99 || norm > 1.01 {
			t.Fatalf("halfspace normal not unit: %v", norm)
		}
	}
}
