package enclosure

import (
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/wrand"
)

func TestMaxCascadeAgainstOracle(t *testing.T) {
	g := wrand.New(11)
	items := genRects(g, 900)
	m, err := NewMaxCascade(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 900 {
		t.Fatalf("N = %d", m.N())
	}
	for trial := 0; trial < 400; trial++ {
		q := Pt2{g.Float64() * 120, g.Float64() * 120}
		got, gok := m.MaxItem(q)
		want, wok := oracleMax(items, q)
		if gok != wok {
			t.Fatalf("q=%+v: ok=%v want %v", q, gok, wok)
		}
		if gok && got.Weight != want.Weight {
			t.Fatalf("q=%+v: %v, want %v", q, got.Weight, want.Weight)
		}
	}
}

func TestMaxCascadeCornerQueries(t *testing.T) {
	// Exact rectangle corners: the cascaded predecessor must land on the
	// point region, not the gap.
	g := wrand.New(12)
	items := genRects(g, 250)
	m, err := NewMaxCascade(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewMax(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		r := it.Value
		for _, q := range []Pt2{{r.X1, r.Y1}, {r.X2, r.Y2}, {r.X1, r.Y2}, {r.X2, r.Y1}} {
			a, aok := m.MaxItem(q)
			b, bok := plain.MaxItem(q)
			if aok != bok || (aok && a.Weight != b.Weight) {
				t.Fatalf("corner %+v: cascade (%v,%v) vs plain (%v,%v)", q, a.Weight, aok, b.Weight, bok)
			}
		}
	}
}

func TestMaxCascadeEmpty(t *testing.T) {
	m, err := NewMaxCascade(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.MaxItem(Pt2{1, 1}); ok {
		t.Fatal("empty cascade structure found a max")
	}
}

func TestMaxCascadeCheaperThanPlain(t *testing.T) {
	// The whole point of fractional cascading: one search instead of one
	// per node. Measured I/Os must be strictly lower at scale.
	g := wrand.New(13)
	items := genRects(g, 1<<13)

	trP := em.NewTracker(em.Config{B: 64, MemBlocks: 4})
	plain, err := NewMax(items, trP)
	if err != nil {
		t.Fatal(err)
	}
	trC := em.NewTracker(em.Config{B: 64, MemBlocks: 4})
	casc, err := NewMaxCascade(items, trC)
	if err != nil {
		t.Fatal(err)
	}
	var pIOs, cIOs int64
	const queries = 50
	for i := 0; i < queries; i++ {
		q := Pt2{18 + g.Float64()*45, 140 + g.Float64()*60}
		trP.DropCache()
		trP.ResetCounters()
		a, aok := plain.MaxItem(q)
		pIOs += trP.Stats().IOs()

		trC.DropCache()
		trC.ResetCounters()
		b, bok := casc.MaxItem(q)
		cIOs += trC.Stats().IOs()

		if aok != bok || (aok && a.Weight != b.Weight) {
			t.Fatalf("q=%+v: plain (%v,%v) vs cascade (%v,%v)", q, a.Weight, aok, b.Weight, bok)
		}
	}
	if cIOs >= pIOs {
		t.Errorf("cascading did not help: %d I/Os vs plain %d", cIOs, pIOs)
	}
}

func TestMaxCascadeFactory(t *testing.T) {
	g := wrand.New(14)
	items := genRects(g, 300)
	m := NewMaxCascadeFactory(nil)(items)
	q := Pt2{50, 50}
	got, gok := m.MaxItem(q)
	want, wok := oracleMax(items, q)
	if gok != wok || (gok && got.Weight != want.Weight) {
		t.Fatalf("factory cascade mismatch")
	}
	var _ core.Max[Pt2, Rect] = m
}
