package enclosure

import (
	"math"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/wrand"
)

func genRects(g *wrand.RNG, n int) []core.Item[Rect] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]core.Item[Rect], n)
	for i := range items {
		x1, y1 := g.Float64()*100, g.Float64()*100
		items[i] = core.Item[Rect]{
			Value:  Rect{X1: x1, X2: x1 + g.ExpFloat64()*15, Y1: y1, Y2: y1 + g.ExpFloat64()*15},
			Weight: ws[i],
		}
	}
	return items
}

func oracleAbove(items []core.Item[Rect], q Pt2, tau float64) []core.Item[Rect] {
	var out []core.Item[Rect]
	for _, it := range items {
		if it.Weight >= tau && it.Value.Contains(q) {
			out = append(out, it)
		}
	}
	core.SortByWeightDesc(out)
	return out
}

func oracleMax(items []core.Item[Rect], q Pt2) (core.Item[Rect], bool) {
	best, ok := core.Item[Rect]{Weight: math.Inf(-1)}, false
	for _, it := range items {
		if it.Value.Contains(q) && it.Weight > best.Weight {
			best, ok = it, true
		}
	}
	return best, ok
}

func TestRectContains(t *testing.T) {
	r := Rect{1, 3, 10, 20}
	for _, c := range []struct {
		q    Pt2
		want bool
	}{
		{Pt2{1, 10}, true}, {Pt2{3, 20}, true}, {Pt2{2, 15}, true},
		{Pt2{0.9, 15}, false}, {Pt2{3.1, 15}, false},
		{Pt2{2, 9.9}, false}, {Pt2{2, 20.1}, false},
	} {
		if got := r.Contains(c.q); got != c.want {
			t.Errorf("Contains(%+v) = %v, want %v", c.q, got, c.want)
		}
	}
	if (Rect{3, 1, 0, 1}).Valid() {
		t.Error("reversed rect valid")
	}
}

func TestPrioritizedAgainstOracle(t *testing.T) {
	g := wrand.New(1)
	items := genRects(g, 1000)
	p, err := NewPrioritized(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 1000 {
		t.Fatalf("N = %d", p.N())
	}
	for trial := 0; trial < 200; trial++ {
		q := Pt2{g.Float64() * 120, g.Float64() * 120}
		tau := g.Float64() * 1.2e6
		var got []core.Item[Rect]
		p.ReportAbove(q, tau, func(it core.Item[Rect]) bool {
			got = append(got, it)
			return true
		})
		core.SortByWeightDesc(got)
		want := oracleAbove(items, q, tau)
		if len(got) != len(want) {
			t.Fatalf("q=%+v tau=%v: got %d, want %d", q, tau, len(got), len(want))
		}
		for i := range got {
			if got[i].Weight != want[i].Weight {
				t.Fatalf("q=%+v: item %d = %v, want %v", q, i, got[i].Weight, want[i].Weight)
			}
		}
	}
}

func TestPrioritizedCornerQueries(t *testing.T) {
	// Queries exactly on rectangle corners exercise both closed-boundary
	// dimensions at once.
	g := wrand.New(2)
	items := genRects(g, 200)
	p, _ := NewPrioritized(items, nil)
	for _, it := range items[:50] {
		r := it.Value
		for _, q := range []Pt2{{r.X1, r.Y1}, {r.X2, r.Y2}, {r.X1, r.Y2}, {r.X2, r.Y1}} {
			count := 0
			p.ReportAbove(q, math.Inf(-1), func(core.Item[Rect]) bool { count++; return true })
			if want := len(oracleAbove(items, q, math.Inf(-1))); count != want {
				t.Fatalf("corner %+v: reported %d, want %d", q, count, want)
			}
		}
	}
}

func TestPrioritizedEarlyStop(t *testing.T) {
	g := wrand.New(3)
	items := genRects(g, 400)
	p, _ := NewPrioritized(items, nil)
	count := 0
	p.ReportAbove(Pt2{50, 50}, math.Inf(-1), func(core.Item[Rect]) bool {
		count++
		return count < 3
	})
	if count > 3 {
		t.Fatalf("early stop emitted %d", count)
	}
}

func TestMaxAgainstOracle(t *testing.T) {
	g := wrand.New(4)
	items := genRects(g, 900)
	m, err := NewMax(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		q := Pt2{g.Float64() * 120, g.Float64() * 120}
		got, gok := m.MaxItem(q)
		want, wok := oracleMax(items, q)
		if gok != wok {
			t.Fatalf("q=%+v: ok=%v want %v", q, gok, wok)
		}
		if gok && got.Weight != want.Weight {
			t.Fatalf("q=%+v: %v, want %v", q, got.Weight, want.Weight)
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	p, err := NewPrioritized(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	p.ReportAbove(Pt2{1, 1}, math.Inf(-1), func(core.Item[Rect]) bool { count++; return true })
	if count != 0 {
		t.Fatal("empty structure reported items")
	}
	m, err := NewMax(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.MaxItem(Pt2{1, 1}); ok {
		t.Fatal("empty structure found a max")
	}

	// Degenerate point rectangle.
	one := []core.Item[Rect]{{Value: Rect{5, 5, 7, 7}, Weight: 3}}
	m, _ = NewMax(one, nil)
	if it, ok := m.MaxItem(Pt2{5, 7}); !ok || it.Weight != 3 {
		t.Fatalf("point rect not found at its own corner: %+v %v", it, ok)
	}
	if _, ok := m.MaxItem(Pt2{5, 7.001}); ok {
		t.Fatal("point rect matched a nearby query")
	}
}

func TestRejectsBadInput(t *testing.T) {
	if _, err := NewPrioritized([]core.Item[Rect]{{Value: Rect{3, 1, 0, 1}, Weight: 1}}, nil); err == nil {
		t.Fatal("reversed rect accepted")
	}
	dup := []core.Item[Rect]{
		{Value: Rect{0, 1, 0, 1}, Weight: 7},
		{Value: Rect{2, 3, 2, 3}, Weight: 7},
	}
	if _, err := NewMax(dup, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
}

func TestIOCharging(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 4})
	g := wrand.New(5)
	items := genRects(g, 1<<12)
	m, err := NewMax(items, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.DropCache()
	tr.ResetCounters()
	m.MaxItem(Pt2{50, 50})
	ios := tr.Stats().IOs()
	if ios == 0 {
		t.Fatal("MaxItem charged no I/Os")
	}
	// Path of ~log2(8192) nodes, each a log_B probe: should be far from a
	// scan (4096*6 words / 64 = 384 blocks).
	if ios > 150 {
		t.Errorf("MaxItem charged %d I/Os; too close to a scan", ios)
	}
}

func TestFactories(t *testing.T) {
	g := wrand.New(6)
	items := genRects(g, 300)
	p := NewPrioritizedFactory(nil)(items)
	m := NewMaxFactory(nil)(items)
	q := Pt2{50, 50}
	var got []core.Item[Rect]
	p.ReportAbove(q, math.Inf(-1), func(it core.Item[Rect]) bool {
		got = append(got, it)
		return true
	})
	want := oracleAbove(items, q, math.Inf(-1))
	if len(got) != len(want) {
		t.Fatalf("factory prioritized: %d items, want %d", len(got), len(want))
	}
	gm, gok := m.MaxItem(q)
	wm, wok := oracleMax(items, q)
	if gok != wok || (gok && gm.Weight != wm.Weight) {
		t.Fatalf("factory max mismatch")
	}
	if !Match(Pt2{1, 1}, Rect{0, 2, 0, 2}) || Match(Pt2{3, 1}, Rect{0, 2, 0, 2}) {
		t.Fatal("Match wrong")
	}
}
