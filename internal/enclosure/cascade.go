package enclosure

import (
	"math"

	"topk/internal/cascade"
	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/interval"
)

// MaxCascade is the fractional-cascading variant of Max, realizing the
// paper's Section 5.2 remark: the per-node 1D stabbing-max queries along
// the segment-tree path are all predecessor searches for the same q.y, so
// cascading bridges reduce them to one O(log n) search at the root plus
// O(1) work per node — query O(log n) instead of O(log n · log_B n).
// Space grows by the cascading catalogs (a constant factor of the
// boundary lists). Experiment E19 measures the trade.
type MaxCascade struct {
	t       *segTree[*interval.StabMax1D[rectVal]]
	casc    *cascade.Node
	tracker *em.Tracker
	n       int
}

// NewMaxCascade builds the cascaded max structure; tracker may be nil.
func NewMaxCascade(items []core.Item[Rect], tracker *em.Tracker) (*MaxCascade, error) {
	if err := validate(items); err != nil {
		return nil, err
	}
	m := &MaxCascade{tracker: tracker, n: len(items)}
	m.t = buildSeg[*interval.StabMax1D[rectVal]](items)
	m.t.finalize(func(sub []core.Item[rectVal]) *interval.StabMax1D[rectVal] {
		s, err := interval.NewStabMax1D(sub, tracker)
		if err != nil {
			panic(err)
		}
		return s
	})
	m.casc = cascade.Build(cascadeInput(m.t.root))
	if tracker != nil && m.casc != nil {
		// The augmented catalogs occupy ~4 words per entry.
		total := 0
		total = catalogTotal(m.casc)
		if total > 0 {
			tracker.AllocRun(int(em.BlocksFor(total, 4, tracker.B())))
		}
	}
	return m, nil
}

func cascadeInput(nd *snode[*interval.StabMax1D[rectVal]]) *cascade.Input {
	if nd == nil {
		return nil
	}
	in := &cascade.Input{Keys: nd.payload.Boundaries()}
	in.Left = cascadeInput(nd.left)
	in.Right = cascadeInput(nd.right)
	return in
}

// N returns the number of indexed rectangles.
func (m *MaxCascade) N() int { return m.n }

// MaxItem implements core.Max[Pt2, Rect] with one cascaded descent.
func (m *MaxCascade) MaxItem(q Pt2) (core.Item[Rect], bool) {
	c := m.t.elemCoord(q.X)
	if c < 0 || m.t.root == nil || m.casc == nil {
		return core.Item[Rect]{}, false
	}
	if m.tracker != nil {
		// One root binary search over the augmented catalog …
		m.tracker.PathCost(log2ceil(m.casc.CatalogLen() + 1))
	}
	best := core.Item[Rect]{Weight: math.Inf(-1)}
	found := false

	cur := m.casc.Search(q.Y)
	nd := m.t.root
	nodes := 0
	for nd != nil && cur.Valid() {
		nodes++
		sm := nd.payload
		if i := cur.OwnPred(); i >= 0 {
			exact := sm.Boundaries()[i] == q.Y
			if it, ok := sm.AnswerAt(i, exact); ok && it.Weight > best.Weight {
				best = unwrapRect(it)
				found = true
			}
		}
		if nd.b-nd.a <= 1 {
			break
		}
		if mid := (nd.a + nd.b) / 2; c < mid {
			nd, cur = nd.left, cur.Left()
		} else {
			nd, cur = nd.right, cur.Right()
		}
	}
	if m.tracker != nil {
		// … then O(1) bridge work per level (answer-block reads are
		// charged by AnswerAt itself).
		m.tracker.PathCost(nodes)
	}
	if !found {
		return core.Item[Rect]{}, false
	}
	return best, true
}

// unwrapRect recovers the full rectangle payload from the stabbing item.
func unwrapRect(src core.Item[rectVal]) core.Item[Rect] {
	return core.Item[Rect]{Value: src.Value.r, Weight: src.Weight}
}

// catalogTotal sums augmented-catalog sizes over the cascade tree for
// space accounting.
func catalogTotal(nd *cascade.Node) int {
	if nd == nil {
		return 0
	}
	return nd.CatalogLen() + catalogTotal(nd.LeftChild()) + catalogTotal(nd.RightChild())
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// NewMaxCascadeFactory adapts the constructor to the reduction factory
// signature.
func NewMaxCascadeFactory(tracker *em.Tracker) core.MaxFactory[Pt2, Rect] {
	return func(items []core.Item[Rect]) core.Max[Pt2, Rect] {
		s, err := NewMaxCascade(items, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}
