// Package enclosure implements the building blocks of the paper's
// Theorem 5 (top-k 2D point enclosure): elements are weighted axis-parallel
// rectangles, a predicate is a point q ∈ ℝ², and a rectangle satisfies q
// when it contains q — the paper's dating-website query ("the 10 gentlemen
// with the highest salaries whose preferred age and height ranges contain
// mine").
//
// Both structures follow Section 5.2's pattern: a segment tree over the
// x-projections, with a 1D stabbing structure on the y-intervals at every
// node. A query descends the root-to-leaf path of q.x and stabs each
// node's y-structure with q.y:
//
//   - Prioritized: per-node dynamic interval trees (package interval) —
//     O(n log n) space, O(log² n + t)-style query (the paper cites
//     Rahul '15 at O(n log* n) space; see DESIGN.md's substitution table);
//   - Max: per-node folklore 1D stabbing-max structures — O(n log n)
//     space, O(log n · log_B n) I/Os (the paper reaches O(log n) with
//     fractional cascading, which we omit and document).
package enclosure

import (
	"fmt"
	"math"
	"sort"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/interval"
)

// Rect is a closed axis-parallel rectangle [X1, X2] × [Y1, Y2].
type Rect struct {
	X1, X2, Y1, Y2 float64
}

// Valid reports whether the rectangle is well-formed.
func (r Rect) Valid() bool {
	return !math.IsNaN(r.X1) && !math.IsNaN(r.X2) && !math.IsNaN(r.Y1) && !math.IsNaN(r.Y2) &&
		r.X1 <= r.X2 && r.Y1 <= r.Y2
}

// Contains reports whether the rectangle contains the point q.
func (r Rect) Contains(q Pt2) bool {
	return r.X1 <= q.X && q.X <= r.X2 && r.Y1 <= q.Y && q.Y <= r.Y2
}

// Pt2 is a query point in ℝ².
type Pt2 struct {
	X, Y float64
}

// Match is the predicate evaluator for the reductions.
func Match(q Pt2, r Rect) bool { return r.Contains(q) }

// Lambda is the polynomial-boundedness exponent: outcomes are determined
// by the x-region and y-region of the query among the 2n+1 regions each,
// so there are O(n²) of them.
const Lambda = 2

// rectVal adapts a rectangle's y-projection to the interval package.
type rectVal struct {
	r Rect
}

// Span returns the y-projection.
func (v rectVal) Span() interval.Interval { return interval.Interval{Lo: v.r.Y1, Hi: v.r.Y2} }

// segTree is the shared x-skeleton: a segment tree over doubled endpoint
// coordinates (2i = the endpoint xs[i] itself, 2i+1 = the open gap after
// it), so closed x-boundaries are handled exactly.
type segTree[P any] struct {
	xs   []float64
	root *snode[P]
}

type snode[P any] struct {
	a, b        int // elementary coordinate range [a, b)
	items       []core.Item[rectVal]
	payload     P
	left, right *snode[P]
}

func buildSeg[P any](items []core.Item[Rect]) *segTree[P] {
	xs := make([]float64, 0, 2*len(items))
	for _, it := range items {
		xs = append(xs, it.Value.X1, it.Value.X2)
	}
	sort.Float64s(xs)
	xs = dedup(xs)
	t := &segTree[P]{xs: xs}
	if len(xs) == 0 {
		return t
	}
	t.root = makeNodes[P](0, 2*len(xs))
	for _, it := range items {
		lo := 2 * sort.SearchFloat64s(xs, it.Value.X1)
		hi := 2*sort.SearchFloat64s(xs, it.Value.X2) + 1 // half-open
		wrapped := core.Item[rectVal]{Value: rectVal{r: it.Value}, Weight: it.Weight}
		t.root.assign(lo, hi, wrapped)
	}
	return t
}

func dedup(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func makeNodes[P any](a, b int) *snode[P] {
	nd := &snode[P]{a: a, b: b}
	if b-a > 1 {
		mid := (a + b) / 2
		nd.left = makeNodes[P](a, mid)
		nd.right = makeNodes[P](mid, b)
	}
	return nd
}

// assign stores the item at the canonical nodes covering [lo, hi).
func (nd *snode[P]) assign(lo, hi int, it core.Item[rectVal]) {
	if lo <= nd.a && nd.b <= hi {
		nd.items = append(nd.items, it)
		return
	}
	mid := (nd.a + nd.b) / 2
	if lo < mid {
		nd.left.assign(lo, hi, it)
	}
	if hi > mid {
		nd.right.assign(lo, hi, it)
	}
}

// elemCoord maps a query x to its elementary coordinate, or -1 when x
// precedes every endpoint (no rectangle can contain it).
func (t *segTree[P]) elemCoord(x float64) int {
	i := sort.SearchFloat64s(t.xs, x)
	if i < len(t.xs) && t.xs[i] == x {
		return 2 * i
	}
	if i == 0 {
		return -1
	}
	return 2*(i-1) + 1
}

// walk visits the payloads along the root-to-leaf path of elementary
// coordinate c, stopping early if visit returns false. It returns the
// number of path nodes touched.
func (t *segTree[P]) walk(c int, visit func(P) bool) int {
	nodes := 0
	nd := t.root
	for nd != nil {
		nodes++
		if !visit(nd.payload) {
			return nodes
		}
		if nd.b-nd.a <= 1 {
			break
		}
		if mid := (nd.a + nd.b) / 2; c < mid {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nodes
}

// finalize builds every node's payload from its item list and drops the
// build-time lists.
func (t *segTree[P]) finalize(build func(items []core.Item[rectVal]) P) {
	var rec func(nd *snode[P])
	rec = func(nd *snode[P]) {
		if nd == nil {
			return
		}
		nd.payload = build(nd.items)
		nd.items = nil
		rec(nd.left)
		rec(nd.right)
	}
	rec(t.root)
}

func validate(items []core.Item[Rect]) error {
	if dup, ok := core.CheckDistinctWeights(items); !ok {
		return fmt.Errorf("enclosure: duplicate weight %v", dup)
	}
	for _, it := range items {
		if !it.Value.Valid() {
			return fmt.Errorf("enclosure: malformed rectangle %+v", it.Value)
		}
	}
	return nil
}

// Prioritized answers prioritized point-enclosure queries.
type Prioritized struct {
	t       *segTree[*interval.Tree[rectVal]]
	tracker *em.Tracker
	n       int
}

// NewPrioritized builds the structure; tracker may be nil.
func NewPrioritized(items []core.Item[Rect], tracker *em.Tracker) (*Prioritized, error) {
	if err := validate(items); err != nil {
		return nil, err
	}
	p := &Prioritized{tracker: tracker, n: len(items)}
	p.t = buildSeg[*interval.Tree[rectVal]](items)
	p.t.finalize(func(sub []core.Item[rectVal]) *interval.Tree[rectVal] {
		tr, err := interval.NewTree(sub, tracker)
		if err != nil {
			panic(err) // inputs already validated
		}
		return tr
	})
	return p, nil
}

// N returns the number of indexed rectangles.
func (p *Prioritized) N() int { return p.n }

// ReportAbove implements core.Prioritized[Pt2, Rect]: emit every rectangle
// containing q with weight ≥ tau.
func (p *Prioritized) ReportAbove(q Pt2, tau float64, emit func(core.Item[Rect]) bool) {
	c := p.t.elemCoord(q.X)
	if c < 0 || p.t.root == nil {
		return
	}
	stopped := false
	nodes := p.t.walk(c, func(tr *interval.Tree[rectVal]) bool {
		tr.ReportAbove(q.Y, tau, func(it core.Item[rectVal]) bool {
			if !emit(core.Item[Rect]{Value: it.Value.r, Weight: it.Weight}) {
				stopped = true
				return false
			}
			return true
		})
		return !stopped
	})
	if p.tracker != nil {
		p.tracker.PathCost(nodes)
	}
}

// Max answers point-enclosure max queries (2D stabbing max, §5.2).
type Max struct {
	t       *segTree[*interval.StabMax1D[rectVal]]
	tracker *em.Tracker
	n       int
}

// NewMax builds the structure; tracker may be nil.
func NewMax(items []core.Item[Rect], tracker *em.Tracker) (*Max, error) {
	if err := validate(items); err != nil {
		return nil, err
	}
	m := &Max{tracker: tracker, n: len(items)}
	m.t = buildSeg[*interval.StabMax1D[rectVal]](items)
	m.t.finalize(func(sub []core.Item[rectVal]) *interval.StabMax1D[rectVal] {
		s, err := interval.NewStabMax1D(sub, tracker)
		if err != nil {
			panic(err)
		}
		return s
	})
	return m, nil
}

// N returns the number of indexed rectangles.
func (m *Max) N() int { return m.n }

// MaxItem implements core.Max[Pt2, Rect].
func (m *Max) MaxItem(q Pt2) (core.Item[Rect], bool) {
	c := m.t.elemCoord(q.X)
	if c < 0 || m.t.root == nil {
		return core.Item[Rect]{}, false
	}
	best := core.Item[Rect]{Weight: math.Inf(-1)}
	found := false
	nodes := m.t.walk(c, func(s *interval.StabMax1D[rectVal]) bool {
		if it, ok := s.MaxItem(q.Y); ok && it.Weight > best.Weight {
			best = core.Item[Rect]{Value: it.Value.r, Weight: it.Weight}
			found = true
		}
		return true
	})
	if m.tracker != nil {
		m.tracker.PathCost(nodes)
	}
	if !found {
		return core.Item[Rect]{}, false
	}
	return best, true
}

// NewPrioritizedFactory adapts the constructor to the reduction factory
// signature; build errors panic (subsets of validated inputs).
func NewPrioritizedFactory(tracker *em.Tracker) core.PrioritizedFactory[Pt2, Rect] {
	return func(items []core.Item[Rect]) core.Prioritized[Pt2, Rect] {
		s, err := NewPrioritized(items, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}

// NewMaxFactory adapts NewMax to the reduction factory signature.
func NewMaxFactory(tracker *em.Tracker) core.MaxFactory[Pt2, Rect] {
	return func(items []core.Item[Rect]) core.Max[Pt2, Rect] {
		s, err := NewMax(items, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}
