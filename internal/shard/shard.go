// Package shard holds the problem-independent mechanics of horizontal
// partitioning: assigning items to shards, fanning a query out to every
// shard on a bounded worker pool, and k-way-merging the per-shard
// answers.
//
// The merge is the load-bearing piece, and it is exactly the paper's
// Lemma 2 core-set combine: each shard's top-k list is a top-k core-set
// of that shard's subset, and because the shards partition the dataset,
// the k heaviest elements of the union of the per-shard top-k lists are
// the k heaviest elements of the whole dataset. Correctness of a sharded
// top-k query therefore falls out of the same one-line argument as the
// reduction itself — no per-problem reasoning required.
package shard

import (
	"math"
	"sync"
)

// Hash maps a weight to its owning shard. Weights are the global item
// identity in this codebase (distinct across an index), so hashing the
// weight gives a stable owner that Insert, Delete, and the build-time
// partition all agree on. The mixer is SplitMix64's finalizer over the
// IEEE-754 bits.
func Hash(weight float64, shards int) int {
	x := math.Float64bits(weight)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// Assign partitions item indices into shards buckets. When byWeight is
// true the owner is Hash(weights[i], shards); otherwise items are dealt
// round-robin (i mod shards). Every bucket is allocated even when empty,
// so callers can build one engine per bucket unconditionally.
func Assign(weights []float64, shards int, byWeight bool) [][]int {
	out := make([][]int, shards)
	for i := range weights {
		sh := i % shards
		if byWeight {
			sh = Hash(weights[i], shards)
		}
		out[sh] = append(out[sh], i)
	}
	return out
}

// MergeDesc k-way-merges lists that are each sorted by descending weight
// into the global top-k, heaviest first — the Lemma 2 core-set combine.
// Ties are broken by list order, but callers here never see ties: index
// weights are globally distinct. k < 0 means "all".
func MergeDesc[T any](lists [][]T, k int, weight func(T) float64) []T {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if k < 0 || k > total {
		k = total
	}
	if k == 0 {
		return nil
	}
	// A cursor per list; each step takes the heaviest head. With S shards
	// this is O(k·S) comparisons — S is small (a handful of shards), so a
	// heap would only add constant-factor machinery.
	cur := make([]int, len(lists))
	out := make([]T, 0, k)
	for len(out) < k {
		best := -1
		var bw float64
		for i, l := range lists {
			if cur[i] >= len(l) {
				continue
			}
			if w := weight(l[cur[i]]); best < 0 || w > bw {
				best, bw = i, w
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][cur[best]])
		cur[best]++
	}
	return out
}

// FanOut runs f(0..n-1) on a bounded pool of parallelism worker
// goroutines and waits for all of them — the same claim-by-counter pool
// the batch query path uses. parallelism <= 0 or > n means one worker
// per task. A panic in any f is re-raised on the caller after the pool
// drains.
func FanOut(n, parallelism int, f func(i int)) {
	if n <= 0 {
		return
	}
	if parallelism <= 0 || parallelism > n {
		parallelism = n
	}
	var (
		mu       sync.Mutex
		next     int
		wg       sync.WaitGroup
		panicked any
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if panicked != nil || next >= n {
			return -1
		}
		next++
		return next - 1
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = r
							}
							mu.Unlock()
						}
					}()
					f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
