package shard

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

func TestHashStableAndInRange(t *testing.T) {
	g := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		w := g.Float64() * 1e9
		for _, s := range []int{1, 2, 3, 8, 17} {
			h := Hash(w, s)
			if h < 0 || h >= s {
				t.Fatalf("Hash(%v, %d) = %d out of range", w, s, h)
			}
			if h != Hash(w, s) {
				t.Fatalf("Hash(%v, %d) not stable", w, s)
			}
		}
	}
}

func TestHashSpreads(t *testing.T) {
	const n, s = 10000, 8
	g := rand.New(rand.NewSource(2))
	counts := make([]int, s)
	for i := 0; i < n; i++ {
		counts[Hash(g.Float64()*1e6, s)]++
	}
	for sh, c := range counts {
		// A fair hash puts ~n/s = 1250 in each bucket; allow a wide band.
		if c < n/s/2 || c > n/s*2 {
			t.Fatalf("shard %d holds %d of %d items — hash is badly skewed: %v", sh, c, n, counts)
		}
	}
}

func TestAssignPartitions(t *testing.T) {
	ws := []float64{5, 1, 9, 3, 7, 2, 8}
	for _, byWeight := range []bool{true, false} {
		for _, s := range []int{1, 2, 3, 8} {
			parts := Assign(ws, s, byWeight)
			if len(parts) != s {
				t.Fatalf("Assign returned %d buckets, want %d", len(parts), s)
			}
			seen := map[int]bool{}
			for sh, idxs := range parts {
				for _, i := range idxs {
					if seen[i] {
						t.Fatalf("item %d assigned twice", i)
					}
					seen[i] = true
					if byWeight && Hash(ws[i], s) != sh {
						t.Fatalf("item %d in shard %d, Hash says %d", i, sh, Hash(ws[i], s))
					}
					if !byWeight && i%s != sh {
						t.Fatalf("item %d in shard %d, round-robin says %d", i, sh, i%s)
					}
				}
			}
			if len(seen) != len(ws) {
				t.Fatalf("%d of %d items assigned", len(seen), len(ws))
			}
		}
	}
}

func TestMergeDescIsGlobalTopK(t *testing.T) {
	g := rand.New(rand.NewSource(3))
	id := func(v float64) float64 { return v }
	for trial := 0; trial < 200; trial++ {
		s := 1 + g.Intn(6)
		var all []float64
		lists := make([][]float64, s)
		for i := range lists {
			m := g.Intn(10)
			for j := 0; j < m; j++ {
				v := g.Float64()
				lists[i] = append(lists[i], v)
				all = append(all, v)
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(lists[i])))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))
		for _, k := range []int{0, 1, 3, len(all), len(all) + 5, -1} {
			got := MergeDesc(lists, k, id)
			want := all
			if k >= 0 && k < len(all) {
				want = all[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d merged, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d item %d: %v, want %v", k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFanOutRunsEveryTask(t *testing.T) {
	for _, p := range []int{0, 1, 3, 100} {
		var hits [57]atomic.Int64
		FanOut(len(hits), p, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("parallelism %d: task %d ran %d times", p, i, hits[i].Load())
			}
		}
	}
	FanOut(0, 4, func(int) { t.Fatal("ran a task for n=0") })
}

func TestFanOutPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	FanOut(8, 2, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}
