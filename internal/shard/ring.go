package shard

import (
	"hash/fnv"
	"sort"
)

// This file is the cluster layer's ownership function: rendezvous
// (highest-random-weight) hashing from shard to the replica group that
// serves it. Each (shard, node) pair gets a pseudo-random score and the
// r highest-scoring nodes own the shard. The property that matters is
// minimal disruption: adding or removing one node only moves the shards
// that node scored highest on — every other assignment is untouched —
// without any coordination state beyond the node list itself.

// nodeSeed hashes a node name once; Owners mixes it with the shard
// index per pair. FNV-1a keeps the string hash stable across processes
// and platforms, which the cluster needs: every coordinator and node
// must compute identical ownership from the same node list.
func nodeSeed(node string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	return h.Sum64()
}

// mix64 is SplitMix64's finalizer, the same mixer Hash uses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owners returns the r nodes owning the given shard under rendezvous
// hashing, highest score first — the preference order a coordinator
// tries replicas in. The result is a pure function of (shard, set of
// node names, r): node list order does not matter, and ties (only
// possible with duplicate names) break by name so every participant
// agrees. r is clamped to [1, len(nodes)]; an empty node list returns
// nil.
func Owners(shard int, nodes []string, r int) []string {
	if len(nodes) == 0 {
		return nil
	}
	if r < 1 {
		r = 1
	}
	if r > len(nodes) {
		r = len(nodes)
	}
	type scored struct {
		node  string
		score uint64
	}
	sc := make([]scored, len(nodes))
	for i, node := range nodes {
		sc[i] = scored{node, mix64(nodeSeed(node) ^ (uint64(shard)*0x9e3779b97f4a7c15 + 1))}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].node < sc[j].node
	})
	out := make([]string, r)
	for i := range out {
		out[i] = sc[i].node
	}
	return out
}
