package shard

import (
	"reflect"
	"testing"
)

func TestOwnersDeterministicAndOrderFree(t *testing.T) {
	nodes := []string{"n1:18111", "n2:18112", "n3:18113"}
	perm := []string{"n3:18113", "n1:18111", "n2:18112"}
	for sh := 0; sh < 32; sh++ {
		a := Owners(sh, nodes, 2)
		b := Owners(sh, perm, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shard %d: owners depend on node list order: %v vs %v", sh, a, b)
		}
		if len(a) != 2 || a[0] == a[1] {
			t.Fatalf("shard %d: want 2 distinct owners, got %v", sh, a)
		}
	}
}

func TestOwnersClampsReplication(t *testing.T) {
	nodes := []string{"a", "b"}
	if got := Owners(0, nodes, 5); len(got) != 2 {
		t.Fatalf("r beyond node count should clamp: got %v", got)
	}
	if got := Owners(0, nodes, 0); len(got) != 1 {
		t.Fatalf("r below 1 should clamp to 1: got %v", got)
	}
	if got := Owners(3, nil, 2); got != nil {
		t.Fatalf("empty node list should return nil, got %v", got)
	}
}

// Every node should own a reasonable share of shards (rendezvous
// balance), and full replication should cover every node for every
// shard.
func TestOwnersBalanceAndCoverage(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	count := map[string]int{}
	const shards = 400
	for sh := 0; sh < shards; sh++ {
		for _, n := range Owners(sh, nodes, 2) {
			count[n]++
		}
		full := Owners(sh, nodes, len(nodes))
		if len(full) != len(nodes) {
			t.Fatalf("shard %d: full replication misses nodes: %v", sh, full)
		}
	}
	// 2·400 assignments over 4 nodes: expect 200 each; allow wide slack.
	for _, n := range nodes {
		if count[n] < 100 || count[n] > 300 {
			t.Fatalf("node %s owns %d of %d assignments — rendezvous badly unbalanced: %v", n, count[n], 2*shards, count)
		}
	}
}

// Removing one node must only move the shards it owned: assignments not
// involving the removed node are untouched.
func TestOwnersMinimalDisruption(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	without := []string{"a", "b", "c"}
	for sh := 0; sh < 200; sh++ {
		before := Owners(sh, nodes, 2)
		after := Owners(sh, without, 2)
		hadD := false
		for _, n := range before {
			if n == "d" {
				hadD = true
			}
		}
		if !hadD && !reflect.DeepEqual(before, after) {
			t.Fatalf("shard %d: removing an uninvolved node changed ownership: %v -> %v", sh, before, after)
		}
	}
}

// Pin a few assignments so an accidental change to the hash function —
// which would strand every running cluster's shard placement — fails
// loudly.
func TestOwnersPinned(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	want := map[int][]string{
		0: {"n3", "n1"},
		1: {"n1", "n2"},
		2: {"n2", "n1"},
		3: {"n1", "n2"},
	}
	for sh, w := range want {
		if got := Owners(sh, nodes, 2); !reflect.DeepEqual(got, w) {
			t.Fatalf("shard %d: owners %v, want pinned %v — the placement hash changed", sh, got, w)
		}
	}
	if got := Owners(0, []string{"n1", "n2", "n3", "n4"}, 3); !reflect.DeepEqual(got, []string{"n3", "n1", "n4"}) {
		t.Fatalf("4-node pinned assignment moved: %v", got)
	}
}
