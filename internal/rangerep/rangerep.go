// Package rangerep implements top-k 1D range reporting — the most
// extensively studied instance of the paper's framework (its Section 2
// survey: [3, 11, 12, 33, 35]). Elements are weighted points on the real
// line; a predicate is a closed query range [Lo, Hi]; a top-k query
// returns the k heaviest points inside the range.
//
// The building blocks are a single weight-augmented treap keyed by
// position: prioritized reporting prunes subtrees below the threshold and
// max reporting walks with best-weight pruning, both in O(log n + t)
// expected time, with insertions and deletions in O(log n). Through the
// reductions of internal/core these yield dynamic top-k range reporting —
// the paper's framework applied to its survey's headline problem.
//
// I/O accounting follows the same contract convention as package interval:
// one blocked root-to-leaf descent (O(log_B n)) plus O(t/B) output.
package rangerep

import (
	"fmt"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/treap"
)

// Span is the closed query range [Lo, Hi].
type Span struct {
	Lo, Hi float64
}

// Contains reports whether x ∈ [Lo, Hi].
func (s Span) Contains(x float64) bool { return s.Lo <= x && x <= s.Hi }

// Valid reports whether the span is well-formed.
func (s Span) Valid() bool {
	return !math.IsNaN(s.Lo) && !math.IsNaN(s.Hi) && s.Lo <= s.Hi
}

// Match is the predicate evaluator for the reductions: the element value
// is the point's position.
func Match(q Span, x float64) bool { return q.Contains(x) }

// Lambda is the polynomial-boundedness exponent: outcomes are determined
// by the ranks of Lo and Hi among the n positions, so there are O(n²).
const Lambda = 2

// Points answers prioritized, max, and counting queries over weighted 1D
// points, and supports updates. It implements
// core.DynamicPrioritized[Span, float64] and core.DynamicMax[Span, float64].
type Points struct {
	tr      treap.Tree[struct{}]
	pos     map[float64]float64 // weight -> position (delete bookkeeping)
	tracker *em.Tracker
	run     em.BlockID
	blocks  int64
}

// NewPoints builds the structure over positions/weights pairs; tracker may
// be nil.
func NewPoints(items []core.Item[float64], tracker *em.Tracker) (*Points, error) {
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	p := &Points{pos: make(map[float64]float64, len(items)), tracker: tracker}
	for _, it := range items {
		if math.IsNaN(it.Value) {
			return nil, fmt.Errorf("rangerep: NaN position")
		}
		p.tr.Insert(treap.Key{K: it.Value, W: it.Weight}, struct{}{})
		p.pos[it.Weight] = it.Value
	}
	if tracker != nil && len(items) > 0 {
		p.blocks = em.BlocksFor(len(items), 2, tracker.B())
		p.run = tracker.AllocRun(int(p.blocks))
	}
	return p, nil
}

// Len returns the number of stored points.
func (p *Points) Len() int { return p.tr.Len() }

// ReportAbove implements core.Prioritized[Span, float64].
func (p *Points) ReportAbove(q Span, tau float64, emit func(core.Item[float64]) bool) {
	emitted := 0
	p.tr.RangeReportAbove(q.Lo, q.Hi, tau, func(k treap.Key, _ struct{}) bool {
		emitted++
		return emit(core.Item[float64]{Value: k.K, Weight: k.W})
	})
	if p.tracker != nil {
		p.tracker.PathCost(2 * log2ceil(p.tr.Len()+2))
		p.tracker.ScanCost(emitted)
	}
}

// MaxItem implements core.Max[Span, float64].
func (p *Points) MaxItem(q Span) (core.Item[float64], bool) {
	k, _, ok := p.tr.RangeMax(q.Lo, q.Hi)
	if p.tracker != nil {
		p.tracker.PathCost(2 * log2ceil(p.tr.Len()+2))
	}
	if !ok {
		return core.Item[float64]{}, false
	}
	return core.Item[float64]{Value: k.K, Weight: k.W}, true
}

// Count returns |q(D)| in O(log n), a conventional extra the 1D problem
// supports exactly (most query algorithms in the literature use it).
func (p *Points) Count(q Span) int {
	if p.tracker != nil {
		p.tracker.PathCost(2 * log2ceil(p.tr.Len()+2))
	}
	return p.tr.RangeCount(q.Lo, q.Hi)
}

// Insert implements core.Updatable.
func (p *Points) Insert(it core.Item[float64]) {
	if _, dup := p.pos[it.Weight]; dup {
		panic(fmt.Sprintf("rangerep: duplicate weight %v", it.Weight))
	}
	p.tr.Insert(treap.Key{K: it.Value, W: it.Weight}, struct{}{})
	p.pos[it.Weight] = it.Value
	p.chargeUpdate()
}

// DeleteWeight implements core.Updatable.
func (p *Points) DeleteWeight(w float64) bool {
	x, ok := p.pos[w]
	if !ok {
		return false
	}
	p.tr.Delete(treap.Key{K: x, W: w})
	delete(p.pos, w)
	p.chargeUpdate()
	return true
}

func (p *Points) chargeUpdate() {
	if p.tracker != nil {
		p.tracker.PathCost(log2ceil(p.tr.Len() + 2))
		p.tracker.ScanCost(1)
	}
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// NewPrioritizedFactory adapts the constructor to the reduction factory
// signature.
func NewPrioritizedFactory(tracker *em.Tracker) core.PrioritizedFactory[Span, float64] {
	return func(items []core.Item[float64]) core.Prioritized[Span, float64] {
		p, err := NewPoints(items, tracker)
		if err != nil {
			panic(err)
		}
		return p
	}
}

// NewDynamicPrioritizedFactory is the updatable variant.
func NewDynamicPrioritizedFactory(tracker *em.Tracker) core.DynamicPrioritizedFactory[Span, float64] {
	return func(items []core.Item[float64]) core.DynamicPrioritized[Span, float64] {
		p, err := NewPoints(items, tracker)
		if err != nil {
			panic(err)
		}
		return p
	}
}

// NewMaxFactory adapts the max path to the reduction factory signature.
func NewMaxFactory(tracker *em.Tracker) core.MaxFactory[Span, float64] {
	return func(items []core.Item[float64]) core.Max[Span, float64] {
		p, err := NewPoints(items, tracker)
		if err != nil {
			panic(err)
		}
		return p
	}
}

// NewDynamicMaxFactory is the updatable variant.
func NewDynamicMaxFactory(tracker *em.Tracker) core.DynamicMaxFactory[Span, float64] {
	return func(items []core.Item[float64]) core.DynamicMax[Span, float64] {
		p, err := NewPoints(items, tracker)
		if err != nil {
			panic(err)
		}
		return p
	}
}
