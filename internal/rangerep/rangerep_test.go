package rangerep

import (
	"math"
	"testing"
	"testing/quick"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/wrand"
)

func genPoints(g *wrand.RNG, n int) []core.Item[float64] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]core.Item[float64], n)
	for i := range items {
		items[i] = core.Item[float64]{Value: g.Float64() * 100, Weight: ws[i]}
	}
	return items
}

func oracleAbove(items []core.Item[float64], q Span, tau float64) []core.Item[float64] {
	var out []core.Item[float64]
	for _, it := range items {
		if it.Weight >= tau && q.Contains(it.Value) {
			out = append(out, it)
		}
	}
	core.SortByWeightDesc(out)
	return out
}

func TestSpanBasics(t *testing.T) {
	s := Span{2, 5}
	if !s.Contains(2) || !s.Contains(5) || s.Contains(1.99) || s.Contains(5.01) {
		t.Fatal("Contains boundary behavior wrong")
	}
	if (Span{5, 2}).Valid() || (Span{math.NaN(), 1}).Valid() {
		t.Fatal("invalid span accepted")
	}
	if !(Span{3, 3}).Valid() {
		t.Fatal("point span rejected")
	}
}

func TestPointsAgainstOracle(t *testing.T) {
	g := wrand.New(1)
	items := genPoints(g, 1500)
	p, err := NewPoints(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1500 {
		t.Fatalf("Len = %d", p.Len())
	}
	for trial := 0; trial < 200; trial++ {
		lo := g.Float64() * 100
		q := Span{lo, lo + g.Float64()*30}
		tau := g.Float64() * 1.2e6

		var got []core.Item[float64]
		p.ReportAbove(q, tau, func(it core.Item[float64]) bool {
			got = append(got, it)
			return true
		})
		core.SortByWeightDesc(got)
		want := oracleAbove(items, q, tau)
		if len(got) != len(want) {
			t.Fatalf("q=%+v tau=%v: got %d, want %d", q, tau, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%+v: item %d = %+v, want %+v", q, i, got[i], want[i])
			}
		}

		all := oracleAbove(items, q, math.Inf(-1))
		m, ok := p.MaxItem(q)
		if len(all) == 0 {
			if ok {
				t.Fatalf("q=%+v: found max in empty range", q)
			}
		} else if !ok || m.Weight != all[0].Weight {
			t.Fatalf("q=%+v: max (%v,%v), want %v", q, m.Weight, ok, all[0].Weight)
		}
		if c := p.Count(q); c != len(all) {
			t.Fatalf("q=%+v: Count=%d, want %d", q, c, len(all))
		}
	}
}

func TestPointsUpdates(t *testing.T) {
	g := wrand.New(2)
	items := genPoints(g, 400)
	p, err := NewPoints(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := append([]core.Item[float64](nil), items...)
	for round := 0; round < 5; round++ {
		for i := 0; i < 60; i++ {
			it := core.Item[float64]{Value: g.Float64() * 100, Weight: 2e6 + g.Float64()*1e6}
			if _, dup := p.pos[it.Weight]; dup {
				continue
			}
			p.Insert(it)
			live = append(live, it)
		}
		for i := 0; i < 50; i++ {
			v := g.IntN(len(live))
			if !p.DeleteWeight(live[v].Weight) {
				t.Fatal("delete of live weight failed")
			}
			live[v] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		q := Span{20, 70}
		count := 0
		p.ReportAbove(q, math.Inf(-1), func(core.Item[float64]) bool { count++; return true })
		if want := len(oracleAbove(live, q, math.Inf(-1))); count != want {
			t.Fatalf("round %d: reported %d, want %d", round, count, want)
		}
	}
	if p.DeleteWeight(-5) {
		t.Fatal("deleted absent weight")
	}
}

func TestPointsValidation(t *testing.T) {
	dup := []core.Item[float64]{{Value: 1, Weight: 5}, {Value: 2, Weight: 5}}
	if _, err := NewPoints(dup, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
	nan := []core.Item[float64]{{Value: math.NaN(), Weight: 5}}
	if _, err := NewPoints(nan, nil); err == nil {
		t.Fatal("NaN position accepted")
	}
}

func TestPointsIOCharging(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 4})
	g := wrand.New(3)
	p, err := NewPoints(genPoints(g, 1<<14), tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.DropCache()
	tr.ResetCounters()
	p.MaxItem(Span{10, 90})
	if ios := tr.Stats().IOs(); ios == 0 || ios > 10 {
		t.Errorf("MaxItem charged %d I/Os; want a handful (log_B n)", ios)
	}
}

func TestReductionIntegration(t *testing.T) {
	// The full Theorem 2 pipeline over the 1D range problem.
	g := wrand.New(4)
	items := genPoints(g, 3000)
	exp, err := core.NewDynamicExpected(items, Match,
		NewDynamicPrioritizedFactory(nil), NewDynamicMaxFactory(nil),
		core.ExpectedOptions{B: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		lo := g.Float64() * 100
		q := Span{lo, lo + g.Float64()*40}
		for _, k := range []int{1, 10, 500} {
			got := exp.TopK(q, k)
			want := oracleAbove(items, q, math.Inf(-1))
			if k < len(want) {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i].Weight != want[i].Weight {
					t.Fatalf("k=%d item %d: %v, want %v", k, i, got[i].Weight, want[i].Weight)
				}
			}
		}
	}
}

// Property: Count agrees with reporting for arbitrary point sets/ranges.
func TestQuickCountMatchesReport(t *testing.T) {
	f := func(raw []uint16, loRaw, hiRaw uint16) bool {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		items := make([]core.Item[float64], 0, len(raw))
		seen := map[float64]bool{}
		for i, r := range raw {
			w := float64(i) + float64(r)/65536
			if seen[w] {
				continue
			}
			seen[w] = true
			items = append(items, core.Item[float64]{Value: float64(r % 100), Weight: w})
		}
		p, err := NewPoints(items, nil)
		if err != nil {
			return false
		}
		lo, hi := float64(loRaw%120), float64(hiRaw%120)
		if lo > hi {
			lo, hi = hi, lo
		}
		q := Span{lo, hi}
		count := 0
		p.ReportAbove(q, math.Inf(-1), func(core.Item[float64]) bool { count++; return true })
		return p.Count(q) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
