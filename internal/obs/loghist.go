package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// subBits sets the LogHistogram resolution: 2^subBits linear sub-buckets
// per power-of-two octave, so any recorded value is reconstructed with
// relative error at most 2^-subBits (3.125% at subBits=5). Values below
// 2^subBits get a bucket each and are exact.
const subBits = 5

// logHistBuckets covers the full non-negative int64 range: values
// 0..2^subBits-1 map to their own buckets, then each octave e =
// subBits..62 contributes 2^subBits sub-buckets.
const logHistBuckets = (64 - subBits) << subBits

// LogHistogram is an HDR-style log-bucketed histogram of non-negative
// int64 values (I/Os, nanoseconds). Observe is lock-free and wait-free
// modulo the max CAS; Quantile answers any percentile with bounded
// relative error, which is what makes p999 exact enough to gate on —
// unlike a fixed-bound Histogram, no mass is ever lumped into a final
// catch-all bucket.
//
// Reads (Quantile, Count, Sum, Max) take a relaxed snapshot: they are
// safe concurrently with Observe but may see a mid-update state, same as
// the fixed-bucket Histogram.
type LogHistogram struct {
	counts [logHistBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewLogHistogram builds an unregistered LogHistogram. Use
// Registry.NewLogHistogram to also export it as a Prometheus summary.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// bucketIndex maps v to its bucket. The layout is continuous: index v for
// v < 2^subBits, then ((e-subBits+1)<<subBits) + (v>>(e-subBits)) -
// 2^subBits for floor(log2 v) = e.
func bucketIndex(v int64) int {
	if v < 1<<subBits {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	e := 63 - bits.LeadingZeros64(uint64(v))
	sub := v >> uint(e-subBits)
	return int(int64(e-subBits+1)<<subBits + sub - 1<<subBits)
}

// bucketUpper returns the largest value mapping to bucket idx. Quantile
// reports this upper bound, so estimates only ever round up — an estimate
// q̂ of a true quantile q satisfies q ≤ q̂ ≤ q·(1+2^-subBits).
func bucketUpper(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	g := idx >> subBits // octave group ≥ 1
	within := int64(idx & (1<<subBits - 1))
	e := g - 1 + subBits
	width := int64(1) << uint(e-subBits)
	lo := (1<<subBits + within) * width
	return lo + width - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *LogHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *LogHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *LogHistogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (exact, not bucketed).
func (h *LogHistogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper estimate of the q-quantile (q in [0,1]) with
// relative error bounded by 2^-subBits: the returned value is ≥ the exact
// order statistic and at most (1+2^-subBits)× it. Quantile(0.5) is the
// median, Quantile(1) the bucketed max. An empty histogram returns 0.
func (h *LogHistogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := 0; i < logHistBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	// Concurrent observers raced count ahead of the buckets; report the
	// highest populated bound seen.
	return h.max.Load()
}
