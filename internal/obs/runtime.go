package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSnap caches one runtime.ReadMemStats per refresh interval so a
// scrape that reads several heap gauges pays a single stop-the-world
// snapshot, and back-to-back scrapes within the interval pay none.
type memSnap struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memSnap) get() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > time.Second {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return m.stat
}

// RegisterRuntimeMetrics adds Go runtime and build-info gauges to the
// registry so /metrics is self-describing in dashboards:
//
//	topk_build_info{version,go} 1
//	topk_goroutines
//	topk_heap_alloc_bytes
//	topk_heap_sys_bytes
//	topk_gc_pause_seconds_total
//	topk_gc_cycles_total
//
// version is the serving binary's own version string ("dev" when empty).
func RegisterRuntimeMetrics(r *Registry, version string) {
	if version == "" {
		version = "dev"
	}
	r.NewGauge("topk_build_info",
		"Constant 1; the binary's version and Go toolchain ride as labels.",
		Label{Key: "version", Value: version},
		Label{Key: "go", Value: runtime.Version()},
	).Set(1)
	r.NewGaugeFunc("topk_goroutines",
		"Live goroutines in the serving process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	snap := &memSnap{}
	r.NewGaugeFunc("topk_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(snap.get().HeapAlloc) })
	r.NewGaugeFunc("topk_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS (runtime.MemStats.HeapSys).",
		func() float64 { return float64(snap.get().HeapSys) })
	r.NewGaugeFunc("topk_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(snap.get().PauseTotalNs) / 1e9 })
	r.NewGaugeFunc("topk_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(snap.get().NumGC) })
}
