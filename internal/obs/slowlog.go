package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"topk/internal/em"
)

// SlowQueryLog writes a formatted phase trace for every query whose
// I/O count reaches a threshold, and keeps the most recent entries in a
// ring buffer for live inspection (e.g. a /debug/slow endpoint).
type SlowQueryLog struct {
	mu     sync.Mutex
	w      io.Writer // may be nil: ring-buffer only
	minIOs int64
	ring   []string
	next   int
	total  int64
}

// NewSlowQueryLog builds a log that records queries with IOs() >=
// minIOs, writing each entry to w (nil for ring-buffer only) and
// retaining the last keep entries.
func NewSlowQueryLog(w io.Writer, minIOs int64, keep int) *SlowQueryLog {
	if keep < 1 {
		keep = 1
	}
	return &SlowQueryLog{w: w, minIOs: minIOs, ring: make([]string, 0, keep)}
}

// MinIOs returns the logging threshold.
func (l *SlowQueryLog) MinIOs() int64 { return l.minIOs }

// Total returns how many slow queries have been recorded.
func (l *SlowQueryLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// SlowMeta carries the request-lifecycle context of one slow query into
// its log entry: the budget and deadline it ran under and how it ended.
type SlowMeta struct {
	Outcome     string        // "ok", "degraded", "budget_exceeded", "deadline_exceeded"
	Budget      int64         // I/O budget in force; 0 = unbudgeted
	Slack       time.Duration // deadline minus completion time (negative = blown)
	HasDeadline bool          // Slack is meaningful only when true
}

// Record logs one slow query. query is a human-readable description of
// the query (already formatted by the caller, so the hot path never
// pays for formatting unless the threshold fired).
func (l *SlowQueryLog) Record(index, query string, d time.Duration, st em.Stats, events []em.TraceEvent, meta SlowMeta) {
	var b strings.Builder
	fmt.Fprintf(&b, "slow query index=%s ios=%d reads=%d writes=%d hits=%d latency=%s",
		index, st.IOs(), st.Reads, st.Writes, st.Hits, d)
	if meta.Outcome == "" {
		meta.Outcome = "ok"
	}
	fmt.Fprintf(&b, " outcome=%s", meta.Outcome)
	if meta.Budget > 0 {
		fmt.Fprintf(&b, " budget=%d", meta.Budget)
	}
	if meta.HasDeadline {
		fmt.Fprintf(&b, " slack=%s", meta.Slack)
	}
	fmt.Fprintf(&b, " query=%s\n", query)
	FormatTrace(&b, events)
	entry := b.String()

	l.mu.Lock()
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, entry)
	} else {
		l.ring[l.next] = entry
		l.next = (l.next + 1) % cap(l.ring)
	}
	w := l.w
	l.mu.Unlock()

	if w != nil {
		io.WriteString(w, entry)
	}
}

// Recent returns the retained entries, oldest first.
func (l *SlowQueryLog) Recent() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.ring))
	for i := 0; i < len(l.ring); i++ {
		out = append(out, l.ring[(l.next+i)%len(l.ring)])
	}
	return out
}

// FormatTrace writes one line per span event, indented by nesting
// depth, with the event's EM cost deltas.
func FormatTrace(w io.Writer, events []em.TraceEvent) {
	for _, ev := range events {
		indent := strings.Repeat("  ", ev.Depth+1)
		level := ""
		if ev.Level >= 0 {
			level = fmt.Sprintf(" level=%d", ev.Level)
		}
		fmt.Fprintf(w, "%s%s%s arg=%d reads=%d writes=%d hits=%d\n",
			indent, ev.Phase, level, ev.Arg, ev.Reads, ev.Writes, ev.Hits)
	}
}
