package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"topk/internal/wrand"
)

// TestLogHistogramExactBelowResolution: values below 2^subBits have a
// bucket each, so their quantiles are exact.
func TestLogHistogramExactBelowResolution(t *testing.T) {
	h := NewLogHistogram()
	for v := int64(0); v < 1<<subBits; v++ {
		h.Observe(v)
	}
	for v := int64(0); v < 1<<subBits; v++ {
		q := float64(v+1) / float64(int64(1)<<subBits)
		if got := h.Quantile(q); got != v {
			t.Fatalf("Quantile(%v) = %d, want exactly %d", q, got, v)
		}
	}
}

// TestLogHistogramBoundedRelativeError is the accuracy property the
// percentile gates rely on: for any workload and any quantile, the
// histogram's estimate is ≥ the exact order statistic and at most
// (1+2^-subBits)× it.
func TestLogHistogramBoundedRelativeError(t *testing.T) {
	g := wrand.New(7)
	workloads := map[string]func(i int) int64{
		"uniform":   func(int) int64 { return int64(g.Float64() * 1e6) },
		"exp":       func(int) int64 { return int64(g.ExpFloat64() * 5e4) },
		"heavytail": func(int) int64 { return int64(math.Pow(10, g.Float64()*8)) },
		"constant":  func(int) int64 { return 12345 },
		"tiny":      func(int) int64 { return int64(g.Float64() * 40) },
	}
	quantiles := []float64{0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range workloads {
		h := NewLogHistogram()
		vals := make([]int64, 5000)
		for i := range vals {
			vals[i] = gen(i)
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range quantiles {
			rank := int(math.Ceil(q * float64(len(vals))))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			got := h.Quantile(q)
			if got < exact {
				t.Errorf("%s: Quantile(%v) = %d < exact %d (estimates must round up)", name, q, got, exact)
			}
			bound := float64(exact) * (1 + 1/float64(int64(1)<<subBits))
			if float64(got) > bound {
				t.Errorf("%s: Quantile(%v) = %d exceeds relative-error bound %v (exact %d)", name, q, got, bound, exact)
			}
		}
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	h := NewLogHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram reports count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
}

func TestLogHistogramNegativeClampsToZero(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(-5)
	if got := h.Quantile(1); got != 0 {
		t.Errorf("negative observation bucketed as %d, want 0", got)
	}
	if h.Sum() != 0 {
		t.Errorf("Sum = %d, want 0", h.Sum())
	}
}

// TestLogHistogramZeroQueryRender: a registered but never-observed
// summary must render quantile/sum/count lines with value 0, not NaN or
// garbage — the scrape a fresh server answers before its first query.
func TestLogHistogramZeroQueryRender(t *testing.T) {
	r := NewRegistry()
	r.NewLogHistogram("idle_latency_seconds", "never observed", 1e-9, Label{Key: "index", Value: "iv"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE idle_latency_seconds summary",
		`idle_latency_seconds{index="iv",quantile="0.5"} 0`,
		`idle_latency_seconds{index="iv",quantile="0.99"} 0`,
		`idle_latency_seconds{index="iv",quantile="0.999"} 0`,
		`idle_latency_seconds_sum{index="iv"} 0`,
		`idle_latency_seconds_count{index="iv"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-query render missing %q in:\n%s", want, out)
		}
	}
}

func TestLogHistogramScaleAtExport(t *testing.T) {
	r := NewRegistry()
	lh := r.NewLogHistogram("lat_seconds", "", 1e-9)
	lh.Observe(2_000_000_000) // 2s in ns
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "lat_seconds_sum 2\n") {
		t.Errorf("scale not applied to _sum:\n%s", out)
	}
	// The quantile estimate rounds up by at most 1/32.
	if !strings.Contains(out, `lat_seconds{quantile="0.5"} 2.0`) &&
		!strings.Contains(out, `lat_seconds{quantile="0.5"} 2 `) &&
		!strings.Contains(out, `lat_seconds{quantile="0.5"} 2`+"\n") {
		t.Errorf("scaled quantile missing:\n%s", out)
	}
}

func TestLogHistogramConcurrent(t *testing.T) {
	h := NewLogHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := wrand.New(uint64(w + 1))
			for i := 0; i < 2000; i++ {
				h.Observe(int64(g.Float64() * 1e6))
				if i%64 == 0 {
					h.Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8*2000 {
		t.Fatalf("Count = %d, want %d", h.Count(), 8*2000)
	}
	got := h.Quantile(1)
	if got < h.Max() {
		t.Fatalf("Quantile(1) = %d below exact max %d (estimates must round up)", got, h.Max())
	}
	if bound := float64(h.Max()) * (1 + 1/float64(int64(1)<<subBits)); float64(got) > bound {
		t.Fatalf("Quantile(1) = %d exceeds relative-error bound %v (max %d)", got, bound, h.Max())
	}
}
