package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"topk/internal/em"
)

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("got %d bounds, %d buckets", len(bounds), len(cum))
	}
	// <=1: {0.5, 1}; <=2: +{1.5}; <=4: +{3}; +Inf: +{100}
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("Sum = %v, want 106", h.Sum())
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Errorf("ExpBuckets[%d] = %v, want %v", i, exp[i], want)
		}
	}
	lin := LinearBuckets(1, 1, 3)
	for i, want := range []float64{1, 2, 3} {
		if lin[i] != want {
			t.Errorf("LinearBuckets[%d] = %v, want %v", i, lin[i], want)
		}
	}
}

func TestRegistryWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("demo_total", "A demo counter.", Label{Key: "index", Value: "iv"})
	c.Add(3)
	g := r.NewGauge("demo_items", "A demo gauge.")
	g.Set(7)
	r.NewGaugeFunc("demo_derived", "A computed gauge.", func() float64 { return 2.5 })
	h := r.NewHistogram("demo_ios", "A demo histogram.", []float64{1, 2}, Label{Key: "index", Value: "iv"})
	h.Observe(1)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP demo_total A demo counter.\n",
		"# TYPE demo_total counter\n",
		`demo_total{index="iv"} 3` + "\n",
		"# TYPE demo_items gauge\n",
		"demo_items 7\n",
		"demo_derived 2.5\n",
		"# TYPE demo_ios histogram\n",
		`demo_ios_bucket{index="iv",le="1"} 1` + "\n",
		`demo_ios_bucket{index="iv",le="2"} 1` + "\n",
		`demo_ios_bucket{index="iv",le="+Inf"} 2` + "\n",
		`demo_ios_sum{index="iv"} 6` + "\n",
		`demo_ios_count{index="iv"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.NewGauge("x_total", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate series did not panic")
			}
		}()
		r.NewCounter("x_total", "")
	}()
}

func TestRegistryEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "line1\nline2", Label{Key: "q", Value: `a"b\c`})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total line1\nline2`) {
		t.Errorf("help not escaped: %q", out)
	}
	if !strings.Contains(out, `q="a\"b\\c"`) {
		t.Errorf("label not escaped: %q", out)
	}
}

func TestCollectorQueryTrace(t *testing.T) {
	r := NewRegistry()
	qm := NewQueryMetrics(r, "iv")
	c := &Collector{M: qm}

	events := []em.TraceEvent{
		{Phase: "t2.round.fail", Level: 3, Reads: 4},
		{Phase: "t2.round.ok", Level: 3, Reads: 2},
		{Phase: "em.unattributed", Reads: 1},
	}
	st := em.Stats{Reads: 7, Writes: 1, Hits: 5}
	c.QueryTrace(events, st)

	if got := qm.Queries.Value(); got != 1 {
		t.Errorf("Queries = %d, want 1", got)
	}
	if got := qm.IOs.Count(); got != 1 {
		t.Errorf("IOs count = %d, want 1", got)
	}
	if got := qm.IOs.Sum(); got != 8 {
		t.Errorf("IOs sum = %v, want 8", got)
	}
	if got := qm.Rounds.Sum(); got != 2 {
		t.Errorf("Rounds sum = %v, want 2", got)
	}
	if got := qm.Hits.Value(); got != 5 {
		t.Errorf("Hits = %d, want 5", got)
	}
	if got := qm.Misses.Value(); got != 7 {
		t.Errorf("Misses = %d, want 7", got)
	}

	// Shared-path maintenance events.
	c.Event(em.TraceEvent{Phase: "dyn.flush"})
	c.Event(em.TraceEvent{Phase: "dyn.rebuild"})
	c.Event(em.TraceEvent{Phase: "t2.rebuild"})
	if got := qm.Flushes.Value(); got != 1 {
		t.Errorf("Flushes = %d, want 1", got)
	}
	if got := qm.Rebuilds.Value(); got != 2 {
		t.Errorf("Rebuilds = %d, want 2", got)
	}
}

func TestCountRounds(t *testing.T) {
	events := []em.TraceEvent{
		{Phase: "t2.round.ok"},
		{Phase: "t2.round.direct"},
		{Phase: "t2.probe.ok"},
		{Phase: "t1.level"},
	}
	if got := CountRounds(events); got != 2 {
		t.Errorf("CountRounds = %d, want 2", got)
	}
}

func TestSlowQueryLogRingAndWriter(t *testing.T) {
	var sb safeBuilder
	l := NewSlowQueryLog(&sb, 10, 2)
	st := em.Stats{Reads: 12, Writes: 0, Hits: 3}
	ev := []em.TraceEvent{{Phase: "t1.level", Level: 2, Arg: 9, Reads: 12}}
	l.Record("iv", "q1", time.Millisecond, st, ev, SlowMeta{})
	l.Record("iv", "q2", time.Millisecond, st, nil, SlowMeta{})
	l.Record("iv", "q3", time.Millisecond, st, nil, SlowMeta{})

	if l.Total() != 3 {
		t.Errorf("Total = %d, want 3", l.Total())
	}
	recent := l.Recent()
	if len(recent) != 2 {
		t.Fatalf("Recent len = %d, want 2", len(recent))
	}
	if !strings.Contains(recent[0], "q2") || !strings.Contains(recent[1], "q3") {
		t.Errorf("ring order wrong: %q", recent)
	}
	out := sb.String()
	if !strings.Contains(out, "ios=12") || !strings.Contains(out, "t1.level level=2 arg=9 reads=12") {
		t.Errorf("writer output missing fields:\n%s", out)
	}
}

func TestMetricsConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	qm := NewQueryMetrics(r, "iv")
	c := &Collector{M: qm}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.QueryTrace([]em.TraceEvent{{Phase: "t2.round.ok"}}, em.Stats{Reads: 1})
			}
		}()
	}
	wg.Wait()
	if got := qm.Queries.Value(); got != 8000 {
		t.Errorf("Queries = %d, want 8000", got)
	}
	if got := qm.IOs.Count(); got != 8000 {
		t.Errorf("IOs count = %d, want 8000", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}

// safeBuilder is a mutex-guarded strings.Builder for concurrent writers.
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
