package obs

import (
	"strings"
	"sync"

	"topk/internal/em"
)

// QueryMetrics is the standard metric bundle for one index instance.
// Names match the exposition in DESIGN.md §9; every series carries an
// {index="..."} label (plus any extra labels, e.g. shard="0" for one
// shard of a partitioned index) so several instances can share one
// Registry.
type QueryMetrics struct {
	Queries     *Counter   // topk_queries_total
	Latency     *Histogram // topk_query_latency_seconds
	IOs         *Histogram // topk_query_ios
	Rounds      *Histogram // topk_t2_rounds
	Hits        *Counter   // topk_cache_hits_total
	Misses      *Counter   // topk_cache_misses_total
	Flushes     *Counter   // topk_flushes_total
	Rebuilds    *Counter   // topk_rebuilds_total
	SlowQueries *Counter   // topk_slow_queries_total
	Items       *Gauge     // topk_index_items
	Levels      *Gauge     // topk_overlay_levels

	// Request-lifecycle series (PR 8). LatencyQ and IOsQ are HDR-style
	// summaries giving p50/p99/p999 at bounded relative error; the
	// fixed-bucket Latency/IOs histograms above stay for rate() dashboards.
	LatencyQ         *LogHistogram // topk_query_latency (seconds, quantiles)
	IOsQ             *LogHistogram // topk_query_ios_quantiles
	BudgetAborts     *Counter      // topk_budget_aborts_total
	DeadlineExceeded *Counter      // topk_deadline_exceeded_total
	Degraded         *Counter      // topk_degraded_results_total

	// Per-operation update-cost attribution: one observation per
	// Insert/Delete with the exact I/O delta of that operation, so the
	// amortized picture (p50 near the cheap common case) and the rebuild
	// spikes (p999/max) are both visible. Flush and rebuild spikes get
	// their own series rather than being averaged into UpdateIOs' median.
	UpdateIOs  *LogHistogram // topk_update_ios
	FlushIOs   *LogHistogram // topk_flush_ios
	RebuildIOs *LogHistogram // topk_rebuild_ios

	// PolicyBuffered maintenance series (PR 9). Partial rebuilds replace
	// the logarithmic policy's global rebuilds, so they get the same
	// count-plus-spike treatment; the run gauges expose how much merge
	// debt the tiered ladder is currently carrying.
	PartialRebuilds   *Counter      // topk_partial_rebuilds_total
	PartialRebuildIOs *LogHistogram // topk_partial_rebuild_ios
	BufferedRuns      *Gauge        // topk_overlay_buffered_runs
	BufferedItems     *Gauge        // topk_overlay_buffered_items
}

// NewQueryMetrics registers the standard bundle under the given index
// label plus any extra constant labels. Instances sharing a Registry
// must differ in at least one label (the registry panics on duplicate
// series).
func NewQueryMetrics(r *Registry, index string, extra ...Label) *QueryMetrics {
	ls := append([]Label{{Key: "index", Value: index}}, extra...)
	return &QueryMetrics{
		Queries: r.NewCounter("topk_queries_total",
			"Top-k queries served.", ls...),
		Latency: r.NewHistogram("topk_query_latency_seconds",
			"Wall-clock latency per top-k query.",
			ExpBuckets(1e-6, 4, 12), ls...),
		IOs: r.NewHistogram("topk_query_ios",
			"Counted EM I/Os (reads+writes) per top-k query.",
			ExpBuckets(1, 2, 16), ls...),
		Rounds: r.NewHistogram("topk_t2_rounds",
			"Theorem 2 sampling rounds per query (Lemma 3 predicts a geometric tail).",
			LinearBuckets(1, 1, 12), ls...),
		Hits: r.NewCounter("topk_cache_hits_total",
			"EM block touches served from the memory cache.", ls...),
		Misses: r.NewCounter("topk_cache_misses_total",
			"EM block touches that cost a read I/O.", ls...),
		Flushes: r.NewCounter("topk_flushes_total",
			"Logarithmic-method tail flushes into the overlay ladder.", ls...),
		Rebuilds: r.NewCounter("topk_rebuilds_total",
			"Full structure rebuilds (overlay compaction or Theorem 2 epoch).", ls...),
		SlowQueries: r.NewCounter("topk_slow_queries_total",
			"Queries whose I/O count crossed the slow-query threshold.", ls...),
		Items: r.NewGauge("topk_index_items",
			"Live items currently indexed.", ls...),
		Levels: r.NewGauge("topk_overlay_levels",
			"Occupied levels in the dynamic overlay ladder (0 for static indexes).", ls...),
		LatencyQ: r.NewLogHistogram("topk_query_latency",
			"Wall-clock latency per top-k query (log-bucketed summary, ≤3.2% relative error).",
			1e-9, ls...),
		IOsQ: r.NewLogHistogram("topk_query_ios_quantiles",
			"Counted EM I/Os per top-k query (log-bucketed summary).", 1, ls...),
		BudgetAborts: r.NewCounter("topk_budget_aborts_total",
			"Queries aborted because they exceeded their I/O budget.", ls...),
		DeadlineExceeded: r.NewCounter("topk_deadline_exceeded_total",
			"Queries aborted because they blew their wall-clock deadline.", ls...),
		Degraded: r.NewCounter("topk_degraded_results_total",
			"Aborted queries served the documented Max (top-1) fallback.", ls...),
		UpdateIOs: r.NewLogHistogram("topk_update_ios",
			"EM I/Os per Insert/Delete operation (per-op amortized-cost attribution).",
			1, ls...),
		FlushIOs: r.NewLogHistogram("topk_flush_ios",
			"EM I/Os per overlay tail flush (update-cost spike series).", 1, ls...),
		RebuildIOs: r.NewLogHistogram("topk_rebuild_ios",
			"EM I/Os per full structure rebuild (update-cost spike series).", 1, ls...),
		PartialRebuilds: r.NewCounter("topk_partial_rebuilds_total",
			"Weight-balanced partial rebuilds of single overlay runs (buffered policy).", ls...),
		PartialRebuildIOs: r.NewLogHistogram("topk_partial_rebuild_ios",
			"EM I/Os per partial rebuild (update-cost spike series, buffered policy).", 1, ls...),
		BufferedRuns: r.NewGauge("topk_overlay_buffered_runs",
			"Pending un-cascaded runs in the buffered policy's tiered ladder.", ls...),
		BufferedItems: r.NewGauge("topk_overlay_buffered_items",
			"Items held in pending buffered runs awaiting a cascade merge.", ls...),
	}
}

// PhaseIOs lazily registers one topk_phase_ios summary per observed span
// phase, labelled {index,...,phase}, so per problem × phase × shard I/O
// quantiles come out of one scrape. Registration happens at most once per
// phase name; observation is a read-locked map hit plus a lock-free
// LogHistogram update.
type PhaseIOs struct {
	r      *Registry
	labels []Label
	mu     sync.RWMutex
	byName map[string]*LogHistogram
}

// NewPhaseIOs builds the per-phase attribution table for one index
// instance. The labels are the same constant set as the instance's
// QueryMetrics bundle.
func NewPhaseIOs(r *Registry, index string, extra ...Label) *PhaseIOs {
	ls := append([]Label{{Key: "index", Value: index}}, extra...)
	return &PhaseIOs{r: r, labels: ls, byName: make(map[string]*LogHistogram)}
}

// Observe records ios I/Os attributed to phase.
func (p *PhaseIOs) Observe(phase string, ios int64) {
	p.mu.RLock()
	h := p.byName[phase]
	p.mu.RUnlock()
	if h == nil {
		p.mu.Lock()
		h = p.byName[phase]
		if h == nil {
			ls := append(p.labels[:len(p.labels):len(p.labels)], Label{Key: "phase", Value: phase})
			h = p.r.NewLogHistogram("topk_phase_ios",
				"EM I/Os per query attributed to one span phase (log-bucketed summary).",
				1, ls...)
			p.byName[phase] = h
		}
		p.mu.Unlock()
	}
	h.Observe(ios)
}

// StoreMetrics is the metric bundle for one index's EM cache policy and
// physical block store. The series are cumulative totals refreshed from
// counter snapshots (Tracker.CacheStats / Tracker.StoreStats), so they
// are registered as gauges and Set on every refresh. Every series
// carries a {policy="lru"|"tinylfu"} label alongside the index label,
// so hit/eviction rates of different admission policies separate
// cleanly in one scrape.
type StoreMetrics struct {
	Evictions        *Gauge // topk_cache_evictions_total
	AdmissionRejects *Gauge // topk_cache_admission_rejects_total
	SketchResets     *Gauge // topk_cache_sketch_resets_total
	StoreReads       *Gauge // topk_store_reads_total
	StoreWrites      *Gauge // topk_store_writes_total
	StoreReadBytes   *Gauge // topk_store_read_bytes_total
	StoreWriteBytes  *Gauge // topk_store_written_bytes_total
	StoreFaults      *Gauge // topk_store_faults_total
}

// NewStoreMetrics registers the cache/store bundle under the given
// index and policy labels plus any extra constant labels.
func NewStoreMetrics(r *Registry, index, policy string, extra ...Label) *StoreMetrics {
	ls := append([]Label{{Key: "index", Value: index}, {Key: "policy", Value: policy}}, extra...)
	return &StoreMetrics{
		Evictions: r.NewGauge("topk_cache_evictions_total",
			"Frames displaced from the EM cache by the replacement policy.", ls...),
		AdmissionRejects: r.NewGauge("topk_cache_admission_rejects_total",
			"Missed blocks the TinyLFU admission filter refused to cache.", ls...),
		SketchResets: r.NewGauge("topk_cache_sketch_resets_total",
			"TinyLFU frequency-sketch aging resets (doorkeeper clear + sketch halve).", ls...),
		StoreReads: r.NewGauge("topk_store_reads_total",
			"Physical block reads against the disk store (one pread per cache miss).", ls...),
		StoreWrites: r.NewGauge("topk_store_writes_total",
			"Physical block writes against the disk store.", ls...),
		StoreReadBytes: r.NewGauge("topk_store_read_bytes_total",
			"Bytes physically read from the disk store.", ls...),
		StoreWriteBytes: r.NewGauge("topk_store_written_bytes_total",
			"Bytes physically written to the disk store.", ls...),
		StoreFaults: r.NewGauge("topk_store_faults_total",
			"Physical-store failures observed (answers are unaffected; see StoreErr).", ls...),
	}
}

// Collector adapts an em.TraceSink stream into a QueryMetrics bundle.
// Shared-path events (flushes, rebuilds) arrive via Event; per-query
// traces arrive via QueryTrace with the query's exact Stats delta.
// All updates are atomic, so one Collector serves concurrent queries.
type Collector struct {
	M *QueryMetrics
	// Phases, when non-nil, attributes each query's depth-0 span I/Os to
	// a per-phase summary series.
	Phases *PhaseIOs
}

var _ em.TraceSink = (*Collector)(nil)

// Event counts structural maintenance work delivered outside a query
// view: flushes and rebuilds from inserts/deletes. Their I/O deltas feed
// the spike series so rebuild cost is never averaged away.
func (c *Collector) Event(ev em.TraceEvent) {
	switch {
	case strings.HasSuffix(ev.Phase, ".flush"):
		c.M.Flushes.Inc()
		c.M.FlushIOs.Observe(ev.Reads + ev.Writes)
	case strings.HasSuffix(ev.Phase, ".rebuild"):
		c.M.Rebuilds.Inc()
		c.M.RebuildIOs.Observe(ev.Reads + ev.Writes)
	case strings.HasSuffix(ev.Phase, ".partial"):
		c.M.PartialRebuilds.Inc()
		c.M.PartialRebuildIOs.Observe(ev.Reads + ev.Writes)
	}
}

// QueryTrace observes one finished query: its exact I/O and cache-hit
// deltas from st, plus the Theorem 2 round count derived from the
// trace's t2.round.* span events.
func (c *Collector) QueryTrace(events []em.TraceEvent, st em.Stats) {
	c.M.Queries.Inc()
	c.M.IOs.Observe(float64(st.IOs()))
	c.M.IOsQ.Observe(st.IOs())
	c.M.Hits.Add(st.Hits)
	c.M.Misses.Add(st.Reads)
	if r := CountRounds(events); r > 0 {
		c.M.Rounds.Observe(float64(r))
	}
	for _, ev := range events {
		c.Event(ev)
		if c.Phases != nil && ev.Depth == 0 {
			c.Phases.Observe(ev.Phase, ev.Reads+ev.Writes)
		}
	}
}

// CountRounds returns the number of Theorem 2 sampling rounds recorded
// in a query trace (span phases prefixed "t2.round").
func CountRounds(events []em.TraceEvent) int {
	n := 0
	for _, ev := range events {
		if strings.HasPrefix(ev.Phase, "t2.round") {
			n++
		}
	}
	return n
}
