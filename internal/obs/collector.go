package obs

import (
	"strings"

	"topk/internal/em"
)

// QueryMetrics is the standard metric bundle for one index instance.
// Names match the exposition in DESIGN.md §9; every series carries an
// {index="..."} label (plus any extra labels, e.g. shard="0" for one
// shard of a partitioned index) so several instances can share one
// Registry.
type QueryMetrics struct {
	Queries     *Counter   // topk_queries_total
	Latency     *Histogram // topk_query_latency_seconds
	IOs         *Histogram // topk_query_ios
	Rounds      *Histogram // topk_t2_rounds
	Hits        *Counter   // topk_cache_hits_total
	Misses      *Counter   // topk_cache_misses_total
	Flushes     *Counter   // topk_flushes_total
	Rebuilds    *Counter   // topk_rebuilds_total
	SlowQueries *Counter   // topk_slow_queries_total
	Items       *Gauge     // topk_index_items
	Levels      *Gauge     // topk_overlay_levels
}

// NewQueryMetrics registers the standard bundle under the given index
// label plus any extra constant labels. Instances sharing a Registry
// must differ in at least one label (the registry panics on duplicate
// series).
func NewQueryMetrics(r *Registry, index string, extra ...Label) *QueryMetrics {
	ls := append([]Label{{Key: "index", Value: index}}, extra...)
	return &QueryMetrics{
		Queries: r.NewCounter("topk_queries_total",
			"Top-k queries served.", ls...),
		Latency: r.NewHistogram("topk_query_latency_seconds",
			"Wall-clock latency per top-k query.",
			ExpBuckets(1e-6, 4, 12), ls...),
		IOs: r.NewHistogram("topk_query_ios",
			"Counted EM I/Os (reads+writes) per top-k query.",
			ExpBuckets(1, 2, 16), ls...),
		Rounds: r.NewHistogram("topk_t2_rounds",
			"Theorem 2 sampling rounds per query (Lemma 3 predicts a geometric tail).",
			LinearBuckets(1, 1, 12), ls...),
		Hits: r.NewCounter("topk_cache_hits_total",
			"EM block touches served from the memory cache.", ls...),
		Misses: r.NewCounter("topk_cache_misses_total",
			"EM block touches that cost a read I/O.", ls...),
		Flushes: r.NewCounter("topk_flushes_total",
			"Logarithmic-method tail flushes into the overlay ladder.", ls...),
		Rebuilds: r.NewCounter("topk_rebuilds_total",
			"Full structure rebuilds (overlay compaction or Theorem 2 epoch).", ls...),
		SlowQueries: r.NewCounter("topk_slow_queries_total",
			"Queries whose I/O count crossed the slow-query threshold.", ls...),
		Items: r.NewGauge("topk_index_items",
			"Live items currently indexed.", ls...),
		Levels: r.NewGauge("topk_overlay_levels",
			"Occupied levels in the dynamic overlay ladder (0 for static indexes).", ls...),
	}
}

// StoreMetrics is the metric bundle for one index's EM cache policy and
// physical block store. The series are cumulative totals refreshed from
// counter snapshots (Tracker.CacheStats / Tracker.StoreStats), so they
// are registered as gauges and Set on every refresh. Every series
// carries a {policy="lru"|"tinylfu"} label alongside the index label,
// so hit/eviction rates of different admission policies separate
// cleanly in one scrape.
type StoreMetrics struct {
	Evictions        *Gauge // topk_cache_evictions_total
	AdmissionRejects *Gauge // topk_cache_admission_rejects_total
	SketchResets     *Gauge // topk_cache_sketch_resets_total
	StoreReads       *Gauge // topk_store_reads_total
	StoreWrites      *Gauge // topk_store_writes_total
	StoreReadBytes   *Gauge // topk_store_read_bytes_total
	StoreWriteBytes  *Gauge // topk_store_written_bytes_total
	StoreFaults      *Gauge // topk_store_faults_total
}

// NewStoreMetrics registers the cache/store bundle under the given
// index and policy labels plus any extra constant labels.
func NewStoreMetrics(r *Registry, index, policy string, extra ...Label) *StoreMetrics {
	ls := append([]Label{{Key: "index", Value: index}, {Key: "policy", Value: policy}}, extra...)
	return &StoreMetrics{
		Evictions: r.NewGauge("topk_cache_evictions_total",
			"Frames displaced from the EM cache by the replacement policy.", ls...),
		AdmissionRejects: r.NewGauge("topk_cache_admission_rejects_total",
			"Missed blocks the TinyLFU admission filter refused to cache.", ls...),
		SketchResets: r.NewGauge("topk_cache_sketch_resets_total",
			"TinyLFU frequency-sketch aging resets (doorkeeper clear + sketch halve).", ls...),
		StoreReads: r.NewGauge("topk_store_reads_total",
			"Physical block reads against the disk store (one pread per cache miss).", ls...),
		StoreWrites: r.NewGauge("topk_store_writes_total",
			"Physical block writes against the disk store.", ls...),
		StoreReadBytes: r.NewGauge("topk_store_read_bytes_total",
			"Bytes physically read from the disk store.", ls...),
		StoreWriteBytes: r.NewGauge("topk_store_written_bytes_total",
			"Bytes physically written to the disk store.", ls...),
		StoreFaults: r.NewGauge("topk_store_faults_total",
			"Physical-store failures observed (answers are unaffected; see StoreErr).", ls...),
	}
}

// Collector adapts an em.TraceSink stream into a QueryMetrics bundle.
// Shared-path events (flushes, rebuilds) arrive via Event; per-query
// traces arrive via QueryTrace with the query's exact Stats delta.
// All updates are atomic, so one Collector serves concurrent queries.
type Collector struct {
	M *QueryMetrics
}

var _ em.TraceSink = (*Collector)(nil)

// Event counts structural maintenance work delivered outside a query
// view: flushes and rebuilds from inserts/deletes.
func (c *Collector) Event(ev em.TraceEvent) {
	switch {
	case strings.HasSuffix(ev.Phase, ".flush"):
		c.M.Flushes.Inc()
	case strings.HasSuffix(ev.Phase, ".rebuild"):
		c.M.Rebuilds.Inc()
	}
}

// QueryTrace observes one finished query: its exact I/O and cache-hit
// deltas from st, plus the Theorem 2 round count derived from the
// trace's t2.round.* span events.
func (c *Collector) QueryTrace(events []em.TraceEvent, st em.Stats) {
	c.M.Queries.Inc()
	c.M.IOs.Observe(float64(st.IOs()))
	c.M.Hits.Add(st.Hits)
	c.M.Misses.Add(st.Reads)
	if r := CountRounds(events); r > 0 {
		c.M.Rounds.Observe(float64(r))
	}
	for _, ev := range events {
		c.Event(ev)
	}
}

// CountRounds returns the number of Theorem 2 sampling rounds recorded
// in a query trace (span phases prefixed "t2.round").
func CountRounds(events []em.TraceEvent) int {
	n := 0
	for _, ev := range events {
		if strings.HasPrefix(ev.Phase, "t2.round") {
			n++
		}
	}
	return n
}
