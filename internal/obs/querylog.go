package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// WideEvent is the one-line JSON record a QueryLogger emits per query:
// everything the serving layer knows about a request's lifecycle in a
// single wide row, so one grep answers "what did this query cost and how
// did it end" without joining log streams. Field order is fixed by the
// struct, making the output schema deterministic.
type WideEvent struct {
	TS        string           `json:"ts"` // RFC3339Nano completion time
	Problem   string           `json:"problem"`
	Shard     string           `json:"shard,omitempty"`
	Query     string           `json:"query"`
	K         int              `json:"k,omitempty"`
	LatencyUS int64            `json:"latency_us"`
	Reads     int64            `json:"reads"`
	Writes    int64            `json:"writes"`
	Hits      int64            `json:"hits"`
	IOs       int64            `json:"ios"`
	HitRate   float64          `json:"hit_rate"`
	PhaseIOs  map[string]int64 `json:"phase_ios,omitempty"`
	BudgetIOs int64            `json:"budget_ios,omitempty"`
	// DeadlineSlackUS is deadline minus completion time in microseconds;
	// negative when the deadline was blown. Present only when the query
	// ran under a deadline.
	DeadlineSlackUS *int64 `json:"deadline_slack_us,omitempty"`
	Outcome         string `json:"outcome"`
}

// QueryLogger serializes WideEvents as newline-delimited JSON onto one
// writer. Log is mutex-guarded so concurrent query workers never
// interleave bytes within a line.
type QueryLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewQueryLogger builds a logger writing NDJSON to w.
func NewQueryLogger(w io.Writer) *QueryLogger {
	return &QueryLogger{enc: json.NewEncoder(w)}
}

// Log emits one event, stamping TS if the caller left it empty.
func (l *QueryLogger) Log(ev WideEvent) {
	if ev.TS == "" {
		ev.TS = time.Now().UTC().Format(time.RFC3339Nano)
	}
	if ev.Outcome == "" {
		ev.Outcome = "ok"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enc.Encode(ev)
}
