package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Label is one constant name=value pair attached to a metric at
// registration time (e.g. {"index", "interval"}).
type Label struct{ Key, Value string }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindSummary:
		return "summary"
	}
	return "untyped"
}

// summaryQuantiles are the φ lines a LogHistogram exports.
var summaryQuantiles = []float64{0.5, 0.99, 0.999}

// series is one registered metric instance: a family member with a
// concrete label set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
	lh     *LogHistogram
	scale  float64 // multiplies lh values at export (e.g. 1e-9 ns→s)
}

// family groups all series sharing a metric name; HELP/TYPE are emitted
// once per family.
type family struct {
	name, help string
	kind       metricKind
	series     []*series
}

// Registry is a set of named metrics with Prometheus text exposition.
// Registration is mutex-guarded; the registered metrics themselves are
// lock-free. The zero value is not usable — call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a series, creating its family on first use. It panics on
// kind mismatches within a family or duplicate (name, labels) series —
// both are programming errors that would silently corrupt the export.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	key := labelKey(s.labels)
	for _, prev := range f.series {
		if labelKey(prev.labels) == key {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, key))
		}
	}
	f.series = append(f.series, s)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: sortLabels(labels), c: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{labels: sortLabels(labels), g: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at export time.
// f must be safe to call concurrently with everything else (read only
// from atomics).
func (r *Registry) NewGaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, &series{labels: sortLabels(labels), gf: f})
}

// NewHistogram registers and returns a histogram over the given
// ascending bucket upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, kindHistogram, &series{labels: sortLabels(labels), h: h})
	return h
}

// NewLogHistogram registers a LogHistogram exported as a Prometheus
// summary: quantile lines for φ ∈ {0.5, 0.99, 0.999} plus _sum and
// _count. scale multiplies observed values at export time so a histogram
// fed nanoseconds can expose seconds (scale 1e-9); pass 1 for unit
// values such as I/Os.
func (r *Registry) NewLogHistogram(name, help string, scale float64, labels ...Label) *LogHistogram {
	if scale == 0 {
		scale = 1
	}
	lh := NewLogHistogram()
	r.register(name, help, kindSummary, &series{labels: sortLabels(labels), lh: lh, scale: scale})
	return lh
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE per family, then one
// line per series — histograms expand to cumulative _bucket lines plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" { // HELP is optional in the 0.0.4 format
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, s.labels, "", float64(s.c.Value()))
			case kindGauge:
				writeSample(&b, f.name, s.labels, "", float64(s.g.Value()))
			case kindGaugeFunc:
				writeSample(&b, f.name, s.labels, "", s.gf())
			case kindHistogram:
				bounds, cum := s.h.Buckets()
				for i, ub := range bounds {
					le := Label{Key: "le", Value: formatFloat(ub)}
					writeSample(&b, f.name+"_bucket", append(s.labels[:len(s.labels):len(s.labels)], le), "", float64(cum[i]))
				}
				inf := Label{Key: "le", Value: "+Inf"}
				writeSample(&b, f.name+"_bucket", append(s.labels[:len(s.labels):len(s.labels)], inf), "", float64(cum[len(cum)-1]))
				writeSample(&b, f.name+"_sum", s.labels, "", s.h.Sum())
				writeSample(&b, f.name+"_count", s.labels, "", float64(s.h.Count()))
			case kindSummary:
				for _, q := range summaryQuantiles {
					ql := Label{Key: "quantile", Value: formatFloat(q)}
					writeSample(&b, f.name, append(s.labels[:len(s.labels):len(s.labels)], ql), "", float64(s.lh.Quantile(q))*s.scale)
				}
				writeSample(&b, f.name+"_sum", s.labels, "", float64(s.lh.Sum())*s.scale)
				writeSample(&b, f.name+"_count", s.labels, "", float64(s.lh.Count()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name string, labels []Label, suffix string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation, with integral values bare.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// The 0.0.4 text format escapes backslash, double-quote, and newline in
// label values, and only backslash and newline in HELP text. The
// replacers are package-level so a scrape does not reallocate them per
// sample line.
var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return labelEscaper.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return helpEscaper.Replace(s)
}

func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}
