// Package obs is the repository's zero-dependency observability layer:
// an atomic metrics registry with Prometheus text exposition, a trace
// collector that turns em.TraceSink span streams into metrics, and a
// slow-query log that captures the full phase trace of expensive
// queries.
//
// The paper's bounds are statements about counted I/Os per query phase
// (Theorem 1's cost-monitored probes over nested core-set levels,
// Theorem 2's rounds), so the metrics here are phrased in the same
// vocabulary: I/Os per query, rounds per query, cache hit rate, overlay
// shape. Everything is stdlib-only and safe for concurrent use; metric
// updates are single atomic operations so they can sit on query paths.
package obs

import (
	"math"
	"sync/atomic"
)

// A Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus counter contract).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is an integer-valued metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed, cumulative-at-export
// buckets, Prometheus-style: bucket i counts observations <= Bounds[i],
// with an implicit +Inf bucket at the end. Observe is lock-free.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative per bucket
	count  atomic.Int64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. It panics on empty or non-ascending bounds, since a
// misconfigured histogram would silently misbucket every observation.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Buckets returns the upper bounds and the *cumulative* counts per
// bucket, ending with the +Inf bucket (== Count()). The snapshot is not
// atomic across buckets, but each bucket is monotone, so cumulative
// counts are always <= a concurrent Count().
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	cumulative = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return h.bounds, cumulative
}

// atomicFloat is a CAS-loop float64 accumulator.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// ExpBuckets returns n strictly ascending bounds start, start·factor,
// start·factor², … — the standard exponential bucket ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, start+2·width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
