package obs

import "sync"

// ClusterMetrics is the metric bundle of the cluster coordinator
// (internal/cluster): hedge and degradation counters, per-replica
// request/error counters, and the live shard-request latency and I/O
// summaries the coordinator's hedge delay and admission budget are
// derived from. Everything is registered on one Registry so a single
// /metrics scrape shows the whole serving discipline.
type ClusterMetrics struct {
	reg *Registry

	// Hedged counts shard requests that launched a hedge (second
	// replica raced after the hedge delay); HedgeWins counts the subset
	// where the hedge answered first.
	Hedged    *Counter
	HedgeWins *Counter
	// Degraded counts queries the coordinator served as the top-1
	// fallback prefix; Unavailable counts queries where some shard's
	// whole replica group failed to answer.
	Degraded    *Counter
	Unavailable *Counter

	// ShardLatency observes per-shard-request wall latency in
	// nanoseconds (exported as seconds); ShardIOs observes the simulated
	// I/Os each shard request reported. Their live p99s drive the hedge
	// delay and the admission budget respectively.
	ShardLatency *LogHistogram
	ShardIOs     *LogHistogram

	// HedgeDelayUS and AdmissionBudget expose the currently derived
	// control values (microseconds and I/Os).
	HedgeDelayUS    *Gauge
	AdmissionBudget *Gauge

	mu          sync.Mutex
	replicaReqs map[string]*Counter
	replicaErrs map[string]*Counter
}

// NewClusterMetrics registers the cluster metric bundle on reg.
func NewClusterMetrics(reg *Registry) *ClusterMetrics {
	return &ClusterMetrics{
		reg: reg,
		Hedged: reg.NewCounter("topk_hedged_requests_total",
			"Shard requests that launched a hedged second attempt after the hedge delay."),
		HedgeWins: reg.NewCounter("topk_hedge_wins_total",
			"Hedged shard requests where the hedge answered before the primary."),
		Degraded: reg.NewCounter("topk_degraded_queries_total",
			"Queries served as the provably-correct top-1 fallback prefix."),
		Unavailable: reg.NewCounter("topk_replica_unavailable_total",
			"Queries failed because some shard's whole replica group did not answer."),
		ShardLatency: reg.NewLogHistogram("topk_cluster_shard_latency_seconds",
			"Wall latency of successful per-shard replica requests.", 1e-9),
		ShardIOs: reg.NewLogHistogram("topk_cluster_shard_ios",
			"Simulated I/Os reported per shard request (sum over the request's queries).", 1),
		HedgeDelayUS: reg.NewGauge("topk_hedge_delay_us",
			"Hedge delay currently in force, microseconds (p99-derived unless pinned)."),
		AdmissionBudget: reg.NewGauge("topk_admission_budget_ios",
			"Per-query per-shard I/O budget currently derived by admission control (0 = unlimited)."),
		replicaReqs: make(map[string]*Counter),
		replicaErrs: make(map[string]*Counter),
	}
}

// Registry returns the registry the bundle is registered on.
func (m *ClusterMetrics) Registry() *Registry { return m.reg }

// replicaCounter lazily registers one node-labelled counter per replica;
// the node set is only known as traffic arrives.
func (m *ClusterMetrics) replicaCounter(byNode map[string]*Counter, name, help, node string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := byNode[node]
	if !ok {
		c = m.reg.NewCounter(name, help, Label{Key: "node", Value: node})
		byNode[node] = c
	}
	return c
}

// ReplicaRequest counts one shard request dispatched to node.
func (m *ClusterMetrics) ReplicaRequest(node string) {
	m.replicaCounter(m.replicaReqs, "topk_replica_requests_total",
		"Shard requests dispatched per replica node.", node).Inc()
}

// ReplicaError counts one failed shard request against node.
func (m *ClusterMetrics) ReplicaError(node string) {
	m.replicaCounter(m.replicaErrs, "topk_replica_errors_total",
		"Failed shard requests per replica node.", node).Inc()
}
