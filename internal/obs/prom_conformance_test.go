package obs

import (
	"strings"
	"sync"
	"testing"

	"topk/internal/em"
)

// TestPrometheusTextConformance pins the full exposition of a small
// registry against the text format, version 0.0.4: HELP then TYPE per
// family, samples in registration order, label values escaped
// (backslash, double-quote, newline), HELP escaped (backslash, newline
// only — quotes stay literal), histogram expansion with a +Inf bucket,
// summary expansion with quantile labels.
func TestPrometheusTextConformance(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", `count of \ jobs`+"\nsecond line", Label{Key: "path", Value: `C:\tmp`})
	c.Add(3)
	g := r.NewGauge("depth", "", Label{Key: "q", Value: "a\"b"}, Label{Key: "a", Value: "nl\nend"})
	g.Set(-2)
	h := r.NewHistogram("cost", "buckets", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	lh := r.NewLogHistogram("lat", "quantiles", 1)
	lh.Observe(7)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total count of \\ jobs\nsecond line
# TYPE jobs_total counter
jobs_total{path="C:\\tmp"} 3
# TYPE depth gauge
depth{a="nl\nend",q="a\"b"} -2
# HELP cost buckets
# TYPE cost histogram
cost_bucket{le="1"} 1
cost_bucket{le="10"} 2
cost_bucket{le="+Inf"} 3
cost_sum 55.5
cost_count 3
# HELP lat quantiles
# TYPE lat summary
lat{quantile="0.5"} 7
lat{quantile="0.99"} 7
lat{quantile="0.999"} 7
lat_sum 7
lat_count 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCollectorConcurrentLifecycle hammers the full collector surface —
// query traces, shared events, lazy per-phase registration, scrapes —
// from many goroutines so the race detector can inspect the new
// summary and phase-attribution paths.
func TestCollectorConcurrentLifecycle(t *testing.T) {
	r := NewRegistry()
	qm := NewQueryMetrics(r, "iv")
	c := &Collector{M: qm, Phases: NewPhaseIOs(r, "iv")}
	phases := []string{"t1.topk", "t2.round.ok", "t2.round.fail", "dyn.tail"}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ph := phases[(w+i)%len(phases)]
				c.QueryTrace([]em.TraceEvent{
					{Phase: ph, Depth: 0, Reads: int64(i % 17)},
					{Phase: "t1.inner", Depth: 1, Reads: 1},
				}, em.Stats{Reads: int64(i%17) + 1})
				if i%100 == 0 {
					c.Event(em.TraceEvent{Phase: "dyn.flush", Reads: 3})
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, ph := range phases {
		if !strings.Contains(out, `phase="`+ph+`"`) {
			t.Errorf("per-phase series %q missing from exposition", ph)
		}
	}
	if strings.Contains(out, `phase="t1.inner"`) {
		t.Error("depth-1 span leaked into the per-phase attribution (depth-0 only)")
	}
	if qm.Queries.Value() != 8*500 {
		t.Errorf("queries counter = %d, want %d", qm.Queries.Value(), 8*500)
	}
}
