// Package circular implements the paper's Corollary 1 (top-k circular
// range reporting) by the standard lifting trick: a point p ∈ ℝ^d maps to
// p' = (p, |p|²) ∈ ℝ^(d+1), and the ball predicate dist(x, q) ≤ r becomes
// a halfspace on the lifted points:
//
//	|x − q|² ≤ r²  ⟺  2q·x − |x|² ≥ |q|² − r².
//
// Every circular structure is therefore a (d+1)-dimensional halfspace
// structure (package halfspace) over the lifted set.
package circular

import (
	"fmt"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
)

// Ball is the predicate {x : dist(x, Center) ≤ R}.
type Ball struct {
	Center []float64
	R      float64
}

// Contains reports whether p (a d-dimensional point) lies in the ball.
func (b Ball) Contains(p []float64) bool {
	s := 0.0
	for i, c := range b.Center {
		d := p[i] - c
		s += d * d
	}
	return s <= b.R*b.R
}

// ContainsPoint implements halfspace.BoxQuery, letting a ball query an
// UNLIFTED kd-tree directly — the alternative to the lifting trick that
// ablation E22 compares against Corollary 1's construction.
func (b Ball) ContainsPoint(c []float64) bool { return b.Contains(c) }

// ClassifyBox implements halfspace.BoxQuery via the min and max distance
// from the ball's center to the axis box.
func (b Ball) ClassifyBox(lo, hi []float64) (inside, outside bool) {
	minD2, maxD2 := 0.0, 0.0
	for i, c := range b.Center {
		nearest := c
		if nearest < lo[i] {
			nearest = lo[i]
		} else if nearest > hi[i] {
			nearest = hi[i]
		}
		dn := nearest - c
		minD2 += dn * dn
		df1, df2 := lo[i]-c, hi[i]-c
		if df1 < 0 {
			df1 = -df1
		}
		if df2 < 0 {
			df2 = -df2
		}
		if df2 > df1 {
			df1 = df2
		}
		maxD2 += df1 * df1
	}
	r2 := b.R * b.R
	return maxD2 <= r2, minD2 > r2
}

// DirectIndex answers circular queries over the ORIGINAL d-dimensional
// points (no lifting): the ball acts directly as a box-classifiable
// predicate on a kd-tree. Ablation E22 compares it with Index.
type DirectIndex struct {
	d  int
	kd *halfspace.KDTree
}

// NewDirectIndex builds the unlifted structure.
func NewDirectIndex(pts [][]float64, weights []float64, d int, tracker *em.Tracker) (*DirectIndex, error) {
	if len(pts) != len(weights) {
		return nil, fmt.Errorf("circular: %d points but %d weights", len(pts), len(weights))
	}
	items := make([]core.Item[halfspace.PtN], len(pts))
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("circular: point %d has %d coordinates in dimension %d", i, len(p), d)
		}
		items[i] = core.Item[halfspace.PtN]{Value: halfspace.PtN{C: p}, Weight: weights[i]}
	}
	kd, err := halfspace.NewKDTree(items, d, tracker)
	if err != nil {
		return nil, err
	}
	return &DirectIndex{d: d, kd: kd}, nil
}

// N returns the number of indexed points.
func (ix *DirectIndex) N() int { return ix.kd.N() }

// ReportAbove implements core.Prioritized[Ball, halfspace.PtN] over
// unlifted points.
func (ix *DirectIndex) ReportAbove(q Ball, tau float64, emit func(core.Item[halfspace.PtN]) bool) {
	ix.kd.ReportAboveBox(q, tau, emit)
}

// MaxItem implements core.Max[Ball, halfspace.PtN] over unlifted points.
func (ix *DirectIndex) MaxItem(q Ball) (core.Item[halfspace.PtN], bool) {
	return ix.kd.MaxItemBox(q)
}

// Lift maps a d-dimensional point to its (d+1)-dimensional lift.
func Lift(p []float64) halfspace.PtN {
	c := make([]float64, len(p)+1)
	norm2 := 0.0
	for i, v := range p {
		c[i] = v
		norm2 += v * v
	}
	c[len(p)] = norm2
	return halfspace.PtN{C: c}
}

// Unlift recovers the original point from a lifted one.
func Unlift(p halfspace.PtN) []float64 {
	return p.C[:len(p.C)-1]
}

// LiftBall maps a ball predicate to the equivalent lifted halfspace.
func LiftBall(b Ball) halfspace.Halfspace {
	d := len(b.Center)
	a := make([]float64, d+1)
	n2 := 0.0
	for i, c := range b.Center {
		a[i] = 2 * c
		n2 += c * c
	}
	a[d] = -1 // coefficient of the |x|² coordinate
	return halfspace.Halfspace{A: a, C: n2 - b.R*b.R}
}

// Match is the predicate evaluator on lifted points, for the reductions.
func Match(q Ball, p halfspace.PtN) bool {
	return LiftBall(q).Contains(p)
}

// Lambda returns the polynomial-boundedness exponent in dimension d:
// circular outcomes correspond to lifted halfspace outcomes in d+1.
func Lambda(d int) float64 { return float64(d + 1) }

// Index answers circular queries over a static point set by querying a
// lifted kd-tree. It implements core.Prioritized[Ball, halfspace.PtN] and
// core.Max[Ball, halfspace.PtN].
type Index struct {
	d  int
	kd *halfspace.KDTree
}

// NewIndex builds the lifted structure over d-dimensional points carried
// as values (pts[i] has weight weights[i]; weights must be distinct).
func NewIndex(pts [][]float64, weights []float64, d int, tracker *em.Tracker) (*Index, error) {
	if len(pts) != len(weights) {
		return nil, fmt.Errorf("circular: %d points but %d weights", len(pts), len(weights))
	}
	items := make([]core.Item[halfspace.PtN], len(pts))
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("circular: point %d has %d coordinates in dimension %d", i, len(p), d)
		}
		items[i] = core.Item[halfspace.PtN]{Value: Lift(p), Weight: weights[i]}
	}
	kd, err := halfspace.NewKDTree(items, d+1, tracker)
	if err != nil {
		return nil, err
	}
	return &Index{d: d, kd: kd}, nil
}

// NewIndexFromItems builds the lifted structure from pre-lifted items (as
// produced by the factories below).
func NewIndexFromItems(items []core.Item[halfspace.PtN], d int, tracker *em.Tracker) (*Index, error) {
	kd, err := halfspace.NewKDTree(items, d+1, tracker)
	if err != nil {
		return nil, err
	}
	return &Index{d: d, kd: kd}, nil
}

// N returns the number of indexed points.
func (ix *Index) N() int { return ix.kd.N() }

// ReportAbove implements core.Prioritized[Ball, halfspace.PtN].
func (ix *Index) ReportAbove(q Ball, tau float64, emit func(core.Item[halfspace.PtN]) bool) {
	ix.kd.ReportAbove(LiftBall(q), tau, emit)
}

// MaxItem implements core.Max[Ball, halfspace.PtN].
func (ix *Index) MaxItem(q Ball) (core.Item[halfspace.PtN], bool) {
	return ix.kd.MaxItem(LiftBall(q))
}

// NewPrioritizedFactory adapts the index to the reduction factory
// signature (items are lifted points).
func NewPrioritizedFactory(d int, tracker *em.Tracker) core.PrioritizedFactory[Ball, halfspace.PtN] {
	return func(items []core.Item[halfspace.PtN]) core.Prioritized[Ball, halfspace.PtN] {
		ix, err := NewIndexFromItems(items, d, tracker)
		if err != nil {
			panic(err)
		}
		return ix
	}
}

// NewMaxFactory adapts the index max path to the reduction factory
// signature.
func NewMaxFactory(d int, tracker *em.Tracker) core.MaxFactory[Ball, halfspace.PtN] {
	return func(items []core.Item[halfspace.PtN]) core.Max[Ball, halfspace.PtN] {
		ix, err := NewIndexFromItems(items, d, tracker)
		if err != nil {
			panic(err)
		}
		return ix
	}
}
