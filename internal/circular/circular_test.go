package circular

import (
	"math"
	"testing"

	"topk/internal/core"
	"topk/internal/halfspace"
	"topk/internal/wrand"
)

func genData(g *wrand.RNG, n, d int) (pts [][]float64, ws []float64) {
	ws = g.UniqueFloats(n, 1e6)
	pts = make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = g.NormFloat64() * 10
		}
		pts[i] = p
	}
	return pts, ws
}

func randBall(g *wrand.RNG, d int) Ball {
	c := make([]float64, d)
	for j := range c {
		c[j] = g.NormFloat64() * 10
	}
	return Ball{Center: c, R: 2 + g.Float64()*15}
}

func TestLiftEquivalence(t *testing.T) {
	// The lifted halfspace must agree with the ball predicate exactly.
	g := wrand.New(1)
	for _, d := range []int{2, 3, 5} {
		for trial := 0; trial < 2000; trial++ {
			p := make([]float64, d)
			for j := range p {
				p[j] = g.NormFloat64() * 10
			}
			b := randBall(g, d)
			if b.Contains(p) != LiftBall(b).Contains(Lift(p)) {
				t.Fatalf("d=%d: lifting disagrees for p=%v ball=%+v", d, p, b)
			}
		}
	}
}

func TestLiftUnliftRoundTrip(t *testing.T) {
	p := []float64{3, -4, 5}
	l := Lift(p)
	if len(l.C) != 4 || l.C[3] != 9+16+25 {
		t.Fatalf("Lift = %v", l)
	}
	back := Unlift(l)
	for i := range p {
		if back[i] != p[i] {
			t.Fatalf("Unlift = %v, want %v", back, p)
		}
	}
}

func TestBoundaryPointsIncluded(t *testing.T) {
	// A point exactly at distance R is inside (closed ball).
	b := Ball{Center: []float64{0, 0}, R: 5}
	p := []float64{3, 4}
	if !b.Contains(p) {
		t.Fatal("boundary point excluded by Ball.Contains")
	}
	if !LiftBall(b).Contains(Lift(p)) {
		t.Fatal("boundary point excluded after lifting")
	}
}

func TestIndexAgainstOracle(t *testing.T) {
	g := wrand.New(2)
	for _, d := range []int{2, 3} {
		pts, ws := genData(g, 700, d)
		ix, err := NewIndex(pts, ws, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ix.N() != 700 {
			t.Fatalf("N = %d", ix.N())
		}
		for trial := 0; trial < 80; trial++ {
			b := randBall(g, d)
			tau := g.Float64() * 1.2e6

			var got []core.Item[halfspace.PtN]
			ix.ReportAbove(b, tau, func(it core.Item[halfspace.PtN]) bool {
				got = append(got, it)
				return true
			})
			wantCount := 0
			bestW, anyB := math.Inf(-1), false
			for i, p := range pts {
				if b.Contains(p) {
					if ws[i] >= tau {
						wantCount++
					}
					if ws[i] > bestW {
						bestW, anyB = ws[i], true
					}
				}
			}
			if len(got) != wantCount {
				t.Fatalf("d=%d ball=%+v tau=%v: got %d, want %d", d, b, tau, len(got), wantCount)
			}
			for _, it := range got {
				if it.Weight < tau || !b.Contains(Unlift(it.Value)) {
					t.Fatalf("d=%d: emitted out-of-range item %+v", d, it)
				}
			}

			gm, gok := ix.MaxItem(b)
			if anyB != gok || (gok && gm.Weight != bestW) {
				t.Fatalf("d=%d: max (%v,%v), want (%v,%v)", d, gm.Weight, gok, bestW, anyB)
			}
		}
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex([][]float64{{1, 2}}, []float64{1, 2}, 2, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewIndex([][]float64{{1, 2, 3}}, []float64{1}, 2, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := NewIndex([][]float64{{1, 2}, {3, 4}}, []float64{5, 5}, 2, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
}

func TestFactories(t *testing.T) {
	g := wrand.New(3)
	pts, ws := genData(g, 200, 2)
	items := make([]core.Item[halfspace.PtN], len(pts))
	for i := range pts {
		items[i] = core.Item[halfspace.PtN]{Value: Lift(pts[i]), Weight: ws[i]}
	}
	p := NewPrioritizedFactory(2, nil)(items)
	m := NewMaxFactory(2, nil)(items)
	b := randBall(g, 2)
	count := 0
	p.ReportAbove(b, math.Inf(-1), func(it core.Item[halfspace.PtN]) bool {
		if !Match(b, it.Value) {
			t.Fatalf("factory emitted non-matching item")
		}
		count++
		return true
	})
	want := 0
	for _, pt := range pts {
		if b.Contains(pt) {
			want++
		}
	}
	if count != want {
		t.Fatalf("factory prioritized: %d, want %d", count, want)
	}
	if _, ok := m.MaxItem(b); ok != (want > 0) {
		t.Fatal("factory max disagrees with oracle emptiness")
	}
}

func TestDirectIndexAgainstLifted(t *testing.T) {
	g := wrand.New(4)
	for _, d := range []int{2, 3} {
		pts, ws := genData(g, 500, d)
		lifted, err := NewIndex(pts, ws, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := NewDirectIndex(pts, ws, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if direct.N() != 500 {
			t.Fatalf("N = %d", direct.N())
		}
		for trial := 0; trial < 80; trial++ {
			b := randBall(g, d)
			tau := g.Float64() * 1.2e6

			countL, countD := 0, 0
			lifted.ReportAbove(b, tau, func(core.Item[halfspace.PtN]) bool { countL++; return true })
			direct.ReportAbove(b, tau, func(it core.Item[halfspace.PtN]) bool {
				if !b.Contains(it.Value.C) || it.Weight < tau {
					t.Fatalf("direct emitted out-of-range item")
				}
				countD++
				return true
			})
			if countL != countD {
				t.Fatalf("d=%d: lifted reported %d, direct %d", d, countL, countD)
			}

			ml, okl := lifted.MaxItem(b)
			md, okd := direct.MaxItem(b)
			if okl != okd || (okl && ml.Weight != md.Weight) {
				t.Fatalf("d=%d: lifted max (%v,%v), direct (%v,%v)", d, ml.Weight, okl, md.Weight, okd)
			}
		}
	}
}

func TestBallClassifyBox(t *testing.T) {
	b := Ball{Center: []float64{0, 0}, R: 5}
	in, out := b.ClassifyBox([]float64{-1, -1}, []float64{1, 1})
	if !in || out {
		t.Errorf("nested box: in=%v out=%v", in, out)
	}
	in, out = b.ClassifyBox([]float64{10, 10}, []float64{12, 12})
	if in || !out {
		t.Errorf("distant box: in=%v out=%v", in, out)
	}
	in, out = b.ClassifyBox([]float64{3, 3}, []float64{6, 6})
	if in || out {
		t.Errorf("straddling box: in=%v out=%v", in, out)
	}
	// Box [4,6]²: nearest corner (4,4) is at distance √32 > 5 — outside.
	in, out = b.ClassifyBox([]float64{4, 4}, []float64{6, 6})
	if in || !out {
		t.Errorf("corner-outside box: in=%v out=%v", in, out)
	}
	// Box corner exactly at distance R: closed ball, still inside.
	in, _ = b.ClassifyBox([]float64{3, 4}, []float64{3, 4})
	if !in {
		t.Error("boundary point box not inside closed ball")
	}
}
