// Package snap is the versioned binary snapshot codec behind the
// library's persistence layer (DESIGN.md §12). A snapshot is a
// self-describing stream:
//
//	magic "TKSN" | format version (u16) | section*  | end section
//
// where every section is independently length-prefixed and checksummed:
//
//	type (u16) | payload length (u32) | payload | CRC-32 (IEEE) of payload
//
// The first section must be the header (problem name, reduction, engine
// kind, item count, dimension), so any reader can identify a snapshot —
// and refuse a foreign one — before touching structural state. Sections
// after the header carry the engine's logical state: machine
// configuration, item batches, dynamization-overlay levels, the overlay
// tail and its counters. The stream ends with an explicit end marker, so
// truncation is always detectable and never silently accepted.
//
// The codec is deliberately dumb: fixed-width little-endian integers,
// IEEE-754 bit patterns for floats, and length-prefixed byte strings.
// Everything problem-specific (which floats mean what) lives in the
// engine's per-problem codec hooks; everything version-specific lives
// here. Readers reject unknown format versions and unknown *required*
// sections outright — the compatibility policy is "same major format or
// rebuild from raw items", documented in DESIGN.md §12.
//
// Every decode error is descriptive and recoverable: corrupt, truncated
// or adversarial input must surface as an error, never a panic or a
// silently wrong structure. The fuzz target FuzzSnapshotRestore holds
// the package to that contract.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic is the 4-byte stream prefix identifying a top-k snapshot.
const Magic = "TKSN"

// Version is the format version this build writes. Readers accept every
// version from 1 up to and including Version: the only change between 1
// and 2 is the optional SecOverlayPolicy section, which version-1
// streams simply never carry, so a v1 snapshot decodes unchanged onto
// the default (logarithmic) maintenance policy. Bump Version on any
// layout change an old reader would misparse; readers report a
// descriptive error for every newer version (see DESIGN.md §12 for the
// compatibility policy).
const Version uint16 = 2

// Section types. SecHeader must be the first section of every stream;
// SecEnd terminates it. The remaining types carry engine state and may
// appear in any order after the header.
const (
	// SecEnd is the mandatory stream terminator (empty payload).
	SecEnd uint16 = 0
	// SecHeader identifies the snapshot: problem, reduction, kind, items.
	SecHeader uint16 = 1
	// SecConfig carries the EM machine and build configuration (block
	// size, memory blocks, seed, updates flag).
	SecConfig uint16 = 2
	// SecItems is a batch of items: the static source set, or the native
	// dynamic structure's live set in its internal order.
	SecItems uint16 = 3
	// SecOverlayLevel is one dynamization-overlay level: slot index, the
	// exact item batch the level's substructure was built over, and the
	// level's tombstoned weights.
	SecOverlayLevel uint16 = 4
	// SecOverlayTail is the overlay's unindexed insert buffer, in order.
	SecOverlayTail uint16 = 5
	// SecOverlayCounters carries the overlay's cumulative update
	// counters, so Stats continuity survives a restore.
	SecOverlayCounters uint16 = 6
	// SecOverlayPolicy (format version 2) names the overlay's structural-
	// maintenance policy and carries its policy-specific bookkeeping:
	// partial-rebuild counter plus the per-slot tier placement of the
	// buffered policy's runs. Writers emit it only for non-default
	// policies, so a logarithmic overlay's snapshot is byte-identical to
	// the version-1 stream; readers treat its absence as "logarithmic".
	SecOverlayPolicy uint16 = 7
)

// Engine kinds recorded in the header: how the structural sections are
// to be interpreted.
const (
	// KindStatic: one SecItems section holding the build source set.
	KindStatic uint8 = 0
	// KindOverlay: SecOverlayLevel/Tail/Counters sections holding the
	// logarithmic-method overlay's logical state.
	KindOverlay uint8 = 1
	// KindNative: one SecItems section holding the natively dynamic
	// (Theorem 2) structure's live set in its internal order.
	KindNative uint8 = 2
)

// Header identifies a snapshot before any structural state is decoded.
type Header struct {
	// Problem is the registry name of the snapshotted problem.
	Problem string
	// Reduction is the reduction's String() name.
	Reduction string
	// Kind is the engine kind (KindStatic, KindOverlay, KindNative).
	Kind uint8
	// Items is the live item count, cross-checked after reconstruction.
	Items uint64
	// Dim is the ambient dimension for dimension-parameterized problems
	// (ortho, circular, halfspace); 0 otherwise.
	Dim uint16
}

// maxSectionLen bounds a single section payload (64 MiB). It exists so a
// corrupt length prefix cannot make a reader attempt an absurd
// allocation before the checksum gets a chance to fail.
const maxSectionLen = 64 << 20

// ---- writing ----------------------------------------------------------

// Writer emits one snapshot stream.
type Writer struct {
	w     io.Writer
	err   error
	wrote int64
}

// NewWriter starts a snapshot stream on w: magic plus format version.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w}
	sw.raw([]byte(Magic))
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], Version)
	sw.raw(v[:])
	return sw
}

func (w *Writer) raw(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.wrote += int64(n)
	w.err = err
}

// Bytes returns how many bytes have been emitted so far.
func (w *Writer) Bytes() int64 { return w.wrote }

// Err returns the first underlying write error, if any.
func (w *Writer) Err() error { return w.err }

// Section buffers one section payload. Append fields with the typed
// methods, then pass it to Writer.End.
type Section struct {
	typ uint16
	buf []byte
	// reading state (see Reader.Next)
	pos int
	err error
}

// Begin opens a buffered section of the given type.
func (w *Writer) Begin(typ uint16) *Section { return &Section{typ: typ} }

// End emits a buffered section: type, length, payload, payload CRC-32.
func (w *Writer) End(s *Section) error {
	if len(s.buf) > maxSectionLen {
		w.err = fmt.Errorf("snap: section %d payload is %d bytes, above the %d-byte cap", s.typ, len(s.buf), maxSectionLen)
		return w.err
	}
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:2], s.typ)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(s.buf)))
	w.raw(hdr[:])
	w.raw(s.buf)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(s.buf))
	w.raw(crc[:])
	return w.err
}

// Close terminates the stream with the end marker.
func (w *Writer) Close() error {
	return w.End(w.Begin(SecEnd))
}

// WriteHeader emits the mandatory header section. Call it first.
func (w *Writer) WriteHeader(h Header) error {
	s := w.Begin(SecHeader)
	s.Str(h.Problem)
	s.Str(h.Reduction)
	s.U8(h.Kind)
	s.U64(h.Items)
	s.U64(uint64(h.Dim))
	return w.End(s)
}

// U8 appends one byte.
func (s *Section) U8(v uint8) { s.buf = append(s.buf, v) }

// U64 appends a little-endian uint64.
func (s *Section) U64(v uint64) {
	s.buf = binary.LittleEndian.AppendUint64(s.buf, v)
}

// I64 appends a little-endian int64 (two's complement).
func (s *Section) I64(v int64) { s.U64(uint64(v)) }

// F64 appends an IEEE-754 bit pattern.
func (s *Section) F64(v float64) { s.U64(math.Float64bits(v)) }

// F64s appends a count-prefixed float slice.
func (s *Section) F64s(xs []float64) {
	s.U64(uint64(len(xs)))
	for _, x := range xs {
		s.F64(x)
	}
}

// Bytes appends a length-prefixed byte string.
func (s *Section) Bytes(p []byte) {
	s.U64(uint64(len(p)))
	s.buf = append(s.buf, p...)
}

// Str appends a length-prefixed UTF-8 string.
func (s *Section) Str(v string) { s.Bytes([]byte(v)) }

// ---- reading ----------------------------------------------------------

// Reader consumes one snapshot stream.
type Reader struct {
	r   io.Reader
	ver uint16
	err error
}

// NewReader validates the magic and format version and returns a reader
// positioned at the first section. Every version from 1 through Version
// is accepted (older streams are a strict subset of the current layout).
func NewReader(r io.Reader) (*Reader, error) {
	var pre [6]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("snap: truncated stream prefix: %w", err)
	}
	if string(pre[:4]) != Magic {
		return nil, fmt.Errorf("snap: bad magic %q: not a top-k snapshot", pre[:4])
	}
	v := binary.LittleEndian.Uint16(pre[4:6])
	if v < 1 || v > Version {
		return nil, fmt.Errorf("snap: unsupported format version %d (this build reads versions 1 through %d; rebuild the snapshot or upgrade)", v, Version)
	}
	return &Reader{r: r, ver: v}, nil
}

// Version reports the stream's declared format version.
func (r *Reader) Version() uint16 { return r.ver }

// Next reads the next section, verifying its length and checksum. It
// returns the section type; SecEnd signals a clean end of stream. A
// truncated or corrupt stream returns a descriptive error.
func (r *Reader) Next() (uint16, *Section, error) {
	if r.err != nil {
		return 0, nil, r.err
	}
	var hdr [6]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		r.err = fmt.Errorf("snap: truncated section header: %w", err)
		return 0, nil, r.err
	}
	typ := binary.LittleEndian.Uint16(hdr[0:2])
	n := binary.LittleEndian.Uint32(hdr[2:6])
	if n > maxSectionLen {
		r.err = fmt.Errorf("snap: section %d declares a %d-byte payload, above the %d-byte cap (corrupt length prefix?)", typ, n, maxSectionLen)
		return 0, nil, r.err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = fmt.Errorf("snap: truncated section %d: want %d payload bytes: %w", typ, n, err)
		return 0, nil, r.err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.r, crc[:]); err != nil {
		r.err = fmt.Errorf("snap: truncated section %d checksum: %w", typ, err)
		return 0, nil, r.err
	}
	want := binary.LittleEndian.Uint32(crc[:])
	if got := crc32.ChecksumIEEE(buf); got != want {
		r.err = fmt.Errorf("snap: section %d checksum mismatch (stored %08x, computed %08x): snapshot is corrupt", typ, want, got)
		return 0, nil, r.err
	}
	return typ, &Section{typ: typ, buf: buf}, nil
}

// ReadHeader reads the mandatory first section and decodes it.
func (r *Reader) ReadHeader() (Header, error) {
	typ, s, err := r.Next()
	if err != nil {
		return Header{}, err
	}
	if typ != SecHeader {
		return Header{}, fmt.Errorf("snap: first section has type %d, want header (%d)", typ, SecHeader)
	}
	var h Header
	h.Problem = s.RStr()
	h.Reduction = s.RStr()
	h.Kind = s.RU8()
	h.Items = s.RU64()
	h.Dim = uint16(s.RU64())
	if err := s.Err(); err != nil {
		return Header{}, fmt.Errorf("snap: malformed header: %w", err)
	}
	return h, nil
}

// Type returns the section's type.
func (s *Section) Type() uint16 { return s.typ }

// Len returns the section's payload length in bytes.
func (s *Section) Len() int { return len(s.buf) }

// Remaining returns how many unread payload bytes are left.
func (s *Section) Remaining() int { return len(s.buf) - s.pos }

// Err returns the section's sticky decode error. Check it after a run
// of R* calls; every read after the first failure returns zero values.
func (s *Section) Err() error { return s.err }

var errShort = errors.New("field extends past the section payload (truncated or corrupt)")

func (s *Section) take(n int) []byte {
	if s.err != nil {
		return nil
	}
	if n < 0 || s.pos+n > len(s.buf) {
		s.err = errShort
		return nil
	}
	p := s.buf[s.pos : s.pos+n]
	s.pos += n
	return p
}

// RU8 reads one byte.
func (s *Section) RU8() uint8 {
	p := s.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// RU64 reads a little-endian uint64.
func (s *Section) RU64() uint64 {
	p := s.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// RI64 reads a little-endian int64.
func (s *Section) RI64() int64 { return int64(s.RU64()) }

// RF64 reads an IEEE-754 bit pattern.
func (s *Section) RF64() float64 { return math.Float64frombits(s.RU64()) }

// RCount reads a count prefix for elements of at least elemBytes bytes
// each and validates it against the remaining payload, so a corrupt
// count can never drive an oversized allocation.
func (s *Section) RCount(elemBytes int) int {
	n := s.RU64()
	if s.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if n > uint64(s.Remaining()/elemBytes) {
		s.err = fmt.Errorf("snap: count %d exceeds the %d remaining payload bytes (corrupt count prefix?)", n, s.Remaining())
		return 0
	}
	return int(n)
}

// RF64s reads a count-prefixed float slice.
func (s *Section) RF64s() []float64 {
	n := s.RCount(8)
	if s.err != nil || n == 0 {
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.RF64()
	}
	return xs
}

// RBytes reads a length-prefixed byte string.
func (s *Section) RBytes() []byte {
	n := s.RCount(1)
	if s.err != nil {
		return nil
	}
	return append([]byte(nil), s.take(n)...)
}

// RStr reads a length-prefixed string.
func (s *Section) RStr() string { return string(s.RBytes()) }
