package snap

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// validStream builds a small well-formed snapshot stream: header, one
// config-ish section with every field type, end marker.
func validStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(Header{Problem: "interval", Reduction: "Expected", Kind: KindStatic, Items: 3, Dim: 0}); err != nil {
		t.Fatal(err)
	}
	s := w.Begin(SecConfig)
	s.U64(64)
	s.I64(-7)
	s.F64(3.5)
	s.F64s([]float64{1, 2, 3})
	s.Bytes([]byte("payload"))
	s.Str("hello")
	s.U8(9)
	if err := w.End(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Fatalf("Bytes() = %d, wrote %d", w.Bytes(), buf.Len())
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := validStream(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	if h.Problem != "interval" || h.Reduction != "Expected" || h.Kind != KindStatic || h.Items != 3 || h.Dim != 0 {
		t.Fatalf("header round trip: %+v", h)
	}
	typ, s, err := r.Next()
	if err != nil || typ != SecConfig {
		t.Fatalf("Next: typ %d err %v", typ, err)
	}
	if got := s.RU64(); got != 64 {
		t.Fatalf("RU64 = %d", got)
	}
	if got := s.RI64(); got != -7 {
		t.Fatalf("RI64 = %d", got)
	}
	if got := s.RF64(); got != 3.5 {
		t.Fatalf("RF64 = %v", got)
	}
	if got := s.RF64s(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("RF64s = %v", got)
	}
	if got := s.RBytes(); string(got) != "payload" {
		t.Fatalf("RBytes = %q", got)
	}
	if got := s.RStr(); got != "hello" {
		t.Fatalf("RStr = %q", got)
	}
	if got := s.RU8(); got != 9 {
		t.Fatalf("RU8 = %d", got)
	}
	if s.Remaining() != 0 || s.Err() != nil {
		t.Fatalf("remaining %d err %v", s.Remaining(), s.Err())
	}
	typ, _, err = r.Next()
	if err != nil || typ != SecEnd {
		t.Fatalf("end marker: typ %d err %v", typ, err)
	}
}

// TestCorruption is the decode-robustness table: every malformed stream
// must produce a descriptive error, never a panic or a silent success.
func TestCorruption(t *testing.T) {
	base := validStream(t)
	// Locate the header section's payload start: magic(4) + version(2) +
	// section type(2) + length(4).
	const headerPayload = 12

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string // substring of the expected error
	}{
		{"bad magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}, "bad magic"},
		{"unknown version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], 99)
			return b
		}, "unsupported format version 99"},
		{"empty stream", func(b []byte) []byte { return nil }, "truncated stream prefix"},
		{"prefix only", func(b []byte) []byte { return b[:6] }, "truncated section header"},
		{"flipped payload byte", func(b []byte) []byte {
			b[headerPayload] ^= 0xFF
			return b
		}, "checksum mismatch"},
		{"flipped checksum byte", func(b []byte) []byte {
			// Checksum trails the header payload; flipping its first byte
			// must be caught even though the payload itself is intact.
			n := binary.LittleEndian.Uint32(b[8:12])
			b[headerPayload+int(n)] ^= 0x01
			return b
		}, "checksum mismatch"},
		{"truncated section payload", func(b []byte) []byte { return b[:headerPayload+3] }, "truncated section"},
		{"oversized length prefix", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 1<<30)
			return b
		}, "above the"},
		{"missing end marker", func(b []byte) []byte {
			// Drop the end section (type+len+crc = 10 bytes).
			return b[:len(b)-10]
		}, "truncated section header"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			err := consume(data)
			if err == nil {
				t.Fatalf("corrupt stream accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// consume walks a stream to the end marker, like a restore would.
func consume(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if _, err := r.ReadHeader(); err != nil {
		return err
	}
	for {
		typ, _, err := r.Next()
		if err != nil {
			return err
		}
		if typ == SecEnd {
			return nil
		}
	}
}

func TestHeaderMustBeFirst(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s := w.Begin(SecConfig)
	s.U64(1)
	if err := w.End(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadHeader(); err == nil || !strings.Contains(err.Error(), "want header") {
		t.Fatalf("out-of-order header error = %v", err)
	}
}

// TestSectionOverread pins the sticky-error contract: reading past a
// section's payload fails once and stays failed, returning zero values.
func TestSectionOverread(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(Header{Problem: "p", Reduction: "r"}); err != nil {
		t.Fatal(err)
	}
	s := w.Begin(SecItems)
	s.U64(1)
	if err := w.End(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	_, sec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := sec.RU64(); got != 1 {
		t.Fatalf("RU64 = %d", got)
	}
	if got := sec.RU64(); got != 0 || sec.Err() == nil {
		t.Fatalf("overread: got %d, err %v", got, sec.Err())
	}
	if got := sec.RStr(); got != "" || sec.Err() == nil {
		t.Fatalf("sticky error lost: %q, %v", got, sec.Err())
	}
}

// TestCorruptCountPrefix pins RCount's allocation guard: a section whose
// count field claims more elements than the payload can hold errors out
// instead of attempting the allocation.
func TestCorruptCountPrefix(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(Header{Problem: "p", Reduction: "r"}); err != nil {
		t.Fatal(err)
	}
	s := w.Begin(SecItems)
	s.U64(1 << 40) // absurd element count with no payload behind it
	if err := w.End(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	_, sec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if xs := sec.RF64s(); xs != nil || sec.Err() == nil {
		t.Fatalf("oversized count accepted: %v, err %v", xs, sec.Err())
	}
	if !strings.Contains(sec.Err().Error(), "exceeds the") {
		t.Fatalf("count error = %v", sec.Err())
	}
}

func TestWriterPropagatesErrors(t *testing.T) {
	w := NewWriter(failWriter{})
	if err := w.WriteHeader(Header{Problem: "p"}); err == nil {
		t.Fatal("write error swallowed")
	}
	if w.Err() == nil {
		t.Fatal("Err() lost the failure")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
