// Package xsort implements the selection primitives that the paper's query
// algorithms invoke as black boxes: "k-selection" (pick the k largest out
// of an unordered batch, Sections 3.2 and 4), rank selection, and a bounded
// streaming top-k collector.
//
// In the EM model, k-selection on m elements costs O(m/B) I/Os (a constant
// number of scans); callers charge that via em.Tracker.ScanCost. Here we
// implement the in-memory computation.
package xsort

import "sort"

// SelectTopK partitions s in place so that its first min(k, len(s))
// elements are the k "largest" under less (where less(a, b) means a orders
// before b, i.e. a is better), and returns that prefix. The prefix is NOT
// sorted; combine with SortPrefix when ordered output is needed.
//
// It runs in expected O(len(s)) time (quickselect with median-of-three
// pivoting and random-ish tie behavior avoided by 3-way partitioning).
func SelectTopK[T any](s []T, k int, less func(a, b T) bool) []T {
	if k <= 0 {
		return s[:0]
	}
	if k >= len(s) {
		return s
	}
	quickselect(s, k, less)
	return s[:k]
}

// TopKSorted returns the k best elements of s under less, in best-first
// order, without modifying s.
func TopKSorted[T any](s []T, k int, less func(a, b T) bool) []T {
	if k <= 0 {
		return nil
	}
	cp := make([]T, len(s))
	copy(cp, s)
	top := SelectTopK(cp, k, less)
	sort.Slice(top, func(i, j int) bool { return less(top[i], top[j]) })
	return top
}

// SortPrefix sorts the first k elements of s best-first under less.
func SortPrefix[T any](s []T, k int, less func(a, b T) bool) {
	if k > len(s) {
		k = len(s)
	}
	p := s[:k]
	sort.Slice(p, func(i, j int) bool { return less(p[i], p[j]) })
}

// SelectRank rearranges s so that the element with 1-based rank r under
// less (rank 1 = best) is at s[r-1], and returns it. It panics if r is out
// of [1, len(s)].
func SelectRank[T any](s []T, r int, less func(a, b T) bool) T {
	if r < 1 || r > len(s) {
		panic("xsort: SelectRank rank out of range")
	}
	quickselect(s, r, less)
	// After quickselect(s, r) the first r elements are the r best; the
	// rank-r one is the worst among them.
	worst := 0
	for i := 1; i < r; i++ {
		if less(s[worst], s[i]) {
			worst = i
		}
	}
	s[worst], s[r-1] = s[r-1], s[worst]
	return s[r-1]
}

// quickselect rearranges s so s[:k] holds the k best elements under less.
func quickselect[T any](s []T, k int, less func(a, b T) bool) {
	lo, hi := 0, len(s)
	for hi-lo > 12 {
		p := medianOfThree(s, lo, hi, less)
		// 3-way partition around pivot value p: [best..][equal..][worst..].
		lt, i, gt := lo, lo, hi
		for i < gt {
			switch {
			case less(s[i], p):
				s[lt], s[i] = s[i], s[lt]
				lt++
				i++
			case less(p, s[i]):
				gt--
				s[i], s[gt] = s[gt], s[i]
			default:
				i++
			}
		}
		switch {
		case k <= lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return // boundary falls inside the pivot-equal run
		}
	}
	insertionPrefix(s, lo, hi, min(k, hi), less)
}

func medianOfThree[T any](s []T, lo, hi int, less func(a, b T) bool) T {
	a, b, c := s[lo], s[lo+(hi-lo)/2], s[hi-1]
	if less(b, a) {
		a, b = b, a
	}
	if less(c, b) {
		b = c
		if less(b, a) {
			a, b = b, a
		}
	}
	_ = a
	return b
}

// insertionPrefix sorts s[lo:hi] far enough that s[lo:k] holds the best
// elements; for the tiny ranges left by quickselect a full insertion sort
// is simplest and fast.
func insertionPrefix[T any](s []T, lo, hi, k int, less func(a, b T) bool) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	_ = k
}

// Collector accumulates a stream of elements and retains the k best under
// less, using a bounded worst-at-root heap. It is the in-memory analogue of
// answering a top-k query by scanning (the paper's "read the whole D"
// fallback), in O(1) amortized time per element.
type Collector[T any] struct {
	k    int
	less func(a, b T) bool
	heap []T // worst element at heap[0]
}

// NewCollector returns a collector retaining the k best elements.
func NewCollector[T any](k int, less func(a, b T) bool) *Collector[T] {
	if k < 0 {
		k = 0
	}
	return &Collector[T]{k: k, less: less, heap: make([]T, 0, k)}
}

// Offer considers one element.
func (c *Collector[T]) Offer(v T) {
	if c.k == 0 {
		return
	}
	if len(c.heap) < c.k {
		c.heap = append(c.heap, v)
		c.siftUp(len(c.heap) - 1)
		return
	}
	// Replace the current worst if v beats it.
	if c.less(v, c.heap[0]) {
		c.heap[0] = v
		c.siftDown(0)
	}
}

// Len reports how many elements are currently retained.
func (c *Collector[T]) Len() int { return len(c.heap) }

// Worst returns the worst retained element; ok is false when empty.
func (c *Collector[T]) Worst() (v T, ok bool) {
	if len(c.heap) == 0 {
		return v, false
	}
	return c.heap[0], true
}

// Items returns the retained elements best-first and resets the collector.
func (c *Collector[T]) Items() []T {
	out := c.heap
	c.heap = nil
	sort.Slice(out, func(i, j int) bool { return c.less(out[i], out[j]) })
	return out
}

// heap invariant: parent is worse-or-equal than children under less
// (so heap[0] is the overall worst, making replacement cheap).
func (c *Collector[T]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if c.less(c.heap[p], c.heap[i]) { // parent better than child: swap up
			c.heap[p], c.heap[i] = c.heap[i], c.heap[p]
			i = p
			continue
		}
		return
	}
}

func (c *Collector[T]) siftDown(i int) {
	n := len(c.heap)
	for {
		worst := i
		if l := 2*i + 1; l < n && c.less(c.heap[worst], c.heap[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && c.less(c.heap[worst], c.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		c.heap[i], c.heap[worst] = c.heap[worst], c.heap[i]
		i = worst
	}
}
