package xsort

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func lessDesc(a, b float64) bool { return a > b } // "best" = largest

func TestSelectTopKSmallCases(t *testing.T) {
	cases := []struct {
		in   []float64
		k    int
		want []float64
	}{
		{nil, 3, nil},
		{[]float64{5}, 0, nil},
		{[]float64{5}, 1, []float64{5}},
		{[]float64{1, 2, 3}, 2, []float64{3, 2}},
		{[]float64{3, 1, 2}, 5, []float64{3, 2, 1}},
		{[]float64{2, 2, 2, 1}, 2, []float64{2, 2}},
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		got := SelectTopK(in, c.k, lessDesc)
		sort.Sort(sort.Reverse(sort.Float64Slice(got)))
		if len(got) != len(c.want) {
			t.Errorf("SelectTopK(%v, %d) returned %v, want %v", c.in, c.k, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SelectTopK(%v, %d) returned %v, want %v", c.in, c.k, got, c.want)
				break
			}
		}
	}
}

// Property: SelectTopK returns exactly the k largest values (as a multiset).
func TestSelectTopKProperty(t *testing.T) {
	f := func(vals []float64, kRaw uint8) bool {
		k := int(kRaw) % (len(vals) + 1)
		in := append([]float64(nil), vals...)
		got := append([]float64(nil), SelectTopK(in, k, lessDesc)...)
		sort.Sort(sort.Reverse(sort.Float64Slice(got)))

		want := append([]float64(nil), vals...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if k > len(want) {
			k = len(want)
		}
		want = want[:k]
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSelectTopKPreservesMultiset(t *testing.T) {
	f := func(vals []float64, kRaw uint8) bool {
		k := int(kRaw) % (len(vals) + 1)
		in := append([]float64(nil), vals...)
		SelectTopK(in, k, lessDesc)
		a := append([]float64(nil), vals...)
		b := append([]float64(nil), in...)
		sort.Float64s(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopKSortedDoesNotMutate(t *testing.T) {
	in := []float64{5, 1, 9, 3, 7}
	orig := append([]float64(nil), in...)
	got := TopKSorted(in, 3, lessDesc)
	want := []float64{9, 7, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopKSorted = %v, want %v", got, want)
		}
	}
	for i := range in {
		if in[i] != orig[i] {
			t.Fatalf("TopKSorted mutated input: %v", in)
		}
	}
}

func TestSelectRank(t *testing.T) {
	g := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + g.IntN(300)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = g.Float64()
		}
		r := 1 + g.IntN(n)
		sorted := append([]float64(nil), vals...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := sorted[r-1]
		got := SelectRank(append([]float64(nil), vals...), r, lessDesc)
		if got != want {
			t.Fatalf("SelectRank(n=%d, r=%d) = %v, want %v", n, r, got, want)
		}
	}
}

func TestSelectRankPanicsOutOfRange(t *testing.T) {
	for _, r := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SelectRank(len=3, r=%d) did not panic", r)
				}
			}()
			SelectRank([]float64{1, 2, 3}, r, lessDesc)
		}()
	}
}

func TestCollectorBasics(t *testing.T) {
	c := NewCollector(3, lessDesc)
	for _, v := range []float64{4, 1, 7, 3, 9, 2} {
		c.Offer(v)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if w, ok := c.Worst(); !ok || w != 4 {
		t.Fatalf("Worst = %v,%v, want 4,true", w, ok)
	}
	got := c.Items()
	want := []float64{9, 7, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v, want %v", got, want)
		}
	}
}

func TestCollectorZeroK(t *testing.T) {
	c := NewCollector(0, lessDesc)
	c.Offer(5)
	if c.Len() != 0 {
		t.Fatalf("k=0 collector retained %d items", c.Len())
	}
	if _, ok := c.Worst(); ok {
		t.Fatal("k=0 collector reported a worst element")
	}
	if got := c.Items(); len(got) != 0 {
		t.Fatalf("k=0 collector Items = %v", got)
	}
}

func TestCollectorMatchesSort(t *testing.T) {
	g := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 100; trial++ {
		n := g.IntN(500)
		k := g.IntN(20) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = g.Float64()
		}
		c := NewCollector(k, lessDesc)
		for _, v := range vals {
			c.Offer(v)
		}
		got := c.Items()
		want := TopKSorted(vals, k, lessDesc)
		if len(got) != len(want) {
			t.Fatalf("collector kept %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: collector %v, want %v", trial, got, want)
			}
		}
	}
}

func TestSortPrefix(t *testing.T) {
	s := []float64{2, 9, 4, 7, 1}
	SelectTopK(s, 3, lessDesc)
	SortPrefix(s, 3, lessDesc)
	want := []float64{9, 7, 4}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("prefix = %v, want %v", s[:3], want)
		}
	}
	SortPrefix(s, 99, lessDesc) // k > len must not panic
}

func BenchmarkSelectTopK(b *testing.B) {
	g := rand.New(rand.NewPCG(9, 9))
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = g.Float64()
	}
	buf := make([]float64, len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, vals)
		SelectTopK(buf, 100, lessDesc)
	}
}
