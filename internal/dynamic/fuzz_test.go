package dynamic

import (
	"encoding/binary"
	"math"
	"testing"

	"topk/internal/core"
)

// FuzzOverlayPolicies drives one op sequence decoded from raw bytes
// through three structures at once — an overlay under PolicyLogarithmic,
// an overlay under PolicyBuffered, and a plain-map full-scan oracle —
// and requires byte-identical answers everywhere. Ops cover single and
// bulk inserts, single and bulk deletes, queries and export/restore.
func FuzzOverlayPolicies(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{1, 200, 1, 201, 1, 202, 3, 0, 2, 200, 4, 50})
	f.Add([]byte{5, 5, 5, 1, 9, 2, 9, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		lg := mustOverlay(t, PolicyLogarithmic)
		bf := mustOverlay(t, PolicyBuffered)
		ora := oracle{}
		var weights []float64
		nextW := 0.0

		u8 := func(i int) uint64 {
			if i >= len(data) {
				return 0
			}
			return uint64(data[i])
		}
		u16 := func(i int) uint64 {
			if i+1 >= len(data) {
				return u8(i)
			}
			return uint64(binary.LittleEndian.Uint16(data[i : i+2]))
		}

		insert := func(v, w float64) {
			e1 := lg.Insert(item(v, w))
			e2 := bf.Insert(item(v, w))
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("Insert(%v): logarithmic err %v, buffered err %v", w, e1, e2)
			}
			if e1 == nil {
				ora[w] = v
				weights = append(weights, w)
			}
		}

		for i := 0; i < len(data); {
			op := data[i]
			i++
			switch op % 6 {
			case 0: // insert fresh
				nextW++
				insert(float64(u8(i))/3, nextW)
				i++
			case 1: // insert a possibly-colliding weight
				w := float64(u8(i) % 64)
				insert(float64(u8(i+1)), w)
				i += 2
			case 2: // delete targeted
				if len(weights) > 0 {
					w := weights[int(u16(i))%len(weights)]
					_, present := ora[w]
					d1 := lg.DeleteWeight(w)
					d2 := bf.DeleteWeight(w)
					if d1 != present || d2 != present {
						t.Fatalf("DeleteWeight(%v) = %v/%v, oracle %v", w, d1, d2, present)
					}
					delete(ora, w)
				}
				i += 2
			case 3: // bulk insert
				m := int(u8(i))%24 + 1
				i++
				batch := make([]core.Item[float64], 0, m)
				for j := 0; j < m; j++ {
					nextW++
					v := float64((int(u8(i))+j)%100) / 2
					batch = append(batch, item(v, nextW))
				}
				i++
				e1 := lg.InsertBatch(batch)
				e2 := bf.InsertBatch(batch)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("InsertBatch: %v vs %v", e1, e2)
				}
				if e1 == nil {
					for _, it := range batch {
						ora[it.Weight] = it.Value
						weights = append(weights, it.Weight)
					}
				}
			case 4: // bulk delete
				m := int(u8(i))%16 + 1
				i++
				ws := make([]float64, 0, m)
				want := 0
				for j := 0; j < m && len(weights) > 0; j++ {
					w := weights[(int(u16(i))+j*7)%len(weights)]
					ws = append(ws, w)
					if _, ok := ora[w]; ok {
						// ws may repeat a weight; only the first hit counts.
						dup := false
						for _, prev := range ws[:len(ws)-1] {
							if prev == w {
								dup = true
							}
						}
						if !dup {
							want++
						}
					}
					delete(ora, w)
				}
				i += 2
				d1 := lg.DeleteBatch(ws)
				d2 := bf.DeleteBatch(ws)
				if d1 != want || d2 != want {
					t.Fatalf("DeleteBatch(%v) = %d/%d, want %d", ws, d1, d2, want)
				}
			case 5: // query
				q := float64(u8(i)) / 2
				k := int(u8(i+1))%8 + 1
				i += 2
				want := ora.topK(q, k)
				sameWeights(t, weightsOf(lg.TopK(q, k)), want, "logarithmic TopK")
				sameWeights(t, weightsOf(bf.TopK(q, k)), want, "buffered TopK")
			}
			if lg.N() != len(ora) || bf.N() != len(ora) {
				t.Fatalf("N: logarithmic %d, buffered %d, oracle %d", lg.N(), bf.N(), len(ora))
			}
		}

		if st := bf.Stats(); st.Rebuilds != 0 {
			t.Fatalf("buffered overlay ran a global rebuild: %+v", st)
		}

		// Full sweep, then an export/restore round trip of both policies
		// must preserve every answer.
		wantAll := ora.topK(math.Inf(1), len(ora)+1)
		sameWeights(t, weightsOf(lg.TopK(math.Inf(1), len(ora)+1)), wantAll, "final logarithmic")
		sameWeights(t, weightsOf(bf.TopK(math.Inf(1), len(ora)+1)), wantAll, "final buffered")
		for name, o := range map[string]*Overlay[float64, float64]{"logarithmic": lg, "buffered": bf} {
			r, err := Restore[float64, float64](o.ExportState(), thresholdMatch, scanBuilder(nil), Options{})
			if err != nil {
				t.Fatalf("restore %s: %v", name, err)
			}
			if r.Policy() != o.Policy() {
				t.Fatalf("restore %s: policy %v", name, r.Policy())
			}
			sameWeights(t, weightsOf(r.TopK(math.Inf(1), len(ora)+1)), wantAll, "restored "+name)
		}
	})
}

func mustOverlay(t *testing.T, pol MaintenancePolicy) *Overlay[float64, float64] {
	t.Helper()
	o, err := New(nil, thresholdMatch, scanBuilder(nil), Options{TailCap: 4, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return o
}
