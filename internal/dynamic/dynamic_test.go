package dynamic

import (
	"math"
	"sort"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/interval"
	"topk/internal/wrand"
)

// The package tests exercise the overlay over a toy 1D threshold problem:
// values are reals, a query q matches every value v ≤ q. The oracle is a
// plain map.

func thresholdMatch(q float64, v float64) bool { return v <= q }

func scanBuilder(tr *em.Tracker) Builder[float64, float64] {
	return func(items []core.Item[float64]) (core.TopK[float64, float64], error) {
		return core.NewScan(items, thresholdMatch, tr), nil
	}
}

// topkOnly hides Scan's prioritized surface so PrioritizedOf returns nil
// and the overlay's scan fallback runs.
type topkOnly struct{ inner core.TopK[float64, float64] }

func (t topkOnly) TopK(q float64, k int) []core.Item[float64] { return t.inner.TopK(q, k) }

func item(v, w float64) core.Item[float64] { return core.Item[float64]{Value: v, Weight: w} }

// oracle is the mutable ground truth: weight -> value.
type oracle map[float64]float64

func (o oracle) topK(q float64, k int) []float64 {
	var ws []float64
	for w, v := range o {
		if thresholdMatch(q, v) {
			ws = append(ws, w)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	if len(ws) > k {
		ws = ws[:k]
	}
	return ws
}

func weightsOf(items []core.Item[float64]) []float64 {
	ws := make([]float64, len(items))
	for i, it := range items {
		ws[i] = it.Weight
	}
	return ws
}

func sameWeights(t *testing.T, got, want []float64, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d items %v, want %d %v", ctx, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: item %d: got weight %v, want %v (%v vs %v)", ctx, i, got[i], want[i], got, want)
		}
	}
}

func TestChurnVsOracle(t *testing.T) {
	rng := wrand.New(7)
	o, err := New(nil, thresholdMatch, scanBuilder(nil), Options{TailCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	ora := oracle{}
	var weights []float64 // insertion order, for delete targeting
	nextW := 0.0

	for op := 0; op < 8000; op++ {
		switch r := rng.Float64(); {
		case r < 0.5: // insert
			nextW++
			v := rng.Float64() * 100
			if err := o.Insert(item(v, nextW)); err != nil {
				t.Fatalf("op %d: insert: %v", op, err)
			}
			ora[nextW] = v
			weights = append(weights, nextW)
		case r < 0.75 && len(weights) > 0: // delete
			i := rng.IntN(len(weights))
			w := weights[i]
			weights[i] = weights[len(weights)-1]
			weights = weights[:len(weights)-1]
			_, present := ora[w]
			if got := o.DeleteWeight(w); got != present {
				t.Fatalf("op %d: DeleteWeight(%v) = %v, oracle says %v", op, w, got, present)
			}
			delete(ora, w)
		default: // query
			q := rng.Float64() * 100
			k := 1 + rng.IntN(5)
			got := weightsOf(o.TopK(q, k))
			sameWeights(t, got, ora.topK(q, k), "TopK")
		}
		if o.N() != len(ora) {
			t.Fatalf("op %d: N() = %d, oracle has %d", op, o.N(), len(ora))
		}
	}

	// Final full sweep at several k, plus an Items snapshot check.
	for _, k := range []int{1, 3, 17, len(ora) + 5} {
		got := weightsOf(o.TopK(math.Inf(1), k))
		sameWeights(t, got, ora.topK(math.Inf(1), k), "final TopK")
	}
	live := weightsOf(o.Items())
	sort.Float64s(live)
	want := make([]float64, 0, len(ora))
	for w := range ora {
		want = append(want, w)
	}
	sort.Float64s(want)
	sameWeights(t, live, want, "Items")
}

func TestLevelInvariants(t *testing.T) {
	o, err := New(nil, thresholdMatch, scanBuilder(nil), Options{TailCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if err := o.Insert(item(float64(i%97), float64(i))); err != nil {
			t.Fatal(err)
		}
		if len(o.tail) >= o.opts.TailCap {
			t.Fatalf("after insert %d: tail has %d ≥ TailCap %d", i, len(o.tail), o.opts.TailCap)
		}
		for j, lvl := range o.levels {
			if lvl != nil && len(lvl.items) > o.capOf(j) {
				t.Fatalf("after insert %d: level %d holds %d > cap %d", i, j, len(lvl.items), o.capOf(j))
			}
		}
	}
	st := o.Stats()
	maxLevels := 2 + int(math.Ceil(math.Log2(float64(n)/4)))
	if st.Levels > maxLevels {
		t.Fatalf("%d occupied levels for n=%d, want ≤ %d", st.Levels, n, maxLevels)
	}
	if st.Live != n || st.Inserts != n {
		t.Fatalf("stats: %+v, want Live=Inserts=%d", st, n)
	}
	if st.Flushes == 0 || st.BuiltItems < int64(n) {
		t.Fatalf("stats: %+v, want Flushes > 0 and BuiltItems ≥ %d", st, n)
	}
}

// intervalBuilder builds real block-allocating substructures (interval
// trees under the WorstCase reduction) so space accounting is observable.
func intervalBuilder(tr *em.Tracker) Builder[float64, interval.Interval] {
	return func(items []core.Item[interval.Interval]) (core.TopK[float64, interval.Interval], error) {
		return core.NewWorstCase(items, interval.Match[interval.Interval],
			interval.NewPrioritizedFactory[interval.Interval](tr),
			core.WorstCaseOptions{B: 64, Lambda: interval.Lambda, Seed: 1, Tracker: tr})
	}
}

func ivItem(lo, hi, w float64) core.Item[interval.Interval] {
	return core.Item[interval.Interval]{Value: interval.Interval{Lo: lo, Hi: hi}, Weight: w}
}

func TestBlockAccountingReturnsToZero(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 8})
	var init []core.Item[interval.Interval]
	for i := 0; i < 300; i++ {
		init = append(init, ivItem(float64(i), float64(i+10), float64(i)))
	}
	o, err := New(init, interval.Match[interval.Interval], intervalBuilder(tr),
		Options{Tracker: tr, TailCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Blocks == 0 {
		t.Fatal("initial build allocated no blocks; accounting test is vacuous")
	}
	for i := 300; i < 700; i++ {
		if err := o.Insert(ivItem(float64(i), float64(i+10), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Deleting in insertion order drives both discard paths: fully dead
	// levels and the tombstone-fraction global rebuild.
	for i := 0; i < 700; i++ {
		if !o.DeleteWeight(float64(i)) {
			t.Fatalf("DeleteWeight(%d) = false", i)
		}
	}
	if o.N() != 0 {
		t.Fatalf("N() = %d after deleting everything", o.N())
	}
	if b := tr.Stats().Blocks; b != 0 {
		t.Fatalf("%d blocks still allocated after deleting everything", b)
	}
	if st := o.Stats(); st.Rebuilds == 0 {
		t.Fatalf("stats %+v: expected at least one global rebuild", st)
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	var init []core.Item[float64]
	for i := 0; i < 64; i++ {
		init = append(init, item(float64(i), float64(i)))
	}
	o, err := New(init, thresholdMatch, scanBuilder(nil), Options{TailCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Weight 50 is baked into the initial substructure; tombstone it and
	// bring it back with a different value.
	if !o.DeleteWeight(50) {
		t.Fatal("delete of baked-in weight failed")
	}
	if o.DeleteWeight(50) {
		t.Fatal("second delete of the same weight succeeded")
	}
	if err := o.Insert(item(200, 50)); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	if err := o.Insert(item(1, 50)); err == nil {
		t.Fatal("duplicate insert of live weight succeeded")
	}
	// Only the new copy (value 200, matching no small query) may be seen.
	if got := weightsOf(o.TopK(100, 64)); len(got) != 63 {
		t.Fatalf("query over old value range returned %d items, want 63", len(got))
	}
	got := weightsOf(o.TopK(300, 64))
	if len(got) != 64 || got[0] != 63 {
		t.Fatalf("full query: %v", got)
	}
	if o.N() != 64 {
		t.Fatalf("N() = %d, want 64", o.N())
	}
}

func TestInsertValidation(t *testing.T) {
	o, err := New(nil, thresholdMatch, scanBuilder(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(item(1, math.NaN())); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if err := o.Insert(item(1, math.Inf(1))); err == nil {
		t.Fatal("+Inf weight accepted")
	}
	if err := o.Insert(item(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := o.Insert(item(2, 5)); err == nil {
		t.Fatal("duplicate tail weight accepted")
	}
	if o.DeleteWeight(99) {
		t.Fatal("delete of absent weight succeeded")
	}
}

func TestEmptyOverlay(t *testing.T) {
	o, err := New(nil, thresholdMatch, scanBuilder(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o.N() != 0 || len(o.Items()) != 0 {
		t.Fatal("empty overlay is not empty")
	}
	if got := o.TopK(10, 3); got != nil {
		t.Fatalf("TopK on empty overlay: %v", got)
	}
	if got := o.TopK(10, 0); got != nil {
		t.Fatalf("TopK with k=0: %v", got)
	}
	o.ReportAbove(10, 0, func(core.Item[float64]) bool {
		t.Fatal("ReportAbove emitted on empty overlay")
		return false
	})
}

func TestNewRejectsBadWeights(t *testing.T) {
	if _, err := New([]core.Item[float64]{item(1, 3), item(2, 3)},
		thresholdMatch, scanBuilder(nil), Options{}); err == nil {
		t.Fatal("duplicate initial weights accepted")
	}
	if _, err := New([]core.Item[float64]{item(1, math.NaN())},
		thresholdMatch, scanBuilder(nil), Options{}); err == nil {
		t.Fatal("NaN initial weight accepted")
	}
}

func TestReportAboveStopAndFallback(t *testing.T) {
	for name, builder := range map[string]Builder[float64, float64]{
		"prioritized": scanBuilder(nil),
		"scan-fallback": func(items []core.Item[float64]) (core.TopK[float64, float64], error) {
			return topkOnly{core.NewScan(items, thresholdMatch, nil)}, nil
		},
	} {
		t.Run(name, func(t *testing.T) {
			var init []core.Item[float64]
			for i := 0; i < 40; i++ {
				init = append(init, item(float64(i), float64(i)))
			}
			o, err := New(init, thresholdMatch, builder, Options{TailCap: 4})
			if err != nil {
				t.Fatal(err)
			}
			// Spread items across levels and the tail.
			for i := 40; i < 50; i++ {
				if err := o.Insert(item(float64(i), float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			o.DeleteWeight(10)

			seen := map[float64]bool{}
			o.ReportAbove(math.Inf(1), 5, func(it core.Item[float64]) bool {
				if seen[it.Weight] {
					t.Fatalf("weight %v emitted twice", it.Weight)
				}
				seen[it.Weight] = true
				return true
			})
			if len(seen) != 44 { // weights 5..49 minus deleted 10
				t.Fatalf("ReportAbove emitted %d items, want 44", len(seen))
			}
			if seen[10] {
				t.Fatal("tombstoned weight emitted")
			}

			calls := 0
			o.ReportAbove(math.Inf(1), 0, func(core.Item[float64]) bool {
				calls++
				return false
			})
			if calls != 1 {
				t.Fatalf("emit called %d times after returning false", calls)
			}

			if o.Prioritized() == nil {
				t.Fatal("overlay does not expose itself as prioritized")
			}
		})
	}
}

func TestTopKOverfetchesPastTombstones(t *testing.T) {
	// All heavy items in the substructure are dead; TopK must still find
	// the light live ones behind them.
	var init []core.Item[float64]
	for i := 0; i < 64; i++ {
		init = append(init, item(float64(i), float64(i)))
	}
	o, err := New(init, thresholdMatch, scanBuilder(nil), Options{TailCap: 8, DeadFrac: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	for i := 34; i < 64; i++ { // kill the 30 heaviest; below DeadFrac
		if !o.DeleteWeight(float64(i)) {
			t.Fatalf("delete %d", i)
		}
	}
	got := weightsOf(o.TopK(math.Inf(1), 3))
	sameWeights(t, got, []float64{33, 32, 31}, "post-tombstone TopK")
}
