package dynamic

import (
	"math"
	"sort"
	"strings"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/interval"
	"topk/internal/wrand"
)

func newOverlayWith(t *testing.T, pol MaintenancePolicy, tailCap int) *Overlay[float64, float64] {
	t.Helper()
	o, err := New(nil, thresholdMatch, scanBuilder(nil), Options{TailCap: tailCap, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestChurnVsOracleBuffered is the churn suite under PolicyBuffered,
// with bulk ops mixed in: answers must stay oracle-exact while the
// buffered maintainer merges tiers and partially rebuilds runs.
func TestChurnVsOracleBuffered(t *testing.T) {
	rng := wrand.New(11)
	o := newOverlayWith(t, PolicyBuffered, 8)
	ora := oracle{}
	var weights []float64
	nextW := 0.0

	for op := 0; op < 8000; op++ {
		switch r := rng.Float64(); {
		case r < 0.40: // insert
			nextW++
			v := rng.Float64() * 100
			if err := o.Insert(item(v, nextW)); err != nil {
				t.Fatalf("op %d: insert: %v", op, err)
			}
			ora[nextW] = v
			weights = append(weights, nextW)
		case r < 0.50: // bulk insert
			m := 1 + rng.IntN(40)
			batch := make([]core.Item[float64], 0, m)
			for i := 0; i < m; i++ {
				nextW++
				v := rng.Float64() * 100
				batch = append(batch, item(v, nextW))
				ora[nextW] = v
				weights = append(weights, nextW)
			}
			if err := o.InsertBatch(batch); err != nil {
				t.Fatalf("op %d: InsertBatch: %v", op, err)
			}
		case r < 0.70 && len(weights) > 0: // delete
			i := rng.IntN(len(weights))
			w := weights[i]
			weights[i] = weights[len(weights)-1]
			weights = weights[:len(weights)-1]
			_, present := ora[w]
			if got := o.DeleteWeight(w); got != present {
				t.Fatalf("op %d: DeleteWeight(%v) = %v, oracle says %v", op, w, got, present)
			}
			delete(ora, w)
		case r < 0.75 && len(weights) > 3: // bulk delete
			m := 1 + rng.IntN(min(20, len(weights)))
			ws := make([]float64, 0, m)
			for i := 0; i < m; i++ {
				j := rng.IntN(len(weights))
				ws = append(ws, weights[j])
				weights[j] = weights[len(weights)-1]
				weights = weights[:len(weights)-1]
			}
			want := 0
			for _, w := range ws {
				if _, ok := ora[w]; ok {
					want++
				}
				delete(ora, w)
			}
			if got := o.DeleteBatch(ws); got != want {
				t.Fatalf("op %d: DeleteBatch = %d, want %d", op, got, want)
			}
		default: // query
			q := rng.Float64() * 100
			k := 1 + rng.IntN(5)
			got := weightsOf(o.TopK(q, k))
			sameWeights(t, got, ora.topK(q, k), "TopK")
		}
		if o.N() != len(ora) {
			t.Fatalf("op %d: N() = %d, oracle has %d", op, o.N(), len(ora))
		}
	}
	st := o.Stats()
	if st.Rebuilds != 0 {
		t.Fatalf("buffered policy ran %d global rebuilds; it must never", st.Rebuilds)
	}
	if st.Flushes == 0 || st.PartialRebuilds == 0 {
		t.Fatalf("stats %+v: churn should have flushed and partially rebuilt", st)
	}
	for _, k := range []int{1, 3, 17, len(ora) + 5} {
		got := weightsOf(o.TopK(math.Inf(1), k))
		sameWeights(t, got, ora.topK(math.Inf(1), k), "final TopK")
	}
}

// TestBufferedInvariants checks the tiered-run shape: every run fits its
// slot and its tier, no tier holds tierFan runs at rest, and insert-only
// load never triggers a global rebuild.
func TestBufferedInvariants(t *testing.T) {
	o := newOverlayWith(t, PolicyBuffered, 4)
	m := o.maint.(*bufMaintainer[float64, float64])
	const n = 3000
	for i := 0; i < n; i++ {
		if err := o.Insert(item(float64(i%97), float64(i))); err != nil {
			t.Fatal(err)
		}
		if len(o.tail) >= o.opts.TailCap {
			t.Fatalf("after insert %d: tail has %d ≥ TailCap %d", i, len(o.tail), o.opts.TailCap)
		}
		perTier := map[int]int{}
		for j, lvl := range o.levels {
			if lvl == nil {
				continue
			}
			tier, ok := m.tier[j]
			if !ok {
				t.Fatalf("after insert %d: slot %d has no tier record", i, j)
			}
			if len(lvl.items) > o.capOf(j) {
				t.Fatalf("after insert %d: slot %d holds %d > slot cap %d", i, j, len(lvl.items), o.capOf(j))
			}
			if len(lvl.items) > m.tierCap(tier) {
				t.Fatalf("after insert %d: slot %d holds %d > tier %d cap %d", i, j, len(lvl.items), tier, m.tierCap(tier))
			}
			perTier[tier]++
		}
		for tier, count := range perTier {
			if count >= tierFan {
				t.Fatalf("after insert %d: tier %d holds %d runs at rest (max %d)", i, tier, count, tierFan-1)
			}
		}
	}
	st := o.Stats()
	if st.Rebuilds != 0 {
		t.Fatalf("insert-only load triggered %d global rebuilds", st.Rebuilds)
	}
	if st.PartialRebuilds == 0 {
		t.Fatal("no tier merges over 3000 inserts")
	}
	if st.Live != n || st.Inserts != n {
		t.Fatalf("stats: %+v, want Live=Inserts=%d", st, n)
	}
	// The rebuild amplification is the policy's point: each item is built
	// ~log₄(n/TailCap) times, strictly less than the logarithmic method's
	// ~log₂(n/TailCap) on the same sequence.
	lo := newOverlayWith(t, PolicyLogarithmic, 4)
	for i := 0; i < n; i++ {
		if err := lo.Insert(item(float64(i%97), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	logAmp := float64(lo.Stats().BuiltItems) / float64(n)
	bufAmp := float64(st.BuiltItems) / float64(n)
	if bufAmp >= logAmp {
		t.Fatalf("buffered rebuild amplification %.2f ≥ logarithmic %.2f", bufAmp, logAmp)
	}
}

// TestInsertBatchMatchesSingles: a bulk load and the same items inserted
// one at a time must answer identically under both policies.
func TestInsertBatchMatchesSingles(t *testing.T) {
	for _, pol := range []MaintenancePolicy{PolicyLogarithmic, PolicyBuffered} {
		t.Run(pol.ID(), func(t *testing.T) {
			rng := wrand.New(3)
			var items []core.Item[float64]
			for i := 0; i < 500; i++ {
				items = append(items, item(rng.Float64()*100, float64(i)))
			}
			single := newOverlayWith(t, pol, 8)
			for _, it := range items {
				if err := single.Insert(it); err != nil {
					t.Fatal(err)
				}
			}
			bulk := newOverlayWith(t, pol, 8)
			if err := bulk.InsertBatch(items); err != nil {
				t.Fatal(err)
			}
			if bulk.N() != single.N() {
				t.Fatalf("bulk N = %d, single N = %d", bulk.N(), single.N())
			}
			for _, q := range []float64{10, 55, 100} {
				for _, k := range []int{1, 7, 50} {
					sameWeights(t, weightsOf(bulk.TopK(q, k)), weightsOf(single.TopK(q, k)), "bulk vs single TopK")
				}
			}
		})
	}
}

// TestInsertBatchValidation: the batch is atomic — any invalid item
// rejects the whole batch with the same error strings as Insert.
func TestInsertBatchValidation(t *testing.T) {
	o := newOverlayWith(t, PolicyLogarithmic, 8)
	if err := o.Insert(item(1, 5)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		batch []core.Item[float64]
	}{
		{"nan", []core.Item[float64]{item(1, 10), item(1, math.NaN())}},
		{"inf", []core.Item[float64]{item(1, math.Inf(-1))}},
		{"dup in batch", []core.Item[float64]{item(1, 10), item(2, 10)}},
		{"dup vs live", []core.Item[float64]{item(1, 10), item(2, 5)}},
	}
	for _, tc := range cases {
		if err := o.InsertBatch(tc.batch); err == nil {
			t.Fatalf("%s: batch accepted", tc.name)
		}
		if o.N() != 1 {
			t.Fatalf("%s: rejected batch mutated the overlay (N=%d)", tc.name, o.N())
		}
	}
	if err := o.InsertBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestInsertBatchCheaperThanSingles pins the bulk-ingest cost claim on a
// real block-allocating builder: m items via InsertBatch must charge
// fewer I/Os than the same m items inserted one at a time.
func TestInsertBatchCheaperThanSingles(t *testing.T) {
	for _, pol := range []MaintenancePolicy{PolicyLogarithmic, PolicyBuffered} {
		t.Run(pol.ID(), func(t *testing.T) {
			run := func(bulk bool) int64 {
				tr := em.NewTracker(em.Config{B: 64, MemBlocks: 8})
				var init []core.Item[interval.Interval]
				for i := 0; i < 1024; i++ {
					init = append(init, ivItem(float64(i), float64(i+10), float64(i)))
				}
				o, err := New(init, interval.Match[interval.Interval], intervalBuilder(tr),
					Options{Tracker: tr, TailCap: 64, Policy: pol})
				if err != nil {
					t.Fatal(err)
				}
				var batch []core.Item[interval.Interval]
				for i := 1024; i < 3072; i++ {
					batch = append(batch, ivItem(float64(i), float64(i+10), float64(i)))
				}
				tr.ResetCounters()
				if bulk {
					if err := o.InsertBatch(batch); err != nil {
						t.Fatal(err)
					}
				} else {
					for _, it := range batch {
						if err := o.Insert(it); err != nil {
							t.Fatal(err)
						}
					}
				}
				return tr.Stats().IOs()
			}
			singles, bulk := run(false), run(true)
			if bulk >= singles {
				t.Fatalf("InsertBatch cost %d I/Os ≥ %d for one-at-a-time inserts", bulk, singles)
			}
		})
	}
}

// TestBufferedExportRestoreRoundTrip: a buffered overlay round-trips
// through State with its policy, tier map and counters intact.
func TestBufferedExportRestoreRoundTrip(t *testing.T) {
	rng := wrand.New(5)
	o := newOverlayWith(t, PolicyBuffered, 4)
	ora := oracle{}
	for i := 0; i < 300; i++ {
		w := float64(i + 1)
		v := rng.Float64() * 50
		if err := o.Insert(item(v, w)); err != nil {
			t.Fatal(err)
		}
		ora[w] = v
	}
	for w := 10.0; w < 100; w += 7 {
		o.DeleteWeight(w)
		delete(ora, w)
	}

	st := o.ExportState()
	if st.PolicyID != PolicyBuffered.ID() {
		t.Fatalf("exported policy %q, want %q", st.PolicyID, PolicyBuffered.ID())
	}
	if len(st.Tiers) != len(st.Levels) {
		t.Fatalf("%d tier records for %d levels", len(st.Tiers), len(st.Levels))
	}

	r, err := Restore[float64, float64](st, thresholdMatch, scanBuilder(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy() != PolicyBuffered {
		t.Fatalf("restored policy %v, want buffered", r.Policy())
	}
	if os, rs := o.Stats(), r.Stats(); os != rs {
		t.Fatalf("stats diverge:\n  orig     %+v\n  restored %+v", os, rs)
	}
	for _, q := range []float64{1, 25, 49} {
		sameWeights(t, weightsOf(r.TopK(q, 9)), weightsOf(o.TopK(q, 9)), "restored TopK")
	}
	// The restored overlay keeps maintaining under the same policy.
	for i := 1000; i < 1300; i++ {
		if err := r.Insert(item(float64(i%50), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if rs := r.Stats(); rs.Rebuilds != 0 {
		t.Fatalf("restored buffered overlay globally rebuilt: %+v", rs)
	}
}

// TestRestoreRejectsCorruptTiers extends the corrupt-state table with the
// policy-record invariants.
func TestRestoreRejectsCorruptTiers(t *testing.T) {
	o := newOverlayWith(t, PolicyBuffered, 4)
	for i := 0; i < 200; i++ {
		if err := o.Insert(item(float64(i%31), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	base := o.ExportState()
	if len(base.Tiers) < 2 {
		t.Fatalf("base state has %d tier records; test needs ≥ 2", len(base.Tiers))
	}

	cases := []struct {
		name    string
		mutate  func(*State[float64])
		wantSub string
	}{
		{"unknown policy", func(st *State[float64]) { st.PolicyID = "lsm" }, "unknown maintenance policy"},
		{"missing tier record", func(st *State[float64]) { st.Tiers = st.Tiers[1:] }, "no tier record"},
		{"duplicate tier record", func(st *State[float64]) { st.Tiers = append(st.Tiers, st.Tiers[0]) }, "two tier records"},
		{"tier out of range", func(st *State[float64]) { st.Tiers[0].Tier = -1 }, "out of range"},
		{"orphan tier record", func(st *State[float64]) {
			st.Tiers = append(st.Tiers, TierRef{Slot: 59, Tier: 0})
		}, "do not match"},
		{"run over tier capacity", func(st *State[float64]) {
			big := -1
			for i, ls := range st.Levels {
				if len(ls.Items) > 4*tierFan { // larger than tier 0 allows at TailCap 4
					big = i
				}
			}
			if big < 0 {
				panic("no level larger than tier-0 capacity")
			}
			for i := range st.Tiers {
				if st.Tiers[i].Slot == st.Levels[big].Slot {
					st.Tiers[i].Tier = 0
				}
			}
		}, "capacity"},
		{"tiers under logarithmic", func(st *State[float64]) { st.PolicyID = PolicyLogarithmic.ID() }, "logarithmic policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := cloneState(base)
			st.PolicyID = base.PolicyID
			st.Tiers = append([]TierRef(nil), base.Tiers...)
			tc.mutate(&st)
			_, err := Restore[float64, float64](st, thresholdMatch, scanBuilder(nil), Options{})
			if err == nil {
				t.Fatal("corrupt state accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestPolicyAnswerEquivalence drives identical op sequences through both
// policies and a full-scan oracle; every answer must be identical.
func TestPolicyAnswerEquivalence(t *testing.T) {
	rng := wrand.New(23)
	lg := newOverlayWith(t, PolicyLogarithmic, 8)
	bf := newOverlayWith(t, PolicyBuffered, 8)
	ora := oracle{}
	var weights []float64
	nextW := 0.0
	for op := 0; op < 4000; op++ {
		switch r := rng.Float64(); {
		case r < 0.5:
			nextW++
			v := rng.Float64() * 100
			if err := lg.Insert(item(v, nextW)); err != nil {
				t.Fatal(err)
			}
			if err := bf.Insert(item(v, nextW)); err != nil {
				t.Fatal(err)
			}
			ora[nextW] = v
			weights = append(weights, nextW)
		case r < 0.7 && len(weights) > 0:
			i := rng.IntN(len(weights))
			w := weights[i]
			weights[i] = weights[len(weights)-1]
			weights = weights[:len(weights)-1]
			lg.DeleteWeight(w)
			bf.DeleteWeight(w)
			delete(ora, w)
		default:
			q := rng.Float64() * 100
			k := 1 + rng.IntN(6)
			want := ora.topK(q, k)
			sameWeights(t, weightsOf(lg.TopK(q, k)), want, "logarithmic")
			sameWeights(t, weightsOf(bf.TopK(q, k)), want, "buffered")
		}
	}
	a, b := weightsOf(lg.Items()), weightsOf(bf.Items())
	sort.Float64s(a)
	sort.Float64s(b)
	sameWeights(t, a, b, "Items")
}
