// Package dynamic turns the repository's static top-k structures into
// fully dynamic ones, used here exactly in the spirit of the paper: as
// one more black-box reduction. The overlay never looks inside a
// substructure — it only needs a Builder that constructs a static top-k
// structure over an arbitrary subset of the input, which every reduction
// constructor in this repository already is.
//
// Layout. Under every policy the live set is partitioned into
//
//   - a mutable tail of at most TailCap recently inserted items, kept
//     unindexed and scanned at O(TailCap/B) I/Os per query, and
//   - a ladder of static substructures ("levels"), slot j holding at
//     most TailCap·2^(j+1) items.
//
// How the ladder is maintained — when the tail is flushed, which levels
// are merged, when and how tombstones are compacted — is the pluggable
// part, selected by Options.Policy (a MaintenancePolicy):
//
//   - PolicyLogarithmic (the default) is the logarithmic method of
//     Bentley & Saxe: a full tail merges into the ladder carry-style,
//     absorbing every occupied level it passes, so each item is rebuilt
//     O(log n) times and the amortized insert cost is
//     O(log(n/TailCap) · Build(n)/n) I/Os. When tombstones exceed
//     DeadFrac of all baked-in items, a global rebuild compacts
//     everything into one fresh substructure.
//
//   - PolicyBuffered batches updates per level in the buffer-tree
//     spirit: each tail flush is built immediately as an independent run,
//     runs accumulate at a tier until tierFan of them merge into one run
//     a tier up, a tombstone-heavy run is partially rebuilt alone, and
//     there is no global rebuild. Each item is rebuilt only once per
//     tier — O(log₄(n/TailCap)) times — roughly halving the logarithmic
//     method's amortized insert I/Os.
//
// Both policies delete by marking the weight in its level's tombstone
// set (weights identify items uniquely under the paper's distinct-weights
// assumption) and discard a level outright the moment it is entirely
// dead; compaction of the remaining tombstones is where they differ, as
// above. All maintenance costs are amortized against the updates that
// caused them.
//
// Bulk updates go through InsertBatch/DeleteBatch: the whole batch is
// validated and then merged in a single maintenance pass, so m items pay
// one sorted merge instead of m per-item overlay costs.
//
// Query merges candidates: level j is asked for its top-(k + dead_j)
// items, which must contain that level's k heaviest live matches; the
// tail is scanned; tombstoned candidates are dropped and a k-selection
// finishes. The query path never consults the policy and mutates
// nothing, so queries inherit the concurrency contract of the static
// structures: any number may run in parallel (including through
// em.Tracker query views), and per-query I/O stats are deterministic
// regardless of parallelism — and identical under every policy.
//
// All substructure build I/Os are charged to the Options.Tracker by the
// builders themselves, and a discarded substructure's blocks are returned
// via Tracker.ReleaseBlocks, so the tracker's counters directly measure
// the amortized update cost and live space (experiments E25 and E32).
package dynamic

import (
	"fmt"
	"math"

	"topk/internal/core"
	"topk/internal/em"
)

// Trace phase names emitted by the overlay (see em.TraceEvent and
// DESIGN.md §9). Query-path spans are emitted inside the caller's query
// view; flush and rebuild spans run on the shared path under the
// exclusive-update contract.
const (
	// PhaseLevel wraps one substructure's top-(k+dead) candidate query
	// plus tombstone filtering. Level = overlay slot j, Arg = |dead_j|
	// (the tombstone over-fetch).
	PhaseLevel = "dyn.level"
	// PhaseTail is the unindexed tail scan. Arg = |tail|.
	PhaseTail = "dyn.tail"
	// PhaseSelect is the final k-selection over the merged candidates.
	// Arg = |candidates|.
	PhaseSelect = "dyn.select"
	// PhaseFlush is a tail merge into the ladder (carry-style), covering
	// the absorbed levels' discard and the substructure build. Level =
	// the slot the batch settled in, Arg = batch size.
	PhaseFlush = "dyn.flush"
	// PhaseRebuild is the global compaction triggered at DeadFrac
	// (PolicyLogarithmic only). Arg = live items compacted.
	PhaseRebuild = "dyn.rebuild"
	// PhasePartial is PolicyBuffered maintenance that rebuilds a strict
	// subset of the structure: a tier merge (Level = the tier merged) or
	// a single run's tombstone compaction (Level = the run's slot).
	// Arg = items rebuilt.
	PhasePartial = "dyn.partial"
)

// maxCap caps capacity formulas clear of integer overflow.
const maxCap = math.MaxInt / 2

// Builder constructs one static top-k substructure over a subset of the
// input. The overlay owns the slice it passes and never mutates it after
// the call. Builders are invoked during New, Insert and DeleteWeight —
// never on the query path.
type Builder[Q, V any] func(items []core.Item[V]) (core.TopK[Q, V], error)

// Options configures the overlay.
type Options struct {
	// Tracker, when non-nil, is charged the overlay's own scan costs
	// (tail scans, candidate k-selection) and has substructure blocks
	// released on discard. Substructure builds and queries charge it
	// through the builders' own closures.
	Tracker *em.Tracker
	// TailCap is the insert-buffer capacity; reaching it triggers a merge
	// into the level ladder. Default 64 (one block of the paper's minimum
	// block size).
	TailCap int
	// DeadFrac is the tombstone-compaction threshold. Under
	// PolicyLogarithmic it triggers a global rebuild when tombstones
	// exceed this fraction of all items baked into substructures; under
	// PolicyBuffered it triggers a partial rebuild of any single run
	// whose own tombstones exceed it. Default 0.5.
	DeadFrac float64
	// Policy selects the structural-maintenance strategy. Nil defaults
	// to PolicyLogarithmic, the pre-seam behavior.
	Policy MaintenancePolicy
}

func (o *Options) fill() {
	if o.TailCap <= 0 {
		o.TailCap = 64
	}
	if o.DeadFrac <= 0 || o.DeadFrac >= 1 {
		o.DeadFrac = 0.5
	}
	if o.Policy == nil {
		o.Policy = PolicyLogarithmic
	}
}

// Stats is a snapshot of the overlay's shape and update activity.
type Stats struct {
	Levels     int // occupied levels
	Live       int // live items (levels minus tombstones, plus tail)
	Tail       int // items in the mutable tail
	Tombstones int // dead items still baked into substructures

	Inserts, Deletes int64
	Flushes          int64 // tail/bulk merges into the ladder
	Rebuilds         int64 // global compactions (PolicyLogarithmic)
	// PartialRebuilds counts PolicyBuffered maintenance operations that
	// rebuilt a strict subset of the structure: tier merges and
	// single-run tombstone compactions.
	PartialRebuilds int64
	// BuiltItems counts items passed through substructure builds since
	// construction (including the initial build); BuiltItems/Inserts is
	// the measured rebuild amplification behind the amortized bound.
	BuiltItems int64

	// BufferedRuns and BufferedItems describe PolicyBuffered's pending
	// work: runs (and the items in them) buffered at some tier awaiting
	// that tier's next merge. Zero under PolicyLogarithmic.
	BufferedRuns  int
	BufferedItems int
}

// level is one static substructure plus its delete bookkeeping.
type level[Q, V any] struct {
	sub    core.TopK[Q, V]
	pri    core.Prioritized[Q, V] // may be nil; scan fallback then applies
	items  []core.Item[V]         // exactly what sub was built over
	dead   map[float64]struct{}   // tombstoned weights among items
	blocks int64                  // tracker blocks attributed to sub
}

func (l *level[Q, V]) live() int { return len(l.items) - len(l.dead) }

// Overlay is the dynamized top-k structure. It implements core.TopK,
// core.Prioritized and the facade's updatable surface (Insert,
// DeleteWeight, Items). Updates require exclusive access; queries may run
// concurrently with each other.
type Overlay[Q, V any] struct {
	match core.MatchFunc[Q, V]
	build Builder[Q, V]
	opts  Options
	maint maintainer[Q, V] // opts.Policy instantiated for this overlay

	levels  []*level[Q, V] // slot j: nil or ≤ TailCap·2^(j+1) items
	tail    []core.Item[V]
	tailPos map[float64]int // weight -> index in tail
	where   map[float64]int // live weight -> occupied level index

	builtTotal int // Σ len(level.items)
	deadTotal  int // Σ len(level.dead)

	stats Stats
}

// New builds an overlay over the initial items (weights finite and
// distinct), placed as a single substructure like a static build.
func New[Q, V any](
	items []core.Item[V],
	match core.MatchFunc[Q, V],
	build Builder[Q, V],
	opts Options,
) (*Overlay[Q, V], error) {
	opts.fill()
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	o := &Overlay[Q, V]{
		match: match, build: build, opts: opts,
		tailPos: make(map[float64]int), where: make(map[float64]int),
	}
	o.maint = newMaintainer(o)
	if len(items) > 0 {
		batch := make([]core.Item[V], len(items))
		copy(batch, items)
		if err := o.maint.initial(batch); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// capOf is level j's capacity, TailCap·2^(j+1).
func (o *Overlay[Q, V]) capOf(j int) int {
	if j >= 40 {
		return maxCap
	}
	return o.opts.TailCap << uint(j+1)
}

// N returns the number of live items.
func (o *Overlay[Q, V]) N() int { return o.builtTotal - o.deadTotal + len(o.tail) }

// Stats returns a snapshot of the overlay's instrumentation.
func (o *Overlay[Q, V]) Stats() Stats {
	st := o.stats
	for _, lvl := range o.levels {
		if lvl != nil {
			st.Levels++
		}
	}
	st.Live, st.Tail, st.Tombstones = o.N(), len(o.tail), o.deadTotal
	o.maint.addStats(&st)
	return st
}

// Policy reports the maintenance policy this overlay runs under.
func (o *Overlay[Q, V]) Policy() MaintenancePolicy { return o.maint.policy() }

// Items returns a snapshot of the live items in unspecified order.
func (o *Overlay[Q, V]) Items() []core.Item[V] {
	out := make([]core.Item[V], 0, o.N())
	for _, lvl := range o.levels {
		if lvl != nil {
			out = appendLive(out, lvl)
		}
	}
	return append(out, o.tail...)
}

// contains reports whether weight w is live anywhere in the overlay.
func (o *Overlay[Q, V]) contains(w float64) bool {
	if _, ok := o.tailPos[w]; ok {
		return true
	}
	_, ok := o.where[w]
	return ok
}

// Insert adds an item: O(1) tail append, plus the policy's amortized
// merge cost when the tail fills.
func (o *Overlay[Q, V]) Insert(it core.Item[V]) error {
	if math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
		return fmt.Errorf("dynamic: non-finite weight %v", it.Weight)
	}
	if o.contains(it.Weight) {
		return fmt.Errorf("dynamic: duplicate weight %v", it.Weight)
	}
	o.tailPos[it.Weight] = len(o.tail)
	o.tail = append(o.tail, it)
	o.stats.Inserts++
	o.maint.afterInsert()
	return nil
}

// InsertBatch adds a batch of items in one maintenance pass: the batch is
// validated up front (atomically — on error nothing is inserted), small
// batches simply extend the tail, and anything larger is merged into the
// ladder together with the drained tail as a single bulk load. m items
// therefore pay one sorted merge — charged as Tracker.SortCost plus one
// policy merge — instead of m per-item overlay costs.
func (o *Overlay[Q, V]) InsertBatch(items []core.Item[V]) error {
	seen := make(map[float64]struct{}, len(items))
	for _, it := range items {
		if math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
			return fmt.Errorf("dynamic: non-finite weight %v", it.Weight)
		}
		if _, dup := seen[it.Weight]; dup {
			return fmt.Errorf("dynamic: duplicate weight %v", it.Weight)
		}
		if o.contains(it.Weight) {
			return fmt.Errorf("dynamic: duplicate weight %v", it.Weight)
		}
		seen[it.Weight] = struct{}{}
	}
	if len(items) == 0 {
		return nil
	}
	o.stats.Inserts += int64(len(items))
	if len(o.tail)+len(items) < o.opts.TailCap {
		for _, it := range items {
			o.tailPos[it.Weight] = len(o.tail)
			o.tail = append(o.tail, it)
		}
		return nil
	}
	batch := make([]core.Item[V], 0, len(o.tail)+len(items))
	batch = append(batch, o.tail...)
	batch = append(batch, items...)
	o.tail = o.tail[:0]
	clear(o.tailPos)
	if o.opts.Tracker != nil {
		o.opts.Tracker.SortCost(len(items))
	}
	return o.maint.bulkLoad(batch)
}

// DeleteWeight removes the item with the given weight and reports whether
// it was present: O(1) for tail items, a tombstone mark (plus the
// policy's amortized compaction) for baked-in ones.
func (o *Overlay[Q, V]) DeleteWeight(w float64) bool {
	found, j, discarded := o.deleteOne(w)
	if !found {
		return false
	}
	if j >= 0 {
		o.maint.afterDelete(j, discarded)
	}
	return true
}

// DeleteBatch removes the items with the given weights and reports how
// many were present; absent weights are skipped. Tombstones are marked
// item by item (fully dead levels are still discarded on the spot), and
// the policy's compaction check runs once for the whole batch, so a bulk
// delete triggers at most one maintenance pass.
func (o *Overlay[Q, V]) DeleteBatch(ws []float64) int {
	found := 0
	for _, w := range ws {
		if ok, _, _ := o.deleteOne(w); ok {
			found++
		}
	}
	if found > 0 {
		o.maint.afterDeleteBatch()
	}
	return found
}

// deleteOne is the policy-independent half of a delete: tail removal or
// tombstone marking, plus the unconditional discard of a fully dead
// level. It reports the slot tombstoned (-1 for tail removals) and
// whether that slot was discarded; the caller runs policy maintenance.
func (o *Overlay[Q, V]) deleteOne(w float64) (found bool, j int, discarded bool) {
	if pos, ok := o.tailPos[w]; ok {
		last := len(o.tail) - 1
		moved := o.tail[last]
		o.tail[pos] = moved
		o.tail = o.tail[:last]
		if moved.Weight != w {
			o.tailPos[moved.Weight] = pos
		}
		delete(o.tailPos, w)
		o.stats.Deletes++
		return true, -1, false
	}
	j, ok := o.where[w]
	if !ok {
		return false, -1, false
	}
	lvl := o.levels[j]
	lvl.dead[w] = struct{}{}
	delete(o.where, w)
	o.deadTotal++
	o.stats.Deletes++
	if lvl.live() == 0 {
		o.discard(j)
		return true, j, true
	}
	return true, j, false
}

// drainTail detaches the tail's contents as a batch, resetting the
// buffer.
func (o *Overlay[Q, V]) drainTail() []core.Item[V] {
	batch := make([]core.Item[V], len(o.tail))
	copy(batch, o.tail)
	o.tail = o.tail[:0]
	clear(o.tailPos)
	return batch
}

// buildAt constructs a substructure over batch and installs it at level j,
// attributing the tracker blocks it allocated for release on discard.
func (o *Overlay[Q, V]) buildAt(j int, batch []core.Item[V]) error {
	if len(batch) == 0 {
		return nil
	}
	for j >= len(o.levels) {
		o.levels = append(o.levels, nil)
	}
	var before int64
	if o.opts.Tracker != nil {
		before = o.opts.Tracker.Stats().Blocks
	}
	sub, err := o.build(batch)
	if err != nil {
		return err
	}
	lvl := &level[Q, V]{
		sub: sub, pri: core.PrioritizedOf(sub),
		items: batch, dead: make(map[float64]struct{}),
	}
	if o.opts.Tracker != nil {
		lvl.blocks = o.opts.Tracker.Stats().Blocks - before
	}
	o.levels[j] = lvl
	for _, it := range batch {
		o.where[it.Weight] = j
	}
	o.builtTotal += len(batch)
	o.stats.BuiltItems += int64(len(batch))
	return nil
}

// discard drops level j, releasing its space and bookkeeping.
func (o *Overlay[Q, V]) discard(j int) {
	lvl := o.levels[j]
	o.levels[j] = nil
	o.builtTotal -= len(lvl.items)
	o.deadTotal -= len(lvl.dead)
	for _, it := range lvl.items {
		if _, gone := lvl.dead[it.Weight]; !gone {
			delete(o.where, it.Weight)
		}
	}
	if o.opts.Tracker != nil {
		o.opts.Tracker.ReleaseBlocks(lvl.blocks)
	}
	o.maint.onDiscard(j)
}

// single returns the only occupied level, if exactly one exists.
func (o *Overlay[Q, V]) single() (*level[Q, V], bool) {
	var found *level[Q, V]
	for _, lvl := range o.levels {
		if lvl == nil {
			continue
		}
		if found != nil {
			return nil, false
		}
		found = lvl
	}
	return found, found != nil
}

// TopK answers a top-k query by merging per-level candidate sets with the
// tail and tombstone-filtering: level j contributes its top-(k + dead_j)
// matches, which necessarily include its k heaviest live ones. The result
// is weight-descending with min(k, |q(D)|) items. Read-only.
func (o *Overlay[Q, V]) TopK(q Q, k int) []core.Item[V] {
	if k <= 0 {
		return nil
	}
	// Fast path: one substructure, no tail, no tombstones — the static
	// shape; the substructure's own answer is the overlay's.
	if lvl, only := o.single(); only && len(o.tail) == 0 && len(lvl.dead) == 0 {
		return lvl.sub.TopK(q, k)
	}
	tr := o.opts.Tracker
	var cand []core.Item[V]
	for j, lvl := range o.levels {
		if lvl == nil {
			continue
		}
		sp := tr.BeginSpan()
		for _, it := range lvl.sub.TopK(q, k+len(lvl.dead)) {
			if _, gone := lvl.dead[it.Weight]; !gone {
				cand = append(cand, it)
			}
		}
		tr.EndSpan(sp, PhaseLevel, j, int64(len(lvl.dead)))
	}
	if len(o.tail) > 0 {
		sp := tr.BeginSpan()
		o.charge(len(o.tail))
		for _, it := range o.tail {
			if o.match(q, it.Value) {
				cand = append(cand, it)
			}
		}
		tr.EndSpan(sp, PhaseTail, -1, int64(len(o.tail)))
	}
	sp := tr.BeginSpan()
	o.charge(len(cand)) // final k-selection over the merged candidates
	res := core.TopKOf(cand, k)
	tr.EndSpan(sp, PhaseSelect, -1, int64(len(cand)))
	return res
}

// ReportAbove streams every live item satisfying q with weight ≥ tau,
// level by level then the tail, filtering tombstones; emit returning false
// stops the whole traversal. Read-only. This makes the overlay its own
// prioritized structure, so facades can serve ReportAbove without a second
// black box.
func (o *Overlay[Q, V]) ReportAbove(q Q, tau float64, emit func(core.Item[V]) bool) {
	stopped := false
	for _, lvl := range o.levels {
		if lvl == nil || stopped {
			continue
		}
		if lvl.pri != nil {
			lvl.pri.ReportAbove(q, tau, func(it core.Item[V]) bool {
				if _, gone := lvl.dead[it.Weight]; gone {
					return true
				}
				if !emit(it) {
					stopped = true
					return false
				}
				return true
			})
			continue
		}
		o.charge(len(lvl.items))
		for _, it := range lvl.items {
			if stopped {
				break
			}
			if it.Weight < tau || !o.match(q, it.Value) {
				continue
			}
			if _, gone := lvl.dead[it.Weight]; gone {
				continue
			}
			if !emit(it) {
				stopped = true
			}
		}
	}
	if stopped || len(o.tail) == 0 {
		return
	}
	o.charge(len(o.tail))
	for _, it := range o.tail {
		if it.Weight >= tau && o.match(q, it.Value) {
			if !emit(it) {
				return
			}
		}
	}
}

// Prioritized exposes the overlay's merged prioritized view (itself).
func (o *Overlay[Q, V]) Prioritized() core.Prioritized[Q, V] { return o }

// charge bills an O(n/B) scan to the tracker, if any.
func (o *Overlay[Q, V]) charge(nItems int) {
	if o.opts.Tracker != nil {
		o.opts.Tracker.ScanCost(nItems)
	}
}

// appendLive appends lvl's non-tombstoned items to dst.
func appendLive[Q, V any](dst []core.Item[V], lvl *level[Q, V]) []core.Item[V] {
	for _, it := range lvl.items {
		if _, gone := lvl.dead[it.Weight]; !gone {
			dst = append(dst, it)
		}
	}
	return dst
}
