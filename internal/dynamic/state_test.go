package dynamic

import (
	"strings"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
)

// agedOverlay builds an overlay with a nontrivial shape: several levels,
// a partial tail, and tombstones (including a deleted-then-reinserted
// weight, the delete/reinsert aliasing case Restore must handle).
func agedOverlay(t *testing.T) (*Overlay[float64, float64], oracle) {
	t.Helper()
	tr := em.NewTracker(em.DefaultConfig())
	o, err := New[float64, float64](nil, thresholdMatch, scanBuilder(tr), Options{Tracker: tr, TailCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle{}
	for i := 0; i < 40; i++ {
		w := float64(i + 1)
		v := float64(i % 10)
		if err := o.Insert(item(v, w)); err != nil {
			t.Fatal(err)
		}
		orc[w] = v
	}
	// Tombstone a few baked-in weights, then reinsert one of them so the
	// same weight is dead in one level and live elsewhere.
	for _, w := range []float64{3, 7, 11} {
		if !o.DeleteWeight(w) {
			t.Fatalf("delete %v failed", w)
		}
		delete(orc, w)
	}
	if err := o.Insert(item(2.5, 7)); err != nil {
		t.Fatal(err)
	}
	orc[7] = 2.5
	return o, orc
}

func TestExportRestoreRoundTrip(t *testing.T) {
	o, orc := agedOverlay(t)
	st := o.ExportState()

	tr2 := em.NewTracker(em.DefaultConfig())
	r, err := Restore[float64, float64](st, thresholdMatch, scanBuilder(tr2), Options{Tracker: tr2})
	if err != nil {
		t.Fatal(err)
	}

	if r.N() != o.N() {
		t.Fatalf("restored N = %d, want %d", r.N(), o.N())
	}
	os, rs := o.Stats(), r.Stats()
	if os != rs {
		t.Fatalf("stats diverge:\n  orig     %+v\n  restored %+v", os, rs)
	}
	for _, q := range []float64{-1, 2.5, 5, 9, 100} {
		for _, k := range []int{1, 3, 10, 100} {
			got := weightsOf(r.TopK(q, k))
			want := weightsOf(o.TopK(q, k))
			sameWeights(t, got, want, "restored TopK")
			sameWeights(t, want, orc.topK(q, k), "original TopK vs oracle")
		}
	}

	// The restored overlay must keep working as a dynamic structure.
	if err := r.Insert(item(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if !r.DeleteWeight(1000) {
		t.Fatal("restored overlay lost track of an inserted weight")
	}
	if r.DeleteWeight(3) {
		t.Fatal("restored overlay resurrected tombstoned weight 3")
	}
	if !r.DeleteWeight(7) {
		t.Fatal("reinserted weight 7 should be live after restore")
	}
}

func TestExportStateIsDetached(t *testing.T) {
	o, _ := agedOverlay(t)
	st := o.ExportState()
	before := len(st.Tail)
	if err := o.Insert(item(0, 500)); err != nil {
		t.Fatal(err)
	}
	if len(st.Tail) != before {
		t.Fatal("exported state aliases the live tail")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	o, _ := agedOverlay(t)
	base := o.ExportState()

	cases := []struct {
		name    string
		mutate  func(*State[float64])
		wantSub string
	}{
		{"negative tail cap", func(st *State[float64]) { st.TailCap = -1 }, "negative tail capacity"},
		{"bad dead fraction", func(st *State[float64]) { st.DeadFrac = 1.5 }, "dead fraction"},
		{"overfull tail", func(st *State[float64]) {
			for i := 0; i < st.TailCap+1; i++ {
				st.Tail = append(st.Tail, item(0, 9000+float64(i)))
			}
		}, "tail holds"},
		{"negative slot", func(st *State[float64]) { st.Levels[0].Slot = -1 }, "out of range"},
		{"duplicate slot", func(st *State[float64]) { st.Levels[0].Slot = st.Levels[len(st.Levels)-1].Slot }, "appears twice"},
		{"level over capacity", func(st *State[float64]) { st.Levels[len(st.Levels)-1].Slot = 0 }, "capacity"},
		{"empty level", func(st *State[float64]) { st.Levels[0].Items = nil }, "empty"},
		{"NaN weight", func(st *State[float64]) { st.Levels[0].Items[0].Weight = nan() }, "non-finite"},
		{"duplicate weight in level", func(st *State[float64]) {
			st.Levels[0].Items[1].Weight = st.Levels[0].Items[0].Weight
		}, "appears twice in level"},
		{"duplicate live weight across levels", func(st *State[float64]) {
			a, b := st.Levels[0], st.Levels[len(st.Levels)-1]
			a.Items[liveIndex(a)].Weight = b.Items[liveIndex(b)].Weight
		}, "live in two places"},
		{"orphan tombstone", func(st *State[float64]) { st.Levels[0].Dead = append(st.Levels[0].Dead, 1e18) }, "not an item"},
		{"fully dead level", func(st *State[float64]) {
			lvl := &st.Levels[0]
			lvl.Dead = lvl.Dead[:0]
			for _, it := range lvl.Items {
				lvl.Dead = append(lvl.Dead, it.Weight)
			}
		}, "entirely dead"},
		{"tail duplicates level weight", func(st *State[float64]) {
			lvl := st.Levels[0]
			st.Tail = append(st.Tail[:0], item(0, lvl.Items[liveIndex(lvl)].Weight))
		}, "live in two places"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := cloneState(base)
			tc.mutate(&st)
			tr := em.NewTracker(em.DefaultConfig())
			_, err := Restore[float64, float64](st, thresholdMatch, scanBuilder(tr), Options{Tracker: tr})
			if err == nil {
				t.Fatal("corrupt state accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// liveIndex returns the index of some non-tombstoned item in the level.
func liveIndex(ls LevelState[float64]) int {
	dead := make(map[float64]struct{}, len(ls.Dead))
	for _, w := range ls.Dead {
		dead[w] = struct{}{}
	}
	for i, it := range ls.Items {
		if _, gone := dead[it.Weight]; !gone {
			return i
		}
	}
	panic("level entirely dead")
}

func nan() float64 {
	z := 0.0
	return z / z
}

func cloneState(st State[float64]) State[float64] {
	out := st
	out.Tail = append([]core.Item[float64](nil), st.Tail...)
	out.Levels = make([]LevelState[float64], len(st.Levels))
	for i, ls := range st.Levels {
		out.Levels[i] = LevelState[float64]{
			Slot:  ls.Slot,
			Items: append([]core.Item[float64](nil), ls.Items...),
			Dead:  append([]float64(nil), ls.Dead...),
		}
	}
	return out
}
