package dynamic

import (
	"fmt"
	"math"
	"sort"

	"topk/internal/core"
)

// State is the serializable logical state of an Overlay: everything
// needed to reconstruct an equivalent overlay with Restore, and nothing
// tied to in-memory representation. Level substructures are not encoded
// — each level's exact build batch is, and Restore re-runs the builder
// over it, which is deterministic for every builder in this repository
// (same items, same order, same seed ⇒ identical structure).
type State[V any] struct {
	// TailCap and DeadFrac are the structural options the overlay was
	// running with; Restore adopts them, ignoring any values in its own
	// Options argument.
	TailCap  int
	DeadFrac float64
	// PolicyID names the maintenance policy the overlay was running
	// under; Restore resumes it. Empty means PolicyLogarithmic — the
	// only policy that existed before states carried one, so pre-seam
	// (snapshot v1) states restore onto it unchanged.
	PolicyID string
	// Tiers is PolicyBuffered's placement bookkeeping: the tier of the
	// run each occupied slot holds, ascending by slot. Empty for
	// PolicyLogarithmic, which keeps no per-slot state.
	Tiers []TierRef
	// Levels holds the occupied ladder slots in ascending slot order.
	Levels []LevelState[V]
	// Tail is the mutable insert buffer, in insertion order.
	Tail []core.Item[V]
	// Counters carries the lifetime update statistics so a restored
	// overlay's Stats() continues the original's sequence.
	Counters Counters
}

// TierRef records which tier the run at a ladder slot belongs to.
type TierRef struct {
	Slot, Tier int
}

// LevelState is one occupied ladder slot: the exact item batch its
// substructure was built over plus the weights tombstoned since.
type LevelState[V any] struct {
	Slot  int
	Items []core.Item[V]
	// Dead lists tombstoned weights in ascending order (sorted so that a
	// snapshot of a given overlay is byte-stable).
	Dead []float64
}

// Counters are the lifetime update statistics of Stats.
type Counters struct {
	Inserts, Deletes, Flushes, Rebuilds, PartialRebuilds, BuiltItems int64
}

// ExportState captures the overlay's logical state. The returned value
// shares no memory with the overlay. Read-only; it must not run
// concurrently with Insert or DeleteWeight.
func (o *Overlay[Q, V]) ExportState() State[V] {
	st := State[V]{
		TailCap:  o.opts.TailCap,
		DeadFrac: o.opts.DeadFrac,
		PolicyID: o.maint.policy().ID(),
		Tiers:    o.maint.exportTiers(),
		Tail:     append([]core.Item[V](nil), o.tail...),
		Counters: Counters{
			Inserts:         o.stats.Inserts,
			Deletes:         o.stats.Deletes,
			Flushes:         o.stats.Flushes,
			Rebuilds:        o.stats.Rebuilds,
			PartialRebuilds: o.stats.PartialRebuilds,
			BuiltItems:      o.stats.BuiltItems,
		},
	}
	for j, lvl := range o.levels {
		if lvl == nil {
			continue
		}
		ls := LevelState[V]{
			Slot:  j,
			Items: append([]core.Item[V](nil), lvl.items...),
			Dead:  make([]float64, 0, len(lvl.dead)),
		}
		for w := range lvl.dead {
			ls.Dead = append(ls.Dead, w)
		}
		sort.Float64s(ls.Dead)
		st.Levels = append(st.Levels, ls)
	}
	return st
}

// Restore reconstructs an overlay from an exported state, re-running the
// builder over each level's recorded batch. The state is validated first
// — slot bounds, level capacities, tombstones belonging to their level,
// global uniqueness of live weights — and a violation returns an error
// rather than a structurally corrupt overlay, so Restore is safe to feed
// decoded (possibly corrupt) snapshot data. opts supplies the runtime
// environment (Tracker); the structural knobs come from the state.
func Restore[Q, V any](
	st State[V],
	match core.MatchFunc[Q, V],
	build Builder[Q, V],
	opts Options,
) (*Overlay[Q, V], error) {
	if st.TailCap < 0 {
		return nil, fmt.Errorf("dynamic: restore: negative tail capacity %d", st.TailCap)
	}
	if st.DeadFrac < 0 || st.DeadFrac >= 1 {
		return nil, fmt.Errorf("dynamic: restore: dead fraction %v outside [0,1)", st.DeadFrac)
	}
	opts.TailCap = st.TailCap
	opts.DeadFrac = st.DeadFrac
	// The policy comes from the state, like the other structural knobs: a
	// state with no PolicyID predates the seam and restores onto the
	// logarithmic policy it was written under.
	opts.Policy = PolicyLogarithmic
	if st.PolicyID != "" {
		pol, ok := PolicyByID(st.PolicyID)
		if !ok {
			return nil, fmt.Errorf("dynamic: restore: unknown maintenance policy %q", st.PolicyID)
		}
		opts.Policy = pol
	}
	opts.fill() // zero values fall back to the defaults

	o := &Overlay[Q, V]{
		match: match, build: build, opts: opts,
		tailPos: make(map[float64]int), where: make(map[float64]int),
	}
	o.maint = newMaintainer(o)

	if err := validateState(o, st); err != nil {
		return nil, err
	}
	if err := o.maint.checkTiers(st.Levels, st.Tiers); err != nil {
		return nil, err
	}

	for _, ls := range st.Levels {
		batch := append([]core.Item[V](nil), ls.Items...)
		if err := o.buildAt(ls.Slot, batch); err != nil {
			return nil, fmt.Errorf("dynamic: restore: rebuilding level %d: %w", ls.Slot, err)
		}
		lvl := o.levels[ls.Slot]
		for _, w := range ls.Dead {
			lvl.dead[w] = struct{}{}
		}
		o.deadTotal += len(ls.Dead)
	}

	// buildAt registered every batch item in `where`, including weights
	// that are dead in one level while live in another (a deleted weight
	// can be reinserted); recompute the live map from scratch so each
	// entry points at the level where that weight is live.
	clear(o.where)
	for j, lvl := range o.levels {
		if lvl == nil {
			continue
		}
		for _, it := range lvl.items {
			if _, gone := lvl.dead[it.Weight]; !gone {
				o.where[it.Weight] = j
			}
		}
	}

	o.maint.adoptTiers(st.Tiers)

	o.tail = append(o.tail, st.Tail...)
	for i, it := range o.tail {
		o.tailPos[it.Weight] = i
	}
	o.stats = Stats{
		Inserts:         st.Counters.Inserts,
		Deletes:         st.Counters.Deletes,
		Flushes:         st.Counters.Flushes,
		Rebuilds:        st.Counters.Rebuilds,
		PartialRebuilds: st.Counters.PartialRebuilds,
		BuiltItems:      st.Counters.BuiltItems,
	}
	return o, nil
}

// validateState checks the structural invariants a decoded state must
// satisfy before any substructure is built.
func validateState[Q, V any](o *Overlay[Q, V], st State[V]) error {
	if len(st.Tail) >= o.opts.TailCap && len(st.Tail) > 0 {
		return fmt.Errorf("dynamic: restore: tail holds %d items, capacity is %d (a full tail always flushes)", len(st.Tail), o.opts.TailCap)
	}
	live := make(map[float64]struct{})
	addLive := func(w float64, where string) error {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("dynamic: restore: non-finite weight %v in %s", w, where)
		}
		if _, dup := live[w]; dup {
			return fmt.Errorf("dynamic: restore: weight %v live in two places (%s)", w, where)
		}
		live[w] = struct{}{}
		return nil
	}
	seenSlot := make(map[int]struct{})
	for _, ls := range st.Levels {
		if ls.Slot < 0 || ls.Slot > 60 {
			return fmt.Errorf("dynamic: restore: level slot %d out of range", ls.Slot)
		}
		if _, dup := seenSlot[ls.Slot]; dup {
			return fmt.Errorf("dynamic: restore: level slot %d appears twice", ls.Slot)
		}
		seenSlot[ls.Slot] = struct{}{}
		if len(ls.Items) == 0 {
			return fmt.Errorf("dynamic: restore: level slot %d is empty", ls.Slot)
		}
		if cap := o.capOf(ls.Slot); len(ls.Items) > cap {
			return fmt.Errorf("dynamic: restore: level slot %d holds %d items, capacity %d", ls.Slot, len(ls.Items), cap)
		}
		inLevel := make(map[float64]struct{}, len(ls.Items))
		for _, it := range ls.Items {
			if math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
				return fmt.Errorf("dynamic: restore: non-finite weight %v in level %d", it.Weight, ls.Slot)
			}
			if _, dup := inLevel[it.Weight]; dup {
				return fmt.Errorf("dynamic: restore: weight %v appears twice in level %d", it.Weight, ls.Slot)
			}
			inLevel[it.Weight] = struct{}{}
		}
		dead := make(map[float64]struct{}, len(ls.Dead))
		for _, w := range ls.Dead {
			if _, ok := inLevel[w]; !ok {
				return fmt.Errorf("dynamic: restore: tombstone %v is not an item of level %d", w, ls.Slot)
			}
			if _, dup := dead[w]; dup {
				return fmt.Errorf("dynamic: restore: tombstone %v repeated in level %d", w, ls.Slot)
			}
			dead[w] = struct{}{}
		}
		for _, it := range ls.Items {
			if _, gone := dead[it.Weight]; gone {
				continue
			}
			if err := addLive(it.Weight, fmt.Sprintf("level %d", ls.Slot)); err != nil {
				return err
			}
		}
		if len(dead) == len(ls.Items) {
			return fmt.Errorf("dynamic: restore: level %d is entirely dead (such levels are discarded, never persisted)", ls.Slot)
		}
	}
	for _, it := range st.Tail {
		if err := addLive(it.Weight, "tail"); err != nil {
			return err
		}
	}
	return nil
}
