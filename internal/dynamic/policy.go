package dynamic

import (
	"fmt"
	"sort"

	"topk/internal/core"
)

// MaintenancePolicy selects the overlay's structural-maintenance
// strategy: when the tail is flushed, which substructures are merged,
// and when and how tombstones are compacted. The query path is policy
// independent — every policy keeps the live set partitioned into a
// mutable tail plus static substructures in the ladder slots, so TopK,
// ReportAbove and Items never look at the policy. Answers are identical
// under every policy; only the update-cost profile differs.
type MaintenancePolicy interface {
	// ID is the policy's stable identifier, persisted in snapshots.
	ID() string
	// sealed closes the interface: a policy carries no behavior of its
	// own (the overlay instantiates an internal maintainer for it), so
	// outside implementations would be meaningless.
	sealed()
}

type policyID string

func (p policyID) ID() string { return string(p) }
func (policyID) sealed()      {}

var (
	// PolicyLogarithmic is the classic Bentley–Saxe logarithmic method:
	// carry-style tail merges into geometric levels, tombstone deletes,
	// and a global rebuild once tombstones exceed DeadFrac of the baked-in
	// items. Amortized insert cost O(log(n/TailCap) · Build(n)/n) I/Os.
	// This is the default and the only policy that existed before the
	// policy seam; its behavior (answers, I/O counts, trace spans) is
	// pinned byte-for-byte by the churn and metamorphic suites.
	PolicyLogarithmic MaintenancePolicy = policyID("logarithmic")
	// PolicyBuffered replaces the carry merge with buffer-tree-style
	// update batching (Brodal arXiv:1509.08240; Tao arXiv:1208.4516):
	// each tail flush becomes one run — a buffered per-level update
	// batch — and runs accumulate at a tier until tierFan of them are
	// merged into a single run one tier up, dropping tombstones as they
	// go. A run whose tombstones exceed DeadFrac is compacted alone
	// (a weight-balanced partial rebuild proportional to the run, not
	// the structure), and a fully dead run is discarded in place, so the
	// global rebuild disappears entirely. Each item is rebuilt once per
	// tier boundary it crosses — O(log₄(n/TailCap)) times — halving the
	// logarithmic method's rebuild amplification.
	PolicyBuffered MaintenancePolicy = policyID("buffered")
)

// PolicyByID resolves a persisted policy identifier, e.g. from a
// snapshot's policy section.
func PolicyByID(id string) (MaintenancePolicy, bool) {
	switch id {
	case PolicyLogarithmic.ID():
		return PolicyLogarithmic, true
	case PolicyBuffered.ID():
		return PolicyBuffered, true
	}
	return nil, false
}

// tierFan is PolicyBuffered's merge fan-in: tierFan runs buffered at one
// tier merge into a single run one tier up. 4 balances rebuild
// amplification (each item is built once per log₄ tier) against the run
// count a query touches (< tierFan per tier).
const tierFan = 4

// maintainer is a MaintenancePolicy instantiated for one overlay — the
// strategy half of the update path. The overlay owns the mechanisms
// (buildAt, discard, tracker charges, the ladder itself); the maintainer
// owns the decisions: where batches are placed, when merges run, and how
// tombstones are compacted.
type maintainer[Q, V any] interface {
	policy() MaintenancePolicy
	// initial places New's starting batch (non-empty) like a static
	// build: no flush accounting, no trace span.
	initial(batch []core.Item[V]) error
	// afterInsert runs after each tail append and flushes when due.
	afterInsert()
	// bulkLoad merges a validated batch (the drained tail plus the new
	// items) into the ladder in one maintenance pass.
	bulkLoad(batch []core.Item[V]) error
	// afterDelete runs after weight deletion tombstoned slot j. A fully
	// dead level was already discarded (discarded=true) before the call.
	afterDelete(j int, discarded bool)
	// afterDeleteBatch runs once after a DeleteBatch marked all its
	// tombstones, replacing the per-delete afterDelete calls.
	afterDeleteBatch()
	// onDiscard is invoked by Overlay.discard so placement bookkeeping
	// can forget the slot.
	onDiscard(j int)
	// addStats fills the policy-specific Stats fields.
	addStats(st *Stats)
	// exportTiers snapshots placement bookkeeping for State;
	// checkTiers validates a decoded State's records against this
	// policy, and adoptTiers installs them after the levels are rebuilt.
	exportTiers() []TierRef
	checkTiers(levels []LevelState[V], tiers []TierRef) error
	adoptTiers(tiers []TierRef)
}

// newMaintainer instantiates o.opts.Policy for o.
func newMaintainer[Q, V any](o *Overlay[Q, V]) maintainer[Q, V] {
	if o.opts.Policy == PolicyBuffered {
		return &bufMaintainer[Q, V]{o: o, tier: make(map[int]int)}
	}
	return &logMaintainer[Q, V]{o: o}
}

// logMaintainer is PolicyLogarithmic: the pre-seam overlay behavior,
// moved here verbatim.
type logMaintainer[Q, V any] struct{ o *Overlay[Q, V] }

func (m *logMaintainer[Q, V]) policy() MaintenancePolicy { return PolicyLogarithmic }

func (m *logMaintainer[Q, V]) initial(batch []core.Item[V]) error {
	o := m.o
	j := 0
	for len(batch) > o.capOf(j) {
		j++
	}
	return o.buildAt(j, batch)
}

func (m *logMaintainer[Q, V]) afterInsert() {
	if len(m.o.tail) >= m.o.opts.TailCap {
		m.merge(m.o.drainTail())
	}
}

// merge folds a batch into the ladder carry-style: the batch absorbs
// every occupied level it passes and settles in the first empty slot
// that can hold it.
func (m *logMaintainer[Q, V]) merge(batch []core.Item[V]) {
	o := m.o
	o.stats.Flushes++
	sp := o.opts.Tracker.BeginSpan()
	defer func() { o.opts.Tracker.EndSpan(sp, PhaseFlush, -1, int64(len(batch))) }()

	j := 0
	for {
		if j == len(o.levels) {
			o.levels = append(o.levels, nil)
		}
		if lvl := o.levels[j]; lvl != nil {
			batch = appendLive(batch, lvl)
			o.discard(j)
			j++
			continue
		}
		if len(batch) <= o.capOf(j) {
			break
		}
		j++
	}
	if err := o.buildAt(j, batch); err != nil {
		// Builders fail only on invalid item sets, and every item here was
		// validated on entry; a failure is an invariant violation.
		panic(fmt.Sprintf("dynamic: merge rebuild failed: %v", err))
	}
}

func (m *logMaintainer[Q, V]) bulkLoad(batch []core.Item[V]) error {
	// One carry merge of the whole batch: m items cost one flush instead
	// of m/TailCap of them.
	m.merge(batch)
	return nil
}

func (m *logMaintainer[Q, V]) afterDelete(_ int, discarded bool) {
	if !discarded {
		m.checkRebuild()
	}
}

func (m *logMaintainer[Q, V]) afterDeleteBatch() { m.checkRebuild() }

func (m *logMaintainer[Q, V]) checkRebuild() {
	o := m.o
	if float64(o.deadTotal) >= o.opts.DeadFrac*float64(o.builtTotal) && o.builtTotal > o.opts.TailCap {
		m.rebuildAll()
	}
}

// rebuildAll compacts every live item (levels and tail) into one fresh
// substructure, clearing all tombstones.
func (m *logMaintainer[Q, V]) rebuildAll() {
	o := m.o
	o.stats.Rebuilds++
	sp := o.opts.Tracker.BeginSpan()
	defer func() { o.opts.Tracker.EndSpan(sp, PhaseRebuild, -1, int64(o.N())) }()
	batch := make([]core.Item[V], 0, o.N())
	for j, lvl := range o.levels {
		if lvl != nil {
			batch = appendLive(batch, lvl)
			o.discard(j)
		}
	}
	batch = append(batch, o.tail...)
	o.tail = o.tail[:0]
	clear(o.tailPos)
	o.levels = o.levels[:0]
	if len(batch) == 0 {
		return
	}
	j := 0
	for len(batch) > o.capOf(j) {
		j++
	}
	if err := o.buildAt(j, batch); err != nil {
		panic(fmt.Sprintf("dynamic: global rebuild failed: %v", err))
	}
}

func (m *logMaintainer[Q, V]) onDiscard(int)          {}
func (m *logMaintainer[Q, V]) addStats(*Stats)        {}
func (m *logMaintainer[Q, V]) exportTiers() []TierRef { return nil }

func (m *logMaintainer[Q, V]) checkTiers(_ []LevelState[V], tiers []TierRef) error {
	if len(tiers) > 0 {
		return fmt.Errorf("dynamic: restore: %d tier records under the logarithmic policy (which keeps none)", len(tiers))
	}
	return nil
}

func (m *logMaintainer[Q, V]) adoptTiers([]TierRef) {}

// bufMaintainer is PolicyBuffered. Every ladder slot it occupies holds
// one run: a buffered update batch pending its tier merge. tier maps the
// slot to the run's tier; a run at tier t holds at most
// TailCap·tierFan^(t+1) items, and tierFan runs at tier t merge into one
// run at tier t+1.
type bufMaintainer[Q, V any] struct {
	o    *Overlay[Q, V]
	tier map[int]int // occupied slot -> tier of the run it holds
}

func (m *bufMaintainer[Q, V]) policy() MaintenancePolicy { return PolicyBuffered }

// tierCap is the item capacity of a run at tier t, TailCap·tierFan^(t+1).
func (m *bufMaintainer[Q, V]) tierCap(t int) int {
	c := m.o.opts.TailCap
	for i := 0; i <= t; i++ {
		if c >= maxCap/tierFan {
			return maxCap
		}
		c *= tierFan
	}
	return c
}

// tierOf is the smallest tier whose capacity holds n items.
func (m *bufMaintainer[Q, V]) tierOf(n int) int {
	t := 0
	for n > m.tierCap(t) {
		t++
	}
	return t
}

// place builds batch as one run at tier t, in the smallest free slot
// whose capacity fits — no carry absorption, so nothing already built is
// touched.
func (m *bufMaintainer[Q, V]) place(batch []core.Item[V], t int) error {
	if len(batch) == 0 {
		return nil
	}
	o := m.o
	j := 0
	for {
		if j == len(o.levels) {
			o.levels = append(o.levels, nil)
		}
		if o.levels[j] == nil && len(batch) <= o.capOf(j) {
			break
		}
		j++
	}
	if err := o.buildAt(j, batch); err != nil {
		return err
	}
	m.tier[j] = t
	return nil
}

func (m *bufMaintainer[Q, V]) initial(batch []core.Item[V]) error {
	return m.place(batch, m.tierOf(len(batch)))
}

func (m *bufMaintainer[Q, V]) afterInsert() {
	o := m.o
	if len(o.tail) < o.opts.TailCap {
		return
	}
	batch := o.drainTail()
	o.stats.Flushes++
	sp := o.opts.Tracker.BeginSpan()
	if err := m.place(batch, 0); err != nil {
		panic(fmt.Sprintf("dynamic: buffered flush failed: %v", err))
	}
	o.opts.Tracker.EndSpan(sp, PhaseFlush, -1, int64(len(batch)))
	m.cascade(0)
}

func (m *bufMaintainer[Q, V]) bulkLoad(batch []core.Item[V]) error {
	o := m.o
	o.stats.Flushes++
	t := m.tierOf(len(batch))
	sp := o.opts.Tracker.BeginSpan()
	err := m.place(batch, t)
	o.opts.Tracker.EndSpan(sp, PhaseFlush, -1, int64(len(batch)))
	if err != nil {
		return err
	}
	m.cascade(t)
	return nil
}

// cascade merges upward from tier t: whenever a tier holds tierFan runs,
// their live items become one run a tier up — tombstones are dropped in
// passing, so merges double as compaction — and the check moves to that
// tier.
func (m *bufMaintainer[Q, V]) cascade(t int) {
	o := m.o
	for {
		slots := m.slotsAt(t)
		if len(slots) < tierFan {
			return
		}
		size := 0
		for _, j := range slots {
			size += o.levels[j].live()
		}
		merged := make([]core.Item[V], 0, size)
		for _, j := range slots {
			merged = appendLive(merged, o.levels[j])
		}
		sp := o.opts.Tracker.BeginSpan()
		for _, j := range slots {
			o.discard(j)
		}
		if err := m.place(merged, t+1); err != nil {
			panic(fmt.Sprintf("dynamic: tier merge failed: %v", err))
		}
		o.stats.PartialRebuilds++
		o.opts.Tracker.EndSpan(sp, PhasePartial, t, int64(len(merged)))
		t++
	}
}

// slotsAt lists the slots holding tier-t runs in ascending order, so
// merge input order — and therefore the rebuilt structure — is
// deterministic.
func (m *bufMaintainer[Q, V]) slotsAt(t int) []int {
	var slots []int
	for j, tt := range m.tier {
		if tt == t {
			slots = append(slots, j)
		}
	}
	sort.Ints(slots)
	return slots
}

func (m *bufMaintainer[Q, V]) afterDelete(j int, discarded bool) {
	if !discarded && m.deadHeavy(j) {
		m.compact(j)
	}
}

func (m *bufMaintainer[Q, V]) afterDeleteBatch() {
	for {
		j := -1
		for s := range m.tier {
			if m.deadHeavy(s) && (j < 0 || s < j) {
				j = s
			}
		}
		if j < 0 {
			return
		}
		m.compact(j)
	}
}

// deadHeavy reports whether run j's own tombstones crossed DeadFrac.
// Runs at or below a single tail flush are exempt: they are cheap to
// merge anyway, and compacting them would thrash.
func (m *bufMaintainer[Q, V]) deadHeavy(j int) bool {
	o := m.o
	lvl := o.levels[j]
	return lvl != nil && len(lvl.items) > o.opts.TailCap &&
		float64(len(lvl.dead)) >= o.opts.DeadFrac*float64(len(lvl.items))
}

// compact is the weight-balanced partial rebuild: run j is rebuilt over
// its live items alone, staying at its tier. Cost is proportional to the
// run — never to the whole structure — which is what removes the global
// rebuild from this policy.
func (m *bufMaintainer[Q, V]) compact(j int) {
	o := m.o
	lvl := o.levels[j]
	t := m.tier[j]
	live := appendLive(make([]core.Item[V], 0, lvl.live()), lvl)
	sp := o.opts.Tracker.BeginSpan()
	o.discard(j)
	if err := m.place(live, t); err != nil {
		panic(fmt.Sprintf("dynamic: partial rebuild failed: %v", err))
	}
	o.stats.PartialRebuilds++
	o.opts.Tracker.EndSpan(sp, PhasePartial, j, int64(len(live)))
}

func (m *bufMaintainer[Q, V]) onDiscard(j int) { delete(m.tier, j) }

func (m *bufMaintainer[Q, V]) addStats(st *Stats) {
	byTier := make(map[int][]int)
	for j, t := range m.tier {
		byTier[t] = append(byTier[t], j)
	}
	for _, slots := range byTier {
		if len(slots) < 2 {
			continue
		}
		sort.Ints(slots)
		// The highest slot holds the tier's settled run; every other run
		// is an update batch buffered until the tier's next merge.
		for _, j := range slots[:len(slots)-1] {
			st.BufferedRuns++
			st.BufferedItems += len(m.o.levels[j].items)
		}
	}
}

func (m *bufMaintainer[Q, V]) exportTiers() []TierRef {
	refs := make([]TierRef, 0, len(m.tier))
	for j, t := range m.tier {
		refs = append(refs, TierRef{Slot: j, Tier: t})
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a].Slot < refs[b].Slot })
	return refs
}

func (m *bufMaintainer[Q, V]) checkTiers(levels []LevelState[V], tiers []TierRef) error {
	bySlot := make(map[int]int, len(tiers))
	perTier := make(map[int]int)
	for _, ref := range tiers {
		if ref.Tier < 0 || ref.Tier > 60 {
			return fmt.Errorf("dynamic: restore: tier %d out of range for slot %d", ref.Tier, ref.Slot)
		}
		if _, dup := bySlot[ref.Slot]; dup {
			return fmt.Errorf("dynamic: restore: slot %d has two tier records", ref.Slot)
		}
		bySlot[ref.Slot] = ref.Tier
		perTier[ref.Tier]++
		if perTier[ref.Tier] >= tierFan {
			return fmt.Errorf("dynamic: restore: tier %d holds %d runs, at-rest maximum is %d", ref.Tier, perTier[ref.Tier], tierFan-1)
		}
	}
	seen := 0
	for _, ls := range levels {
		t, ok := bySlot[ls.Slot]
		if !ok {
			return fmt.Errorf("dynamic: restore: slot %d has no tier record under the buffered policy", ls.Slot)
		}
		seen++
		if cap := m.tierCap(t); len(ls.Items) > cap {
			return fmt.Errorf("dynamic: restore: slot %d holds %d items, tier %d capacity is %d", ls.Slot, len(ls.Items), t, cap)
		}
	}
	if seen != len(bySlot) {
		return fmt.Errorf("dynamic: restore: %d tier records do not match %d occupied slots", len(bySlot), seen)
	}
	return nil
}

func (m *bufMaintainer[Q, V]) adoptTiers(tiers []TierRef) {
	for _, ref := range tiers {
		m.tier[ref.Slot] = ref.Tier
	}
}
