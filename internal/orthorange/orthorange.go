// Package orthorange implements top-k orthogonal range reporting in fixed
// dimension d: elements are weighted points in ℝ^d, a predicate is an
// axis-parallel box, and a top-k query returns the k heaviest points
// inside the box. The 2D case is the problem of Rahul & Tao's companion
// PODS'15 paper and the most-studied multidimensional instance in the
// survey (paper §2).
//
// The building blocks are the shared kd-tree engine of package halfspace
// (boxes are the easiest BoxQuery: interval tests per coordinate), giving
// linear space and an O(n^(1-1/d) + t)-type prioritized query with
// max-weight-pruned max search.
package orthorange

import (
	"fmt"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
)

// Box is the predicate {x : Lo_i ≤ x_i ≤ Hi_i for all i}.
type Box struct {
	Lo, Hi []float64
}

// Valid reports whether the box is well-formed for dimension d.
func (b Box) Valid(d int) bool {
	if len(b.Lo) != d || len(b.Hi) != d {
		return false
	}
	for i := range b.Lo {
		if !(b.Lo[i] <= b.Hi[i]) { // also rejects NaN
			return false
		}
	}
	return true
}

// ContainsPoint implements halfspace.BoxQuery.
func (b Box) ContainsPoint(c []float64) bool {
	for i := range b.Lo {
		if c[i] < b.Lo[i] || c[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// ClassifyBox implements halfspace.BoxQuery.
func (b Box) ClassifyBox(lo, hi []float64) (inside, outside bool) {
	inside = true
	for i := range b.Lo {
		if hi[i] < b.Lo[i] || lo[i] > b.Hi[i] {
			return false, true // disjoint in some coordinate
		}
		if lo[i] < b.Lo[i] || hi[i] > b.Hi[i] {
			inside = false
		}
	}
	return inside, false
}

// Match is the predicate evaluator for the reductions.
func Match(q Box, p halfspace.PtN) bool { return q.ContainsPoint(p.C) }

// Lambda returns the polynomial-boundedness exponent in dimension d:
// outcomes are determined by 2d coordinate ranks, so there are O(n^2d).
func Lambda(d int) float64 { return float64(2 * d) }

// Index answers prioritized, max, and top-k-ready orthogonal range
// queries. It implements core.Prioritized[Box, halfspace.PtN] and
// core.Max[Box, halfspace.PtN].
type Index struct {
	d  int
	kd *halfspace.KDTree
}

// NewIndex builds the structure over items in dimension d.
func NewIndex(items []core.Item[halfspace.PtN], d int, tracker *em.Tracker) (*Index, error) {
	kd, err := halfspace.NewKDTree(items, d, tracker)
	if err != nil {
		return nil, err
	}
	return &Index{d: d, kd: kd}, nil
}

// N returns the number of indexed points.
func (ix *Index) N() int { return ix.kd.N() }

// ReportAbove implements core.Prioritized[Box, halfspace.PtN].
func (ix *Index) ReportAbove(q Box, tau float64, emit func(core.Item[halfspace.PtN]) bool) {
	if !q.Valid(ix.d) {
		return
	}
	ix.kd.ReportAboveBox(q, tau, emit)
}

// MaxItem implements core.Max[Box, halfspace.PtN].
func (ix *Index) MaxItem(q Box) (core.Item[halfspace.PtN], bool) {
	if !q.Valid(ix.d) {
		return core.Item[halfspace.PtN]{}, false
	}
	return ix.kd.MaxItemBox(q)
}

// NewPrioritizedFactory adapts the index to the reduction factory
// signature for dimension d.
func NewPrioritizedFactory(d int, tracker *em.Tracker) core.PrioritizedFactory[Box, halfspace.PtN] {
	return func(items []core.Item[halfspace.PtN]) core.Prioritized[Box, halfspace.PtN] {
		ix, err := NewIndex(items, d, tracker)
		if err != nil {
			panic(err)
		}
		return ix
	}
}

// NewMaxFactory adapts the max path to the reduction factory signature.
func NewMaxFactory(d int, tracker *em.Tracker) core.MaxFactory[Box, halfspace.PtN] {
	return func(items []core.Item[halfspace.PtN]) core.Max[Box, halfspace.PtN] {
		ix, err := NewIndex(items, d, tracker)
		if err != nil {
			panic(err)
		}
		return ix
	}
}

// NewBox is a convenience constructor that validates its arguments.
func NewBox(lo, hi []float64) (Box, error) {
	b := Box{Lo: lo, Hi: hi}
	if len(lo) != len(hi) {
		return Box{}, fmt.Errorf("orthorange: lo has %d coordinates, hi has %d", len(lo), len(hi))
	}
	if !b.Valid(len(lo)) {
		return Box{}, fmt.Errorf("orthorange: malformed box lo=%v hi=%v", lo, hi)
	}
	return b, nil
}
