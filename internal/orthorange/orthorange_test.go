package orthorange

import (
	"math"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
	"topk/internal/wrand"
)

func genPoints(g *wrand.RNG, n, d int) []core.Item[halfspace.PtN] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]core.Item[halfspace.PtN], n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = g.Float64() * 100
		}
		items[i] = core.Item[halfspace.PtN]{Value: halfspace.PtN{C: c}, Weight: ws[i]}
	}
	return items
}

func randBox(g *wrand.RNG, d int) Box {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := range lo {
		lo[j] = g.Float64() * 90
		hi[j] = lo[j] + g.Float64()*40
	}
	return Box{Lo: lo, Hi: hi}
}

func TestBoxPredicates(t *testing.T) {
	b := Box{Lo: []float64{0, 10}, Hi: []float64{5, 20}}
	if !b.ContainsPoint([]float64{0, 10}) || !b.ContainsPoint([]float64{5, 20}) {
		t.Error("closed boundary excluded")
	}
	if b.ContainsPoint([]float64{5.1, 15}) || b.ContainsPoint([]float64{3, 9.9}) {
		t.Error("outside point included")
	}
	in, out := b.ClassifyBox([]float64{1, 11}, []float64{4, 19})
	if !in || out {
		t.Errorf("nested box: in=%v out=%v", in, out)
	}
	in, out = b.ClassifyBox([]float64{6, 11}, []float64{8, 19})
	if in || !out {
		t.Errorf("disjoint box: in=%v out=%v", in, out)
	}
	in, out = b.ClassifyBox([]float64{4, 11}, []float64{8, 19})
	if in || out {
		t.Errorf("straddling box: in=%v out=%v", in, out)
	}
	if !b.Valid(2) || b.Valid(3) {
		t.Error("Valid dimension check wrong")
	}
	if (Box{Lo: []float64{5}, Hi: []float64{2}}).Valid(1) {
		t.Error("reversed box valid")
	}
}

func TestIndexAgainstOracle(t *testing.T) {
	g := wrand.New(1)
	for _, d := range []int{2, 3} {
		items := genPoints(g, 900, d)
		ix, err := NewIndex(items, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ix.N() != 900 {
			t.Fatalf("N = %d", ix.N())
		}
		for trial := 0; trial < 100; trial++ {
			q := randBox(g, d)
			tau := g.Float64() * 1.2e6

			var got []core.Item[halfspace.PtN]
			ix.ReportAbove(q, tau, func(it core.Item[halfspace.PtN]) bool {
				got = append(got, it)
				return true
			})
			wantN, bestW, any := 0, math.Inf(-1), false
			for _, it := range items {
				if q.ContainsPoint(it.Value.C) {
					if it.Weight >= tau {
						wantN++
					}
					if it.Weight > bestW {
						bestW, any = it.Weight, true
					}
				}
			}
			if len(got) != wantN {
				t.Fatalf("d=%d: reported %d, want %d", d, len(got), wantN)
			}
			for _, it := range got {
				if it.Weight < tau || !q.ContainsPoint(it.Value.C) {
					t.Fatalf("d=%d: out-of-range emission %+v", d, it)
				}
			}
			m, ok := ix.MaxItem(q)
			if ok != any || (ok && m.Weight != bestW) {
				t.Fatalf("d=%d: max (%v,%v), want (%v,%v)", d, m.Weight, ok, bestW, any)
			}
		}
	}
}

func TestIndexThroughReductions(t *testing.T) {
	g := wrand.New(2)
	const d = 2
	items := genPoints(g, 1500, d)
	exp, err := core.NewExpected(items, Match,
		NewPrioritizedFactory(d, nil), NewMaxFactory(d, nil),
		core.ExpectedOptions{B: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := core.NewWorstCase(items, Match, NewPrioritizedFactory(d, nil),
		core.WorstCaseOptions{B: 8, Lambda: Lambda(d), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := randBox(g, d)
		var ws []float64
		for _, it := range items {
			if q.ContainsPoint(it.Value.C) {
				ws = append(ws, it.Weight)
			}
		}
		want := core.TopKOf(wrapW(ws), 12)
		for name, topkFn := range map[string]func() []core.Item[halfspace.PtN]{
			"expected":  func() []core.Item[halfspace.PtN] { return exp.TopK(q, 12) },
			"worstcase": func() []core.Item[halfspace.PtN] { return wc.TopK(q, 12) },
		} {
			got := topkFn()
			if len(got) != len(want) {
				t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i].Weight != want[i].Weight {
					t.Fatalf("%s: result %d = %v, want %v", name, i, got[i].Weight, want[i].Weight)
				}
			}
		}
	}
}

func wrapW(ws []float64) []core.Item[struct{}] {
	out := make([]core.Item[struct{}], len(ws))
	for i, w := range ws {
		out[i].Weight = w
	}
	return out
}

func TestIndexValidation(t *testing.T) {
	g := wrand.New(3)
	items := genPoints(g, 50, 2)
	ix, err := NewIndex(items, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Malformed queries return nothing rather than panicking.
	if _, ok := ix.MaxItem(Box{Lo: []float64{5, 5}, Hi: []float64{1, 1}}); ok {
		t.Error("reversed box matched")
	}
	count := 0
	ix.ReportAbove(Box{Lo: []float64{0}, Hi: []float64{1}}, 0, func(core.Item[halfspace.PtN]) bool {
		count++
		return true
	})
	if count != 0 {
		t.Error("dimension-mismatched box reported items")
	}
	if _, err := NewBox([]float64{0, 0}, []float64{1}); err == nil {
		t.Error("NewBox accepted mismatched lengths")
	}
	if _, err := NewBox([]float64{2}, []float64{1}); err == nil {
		t.Error("NewBox accepted reversed box")
	}
	if b, err := NewBox([]float64{1, 2}, []float64{3, 4}); err != nil || !b.Valid(2) {
		t.Errorf("NewBox rejected valid box: %v", err)
	}
}

func TestIOCharging(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 4})
	g := wrand.New(4)
	items := genPoints(g, 1<<12, 2)
	ix, err := NewIndex(items, 2, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.DropCache()
	tr.ResetCounters()
	count := 0
	ix.ReportAbove(randBox(g, 2), math.Inf(-1), func(core.Item[halfspace.PtN]) bool {
		count++
		return true
	})
	if count > 0 && tr.Stats().IOs() == 0 {
		t.Fatal("query charged no I/Os")
	}
}
