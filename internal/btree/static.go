// Package btree provides B-fanout search structures over the simulated EM
// machine of internal/em: a packed static index (bulk-built, predecessor /
// successor search in O(log_B n) I/Os) and a dynamic B-tree map
// (insert/delete/search in O(log_B n) I/Os per operation).
//
// These are the "B-tree on the weights" substrates the paper's Section 5.5
// uses for canonical weight decompositions, and the dictionary layer under
// the interval structures.
package btree

import (
	"sort"

	"topk/internal/em"
)

// StaticIndex is a bulk-built sorted index over float64 keys with integer
// payloads (typically positions into a co-sorted payload array). Keys are
// packed B-per-block; above them sits a fanout-B index hierarchy, so a
// search touches O(log_B n) blocks.
type StaticIndex struct {
	keys    []float64
	tracker *em.Tracker
	// levels[0] is the leaf key run; levels[l>0] holds the first key of
	// every block of level l-1. first[l] is the run's first BlockID.
	levels [][]float64
	first  []em.BlockID
	perBlk int
}

// NewStaticIndex builds an index over keys (which must be sorted
// ascending; it panics otherwise, since a silently unsorted index would
// corrupt every search). tracker may be nil for pure-RAM use.
func NewStaticIndex(keys []float64, tracker *em.Tracker) *StaticIndex {
	if !sort.Float64sAreSorted(keys) {
		panic("btree: NewStaticIndex requires sorted keys")
	}
	s := &StaticIndex{keys: append([]float64(nil), keys...), tracker: tracker, perBlk: 64}
	if tracker != nil {
		s.perBlk = tracker.B()
	}
	cur := s.keys
	for {
		s.levels = append(s.levels, cur)
		nBlocks := (len(cur) + s.perBlk - 1) / s.perBlk
		if tracker != nil && nBlocks > 0 {
			s.first = append(s.first, tracker.AllocRun(nBlocks))
		} else {
			s.first = append(s.first, 0)
		}
		if nBlocks <= 1 {
			break
		}
		next := make([]float64, 0, nBlocks)
		for b := 0; b < nBlocks; b++ {
			next = append(next, cur[b*s.perBlk])
		}
		cur = next
	}
	return s
}

// Len returns the number of keys.
func (s *StaticIndex) Len() int { return len(s.keys) }

// Key returns the i-th smallest key.
func (s *StaticIndex) Key(i int) float64 { return s.keys[i] }

// Keys returns the sorted key slice. The caller must treat it as
// read-only; it is the index's backing storage.
func (s *StaticIndex) Keys() []float64 { return s.keys }

// charge reads the block of level l containing position i.
func (s *StaticIndex) charge(l, i int) {
	if s.tracker == nil || s.first[l] == 0 {
		return
	}
	s.tracker.Read(s.first[l] + em.BlockID(i/s.perBlk))
}

// PredecessorIdx returns the largest i with keys[i] ≤ x, or -1. The search
// descends the index hierarchy, charging one block per level.
func (s *StaticIndex) PredecessorIdx(x float64) int {
	if len(s.keys) == 0 || x < s.keys[0] {
		if len(s.levels) > 0 && len(s.keys) > 0 {
			s.charge(len(s.levels)-1, 0)
		}
		return -1
	}
	// Start at the top level and narrow one block per level.
	pos := 0
	for l := len(s.levels) - 1; l >= 0; l-- {
		lvl := s.levels[l]
		// Search within the block of `pos` guidance: positions
		// [pos, pos+perBlk) at this level descend from the parent slot.
		hi := pos + s.perBlk
		if hi > len(lvl) {
			hi = len(lvl)
		}
		s.charge(l, pos)
		// Largest index in [pos, hi) with lvl[idx] ≤ x.
		j := sort.Search(hi-pos, func(i int) bool { return lvl[pos+i] > x }) - 1
		idx := pos + j
		if l == 0 {
			return idx
		}
		pos = idx * s.perBlk
	}
	return -1
}

// Predecessor returns the largest key ≤ x.
func (s *StaticIndex) Predecessor(x float64) (float64, bool) {
	i := s.PredecessorIdx(x)
	if i < 0 {
		return 0, false
	}
	return s.keys[i], true
}

// SuccessorIdx returns the smallest i with keys[i] ≥ x, or len(keys).
func (s *StaticIndex) SuccessorIdx(x float64) int {
	i := s.PredecessorIdx(x)
	if i >= 0 && s.keys[i] == x {
		return i
	}
	return i + 1
}

// Free releases the index's blocks back to the tracker.
func (s *StaticIndex) Free() {
	if s.tracker == nil {
		return
	}
	for l, lvl := range s.levels {
		if s.first[l] != 0 {
			s.tracker.FreeRun(s.first[l], (len(lvl)+s.perBlk-1)/s.perBlk)
		}
	}
	s.levels, s.first = nil, nil
}
