package btree

import (
	"sort"

	"topk/internal/em"
)

// Map is a dynamic B-tree over float64 keys. Every node occupies one
// simulated disk block; descents charge one read per level and mutations
// one write per touched node, so operations cost O(log_B n) I/Os.
type Map[V any] struct {
	tracker *em.Tracker
	deg     int // minimum degree t: nodes hold t-1..2t-1 keys (root: ≥1)
	root    *mnode[V]
	size    int
}

type mnode[V any] struct {
	id       em.BlockID
	keys     []float64
	vals     []V
	children []*mnode[V] // nil for leaves
}

func (n *mnode[V]) leaf() bool { return n.children == nil }

// NewMap creates an empty B-tree. tracker may be nil (pure RAM, still
// B-ary with degree derived from a default block of 64 words).
func NewMap[V any](tracker *em.Tracker) *Map[V] {
	b := 64
	if tracker != nil {
		b = tracker.B()
	}
	deg := b / 4 // ~2 words per key/value pair + child pointers per block
	if deg < 2 {
		deg = 2
	}
	m := &Map[V]{tracker: tracker, deg: deg}
	m.root = m.newNode(true)
	return m
}

func (m *Map[V]) newNode(leaf bool) *mnode[V] {
	n := &mnode[V]{}
	if !leaf {
		n.children = make([]*mnode[V], 0, 2*m.deg)
	}
	if m.tracker != nil {
		n.id = m.tracker.Alloc()
	}
	return n
}

func (m *Map[V]) freeNode(n *mnode[V]) {
	if m.tracker != nil {
		m.tracker.Free(n.id)
	}
}

func (m *Map[V]) read(n *mnode[V]) {
	if m.tracker != nil {
		m.tracker.Read(n.id)
	}
}

func (m *Map[V]) write(n *mnode[V]) {
	if m.tracker != nil {
		m.tracker.Write(n.id)
	}
}

// Len returns the number of entries.
func (m *Map[V]) Len() int { return m.size }

// Get returns the value at key.
func (m *Map[V]) Get(key float64) (v V, ok bool) {
	n := m.root
	for {
		m.read(n)
		i := sort.SearchFloat64s(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			return n.vals[i], true
		}
		if n.leaf() {
			return v, false
		}
		n = n.children[i]
	}
}

// Min returns the smallest key.
func (m *Map[V]) Min() (key float64, v V, ok bool) {
	n := m.root
	if m.size == 0 {
		return 0, v, false
	}
	for !n.leaf() {
		m.read(n)
		n = n.children[0]
	}
	m.read(n)
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key.
func (m *Map[V]) Max() (key float64, v V, ok bool) {
	n := m.root
	if m.size == 0 {
		return 0, v, false
	}
	for !n.leaf() {
		m.read(n)
		n = n.children[len(n.children)-1]
	}
	m.read(n)
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
}

// Insert puts (key, v), returning true if an existing entry was replaced.
func (m *Map[V]) Insert(key float64, v V) bool {
	if len(m.root.keys) == 2*m.deg-1 {
		old := m.root
		m.root = m.newNode(false)
		m.root.children = append(m.root.children, old)
		m.splitChild(m.root, 0)
	}
	replaced := m.insertNonFull(m.root, key, v)
	if !replaced {
		m.size++
	}
	return replaced
}

// splitChild splits the full child at index i of parent p.
func (m *Map[V]) splitChild(p *mnode[V], i int) {
	t := m.deg
	c := p.children[i]
	right := m.newNode(c.leaf())

	midKey, midVal := c.keys[t-1], c.vals[t-1]
	right.keys = append(right.keys, c.keys[t:]...)
	right.vals = append(right.vals, c.vals[t:]...)
	c.keys = c.keys[:t-1]
	c.vals = c.vals[:t-1]
	if !c.leaf() {
		right.children = append(right.children, c.children[t:]...)
		c.children = c.children[:t]
	}

	p.keys = append(p.keys, 0)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = midKey
	p.vals = append(p.vals, midVal)
	copy(p.vals[i+1:], p.vals[i:])
	p.vals[i] = midVal

	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right

	m.write(p)
	m.write(c)
	m.write(right)
}

func (m *Map[V]) insertNonFull(n *mnode[V], key float64, v V) bool {
	for {
		m.read(n)
		i := sort.SearchFloat64s(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = v
			m.write(n)
			return true
		}
		if n.leaf() {
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			var zero V
			n.vals = append(n.vals, zero)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = v
			m.write(n)
			return false
		}
		if len(n.children[i].keys) == 2*m.deg-1 {
			m.splitChild(n, i)
			if key == n.keys[i] {
				n.vals[i] = v
				m.write(n)
				return true
			}
			if key > n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(key float64) bool {
	removed := m.delete(m.root, key)
	if removed {
		m.size--
	}
	if len(m.root.keys) == 0 && !m.root.leaf() {
		old := m.root
		m.root = m.root.children[0]
		m.freeNode(old)
	}
	return removed
}

// delete removes key from the subtree at n, which is guaranteed to hold at
// least deg keys (or be the root).
func (m *Map[V]) delete(n *mnode[V], key float64) bool {
	t := m.deg
	m.read(n)
	i := sort.SearchFloat64s(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		if n.leaf() {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.vals = append(n.vals[:i], n.vals[i+1:]...)
			m.write(n)
			return true
		}
		// Internal hit: replace with predecessor or successor, or merge.
		if len(n.children[i].keys) >= t {
			pk, pv := m.popMax(n.children[i])
			n.keys[i], n.vals[i] = pk, pv
			m.write(n)
			return true
		}
		if len(n.children[i+1].keys) >= t {
			sk, sv := m.popMin(n.children[i+1])
			n.keys[i], n.vals[i] = sk, sv
			m.write(n)
			return true
		}
		m.mergeChildren(n, i)
		return m.delete(n.children[i], key)
	}
	if n.leaf() {
		return false
	}
	// Ensure the child we descend into has ≥ t keys.
	if len(n.children[i].keys) < t {
		i = m.fill(n, i)
	}
	return m.delete(n.children[i], key)
}

// popMax removes and returns the maximum entry of the subtree at n,
// maintaining B-tree invariants on the way down.
func (m *Map[V]) popMax(n *mnode[V]) (float64, V) {
	t := m.deg
	for !n.leaf() {
		m.read(n)
		i := len(n.children) - 1
		if len(n.children[i].keys) < t {
			i = m.fill(n, i)
		}
		n = n.children[i]
	}
	m.read(n)
	last := len(n.keys) - 1
	k, v := n.keys[last], n.vals[last]
	n.keys = n.keys[:last]
	n.vals = n.vals[:last]
	m.write(n)
	return k, v
}

// popMin removes and returns the minimum entry of the subtree at n.
func (m *Map[V]) popMin(n *mnode[V]) (float64, V) {
	t := m.deg
	for !n.leaf() {
		m.read(n)
		i := 0
		if len(n.children[i].keys) < t {
			i = m.fill(n, i)
		}
		n = n.children[i]
	}
	m.read(n)
	k, v := n.keys[0], n.vals[0]
	n.keys = append(n.keys[:0], n.keys[1:]...)
	n.vals = append(n.vals[:0], n.vals[1:]...)
	m.write(n)
	return k, v
}

// fill ensures child i of n has at least deg keys, borrowing from a
// sibling or merging. It returns the (possibly shifted) child index to
// descend into.
func (m *Map[V]) fill(n *mnode[V], i int) int {
	t := m.deg
	if i > 0 && len(n.children[i-1].keys) >= t {
		m.borrowFromLeft(n, i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) >= t {
		m.borrowFromRight(n, i)
		return i
	}
	if i == len(n.children)-1 {
		m.mergeChildren(n, i-1)
		return i - 1
	}
	m.mergeChildren(n, i)
	return i
}

func (m *Map[V]) borrowFromLeft(n *mnode[V], i int) {
	c, l := n.children[i], n.children[i-1]
	m.read(l)
	c.keys = append(c.keys, 0)
	copy(c.keys[1:], c.keys)
	c.keys[0] = n.keys[i-1]
	var zero V
	c.vals = append(c.vals, zero)
	copy(c.vals[1:], c.vals)
	c.vals[0] = n.vals[i-1]

	last := len(l.keys) - 1
	n.keys[i-1], n.vals[i-1] = l.keys[last], l.vals[last]
	l.keys, l.vals = l.keys[:last], l.vals[:last]
	if !c.leaf() {
		c.children = append(c.children, nil)
		copy(c.children[1:], c.children)
		c.children[0] = l.children[len(l.children)-1]
		l.children = l.children[:len(l.children)-1]
	}
	m.write(n)
	m.write(c)
	m.write(l)
}

func (m *Map[V]) borrowFromRight(n *mnode[V], i int) {
	c, r := n.children[i], n.children[i+1]
	m.read(r)
	c.keys = append(c.keys, n.keys[i])
	c.vals = append(c.vals, n.vals[i])
	n.keys[i], n.vals[i] = r.keys[0], r.vals[0]
	r.keys = append(r.keys[:0], r.keys[1:]...)
	r.vals = append(r.vals[:0], r.vals[1:]...)
	if !c.leaf() {
		c.children = append(c.children, r.children[0])
		r.children = append(r.children[:0], r.children[1:]...)
	}
	m.write(n)
	m.write(c)
	m.write(r)
}

// mergeChildren merges child i, separator i, and child i+1 into child i.
func (m *Map[V]) mergeChildren(n *mnode[V], i int) {
	c, r := n.children[i], n.children[i+1]
	m.read(r)
	c.keys = append(c.keys, n.keys[i])
	c.vals = append(c.vals, n.vals[i])
	c.keys = append(c.keys, r.keys...)
	c.vals = append(c.vals, r.vals...)
	if !c.leaf() {
		c.children = append(c.children, r.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	m.freeNode(r)
	m.write(n)
	m.write(c)
}

// Ascend visits entries with key ≥ from in ascending order until visit
// returns false.
func (m *Map[V]) Ascend(from float64, visit func(key float64, v V) bool) {
	m.ascend(m.root, from, visit)
}

func (m *Map[V]) ascend(n *mnode[V], from float64, visit func(float64, V) bool) bool {
	m.read(n)
	i := sort.SearchFloat64s(n.keys, from)
	if n.leaf() {
		for ; i < len(n.keys); i++ {
			if !visit(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	for ; i < len(n.keys); i++ {
		if !m.ascend(n.children[i], from, visit) {
			return false
		}
		if n.keys[i] >= from && !visit(n.keys[i], n.vals[i]) {
			return false
		}
	}
	return m.ascend(n.children[len(n.children)-1], from, visit)
}

// Depth returns the tree height in levels (1 = just a root leaf).
func (m *Map[V]) Depth() int {
	d, n := 1, m.root
	for !n.leaf() {
		d++
		n = n.children[0]
	}
	return d
}
