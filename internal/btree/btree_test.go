package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"topk/internal/em"
	"topk/internal/wrand"
)

func TestStaticIndexPredecessor(t *testing.T) {
	keys := []float64{1, 3, 5, 7, 9}
	s := NewStaticIndex(keys, nil)
	cases := []struct {
		x    float64
		want int
	}{
		{0.5, -1}, {1, 0}, {2, 0}, {3, 1}, {8.9, 3}, {9, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := s.PredecessorIdx(c.x); got != c.want {
			t.Errorf("PredecessorIdx(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if _, ok := s.Predecessor(0.5); ok {
		t.Error("Predecessor(0.5) found a key")
	}
	if k, ok := s.Predecessor(6); !ok || k != 5 {
		t.Errorf("Predecessor(6) = %v,%v want 5,true", k, ok)
	}
}

func TestStaticIndexSuccessor(t *testing.T) {
	keys := []float64{1, 3, 5}
	s := NewStaticIndex(keys, nil)
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {6, 3},
	}
	for _, c := range cases {
		if got := s.SuccessorIdx(c.x); got != c.want {
			t.Errorf("SuccessorIdx(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestStaticIndexLargeAgainstOracle(t *testing.T) {
	g := wrand.New(1)
	keys := g.UniqueFloats(20000, 1e6)
	sort.Float64s(keys)
	s := NewStaticIndex(keys, nil)
	for trial := 0; trial < 500; trial++ {
		x := g.Float64() * 1.1e6
		want := sort.SearchFloat64s(keys, x)
		if want < len(keys) && keys[want] == x {
			// predecessor idx is the match itself
		} else {
			want--
		}
		if got := s.PredecessorIdx(x); got != want {
			t.Fatalf("PredecessorIdx(%v) = %d, want %d", x, got, want)
		}
	}
}

func TestStaticIndexIOCost(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 2})
	g := wrand.New(2)
	keys := g.UniqueFloats(1<<16, 1e9)
	sort.Float64s(keys)
	s := NewStaticIndex(keys, tr)
	tr.DropCache()
	tr.ResetCounters()
	s.PredecessorIdx(5e8)
	ios := tr.Stats().IOs()
	// 2^16 keys at B=64: leaf level 1024 blocks, level1 16 blocks, level2
	// 1 block -> 3 levels -> 3 reads from a cold cache.
	if ios < 1 || ios > 4 {
		t.Errorf("search cost %d I/Os, want ~3 (log_B n)", ios)
	}
	s.Free()
	if got := tr.Stats().Blocks; got != 0 {
		t.Errorf("blocks after Free = %d, want 0", got)
	}
}

func TestStaticIndexPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted keys accepted")
		}
	}()
	NewStaticIndex([]float64{3, 1, 2}, nil)
}

func TestStaticIndexEmpty(t *testing.T) {
	s := NewStaticIndex(nil, nil)
	if got := s.PredecessorIdx(5); got != -1 {
		t.Errorf("empty index PredecessorIdx = %d, want -1", got)
	}
	if got := s.SuccessorIdx(5); got != 0 {
		t.Errorf("empty index SuccessorIdx = %d, want 0", got)
	}
}

func TestMapBasicOps(t *testing.T) {
	m := NewMap[string](nil)
	if m.Len() != 0 {
		t.Fatalf("new map Len = %d", m.Len())
	}
	if replaced := m.Insert(5, "five"); replaced {
		t.Fatal("first insert reported replacement")
	}
	if replaced := m.Insert(5, "FIVE"); !replaced {
		t.Fatal("second insert did not report replacement")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if v, ok := m.Get(5); !ok || v != "FIVE" {
		t.Fatalf("Get(5) = %q,%v", v, ok)
	}
	if _, ok := m.Get(6); ok {
		t.Fatal("Get(6) found an absent key")
	}
	if !m.Delete(5) {
		t.Fatal("Delete(5) returned false")
	}
	if m.Delete(5) {
		t.Fatal("double Delete returned true")
	}
}

func TestMapAgainstOracleChurn(t *testing.T) {
	g := wrand.New(3)
	m := NewMap[int](nil)
	oracle := map[float64]int{}
	keys := g.UniqueFloats(5000, 1e6)

	for i, k := range keys {
		m.Insert(k, i)
		oracle[k] = i
	}
	// Delete half, reinsert a quarter.
	for i := 0; i < 2500; i++ {
		k := keys[g.IntN(len(keys))]
		if m.Delete(k) != (func() bool { _, ok := oracle[k]; return ok })() {
			t.Fatalf("Delete(%v) disagreed with oracle", k)
		}
		delete(oracle, k)
	}
	for i := 0; i < 1250; i++ {
		k := keys[g.IntN(len(keys))]
		m.Insert(k, -i)
		oracle[k] = -i
	}
	if m.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", m.Len(), len(oracle))
	}
	for k, v := range oracle {
		got, ok := m.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%v) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func TestMapMinMaxAscend(t *testing.T) {
	g := wrand.New(4)
	m := NewMap[int](nil)
	if _, _, ok := m.Min(); ok {
		t.Fatal("empty Min reported ok")
	}
	if _, _, ok := m.Max(); ok {
		t.Fatal("empty Max reported ok")
	}
	keys := g.UniqueFloats(2000, 1e6)
	for i, k := range keys {
		m.Insert(k, i)
	}
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	if k, _, _ := m.Min(); k != sorted[0] {
		t.Fatalf("Min = %v, want %v", k, sorted[0])
	}
	if k, _, _ := m.Max(); k != sorted[len(sorted)-1] {
		t.Fatalf("Max = %v, want %v", k, sorted[len(sorted)-1])
	}
	from := sorted[1000]
	var got []float64
	m.Ascend(from, func(k float64, _ int) bool {
		got = append(got, k)
		return len(got) < 500
	})
	for i, k := range got {
		if k != sorted[1000+i] {
			t.Fatalf("Ascend[%d] = %v, want %v", i, k, sorted[1000+i])
		}
	}
	if len(got) != 500 {
		t.Fatalf("Ascend early stop visited %d, want 500", len(got))
	}
}

func TestMapDepthAndIOCost(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 2})
	m := NewMap[int](tr)
	g := wrand.New(5)
	keys := g.UniqueFloats(1<<15, 1e9)
	for i, k := range keys {
		m.Insert(k, i)
	}
	// deg = 16 -> fanout up to 32: depth should be ~4 for 32k keys.
	if d := m.Depth(); d > 5 {
		t.Errorf("depth %d for 32k keys at deg 16; want ≤ 5", d)
	}
	tr.DropCache()
	tr.ResetCounters()
	m.Get(keys[123])
	if ios := tr.Stats().IOs(); ios > 6 {
		t.Errorf("Get cost %d I/Os from cold cache, want ≤ depth+1", ios)
	}
}

func TestMapQuickProperty(t *testing.T) {
	f := func(ops []struct {
		K   uint16
		Del bool
	}) bool {
		m := NewMap[int](nil)
		oracle := map[float64]int{}
		for i, op := range ops {
			k := float64(op.K % 512)
			if op.Del {
				if m.Delete(k) != (func() bool { _, ok := oracle[k]; return ok })() {
					return false
				}
				delete(oracle, k)
			} else {
				m.Insert(k, i)
				oracle[k] = i
			}
		}
		if m.Len() != len(oracle) {
			return false
		}
		// Full in-order traversal must be sorted and match the oracle.
		var prev float64 = -1
		count := 0
		okAll := true
		m.Ascend(-1, func(k float64, v int) bool {
			if k <= prev {
				okAll = false
				return false
			}
			if want, ok := oracle[k]; !ok || want != v {
				okAll = false
				return false
			}
			prev = k
			count++
			return true
		})
		return okAll && count == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMapDeleteDrainsCompletely(t *testing.T) {
	g := wrand.New(6)
	m := NewMap[int](nil)
	keys := g.UniqueFloats(3000, 1e6)
	for i, k := range keys {
		m.Insert(k, i)
	}
	g.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if !m.Delete(k) {
			t.Fatalf("Delete(%v) failed during drain", k)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len after drain = %d", m.Len())
	}
	if m.Depth() != 1 {
		t.Fatalf("Depth after drain = %d, want 1", m.Depth())
	}
}
