package btree

import "testing"

// FuzzMapOps drives random op sequences against a map oracle plus the
// invariant checker.
func FuzzMapOps(f *testing.F) {
	f.Add([]byte{0, 10, 0, 20, 1, 10, 2, 20})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 1, 3, 1, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMap[int](nil)
		oracle := map[float64]int{}
		for i := 0; i+1 < len(data); i += 2 {
			op, kb := data[i]%3, data[i+1]
			k := float64(kb)
			switch op {
			case 0:
				m.Insert(k, i)
				oracle[k] = i
			case 1:
				got := m.Delete(k)
				_, want := oracle[k]
				if got != want {
					t.Fatalf("Delete(%v) = %v, oracle %v", k, got, want)
				}
				delete(oracle, k)
			case 2:
				got, ok := m.Get(k)
				want, wok := oracle[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Get(%v) mismatch", k)
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if m.Len() != len(oracle) {
			t.Fatalf("Len=%d oracle=%d", m.Len(), len(oracle))
		}
	})
}

func TestMapInvariantsAfterChurn(t *testing.T) {
	m := NewMap[int](nil)
	for i := 0; i < 4000; i++ {
		m.Insert(float64((i*7919)%1000), i)
		if i%3 == 1 {
			m.Delete(float64((i * 104729) % 1000))
		}
		if i%500 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("after %d ops: %v", i, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
