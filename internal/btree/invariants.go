package btree

import (
	"fmt"
	"math"
)

// CheckInvariants verifies the B-tree's structural invariants: key order
// within and across nodes, degree bounds, uniform leaf depth, and the
// entry count. Intended for tests and fuzzing; O(n).
func (m *Map[V]) CheckInvariants() error {
	leafDepth := -1
	count, err := m.check(m.root, math.Inf(-1), math.Inf(1), true, 0, &leafDepth)
	if err != nil {
		return err
	}
	if count != m.size {
		return fmt.Errorf("btree: size is %d, counted %d", m.size, count)
	}
	return nil
}

func (m *Map[V]) check(n *mnode[V], lo, hi float64, isRoot bool, depth int, leafDepth *int) (int, error) {
	if len(n.vals) != len(n.keys) {
		return 0, fmt.Errorf("btree: node has %d keys but %d values", len(n.keys), len(n.vals))
	}
	if !isRoot && len(n.keys) < m.deg-1 {
		return 0, fmt.Errorf("btree: non-root node underflow: %d keys < %d", len(n.keys), m.deg-1)
	}
	if len(n.keys) > 2*m.deg-1 {
		return 0, fmt.Errorf("btree: node overflow: %d keys > %d", len(n.keys), 2*m.deg-1)
	}
	prev := lo
	for _, k := range n.keys {
		if k <= prev && !(math.IsInf(prev, -1)) {
			return 0, fmt.Errorf("btree: key order violated: %v after %v", k, prev)
		}
		if k <= lo || k >= hi {
			if !math.IsInf(lo, -1) && k <= lo || !math.IsInf(hi, 1) && k >= hi {
				return 0, fmt.Errorf("btree: key %v outside separator range (%v, %v)", k, lo, hi)
			}
		}
		prev = k
	}
	if n.leaf() {
		if *leafDepth == -1 {
			*leafDepth = depth
		} else if *leafDepth != depth {
			return 0, fmt.Errorf("btree: leaves at depths %d and %d", *leafDepth, depth)
		}
		return len(n.keys), nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, fmt.Errorf("btree: internal node with %d keys has %d children", len(n.keys), len(n.children))
	}
	total := len(n.keys)
	childLo := lo
	for i, c := range n.children {
		childHi := hi
		if i < len(n.keys) {
			childHi = n.keys[i]
		}
		sub, err := m.check(c, childLo, childHi, false, depth+1, leafDepth)
		if err != nil {
			return 0, err
		}
		total += sub
		childLo = childHi
	}
	return total, nil
}
