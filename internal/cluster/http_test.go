package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"topk"
	"topk/internal/cluster"
)

// swapHandler lets a node's HTTP server exist (so its URL — and hence
// its cluster ID — is known to the coordinator) before the node behind
// it has bootstrapped, exactly like a booting process that is listening
// but not yet serving.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "bootstrapping", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// TestClusterHTTPEndToEnd drives the full multi-process topology over
// real HTTP: a coordinator server owning the snapshot, three node
// servers that bootstrap themselves through the coordinator's
// /cluster/config and /snapshot endpoints (the topk-node flow), /readyz
// flipping once coverage is complete, and /query answering
// byte-identically to the single-process reference.
func TestClusterHTTPEndToEnd(t *testing.T) {
	spec, ok := topk.ProblemByName("interval")
	if !ok {
		t.Fatal("interval not registered")
	}
	dir, ref := buildSnapshot(t, spec)

	// Node servers first. Cluster IDs are the pinned logical names (the
	// topk-node -id flag), decoupled from the random httptest ports so
	// every node deterministically owns at least one shard.
	swaps := make([]*swapHandler, 3)
	ids := make([]string, 3)
	urls := make([]string, 3)
	reps := make([]cluster.Replica, 3)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		defer ts.Close()
		ids[i] = testNodeIDs[i]
		urls[i] = ts.URL
		reps[i] = cluster.NewHTTPReplica(ids[i], ts.URL, nil)
	}
	co, err := cluster.New(cluster.Config{
		Problem: spec.Name, Shards: testShards, Replication: 2, HedgeDelay: 50 * time.Millisecond,
	}, reps)
	if err != nil {
		t.Fatal(err)
	}
	coord := httptest.NewServer(cluster.NewServer(co, dir, ids).Handler())
	defer coord.Close()

	// Before any node bootstraps, the cluster must refuse readiness.
	resp, err := http.Get(coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before bootstrap: %d, want 503", resp.StatusCode)
	}

	// Bootstrap each node exactly as topk-node does.
	ctx := context.Background()
	for i, id := range ids {
		rcfg, err := cluster.FetchConfig(ctx, nil, coord.URL)
		if err != nil {
			t.Fatal(err)
		}
		if rcfg.Problem != spec.Name || rcfg.Shards != testShards || rcfg.Replication != 2 {
			t.Fatalf("remote config = %+v", rcfg)
		}
		owned := rcfg.OwnedShards(id)
		if len(owned) == 0 {
			t.Fatalf("node %s owns no shards", id)
		}
		nodeDir := t.TempDir()
		mf, err := cluster.FetchShards(ctx, nil, coord.URL, nodeDir, owned)
		if err != nil {
			t.Fatal(err)
		}
		// The fetch must be partial: only owned shard files land on disk.
		ownedSet := map[int]bool{}
		for _, s := range owned {
			ownedSet[s] = true
		}
		for _, f := range mf.Files {
			_, statErr := os.Stat(filepath.Join(nodeDir, f.Name))
			if ownedSet[f.Shard] && statErr != nil {
				t.Fatalf("node %s: owned shard file %s missing: %v", id, f.Name, statErr)
			}
			if !ownedSet[f.Shard] && statErr == nil {
				t.Fatalf("node %s: fetched shard %d it does not own", id, f.Shard)
			}
		}
		shards, err := cluster.LoadShards(nodeDir, owned)
		if err != nil {
			t.Fatal(err)
		}
		swaps[i].set(cluster.NewNode(id, spec.Name, shards).Handler())
	}

	for i := 0; ; i++ {
		resp, err := http.Get(coord.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if i > 50 {
			t.Fatal("/readyz never turned ready after bootstrap")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The /query surface must match topk-serve's, byte-identically.
	queries := spec.WireQueries(testNQ, testSeed+6)
	want := mustJSON(t, renderRef(ref.QueryBatchCtx(topk.QueryCtx{}, decodeAll(t, ref, queries), testK, 0)))
	body, _ := json.Marshal(map[string]any{"queries": queries, "k": testK})
	qresp, err := http.Post(coord.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("/query: %d", qresp.StatusCode)
	}
	var envelope struct {
		Problem string                `json:"problem"`
		Shards  int                   `json:"shards"`
		K       int                   `json:"k"`
		Elapsed string                `json:"elapsed"`
		Results []cluster.ShardResult `json:"results"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Problem != spec.Name || envelope.Shards != testShards || envelope.K != testK || envelope.Elapsed == "" {
		t.Fatalf("envelope = %+v", envelope)
	}
	if got := mustJSON(t, envelope.Results); got != want {
		t.Fatalf("HTTP cluster answer differs from reference:\n got %s\nwant %s", got, want)
	}

	// Request validation mirrors topk-serve.
	for _, bad := range []string{`{"queries":[],"k":5}`, `{"queries":[1],"k":0}`, `{broken`} {
		resp, err := http.Post(coord.URL+"/query", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err = http.Get(coord.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d, want 405", resp.StatusCode)
	}

	// Observability surfaces.
	for _, probe := range []struct{ path, want string }{
		{"/healthz", "ok"},
		{"/metrics", "topk_hedged_requests_total"},
		{"/metrics", "topk_cluster_replication 2"},
	} {
		resp, err := http.Get(coord.URL + probe.path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if !strings.Contains(buf.String(), probe.want) {
			t.Fatalf("%s missing %q:\n%s", probe.path, probe.want, buf.String())
		}
	}

	// Node-level surfaces through one of the node servers.
	nresp, err := http.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var nbuf bytes.Buffer
	nbuf.ReadFrom(nresp.Body)
	nresp.Body.Close()
	if !strings.Contains(nbuf.String(), "topk_node_shard_requests_total") {
		t.Fatalf("node /metrics missing shard request counter:\n%s", nbuf.String())
	}
}

// TestSnapshotHandlerSafety: the shipping handler serves exactly the
// manifest-listed files by base name and nothing else.
func TestSnapshotHandlerSafety(t *testing.T) {
	spec, _ := topk.ProblemByName("interval")
	dir, _ := buildSnapshot(t, spec)
	mf, err := topk.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := cluster.SnapshotHandler(dir)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "http://x"+path, nil)
		req.URL.Path = path // preserve raw path; no client-side cleaning
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := get("/snapshot/manifest"); rec.Code != http.StatusOK {
		t.Fatalf("/snapshot/manifest: %d", rec.Code)
	}
	if rec := get("/snapshot/file/" + mf.Files[0].Name); rec.Code != http.StatusOK {
		t.Fatalf("listed file: %d", rec.Code)
	} else if int64(rec.Body.Len()) != mf.Files[0].Bytes {
		t.Fatalf("listed file: %d bytes, manifest says %d", rec.Body.Len(), mf.Files[0].Bytes)
	}
	if rec := get("/snapshot/file/not-in-manifest.snap"); rec.Code == http.StatusOK {
		t.Fatal("served a file the manifest does not list")
	}
	if rec := get("/snapshot/file/../" + topk.ManifestName); rec.Code == http.StatusOK {
		t.Fatal("served a path outside the file namespace")
	}
	if rec := get("/snapshot/file/"); rec.Code == http.StatusOK {
		t.Fatal("served an empty file name")
	}
}

// TestFetchConfigErrors: bootstrap surfaces transport and sanity errors.
func TestFetchConfigErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(cluster.RemoteConfig{Problem: "x", Shards: 0})
	}))
	defer ts.Close()
	if _, err := cluster.FetchConfig(context.Background(), nil, ts.URL); err == nil {
		t.Fatal("accepted a config with 0 shards")
	}
	if _, err := cluster.FetchConfig(context.Background(), nil, "http://127.0.0.1:1"); err == nil {
		t.Fatal("no error for an unreachable coordinator")
	}
}
